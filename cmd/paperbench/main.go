// Command paperbench regenerates the paper's evaluation: Tables 1-2 and
// Figures 1, 4, 5, 6, 7, plus the Section 4.5 ablation study.
//
// Usage:
//
//	paperbench -exp all
//	paperbench -exp fig5 -scale 0.5 -repeats 10 -maxworkers 16
//	paperbench -exp table1 -csv
//
// At -scale 1 -repeats 20 -maxworkers 32 it follows the paper's exact
// protocol (56M-103M events per run, 20 repetitions, workers 1..32).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"hjdes/internal/atomicfile"
	"hjdes/internal/core"
	"hjdes/internal/harness"
	"hjdes/internal/serve"
)

var (
	expFlag     = flag.String("exp", "all", "experiment: table1 | table2 | fig1 | fig4 | fig5 | fig6 | fig7 | ablations | profiles | ordered | timewarp | lp | lpk | tw | bench | netdes | serve | all")
	scaleFlag   = flag.Float64("scale", 0.1, "fraction of the paper's event volume per run (1 = paper scale)")
	repeatsFlag = flag.Int("repeats", 3, "repetitions per configuration (paper: 20)")
	workersFlag = flag.Int("maxworkers", 8, "maximum worker count in sweeps (paper: 32)")
	seedFlag    = flag.Int64("seed", 1, "stimulus seed")
	timeoutFlag = flag.Duration("timeout", 0, "fail any individual engine run after this long (0 = unbounded)")
	csvFlag     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	circuitFlag = flag.String("circuit", "", "restrict experiments to one paper circuit by name (e.g. koggestone-64)")
	jsonFlag    = flag.String("json", "", "with -exp bench/lpk: write machine-readable records to this file ('-' for stdout)")
	ksFlag      = flag.String("ks", "1,8,64,256", "with -exp lpk: comma-separated partition counts for the lp vs lp-hj over-decomposition sweep")
	winsFlag    = flag.String("wins", "0,64,256", "with -exp tw: comma-separated optimism windows for the timewarp vs tw-hj sweep (0 = unbounded)")
	hjAblFlag   = flag.Bool("hjablations", false, "with -exp bench: add hj scheduler ablation rows (hj-noaff, hj-steal1) at each worker count")
	retryFlag   = flag.Int("retries", 0, "resilient: extra attempts per engine on retryable failures (0 = fail fast)")
	fbFlag      = flag.String("fallback", "", "resilient: comma-separated engine degradation chain, e.g. lp,seq")
	ckptFlag    = flag.Int("checkpoint-every", 0, "resilient: snapshot every N settle boundaries so retries resume (0 = off)")
	addrFlag    = flag.String("addr", "", "with -exp serve: target dessimd base URL (empty = host an in-process server)")
	clientsFlag = flag.Int("clients", 8, "with -exp serve: concurrent closed-loop load clients")
	jobsPerFlag = flag.Int("jobsper", 4, "with -exp serve: jobs each client must complete")
	engFlag     = flag.String("engines", "seq,hj,lp,lp-hj,tw-hj", "with -exp serve: comma-separated engines assigned round-robin (known: "+strings.Join(core.EngineNames(), " | ")+")")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}

// emitBench writes bench-style records: JSON when -json is given (temp-
// then-rename for files, so a failure mid-encode never leaves a truncated
// trajectory that regression tooling would diff against as if complete),
// a table otherwise.
func emitBench(records []harness.BenchRecord) {
	if *jsonFlag != "" {
		if *jsonFlag == "-" {
			if err := harness.WriteBenchJSON(os.Stdout, records); err != nil {
				fatalf("%v", err)
			}
			return
		}
		if err := atomicfile.Write(*jsonFlag, func(w io.Writer) error {
			return harness.WriteBenchJSON(w, records)
		}); err != nil {
			fatalf("%v", err)
		}
		return
	}
	emit(harness.BenchTable(records))
}

func emit(t *harness.Table) {
	var err error
	if *csvFlag {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println()
}

func main() {
	flag.Parse()
	cfg := harness.Config{
		Scale:           *scaleFlag,
		Repeats:         *repeatsFlag,
		MaxWorkers:      *workersFlag,
		Seed:            *seedFlag,
		Timeout:         *timeoutFlag,
		HJAblations:     *hjAblFlag,
		Retries:         *retryFlag,
		CheckpointEvery: *ckptFlag,
	}
	if *fbFlag != "" {
		for _, name := range strings.Split(*fbFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Fallback = append(cfg.Fallback, name)
			}
		}
	}
	if *circuitFlag != "" {
		for _, pc := range harness.PaperCircuits {
			if pc.Name == *circuitFlag {
				cfg.Circuits = []harness.PaperCircuit{pc}
			}
		}
		if len(cfg.Circuits) == 0 {
			fatalf("unknown circuit %q (want one of the paper circuits)", *circuitFlag)
		}
	}
	switch *expFlag {
	case "table1":
		t, err := harness.Table1(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "table2":
		t, _, err := harness.Table2(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "fig1":
		t, profile, err := harness.Fig1(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		if *csvFlag {
			emit(t)
			return
		}
		fmt.Printf("Figure 1: available parallelism (6-bit tree multiplier)\n")
		fmt.Printf("steps=%d peak=%d mean=%.1f\n%s\n",
			len(profile), core.MaxParallelism(profile), core.MeanParallelism(profile), harness.Sparkline(profile))
	case "fig4", "fig5", "fig6":
		fig := int((*expFlag)[3] - '0')
		t, err := harness.FigSweep(cfg, fig)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "fig7":
		t, err := harness.Fig7(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "ablations":
		t, err := harness.Ablations(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "netdes":
		t, err := harness.NetDES(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "timewarp":
		t, err := harness.TimeWarpExp(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "profiles":
		t, err := harness.Profiles(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "ordered":
		t, err := harness.OrderedExp(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "lp":
		t, err := harness.LPExp(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emit(t)
	case "bench":
		records, err := harness.BenchSweep(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		emitBench(records)
	case "lpk":
		var ks []int
		for _, s := range strings.Split(*ksFlag, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			k, err := strconv.Atoi(s)
			if err != nil || k < 1 {
				fatalf("bad -ks entry %q (want positive integers)", s)
			}
			ks = append(ks, k)
		}
		if len(ks) == 0 {
			fatalf("-ks is empty")
		}
		records, err := harness.LPKSweep(cfg, ks)
		if err != nil {
			fatalf("%v", err)
		}
		emitBench(records)
	case "tw":
		var wins []int64
		for _, s := range strings.Split(*winsFlag, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			win, err := strconv.ParseInt(s, 10, 64)
			if err != nil || win < 0 {
				fatalf("bad -wins entry %q (want non-negative integers)", s)
			}
			wins = append(wins, win)
		}
		if len(wins) == 0 {
			fatalf("-wins is empty")
		}
		records, err := harness.TWSweep(cfg, wins)
		if err != nil {
			fatalf("%v", err)
		}
		emitBench(records)
	case "serve":
		runServeLoad()
	case "all":
		if err := harness.All(cfg, os.Stdout); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown experiment %q", *expFlag)
	}
}

// runServeLoad drives the dessimd serving experiment: N concurrent
// closed-loop clients submit jobs round-robin across engine families and
// the report records throughput and latency percentiles. With no -addr
// it hosts an in-process server on a loopback port, so the experiment is
// self-contained. Any failed job is a serving-layer bug: exit nonzero.
func runServeLoad() {
	lcfg := harness.LoadConfig{
		Addr:    *addrFlag,
		Clients: *clientsFlag,
		JobsPer: *jobsPerFlag,
	}
	for _, name := range strings.Split(*engFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			lcfg.Engines = append(lcfg.Engines, name)
		}
	}
	if *timeoutFlag > 0 {
		lcfg.Timeout = *timeoutFlag
	}
	if lcfg.Addr == "" {
		srv := serve.New(serve.Config{QueueCap: 2 * *clientsFlag, Concurrency: 0})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			srv.Drain()
			hs.Close()
		}()
		lcfg.Addr = "http://" + ln.Addr().String()
		fmt.Printf("serve: in-process dessimd on %s\n", lcfg.Addr)
	}
	rep, err := harness.DriveLoad(lcfg)
	if err != nil {
		fatalf("%v", err)
	}
	emit(harness.LoadTable(lcfg, rep))
	if rep.Failed > 0 {
		fatalf("%d of %d jobs failed under load: %s", rep.Failed, rep.Failed+rep.Jobs, rep.FirstFail)
	}
}
