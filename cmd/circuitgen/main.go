// Command circuitgen generates, inspects and converts circuits in the
// netlist text format, and prints Table-1-style profiles.
//
// Usage:
//
//	circuitgen -circuit koggestone-64 -out ks64.net
//	circuitgen -circuit mult-12 -profile -waves 2
//	circuitgen -in ks64.net -profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hjdes/internal/atomicfile"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/cspec"
)

var (
	circuitFlag = flag.String("circuit", "", "circuit spec to generate: "+strings.Join(cspec.Known(), " | "))
	inFlag      = flag.String("in", "", "netlist file to load instead of generating")
	outFlag     = flag.String("out", "", "write the netlist to this file ('-' for stdout)")
	formatFlag  = flag.String("format", "netlist", "output format: netlist (hjdes text) | bench (ISCAS .bench)")
	profileFlag = flag.Bool("profile", false, "print the circuit profile (Table 1 columns)")
	wavesFlag   = flag.Int("waves", 0, "with -profile: also count initial and total events for this many random waves")
	seedFlag    = flag.Int64("seed", 1, "stimulus seed for -waves")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "circuitgen: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *circuit.Circuit
	switch {
	case *inFlag != "":
		f, err := os.Open(*inFlag)
		if err != nil {
			fatalf("%v", err)
		}
		parsed, err := circuit.ParseNetlist(f)
		f.Close()
		if err != nil {
			fatalf("parse %s: %v", *inFlag, err)
		}
		c = parsed
	case *circuitFlag != "":
		built, err := cspec.Build(*circuitFlag)
		if err != nil {
			fatalf("%v", err)
		}
		c = built
	default:
		fatalf("one of -circuit or -in is required")
	}

	if *outFlag != "" {
		serialize := func(w io.Writer) error {
			switch *formatFlag {
			case "netlist":
				return circuit.Serialize(w, c)
			case "bench":
				return circuit.WriteBench(w, c)
			}
			return fmt.Errorf("unknown format %q", *formatFlag)
		}
		var err error
		if *outFlag == "-" {
			err = serialize(os.Stdout)
		} else {
			// Temp-then-rename: a failed serialization leaves any previous
			// netlist at this path intact rather than truncated.
			err = atomicfile.Write(*outFlag, serialize)
		}
		if err != nil {
			fatalf("serialize: %v", err)
		}
	}

	if *profileFlag || *outFlag == "" {
		p := c.Profile()
		fmt.Printf("circuit:  %s\nnodes:    %d\nedges:    %d\ninputs:   %d\noutputs:  %d\ndepth:    %d\n",
			p.Name, p.Nodes, p.Edges, p.Inputs, p.Outputs, p.Depth)
		if *wavesFlag > 0 {
			stim := circuit.RandomStimulus(c, *wavesFlag, c.SettleTime()+10, *seedFlag)
			res, err := core.NewSequential(core.Options{DiscardOutputs: true}).Run(c, stim)
			if err != nil {
				fatalf("event count run: %v", err)
			}
			fmt.Printf("initial events (%d waves): %d\ntotal events: %d\n",
				*wavesFlag, stim.NumEvents(), res.TotalEvents)
		}
	}
}
