// Command dessim runs one logic-circuit DES simulation and reports the
// result: engine, worker count, events processed, wall time, throughput
// and scheduler statistics.
//
// Usage:
//
//	dessim -circuit koggestone-64 -engine hj -workers 8 -waves 100
//	dessim -circuit file:adder.net -engine seq -verify
//	dessim -circuit random:8,200,6,42 -engine galois -workers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"hjdes/internal/atomicfile"
	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/cspec"
	"hjdes/internal/obs"
	"hjdes/internal/trace"
)

var (
	circuitFlag = flag.String("circuit", "koggestone-64", "circuit spec: "+strings.Join(cspec.Known(), " | "))
	engineFlag  = flag.String("engine", "hj", "engine: "+strings.Join(core.EngineNames(), " | "))
	twWindow    = flag.Int64("tw-window", 0, "timewarp/tw-hj: speculation window (0 = unbounded)")
	twSaveEvery = flag.Int("tw-save-every", 0, "tw-hj: incremental state-saving interval (save pre-state every Nth event; 0 = every event)")
	twAdaptive  = flag.Bool("tw-adaptive", false, "tw-hj: let the GVT sweep widen/narrow the speculation window from the observed rollback fraction")
	workersFlag = flag.Int("workers", 0, "worker count for parallel engines (0 = GOMAXPROCS)")
	partsFlag   = flag.Int("partitions", 0, "lp: logical-process count (0 = workers)")
	wavesFlag   = flag.Int("waves", 10, "number of random input waves")
	seedFlag    = flag.Int64("seed", 1, "stimulus seed")
	verifyFlag  = flag.Bool("verify", false, "check outputs against the combinational oracle")
	statsFlag   = flag.Bool("stats", false, "print runtime scheduler statistics")
	vcdFlag     = flag.String("vcd", "", "write output waveforms to this VCD file (implies recording outputs)")
	hotFlag     = flag.Int("hotspots", 0, "print the N busiest nodes by processed events")
	timeoutFlag = flag.Duration("timeout", 0, "fail the run after this long (0 = unbounded)")
	stallFlag   = flag.Duration("stall", 0, "fail the run if the engine makes no progress for this long (0 = no watchdog)")
	chaosFlag   = flag.String("chaos", "", "fault-injection spec; lp: seed=7,delay=0.3,dup=0.2,kill=0.1 (fields: seed delay dup kill maxkills maxheld dropnulls); other engines: seed=7,panic=0.01,wakedrop=0.1 (fields: seed panic maxpanics wakedrop maxwakedrops wakedelay rollback maxrollbacks)")
	retryFlag   = flag.Int("retries", 0, "resilient: extra attempts per engine on retryable failures before degrading (0 = fail fast)")
	fbFlag      = flag.String("fallback", "", "resilient: comma-separated engine degradation chain tried after the retry budget, e.g. lp,seq")
	ckptFlag    = flag.Int("checkpoint-every", 0, "resilient: snapshot crash-consistent state every N settle boundaries so retries resume instead of restarting (0 = off)")
	inboxFlag   = flag.Int("inbox-cap", 0, "lp: per-LP inbox capacity (0 = default)")
	traceFlag   = flag.String("trace-out", "", "record a flight-recorder trace and write it as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")
	metricsFlag = flag.Bool("metrics", false, "print the run's uniform metrics map (all engine counters, dot-namespaced)")
	// Ablation toggles (HJ engine).
	pqFlag       = flag.Bool("pernode-pq", false, "hj: per-node priority queue instead of per-port deques")
	nodeLockFlag = flag.Bool("pernode-locks", false, "hj: per-node locks instead of per-port locks")
	noTempFlag   = flag.Bool("no-temp-queue", false, "hj: disable the temporary ready-event queue")
	naiveFlag    = flag.Bool("naive-respawn", false, "hj: disable avoidance of unnecessary asyncs")
	isoFlag      = flag.Bool("global-isolated", false, "hj: use the global isolated construct instead of TryLock")
	mutexFlag    = flag.Bool("mutex-locks", false, "hj: back locks with sync.Mutex instead of atomic booleans")
	noAffFlag    = flag.Bool("no-affinity", false, "hj: disable locality-aware mailbox wakeups (no home workers)")
	steal1Flag   = flag.Bool("single-steal", false, "hj: classic one-task steal instead of batched steal-half")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dessim: "+format+"\n", args...)
	os.Exit(1)
}

// Run-scoped instrumentation, package-level so the failure path
// (dieSupervised) can report fault counts and dump the trace.
var (
	recorder      *obs.Recorder
	injector      *chaos.Injector
	schedInjector *chaos.SchedInjector
)

func main() {
	flag.Parse()
	c, err := cspec.Build(*circuitFlag)
	if err != nil {
		fatalf("%v", err)
	}
	opts := core.Options{
		Workers:           *workersFlag,
		Partitions:        *partsFlag,
		PerNodePQ:         *pqFlag,
		PerNodeLocks:      *nodeLockFlag,
		NoTempQueue:       *noTempFlag,
		NaiveRespawn:      *naiveFlag,
		GlobalIsolated:    *isoFlag,
		MutexLocks:        *mutexFlag,
		NoAffinity:        *noAffFlag,
		SingleSteal:       *steal1Flag,
		TimeWarpWindow:    *twWindow,
		TimeWarpSaveEvery: *twSaveEvery,
		TimeWarpAdaptive:  *twAdaptive,
		LPInboxCap:        *inboxFlag,
		CheckpointEvery:   *ckptFlag,
		DiscardOutputs:    !*verifyFlag && *vcdFlag == "",
	}
	if *traceFlag != "" {
		recorder = obs.NewRecorder(0)
		opts.Trace = recorder
	}
	var eng core.Engine
	switch {
	case *chaosFlag != "" && (*engineFlag == "lp" || *engineFlag == "lp-hj"):
		// lp-family chaos lives on the message plane: the interceptor
		// sits on the cross-partition delivery path in both engines.
		ccfg, err := chaos.ParseSpec(*chaosFlag)
		if err != nil {
			fatalf("%v", err)
		}
		injector = chaos.New(ccfg)
		if *engineFlag == "lp-hj" {
			eng = core.NewLPHJIntercepted(opts, injector.Factory())
		} else {
			eng = core.NewLPIntercepted(opts, injector.Factory())
		}
	case *chaosFlag != "":
		// Every other engine takes scheduler-level faults (task panics,
		// lost/delayed wakeups, rollback storms) through core.ChaosHooks.
		ccfg, err := chaos.ParseSchedSpec(*chaosFlag)
		if err != nil {
			fatalf("%v", err)
		}
		schedInjector = chaos.NewSched(ccfg)
		opts.Chaos = schedInjector.Hooks()
		fallthrough
	default:
		var err error
		eng, err = core.NewEngine(*engineFlag, opts)
		if err != nil {
			fatalf("%v", err)
		}
	}

	fmt.Printf("circuit: %v\n", c)
	period := c.SettleTime() + 10
	rcfg := core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: *timeoutFlag, StallTimeout: *stallFlag},
		Retry:     core.RetryPolicy{Retries: *retryFlag, Seed: *seedFlag},
		Fallback:  fallbackChain(),
		Options:   opts,
	}
	if *verifyFlag {
		rng := rand.New(rand.NewSource(*seedFlag))
		waves := make([]map[string]circuit.Value, *wavesFlag)
		for w := range waves {
			m := make(map[string]circuit.Value)
			for _, name := range c.InputNames() {
				m[name] = circuit.Value(rng.Intn(2))
			}
			waves[w] = m
		}
		stim := circuit.VectorWaves(c, waves, period)
		res, err := core.Resilient(context.Background(), eng, c, stim, rcfg)
		if err != nil {
			dieSupervised(err)
		}
		if err := core.VerifyAgainstOracle(c, waves, period, res); err != nil {
			fatalf("verification failed: %v", err)
		}
		fmt.Printf("%v\nverify: OK (%d waves checked against the oracle)\n", res, len(waves))
		printResilience(res)
		printStats(res)
		printMetrics(res)
		printHotspots(c, res)
		writeVCD(res)
		writeTrace()
		return
	}
	stim := circuit.RandomStimulus(c, *wavesFlag, period, *seedFlag)
	res, err := core.Resilient(context.Background(), eng, c, stim, rcfg)
	if err != nil {
		dieSupervised(err)
	}
	fmt.Printf("initial events: %d\n%v\n", stim.NumEvents(), res)
	printResilience(res)
	printStats(res)
	printMetrics(res)
	printHotspots(c, res)
	writeVCD(res)
	writeTrace()
}

// fallbackChain parses the -fallback engine list.
func fallbackChain() []string {
	if *fbFlag == "" {
		return nil
	}
	var chain []string
	for _, name := range strings.Split(*fbFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			chain = append(chain, name)
		}
	}
	return chain
}

// printResilience prints the DEGRADED banner (or a recovery note) when the
// run survived failures. A degraded run still exits 0: the simulation
// completed, just not on the engine that was asked for.
func printResilience(res *core.Result) {
	if res.Degraded {
		fmt.Printf("DEGRADED: completed on fallback engine %q after %d attempts\n", res.Engine, res.Attempts)
	} else if res.Attempts > 1 {
		fmt.Printf("recovered: %d attempts on %q\n", res.Attempts, res.Engine)
	}
}

// dieSupervised reports a failed supervised run. Structured engine
// failures (panic, timeout, stall) print their diagnostic snapshot and
// exit with status 2 — with -retries/-fallback that means the whole
// degradation chain failed, not just the first engine. Usage and
// configuration errors exit 1; degraded-but-complete runs exit 0.
func dieSupervised(err error) {
	removeStaleVCD()
	var ee *core.EngineError
	if errors.As(err, &ee) {
		fmt.Fprintf(os.Stderr, "dessim: %v\n", ee)
		if ee.Diag != "" {
			fmt.Fprintf(os.Stderr, "--- engine diagnostics ---\n%s", ee.Diag)
		}
		if injector != nil {
			fmt.Fprintf(os.Stderr, "--- injected faults ---\n%v\n", &injector.Stats)
		}
		if schedInjector != nil {
			fmt.Fprintf(os.Stderr, "--- injected faults ---\n%v\n", &schedInjector.Stats)
		}
		if ee.Reason == core.FailPanic && len(ee.Stack) > 0 {
			fmt.Fprintf(os.Stderr, "--- panic stack ---\n%s", ee.Stack)
		}
		writeTrace() // the trace of a failed run is the one worth keeping
		os.Exit(2)
	}
	fatalf("%v", err)
}

// printHotspots lists the busiest nodes when -hotspots is set.
func printHotspots(c *circuit.Circuit, res *core.Result) {
	if *hotFlag <= 0 {
		return
	}
	fmt.Printf("top %d nodes by processed events:\n", *hotFlag)
	for _, h := range core.TopHotspots(c, res, *hotFlag) {
		fmt.Printf("  %v\n", h)
	}
}

// removeStaleVCD deletes the -vcd target on a failed run: writeVCD only
// runs on success, so without this a waveform file left by a previous
// invocation would silently survive and masquerade as this run's output.
func removeStaleVCD() {
	if *vcdFlag == "" {
		return
	}
	if err := os.Remove(*vcdFlag); err != nil && !errors.Is(err, os.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "dessim: removing stale %s: %v\n", *vcdFlag, err)
	}
}

// writeVCD dumps the run's output waveforms when -vcd is set. The write
// is temp-then-rename: a failure mid-encode leaves any previous VCD
// intact instead of a truncated one.
func writeVCD(res *core.Result) {
	if *vcdFlag == "" {
		return
	}
	if err := atomicfile.Write(*vcdFlag, func(w io.Writer) error {
		return trace.WriteResultVCD(w, res)
	}); err != nil {
		fatalf("write vcd: %v", err)
	}
	fmt.Printf("waveforms: %s\n", *vcdFlag)
}

// writeTrace drains the flight recorder into the -trace-out file as Chrome
// trace_event JSON. Called on success and on supervised failure (the PR 3
// contract: the trace of an exit-2 run is the one worth keeping), written
// atomically so a crash mid-encode cannot corrupt an earlier trace.
func writeTrace() {
	if recorder == nil {
		return
	}
	if err := atomicfile.Write(*traceFlag, func(w io.Writer) error {
		return obs.WriteChromeTrace(w, recorder.Events())
	}); err != nil {
		fatalf("write trace: %v", err)
	}
	fmt.Printf("trace: %s\n", *traceFlag)
}

// printMetrics dumps the run's uniform metrics map (plus chaos fault
// counts when an injector is installed) when -metrics is set.
func printMetrics(res *core.Result) {
	if injector != nil && res.Metrics != nil {
		res.Metrics.Merge(injector.Stats.Metrics())
	}
	if schedInjector != nil && res.Metrics != nil {
		res.Metrics.Merge(schedInjector.Stats.Metrics())
	}
	if !*metricsFlag {
		return
	}
	m := res.Metrics
	fmt.Println("metrics:")
	for _, k := range m.Keys() {
		fmt.Printf("  %s=%d\n", k, m[k])
	}
}

func printStats(res *core.Result) {
	if !*statsFlag {
		return
	}
	if res.HJ.Spawns > 0 {
		fmt.Printf("hj runtime: %v\n", res.HJ)
	}
	if res.Galois.Committed > 0 {
		fmt.Printf("galois runtime: %v\n", res.Galois)
	}
	if res.TimeWarp != (core.TWStats{}) {
		fmt.Printf("timewarp: %v\n", res.TimeWarp)
	}
	if res.LP.Partitions > 0 {
		fmt.Printf("lp runtime: %v\n", res.LP)
	}
}
