// dessimd is the long-running multi-tenant simulation service: clients
// POST JobSpec JSON to /jobs and poll /jobs/{id} for results, while one
// merged metrics registry (/metrics) and per-job Chrome traces
// (/trace/{id}) expose what the engines are doing. Admission is bounded
// (429 + Retry-After when the queue is full) and SIGTERM drains
// gracefully: in-flight jobs finish or checkpoint, then the process
// exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hjdes/internal/serve"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dessimd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addrFlag := flag.String("addr", "127.0.0.1:8047", "listen address")
	queueFlag := flag.Int("queue", 64, "admission queue capacity (full queue -> 429)")
	concFlag := flag.Int("concurrency", 0, "max jobs running at once (0 = GOMAXPROCS)")
	drainFlag := flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight jobs on SIGTERM before they are checkpointed and interrupted")
	timeoutFlag := flag.Duration("job-timeout", 2*time.Minute, "default per-attempt timeout for specs without timeout_ms")
	poolFlag := flag.Int("pool-idle", 4, "idle hj runtimes kept per worker-count")
	flag.Parse()
	if flag.NArg() != 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}

	srv := serve.New(serve.Config{
		QueueCap:       *queueFlag,
		Concurrency:    *concFlag,
		DrainTimeout:   *drainFlag,
		DefaultTimeout: *timeoutFlag,
		PoolIdle:       *poolFlag,
	})

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatalf("%v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("dessimd: listening on http://%s (queue %d)\n", ln.Addr(), *queueFlag)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Printf("dessimd: %v: draining (grace %v)\n", sig, *drainFlag)
	case err := <-errc:
		fatalf("serve: %v", err)
	}

	// Stop admitting and let in-flight jobs finish or checkpoint, then
	// close the listener. Drain returns only when every executor has
	// exited, so jobs never race the process teardown.
	srv.Drain()
	hs.Close()
	mv := srv.Metrics()
	fmt.Printf("dessimd: drained: %d done, %d failed, %d interrupted\n",
		mv.Counters["serve.completed"], mv.Counters["serve.failed"], mv.Counters["serve.interrupted"])
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
}
