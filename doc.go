// Package hjdes is a from-scratch Go reproduction of "Parallelizing a
// Discrete Event Simulation Application Using the Habanero-Java Multicore
// Library" (Xiao, Zhao, Sarkar; PMAM '15).
//
// The library lives under internal/: a Habanero-style work-stealing task
// runtime (internal/hj), a Galois-style optimistic parallelization
// runtime (internal/galois), the logic-circuit substrate and generators
// (internal/circuit), the Chandy–Misra DES engines (internal/core), and
// the evaluation harness (internal/harness, internal/stats). The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/paperbench does the same from the command
// line. See README.md, DESIGN.md and EXPERIMENTS.md.
package hjdes
