module hjdes

go 1.22
