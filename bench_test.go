// Benchmarks regenerating the paper's evaluation, one target per table
// and figure (plus the Section 4.5 ablations). Workload sizes are scaled
// so a full -bench=. run finishes in minutes; cmd/paperbench exposes the
// same experiments with adjustable scale, repeats and worker ranges, up
// to the paper's full protocol.
package hjdes_test

import (
	"fmt"
	"testing"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/netdes"
)

// benchCircuits mirrors harness.PaperCircuits at bench-friendly wave
// counts (events per run stay near a few million).
var benchCircuits = []struct {
	name  string
	build func() *circuit.Circuit
	waves int
}{
	{"multiplier-12", func() *circuit.Circuit { return circuit.TreeMultiplier(12) }, 1},
	{"koggestone-64", func() *circuit.Circuit { return circuit.KoggeStone(64) }, 25},
	{"koggestone-128", func() *circuit.Circuit { return circuit.KoggeStone(128) }, 8},
}

func benchStim(c *circuit.Circuit, waves int) *circuit.Stimulus {
	return circuit.RandomStimulus(c, waves, c.SettleTime()+10, 1)
}

func runEngine(b *testing.B, e core.Engine, c *circuit.Circuit, stim *circuit.Stimulus) {
	b.Helper()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(c, stim)
		if err != nil {
			b.Fatal(err)
		}
		events = res.TotalEvents
	}
	b.ReportMetric(float64(events), "events/run")
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkTable1Profiles regenerates Table 1: circuit construction and
// event-volume accounting for the three input circuits.
func BenchmarkTable1Profiles(b *testing.B) {
	for _, bc := range benchCircuits {
		b.Run(bc.name, func(b *testing.B) {
			c := bc.build()
			stim := benchStim(c, bc.waves)
			b.ReportMetric(float64(c.NumNodes()), "nodes")
			b.ReportMetric(float64(c.NumEdges()), "edges")
			b.ReportMetric(float64(stim.NumEvents()), "initial-events")
			runEngine(b, core.NewSequential(core.Options{DiscardOutputs: true}), c, stim)
		})
	}
}

// BenchmarkTable2Sequential regenerates Table 2: the two sequential
// implementations (HJlib-style deques vs Galois-style priority queues)
// on each circuit.
func BenchmarkTable2Sequential(b *testing.B) {
	for _, bc := range benchCircuits {
		c := bc.build()
		stim := benchStim(c, bc.waves)
		b.Run(bc.name+"/hjlib-seq", func(b *testing.B) {
			runEngine(b, core.NewSequential(core.Options{DiscardOutputs: true}), c, stim)
		})
		b.Run(bc.name+"/galois-seq", func(b *testing.B) {
			runEngine(b, core.NewSequentialPQ(core.Options{DiscardOutputs: true}), c, stim)
		})
	}
}

// BenchmarkFig1ParallelismProfile regenerates Figure 1: the available
// parallelism profile of the 6-bit tree multiplier.
func BenchmarkFig1ParallelismProfile(b *testing.B) {
	c := circuit.TreeMultiplier(6)
	var peak int
	for i := 0; i < b.N; i++ {
		profile, err := core.ProfileCircuit(c, 1)
		if err != nil {
			b.Fatal(err)
		}
		peak = core.MaxParallelism(profile)
	}
	b.ReportMetric(float64(peak), "peak-parallelism")
}

// figSweep runs one of Figures 4-6: HJ and Galois engines across worker
// counts on the given circuit.
func figSweep(b *testing.B, build func() *circuit.Circuit, waves int) {
	b.Helper()
	c := build()
	stim := benchStim(c, waves)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hj/workers=%d", workers), func(b *testing.B) {
			runEngine(b, core.NewHJ(core.Options{Workers: workers, DiscardOutputs: true}), c, stim)
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("galois/workers=%d", workers), func(b *testing.B) {
			runEngine(b, core.NewGalois(core.Options{Workers: workers, DiscardOutputs: true}), c, stim)
		})
	}
}

// BenchmarkFig4Multiplier12 regenerates Figure 4 (12-bit tree multiplier).
func BenchmarkFig4Multiplier12(b *testing.B) {
	figSweep(b, func() *circuit.Circuit { return circuit.TreeMultiplier(12) }, 1)
}

// BenchmarkFig5KoggeStone64 regenerates Figure 5 (64-bit Kogge-Stone adder).
func BenchmarkFig5KoggeStone64(b *testing.B) {
	figSweep(b, func() *circuit.Circuit { return circuit.KoggeStone(64) }, 25)
}

// BenchmarkFig6KoggeStone128 regenerates Figure 6 (128-bit Kogge-Stone adder).
func BenchmarkFig6KoggeStone128(b *testing.B) {
	figSweep(b, func() *circuit.Circuit { return circuit.KoggeStone(128) }, 8)
}

// BenchmarkFig7AverageMaxWorkers regenerates Figure 7: both parallel
// versions at the maximum worker count on all three circuits (testing.B
// repetition plays the role of the paper's 20 runs; mean and variance
// come from -count and benchstat).
func BenchmarkFig7AverageMaxWorkers(b *testing.B) {
	const workers = 8
	for _, bc := range benchCircuits {
		c := bc.build()
		stim := benchStim(c, bc.waves)
		b.Run(bc.name+"/hj", func(b *testing.B) {
			runEngine(b, core.NewHJ(core.Options{Workers: workers, DiscardOutputs: true}), c, stim)
		})
		b.Run(bc.name+"/galois", func(b *testing.B) {
			runEngine(b, core.NewGalois(core.Options{Workers: workers, DiscardOutputs: true}), c, stim)
		})
	}
}

// Ablation benchmarks: the Section 4.5 design choices, each toggled off
// individually on the 12-bit multiplier at 4 workers.

func ablation(b *testing.B, opts core.Options) {
	b.Helper()
	opts.Workers = 4
	opts.DiscardOutputs = true
	c := circuit.TreeMultiplier(12)
	stim := benchStim(c, 1)
	runEngine(b, core.NewHJ(opts), c, stim)
}

// BenchmarkAblationOptimized is the fully optimized reference.
func BenchmarkAblationOptimized(b *testing.B) { ablation(b, core.Options{}) }

// BenchmarkAblationPerPortVsPQ disables per-port deques (Section 4.5.1):
// one priority queue per node, as in Galois-Java.
func BenchmarkAblationPerPortVsPQ(b *testing.B) { ablation(b, core.Options{PerNodePQ: true}) }

// BenchmarkAblationLockGranularity disables per-port locks (4.5.1):
// one lock per node.
func BenchmarkAblationLockGranularity(b *testing.B) { ablation(b, core.Options{PerNodeLocks: true}) }

// BenchmarkAblationTempQueue disables the temporary ready queue (4.5.1):
// input-port locks are held for the whole processing run.
func BenchmarkAblationTempQueue(b *testing.B) { ablation(b, core.Options{NoTempQueue: true}) }

// BenchmarkAblationRespawn disables the avoidance of unnecessary asyncs
// (4.5.3): every run respawns tasks for all downstream neighbors.
func BenchmarkAblationRespawn(b *testing.B) { ablation(b, core.Options{NaiveRespawn: true}) }

// BenchmarkAblationIsolated replaces fine-grained TryLock with the
// global isolated construct (Section 3.2's pre-extension HJlib).
func BenchmarkAblationIsolated(b *testing.B) { ablation(b, core.Options{GlobalIsolated: true}) }

// BenchmarkAblationMutexLocks backs every lock with a sync.Mutex instead
// of an atomic boolean (Section 4.5.2's AtomicBoolean-vs-ReentrantLock
// argument).
func BenchmarkAblationMutexLocks(b *testing.B) { ablation(b, core.Options{MutexLocks: true}) }

// BenchmarkTimeWarp measures the optimistic engine (related work §2.1)
// on a smaller multiplier: rollback storms make Time Warp orders of
// magnitude slower than the conservative engines on reconvergent
// circuits, which is why a full-size workload is not used here (see
// EXPERIMENTS.md).
func BenchmarkTimeWarp(b *testing.B) {
	c := circuit.TreeMultiplier(8)
	stim := benchStim(c, 1)
	for _, tc := range []struct {
		name   string
		window int64
	}{
		{"unbounded", 0},
		{"window=64", 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			e := core.NewTimeWarp(core.Options{Workers: 4, TimeWarpWindow: tc.window, DiscardOutputs: true})
			runEngine(b, e, c, stim)
		})
	}
}

// BenchmarkNetDES measures the future-work packet-network simulator
// (extension experiment): an 8x8 mesh under crossing flows, sequential
// vs hj-parallel supersteps.
func BenchmarkNetDES(b *testing.B) {
	nw := netdes.Grid(8, 8, 1, 1)
	tr := netdes.Traffic{
		{Src: 0, Dst: 63, Start: 1, Interval: 1, Count: 1000},
		{Src: 63, Dst: 0, Start: 1, Interval: 1, Count: 1000},
		{Src: 7, Dst: 56, Start: 1, Interval: 1, Count: 1000},
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := netdes.Simulate(nw, tr, netdes.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered != 3000 {
					b.Fatalf("delivered %d", res.Delivered)
				}
			}
		})
	}
}

// BenchmarkLPEngine measures the partitioned logical-process engine
// (Chandy–Misra–Bryant null messages over circuit partitions, the
// PARSIR-style extension) across partition counts, reporting the
// null-message ratio — the canonical CMB overhead metric — alongside
// throughput.
func BenchmarkLPEngine(b *testing.B) {
	for _, bc := range benchCircuits {
		c := bc.build()
		stim := benchStim(c, bc.waves)
		for _, parts := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/partitions=%d", bc.name, parts), func(b *testing.B) {
				e := core.NewLP(core.Options{Partitions: parts, DiscardOutputs: true})
				var last *core.Result
				for i := 0; i < b.N; i++ {
					res, err := e.Run(c, stim)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.TotalEvents), "events/run")
				b.ReportMetric(float64(last.TotalEvents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
				b.ReportMetric(last.LP.NullRatio(), "null-ratio")
				b.ReportMetric(100*last.LP.EdgeCut, "edge-cut-%")
			})
		}
	}
}

// BenchmarkActorEngine measures the future-work actor engine on the
// multiplier for comparison with the HJ engine.
func BenchmarkActorEngine(b *testing.B) {
	c := circuit.TreeMultiplier(12)
	stim := benchStim(c, 1)
	runEngine(b, core.NewActor(core.Options{DiscardOutputs: true}), c, stim)
}
