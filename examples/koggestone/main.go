// Kogge-Stone example: simulate the paper's 64-bit parallel-prefix adder
// workload, check that the simulated circuit really adds, and compare
// the HJlib-style parallel engine against the Galois baseline across
// worker counts (the shape of the paper's Figure 5).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

const width = 64

func main() {
	c := circuit.KoggeStone(width)
	fmt.Println("circuit:", c)

	// Functional check through the DES: a few random operand pairs, one
	// wave each, read the settled sum.
	rng := rand.New(rand.NewSource(7))
	period := c.SettleTime() + 10
	var waves []map[string]circuit.Value
	var pairs [][2]uint64
	for i := 0; i < 4; i++ {
		a, b := rng.Uint64()>>1, rng.Uint64()>>1 // keep the carry in range
		waves = append(waves, circuit.KoggeStoneAssign(width, a, b))
		pairs = append(pairs, [2]uint64{a, b})
	}
	res, err := core.NewHJ(core.Options{Workers: 4}).Run(c, circuit.VectorWaves(c, waves, period))
	if err != nil {
		log.Fatal(err)
	}
	for w, pair := range pairs {
		outs := map[string]circuit.Value{}
		for name, h := range res.Outputs {
			if tv, ok := core.ValueAt(h, int64(w+1)*period); ok {
				outs[name] = tv.Value
			}
		}
		got := circuit.KoggeStoneSum(width, outs)
		status := "ok"
		if got != pair[0]+pair[1] {
			status = "WRONG"
		}
		fmt.Printf("wave %d: %d + %d = %d (%s)\n", w, pair[0], pair[1], got, status)
	}

	// Performance shape: HJ vs Galois over worker counts on a bigger
	// random workload (Figure 5's axes, scaled down).
	stim := circuit.RandomStimulus(c, 50, period, 1)
	fmt.Printf("\nworkload: %d initial events\n", stim.NumEvents())
	fmt.Printf("%-8s  %-12s  %-12s\n", "workers", "hj", "galois")
	for _, workers := range []int{1, 2, 4} {
		hj, err := core.NewHJ(core.Options{Workers: workers, DiscardOutputs: true}).Run(c, stim)
		if err != nil {
			log.Fatal(err)
		}
		ga, err := core.NewGalois(core.Options{Workers: workers, DiscardOutputs: true}).Run(c, stim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %-12v  %-12v\n", workers, hj.Elapsed.Round(1e6), ga.Elapsed.Round(1e6))
	}
}
