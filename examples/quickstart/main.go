// Quickstart: build a tiny circuit, feed it one input wave, simulate it
// with the sequential engine, and read the settled outputs.
package main

import (
	"fmt"
	"log"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

func main() {
	// A one-bit full adder: inputs a, b, cin; outputs sum, cout.
	c := circuit.FullAdder()
	fmt.Println("circuit:", c)

	// Drive a=1, b=1, cin=1 at time 0. Signals generated at circuit
	// inputs are the simulation's initial events.
	stim := circuit.SingleWave(c, map[string]circuit.Value{
		"a": 1, "b": 1, "cin": 1,
	})

	res, err := core.NewSequential(core.Options{}).Run(c, stim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run:", res)

	// The last event at each output once the circuit settles is its
	// final value: 1+1+1 = 11 in binary.
	settle := c.SettleTime()
	sum, _ := core.ValueAt(res.Outputs["sum"], settle)
	cout, _ := core.ValueAt(res.Outputs["cout"], settle)
	fmt.Printf("1+1+1 = cout=%s sum=%s\n", cout.Value, sum.Value)

	// Every engine produces the same settled outputs; try the parallel
	// one from the paper.
	par, err := core.NewHJ(core.Options{Workers: 4}).Run(c, stim)
	if err != nil {
		log.Fatal(err)
	}
	if ok, diff := core.SameOutputs(res, par); !ok {
		log.Fatalf("engines disagree: %s", diff)
	}
	fmt.Println("hj engine agrees with the sequential reference")
}
