// Network simulation example: the paper's introduction motivates DES
// with communication systems, and its future work points at network
// simulators. This example simulates a multistage butterfly
// interconnection network — the classic switching-fabric topology — and
// studies how its all-to-all wiring shapes the available parallelism,
// comparing against the serial worst case (a parity chain) and dumping
// the output waveforms as a VCD file.
package main

import (
	"fmt"
	"log"
	"os"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/harness"
	"hjdes/internal/trace"
)

func main() {
	// A 6-stage butterfly: 64 lanes, 384 switching cells.
	net := circuit.Butterfly(6)
	fmt.Println("network:", net)

	// Topology determines exploitable parallelism (the paper's Figure 1
	// insight). The butterfly's profile is broad and flat; a chain's
	// collapses to ~1.
	netProfile, err := core.ProfileCircuit(net, 1)
	if err != nil {
		log.Fatal(err)
	}
	chain := circuit.ParityChain(64)
	chainProfile, err := core.ProfileCircuit(chain, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("butterfly parallelism: steps=%d peak=%d mean=%.1f\n  %s\n",
		len(netProfile), core.MaxParallelism(netProfile), core.MeanParallelism(netProfile),
		harness.Sparkline(netProfile))
	fmt.Printf("chain parallelism:     steps=%d peak=%d mean=%.1f\n",
		len(chainProfile), core.MaxParallelism(chainProfile), core.MeanParallelism(chainProfile))

	// Simulate traffic: 50 random waves through the fabric on the HJ
	// engine, verified against the sequential reference.
	stim := circuit.RandomStimulus(net, 50, net.SettleTime()+10, 7)
	ref, err := core.NewSequential(core.Options{}).Run(net, stim)
	if err != nil {
		log.Fatal(err)
	}
	par, err := core.NewHJ(core.Options{Workers: 4}).Run(net, stim)
	if err != nil {
		log.Fatal(err)
	}
	if ok, diff := core.SameOutputs(ref, par); !ok {
		log.Fatalf("engines disagree: %s", diff)
	}
	fmt.Printf("\ntraffic: %d initial events\n  %v\n  %v\n", stim.NumEvents(), ref, par)

	// Export the switch-output waveforms for a waveform viewer.
	const vcdPath = "butterfly.vcd"
	f, err := os.Create(vcdPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteResultVCD(f, par); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveforms written to %s (open with GTKWave)\n", vcdPath)
}
