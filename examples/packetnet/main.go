// Packet network example: the paper's future-work direction — applying
// the same conservative DES machinery to communication networks. A 6x6
// mesh carries crossing traffic flows; the simulation runs sequentially
// and on the hj work-stealing runtime, producing identical per-packet
// results.
package main

import (
	"fmt"
	"log"

	"hjdes/internal/netdes"
)

func main() {
	// A 6x6 mesh with unit link delay and unit service time.
	nw := netdes.Grid(6, 6, 1, 1)
	fmt.Printf("network: %s, %d nodes, %d links\n", nw.Name, nw.N, len(nw.Links))

	// Four crossing flows between the mesh corners plus one hot-spot
	// flow into the center.
	corner := func(r, c int) netdes.NodeID { return netdes.NodeID(r*6 + c) }
	tr := netdes.Traffic{
		{Src: corner(0, 0), Dst: corner(5, 5), Start: 1, Interval: 2, Count: 300},
		{Src: corner(5, 5), Dst: corner(0, 0), Start: 1, Interval: 2, Count: 300},
		{Src: corner(0, 5), Dst: corner(5, 0), Start: 2, Interval: 2, Count: 300},
		{Src: corner(5, 0), Dst: corner(0, 5), Start: 2, Interval: 2, Count: 300},
		{Src: corner(0, 0), Dst: corner(2, 3), Start: 3, Interval: 5, Count: 100},
	}
	fmt.Printf("traffic: %d packets across %d flows\n\n", tr.TotalPackets(), len(tr))

	seq, err := netdes.Simulate(nw, tr, netdes.Config{Workers: 1, RecordPackets: true})
	if err != nil {
		log.Fatal(err)
	}
	par, err := netdes.Simulate(nw, tr, netdes.Config{Workers: 4, RecordPackets: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(seq)
	fmt.Println(par)

	// Conservative simulation is deterministic: both runs must agree on
	// every packet.
	for id := range seq.Packets {
		if seq.Packets[id] != par.Packets[id] {
			log.Fatalf("packet %d differs between engines", id)
		}
	}
	fmt.Printf("\nper-packet records identical across engines (%d packets)\n", len(seq.Packets))
	fmt.Printf("mean end-to-end latency: %.2f ticks, max: %d, total hops: %d\n",
		seq.AvgLatency(), seq.MaxLatency, seq.TotalHops)

	// Capacity planning: which routers carried the most traffic?
	fmt.Println("busiest routers:")
	for _, id := range seq.BusiestNodes(5) {
		fmt.Printf("  node %2d (row %d, col %d): %d events\n",
			id, int(id)/6, int(id)%6, seq.NodeEvents[id])
	}
}
