// Multiplier example: profile the available parallelism of the tree
// multiplier (the paper's Figure 1) and simulate the paper's 12-bit
// multiplier workload on every engine.
package main

import (
	"fmt"
	"log"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/harness"
)

func main() {
	// Figure 1: available parallelism per computation step for the
	// 6-bit tree multiplier. Low at the inputs, a bulge through the
	// fanout-heavy partial-product reduction, then a decline toward the
	// outputs.
	c6 := circuit.TreeMultiplier(6)
	profile, err := core.ProfileCircuit(c6, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("available parallelism, %v:\n", c6)
	fmt.Printf("steps=%d peak=%d mean=%.1f\n%s\n\n",
		len(profile), core.MaxParallelism(profile), core.MeanParallelism(profile),
		harness.Sparkline(profile))

	// The paper's 12-bit multiplier workload on every engine.
	c := circuit.TreeMultiplier(12)
	stim := circuit.RandomStimulus(c, 2, c.SettleTime()+10, 1)
	fmt.Printf("simulating %v, %d initial events\n", c, stim.NumEvents())
	engines := []core.Engine{
		core.NewSequential(core.Options{DiscardOutputs: true}),
		core.NewSequentialPQ(core.Options{DiscardOutputs: true}),
		core.NewHJ(core.Options{Workers: 4, DiscardOutputs: true}),
		core.NewGalois(core.Options{Workers: 4, DiscardOutputs: true}),
		core.NewGaloisFine(core.Options{Workers: 4, DiscardOutputs: true}),
		core.NewOrdered(core.Options{Workers: 4, DiscardOutputs: true}),
		core.NewActor(core.Options{DiscardOutputs: true}),
	}
	for _, e := range engines {
		res, err := e.Run(c, stim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v\n", res)
	}
}
