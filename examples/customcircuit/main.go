// Custom circuit example: assemble a circuit with the Builder API, save
// and reload it through the netlist text format, and simulate it with
// the actor engine (the paper's future-work direction).
package main

import (
	"bytes"
	"fmt"
	"log"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

func main() {
	// A 4-bit equality comparator: eq = AND over XNOR(a_i, b_i).
	b := circuit.NewBuilder("eq4")
	var bits []circuit.NodeID
	for i := 0; i < 4; i++ {
		a := b.Input(fmt.Sprintf("a%d", i))
		bb := b.Input(fmt.Sprintf("b%d", i))
		bits = append(bits, b.Xnor(a, bb))
	}
	eq := b.And(b.And(bits[0], bits[1]), b.And(bits[2], bits[3]))
	b.Output("eq", eq)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", c)

	// Round-trip through the netlist format.
	var buf bytes.Buffer
	if err := circuit.Serialize(&buf, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist (%d bytes):\n%s\n", buf.Len(), buf.String())
	c2, err := circuit.ParseNetlist(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a few comparisons on the reloaded circuit with the actor
	// engine.
	cases := [][2]uint64{{5, 5}, {5, 6}, {15, 15}, {0, 8}}
	period := c2.SettleTime() + 10
	var waves []map[string]circuit.Value
	for _, cs := range cases {
		m := map[string]circuit.Value{}
		for i := 0; i < 4; i++ {
			m[fmt.Sprintf("a%d", i)] = circuit.Value((cs[0] >> i) & 1)
			m[fmt.Sprintf("b%d", i)] = circuit.Value((cs[1] >> i) & 1)
		}
		waves = append(waves, m)
	}
	res, err := core.RunAndVerify(core.NewActor(core.Options{}), c2, waves, period)
	if err != nil {
		log.Fatal(err)
	}
	for w, cs := range cases {
		tv, _ := core.ValueAt(res.Outputs["eq"], int64(w+1)*period)
		fmt.Printf("%2d == %2d ? %s\n", cs[0], cs[1], tv.Value)
	}
	fmt.Println("run:", res)
}
