// Package cspec parses the textual circuit specifications shared by the
// command-line tools (dessim, circuitgen) and the examples:
//
//	fulladder                  the 1-bit full adder
//	mux2                       the 2:1 multiplexer
//	c17                        the ISCAS-85 c17 benchmark
//	parity-N                   N-input XOR chain
//	fanout-N                   depth-N buffer fanout tree
//	koggestone-N               N-bit Kogge-Stone adder
//	brentkung-N                N-bit Brent-Kung adder
//	mult-N                     N-bit Wallace tree multiplier
//	arraymult-N                N-bit ripple array multiplier
//	butterfly-N                N-stage butterfly switching network
//	random:IN,GATES,OUT,SEED   random layered DAG
//	file:PATH                  netlist file (hjdes text format)
//	bench:PATH                 ISCAS .bench netlist file
package cspec

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hjdes/internal/circuit"
)

// Build parses spec and constructs the circuit.
func Build(spec string) (*circuit.Circuit, error) {
	switch spec {
	case "fulladder":
		return circuit.FullAdder(), nil
	case "mux2":
		return circuit.Mux2(), nil
	case "c17":
		return circuit.C17(), nil
	}
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("cspec: %w", err)
		}
		defer f.Close()
		c, err := circuit.ParseNetlist(f)
		if err != nil {
			return nil, fmt.Errorf("cspec: parse %s: %w", path, err)
		}
		return c, nil
	}
	if path, ok := strings.CutPrefix(spec, "bench:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("cspec: %w", err)
		}
		defer f.Close()
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		c, err := circuit.ParseBench(f, name)
		if err != nil {
			return nil, fmt.Errorf("cspec: parse %s: %w", path, err)
		}
		return c, nil
	}
	if args, ok := strings.CutPrefix(spec, "random:"); ok {
		return buildRandom(args)
	}
	for _, g := range sizedGenerators {
		if arg, ok := strings.CutPrefix(spec, g.prefix); ok {
			n, err := strconv.Atoi(arg)
			if err != nil || n < g.min {
				return nil, fmt.Errorf("cspec: %s needs an integer >= %d, got %q", strings.TrimSuffix(g.prefix, "-"), g.min, arg)
			}
			if n > g.max {
				return nil, fmt.Errorf("cspec: %s size %d exceeds limit %d", strings.TrimSuffix(g.prefix, "-"), n, g.max)
			}
			return g.build(n), nil
		}
	}
	return nil, fmt.Errorf("cspec: unknown circuit spec %q (see package cspec docs for the grammar)", spec)
}

// sizedGenerators maps "name-N" prefixes to constructors. Size limits
// keep accidental typos (mult-1200) from exhausting memory.
var sizedGenerators = []struct {
	prefix   string
	min, max int
	build    func(int) *circuit.Circuit
}{
	{"parity-", 2, 1 << 20, circuit.ParityChain},
	{"fanout-", 1, 22, circuit.FanoutTree},
	{"koggestone-", 1, 4096, circuit.KoggeStone},
	{"brentkung-", 1, 4096, circuit.BrentKung},
	{"mult-", 1, 64, circuit.TreeMultiplier},
	{"arraymult-", 1, 64, circuit.ArrayMultiplier},
	{"butterfly-", 1, 12, circuit.Butterfly},
}

func buildRandom(args string) (*circuit.Circuit, error) {
	parts := strings.Split(args, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("cspec: random spec needs IN,GATES,OUT,SEED, got %q", args)
	}
	var nums [4]int64
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cspec: random spec field %d: %v", i, err)
		}
		nums[i] = v
	}
	if nums[0] < 1 || nums[1] < 0 || nums[2] < 1 {
		return nil, fmt.Errorf("cspec: random spec needs IN>=1, GATES>=0, OUT>=1")
	}
	// The sized generators cap their sizes so a typo cannot exhaust
	// memory; the random spec must not be the one uncapped back door
	// (random:1,9e18,1,0 would otherwise die in makeslice).
	if nums[0] > 1<<16 || nums[1] > 1<<20 || nums[2] > 1<<16 {
		return nil, fmt.Errorf("cspec: random spec size exceeds limits (IN,OUT<=%d, GATES<=%d)", 1<<16, 1<<20)
	}
	return circuit.RandomDAG(circuit.RandomConfig{
		Inputs: int(nums[0]), Gates: int(nums[1]), Outputs: int(nums[2]), Seed: nums[3],
	}), nil
}

// Known returns the list of supported fixed and prefix specs, for help
// text.
func Known() []string {
	out := []string{"fulladder", "mux2", "c17", "file:PATH", "bench:PATH", "random:IN,GATES,OUT,SEED"}
	for _, g := range sizedGenerators {
		out = append(out, g.prefix+"N")
	}
	return out
}
