package cspec

import (
	"strings"
	"testing"
)

// FuzzCSpecBuild drives the spec grammar with arbitrary strings: every
// input must either build a usable circuit or return an error — never
// panic, and never accept a spec that exhausts memory. The file-backed
// prefixes are skipped (they depend on the filesystem, and a fuzzed
// path like file:/dev/zero would stall the worker, not test the
// grammar).
func FuzzCSpecBuild(f *testing.F) {
	for _, spec := range []string{
		"fulladder", "mux2", "c17",
		"parity-8", "fanout-3", "koggestone-4", "brentkung-4",
		"mult-3", "arraymult-3", "butterfly-2",
		"random:4,20,3,7", "random:1,0,1,0",
		"parity-", "parity-0", "parity-x", "koggestone-9999999",
		"random:", "random:1,2,3", "random:1,2,3,4,5", "random:-1,2,3,4",
		"random:1,9223372036854775807,1,0",
		"", "bogus", "mult-64", "butterfly-13",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			t.Skip("oversized spec")
		}
		if strings.HasPrefix(spec, "file:") || strings.HasPrefix(spec, "bench:") {
			t.Skip("filesystem-backed spec")
		}
		// Clamp generator sizes: the grammar legitimately allows e.g.
		// parity-1048576, which is fine for a CLI user but too slow to
		// build thousands of times per second under the fuzzer.
		if i := strings.LastIndexByte(spec, '-'); i >= 0 && len(spec)-i > 5 {
			t.Skip("oversized generator")
		}
		if rest, ok := strings.CutPrefix(spec, "random:"); ok {
			for _, field := range strings.Split(rest, ",") {
				if len(strings.TrimLeft(strings.TrimSpace(field), "0")) > 4 {
					t.Skip("oversized random generator")
				}
			}
		}
		c, err := Build(spec)
		if err != nil {
			if c != nil {
				t.Fatal("non-nil circuit alongside error")
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit without error")
		}
		if c.NumNodes() == 0 || len(c.Inputs) == 0 {
			t.Fatalf("spec %q built degenerate circuit", spec)
		}
	})
}
