package cspec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hjdes/internal/circuit"
)

func TestBuildFixedAndSized(t *testing.T) {
	cases := []struct {
		spec      string
		wantName  string
		wantNodes int // 0 = don't check
	}{
		{"fulladder", "fulladder", 10},
		{"mux2", "mux2", 0},
		{"c17", "c17", 13},
		{"parity-8", "parity-8", 0},
		{"fanout-3", "fanout-3", 0},
		{"koggestone-16", "koggestone-16", 0},
		{"brentkung-16", "brentkung-16", 0},
		{"mult-4", "treemult-4", 0},
		{"arraymult-4", "arraymult-4", 0},
		{"butterfly-3", "butterfly-3", 0},
		{"random:4,20,2,7", "random-4-20-7", 0},
	}
	for _, tc := range cases {
		c, err := Build(tc.spec)
		if err != nil {
			t.Errorf("Build(%q): %v", tc.spec, err)
			continue
		}
		if c.Name != tc.wantName {
			t.Errorf("Build(%q).Name = %q, want %q", tc.spec, c.Name, tc.wantName)
		}
		if tc.wantNodes > 0 && c.NumNodes() != tc.wantNodes {
			t.Errorf("Build(%q) nodes = %d, want %d", tc.spec, c.NumNodes(), tc.wantNodes)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	for _, spec := range []string{
		"", "frobnicator", "koggestone-", "koggestone-x", "koggestone-0",
		"mult-9999", "random:1,2", "random:a,b,c,d", "random:0,5,1,1",
		"file:/does/not/exist.net", "butterfly-99",
		"random:1,9223372036854775807,1,0", "random:99999999,5,1,1",
		"random:1,5,99999999,1",
	} {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%q) succeeded, want error", spec)
		}
	}
}

func TestBuildFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.net")
	src := "circuit tiny\ninput 0 x\ngate 1 NOT 0\noutput 2 y 1\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Build("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "tiny" || c.NumNodes() != 3 {
		t.Fatalf("parsed %v", c)
	}
	// A malformed netlist file reports a parse error mentioning the path.
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Build("file:" + path); err == nil || !strings.Contains(err.Error(), "tiny.net") {
		t.Fatalf("err = %v, want parse error naming the file", err)
	}
}

func TestBuildFromBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c17.bench")
	src := `INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Build("bench:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" || len(c.Inputs) != 5 || len(c.Outputs) != 2 {
		t.Fatalf("parsed %v", c)
	}
	if _, err := Build("bench:/does/not/exist.bench"); err == nil {
		t.Fatal("missing bench file accepted")
	}
}

func TestBuiltCircuitsSimulate(t *testing.T) {
	// Every spec Build returns must be a valid, simulatable circuit.
	for _, spec := range []string{"fulladder", "parity-4", "koggestone-4", "brentkung-4", "mult-2", "butterfly-2", "random:3,15,2,1"} {
		c, err := Build(spec)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		out := circuit.Evaluate(c, map[string]circuit.Value{})
		if len(out) != len(c.Outputs) {
			t.Fatalf("%q: oracle produced %d outputs, want %d", spec, len(out), len(c.Outputs))
		}
	}
}

func TestKnownListsEverything(t *testing.T) {
	known := Known()
	if len(known) < 8 {
		t.Fatalf("Known() = %v", known)
	}
	joined := strings.Join(known, " ")
	for _, want := range []string{"fulladder", "koggestone-N", "butterfly-N", "file:PATH"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Known() missing %q: %v", want, known)
		}
	}
}
