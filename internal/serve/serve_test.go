package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// postJob submits a spec through the HTTP layer and returns the response.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitOK(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	resp := postJob(t, ts, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var eb errBody
		json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, eb.Error)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// waitJob polls until the job leaves queued/running or the deadline hits.
func waitJob(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) JobView {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusQueued && v.Status != StatusRunning {
			return v
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s stuck in %q after %v", id, v.Status, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) MetricsView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mv MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	return mv
}

// TestServeJobsAcrossEngines drives one job through each engine family
// over HTTP and checks results, job listing, and the admission counters.
func TestServeJobsAcrossEngines(t *testing.T) {
	s := New(Config{QueueCap: 16, Concurrency: 4})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	engines := []string{"seq", "hj", "lp", "galois", "actor", "timewarp"}
	ids := make(map[string]string, len(engines))
	for _, eng := range engines {
		ids[eng] = submitOK(t, ts, JobSpec{Circuit: "koggestone-16", Engine: eng, Waves: 4, Seed: 9, Workers: 2})
	}
	var ref int64 = -1
	for eng, id := range ids {
		v := waitJob(t, ts, id, 30*time.Second)
		if v.Status != StatusDone {
			t.Fatalf("%s job %s: status %q (err %q)", eng, id, v.Status, v.Error)
		}
		if v.Result == nil || v.Result.Events <= 0 {
			t.Fatalf("%s job %s: no events in result", eng, id)
		}
		// All engines simulate the same circuit+stimulus: same events.
		if ref == -1 {
			ref = v.Result.Events
		} else if v.Result.Events != ref {
			t.Fatalf("%s job processed %d events, other engines %d", eng, v.Result.Events, ref)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []JobView
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != len(engines) {
		t.Fatalf("GET /jobs listed %d jobs, want %d", len(all), len(engines))
	}

	mv := fetchMetrics(t, ts)
	if got := mv.Counters["serve.admitted"]; got != int64(len(engines)) {
		t.Fatalf("serve.admitted = %d, want %d", got, len(engines))
	}
	if got := mv.Counters["serve.completed"]; got != int64(len(engines)) {
		t.Fatalf("serve.completed = %d, want %d", got, len(engines))
	}
	if mv.Service.QueueCap != 16 {
		t.Fatalf("queue_cap = %d, want 16", mv.Service.QueueCap)
	}
}

// TestServeMetricsMergeCorrectness is the satellite-4 contract at the
// service level: with every job folding into ONE shared registry, the
// merged "events" counter equals the sum of the per-job event counts.
func TestServeMetricsMergeCorrectness(t *testing.T) {
	s := New(Config{QueueCap: 64, Concurrency: 4})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const jobs = 24
	ids := make([]string, 0, jobs)
	engines := []string{"seq", "hj", "lp"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := submitOK(t, ts, JobSpec{
				Circuit: "koggestone-16",
				Engine:  engines[i%len(engines)],
				Waves:   3 + i%4,
				Seed:    int64(i + 1),
				Workers: 2,
			})
			mu.Lock()
			ids = append(ids, id)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	var sum int64
	for _, id := range ids {
		v := waitJob(t, ts, id, 60*time.Second)
		if v.Status != StatusDone {
			t.Fatalf("job %s: %q (%s)", id, v.Status, v.Error)
		}
		sum += v.Result.Events
	}
	mv := fetchMetrics(t, ts)
	if got := mv.Counters["events"]; got != sum {
		t.Fatalf("registry events = %d, sum of per-job events = %d: per-job metrics lost in the merge", got, sum)
	}
}

// TestServeBackpressure forces the queue full and requires a hard 429
// with a Retry-After hint — never a blocked POST — and admission again
// once the clog clears.
func TestServeBackpressure(t *testing.T) {
	s := New(Config{QueueCap: 1, Concurrency: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One slow-ish job occupies the single executor; one more fills the
	// queue. Submissions race the executor draining the queue, so keep
	// posting until the full condition is observed.
	slow := JobSpec{Circuit: "koggestone-32", Engine: "seq", Waves: 300, Seed: 1}
	var accepted []string
	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		resp := postJob(t, ts, slow)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out struct {
				ID string `json:"id"`
			}
			json.NewDecoder(resp.Body).Decode(&out)
			accepted = append(accepted, out.ID)
		case http.StatusTooManyRequests:
			saw429 = true
			ra := resp.Header.Get("Retry-After")
			if ra == "" {
				t.Fatal("429 without Retry-After")
			}
			if n, err := strconv.Atoi(ra); err != nil || n < 1 {
				t.Fatalf("Retry-After %q not a positive integer of seconds", ra)
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("queue never reported full: backpressure path untested")
	}
	if len(accepted) < 2 {
		t.Fatalf("expected >= 2 accepted before the 429, got %d", len(accepted))
	}
	// Every accepted job still completes: rejection sheds load, it does
	// not corrupt admitted work.
	for _, id := range accepted {
		if v := waitJob(t, ts, id, 60*time.Second); v.Status != StatusDone {
			t.Fatalf("accepted job %s: %q (%s)", id, v.Status, v.Error)
		}
	}
	if got := fetchMetrics(t, ts).Counters["serve.rejected"]; got < 1 {
		t.Fatalf("serve.rejected = %d, want >= 1", got)
	}
}

// TestServePoolReuse pins the steady-state contract: same-shape hj jobs
// run back to back construct exactly one runtime and leak no goroutines
// between jobs.
func TestServePoolReuse(t *testing.T) {
	s := New(Config{QueueCap: 8, Concurrency: 1}) // serial: one runtime shape
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Circuit: "koggestone-16", Engine: "hj", Waves: 4, Seed: 3, Workers: 2}
	warm := submitOK(t, ts, spec)
	if v := waitJob(t, ts, warm, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("warmup: %q (%s)", v.Status, v.Error)
	}
	base := runtime.NumGoroutine()

	const n = 6
	for i := 0; i < n; i++ {
		id := submitOK(t, ts, spec)
		if v := waitJob(t, ts, id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("job %d: %q (%s)", i, v.Status, v.Error)
		}
	}
	ps := s.PoolStats()
	if ps.Created != 1 {
		t.Fatalf("pool created %d runtimes for %d same-shape jobs, want 1", ps.Created, n+1)
	}
	if ps.Reused != n {
		t.Fatalf("pool reused %d times, want %d", ps.Reused, n)
	}
	if ps.Discarded != 0 {
		t.Fatalf("healthy runtimes discarded: %d", ps.Discarded)
	}
	// Zero goroutine leak between jobs: allow slack only for transient
	// HTTP-connection goroutines, not a per-job worker set.
	if now := runtime.NumGoroutine(); now > base+3 {
		t.Fatalf("goroutines grew %d -> %d across %d pooled jobs", base, now, n)
	}
}

// TestServeDrainFinishesInFlight covers the happy drain: queued and
// running jobs complete inside the grace, the server stops admitting
// (503), and /healthz flips to draining.
func TestServeDrainFinishesInFlight(t *testing.T) {
	s := New(Config{QueueCap: 16, Concurrency: 2, DrainTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, submitOK(t, ts, JobSpec{Circuit: "koggestone-16", Engine: "seq", Waves: 20, Seed: int64(i + 1)}))
	}
	s.Drain()

	resp := postJob(t, ts, JobSpec{Circuit: "koggestone-16", Engine: "seq"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: %d, want 503", hresp.StatusCode)
	}

	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok || v.Status != StatusDone {
			t.Fatalf("drained job %s: %+v", id, v)
		}
	}
}

// TestServeDrainInterruptsStragglers gives the drain a tiny grace so a
// long checkpointed job is cancelled mid-run: it must land in
// "interrupted" (not "failed"), promptly, with its checkpoint visible.
func TestServeDrainInterruptsStragglers(t *testing.T) {
	s := New(Config{QueueCap: 4, Concurrency: 1, DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submitOK(t, ts, JobSpec{
		Circuit:         "koggestone-32",
		Engine:          "seq",
		Waves:           20000,
		Seed:            2,
		CheckpointEvery: 1,
	})
	// Let it run until at least one checkpoint exists before pulling the
	// plug, so the interrupt has a resume point to report.
	stop := time.Now().Add(30 * time.Second)
	for {
		v, _ := s.Job(id)
		if v.Status == StatusRunning && v.Ckpt >= 1 {
			break
		}
		if v.Status != StatusQueued && v.Status != StatusRunning {
			t.Fatalf("job finished before the drain: %q (%s)", v.Status, v.Error)
		}
		if time.Now().After(stop) {
			t.Fatalf("job saved no checkpoint in time (status %q)", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	s.Drain()
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("drain of a cancelled job took %v: cancellation not prompt", waited)
	}
	v, _ := s.Job(id)
	if v.Status != StatusInterrupted {
		t.Fatalf("straggler status %q (err %q), want %q", v.Status, v.Error, StatusInterrupted)
	}
	if v.Ckpt < 1 {
		t.Fatalf("interrupted checkpointed job saved %d checkpoints, want >= 1", v.Ckpt)
	}
	if v.CheckpointSeg < 1 {
		t.Fatalf("checkpoint_seg = %d, want >= 1 (resume point)", v.CheckpointSeg)
	}
	if got := fetchMetrics(t, ts).Counters["serve.interrupted"]; got != 1 {
		t.Fatalf("serve.interrupted = %d, want 1", got)
	}
}

// TestServeTraceEndpoint checks the per-job flight recorder round-trip:
// a traced job serves Chrome trace JSON, an untraced one a 409.
func TestServeTraceEndpoint(t *testing.T) {
	s := New(Config{QueueCap: 4, Concurrency: 2})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	traced := submitOK(t, ts, JobSpec{Circuit: "koggestone-16", Engine: "hj", Waves: 4, Seed: 5, Workers: 2, Trace: true})
	plain := submitOK(t, ts, JobSpec{Circuit: "koggestone-16", Engine: "hj", Waves: 4, Seed: 5, Workers: 2})
	for _, id := range []string{traced, plain} {
		if v := waitJob(t, ts, id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("job %s: %q (%s)", id, v.Status, v.Error)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/trace/" + traced)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	resp.Body.Close()
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traced hj job produced no trace events")
	}

	resp, err = ts.Client().Get(ts.URL + "/trace/" + plain)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of untraced job: status %d, want 409", resp.StatusCode)
	}
}

// TestServeBadSpecs exercises the admission validator end to end.
func TestServeBadSpecs(t *testing.T) {
	s := New(Config{QueueCap: 4, Concurrency: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []JobSpec{
		{},                                      // nothing
		{Circuit: "koggestone-16"},              // no engine
		{Circuit: "koggestone-16", Engine: "x"}, // unknown engine
		{Circuit: "nope-3", Engine: "seq"},      // unknown circuit
		{Circuit: "koggestone-16", Engine: "seq", Fallback: []string{"bogus"}},
		{Circuit: "koggestone-16", Engine: "seq", Waves: maxWaves + 1},
		{Circuit: "koggestone-16", Engine: "seq", Workers: -1},
		{Circuit: "koggestone-16", Engine: "seq", Retries: 99},
	}
	for i, spec := range bad {
		resp := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if got := fetchMetrics(t, ts).Counters["serve.admitted"]; got != 0 {
		t.Fatalf("bad specs admitted %d jobs", got)
	}
}

// TestServeChaoticJobDegrades runs a chaos-injected hj job with a seq
// fallback through the service and expects a degraded success — the
// resilience envelope working end to end behind the API. The panic
// budget (maxpanics=2) is exhausted by the two hj attempts, so the seq
// fallback runs clean.
func TestServeChaoticJobDegrades(t *testing.T) {
	s := New(Config{QueueCap: 4, Concurrency: 2})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submitOK(t, ts, JobSpec{
		Circuit:   "koggestone-16",
		Engine:    "hj",
		Waves:     6,
		Seed:      4,
		Workers:   2,
		Chaos:     "panic=1.0,maxpanics=2,seed=7",
		Retries:   1,
		Fallback:  []string{"seq"},
		TimeoutMS: 30000,
	})
	v := waitJob(t, ts, id, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("chaotic job: %q (%s)", v.Status, v.Error)
	}
	if !v.Result.Degraded || v.Result.Engine != "seq" {
		t.Fatalf("expected degraded seq result, got engine %q degraded=%v", v.Result.Engine, v.Result.Degraded)
	}
}

func TestServeSubmitSmallestJob(t *testing.T) {
	// The doc-example request must stay valid.
	s := New(Config{})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var spec JobSpec
	if err := json.Unmarshal([]byte(`{"circuit":"fulladder","engine":"seq"}`), &spec); err != nil {
		t.Fatal(err)
	}
	id := submitOK(t, ts, spec)
	if v := waitJob(t, ts, id, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("minimal job: %q (%s)", v.Status, v.Error)
	}
}
