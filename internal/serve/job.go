package serve

import (
	"fmt"
	"sync"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/cspec"
	"hjdes/internal/obs"
)

// JobSpec is the POST /jobs request body: one simulation job. Circuit
// and Engine are required; everything else defaults to a plain bounded
// run. The spec deliberately mirrors dessim's flags, so anything
// reproducible at the CLI is reproducible through the service.
type JobSpec struct {
	Circuit string `json:"circuit"`           // cspec grammar, e.g. "koggestone-64"
	Engine  string `json:"engine"`            // registry name, e.g. "hj" | "lp" | "seq"
	Waves   int    `json:"waves,omitempty"`   // random input waves (default 10)
	Seed    int64  `json:"seed,omitempty"`    // stimulus seed (default 1)
	Workers int    `json:"workers,omitempty"` // parallel engines (0 = GOMAXPROCS)
	// Partitions is the lp engine's logical-process count (0 = workers).
	Partitions int `json:"partitions,omitempty"`
	// TimeoutMS bounds each supervised attempt; 0 applies the server's
	// default so no job can wedge an executor forever.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Retries / Fallback / CheckpointEvery configure the resilient
	// envelope, exactly like dessim -retries/-fallback/-checkpoint-every.
	Retries         int      `json:"retries,omitempty"`
	Fallback        []string `json:"fallback,omitempty"`
	CheckpointEvery int      `json:"checkpoint_every,omitempty"`
	// Chaos is a fault-injection spec (chaos.ParseSpec grammar for the lp
	// engine, chaos.ParseSchedSpec for the rest). Chaotic jobs always run
	// on a private runtime, never a pooled one.
	Chaos string `json:"chaos,omitempty"`
	// Trace attaches a flight recorder; the drained events are served as
	// Chrome trace JSON at /trace/{id} after the job finishes.
	Trace bool `json:"trace,omitempty"`
}

// maxWaves bounds a single job's stimulus so one spec cannot exhaust the
// server's memory ("waves": 2000000000 is a client bug, not a workload).
const maxWaves = 100000

// validate normalizes defaults and rejects specs the scheduler would
// choke on. It builds the circuit (reported errors carry the cspec
// grammar) but resolves the engine name only against the registry.
func (spec *JobSpec) validate() (*circuit.Circuit, error) {
	if spec.Circuit == "" {
		return nil, fmt.Errorf("missing circuit (known: %v)", cspec.Known())
	}
	if spec.Engine == "" {
		return nil, fmt.Errorf("missing engine (known: %v)", core.EngineNames())
	}
	if _, err := core.NewEngine(spec.Engine, core.Options{}); err != nil {
		return nil, err
	}
	for _, fb := range spec.Fallback {
		if _, err := core.NewEngine(fb, core.Options{}); err != nil {
			return nil, fmt.Errorf("fallback: %w", err)
		}
	}
	if spec.Waves <= 0 {
		spec.Waves = 10
	}
	if spec.Waves > maxWaves {
		return nil, fmt.Errorf("waves %d exceeds limit %d", spec.Waves, maxWaves)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Workers < 0 || spec.Workers > 256 {
		return nil, fmt.Errorf("workers %d out of range [0,256]", spec.Workers)
	}
	if spec.Partitions < 0 || spec.Partitions > 1024 {
		return nil, fmt.Errorf("partitions %d out of range [0,1024]", spec.Partitions)
	}
	if spec.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d negative", spec.TimeoutMS)
	}
	if spec.Retries < 0 || spec.Retries > 16 {
		return nil, fmt.Errorf("retries %d out of range [0,16]", spec.Retries)
	}
	if spec.CheckpointEvery < 0 {
		return nil, fmt.Errorf("checkpoint_every %d negative", spec.CheckpointEvery)
	}
	c, err := cspec.Build(spec.Circuit)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Job lifecycle states reported by GET /jobs/{id}.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	// StatusInterrupted marks a job the graceful drain stopped mid-run;
	// when the job ran with checkpointing, CheckpointSeg in the view says
	// which segment a resubmission would resume from.
	StatusInterrupted = "interrupted"
)

// JobResult is the success payload of a finished job.
type JobResult struct {
	Engine    string      `json:"engine"` // engine that produced the result (fallback on degraded runs)
	Workers   int         `json:"workers"`
	Events    int64       `json:"events"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Attempts  int         `json:"attempts"`
	Degraded  bool        `json:"degraded"`
	Metrics   obs.Metrics `json:"metrics,omitempty"`
}

// JobView is the GET /jobs/{id} response.
type JobView struct {
	ID       string     `json:"id"`
	Status   string     `json:"status"`
	Spec     JobSpec    `json:"spec"`
	Result   *JobResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	QueuedMS float64    `json:"queued_ms"`           // admission -> start (or now)
	RunMS    float64    `json:"run_ms,omitempty"`    // start -> finish (or now)
	Trace    bool       `json:"trace"`               // /trace/{id} will serve this job
	Resumes  int64      `json:"resumes,omitempty"`   // attempts resumed from a checkpoint
	Ckpt     int64      `json:"checkpoints,omitempty"`
	// CheckpointSeg is set on interrupted checkpointed jobs: the segment
	// index a resubmitted run would resume from.
	CheckpointSeg int `json:"checkpoint_seg,omitempty"`
	SubmittedAt   time.Time `json:"submitted_at"`
}

// job is the server-side record of one admitted job.
type job struct {
	id   string
	spec JobSpec
	c    *circuit.Circuit
	stim *circuit.Stimulus

	mu        sync.Mutex
	status    string
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *JobResult
	traceEv   []obs.Event
	store     *core.CheckpointStore
}

func (j *job) markRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *job) markDone(res *core.Result) {
	j.mu.Lock()
	j.status = StatusDone
	j.finished = time.Now()
	j.result = &JobResult{
		Engine:    res.Engine,
		Workers:   res.Workers,
		Events:    res.TotalEvents,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		Attempts:  res.Attempts,
		Degraded:  res.Degraded,
		Metrics:   res.Metrics,
	}
	j.mu.Unlock()
}

func (j *job) markFailed(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.finished = time.Now()
	j.errMsg = err.Error()
	j.mu.Unlock()
}

func (j *job) markInterrupted(err error) {
	j.mu.Lock()
	j.status = StatusInterrupted
	j.finished = time.Now()
	j.errMsg = err.Error()
	j.mu.Unlock()
}

// view snapshots the job for JSON rendering.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Status:      j.status,
		Spec:        j.spec,
		Result:      j.result,
		Error:       j.errMsg,
		Trace:       j.spec.Trace,
		SubmittedAt: j.submitted,
	}
	switch {
	case j.started.IsZero():
		v.QueuedMS = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	default:
		v.QueuedMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.RunMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.store != nil {
		m := obs.Metrics{}
		j.store.MetricsInto(m)
		v.Ckpt = m["checkpoint.count"]
		v.Resumes = m["resilient.resumes"]
		if j.status == StatusInterrupted {
			if ck := j.store.Latest(); ck != nil {
				v.CheckpointSeg = ck.Seg
			}
		}
	}
	return v
}
