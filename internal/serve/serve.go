// Package serve is the multi-tenant simulation service behind cmd/dessimd:
// a bounded admission queue with hard backpressure, a fixed-width executor
// pool running every job through core.Resilient, a shared hj runtime pool
// so steady-state dispatch spawns no worker goroutines, one merged
// obs.Registry across all tenants, and a graceful drain that finishes or
// checkpoints in-flight work on SIGTERM.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/obs"
)

// Config sizes the service. The zero value is usable: a small queue, one
// executor per CPU, 10s drain grace.
type Config struct {
	// QueueCap bounds the admission queue; a POST arriving with the
	// queue full is rejected with 429 + Retry-After, never blocked.
	// <= 0 means 64.
	QueueCap int
	// Concurrency is the executor count — the hard cap on jobs running
	// simulations at once. <= 0 means GOMAXPROCS (via the runtimes).
	Concurrency int
	// DrainTimeout is the grace Drain gives queued + running jobs before
	// cancelling them (they then checkpoint/interrupt). <= 0 means 10s.
	DrainTimeout time.Duration
	// DefaultTimeout bounds a job attempt when the spec carries no
	// timeout_ms, so no tenant can wedge an executor forever. <= 0
	// means 2 minutes.
	DefaultTimeout time.Duration
	// PoolIdle is the runtime pool's per-shape idle cap (<=0 means 4).
	PoolIdle int
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) concurrency() int {
	if c.Concurrency <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Concurrency
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.DefaultTimeout
}

// Server is one service instance. Create with New, mount Handler on an
// http.Server, stop with Drain.
type Server struct {
	cfg  Config
	reg  *obs.Registry    // shared across all jobs: the /metrics truth
	pool *core.RuntimePool // shared hj runtimes (Options.Runtime)

	admitMu  sync.Mutex // guards queue send vs close (drain)
	queue    chan *job
	draining atomic.Bool

	jobsMu sync.Mutex
	jobs   map[string]*job
	order  []string // admission order, for GET /jobs
	nextID int64

	runCtx    context.Context // cancelled when the drain grace expires
	runCancel context.CancelFunc
	execWG    sync.WaitGroup

	running atomic.Int64 // jobs currently executing
}

// New builds a server and starts its executor pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:  cfg,
		reg:  obs.NewRegistry(0),
		pool: core.NewRuntimePool(cfg.PoolIdle),
		jobs: make(map[string]*job),
	}
	s.queue = make(chan *job, cfg.queueCap())
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.concurrency(); i++ {
		s.execWG.Add(1)
		go s.executor(i)
	}
	return s
}

// Registry exposes the shared metrics registry (tests assert on it).
func (s *Server) Registry() *obs.Registry { return s.reg }

// PoolStats exposes the runtime pool counters (tests assert reuse).
func (s *Server) PoolStats() core.RuntimePoolStats { return s.pool.Stats() }

// executor pulls admitted jobs until the queue is closed and drained.
// The executor index shards the service counters/histograms.
func (s *Server) executor(shard int) {
	defer s.execWG.Done()
	for j := range s.queue {
		s.running.Add(1)
		s.runJob(shard, j)
		s.running.Add(-1)
	}
}

// poolable reports whether a job may run on a shared pooled runtime.
// Trace and chaos wire per-run hooks into the runtime at construction,
// and only the hj family (including the fused lp-hj and tw-hj engines,
// whose clean runs leave the runtime quiescent) consults
// Options.Runtime at all; hj-steal1 changes the runtime's steal
// policy, so it builds its own.
func poolable(spec JobSpec) bool {
	if spec.Trace || spec.Chaos != "" {
		return false
	}
	switch spec.Engine {
	case "hj", "hj-noaff", "lp-hj", "tw-hj":
		return true
	}
	return false
}

// runJob executes one admitted job through the resilient envelope.
func (s *Server) runJob(shard int, j *job) {
	j.markRunning()
	start := time.Now()
	s.reg.Histogram("serve.queue_ms").Observe(shard, float64(start.Sub(j.submitted))/float64(time.Millisecond))

	fail := func(err error) {
		j.markFailed(err)
		s.reg.Counter("serve.failed").Inc(shard)
	}

	opts := core.Options{
		Workers:         j.spec.Workers,
		Partitions:      j.spec.Partitions,
		DiscardOutputs:  true,
		CheckpointEvery: j.spec.CheckpointEvery,
		Metrics:         s.reg,
	}
	var rec *obs.Recorder
	if j.spec.Trace {
		rec = obs.NewRecorder(0)
		opts.Trace = rec
	}
	if poolable(j.spec) {
		// Steady-state dispatch: run on a shared runtime, return it to
		// the pool after the Quiescent leak check (Put discards poisoned
		// runtimes itself, so a canceled job can't contaminate the next).
		rt := s.pool.Get(j.spec.Workers)
		opts.Runtime = rt
		defer func() { s.pool.Put(rt) }()
	}

	// Engine construction mirrors dessim: lp chaos rides the message
	// plane (inbox interceptors), everything else takes scheduler hooks.
	var eng core.Engine
	switch {
	case j.spec.Chaos != "" && (j.spec.Engine == "lp" || j.spec.Engine == "lp-hj"):
		ccfg, err := chaos.ParseSpec(j.spec.Chaos)
		if err != nil {
			fail(err)
			return
		}
		if j.spec.Engine == "lp-hj" {
			eng = core.NewLPHJIntercepted(opts, chaos.New(ccfg).Factory())
		} else {
			eng = core.NewLPIntercepted(opts, chaos.New(ccfg).Factory())
		}
	case j.spec.Chaos != "":
		ccfg, err := chaos.ParseSchedSpec(j.spec.Chaos)
		if err != nil {
			fail(err)
			return
		}
		opts.Chaos = chaos.NewSched(ccfg).Hooks()
		fallthrough
	default:
		var err error
		eng, err = core.NewEngine(j.spec.Engine, opts)
		if err != nil { // validated at admission; registry is append-only
			fail(err)
			return
		}
	}

	timeout := s.cfg.defaultTimeout()
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	var store *core.CheckpointStore
	if j.spec.CheckpointEvery > 0 {
		store = core.NewCheckpointStore()
		j.mu.Lock()
		j.store = store
		j.mu.Unlock()
	}
	rcfg := core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: timeout, Checkpoints: store},
		Retry:     core.RetryPolicy{Retries: j.spec.Retries, Seed: j.spec.Seed},
		Fallback:  j.spec.Fallback,
		Options:   opts,
	}

	res, err := core.Resilient(s.runCtx, eng, j.c, j.stim, rcfg)
	if rec != nil {
		j.mu.Lock()
		j.traceEv = rec.Events()
		j.mu.Unlock()
	}
	s.reg.Histogram("serve.job_ms").Observe(shard, float64(time.Since(start))/float64(time.Millisecond))
	switch {
	case err == nil:
		j.markDone(res)
		s.reg.Counter("serve.completed").Inc(shard)
	case errors.Is(err, context.Canceled) && s.draining.Load():
		// The drain grace expired; the §13 checkpoint (if any) is the
		// resume point a resubmission would pick up from.
		j.markInterrupted(err)
		s.reg.Counter("serve.interrupted").Inc(shard)
	default:
		fail(err)
	}
}

// Submit validates and admits a job, returning its id. It never blocks:
// a full queue returns ErrQueueFull, a draining server ErrDraining.
func (s *Server) Submit(spec JobSpec) (string, error) {
	c, err := spec.validate()
	if err != nil {
		return "", &BadSpecError{Err: err}
	}
	period := c.SettleTime() + 10
	stim := circuit.RandomStimulus(c, spec.Waves, period, spec.Seed)

	j := &job{
		spec:      spec,
		c:         c,
		stim:      stim,
		status:    StatusQueued,
		submitted: time.Now(),
	}

	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		return "", ErrDraining
	}
	select {
	case s.queue <- j:
	default:
		s.admitMu.Unlock()
		s.reg.Counter("serve.rejected").Inc(0)
		return "", ErrQueueFull
	}
	// Register under admitMu so the id exists before any client can
	// learn it, and ids stay in admission order.
	s.jobsMu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.jobsMu.Unlock()
	s.admitMu.Unlock()
	s.reg.Counter("serve.admitted").Inc(0)
	return j.id, nil
}

// Sentinel admission errors, mapped to HTTP statuses by the handlers.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: server draining, not admitting")
)

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Job returns the view of one job, or false.
func (s *Server) Job(id string) (JobView, bool) {
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists every known job in admission order.
func (s *Server) Jobs() []JobView {
	s.jobsMu.Lock()
	ids := append([]string(nil), s.order...)
	js := make([]*job, len(ids))
	for i, id := range ids {
		js[i] = s.jobs[id]
	}
	s.jobsMu.Unlock()
	out := make([]JobView, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	return out
}

// TraceEvents returns the drained flight-recorder events of a finished
// traced job (nil when the job is unknown, untraced, or still running).
func (s *Server) TraceEvents(id string) []obs.Event {
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceEv
}

// MetricsView is the GET /metrics payload: the shared registry snapshot
// merged across every job that ever ran, plus live service gauges.
type MetricsView struct {
	Counters obs.Metrics                 `json:"counters"`
	Hists    map[string]obs.HistSnapshot `json:"hists,omitempty"`
	Service  ServiceStats                `json:"service"`
}

// ServiceStats are the service-level gauges (not part of the registry:
// they are instantaneous states, not monotone counters).
type ServiceStats struct {
	QueueDepth  int            `json:"queue_depth"`
	QueueCap    int            `json:"queue_cap"`
	Running     int            `json:"running"`
	Concurrency int            `json:"concurrency"`
	Draining    bool           `json:"draining"`
	Jobs        map[string]int `json:"jobs"` // status -> count
	Pool        core.RuntimePoolStats `json:"pool"`
}

// Metrics snapshots the shared registry and the live gauges.
func (s *Server) Metrics() MetricsView {
	snap := s.reg.Snapshot()
	s.pool.Stats().MetricsInto(snap.Counters)
	byStatus := make(map[string]int)
	s.jobsMu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		byStatus[j.status]++
		j.mu.Unlock()
	}
	s.jobsMu.Unlock()
	return MetricsView{
		Counters: snap.Counters,
		Hists:    snap.Hists,
		Service: ServiceStats{
			QueueDepth:  len(s.queue),
			QueueCap:    cap(s.queue),
			Running:     int(s.running.Load()),
			Concurrency: s.cfg.concurrency(),
			Draining:    s.draining.Load(),
			Jobs:        byStatus,
			Pool:        s.pool.Stats(),
		},
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admission, lets queued and running jobs finish within the
// configured grace, then cancels the stragglers (they surface
// context.Canceled promptly and are recorded as interrupted, with their
// latest checkpoint segment visible in the job view). It returns once
// every executor has exited and the runtime pool is shut down — the
// clean-exit point for SIGTERM. Safe to call more than once.
func (s *Server) Drain() {
	s.admitMu.Lock()
	first := !s.draining.Swap(true)
	if first {
		close(s.queue)
	}
	s.admitMu.Unlock()
	if !first {
		return
	}
	done := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.drainTimeout()):
		s.runCancel()
		<-done
	}
	s.runCancel() // release the context either way
	s.pool.Close()
}

// ---- HTTP layer -------------------------------------------------------

// Handler mounts the service API (Go 1.22 method+pattern routing):
//
//	POST /jobs        admit a JobSpec  -> 202 {"id": ...} | 400 | 429 | 503
//	GET  /jobs        list all jobs
//	GET  /jobs/{id}   one job's status/result
//	GET  /metrics     merged registry snapshot + service gauges
//	GET  /trace/{id}  Chrome trace JSON of a finished traced job
//	GET  /healthz     200 ("ok") | 503 ("draining")
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "bad job spec: " + err.Error()})
		return
	}
	id, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, struct {
			ID string `json:"id"`
		}{ID: id})
	case errors.Is(err, ErrQueueFull):
		// Hard backpressure: the client owns the retry. The hint scales
		// with how much work is ahead of it.
		hint := 1 + len(s.queue)/(2*s.cfg.concurrency())
		w.Header().Set("Retry-After", strconv.Itoa(hint))
		writeJSON(w, http.StatusTooManyRequests, errBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: "no such job"})
		return
	}
	if !v.Trace {
		writeJSON(w, http.StatusConflict, errBody{Error: "job was not traced (submit with \"trace\": true)"})
		return
	}
	ev := s.TraceEvents(id)
	if ev == nil {
		writeJSON(w, http.StatusConflict, errBody{Error: "trace not ready: job still queued or running"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sort.SliceStable(ev, func(a, b int) bool { return ev[a].TS < ev[b].TS })
	obs.WriteChromeTrace(w, ev)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
