package partition

import (
	"reflect"
	"testing"

	"hjdes/internal/circuit"
)

func testCircuits() []*circuit.Circuit {
	return []*circuit.Circuit{
		circuit.C17(),
		circuit.FullAdder(),
		circuit.KoggeStone(16),
		circuit.KoggeStone(64),
		circuit.TreeMultiplier(8),
		circuit.BrentKung(16),
		circuit.ParityChain(24),
		circuit.RandomDAG(circuit.RandomConfig{Inputs: 6, Gates: 90, Outputs: 4, Seed: 7}),
	}
}

// TestPartitionInvariants checks the structural contract of a Plan for
// many circuits and partition counts: complete disjoint assignment,
// accurate sizes, cut edges exactly the cross-partition circuit edges,
// channels aggregating them with the minimum lookahead.
func TestPartitionInvariants(t *testing.T) {
	for _, c := range testCircuits() {
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			p, err := Partition(c, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", c.Name, k, err)
			}
			if p.K < 1 || p.K > k || (k <= c.NumNodes() && p.K != k) {
				t.Fatalf("%s k=%d: plan K=%d", c.Name, k, p.K)
			}
			if len(p.Assign) != c.NumNodes() {
				t.Fatalf("%s k=%d: %d assignments for %d nodes", c.Name, k, len(p.Assign), c.NumNodes())
			}
			sizes := make([]int, p.K)
			for id, part := range p.Assign {
				if part < 0 || part >= p.K {
					t.Fatalf("%s k=%d: node %d assigned to %d", c.Name, k, id, part)
				}
				sizes[part]++
			}
			if !reflect.DeepEqual(sizes, p.Sizes) {
				t.Fatalf("%s k=%d: Sizes=%v, recount=%v", c.Name, k, p.Sizes, sizes)
			}
			for part, s := range sizes {
				if s == 0 {
					t.Fatalf("%s k=%d: partition %d is empty", c.Name, k, part)
				}
			}
			// Cut edges must be exactly the cross-partition edges.
			wantCut := 0
			for i := range c.Nodes {
				for _, d := range c.Nodes[i].Fanout {
					if p.Assign[i] != p.Assign[d.Node] {
						wantCut++
					}
				}
			}
			if len(p.CutEdges) != wantCut {
				t.Fatalf("%s k=%d: %d cut edges, want %d", c.Name, k, len(p.CutEdges), wantCut)
			}
			inChannels := 0
			for _, ch := range p.Channels {
				if ch.From == ch.To {
					t.Fatalf("%s k=%d: self-channel %d", c.Name, k, ch.From)
				}
				min := int64(0)
				for i, ei := range ch.Edges {
					ce := p.CutEdges[ei]
					if p.Assign[ce.Src] != ch.From || p.Assign[ce.Dst] != ch.To {
						t.Fatalf("%s k=%d: edge %v misfiled in channel %d->%d", c.Name, k, ce, ch.From, ch.To)
					}
					want := c.Nodes[ce.Src].Kind.Delay() + circuit.WireDelay
					if ce.Lookahead != want {
						t.Fatalf("%s k=%d: edge lookahead %d, want %d", c.Name, k, ce.Lookahead, want)
					}
					if i == 0 || ce.Lookahead < min {
						min = ce.Lookahead
					}
				}
				if ch.Lookahead != min {
					t.Fatalf("%s k=%d: channel lookahead %d, want %d", c.Name, k, ch.Lookahead, min)
				}
				if ch.Lookahead <= 0 {
					t.Fatalf("%s k=%d: nonpositive lookahead %d", c.Name, k, ch.Lookahead)
				}
				inChannels += len(ch.Edges)
			}
			if inChannels != len(p.CutEdges) {
				t.Fatalf("%s k=%d: channels cover %d edges of %d", c.Name, k, inChannels, len(p.CutEdges))
			}
			if k == 1 && len(p.CutEdges) != 0 {
				t.Fatalf("%s k=1 has %d cut edges", c.Name, len(p.CutEdges))
			}
			if bal := p.LoadBalance(); bal < 1.0-1e-9 {
				t.Fatalf("%s k=%d: load balance %f < 1", c.Name, k, bal)
			}
			if f := p.EdgeCutFraction(); f < 0 || f > 1 {
				t.Fatalf("%s k=%d: edge cut fraction %f", c.Name, k, f)
			}
		}
	}
}

// TestPartitionDeterministic: same circuit + k must give the same plan.
func TestPartitionDeterministic(t *testing.T) {
	for _, k := range []int{2, 3, 8} {
		c := circuit.KoggeStone(32)
		a, err := Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(circuit.KoggeStone(32), k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Assign, b.Assign) {
			t.Fatalf("k=%d: nondeterministic assignment", k)
		}
		if !reflect.DeepEqual(a.CutEdges, b.CutEdges) {
			t.Fatalf("k=%d: nondeterministic cut edges", k)
		}
	}
}

// TestPartitionClampsK: more partitions than nodes must clamp, not fail.
func TestPartitionClampsK(t *testing.T) {
	c := circuit.FullAdder()
	p, err := Partition(c, 10*c.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if p.K != c.NumNodes() {
		t.Fatalf("K=%d, want %d", p.K, c.NumNodes())
	}
	for _, s := range p.Sizes {
		if s != 1 {
			t.Fatalf("sizes %v with K=nodes", p.Sizes)
		}
	}
}

func TestPartitionRejectsBadK(t *testing.T) {
	for _, k := range []int{0, -1} {
		if _, err := Partition(circuit.C17(), k); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
}

// TestRefinementImprovesCut: on a structured circuit, refined partitions
// should not cut more edges than naive ID-order chunking.
func TestRefinementImprovesCut(t *testing.T) {
	c := circuit.KoggeStone(64)
	p, err := Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Naive chunking by raw node ID.
	n := c.NumNodes()
	naive := 0
	chunk := (n + 3) / 4
	for i := range c.Nodes {
		for _, d := range c.Nodes[i].Fanout {
			if i/chunk != int(d.Node)/chunk {
				naive++
			}
		}
	}
	if len(p.CutEdges) > naive {
		t.Fatalf("refined cut %d worse than naive chunk cut %d", len(p.CutEdges), naive)
	}
	if p.LoadBalance() > 1.35 {
		t.Fatalf("load balance %f too skewed", p.LoadBalance())
	}
}

// TestLevelOrderIsTopological: LevelOrder must place every edge's source
// before its destination.
func TestLevelOrderIsTopological(t *testing.T) {
	for _, c := range testCircuits() {
		order := LevelOrder(c)
		pos := make([]int, c.NumNodes())
		for i, id := range order {
			pos[id] = i
		}
		for i := range c.Nodes {
			for _, d := range c.Nodes[i].Fanout {
				if pos[i] >= pos[d.Node] {
					t.Fatalf("%s: edge %d->%d violates LevelOrder", c.Name, i, d.Node)
				}
			}
		}
	}
}
