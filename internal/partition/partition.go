// Package partition splits a circuit DAG into K node-disjoint partitions
// for the logical-process engine (internal/lp). The partitioner is
// deterministic: the same circuit and K always produce the same Plan.
//
// The algorithm is level-grow + refine:
//
//  1. Nodes are ordered by topological level (longest distance from an
//     input) with node ID as the tiebreaker, then sliced into K
//     contiguous, equally sized blocks. Level-contiguous blocks put most
//     edges inside a partition or between adjacent partitions, matching
//     how activity waves flow through a combinational circuit.
//  2. A greedy boundary-refinement pass (a single-move variant of
//     Kernighan–Lin / Fiduccia–Mattheyses) repeatedly moves a node to a
//     neighboring partition when that strictly reduces the number of cut
//     edges and keeps partition sizes within a balance tolerance.
//
// The Plan also derives the per-channel lookahead the Chandy–Misra–Bryant
// protocol needs: an event crossing edge u→v is emitted at (processing
// time of u) + delay(u) + WireDelay, so a source partition whose local
// safe time is T can promise the destination that no event will arrive on
// the edge before T + delay(u) + WireDelay. A channel's lookahead is the
// minimum of that bound over its cut edges.
package partition

import (
	"fmt"
	"sort"

	"hjdes/internal/circuit"
)

// CutEdge is one circuit edge whose endpoints live in different
// partitions.
type CutEdge struct {
	Src     circuit.NodeID // source node (owns the output port)
	Dst     circuit.NodeID // destination node
	DstPort int            // input port index on Dst
	// Lookahead is the minimum increment between the source partition's
	// safe time and any future event on this edge:
	// delay(Src) + WireDelay.
	Lookahead int64
}

// Channel is one directed partition-to-partition message channel,
// aggregating every cut edge with the same (From, To) pair.
type Channel struct {
	From, To  int     // partition indices
	Lookahead int64   // min lookahead over Edges
	Edges     []int   // indices into Plan.CutEdges
}

// Plan is the result of partitioning: the node→partition assignment, the
// cut edges, the derived channels, and quality statistics.
type Plan struct {
	K        int   // number of partitions (may be clamped below the request)
	Assign   []int // node ID → partition index
	Sizes    []int // node count per partition
	CutEdges []CutEdge
	Channels []Channel
	edges    int // total directed edge count of the circuit
}

// refineSweeps bounds the boundary-refinement passes; each sweep is
// O(edges), and gains shrink quickly.
const refineSweeps = 8

// balanceSlack is the fraction by which a partition may exceed the ideal
// size ceil(n/k) during refinement.
const balanceSlack = 0.1

// Partition splits c into k node-disjoint partitions. k must be positive;
// it is clamped to the node count so no partition is empty.
func Partition(c *circuit.Circuit, k int) (*Plan, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	n := c.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("partition: circuit %q has no nodes", c.Name)
	}
	if k > n {
		k = n
	}

	p := &Plan{K: k, Assign: make([]int, n), Sizes: make([]int, k), edges: c.NumEdges()}
	order := LevelOrder(c)
	// Slice the level order into k blocks whose sizes differ by at most
	// one (the first n%k blocks get the extra node).
	quo, rem := n/k, n%k
	idx := 0
	for part := 0; part < k; part++ {
		size := quo
		if part < rem {
			size++
		}
		for i := 0; i < size; i++ {
			p.Assign[order[idx]] = part
			idx++
		}
		p.Sizes[part] = size
	}
	if k > 1 {
		p.refine(c)
	}
	p.deriveCut(c)
	return p, nil
}

// LevelOrder returns all node IDs sorted by (topological level, ID),
// where a node's level is its longest distance in edges from an input.
// The order is deterministic and consistent with every circuit edge, so
// any subsequence of it is a valid topological order of the induced
// subgraph; internal/lp relaxes its per-partition lookahead bounds along
// it.
func LevelOrder(c *circuit.Circuit) []circuit.NodeID {
	n := c.NumNodes()
	level := make([]int, n)
	indeg := make([]int, n)
	for i := range c.Nodes {
		indeg[i] = c.Nodes[i].NumIn()
	}
	// Kahn's algorithm; the circuit is a validated DAG, so every node is
	// eventually released.
	var frontier []circuit.NodeID
	for i := range c.Nodes {
		if indeg[i] == 0 {
			frontier = append(frontier, circuit.NodeID(i))
		}
	}
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		for _, d := range c.Nodes[id].Fanout {
			if l := level[id] + 1; l > level[d.Node] {
				level[d.Node] = l
			}
			indeg[d.Node]--
			if indeg[d.Node] == 0 {
				frontier = append(frontier, d.Node)
			}
		}
	}
	order := make([]circuit.NodeID, n)
	for i := range order {
		order[i] = circuit.NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if level[order[a]] != level[order[b]] {
			return level[order[a]] < level[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// refine greedily moves boundary nodes to the neighboring partition that
// removes the most cut edges, keeping sizes within the balance tolerance.
func (p *Plan) refine(c *circuit.Circuit) {
	n := c.NumNodes()
	maxSize := (n+p.K-1)/p.K + int(balanceSlack*float64(n)/float64(p.K))
	if maxSize < 2 {
		maxSize = 2
	}
	// gain counts, per foreign partition, the edges a node shares with
	// it; cands is its reusable sorted key list.
	gain := make(map[int]int, 8)
	var cands []int
	for sweep := 0; sweep < refineSweeps; sweep++ {
		moved := 0
		for i := 0; i < n; i++ {
			home := p.Assign[i]
			if p.Sizes[home] <= 1 {
				continue // never empty a partition
			}
			// Count, per foreign partition, the edges node i shares with
			// it; edges to home count against every candidate move.
			clear(gain)
			local := 0
			count := func(other circuit.NodeID) {
				if other == circuit.NoNode {
					return
				}
				if q := p.Assign[other]; q == home {
					local++
				} else {
					gain[q]++
				}
			}
			node := &c.Nodes[i]
			for _, src := range node.Fanin {
				count(src)
			}
			for _, d := range node.Fanout {
				count(d.Node)
			}
			// Candidates in ascending partition order: map iteration is
			// randomized, and the plan must be deterministic.
			cands := cands[:0]
			for q := range gain {
				cands = append(cands, q)
			}
			sort.Ints(cands)
			best, bestNet := -1, 0
			for _, q := range cands {
				if net := gain[q] - local; net > bestNet && p.Sizes[q] < maxSize {
					best, bestNet = q, net
				}
			}
			if best >= 0 {
				p.Sizes[home]--
				p.Sizes[best]++
				p.Assign[i] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// deriveCut fills CutEdges and Channels from the final assignment.
func (p *Plan) deriveCut(c *circuit.Circuit) {
	chanIdx := make(map[[2]int]int)
	for i := range c.Nodes {
		src := &c.Nodes[i]
		from := p.Assign[i]
		for _, d := range src.Fanout {
			to := p.Assign[d.Node]
			if to == from {
				continue
			}
			la := src.Kind.Delay() + circuit.WireDelay
			p.CutEdges = append(p.CutEdges, CutEdge{
				Src: src.ID, Dst: d.Node, DstPort: d.In, Lookahead: la,
			})
			key := [2]int{from, to}
			ci, ok := chanIdx[key]
			if !ok {
				ci = len(p.Channels)
				chanIdx[key] = ci
				p.Channels = append(p.Channels, Channel{From: from, To: to, Lookahead: la})
			}
			ch := &p.Channels[ci]
			ch.Edges = append(ch.Edges, len(p.CutEdges)-1)
			if la < ch.Lookahead {
				ch.Lookahead = la
			}
		}
	}
}

// EdgeCutFraction reports the fraction of circuit edges that cross
// partitions (0 for K=1).
func (p *Plan) EdgeCutFraction() float64 {
	if p.edges == 0 {
		return 0
	}
	return float64(len(p.CutEdges)) / float64(p.edges)
}

// LoadBalance reports the largest partition's node count divided by the
// ideal (mean) partition size; 1.0 is perfectly balanced.
func (p *Plan) LoadBalance() float64 {
	if len(p.Sizes) == 0 {
		return 0
	}
	max, total := 0, 0
	for _, s := range p.Sizes {
		total += s
		if s > max {
			max = s
		}
	}
	mean := float64(total) / float64(len(p.Sizes))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// MinLookahead reports the smallest channel lookahead, the bound that
// controls null-message progress (TimeInfinity-free; 0 when there are no
// channels).
func (p *Plan) MinLookahead() int64 {
	var min int64
	for i, ch := range p.Channels {
		if i == 0 || ch.Lookahead < min {
			min = ch.Lookahead
		}
	}
	return min
}

func (p *Plan) String() string {
	return fmt.Sprintf("plan{k=%d cut=%d/%d (%.1f%%) balance=%.2f lookahead>=%d}",
		p.K, len(p.CutEdges), p.edges, 100*p.EdgeCutFraction(), p.LoadBalance(), p.MinLookahead())
}
