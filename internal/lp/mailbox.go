package lp

import (
	"sync/atomic"
)

// Lock-free MPSC mailbox for the fused hj-scheduled LP mode (RunHJ).
//
// Each LP owns one mailbox; any peer LP (running on any hj worker) may
// push a batch of messages into it concurrently, and only the owning
// LP's current slice drains it. The structure is an intrusive Treiber
// stack of mail nodes: producers CAS-push onto head, the consumer
// Swap(nil)s the whole chain and reverses it, which restores exact push
// order. Per-(node, port) FIFO — the ordering the receiving deques
// depend on — follows because each destination port has exactly one
// source LP, sends from one LP are pushed in send order, and the
// reversal preserves that order globally.
//
// Node recycling is deliberately not a sync.Pool: a GC wipes pools
// mid-run, which showed up in profiles as steady mail re-allocation
// proportional to message volume. Instead each LP carves nodes from
// private chunk slabs (one allocation per mailChunk sends) and keeps a
// private free list of nodes it drained; both are owner-only (touched
// inside the LP's slice), so a hit costs a pointer swap and no
// synchronization. Nodes migrate sender→receiver and are reused for the
// receiver's own sends; a pure sink LP just lets its overflow go to the
// garbage collector. The batch slices the nodes carry keep cycling
// through msgArena exactly as in the goroutine transport.

// mail is one pushed batch, an intrusive stack link.
type mail struct {
	batch []Msg
	next  *mail
}

// mailChunk is the slab size for sender-side node allocation; mailFreeCap
// bounds the receiver-side free list (~24 B per node — the cap only
// limits retention, nothing is preallocated).
const (
	mailChunk   = 256
	mailFreeCap = 4096
)

// mailbox is the lock-free MPSC inbox of one hj-scheduled LP.
type mailbox struct {
	head atomic.Pointer[mail]
}

// push adds m to the mailbox. Safe from any goroutine.
func (b *mailbox) push(m *mail) {
	for {
		old := b.head.Load()
		m.next = old
		if b.head.CompareAndSwap(old, m) {
			return
		}
	}
}

// empty reports whether the mailbox currently holds no mail.
func (b *mailbox) empty() bool { return b.head.Load() == nil }

// drain detaches the entire chain and returns it in FIFO push order
// (oldest first). Only the owning LP may call it.
func (b *mailbox) drain() *mail {
	m := b.head.Swap(nil)
	var fifo *mail
	for m != nil {
		next := m.next
		m.next = fifo
		fifo = m
		m = next
	}
	return fifo
}

// putMail and getMail are the unpooled node helpers (tests and one-off
// callers); the engine path goes through the per-proc takeMail/freeMail.
func putMail(m *mail) { m.batch, m.next = nil, nil }

func getMail(batch []Msg) *mail { return &mail{batch: batch} }

// takeMail fetches a node carrying batch from the LP's private free
// list, carving a fresh chunk slab when it runs dry. Owner-only: call
// only from p's own slice.
func (p *proc) takeMail(batch []Msg) *mail {
	m := p.mailFree
	if m == nil {
		chunk := make([]mail, mailChunk)
		for i := range chunk[:mailChunk-1] {
			chunk[i].next = &chunk[i+1]
		}
		m = &chunk[0]
		p.mailFreeN = mailChunk
	}
	p.mailFree, p.mailFreeN = m.next, p.mailFreeN-1
	m.batch, m.next = batch, nil
	return m
}

// freeMail retires a drained node to the LP's private free list; beyond
// the cap the node is simply dropped for the collector. Owner-only.
func (p *proc) freeMail(m *mail) {
	if p.mailFreeN >= mailFreeCap {
		return
	}
	m.batch, m.next = nil, p.mailFree
	p.mailFree, p.mailFreeN = m, p.mailFreeN+1
}
