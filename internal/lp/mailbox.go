package lp

import (
	"sync/atomic"
)

// Lock-free MPSC mailbox for the hj-scheduled engine modes (lp's RunHJ
// and core's tw-hj), generic over the payload one pushed node carries.
//
// Each LP owns one mailbox; any peer LP (running on any hj worker) may
// push a batch of messages into it concurrently, and only the owning
// LP's current slice drains it. The structure is an intrusive Treiber
// stack of mail nodes: producers CAS-push onto head, the consumer
// Swap(nil)s the whole chain and reverses it, which restores exact push
// order. Per-sender FIFO — the ordering both the conservative deques
// and Time Warp's positive-before-anti rule depend on — follows because
// sends from one LP are pushed in send order and the reversal preserves
// that order globally.
//
// Node recycling is deliberately not a sync.Pool: a GC wipes pools
// mid-run, which showed up in profiles as steady mail re-allocation
// proportional to message volume. Instead each LP carves nodes from
// private chunk slabs (one allocation per mailChunk sends) and keeps a
// private free list of nodes it drained; both are owner-only (touched
// inside the LP's slice), so a hit costs a pointer swap and no
// synchronization. Nodes migrate sender→receiver and are reused for the
// receiver's own sends; a pure sink LP just lets its overflow go to the
// garbage collector.

// Mail is one pushed value, an intrusive stack link. Next is exported
// so other packages can run the same owner-only chunk-slab recycling
// the lp engine uses; outside a drain/free-list owner it must not be
// touched.
type Mail[T any] struct {
	Val  T
	Next *Mail[T]
}

// mailChunk is the slab size for sender-side node allocation; mailFreeCap
// bounds the receiver-side free list (~24 B per node — the cap only
// limits retention, nothing is preallocated).
const (
	mailChunk   = 256
	mailFreeCap = 4096
)

// Mailbox is a lock-free MPSC inbox: many concurrent producers, one
// owner-consumer at a time. The zero value is ready to use.
type Mailbox[T any] struct {
	head atomic.Pointer[Mail[T]]
}

// Push adds m to the mailbox. Safe from any goroutine.
func (b *Mailbox[T]) Push(m *Mail[T]) {
	for {
		old := b.head.Load()
		m.Next = old
		if b.head.CompareAndSwap(old, m) {
			return
		}
	}
}

// Empty reports whether the mailbox currently holds no mail.
func (b *Mailbox[T]) Empty() bool { return b.head.Load() == nil }

// Drain detaches the entire chain and returns it in FIFO push order
// (oldest first). Only the owning consumer may call it.
func (b *Mailbox[T]) Drain() *Mail[T] {
	m := b.head.Swap(nil)
	var fifo *Mail[T]
	for m != nil {
		next := m.Next
		m.Next = fifo
		fifo = m
		m = next
	}
	return fifo
}

// mail and mailbox are the lp engine's concrete instantiations: one
// node carries one batch of cross-partition messages.
type (
	mail    = Mail[[]Msg]
	mailbox = Mailbox[[]Msg]
)

// putMail and getMail are the unpooled node helpers (tests and one-off
// callers); the engine path goes through the per-proc takeMail/freeMail.
func putMail(m *mail) { m.Val, m.Next = nil, nil }

func getMail(batch []Msg) *mail { return &mail{Val: batch} }

// takeMail fetches a node carrying batch from the LP's private free
// list, carving a fresh chunk slab when it runs dry. Owner-only: call
// only from p's own slice.
func (p *proc) takeMail(batch []Msg) *mail {
	m := p.mailFree
	if m == nil {
		chunk := make([]mail, mailChunk)
		for i := range chunk[:mailChunk-1] {
			chunk[i].Next = &chunk[i+1]
		}
		m = &chunk[0]
		p.mailFreeN = mailChunk
	}
	p.mailFree, p.mailFreeN = m.Next, p.mailFreeN-1
	m.Val, m.Next = batch, nil
	return m
}

// freeMail retires a drained node to the LP's private free list; beyond
// the cap the node is simply dropped for the collector. Owner-only.
func (p *proc) freeMail(m *mail) {
	if p.mailFreeN >= mailFreeCap {
		return
	}
	m.Val, m.Next = nil, p.mailFree
	p.mailFree, p.mailFreeN = m, p.mailFreeN+1
}
