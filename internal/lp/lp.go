// Package lp is a partitioned logical-process runtime for conservative
// discrete event simulation, implementing the Chandy–Misra–Bryant (CMB)
// null-message protocol over the partitions produced by internal/partition.
//
// Each partition becomes one logical process (LP): a goroutine owning the
// runtime state of its nodes, with its own event storage and workset.
// Nothing mutable is shared between LPs — every cross-partition event
// travels as a timestamped message through a bounded inbox channel.
//
// # Protocol
//
// Within an LP, nodes run the same per-node Chandy–Misra algorithm as the
// in-memory engines: every input port keeps a clock (a lower bound on all
// future arrivals) and a FIFO of pending events, and a node may process
// any event whose timestamp is at most the minimum of its port clocks.
// Intra-partition edges deliver events synchronously; cut edges send an
// event message to the destination LP.
//
// Because partitions of a DAG can form cycles in the quotient graph, an
// LP that runs out of ready work cannot simply block: two LPs waiting on
// each other would deadlock. Before blocking, an LP therefore sends a
// null message on every outbound channel, promising that no event will
// ever arrive on that channel with a timestamp below the promised value,
// and the receiver advances the channel's port clocks to the promise.
// The promise for a channel is the minimum, over the channel's cut edges
// y→·, of a per-node output bound lbOut(y), computed by relaxing the
// LP's own sub-DAG in topological order:
//
//	lbOut(y) = earliest(y) + delay(y) + WireDelay
//	earliest(y) = min over ports p of min(queued timestamps on p,
//	              max(clock(p), lbOut(intra feeder of p)))
//
// earliest(y) lower-bounds the timestamp of any event y may still
// process — queued events only gain time as they cascade, future local
// arrivals are bounded by the feeder's own output bound, and future
// cross arrivals are bounded by the port clock. Every relaxation step
// adds the positive per-edge lookahead delay + WireDelay from the
// partition plan, so promises exchanged around a channel cycle strictly
// increase and the simulation always progresses (the CMB guarantee).
// Null messages are sent only when an LP is about to block and only when
// they improve on the channel's previous promise, which keeps the
// null-message ratio bounded.
//
// Termination reuses the engines' NULL(∞) convention: a drained node
// propagates infinity to its fanout (as a per-edge message across cuts),
// and an LP exits once every owned node has terminated. Bounded inboxes
// provide backpressure; a sender whose destination inbox is full drains
// its own inbox while waiting, so message cycles cannot deadlock either.
//
// # Supervision
//
// A Run may carry a context (Config.Ctx): when it is canceled every LP
// unwinds at its next blocking point or loop iteration, no goroutine is
// leaked, and Run returns the context's cause. A Probe (Config.Probe)
// exposes a monotonic progress counter and a per-LP diagnostic snapshot
// (state, minimum local clock, inbox depth, live nodes) for external
// stall watchdogs. A panic inside an LP is contained: the LP floods
// NULL(∞) so its peers terminate, and Run returns a *PanicError naming
// the LP with the recovered value and stack.
//
// # Fault injection
//
// Config.NewInterceptor installs a per-LP Interceptor at the inbox
// boundary: every cross-partition message passes through it on the
// sender's goroutine, and the interceptor decides what is actually
// delivered (possibly held, reordered across ports, or — for null
// messages only — duplicated). Interceptors power the deterministic
// chaos engine in internal/chaos; see the Interceptor contract for the
// invariants an implementation must preserve.
package lp

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
	"hjdes/internal/queue"
)

// TimeInfinity is the NULL(∞) timestamp announcing that a port will never
// see another event (same convention as the in-memory engines).
const TimeInfinity int64 = 1<<63 - 1

// clockUnset marks a port that has not received any event or promise yet.
const clockUnset int64 = -1

// TimedValue is one observed (time, value) sample at an output terminal.
type TimedValue struct {
	Time  int64
	Value circuit.Value
}

// Config tunes one Run.
type Config struct {
	// Record keeps output-terminal event histories.
	Record bool
	// Paranoid asserts per-port timestamp monotonicity: a signal event
	// arriving below its port clock (a broken lookahead promise) panics,
	// and Run reports the panic as an error.
	Paranoid bool
	// InboxCap bounds each LP's inbox; 0 means DefaultInboxCap.
	InboxCap int
	// Ctx, when non-nil, bounds the run: on cancellation every LP unwinds
	// promptly (at a blocking send/receive or the loop top) and Run
	// returns context.Cause(Ctx). A nil Ctx means no external bound.
	Ctx context.Context
	// NewInterceptor, when non-nil, is called once per LP before the run
	// starts; the returned Interceptor (nil to leave that LP untouched)
	// sees every message the LP sends across a cut.
	NewInterceptor func(lp int) Interceptor
	// Probe, when non-nil, is attached to the run so external watchdogs
	// can sample progress and snapshot per-LP state while Run executes.
	Probe *Probe
	// Trace, when non-nil, attaches a flight recorder: each LP owns ring
	// shard = its LP id and records sends, receives, nulls, blocks and
	// checkpoint/restart cycles.
	Trace *obs.Recorder
	// Metrics, when non-nil, receives live sharded measurements (currently
	// the "lp.batch_size" histogram, observed per shipped batch on the
	// sender's shard).
	Metrics *obs.Registry
	// InitVals, when its length matches the circuit's node count, seeds
	// every node's per-port current values before the run: the
	// engine-agnostic resume path for a run that continues from a settled
	// checkpoint (the stimulus then carries only the remaining
	// transitions). Port clocks and queues start fresh — a settled
	// checkpoint is quiescent, so wire values are the whole state.
	InitVals [][2]circuit.Value
	// CaptureFinal copies every node's settled per-port values into
	// Result.FinalVals after a clean termination, for checkpointing.
	CaptureFinal bool
	// NoAffinity disables home-worker routing in RunHJ (hj mode only):
	// LP slices are pushed to the spawning worker's own deque instead of
	// the destination LP's home mailbox. Ignored by Run.
	NoAffinity bool
}

// DefaultInboxCap is the default per-LP inbox bound (in batches): small
// enough for backpressure, large enough that senders rarely stall.
const DefaultInboxCap = 1024

// batchCap is the coalescing limit of one cross-partition batch: an LP
// buffers outgoing messages per destination and ships them as a single
// channel send when the buffer fills or the LP reaches a blocking point,
// amortizing channel synchronization over up to batchCap messages.
// hjBatchCap is the hj-mode limit: run-to-completion slices emit long
// bursts without ever blocking, so a larger batch amortizes the mailbox
// CAS, the scheduled-flag check, and — most of all — the task enqueue
// and worker wakeup over 4× the messages. Goroutine mode keeps the
// smaller cap: its sends are also the backpressure points, and a large
// cap there just delays the co-routining between producer and consumer.
const (
	batchCap   = 64
	hjBatchCap = 256
)

// Hot-path arenas, shared by every Run in the process (sync.Pool), so
// steady-state simulation recycles its buffers across runs instead of
// allocating. All element types are pointer-free — see queue.Arena.
var (
	msgArena queue.Arena[Msg]   // cross-partition message batches
	evArena  queue.Arena[event] // per-port event deque rings
	wsArena  queue.Arena[int32] // per-LP workset rings
)

// ErrCanceled reports an LP that unwound because Config.Ctx was canceled.
// Run folds it into the context's cause; it only escapes through
// PanicError-free canceled runs.
var ErrCanceled = errors.New("lp: run canceled")

// DeadlockError reports a run that ended with unterminated nodes. The
// goroutine transport can only reach this state through a logic bug —
// a starved LP blocks on its inbox and the stall watchdog fires first —
// but in hj mode global starvation (e.g. suppressed null messages)
// quiesces the runtime instead: every LP yields with an empty mailbox,
// no slice is scheduled, and the finish scope completes. Collection
// then detects the deadlock immediately and names the first
// unterminated node, so the engine can report a structured stall with
// diagnostics instead of hanging until a watchdog.
type DeadlockError struct{ Node int32 }

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("lp: simulation ended with node %d not terminated", e.Node)
}

// PanicError is the structured failure of one logical process: which LP
// panicked, the recovered value, and the stack of the panicking
// goroutine. The peers are unblocked (NULL(∞) flood) and exit cleanly.
type PanicError struct {
	LP    int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("lp %d: panic: %v", e.LP, e.Value) }

// lpCanceled is the unwind sentinel panicked by an LP that observes
// cancellation deep inside a blocking send; main's recover turns it into
// ErrCanceled.
type lpCanceled struct{}

// Stats are the run's message-level counters. The null-message ratio is
// the canonical overhead metric of CMB simulators.
type Stats struct {
	Partitions int   // number of LPs
	CutEdges   int   // cross-partition circuit edges
	EventMsgs  int64 // cross-partition signal-event messages
	NullMsgs   int64 // standalone finite-timestamp null (clock-advance) messages
	PiggyNulls int64 // channel promises piggybacked on outgoing event batches
	Batches    int64 // cross-partition channel sends (each carrying ≥1 message)
	Restarts   int64 // kill-and-restart cycles performed by interceptors
	EdgeCut    float64
	Imbalance  float64
}

// NullRatio reports null messages per total cross-partition message
// (0 when nothing crossed a cut).
func (s Stats) NullRatio() float64 {
	total := s.EventMsgs + s.NullMsgs
	if total == 0 {
		return 0
	}
	return float64(s.NullMsgs) / float64(total)
}

// MetricsInto folds the counters into a flat metrics map under the "lp."
// namespace.
func (s Stats) MetricsInto(m obs.Metrics) {
	m.Add("lp.partitions", int64(s.Partitions))
	m.Add("lp.cut_edges", int64(s.CutEdges))
	m.Add("lp.event_msgs", s.EventMsgs)
	m.Add("lp.null_msgs", s.NullMsgs)
	m.Add("lp.piggy_nulls", s.PiggyNulls)
	m.Add("lp.batches", s.Batches)
	m.Add("lp.restarts", s.Restarts)
}

func (s Stats) String() string {
	return fmt.Sprintf("lps=%d cut-edges=%d event-msgs=%d null-msgs=%d piggy-nulls=%d batches=%d null-ratio=%.3f edge-cut=%.1f%% imbalance=%.2f",
		s.Partitions, s.CutEdges, s.EventMsgs, s.NullMsgs, s.PiggyNulls, s.Batches, s.NullRatio(), 100*s.EdgeCut, s.Imbalance)
}

// Result is the outcome of one Run.
type Result struct {
	TotalEvents int64
	NodeEvents  []int64
	Outputs     map[string][]TimedValue
	Stats       Stats
	// FinalVals holds every node's settled per-port values at
	// termination; nil unless Config.CaptureFinal was set.
	FinalVals [][2]circuit.Value
}

// MsgKind discriminates inter-LP messages.
type MsgKind uint8

// Message kinds.
const (
	MsgEvent    MsgKind = iota // a signal event for (Node, Port)
	MsgNullEdge                // NULL(∞) for (Node, Port): the source node drained
	MsgNullChan                // channel promise: no event below Time will arrive from LP Src
)

// Msg is one inter-LP message. Exported so Interceptors can inspect and
// forward messages; the zero value is not meaningful.
type Msg struct {
	Kind MsgKind
	Src  int32 // sending LP (MsgNullChan, and MsgEvent with Bound set)
	Node int32 // destination node (MsgEvent, MsgNullEdge)
	Port int32
	Time int64 // event timestamp, or the promised bound (MsgNullChan)
	Val  circuit.Value
	// Bound, when positive on a MsgEvent, piggybacks a channel promise on
	// the event (the same statement a MsgNullChan with Time=Bound from LP
	// Src would make): after applying the event itself, the receiver
	// advances every port fed by LP Src to Bound. Senders stamp it only on
	// the final message of an outgoing batch, so no event travelling in
	// front of the promise can be under it. Zero means no promise.
	Bound int64
}

// Delivery is one message an Interceptor wants transported now.
type Delivery struct {
	To int32 // destination LP
	M  Msg
}

// Interceptor sits at one LP's outgoing inbox boundary. All methods run
// on that LP's goroutine, so an implementation needs no locking for its
// own state. Returned deliveries are transported in order through the
// raw channel layer without re-interception.
//
// Implementations MUST preserve the protocol's safety invariants:
//
//   - Per-(node, port) FIFO: two MsgEvents for the same destination node
//     and port must be delivered in their original order (the receiving
//     deque assumes nondecreasing arrival timestamps per port).
//   - No event duplication: delivering a MsgEvent twice corrupts the
//     simulation. Null messages (both kinds) are idempotent — a clock
//     only ratchets forward — and may be duplicated freely.
//   - Flush before promising: any held MsgEvent for a destination must be
//     delivered before a MsgNullEdge or MsgNullChan to that destination
//     (a promise made while an older event is still held is a lie and
//     trips the Paranoid causality check), and OnBlock must release
//     everything held, or withheld messages deadlock the protocol.
type Interceptor interface {
	// OnSend intercepts one outgoing message and returns what to actually
	// deliver now (possibly nothing, possibly previously held messages).
	OnSend(src, to int32, m Msg) []Delivery
	// OnBlock is called when the LP is about to block for input (and once
	// at LP exit); it must release every held message.
	OnBlock(src int32) []Delivery
	// CrashPoint is polled at the top of the LP's main loop; returning
	// true kills the LP at that point and restarts it from a checkpoint
	// (see checkpoint.go).
	CrashPoint(src int32) bool
}

// dest is one fanout endpoint, pre-resolved against the plan.
type dest struct {
	node  int32
	port  int32
	lp    int32 // owning LP of node
	cross bool
}

// port is the receive side of one input port.
type port struct {
	q     queue.Deque[event]
	clock int64
}

type event struct {
	time int64
	val  circuit.Value
}

// node is the runtime state of one circuit node, owned exclusively by the
// LP of its partition.
type node struct {
	id          int32
	kind        circuit.Kind
	delay       int64
	fanin       [2]int32 // source node per port, -1 when unused
	fanout      []dest
	ports       []port
	transitions []circuit.Transition // input terminals only
	inVal       [2]circuit.Value
	nullSent    bool
	events      int64
	history     []TimedValue
}

func (n *node) localClock() int64 {
	clock := TimeInfinity
	for p := range n.ports {
		if c := n.ports[p].clock; c < clock {
			clock = c
		}
	}
	return clock
}

func (n *node) hasReady() bool {
	clock := n.localClock()
	for p := range n.ports {
		if head, ok := n.ports[p].q.Front(); ok && head.time <= clock {
			return true
		}
	}
	return false
}

// drained reports that the node will never receive another event and has
// nothing queued.
func (n *node) drained() bool {
	for p := range n.ports {
		if n.ports[p].clock != TimeInfinity || !n.ports[p].q.Empty() {
			return false
		}
	}
	return true
}

// inEdge is the receive side of one cut edge.
type inEdge struct {
	node int32
	port int32
}

// LP diagnostic states published for Probe.Snapshot.
const (
	stateRunning int32 = iota
	stateBlockedRecv
	stateBlockedSend
	stateDone
)

// proc is one logical process.
type proc struct {
	id    int32
	r     *run
	nodes []int32 // owned node IDs
	topo  []int32 // owned node IDs in intra-partition topological order
	inbox chan []Msg
	ic    Interceptor // nil when no fault injection

	// outBuf[to] is the pending outgoing batch for LP to, shipped as one
	// channel send by flushTo. Invariant: every outBuf entry is empty at
	// the top of the main loop (all paths there pass a flushAll), which is
	// what makes loop-top checkpoints crash-consistent — a counted message
	// has always actually left.
	outBuf [][]Msg

	// Outbound channel i goes to LP outbound[i]; outSrcs[i] lists the
	// distinct local source nodes of its cut edges, and lastNull[i] the
	// bound last promised on it.
	outbound []int32
	outSrcs  [][]int32
	lastNull []int64

	// inEdges[src] lists the cut-edge endpoints fed by LP src, for
	// applying that channel's promises.
	inEdges map[int32][]inEdge

	ws        queue.Deque[int32]
	remaining int // owned nodes that have not terminated

	// drainWS scratch, reused across calls (owner-only): ready events
	// extracted from one node, in nondecreasing timestamp order.
	evScratch     []event
	evPortScratch []int32

	eventMsgs  int64
	nullMsgs   int64
	piggyNulls int64
	batches    int64
	restarts   int64
	err        error

	trace     *obs.Ring      // flight-recorder shard; nil when tracing is off
	batchHist *obs.Histogram // live batch-size histogram; nil without a registry

	// hj-mode transport (RunHJ): the lock-free mailbox replaces inbox,
	// sched is the at-most-one-pending-task dedup flag, and hctx is the
	// current slice's runtime context (owner-only, set for the duration
	// of a slice). started latches the one-time input flood.
	mb          mailbox
	mbDepth     atomic.Int32
	mailFree    *mail // owner-only free list of drained mail nodes
	mailFreeN   int32
	sched       atomic.Bool
	hctx        *hj.Ctx
	started     bool
	procEvents  int64 // events processed over the whole run (slice metrics)
	lastHorizon int64
	sliceHist   *obs.Histogram // hj mode: events per slice
	windowHist  *obs.Histogram // hj mode: safe-horizon advance per slice

	// Diagnostics, written by this LP and read by Probe goroutines.
	progress   atomic.Uint64 // messages applied + node activations
	state      atomic.Int32  // stateRunning / stateBlockedRecv / ...
	blockedOn  atomic.Int32  // destination LP when stateBlockedSend
	minClock   atomic.Int64  // min local clock over live owned nodes, at last block
	remainingA atomic.Int32
}

// run is the shared context of one simulation: immutable wiring plus the
// per-node state array, each element of which is owned by exactly one LP.
type run struct {
	cfg   Config
	done  <-chan struct{} // nil when cfg.Ctx is nil; a nil channel never fires
	nodes []node
	owner []int32 // node ID → LP
	procs []*proc
	inWS  []bool  // workset membership, touched only by the owner LP
	lbOut []int64 // per-node output bound, touched only by the owner LP

	// hj mode (RunHJ): LPs run as indexed tasks on rt instead of
	// goroutines. home maps each LP to its home worker (nil without
	// affinity); body is the one shared IndexedTask value so respawns
	// allocate no closure.
	hj   bool
	home []int32
	body hj.IndexedTask
}

// Probe lets an external watchdog observe a Run in flight. Attach it via
// Config.Probe; it is safe to call from any goroutine, before, during and
// after the run (zero progress / empty snapshot when unattached).
type Probe struct {
	r atomic.Pointer[run]
}

// Progress returns a monotonically nondecreasing activity counter summed
// over all LPs: messages applied plus node activations.
func (pr *Probe) Progress() uint64 {
	r := pr.r.Load()
	if r == nil {
		return 0
	}
	var sum uint64
	for _, p := range r.procs {
		sum += p.progress.Load()
	}
	return sum
}

// Snapshot renders one line per LP: state (running / blocked-recv /
// blocked-send→peer / done), the minimum local clock over its live nodes
// as of its last block, inbox depth, live node count and progress.
func (pr *Probe) Snapshot() string {
	r := pr.r.Load()
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, p := range r.procs {
		state := "running"
		switch p.state.Load() {
		case stateBlockedRecv:
			state = "blocked-recv"
		case stateBlockedSend:
			state = fmt.Sprintf("blocked-send->lp%d", p.blockedOn.Load())
		case stateDone:
			state = "done"
		}
		clock := "inf"
		if c := p.minClock.Load(); c < TimeInfinity {
			clock = fmt.Sprintf("%d", c)
		}
		if r.hj {
			fmt.Fprintf(&b, "lp %d: state=%s clock=%s mailbox=%d live-nodes=%d progress=%d\n",
				p.id, state, clock, p.mbDepth.Load(), p.remainingA.Load(), p.progress.Load())
			continue
		}
		fmt.Fprintf(&b, "lp %d: state=%s clock=%s inbox=%d/%d live-nodes=%d progress=%d\n",
			p.id, state, clock, len(p.inbox), cap(p.inbox), p.remainingA.Load(), p.progress.Load())
	}
	return b.String()
}

// Run simulates the circuit under the stimulus with one logical process
// per partition of the plan.
func Run(c *circuit.Circuit, stim *circuit.Stimulus, plan *partition.Plan, cfg Config) (*Result, error) {
	r, err := build(c, stim, plan, cfg, false)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for _, p := range r.procs {
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			p.main()
		}(p)
	}
	wg.Wait()
	return r.collect(c, plan)
}

// build constructs the shared run state: one proc per partition with
// resolved ports, fanouts, channels and diagnostics. It is the common
// front half of Run (goroutine transport) and RunHJ (hj tasks); hjMode
// selects lock-free mailboxes instead of bounded inbox channels.
func build(c *circuit.Circuit, stim *circuit.Stimulus, plan *partition.Plan, cfg Config, hjMode bool) (*run, error) {
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if len(plan.Assign) != len(c.Nodes) || plan.K < 1 {
		return nil, fmt.Errorf("lp: plan covers %d nodes in %d partitions, circuit has %d nodes",
			len(plan.Assign), plan.K, len(c.Nodes))
	}
	r := &run{
		cfg:   cfg,
		hj:    hjMode,
		nodes: make([]node, len(c.Nodes)),
		owner: make([]int32, len(c.Nodes)),
		inWS:  make([]bool, len(c.Nodes)),
		lbOut: make([]int64, len(c.Nodes)),
	}
	if cfg.Ctx != nil {
		r.done = cfg.Ctx.Done()
	}
	for i := range c.Nodes {
		if a := plan.Assign[i]; a < 0 || a >= plan.K {
			return nil, fmt.Errorf("lp: plan assigns node %d to partition %d of %d", i, a, plan.K)
		}
		r.owner[i] = int32(plan.Assign[i])
	}
	inboxCap := cfg.InboxCap
	if inboxCap <= 0 {
		inboxCap = DefaultInboxCap
	}
	r.procs = make([]*proc, plan.K)
	for i := range r.procs {
		r.procs[i] = &proc{
			id:      int32(i),
			r:       r,
			outBuf:  make([][]Msg, plan.K),
			inEdges: make(map[int32][]inEdge),
			// Pre-sized so steady-state drainWS extraction never grows
			// through the small append ladder (profiling showed those
			// regrows as the dominant per-run lp allocation after the
			// partition plan).
			evScratch:     make([]event, 0, 32),
			evPortScratch: make([]int32, 0, 32),
		}
		if !hjMode {
			// hj mode replaces the bounded channel with a lock-free
			// mailbox (mailbox.go); allocating K unused channels here
			// would dominate allocs/op at high partition counts.
			r.procs[i].inbox = make(chan []Msg, inboxCap)
		}
		r.procs[i].ws.SetArena(&wsArena)
		r.procs[i].trace = cfg.Trace.Ring(i) // nil recorder → nil ring
		if cfg.Metrics != nil {
			r.procs[i].batchHist = cfg.Metrics.Histogram("lp.batch_size")
			if hjMode {
				r.procs[i].sliceHist = cfg.Metrics.Histogram("lp.slice_events")
				r.procs[i].windowHist = cfg.Metrics.Histogram("lp.safe_window")
			}
		}
		if cfg.NewInterceptor != nil {
			r.procs[i].ic = cfg.NewInterceptor(i)
		}
	}

	// Slab-allocate the per-node port and fanout arrays: two allocations
	// for the whole circuit instead of two per node.
	totalIn, totalOut := 0, 0
	for i := range c.Nodes {
		totalIn += c.Nodes[i].NumIn()
		totalOut += len(c.Nodes[i].Fanout)
	}
	portSlab := make([]port, totalIn)
	destSlab := make([]dest, totalOut)
	for i := range c.Nodes {
		cn := &c.Nodes[i]
		n := &r.nodes[i]
		n.id = int32(cn.ID)
		n.kind = cn.Kind
		n.delay = cn.Kind.Delay()
		n.fanin = [2]int32{-1, -1}
		for p := 0; p < cn.NumIn(); p++ {
			n.fanin[p] = int32(cn.Fanin[p])
		}
		n.fanout, destSlab = destSlab[:len(cn.Fanout):len(cn.Fanout)], destSlab[len(cn.Fanout):]
		for j, p := range cn.Fanout {
			lp := r.owner[p.Node]
			n.fanout[j] = dest{node: int32(p.Node), port: int32(p.In), lp: lp, cross: lp != r.owner[i]}
		}
		n.ports, portSlab = portSlab[:cn.NumIn():cn.NumIn()], portSlab[cn.NumIn():]
		for p := range n.ports {
			n.ports[p].clock = clockUnset
			n.ports[p].q.SetArena(&evArena)
		}
		owner := r.procs[r.owner[i]]
		owner.nodes = append(owner.nodes, int32(i))
		owner.remaining++
	}
	for i, id := range c.Inputs {
		r.nodes[id].transitions = stim.ByInput[i]
	}
	if len(cfg.InitVals) == len(r.nodes) {
		for i := range r.nodes {
			r.nodes[i].inVal = cfg.InitVals[i]
		}
	}
	// Owned nodes in topological order, for the lbOut relaxation: the
	// global level order restricted to each partition is consistent with
	// every intra-partition edge.
	for _, id := range partition.LevelOrder(c) {
		p := r.procs[r.owner[id]]
		p.topo = append(p.topo, int32(id))
	}

	// Resolve channels: outbound per sender, inbound edge lists per
	// receiver keyed by sender.
	for _, ch := range plan.Channels {
		from, to := r.procs[ch.From], r.procs[ch.To]
		from.outbound = append(from.outbound, int32(ch.To))
		from.lastNull = append(from.lastNull, clockUnset)
		srcs, seen := []int32{}, map[int32]bool{}
		for _, ei := range ch.Edges {
			ce := plan.CutEdges[ei]
			if !seen[int32(ce.Src)] {
				seen[int32(ce.Src)] = true
				srcs = append(srcs, int32(ce.Src))
			}
			to.inEdges[int32(ch.From)] = append(to.inEdges[int32(ch.From)], inEdge{
				node: int32(ce.Dst), port: int32(ce.DstPort),
			})
		}
		from.outSrcs = append(from.outSrcs, srcs)
	}

	if cfg.Probe != nil {
		cfg.Probe.r.Store(r)
	}
	for _, p := range r.procs {
		p.remainingA.Store(int32(p.remaining))
	}
	return r, nil
}

// collect assembles the run's Result once no LP can touch shared state
// anymore (goroutines joined, or the hj finish scope completed cleanly),
// recycling the arena-backed rings for later runs.
func (r *run) collect(c *circuit.Circuit, plan *partition.Plan) (*Result, error) {
	cfg := r.cfg
	res := &Result{
		NodeEvents: make([]int64, len(r.nodes)),
		Stats: Stats{
			Partitions: plan.K,
			CutEdges:   len(plan.CutEdges),
			EdgeCut:    plan.EdgeCutFraction(),
			Imbalance:  plan.LoadBalance(),
		},
	}
	var firstErr error
	for _, p := range r.procs {
		if p.err != nil && firstErr == nil && !errors.Is(p.err, ErrCanceled) {
			firstErr = p.err
		}
		res.Stats.EventMsgs += p.eventMsgs
		res.Stats.NullMsgs += p.nullMsgs
		res.Stats.PiggyNulls += p.piggyNulls
		res.Stats.Batches += p.batches
		res.Stats.Restarts += p.restarts
	}
	// Every LP has joined: recycle the arena-backed rings for later runs.
	for i := range r.nodes {
		for pi := range r.nodes[i].ports {
			r.nodes[i].ports[pi].q.Release()
		}
	}
	for _, p := range r.procs {
		p.ws.Release()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, context.Cause(cfg.Ctx)
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		if !n.nullSent {
			return nil, &DeadlockError{Node: n.id}
		}
		res.TotalEvents += n.events
		res.NodeEvents[i] = n.events
	}
	res.Outputs = make(map[string][]TimedValue, len(c.Outputs))
	for _, id := range c.Outputs {
		res.Outputs[c.Nodes[id].Name] = r.nodes[id].history
	}
	if cfg.CaptureFinal {
		res.FinalVals = make([][2]circuit.Value, len(r.nodes))
		for i := range r.nodes {
			res.FinalVals[i] = r.nodes[i].inVal
		}
	}
	return res, nil
}

// main is the LP event loop: flood owned inputs, then alternate between
// local processing and message exchange until every owned node has
// terminated.
func (p *proc) main() {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(lpCanceled); ok {
				p.err = ErrCanceled
				p.state.Store(stateDone)
				return
			}
			p.err = &PanicError{LP: int(p.id), Value: rec, Stack: debug.Stack()}
			p.state.Store(stateDone)
			p.abort()
		}
	}()
	p.floodInputs()
	for {
		p.checkCanceled()
		if p.ic != nil && p.ic.CrashPoint(p.id) {
			p.restart()
		}
		p.drainInbox()
		p.processLocal()
		if p.remaining == 0 {
			p.flushHeld()
			p.flushAll()
			p.state.Store(stateDone)
			return
		}
		// No ready work and not done: some cross-fed port is still open
		// (intra-partition dependencies always resolve within the DAG).
		// Release anything an interceptor held back, promise our output
		// bounds downstream (piggybacked on the buffered events where
		// possible), ship every pending batch, then block for input.
		p.flushHeld()
		p.sendNulls()
		p.flushAll()
		// A send that stalled on a full peer inbox drains our own inbox
		// meanwhile, which can ready local work; block only if the
		// workset is still empty, or the peers may all be waiting on the
		// very events that work would produce.
		if !p.ws.Empty() {
			continue
		}
		p.blockRecv()
	}
}

// checkCanceled unwinds the LP (via the lpCanceled sentinel) if the run's
// context has been canceled. A nil done channel never fires.
func (p *proc) checkCanceled() {
	select {
	case <-p.r.done:
		panic(lpCanceled{})
	default:
	}
}

// blockRecv waits for one inbox batch, publishing blocked-recv state for
// diagnostics and honoring cancellation.
func (p *proc) blockRecv() {
	p.trace.Record(obs.EvBlock, int64(len(p.inbox)), int64(p.remaining))
	p.noteBlocked(stateBlockedRecv, -1)
	defer p.state.Store(stateRunning)
	select {
	case batch := <-p.inbox:
		p.applyBatch(batch)
	case <-p.r.done:
		panic(lpCanceled{})
	}
}

// noteBlocked publishes this LP's diagnostic snapshot: why it is blocked
// and the minimum local clock over its live nodes.
func (p *proc) noteBlocked(state, dst int32) {
	clock := TimeInfinity
	for _, id := range p.nodes {
		n := &p.r.nodes[id]
		if n.nullSent {
			continue
		}
		if c := n.localClock(); c < clock {
			clock = c
		}
	}
	p.minClock.Store(clock)
	p.blockedOn.Store(dst)
	p.remainingA.Store(int32(p.remaining))
	p.state.Store(state)
}

// abort unblocks peers after a local panic by flooding NULL(∞) on every
// owned cut edge, best-effort: a full peer inbox is retried a bounded
// number of times while draining our own.
func (p *proc) abort() {
	for _, id := range p.nodes {
		for _, d := range p.r.nodes[id].fanout {
			if !d.cross {
				continue
			}
			b := msgArena.Get(1)
			b = append(b, Msg{Kind: MsgNullEdge, Node: d.node, Port: d.port})
			box := p.r.procs[d.lp].inbox
			for attempt := 0; attempt < 1024; attempt++ {
				select {
				case box <- b:
					attempt = 1024
				case in := <-p.inbox:
					msgArena.Put(in) // discard: local state is already poisoned
				default:
				}
			}
		}
	}
}

// floodInputs injects every owned input terminal's stimulus, then its
// NULL — all of an input's events are known up front.
func (p *proc) floodInputs() {
	for _, id := range p.nodes {
		n := &p.r.nodes[id]
		if n.kind != circuit.Input {
			continue
		}
		for _, tr := range n.transitions {
			ev := event{time: tr.Time + circuit.WireDelay, val: tr.Value}
			for _, d := range n.fanout {
				p.deliver(d, ev)
			}
		}
		p.sendNull(n)
	}
	p.flushAll() // loop-top invariant: no buffered outgoing messages
}

// deliver routes one event along a fanout edge: locally into the
// destination port, or across the cut as a message.
func (p *proc) deliver(d dest, ev event) {
	if d.cross {
		p.eventMsgs++
		p.send(d.lp, Msg{Kind: MsgEvent, Node: d.node, Port: d.port, Time: ev.time, Val: ev.val})
		return
	}
	p.receive(d.node, d.port, ev)
	p.wake(d.node)
}

// receive appends an event to a locally owned port, advancing its clock.
func (p *proc) receive(nodeID, portID int32, ev event) {
	pt := &p.r.nodes[nodeID].ports[portID]
	if p.r.cfg.Paranoid && ev.time < pt.clock {
		panic(fmt.Sprintf("causality violation at node %d port %d: event t=%d after clock %d",
			nodeID, portID, ev.time, pt.clock))
	}
	if ev.time > pt.clock {
		pt.clock = ev.time
	}
	pt.q.PushBack(ev)
}

// wake adds a locally owned node to the workset.
func (p *proc) wake(nodeID int32) {
	if !p.r.inWS[nodeID] {
		p.r.inWS[nodeID] = true
		p.ws.PushBack(nodeID)
	}
}

// send routes one outgoing cross-partition message through the LP's
// interceptor (when installed) and transports whatever it releases.
func (p *proc) send(to int32, m Msg) {
	if p.ic == nil {
		p.rawSend(to, m)
		return
	}
	for _, d := range p.ic.OnSend(p.id, to, m) {
		p.rawSend(d.To, d.M)
	}
}

// flushHeld releases everything the interceptor is still holding; called
// before the LP blocks and once at LP exit so held messages cannot wedge
// the protocol.
func (p *proc) flushHeld() {
	if p.ic == nil {
		return
	}
	for _, d := range p.ic.OnBlock(p.id) {
		p.rawSend(d.To, d.M)
	}
}

// rawSend appends m to the pending batch for LP to, shipping the batch
// when it reaches batchCap. Messages to one destination stay in append
// order, so per-port FIFO is preserved through the batching layer.
func (p *proc) rawSend(to int32, m Msg) {
	limit := batchCap
	if p.r.hj {
		limit = hjBatchCap
	}
	buf := p.outBuf[to]
	if buf == nil {
		buf = msgArena.Get(limit)
	}
	buf = append(buf, m)
	p.outBuf[to] = buf
	if len(buf) >= limit {
		p.flushTo(to)
	}
}

// flushTo ships the pending batch for LP to. Goroutine mode performs one
// channel send; if the inbox is full the sender drains its own inbox
// while waiting, so cyclic backpressure cannot deadlock: some LP can
// always make progress. Cancellation unwinds the LP from here via the
// lpCanceled sentinel. In hj mode the batch is pushed onto the
// destination's lock-free mailbox and — when no slice for that LP is
// pending or running (the scheduled-flag dedup) — a task for it is
// spawned; the sender never blocks.
func (p *proc) flushTo(to int32) {
	buf := p.outBuf[to]
	if len(buf) == 0 {
		return
	}
	p.outBuf[to] = nil
	p.batches++
	p.trace.Record(obs.EvSend, int64(to), int64(len(buf)))
	if p.batchHist != nil {
		p.batchHist.Observe(int(p.id), float64(len(buf)))
	}
	if p.r.hj {
		q := p.r.procs[to]
		q.mb.Push(p.takeMail(buf))
		q.mbDepth.Add(1)
		if q.sched.CompareAndSwap(false, true) {
			p.r.enqueue(p.hctx, to)
		}
		return
	}
	box := p.r.procs[to].inbox
	select {
	case box <- buf:
		return
	default:
	}
	p.noteBlocked(stateBlockedSend, to)
	defer p.state.Store(stateRunning)
	for {
		select {
		case box <- buf:
			return
		case in := <-p.inbox:
			p.applyBatch(in)
		case <-p.r.done:
			panic(lpCanceled{})
		}
	}
}

// flushAll ships every pending batch, leaving outBuf empty.
func (p *proc) flushAll() {
	for to := range p.outBuf {
		p.flushTo(int32(to))
	}
}

// apply folds one received message into local node state and wakes the
// affected nodes; it never processes events (the main loop does).
func (p *proc) apply(m Msg) {
	p.progress.Add(1)
	switch m.Kind {
	case MsgEvent:
		p.receive(m.Node, m.Port, event{time: m.Time, val: m.Val})
		p.wake(m.Node)
		if m.Bound > 0 {
			p.applyPromise(m.Src, m.Bound)
		}
	case MsgNullEdge:
		p.r.nodes[m.Node].ports[m.Port].clock = TimeInfinity
		p.wake(m.Node)
	case MsgNullChan:
		p.applyPromise(m.Src, m.Time)
	}
}

// applyPromise ratchets forward the clock of every port fed by LP src:
// no event below bound will ever arrive on that channel again.
func (p *proc) applyPromise(src int32, bound int64) {
	for _, e := range p.inEdges[src] {
		pt := &p.r.nodes[e.node].ports[e.port]
		if bound > pt.clock {
			pt.clock = bound
			p.wake(e.node)
		}
	}
}

// applyBatch applies one received batch in order and recycles its
// backing array.
func (p *proc) applyBatch(batch []Msg) {
	p.trace.Record(obs.EvRecv, int64(len(batch)), 0)
	for i := range batch {
		p.apply(batch[i])
	}
	msgArena.Put(batch)
}

// drainInbox applies every currently queued batch without blocking.
func (p *proc) drainInbox() {
	for {
		select {
		case batch := <-p.inbox:
			p.applyBatch(batch)
		default:
			return
		}
	}
}

// processLocal runs the workset to exhaustion: Algorithm 1 restricted to
// the LP's own nodes.
func (p *proc) processLocal() { p.drainWS(false) }

// drainWS runs the workset to exhaustion. With widened set, each port
// fed by a locally owned node uses max(port clock, lbOut(feeder)) as its
// arrival bound instead of the raw clock — lbOut is a valid lower bound
// on everything the feeder may still emit, so events below it are just
// as safe to process, and a run-to-completion slice can keep going
// where the raw clocks alone would stall on a local round trip. The
// caller must have called relax() first; bounds only grow as events
// process, so the snapshot stays conservative throughout the drain.
func (p *proc) drainWS(widened bool) {
	evs, evPorts := p.evScratch, p.evPortScratch
	defer func() { p.evScratch, p.evPortScratch = evs, evPorts }()
	for {
		id, ok := p.ws.PopBack()
		if !ok {
			return
		}
		p.r.inWS[id] = false
		p.progress.Add(1)
		n := &p.r.nodes[id]
		if n.nullSent {
			continue
		}
		// Extract every ready event in nondecreasing timestamp order
		// (ties by port index, like the in-memory engines).
		evs, evPorts = evs[:0], evPorts[:0]
		clock := n.localClock()
		if widened {
			clock = p.widenedClock(n)
		}
		for {
			best := int32(-1)
			bestTime := clock
			for pi := range n.ports {
				if head, ok := n.ports[pi].q.Front(); ok && head.time <= bestTime {
					if best == -1 || head.time < bestTime {
						best = int32(pi)
						bestTime = head.time
					}
				}
			}
			if best == -1 {
				break
			}
			ev, _ := n.ports[best].q.PopFront()
			evs = append(evs, ev)
			evPorts = append(evPorts, best)
		}
		for i, ev := range evs {
			p.process(n, evPorts[i], ev)
		}
		if n.drained() {
			p.sendNull(n)
		} else if n.hasReady() {
			// An arrival applied during our own sends re-readied us.
			p.wake(id)
		}
	}
}

// process consumes one ready event at node n.
func (p *proc) process(n *node, portID int32, ev event) {
	n.inVal[portID] = ev.val
	n.events++
	p.procEvents++
	switch n.kind {
	case circuit.Output:
		if p.r.cfg.Record {
			n.history = append(n.history, TimedValue{Time: ev.time, Value: ev.val})
		}
		return
	case circuit.Input:
		return
	}
	out := event{time: ev.time + n.delay + circuit.WireDelay, val: n.kind.Eval(n.inVal[0], n.inVal[1])}
	for _, d := range n.fanout {
		p.deliver(d, out)
	}
}

// sendNull terminates node n: NULL(∞) to every fanout port (locally or as
// a message), leaving one fewer live node in this LP.
func (p *proc) sendNull(n *node) {
	for _, d := range n.fanout {
		if d.cross {
			p.send(d.lp, Msg{Kind: MsgNullEdge, Node: d.node, Port: d.port})
			continue
		}
		p.r.nodes[d.node].ports[d.port].clock = TimeInfinity
		p.wake(d.node)
	}
	n.nullSent = true
	p.remaining--
	p.remainingA.Store(int32(p.remaining))
}

// relax recomputes the per-node output bounds lbOut over the owned
// sub-DAG in topological order (see the package comment).
func (p *proc) relax() {
	for _, id := range p.topo {
		n := &p.r.nodes[id]
		if n.nullSent {
			p.r.lbOut[id] = TimeInfinity
			continue
		}
		earliest := TimeInfinity
		for pi := range n.ports {
			b := n.ports[pi].clock
			if f := n.fanin[pi]; f >= 0 && p.r.owner[f] == p.id {
				if lb := p.r.lbOut[f]; lb > b {
					b = lb
				}
			}
			if head, ok := n.ports[pi].q.Front(); ok && head.time < b {
				b = head.time
			}
			if b < earliest {
				earliest = b
			}
		}
		if earliest == TimeInfinity {
			p.r.lbOut[id] = TimeInfinity
			continue
		}
		p.r.lbOut[id] = earliest + n.delay + circuit.WireDelay
	}
}

// sendNulls promises the current output bound on every outbound channel
// where it improves on the previous promise. When the channel already
// has a batch waiting to be flushed, the promise piggybacks on it — as a
// Bound stamp on a trailing event, or one extra batch entry — instead of
// costing a standalone null message; only a quiet channel (empty buffer)
// pays for a message of its own. Piggybacking is bypassed when an
// interceptor is installed, so fault injection keeps seeing (and may
// drop, hold or duplicate) the full standalone null stream.
func (p *proc) sendNulls() {
	if len(p.outbound) == 0 {
		return
	}
	p.relax()
	for i, to := range p.outbound {
		promise := TimeInfinity
		for _, y := range p.outSrcs[i] {
			if lb := p.r.lbOut[y]; lb < promise {
				promise = lb
			}
		}
		// An all-terminated channel needs no promise: its per-edge
		// NULL(∞) messages have already closed the receiving ports.
		if promise == TimeInfinity || promise <= p.lastNull[i] {
			continue
		}
		p.lastNull[i] = promise
		if p.ic == nil {
			if buf := p.outBuf[to]; len(buf) > 0 {
				// Stamp only the final message of the batch: everything in
				// front of the promise was buffered before it, so no event
				// can travel behind a bound that outruns it.
				last := &buf[len(buf)-1]
				if last.Kind == MsgEvent && last.Bound == 0 {
					last.Src = p.id
					last.Bound = promise
				} else {
					p.outBuf[to] = append(buf, Msg{Kind: MsgNullChan, Src: p.id, Time: promise})
				}
				p.piggyNulls++
				continue
			}
		}
		p.nullMsgs++
		p.trace.Record(obs.EvNull, int64(to), promise)
		p.send(to, Msg{Kind: MsgNullChan, Src: p.id, Time: promise})
	}
}
