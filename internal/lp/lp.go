// Package lp is a partitioned logical-process runtime for conservative
// discrete event simulation, implementing the Chandy–Misra–Bryant (CMB)
// null-message protocol over the partitions produced by internal/partition.
//
// Each partition becomes one logical process (LP): a goroutine owning the
// runtime state of its nodes, with its own event storage and workset.
// Nothing mutable is shared between LPs — every cross-partition event
// travels as a timestamped message through a bounded inbox channel.
//
// # Protocol
//
// Within an LP, nodes run the same per-node Chandy–Misra algorithm as the
// in-memory engines: every input port keeps a clock (a lower bound on all
// future arrivals) and a FIFO of pending events, and a node may process
// any event whose timestamp is at most the minimum of its port clocks.
// Intra-partition edges deliver events synchronously; cut edges send an
// event message to the destination LP.
//
// Because partitions of a DAG can form cycles in the quotient graph, an
// LP that runs out of ready work cannot simply block: two LPs waiting on
// each other would deadlock. Before blocking, an LP therefore sends a
// null message on every outbound channel, promising that no event will
// ever arrive on that channel with a timestamp below the promised value,
// and the receiver advances the channel's port clocks to the promise.
// The promise for a channel is the minimum, over the channel's cut edges
// y→·, of a per-node output bound lbOut(y), computed by relaxing the
// LP's own sub-DAG in topological order:
//
//	lbOut(y) = earliest(y) + delay(y) + WireDelay
//	earliest(y) = min over ports p of min(queued timestamps on p,
//	              max(clock(p), lbOut(intra feeder of p)))
//
// earliest(y) lower-bounds the timestamp of any event y may still
// process — queued events only gain time as they cascade, future local
// arrivals are bounded by the feeder's own output bound, and future
// cross arrivals are bounded by the port clock. Every relaxation step
// adds the positive per-edge lookahead delay + WireDelay from the
// partition plan, so promises exchanged around a channel cycle strictly
// increase and the simulation always progresses (the CMB guarantee).
// Null messages are sent only when an LP is about to block and only when
// they improve on the channel's previous promise, which keeps the
// null-message ratio bounded.
//
// Termination reuses the engines' NULL(∞) convention: a drained node
// propagates infinity to its fanout (as a per-edge message across cuts),
// and an LP exits once every owned node has terminated. Bounded inboxes
// provide backpressure; a sender whose destination inbox is full drains
// its own inbox while waiting, so message cycles cannot deadlock either.
package lp

import (
	"fmt"
	"sync"

	"hjdes/internal/circuit"
	"hjdes/internal/partition"
	"hjdes/internal/queue"
)

// TimeInfinity is the NULL(∞) timestamp announcing that a port will never
// see another event (same convention as the in-memory engines).
const TimeInfinity int64 = 1<<63 - 1

// clockUnset marks a port that has not received any event or promise yet.
const clockUnset int64 = -1

// TimedValue is one observed (time, value) sample at an output terminal.
type TimedValue struct {
	Time  int64
	Value circuit.Value
}

// Config tunes one Run.
type Config struct {
	// Record keeps output-terminal event histories.
	Record bool
	// Paranoid asserts per-port timestamp monotonicity: a signal event
	// arriving below its port clock (a broken lookahead promise) panics,
	// and Run reports the panic as an error.
	Paranoid bool
	// InboxCap bounds each LP's inbox; 0 means DefaultInboxCap.
	InboxCap int
}

// DefaultInboxCap is the default per-LP inbox bound: small enough for
// backpressure, large enough that senders rarely stall.
const DefaultInboxCap = 1024

// Stats are the run's message-level counters. The null-message ratio is
// the canonical overhead metric of CMB simulators.
type Stats struct {
	Partitions int   // number of LPs
	CutEdges   int   // cross-partition circuit edges
	EventMsgs  int64 // cross-partition signal-event messages
	NullMsgs   int64 // finite-timestamp null (clock-advance) messages
	EdgeCut    float64
	Imbalance  float64
}

// NullRatio reports null messages per total cross-partition message
// (0 when nothing crossed a cut).
func (s Stats) NullRatio() float64 {
	total := s.EventMsgs + s.NullMsgs
	if total == 0 {
		return 0
	}
	return float64(s.NullMsgs) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("lps=%d cut-edges=%d event-msgs=%d null-msgs=%d null-ratio=%.3f edge-cut=%.1f%% imbalance=%.2f",
		s.Partitions, s.CutEdges, s.EventMsgs, s.NullMsgs, s.NullRatio(), 100*s.EdgeCut, s.Imbalance)
}

// Result is the outcome of one Run.
type Result struct {
	TotalEvents int64
	NodeEvents  []int64
	Outputs     map[string][]TimedValue
	Stats       Stats
}

// Message kinds.
const (
	msgEvent    uint8 = iota // a signal event for (node, port)
	msgNullEdge              // NULL(∞) for (node, port): the source node drained
	msgNullChan              // channel promise: no event below time will arrive from LP src
)

// msg is one inter-LP message.
type msg struct {
	kind uint8
	src  int32 // sending LP (msgNullChan)
	node int32 // destination node (msgEvent, msgNullEdge)
	port int32
	time int64 // event timestamp, or the promised bound (msgNullChan)
	val  circuit.Value
}

// dest is one fanout endpoint, pre-resolved against the plan.
type dest struct {
	node  int32
	port  int32
	lp    int32 // owning LP of node
	cross bool
}

// port is the receive side of one input port.
type port struct {
	q     queue.Deque[event]
	clock int64
}

type event struct {
	time int64
	val  circuit.Value
}

// node is the runtime state of one circuit node, owned exclusively by the
// LP of its partition.
type node struct {
	id          int32
	kind        circuit.Kind
	delay       int64
	fanin       [2]int32 // source node per port, -1 when unused
	fanout      []dest
	ports       []port
	transitions []circuit.Transition // input terminals only
	inVal       [2]circuit.Value
	nullSent    bool
	events      int64
	history     []TimedValue
}

func (n *node) localClock() int64 {
	clock := TimeInfinity
	for p := range n.ports {
		if c := n.ports[p].clock; c < clock {
			clock = c
		}
	}
	return clock
}

func (n *node) hasReady() bool {
	clock := n.localClock()
	for p := range n.ports {
		if head, ok := n.ports[p].q.Front(); ok && head.time <= clock {
			return true
		}
	}
	return false
}

// drained reports that the node will never receive another event and has
// nothing queued.
func (n *node) drained() bool {
	for p := range n.ports {
		if n.ports[p].clock != TimeInfinity || !n.ports[p].q.Empty() {
			return false
		}
	}
	return true
}

// inEdge is the receive side of one cut edge.
type inEdge struct {
	node int32
	port int32
}

// proc is one logical process.
type proc struct {
	id    int32
	r     *run
	nodes []int32 // owned node IDs
	topo  []int32 // owned node IDs in intra-partition topological order
	inbox chan msg

	// Outbound channel i goes to LP outbound[i]; outSrcs[i] lists the
	// distinct local source nodes of its cut edges, and lastNull[i] the
	// bound last promised on it.
	outbound []int32
	outSrcs  [][]int32
	lastNull []int64

	// inEdges[src] lists the cut-edge endpoints fed by LP src, for
	// applying that channel's promises.
	inEdges map[int32][]inEdge

	ws        queue.Deque[int32]
	remaining int // owned nodes that have not terminated

	eventMsgs int64
	nullMsgs  int64
	err       error
}

// run is the shared context of one simulation: immutable wiring plus the
// per-node state array, each element of which is owned by exactly one LP.
type run struct {
	cfg   Config
	nodes []node
	owner []int32 // node ID → LP
	procs []*proc
	inWS  []bool  // workset membership, touched only by the owner LP
	lbOut []int64 // per-node output bound, touched only by the owner LP
}

// Run simulates the circuit under the stimulus with one logical process
// per partition of the plan.
func Run(c *circuit.Circuit, stim *circuit.Stimulus, plan *partition.Plan, cfg Config) (*Result, error) {
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if len(plan.Assign) != len(c.Nodes) || plan.K < 1 {
		return nil, fmt.Errorf("lp: plan covers %d nodes in %d partitions, circuit has %d nodes",
			len(plan.Assign), plan.K, len(c.Nodes))
	}
	r := &run{
		cfg:   cfg,
		nodes: make([]node, len(c.Nodes)),
		owner: make([]int32, len(c.Nodes)),
		inWS:  make([]bool, len(c.Nodes)),
		lbOut: make([]int64, len(c.Nodes)),
	}
	for i := range c.Nodes {
		if a := plan.Assign[i]; a < 0 || a >= plan.K {
			return nil, fmt.Errorf("lp: plan assigns node %d to partition %d of %d", i, a, plan.K)
		}
		r.owner[i] = int32(plan.Assign[i])
	}
	inboxCap := cfg.InboxCap
	if inboxCap <= 0 {
		inboxCap = DefaultInboxCap
	}
	r.procs = make([]*proc, plan.K)
	for i := range r.procs {
		r.procs[i] = &proc{
			id:      int32(i),
			r:       r,
			inbox:   make(chan msg, inboxCap),
			inEdges: make(map[int32][]inEdge),
		}
	}

	for i := range c.Nodes {
		cn := &c.Nodes[i]
		n := &r.nodes[i]
		n.id = int32(cn.ID)
		n.kind = cn.Kind
		n.delay = cn.Kind.Delay()
		n.fanin = [2]int32{-1, -1}
		for p := 0; p < cn.NumIn(); p++ {
			n.fanin[p] = int32(cn.Fanin[p])
		}
		n.fanout = make([]dest, len(cn.Fanout))
		for j, p := range cn.Fanout {
			lp := r.owner[p.Node]
			n.fanout[j] = dest{node: int32(p.Node), port: int32(p.In), lp: lp, cross: lp != r.owner[i]}
		}
		n.ports = make([]port, cn.NumIn())
		for p := range n.ports {
			n.ports[p].clock = clockUnset
		}
		owner := r.procs[r.owner[i]]
		owner.nodes = append(owner.nodes, int32(i))
		owner.remaining++
	}
	for i, id := range c.Inputs {
		r.nodes[id].transitions = stim.ByInput[i]
	}
	// Owned nodes in topological order, for the lbOut relaxation: the
	// global level order restricted to each partition is consistent with
	// every intra-partition edge.
	for _, id := range partition.LevelOrder(c) {
		p := r.procs[r.owner[id]]
		p.topo = append(p.topo, int32(id))
	}

	// Resolve channels: outbound per sender, inbound edge lists per
	// receiver keyed by sender.
	for _, ch := range plan.Channels {
		from, to := r.procs[ch.From], r.procs[ch.To]
		from.outbound = append(from.outbound, int32(ch.To))
		from.lastNull = append(from.lastNull, clockUnset)
		srcs, seen := []int32{}, map[int32]bool{}
		for _, ei := range ch.Edges {
			ce := plan.CutEdges[ei]
			if !seen[int32(ce.Src)] {
				seen[int32(ce.Src)] = true
				srcs = append(srcs, int32(ce.Src))
			}
			to.inEdges[int32(ch.From)] = append(to.inEdges[int32(ch.From)], inEdge{
				node: int32(ce.Dst), port: int32(ce.DstPort),
			})
		}
		from.outSrcs = append(from.outSrcs, srcs)
	}

	var wg sync.WaitGroup
	for _, p := range r.procs {
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			p.main()
		}(p)
	}
	wg.Wait()

	res := &Result{
		NodeEvents: make([]int64, len(r.nodes)),
		Stats: Stats{
			Partitions: plan.K,
			CutEdges:   len(plan.CutEdges),
			EdgeCut:    plan.EdgeCutFraction(),
			Imbalance:  plan.LoadBalance(),
		},
	}
	for _, p := range r.procs {
		if p.err != nil {
			return nil, p.err
		}
		res.Stats.EventMsgs += p.eventMsgs
		res.Stats.NullMsgs += p.nullMsgs
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		if !n.nullSent {
			return nil, fmt.Errorf("lp: simulation ended with node %d not terminated", n.id)
		}
		res.TotalEvents += n.events
		res.NodeEvents[i] = n.events
	}
	res.Outputs = make(map[string][]TimedValue, len(c.Outputs))
	for _, id := range c.Outputs {
		res.Outputs[c.Nodes[id].Name] = r.nodes[id].history
	}
	return res, nil
}

// main is the LP event loop: flood owned inputs, then alternate between
// local processing and message exchange until every owned node has
// terminated.
func (p *proc) main() {
	defer func() {
		if rec := recover(); rec != nil {
			p.err = fmt.Errorf("lp %d: %v", p.id, rec)
			p.abort()
		}
	}()
	p.floodInputs()
	for {
		p.drainInbox()
		p.processLocal()
		if p.remaining == 0 {
			return
		}
		// No ready work and not done: some cross-fed port is still open
		// (intra-partition dependencies always resolve within the DAG).
		// Promise our output bounds downstream, then block for input.
		p.sendNulls()
		// A send that stalled on a full peer inbox drains our own inbox
		// meanwhile, which can ready local work; block only if the
		// workset is still empty, or the peers may all be waiting on the
		// very events that work would produce.
		if !p.ws.Empty() {
			continue
		}
		p.apply(<-p.inbox)
	}
}

// abort unblocks peers after a local panic by flooding NULL(∞) on every
// owned cut edge, best-effort: a full peer inbox is retried a bounded
// number of times while draining our own.
func (p *proc) abort() {
	for _, id := range p.nodes {
		for _, d := range p.r.nodes[id].fanout {
			if !d.cross {
				continue
			}
			m := msg{kind: msgNullEdge, node: d.node, port: d.port}
			box := p.r.procs[d.lp].inbox
			for attempt := 0; attempt < 1024; attempt++ {
				select {
				case box <- m:
					attempt = 1024
				case in := <-p.inbox:
					_ = in // discard: local state is already poisoned
				default:
				}
			}
		}
	}
}

// floodInputs injects every owned input terminal's stimulus, then its
// NULL — all of an input's events are known up front.
func (p *proc) floodInputs() {
	for _, id := range p.nodes {
		n := &p.r.nodes[id]
		if n.kind != circuit.Input {
			continue
		}
		for _, tr := range n.transitions {
			ev := event{time: tr.Time + circuit.WireDelay, val: tr.Value}
			for _, d := range n.fanout {
				p.deliver(d, ev)
			}
		}
		p.sendNull(n)
	}
}

// deliver routes one event along a fanout edge: locally into the
// destination port, or across the cut as a message.
func (p *proc) deliver(d dest, ev event) {
	if d.cross {
		p.eventMsgs++
		p.send(d.lp, msg{kind: msgEvent, node: d.node, port: d.port, time: ev.time, val: ev.val})
		return
	}
	p.receive(d.node, d.port, ev)
	p.wake(d.node)
}

// receive appends an event to a locally owned port, advancing its clock.
func (p *proc) receive(nodeID, portID int32, ev event) {
	pt := &p.r.nodes[nodeID].ports[portID]
	if p.r.cfg.Paranoid && ev.time < pt.clock {
		panic(fmt.Sprintf("causality violation at node %d port %d: event t=%d after clock %d",
			nodeID, portID, ev.time, pt.clock))
	}
	if ev.time > pt.clock {
		pt.clock = ev.time
	}
	pt.q.PushBack(ev)
}

// wake adds a locally owned node to the workset.
func (p *proc) wake(nodeID int32) {
	if !p.r.inWS[nodeID] {
		p.r.inWS[nodeID] = true
		p.ws.PushBack(nodeID)
	}
}

// send places m into LP to's inbox. If the inbox is full the sender
// drains its own inbox while waiting, so cyclic backpressure cannot
// deadlock: some LP can always make progress.
func (p *proc) send(to int32, m msg) {
	box := p.r.procs[to].inbox
	for {
		select {
		case box <- m:
			return
		case in := <-p.inbox:
			p.apply(in)
		}
	}
}

// apply folds one received message into local node state and wakes the
// affected nodes; it never processes events (the main loop does).
func (p *proc) apply(m msg) {
	switch m.kind {
	case msgEvent:
		p.receive(m.node, m.port, event{time: m.time, val: m.val})
		p.wake(m.node)
	case msgNullEdge:
		p.r.nodes[m.node].ports[m.port].clock = TimeInfinity
		p.wake(m.node)
	case msgNullChan:
		for _, e := range p.inEdges[m.src] {
			pt := &p.r.nodes[e.node].ports[e.port]
			if m.time > pt.clock {
				pt.clock = m.time
				p.wake(e.node)
			}
		}
	}
}

// drainInbox applies every currently queued message without blocking.
func (p *proc) drainInbox() {
	for {
		select {
		case m := <-p.inbox:
			p.apply(m)
		default:
			return
		}
	}
}

// processLocal runs the workset to exhaustion: Algorithm 1 restricted to
// the LP's own nodes.
func (p *proc) processLocal() {
	var evs []event
	var evPorts []int32
	for {
		id, ok := p.ws.PopBack()
		if !ok {
			return
		}
		p.r.inWS[id] = false
		n := &p.r.nodes[id]
		if n.nullSent {
			continue
		}
		// Extract every ready event in nondecreasing timestamp order
		// (ties by port index, like the in-memory engines).
		evs, evPorts = evs[:0], evPorts[:0]
		clock := n.localClock()
		for {
			best := int32(-1)
			bestTime := clock
			for pi := range n.ports {
				if head, ok := n.ports[pi].q.Front(); ok && head.time <= bestTime {
					if best == -1 || head.time < bestTime {
						best = int32(pi)
						bestTime = head.time
					}
				}
			}
			if best == -1 {
				break
			}
			ev, _ := n.ports[best].q.PopFront()
			evs = append(evs, ev)
			evPorts = append(evPorts, best)
		}
		for i, ev := range evs {
			p.process(n, evPorts[i], ev)
		}
		if n.drained() {
			p.sendNull(n)
		} else if n.hasReady() {
			// An arrival applied during our own sends re-readied us.
			p.wake(id)
		}
	}
}

// process consumes one ready event at node n.
func (p *proc) process(n *node, portID int32, ev event) {
	n.inVal[portID] = ev.val
	n.events++
	switch n.kind {
	case circuit.Output:
		if p.r.cfg.Record {
			n.history = append(n.history, TimedValue{Time: ev.time, Value: ev.val})
		}
		return
	case circuit.Input:
		return
	}
	out := event{time: ev.time + n.delay + circuit.WireDelay, val: n.kind.Eval(n.inVal[0], n.inVal[1])}
	for _, d := range n.fanout {
		p.deliver(d, out)
	}
}

// sendNull terminates node n: NULL(∞) to every fanout port (locally or as
// a message), leaving one fewer live node in this LP.
func (p *proc) sendNull(n *node) {
	for _, d := range n.fanout {
		if d.cross {
			p.send(d.lp, msg{kind: msgNullEdge, node: d.node, port: d.port})
			continue
		}
		p.r.nodes[d.node].ports[d.port].clock = TimeInfinity
		p.wake(d.node)
	}
	n.nullSent = true
	p.remaining--
}

// relax recomputes the per-node output bounds lbOut over the owned
// sub-DAG in topological order (see the package comment).
func (p *proc) relax() {
	for _, id := range p.topo {
		n := &p.r.nodes[id]
		if n.nullSent {
			p.r.lbOut[id] = TimeInfinity
			continue
		}
		earliest := TimeInfinity
		for pi := range n.ports {
			b := n.ports[pi].clock
			if f := n.fanin[pi]; f >= 0 && p.r.owner[f] == p.id {
				if lb := p.r.lbOut[f]; lb > b {
					b = lb
				}
			}
			if head, ok := n.ports[pi].q.Front(); ok && head.time < b {
				b = head.time
			}
			if b < earliest {
				earliest = b
			}
		}
		if earliest == TimeInfinity {
			p.r.lbOut[id] = TimeInfinity
			continue
		}
		p.r.lbOut[id] = earliest + n.delay + circuit.WireDelay
	}
}

// sendNulls promises the current output bound on every outbound channel
// where it improves on the previous promise.
func (p *proc) sendNulls() {
	if len(p.outbound) == 0 {
		return
	}
	p.relax()
	for i, to := range p.outbound {
		promise := TimeInfinity
		for _, y := range p.outSrcs[i] {
			if lb := p.r.lbOut[y]; lb < promise {
				promise = lb
			}
		}
		// An all-terminated channel needs no promise: its per-edge
		// NULL(∞) messages have already closed the receiving ports.
		if promise != TimeInfinity && promise > p.lastNull[i] {
			p.lastNull[i] = promise
			p.nullMsgs++
			p.send(to, msg{kind: msgNullChan, src: p.id, time: promise})
		}
	}
}
