package lp

import (
	"hjdes/internal/circuit"
	"hjdes/internal/obs"
)

// Kill-and-restart fault model. An interceptor's CrashPoint kills the LP
// at the top of its main loop: the LP's entire private state is
// checkpointed, deliberately scrambled (simulating the loss of the
// crashed process image), and then restored from the checkpoint, after
// which the loop continues as if nothing happened. The inbox channel is
// NOT part of the checkpoint — it models the network, and messages in
// flight survive a process crash. Messages the LP sent before the crash
// point have already left (conservative LPs do no speculative output), so
// restarting from a loop-top checkpoint never re-sends or loses a
// message; what the mechanism exercises is checkpoint/restore fidelity:
// any state the snapshot misses stays scrambled and shows up as a wrong
// result or a Paranoid causality panic. Recovery of messages lost in a
// peer's crash (sender-side logging and re-send) is out of scope.

// nodeCkpt is the serialized private state of one owned node.
type nodeCkpt struct {
	clocks   []int64
	queues   [][]event
	inVal    [2]circuit.Value
	nullSent bool
	events   int64
	history  []TimedValue
}

// ckpt is one LP's crash-consistent checkpoint.
type ckpt struct {
	nodes     []nodeCkpt // indexed like proc.nodes
	inWS      []bool     // workset membership, indexed like proc.nodes
	ws        []int32
	lastNull  []int64
	remaining int
	eventMsgs int64
	nullMsgs  int64
}

// checkpoint deep-copies everything this LP owns.
func (p *proc) checkpoint() *ckpt {
	c := &ckpt{
		nodes:     make([]nodeCkpt, len(p.nodes)),
		inWS:      make([]bool, len(p.nodes)),
		ws:        append([]int32(nil), p.ws.Slice()...),
		lastNull:  append([]int64(nil), p.lastNull...),
		remaining: p.remaining,
		eventMsgs: p.eventMsgs,
		nullMsgs:  p.nullMsgs,
	}
	for i, id := range p.nodes {
		n := &p.r.nodes[id]
		nc := &c.nodes[i]
		nc.clocks = make([]int64, len(n.ports))
		nc.queues = make([][]event, len(n.ports))
		for pi := range n.ports {
			nc.clocks[pi] = n.ports[pi].clock
			nc.queues[pi] = append([]event(nil), n.ports[pi].q.Slice()...)
		}
		nc.inVal = n.inVal
		nc.nullSent = n.nullSent
		nc.events = n.events
		nc.history = append([]TimedValue(nil), n.history...)
		c.inWS[i] = p.r.inWS[id]
	}
	return c
}

// scramble overwrites the LP's private state with garbage, simulating the
// crashed process image. Restore must overwrite every field scrambled
// here, or the corruption leaks into the results — that asymmetry is what
// the chaos tests check.
func (p *proc) scramble() {
	for _, id := range p.nodes {
		n := &p.r.nodes[id]
		for pi := range n.ports {
			n.ports[pi].clock = -1234567
			n.ports[pi].q.Clear()
			n.ports[pi].q.PushBack(event{time: -99, val: 1})
		}
		n.inVal = [2]circuit.Value{1, 1}
		n.nullSent = !n.nullSent
		n.events = -1
		n.history = nil
		p.r.inWS[id] = false
	}
	p.ws.Clear()
	p.ws.PushBack(-1) // poison entry: must never survive a restore
	for i := range p.lastNull {
		p.lastNull[i] = -1234567
	}
	p.remaining = -1
	p.eventMsgs = -1
	p.nullMsgs = -1
}

// restore writes the checkpoint back over the (scrambled) live state.
func (p *proc) restore(c *ckpt) {
	for i, id := range p.nodes {
		n := &p.r.nodes[id]
		nc := &c.nodes[i]
		for pi := range n.ports {
			n.ports[pi].clock = nc.clocks[pi]
			n.ports[pi].q.Clear()
			for _, ev := range nc.queues[pi] {
				n.ports[pi].q.PushBack(ev)
			}
		}
		n.inVal = nc.inVal
		n.nullSent = nc.nullSent
		n.events = nc.events
		n.history = append([]TimedValue(nil), nc.history...)
		p.r.inWS[id] = c.inWS[i]
	}
	p.ws.Clear()
	for _, id := range c.ws {
		p.ws.PushBack(id)
	}
	copy(p.lastNull, c.lastNull)
	p.remaining = c.remaining
	p.remainingA.Store(int32(p.remaining))
	p.eventMsgs = c.eventMsgs
	p.nullMsgs = c.nullMsgs
}

// restart performs one kill-and-restart cycle at the current (loop-top)
// crash point: checkpoint, scramble, restore.
func (p *proc) restart() {
	p.checkCanceled()
	// The checkpoint deliberately excludes the transport layer, so it is
	// only crash-consistent while nothing sent-and-counted is still
	// buffered; every path to the loop top flushes, and a crash anywhere
	// else would re-send or lose messages.
	for _, buf := range p.outBuf {
		if len(buf) != 0 {
			panic("lp: loop-top restart with buffered outgoing messages")
		}
	}
	p.trace.Record(obs.EvCheckpoint, int64(len(p.nodes)), int64(p.remaining))
	c := p.checkpoint()
	p.scramble()
	p.restore(c)
	p.restarts++
	p.trace.Record(obs.EvRestart, p.restarts, 0)
	p.progress.Add(1)
}
