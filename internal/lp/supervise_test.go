package lp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/partition"
)

// blackhole is an interceptor that swallows every inter-LP message and
// never crashes: with k>1 the simulation can make no global progress, so
// only cancellation ends the run. (Dropping events violates the normal
// interceptor contract on purpose — that is the point of the test.)
type blackhole struct{}

func (blackhole) OnSend(src, to int32, m Msg) []Delivery { return nil }
func (blackhole) OnBlock(src int32) []Delivery           { return nil }
func (blackhole) CrashPoint(src int32) bool              { return false }

func settleLP(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("LP goroutines leaked after cancel\n%s", buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunPreCanceledContext: a context that is already canceled must come
// back immediately with its cause, without waiting for LP progress.
func TestRunPreCanceledContext(t *testing.T) {
	c := circuit.KoggeStone(16)
	plan, err := partition.Partition(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 1), c.SettleTime()+10)

	sentinel := errors.New("upstream gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(sentinel)

	base := runtime.NumGoroutine()
	start := time.Now()
	_, err = Run(c, stim, plan, Config{Ctx: ctx})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want the cancellation cause %v", err, sentinel)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-canceled Run took %v", elapsed)
	}
	settleLP(t, base)
}

// TestRunMidFlightCancel: wedge the topology with a message-swallowing
// interceptor, cancel from outside, and require a prompt return carrying
// the cause plus zero leaked LP goroutines — even from deep blocking
// receives.
func TestRunMidFlightCancel(t *testing.T) {
	c := circuit.KoggeStone(16)
	plan, err := partition.Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 2), c.SettleTime()+10)

	sentinel := errors.New("operator hit ctrl-c")
	ctx, cancel := context.WithCancelCause(context.Background())

	base := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := Run(c, stim, plan, Config{
			Ctx:            ctx,
			NewInterceptor: func(int) Interceptor { return blackhole{} },
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the LPs wedge in blocked receives
	cancel(sentinel)

	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Fatalf("Run = %v, want the cancellation cause %v", err, sentinel)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	settleLP(t, base)
}

// crashOnce kills each LP a fixed number of times, each at a different
// loop iteration, and otherwise forwards everything untouched.
type crashOnce struct {
	lp    int
	calls int
	kills int
	max   int
}

func (ci *crashOnce) OnSend(src, to int32, m Msg) []Delivery {
	return []Delivery{{To: to, M: m}}
}
func (ci *crashOnce) OnBlock(src int32) []Delivery { return nil }
func (ci *crashOnce) CrashPoint(src int32) bool {
	ci.calls++
	// Batched delivery leaves each LP only a handful of loop-top crash
	// points per run, so kill eagerly: even LPs from their first loop
	// top (the post-flood checkpoint), odd LPs from their second (a
	// mid-simulation checkpoint with applied-but-unprocessed events).
	if ci.kills < ci.max && ci.calls >= 1+ci.lp%2 {
		ci.kills++
		return true
	}
	return false
}

// settledAt returns the value of one output history at a deadline.
func settledAt(t *testing.T, h []TimedValue, deadline int64, what string) circuit.Value {
	t.Helper()
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Time <= deadline {
			return h[i].Value
		}
	}
	t.Fatalf("%s: no events by t=%d", what, deadline)
	return 0
}

// TestKillRestartBitExact: running with kill-and-restart faults at every
// LP must reproduce the fault-free run's settled outputs bit for bit —
// anything the checkpoint forgets to save or restore shows up as a
// wrong settled value (or a Paranoid causality panic). Transient glitch
// trains are not compared: they legitimately vary with goroutine
// scheduling even without faults.
func TestKillRestartBitExact(t *testing.T) {
	for _, k := range []int{2, 3, 8} {
		c := circuit.KoggeStone(16)
		plan, err := partition.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		waves := randomWaves(c, 6, 5)
		period := c.SettleTime() + 10

		clean, err := Run(c, circuit.VectorWaves(c, waves, period), plan,
			Config{Record: true, Paranoid: true})
		if err != nil {
			t.Fatalf("k=%d clean run: %v", k, err)
		}

		faulty, err := Run(c, circuit.VectorWaves(c, waves, period), plan, Config{
			Record:   true,
			Paranoid: true,
			NewInterceptor: func(lp int) Interceptor {
				return &crashOnce{lp: lp, max: 2}
			},
		})
		if err != nil {
			t.Fatalf("k=%d faulty run: %v", k, err)
		}
		if faulty.Stats.Restarts == 0 {
			t.Fatalf("k=%d: no restarts happened; the fault injector is dead", k)
		}
		for w := range waves {
			deadline := int64(w+1) * period
			for name, ch := range clean.Outputs {
				want := settledAt(t, ch, deadline, name)
				got := settledAt(t, faulty.Outputs[name], deadline, name)
				if got != want {
					t.Fatalf("k=%d wave %d output %q: settled %v after %d restarts, clean run settled %v",
						k, w, name, got, faulty.Stats.Restarts, want)
				}
			}
		}
	}
}
