package lp

import (
	"math/rand"
	"testing"

	"hjdes/internal/circuit"
	"hjdes/internal/partition"
)

func randomWaves(c *circuit.Circuit, n int, seed int64) []map[string]circuit.Value {
	rng := rand.New(rand.NewSource(seed))
	waves := make([]map[string]circuit.Value, n)
	for w := range waves {
		m := make(map[string]circuit.Value)
		for _, name := range c.InputNames() {
			m[name] = circuit.Value(rng.Intn(2))
		}
		waves[w] = m
	}
	return waves
}

// runLP partitions c into k LPs and simulates the waves with the
// causality assertion armed.
func runLP(t *testing.T, c *circuit.Circuit, k int, waves []map[string]circuit.Value) *Result {
	t.Helper()
	plan, err := partition.Partition(c, k)
	if err != nil {
		t.Fatalf("%s k=%d: %v", c.Name, k, err)
	}
	stim := circuit.VectorWaves(c, waves, c.SettleTime()+10)
	res, err := Run(c, stim, plan, Config{Record: true, Paranoid: true})
	if err != nil {
		t.Fatalf("%s k=%d: %v", c.Name, k, err)
	}
	return res
}

// TestAgainstOracle drives several circuit families at several partition
// counts and checks every settled output against the levelized oracle.
func TestAgainstOracle(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		circuit.C17(),
		circuit.FullAdder(),
		circuit.KoggeStone(16),
		circuit.TreeMultiplier(6),
		circuit.ParityChain(24),
		circuit.RandomDAG(circuit.RandomConfig{Inputs: 6, Gates: 80, Outputs: 5, Seed: 3}),
	} {
		waves := randomWaves(c, 6, 11)
		period := c.SettleTime() + 10
		for _, k := range []int{1, 2, 3, 8} {
			res := runLP(t, c, k, waves)
			for w, assign := range waves {
				want := circuit.Evaluate(c, assign)
				deadline := int64(w+1) * period
				for name, wantV := range want {
					h := res.Outputs[name]
					var got circuit.Value
					found := false
					for i := len(h) - 1; i >= 0; i-- {
						if h[i].Time <= deadline {
							got = h[i].Value
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s k=%d wave %d: output %q saw no events", c.Name, k, w, name)
					}
					if got != wantV {
						t.Fatalf("%s k=%d wave %d: output %q = %v, oracle %v", c.Name, k, w, name, got, wantV)
					}
				}
			}
		}
	}
}

// settled reduces a history to its final value at each distinct
// timestamp, the same representation core.SettledValues uses for
// cross-engine comparison: same-timestamp events may legally be
// processed in any order (paper Section 4.1), so only the last value at
// each timestamp is deterministic.
func settled(h []TimedValue) []TimedValue {
	var out []TimedValue
	for _, tv := range h {
		if len(out) > 0 && out[len(out)-1].Time == tv.Time {
			out[len(out)-1] = tv
			continue
		}
		out = append(out, tv)
	}
	return out
}

// TestPartitionCountInvariance: settled outputs and event totals must
// not depend on the partition count.
func TestPartitionCountInvariance(t *testing.T) {
	c := circuit.KoggeStone(32)
	waves := randomWaves(c, 5, 21)
	ref := runLP(t, c, 1, waves)
	if ref.TotalEvents == 0 {
		t.Fatal("reference processed no events")
	}
	for _, k := range []int{2, 3, 5, 8, 16} {
		res := runLP(t, c, k, waves)
		if res.TotalEvents != ref.TotalEvents {
			t.Fatalf("k=%d: %d events, k=1: %d", k, res.TotalEvents, ref.TotalEvents)
		}
		for name, hr := range ref.Outputs {
			sr, s := settled(hr), settled(res.Outputs[name])
			if len(s) != len(sr) {
				t.Fatalf("k=%d output %q: %d settled samples vs %d", k, name, len(s), len(sr))
			}
			for i := range s {
				if s[i] != sr[i] {
					t.Fatalf("k=%d output %q sample %d: %v vs %v", k, name, i, s[i], sr[i])
				}
			}
		}
	}
}

// TestStats: cross-partition runs must report messages and a finite,
// sane null ratio; single-partition runs must report none.
func TestStats(t *testing.T) {
	c := circuit.KoggeStone(32)
	waves := randomWaves(c, 4, 31)

	solo := runLP(t, c, 1, waves)
	if solo.Stats.EventMsgs != 0 || solo.Stats.NullMsgs != 0 || solo.Stats.CutEdges != 0 {
		t.Fatalf("k=1 reported cross traffic: %+v", solo.Stats)
	}
	if solo.Stats.NullRatio() != 0 {
		t.Fatalf("k=1 null ratio %f", solo.Stats.NullRatio())
	}

	res := runLP(t, c, 4, waves)
	s := res.Stats
	if s.Partitions != 4 || s.CutEdges == 0 || s.EventMsgs == 0 {
		t.Fatalf("k=4 stats %+v", s)
	}
	if r := s.NullRatio(); r < 0 || r >= 1 {
		t.Fatalf("null ratio %f out of range", r)
	}
	// No null storm: the protocol coalesces promises, so null volume
	// must stay within a small multiple of real event traffic.
	if s.NullMsgs > 10*s.EventMsgs+1000 {
		t.Fatalf("null storm: %d nulls for %d events", s.NullMsgs, s.EventMsgs)
	}
	if s.EdgeCut <= 0 || s.Imbalance < 1.0-1e-9 {
		t.Fatalf("plan quality stats missing: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Stats.String")
	}
}

// TestEmptyStimulus: no initial events still terminates cleanly at any
// partition count.
func TestEmptyStimulus(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	for _, k := range []int{1, 3, 8} {
		plan, err := partition.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, circuit.NewStimulus(c), plan, Config{Record: true, Paranoid: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.TotalEvents != 0 {
			t.Fatalf("k=%d: %d events from empty stimulus", k, res.TotalEvents)
		}
	}
}

// TestTinyInbox forces constant backpressure: the run must still
// complete and agree with an unconstrained run.
func TestTinyInbox(t *testing.T) {
	c := circuit.KoggeStone(16)
	waves := randomWaves(c, 6, 41)
	stim := circuit.VectorWaves(c, waves, c.SettleTime()+10)
	plan, err := partition.Partition(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Run(c, stim, plan, Config{Record: true, Paranoid: true, InboxCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := runLP(t, c, 6, waves)
	if tiny.TotalEvents != ref.TotalEvents {
		t.Fatalf("inbox=1 processed %d events, reference %d", tiny.TotalEvents, ref.TotalEvents)
	}
}

// TestMismatchedStimulusRejected mirrors the core engines' contract.
func TestMismatchedStimulusRejected(t *testing.T) {
	c := circuit.FullAdder()
	plan, err := partition.Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &circuit.Stimulus{ByInput: make([][]circuit.Transition, 1)}
	if _, err := Run(c, bad, plan, Config{}); err == nil {
		t.Fatal("mismatched stimulus accepted")
	}
}

// TestMismatchedPlanRejected: a plan for a different circuit must error,
// not corrupt memory.
func TestMismatchedPlanRejected(t *testing.T) {
	small := circuit.FullAdder()
	plan, err := partition.Partition(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := circuit.KoggeStone(16)
	if _, err := Run(big, circuit.NewStimulus(big), plan, Config{}); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

// TestDeepChainManyPartitions: a long dependency chain split into many
// LPs is the worst case for null-message progress (every partition
// boundary crosses the only path). It must terminate and agree with the
// oracle.
func TestDeepChainManyPartitions(t *testing.T) {
	c := circuit.ParityChain(48)
	waves := randomWaves(c, 3, 51)
	res := runLP(t, c, 12, waves)
	if res.TotalEvents == 0 {
		t.Fatal("no events processed")
	}
	if res.Stats.NullMsgs == 0 && res.Stats.CutEdges > 0 && res.Stats.EventMsgs > 0 {
		// Nulls are only needed when an LP blocks with open inbound
		// channels; a pipeline this deep should block at least once.
		t.Log("note: no null messages were needed")
	}
}
