package lp

import (
	"context"
	"errors"
	"runtime/debug"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
)

// Fused hj-scheduled LP mode.
//
// RunHJ runs the same Chandy–Misra–Bryant protocol as Run, but each LP
// is an hj IndexedTask on a caller-owned work-stealing runtime instead
// of a goroutine: K logical processes multiplex onto W workers, so high
// partition counts stop oversubscribing the OS scheduler. Three pieces
// replace the goroutine transport:
//
//   - Lock-free MPSC mailboxes (mailbox.go): a sender pushes its batch
//     and returns; nobody ever blocks on a peer.
//   - Scheduled-flag dedup: pushing mail spawns a task for the
//     destination LP only if none is pending or running, via a
//     CompareAndSwap(false, true) on the LP's sched flag. A slice holds
//     the flag for its whole duration and only clears it after its last
//     mailbox drain, then re-checks the mailbox and re-claims the flag
//     to continue inline if mail raced in — the classic actor protocol,
//     so at most one slice per LP runs at any moment and the CAS chain
//     on the flag gives a happens-before edge between consecutive
//     slices on different workers. All owner-only state (node arrays,
//     worksets, lbOut, trace ring shards, interceptors, checkpoints)
//     therefore still has a single logical writer.
//   - Run-to-completion slices with safe-window widening: a slice
//     drains the mailbox and processes every locally safe event before
//     yielding. After the raw port clocks are exhausted it relaxes the
//     owned sub-DAG (relax) and widens each locally-fed port's bound to
//     max(clock, lbOut(feeder)) — a valid lower bound on everything the
//     feeder can still emit — repeating until no event is below the
//     widened horizon. Only then are output batches flushed and null
//     promises sent, so one slice does the work that costs the
//     goroutine engine several blocking round trips.
//
// Every contract of the goroutine engine is preserved: the Interceptor
// boundary (slices are exclusive, so interceptor state stays
// single-threaded; OnBlock runs at the end of every slice), loop-top
// kill-and-restart checkpoints (every path to a slice-loop top has
// flushed, so outBuf is empty exactly as restart requires), Probe
// diagnostics (mailbox depth replaces inbox depth), NMR stats, and
// cancellation via Config.Ctx. A panic inside a slice is re-thrown as a
// *PanicError so the runtime's containment (hj.TaskPanic) carries the
// failing LP to the engine layer.

// RunHJ simulates the circuit with one hj-scheduled logical process per
// partition of the plan, multiplexed onto rt's workers. The runtime is
// caller-owned: RunHJ never shuts it down, and a clean run leaves it
// quiescent (pool-reusable). Config.InboxCap is ignored — mailboxes are
// unbounded; the protocol's own null-message pacing bounds them.
func RunHJ(c *circuit.Circuit, stim *circuit.Stimulus, plan *partition.Plan, rt *hj.Runtime, cfg Config) (*Result, error) {
	if rt == nil {
		return nil, errors.New("lp: RunHJ requires a runtime")
	}
	r, err := build(c, stim, plan, cfg, true)
	if err != nil {
		return nil, err
	}
	r.body = r.sliceIdx
	// Home workers from the partition plan: LP i runs on worker i*W/K,
	// so the contiguous partitions the planner makes neighbors tend to
	// share a worker and cross-LP mail stays cache-warm.
	if w := rt.NumWorkers(); w > 1 && !cfg.NoAffinity {
		r.home = make([]int32, plan.K)
		for i := range r.home {
			r.home[i] = int32(i * w / plan.K)
		}
	}

	rt.Finish(func(hctx *hj.Ctx) {
		for _, p := range r.procs {
			// Initial spawns claim the flag up front: no dedup races at
			// the start, and every LP gets exactly one first slice.
			p.sched.Store(true)
			r.enqueue(hctx, p.id)
		}
	})

	if err := rt.Err(); err != nil {
		// Abandoned tasks may still be unwinding on workers that have
		// not observed the cancellation yet, so the arena-backed rings
		// are NOT recycled on this path (collect is skipped).
		var tp *hj.TaskPanic
		if errors.As(err, &tp) {
			if pe, ok := tp.Value.(*PanicError); ok {
				return nil, pe
			}
			return nil, err // e.g. a chaos TaskHook panic: keep the worker attribution
		}
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, context.Cause(cfg.Ctx)
		}
		return nil, err
	}
	// The finish scope completed: no task is running or queued anywhere,
	// so collecting (and recycling the arenas) is safe.
	return r.collect(c, plan)
}

// sliceIdx adapts slice to the runtime's indexed-task spawn path, so LP
// respawns allocate no closure.
func (r *run) sliceIdx(ctx *hj.Ctx, id int32) { r.procs[id].slice(ctx) }

// enqueue spawns a slice task for LP to, routed to its home worker when
// affinity is on. Callers must have claimed to's sched flag.
func (r *run) enqueue(ctx *hj.Ctx, to int32) {
	if r.home != nil {
		ctx.AsyncIdxOn(int(r.home[to]), r.body, to)
		return
	}
	ctx.AsyncIdx(r.body, to)
}

// slice is one run-to-completion scheduling quantum of an LP: drain the
// mailbox, process every locally safe event (with safe-window
// widening), promise output bounds, flush, and yield — unless mail
// raced in behind the final drain, in which case the slice continues
// inline. The LP's sched flag is held (true) for the slice's whole
// duration; see the file comment for the exclusivity protocol.
func (p *proc) slice(ctx *hj.Ctx) {
	p.hctx = ctx
	defer func() {
		p.hctx = nil
		if rec := recover(); rec != nil {
			p.state.Store(stateDone)
			if _, ok := rec.(lpCanceled); ok {
				// Cancellation unwind: stop quietly without clearing the
				// sched flag, so no further slices spawn while the
				// engine tears the runtime down.
				return
			}
			if pe, ok := rec.(*PanicError); ok {
				panic(pe) // a restarted slice re-panicking; already attributed
			}
			panic(&PanicError{LP: int(p.id), Value: rec, Stack: debug.Stack()})
		}
	}()
	p.state.Store(stateRunning)
	if !p.started {
		p.started = true
		p.floodInputs()
	}
	for {
		p.checkCanceled()
		if p.ic != nil && p.ic.CrashPoint(p.id) {
			// Crash-consistent by the same invariant as the goroutine
			// loop: every path to this point has passed a flushAll, so
			// nothing counted is still buffered.
			p.restart()
		}
		ev0 := p.procEvents
		p.drainMail()
		p.processSafe()
		p.flushHeld()
		if p.remaining > 0 {
			p.sendNulls()
		}
		p.flushAll()
		p.yieldNote(ev0)
		// Yield protocol: clear the flag, then re-check the mailbox. A
		// producer that pushed before the clear saw sched=true and did
		// not spawn — the re-check picks its mail up here; a producer
		// that pushes after the clear wins the CAS and spawns a fresh
		// slice. Either way exactly one slice owns the mail.
		p.sched.Store(false)
		if p.mb.Empty() || !p.sched.CompareAndSwap(false, true) {
			return
		}
		p.state.Store(stateRunning)
	}
}

// drainMail applies every batch currently in the mailbox, in push order.
func (p *proc) drainMail() {
	for m := p.mb.Drain(); m != nil; {
		next := m.Next
		p.mbDepth.Add(-1)
		p.applyBatch(m.Val)
		p.freeMail(m)
		m = next
	}
}

// processSafe processes every event below the LP's safe horizon: the
// raw workset first, then repeated widening rounds — relax the owned
// sub-DAG and re-examine ports whose local feeder's output bound now
// exceeds the port clock — until nothing below the widened horizon
// remains.
func (p *proc) processSafe() {
	p.drainWS(false)
	for p.remaining > 0 {
		p.relax()
		woke := false
		for _, id := range p.nodes {
			n := &p.r.nodes[id]
			if n.nullSent || p.r.inWS[id] {
				continue
			}
			if p.hasReadyWidened(n) {
				p.wake(id)
				woke = true
			}
		}
		if !woke {
			return
		}
		p.drainWS(true)
	}
}

// widenedClock is the node's safe-processing horizon under widening:
// min over ports of the port clock, lifted to lbOut(feeder) for ports
// fed by a locally owned node (all future arrivals there come from that
// feeder, and lbOut bounds everything it can still emit).
func (p *proc) widenedClock(n *node) int64 {
	clock := TimeInfinity
	for pi := range n.ports {
		b := n.ports[pi].clock
		if f := n.fanin[pi]; f >= 0 && p.r.owner[f] == p.id {
			if lb := p.r.lbOut[f]; lb > b {
				b = lb
			}
		}
		if b < clock {
			clock = b
		}
	}
	return clock
}

// hasReadyWidened reports whether any queued event is at or below the
// widened horizon.
func (p *proc) hasReadyWidened(n *node) bool {
	clock := p.widenedClock(n)
	for pi := range n.ports {
		if head, ok := n.ports[pi].q.Front(); ok && head.time <= clock {
			return true
		}
	}
	return false
}

// yieldNote publishes end-of-slice diagnostics and metrics: events
// processed this slice, the safe horizon (minimum local clock over live
// nodes) and its advance since the previous yield.
func (p *proc) yieldNote(ev0 int64) {
	events := p.procEvents - ev0
	clock := TimeInfinity
	for _, id := range p.nodes {
		n := &p.r.nodes[id]
		if n.nullSent {
			continue
		}
		if c := n.localClock(); c < clock {
			clock = c
		}
	}
	if p.sliceHist != nil {
		p.sliceHist.Observe(int(p.id), float64(events))
	}
	if p.windowHist != nil && clock < TimeInfinity {
		if p.lastHorizon > 0 && clock > p.lastHorizon {
			p.windowHist.Observe(int(p.id), float64(clock-p.lastHorizon))
		}
		p.lastHorizon = clock
	}
	horizon := clock
	if horizon == TimeInfinity {
		horizon = -1
	}
	p.trace.Record(obs.EvSlice, events, horizon)
	p.minClock.Store(clock)
	p.blockedOn.Store(-1)
	p.remainingA.Store(int32(p.remaining))
	if p.remaining == 0 {
		p.state.Store(stateDone)
	} else {
		p.state.Store(stateBlockedRecv)
	}
}
