package lp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMailboxFIFO pushes batches through many push/drain cycles and
// checks exact FIFO order every cycle — the recycling analog of ring
// wraparound: the sender's chunk-carved mail nodes keep cycling through
// its free list, so any stale next pointer or batch alias shows up as a
// misordered or duplicated batch.
func TestMailboxFIFO(t *testing.T) {
	var mb mailbox
	var sender proc
	seq := 0
	for cycle := 0; cycle < 200; cycle++ {
		n := 1 + cycle%17
		for i := 0; i < n; i++ {
			mb.Push(sender.takeMail([]Msg{{Time: int64(seq + i)}}))
		}
		seq += n
		want := int64(seq - n)
		for m := mb.Drain(); m != nil; {
			next := m.Next
			if got := m.Val[0].Time; got != want {
				t.Fatalf("cycle %d: batch out of order: got %d want %d", cycle, got, want)
			}
			want++
			sender.freeMail(m)
			m = next
		}
		if want != int64(seq) {
			t.Fatalf("cycle %d: drained %d batches, want %d", cycle, want-int64(seq-n), n)
		}
		if !mb.Empty() {
			t.Fatalf("cycle %d: mailbox not empty after drain", cycle)
		}
	}
}

// TestMailboxConcurrentProducers hammers one mailbox from many
// producers under -race: every pushed batch must be drained exactly
// once, and batches from one producer must arrive in their push order
// (the per-sender FIFO that per-(node,port) ordering rests on).
func TestMailboxConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 500
	var mb mailbox
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var sender proc // takeMail is owner-only: one per producer
			for i := 0; i < perProducer; i++ {
				mb.Push(sender.takeMail([]Msg{{Src: int32(p), Time: int64(i)}}))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	got := 0
	lastPer := [producers]int64{}
	for i := range lastPer {
		lastPer[i] = -1
	}
	drained := false
	for !drained {
		select {
		case <-done:
			drained = true // one final drain below picks up the tail
		default:
		}
		for m := mb.Drain(); m != nil; {
			next := m.Next
			src, seq := m.Val[0].Src, m.Val[0].Time
			if seq <= lastPer[src] {
				t.Fatalf("producer %d: batch %d arrived after %d", src, seq, lastPer[src])
			}
			lastPer[src] = seq
			got++
			putMail(m)
			m = next
		}
	}
	if got != producers*perProducer {
		t.Fatalf("drained %d batches, want %d", got, producers*perProducer)
	}
	for p, last := range lastPer {
		if last != perProducer-1 {
			t.Fatalf("producer %d: last batch %d, want %d", p, last, perProducer-1)
		}
	}
}

// TestScheduledFlagDedupLinearizable stress-tests the actor protocol
// that RunHJ builds on: 4×GOMAXPROCS producers push items and try to
// CAS the scheduled flag; whoever wins spawns a consumer slice that
// drains with the clear-then-recheck yield sequence. The invariants
// checked are exactly the engine's: never two concurrent slices for the
// same mailbox (exclusivity), and no item is lost or consumed twice
// even when a push races the final drain (no lost wakeups).
func TestScheduledFlagDedupLinearizable(t *testing.T) {
	producers := 4 * runtime.GOMAXPROCS(0)
	const perProducer = 400
	total := int64(producers * perProducer)

	var mb mailbox
	var sched atomic.Bool
	var active atomic.Int32 // concurrent slices; must never exceed 1
	var consumed atomic.Int64
	var wg sync.WaitGroup // every spawned slice, joined before the final checks

	var slice func()
	slice = func() {
		defer wg.Done()
		if n := active.Add(1); n != 1 {
			t.Errorf("slice exclusivity violated: %d concurrent slices", n)
		}
		for {
			for m := mb.Drain(); m != nil; {
				next := m.Next
				consumed.Add(int64(len(m.Val)))
				putMail(m)
				m = next
			}
			// The engine's yield protocol, verbatim.
			active.Add(-1)
			sched.Store(false)
			if mb.Empty() || !sched.CompareAndSwap(false, true) {
				return
			}
			if n := active.Add(1); n != 1 {
				t.Errorf("slice exclusivity violated on continue: %d", n)
			}
		}
	}
	deliver := func() {
		mb.Push(getMail(make([]Msg, 1)))
		if sched.CompareAndSwap(false, true) {
			wg.Add(1)
			go slice()
		}
	}

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func() {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				deliver()
			}
		}()
	}
	prodWG.Wait()
	wg.Wait()
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d items, want %d", got, total)
	}
	if !mb.Empty() {
		t.Fatal("mailbox not empty after all slices yielded")
	}
}
