package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDequeZeroValue(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatalf("zero deque: Empty=%v Len=%d", d.Empty(), d.Len())
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque reported ok")
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty deque reported ok")
	}
	if _, ok := d.Front(); ok {
		t.Fatal("Front on empty deque reported ok")
	}
	if _, ok := d.Back(); ok {
		t.Fatal("Back on empty deque reported ok")
	}
	d.PushBack(42)
	if v, ok := d.PopFront(); !ok || v != 42 {
		t.Fatalf("PopFront = %d, %v; want 42, true", v, ok)
	}
}

func TestDequeFIFO(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d, %v", i, v, ok)
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty after draining")
	}
}

func TestDequeLIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	for i := 99; i >= 0; i-- {
		v, ok := d.PopBack()
		if !ok || v != i {
			t.Fatalf("PopBack = %d, %v; want %d", v, ok, i)
		}
	}
}

func TestDequePushFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 50; i++ {
		d.PushFront(i)
	}
	for i := 49; i >= 0; i-- {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront = %d, %v; want %d", v, ok, i)
		}
	}
}

func TestDequeWrapAround(t *testing.T) {
	d := NewDeque[int](8)
	// Force head to rotate through the ring repeatedly.
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			d.PushBack(round*10 + i)
		}
		for i := 0; i < 5; i++ {
			v, ok := d.PopFront()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: PopFront = %d, %v", round, v, ok)
			}
		}
	}
	if d.Cap() != 8 {
		t.Fatalf("deque grew to %d while never holding more than 5 items", d.Cap())
	}
}

func TestDequeGrowPreservesOrder(t *testing.T) {
	d := NewDeque[int](8)
	// Rotate the head, then grow mid-ring.
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 6; i++ {
		d.PopFront()
	}
	for i := 0; i < 40; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 40; i++ {
		v, _ := d.PopFront()
		if v != i {
			t.Fatalf("after grow, element %d = %d", i, v)
		}
	}
}

func TestDequeAt(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushFront("z")
	want := []string{"z", "a", "b"}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Errorf("At(%d) = %q, want %q", i, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	d.At(3)
}

func TestDequeClearAndReuse(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 20; i++ {
		d.PushBack(i)
	}
	c := d.Cap()
	d.Clear()
	if !d.Empty() || d.Cap() != c {
		t.Fatalf("Clear: Empty=%v Cap=%d want empty with cap %d", d.Empty(), d.Cap(), c)
	}
	d.PushBack(7)
	if v, _ := d.PopFront(); v != 7 {
		t.Fatal("reuse after Clear failed")
	}
}

func TestDequeSliceAndDo(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i * i)
	}
	s := d.Slice()
	var viaDo []int
	d.Do(func(x int) { viaDo = append(viaDo, x) })
	if len(s) != 10 || len(viaDo) != 10 {
		t.Fatalf("Slice len %d, Do len %d", len(s), len(viaDo))
	}
	for i := range s {
		if s[i] != i*i || viaDo[i] != i*i {
			t.Fatalf("element %d: Slice=%d Do=%d want %d", i, s[i], viaDo[i], i*i)
		}
	}
}

// dequeOp encodes one operation for the model-based property test.
type dequeOp struct {
	Kind byte // 0 PushBack, 1 PushFront, 2 PopFront, 3 PopBack
	Val  int
}

// TestDequeMatchesSliceModel drives the deque and a slice model with the
// same random operation sequences and requires identical observable
// behaviour.
func TestDequeMatchesSliceModel(t *testing.T) {
	f := func(ops []dequeOp) bool {
		var d Deque[int]
		var model []int
		for _, op := range ops {
			switch op.Kind % 4 {
			case 0:
				d.PushBack(op.Val)
				model = append(model, op.Val)
			case 1:
				d.PushFront(op.Val)
				model = append([]int{op.Val}, model...)
			case 2:
				v, ok := d.PopFront()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PopBack()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		s := d.Slice()
		if len(s) != len(model) {
			return false
		}
		for i := range s {
			if s[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewDequeCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, minDequeCap}, {1, minDequeCap}, {8, 8}, {9, 16}, {100, 128},
	} {
		d := NewDeque[int](tc.ask)
		if d.Cap() != tc.want {
			t.Errorf("NewDeque(%d).Cap() = %d, want %d", tc.ask, d.Cap(), tc.want)
		}
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBack(i)
		d.PopFront()
	}
}

func BenchmarkDequeRandomOps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rng.Intn(3) != 0 || d.Empty() {
			d.PushBack(i)
		} else {
			d.PopFront()
		}
	}
}
