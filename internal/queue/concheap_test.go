package queue

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestConcurrentHeapSequential(t *testing.T) {
	h := NewConcurrentHeap(intLess)
	for _, v := range []int{5, 1, 4, 2, 3} {
		h.Push(v)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	for want := 1; want <= 5; want++ {
		if v, ok := h.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d, %v; want %d", v, ok, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty reported ok")
	}
}

func TestConcurrentHeapPopIf(t *testing.T) {
	h := NewConcurrentHeap(intLess)
	h.Push(10)
	h.Push(20)
	if _, ok := h.PopIf(func(v int) bool { return v < 10 }); ok {
		t.Fatal("PopIf accepted a rejected minimum")
	}
	if h.Len() != 2 {
		t.Fatal("PopIf with false pred must not remove")
	}
	if v, ok := h.PopIf(func(v int) bool { return v <= 10 }); !ok || v != 10 {
		t.Fatalf("PopIf = %d, %v; want 10, true", v, ok)
	}
	if v, ok := h.Peek(); !ok || v != 20 {
		t.Fatalf("Peek after PopIf = %d, %v", v, ok)
	}
}

// TestConcurrentHeapParallelSum hammers the heap with concurrent producers
// and consumers and verifies no element is lost or duplicated.
func TestConcurrentHeapParallelSum(t *testing.T) {
	const producers, perProducer = 8, 2000
	h := NewConcurrentHeap(intLess)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				h.Push(p*perProducer + i)
			}
		}(p)
	}
	var popped atomic.Int64
	var sum atomic.Int64
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := h.Pop(); ok {
					popped.Add(1)
					sum.Add(int64(v))
					continue
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	// Drain stragglers.
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		popped.Add(1)
		sum.Add(int64(v))
	}
	total := int64(producers * perProducer)
	if popped.Load() != total {
		t.Fatalf("popped %d items, want %d", popped.Load(), total)
	}
	wantSum := total * (total - 1) / 2
	if sum.Load() != wantSum {
		t.Fatalf("sum = %d, want %d", sum.Load(), wantSum)
	}
}

func BenchmarkConcurrentHeapContended(b *testing.B) {
	h := NewConcurrentHeap(intLess)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Push(i)
			h.Pop()
			i++
		}
	})
}
