package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestHeapEmpty(t *testing.T) {
	h := NewHeap(intLess)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap reported ok")
	}
}

func TestHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHeap(intLess)
	var want []int
	for i := 0; i < 1000; i++ {
		v := rng.Intn(100)
		h.Push(v)
		want = append(want, v)
	}
	sort.Ints(want)
	for i, w := range want {
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("Pop #%d = %d, %v; want %d", i, got, ok, w)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapPeekDoesNotRemove(t *testing.T) {
	h := NewHeap(intLess)
	h.Push(3)
	h.Push(1)
	h.Push(2)
	for i := 0; i < 3; i++ {
		if v, ok := h.Peek(); !ok || v != 1 {
			t.Fatalf("Peek = %d, %v; want 1", v, ok)
		}
	}
	if h.Len() != 3 {
		t.Fatalf("Peek changed Len to %d", h.Len())
	}
}

func TestNewHeapFrom(t *testing.T) {
	items := []int{9, 4, 7, 1, 8, 2, 0, 5, 3, 6}
	h := NewHeapFrom(intLess, items)
	for want := 0; want < 10; want++ {
		got, ok := h.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d, %v; want %d", got, ok, want)
		}
	}
}

func TestHeapClearAndReuse(t *testing.T) {
	h := NewHeap(intLess)
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Clear()
	if !h.Empty() {
		t.Fatal("Clear left elements")
	}
	h.Push(5)
	h.Push(2)
	if v, _ := h.Pop(); v != 2 {
		t.Fatal("reuse after Clear failed")
	}
}

func TestHeapDuplicatesAndStabilityOfOrder(t *testing.T) {
	h := NewHeap(intLess)
	for i := 0; i < 100; i++ {
		h.Push(42)
	}
	for i := 0; i < 100; i++ {
		if v, ok := h.Pop(); !ok || v != 42 {
			t.Fatalf("duplicate pop #%d = %d, %v", i, v, ok)
		}
	}
}

// TestHeapPropertyOrdered checks via testing/quick that popping any pushed
// multiset yields a nondecreasing sequence containing exactly the pushed
// values.
func TestHeapPropertyOrdered(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHeap(intLess)
		counts := map[int]int{}
		for _, v := range vals {
			h.Push(int(v))
			counts[int(v)]++
		}
		prev := int(-1 << 20)
		for range vals {
			v, ok := h.Pop()
			if !ok || v < prev {
				return false
			}
			prev = v
			counts[v]--
			if counts[v] < 0 {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHeapPropertyInterleaved interleaves pushes and pops and checks the
// heap against a sorted-slice model.
func TestHeapPropertyInterleaved(t *testing.T) {
	f := func(ops []int16) bool {
		h := NewHeap(intLess)
		var model []int
		for _, op := range ops {
			if op >= 0 {
				h.Push(int(op))
				model = append(model, int(op))
				sort.Ints(model)
			} else {
				v, ok := h.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return h.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeapCustomOrdering(t *testing.T) {
	// Max-heap via inverted less.
	h := NewHeap(func(a, b int) bool { return a > b })
	for _, v := range []int{3, 9, 1, 7} {
		h.Push(v)
	}
	want := []int{9, 7, 3, 1}
	for _, w := range want {
		if v, _ := h.Pop(); v != w {
			t.Fatalf("max-heap Pop = %d, want %d", v, w)
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap(intLess)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Push(rng.Int())
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}
