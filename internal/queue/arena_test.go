package queue

import (
	"math"
	"testing"
)

func TestCeilPow2(t *testing.T) {
	cases := []struct{ n, want int }{
		{-5, 1},
		{0, 1},
		{1, 1},
		{2, 2},
		{3, 4},
		{4, 4},
		{5, 8},
		{1000, 1024},
		{1 << 30, 1 << 30},
		{(1 << 30) + 1, 1 << 31},
		// The overflow regime: the old doubling loop (for c < n { c *= 2 })
		// wrapped negative past 1<<62 and never terminated.
		{maxPow2 - 1, maxPow2},
		{maxPow2, maxPow2},
		{maxPow2 + 1, maxPow2},
		{math.MaxInt, maxPow2},
	}
	for _, tc := range cases {
		if got := ceilPow2(tc.n); got != tc.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestNewDequeHugeCapacity is the regression test for the capacity
// doubling overflow: NewDeque with a near-MaxInt request used to spin
// forever once the doubling wrapped negative. Zero-size elements make
// the clamped 1<<62-element ring allocation free, so the test can
// exercise the real code path.
func TestNewDequeHugeCapacity(t *testing.T) {
	d := NewDeque[struct{}](math.MaxInt)
	if d.Cap() != maxPow2 {
		t.Fatalf("Cap = %d, want %d", d.Cap(), maxPow2)
	}
	d.PushBack(struct{}{})
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

// TestDequeGrowOverflowPanics checks grow()'s guard: doubling past the
// largest power-of-two int must panic loudly instead of allocating a
// wrapped (negative) capacity. White-box: a full ring at the clamp size
// is forged directly, with zero-size elements so it costs nothing.
func TestDequeGrowOverflowPanics(t *testing.T) {
	d := &Deque[struct{}]{buf: make([]struct{}, maxPow2), n: maxPow2}
	defer func() {
		if recover() == nil {
			t.Fatal("PushBack on a maxPow2-capacity full deque did not panic")
		}
	}()
	d.PushBack(struct{}{})
}

func TestArenaRoundTrip(t *testing.T) {
	var a Arena[int]
	s := a.Get(10)
	if len(s) != 0 || cap(s) < 10 {
		t.Fatalf("Get(10): len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 42)
	p := &s[0]
	a.Put(s)
	// Single goroutine, no GC between Put and Get: sync.Pool returns the
	// just-put item, so the recycled slice shares the backing array.
	r := a.Get(10)
	if len(r) != 0 {
		t.Fatalf("recycled slice has len %d, want 0", len(r))
	}
	r = append(r, 0)
	if &r[0] != p {
		t.Error("Get after Put did not recycle the backing array")
	}
}

func TestArenaClassRounding(t *testing.T) {
	var a Arena[byte]
	// Below the smallest class: rounded up to it.
	if s := a.Get(1); cap(s) != 1<<minArenaShift {
		t.Errorf("Get(1) cap = %d, want %d", cap(s), 1<<minArenaShift)
	}
	// Above the largest class: plain allocation, exact capacity.
	big := a.Get((1 << maxArenaShift) + 1)
	if cap(big) != (1<<maxArenaShift)+1 {
		t.Errorf("oversize Get cap = %d", cap(big))
	}
	// Put of an out-of-range capacity must be dropped, not pooled into a
	// wrong class.
	a.Put(big[:0])
	a.Put(make([]byte, 0, 4))
	// A non-power-of-two capacity rounds DOWN on Put so a later Get of
	// that class is still guaranteed enough room.
	a.Put(make([]byte, 0, 24)) // classes as 16
	if s := a.Get(16); cap(s) < 16 {
		t.Errorf("Get(16) after Put(cap 24) has cap %d", cap(s))
	}
}

// TestArenaSteadyStateAllocs pins the arena's reason to exist: a
// Get/Put cycle in steady state allocates nothing, including the
// *[]T holder boxes the class pools store.
func TestArenaSteadyStateAllocs(t *testing.T) {
	var a Arena[int64]
	// Warm up: populate the class pool and a holder box.
	a.Put(a.Get(64))
	avg := testing.AllocsPerRun(100, func() {
		s := a.Get(64)
		a.Put(s)
	})
	if avg != 0 {
		t.Errorf("steady-state Get/Put allocates %v objects per op, want 0", avg)
	}
}

func TestDequeReleaseRecyclesRing(t *testing.T) {
	var a Arena[int]
	d := NewDeque[int](4)
	d.SetArena(&a)
	for i := 0; i < 100; i++ {
		d.PushBack(i) // forces arena-backed grows past the initial ring
	}
	ringCap := d.Cap()
	d.Release()
	if d.Len() != 0 || d.Cap() != 0 {
		t.Fatalf("after Release: Len=%d Cap=%d", d.Len(), d.Cap())
	}
	// The released ring must be recyclable at its class.
	if s := a.Get(ringCap); cap(s) < ringCap {
		t.Errorf("arena Get(%d) after Release has cap %d", ringCap, cap(s))
	}
	// And the deque itself must remain usable.
	d.PushBack(7)
	if v, ok := d.PopFront(); !ok || v != 7 {
		t.Fatalf("deque unusable after Release: %v %v", v, ok)
	}
}
