package queue

import (
	"sync/atomic"
)

// chunkSize is the number of items per chunk in ChunkStack. Chunking
// amortizes contention on the shared stack head: workers exchange whole
// chunks, not single items, mirroring the chunked worksets of the Galois
// runtime.
const chunkSize = 64

type chunk[T any] struct {
	next  *chunk[T]
	n     int
	items [chunkSize]T
}

// ChunkStack is a concurrent bag of items organized as a Treiber stack of
// fixed-size chunks. Producers fill a private chunk and publish it when
// full (or on Flush); consumers pop whole chunks. Ordering is unspecified,
// which matches the unordered-set iterator semantics the Galois-style
// runtime needs.
//
// Chunks are never recycled across the shared stack: a popped chunk becomes
// private to the popping worker and is dropped for the GC when drained.
// Relying on the garbage collector this way is what makes the plain
// compare-and-swap loop safe — the same chunk address cannot reappear at
// the head while another thread still holds it, so the classic ABA failure
// of Treiber stacks cannot occur.
type ChunkStack[T any] struct {
	head atomic.Pointer[chunk[T]]
	size atomic.Int64
}

// NewChunkStack returns an empty chunk stack.
func NewChunkStack[T any]() *ChunkStack[T] {
	return &ChunkStack[T]{}
}

// pushChunk publishes a full or partial private chunk. The item count is
// read before publication: the instant the CAS succeeds, another worker
// may pop the chunk and start mutating it.
func (cs *ChunkStack[T]) pushChunk(c *chunk[T]) {
	n := int64(c.n)
	for {
		old := cs.head.Load()
		c.next = old
		if cs.head.CompareAndSwap(old, c) {
			cs.size.Add(n)
			return
		}
	}
}

// popChunk removes and returns one chunk, or nil when the stack is empty.
func (cs *ChunkStack[T]) popChunk() *chunk[T] {
	for {
		old := cs.head.Load()
		if old == nil {
			return nil
		}
		if cs.head.CompareAndSwap(old, old.next) {
			cs.size.Add(int64(-old.n))
			old.next = nil
			return old
		}
	}
}

// Push adds a single item (allocating a one-item chunk). Hot paths should
// use a Local buffer instead.
func (cs *ChunkStack[T]) Push(x T) {
	c := new(chunk[T])
	c.items[0] = x
	c.n = 1
	cs.pushChunk(c)
}

// Size returns an instantaneous item count of the published chunks; it is
// exact whenever no operation is concurrently in flight, which is how the
// runtimes use it (as a termination hint combined with a pending counter).
func (cs *ChunkStack[T]) Size() int { return int(cs.size.Load()) }

// Local is a per-worker buffer that batches pushes/pops against a shared
// ChunkStack. A Local must be used by one goroutine at a time.
type Local[T any] struct {
	cs  *ChunkStack[T]
	cur *chunk[T] // partially filled outgoing/incoming chunk
}

// NewLocal returns a per-worker view of cs.
func (cs *ChunkStack[T]) NewLocal() *Local[T] {
	return &Local[T]{cs: cs}
}

// Push buffers x locally, publishing a chunk to the shared stack when the
// buffer fills.
func (l *Local[T]) Push(x T) {
	if l.cur == nil {
		l.cur = new(chunk[T])
	}
	l.cur.items[l.cur.n] = x
	l.cur.n++
	if l.cur.n == chunkSize {
		l.cs.pushChunk(l.cur)
		l.cur = nil
	}
}

// Pop returns one item, preferring the local buffer and falling back to
// taking a chunk from the shared stack. It reports false when both are
// empty (other workers may still hold buffered items).
func (l *Local[T]) Pop() (T, bool) {
	var zero T
	for {
		if l.cur != nil {
			if l.cur.n > 0 {
				l.cur.n--
				x := l.cur.items[l.cur.n]
				l.cur.items[l.cur.n] = zero
				if l.cur.n == 0 {
					l.cur = nil
				}
				return x, true
			}
			l.cur = nil
		}
		c := l.cs.popChunk()
		if c == nil {
			return zero, false
		}
		l.cur = c
	}
}

// Flush publishes any locally buffered items to the shared stack so other
// workers can observe them.
func (l *Local[T]) Flush() {
	if l.cur != nil && l.cur.n > 0 {
		l.cs.pushChunk(l.cur)
		l.cur = nil
	}
}

// Buffered reports how many items sit in the private buffer.
func (l *Local[T]) Buffered() int {
	if l.cur == nil {
		return 0
	}
	return l.cur.n
}
