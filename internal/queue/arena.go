package queue

import (
	"math/bits"
	"sync"
)

// Arena size-class bounds: pooled slice capacities are powers of two from
// 1<<minArenaShift up to 1<<maxArenaShift elements; requests outside the
// range fall through to plain allocation.
const (
	minArenaShift   = 3  // smallest pooled capacity: 8 elements
	maxArenaShift   = 20 // largest pooled capacity: ~1M elements
	numArenaClasses = maxArenaShift - minArenaShift + 1
)

// maxPow2 is the largest power of two representable in an int; capacity
// computations clamp here instead of shifting past the sign bit.
const maxPow2 = 1 << 62

// ceilPow2 rounds n up to the next power of two, clamping at maxPow2. (A
// naive doubling loop overflows negative for huge n and then spins
// forever; this is the overflow-safe form every capacity computation in
// the package goes through.)
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxPow2 {
		return maxPow2
	}
	return 1 << bits.Len(uint(n-1))
}

// Arena is a sync.Pool-backed free list of slices, bucketed by
// power-of-two size classes. It recycles the hot-path buffers of the
// simulation engines — event deque rings, message batches, worksets —
// across runs, so steady-state execution allocates nothing.
//
// Recycled backing arrays are handed back with their stale contents
// intact (clearing them would cost a pass over every buffer on every
// Put); an Arena is therefore meant for pointer-free element types,
// where stale values are invisible and retain no garbage.
//
// The zero value is ready to use. All methods are safe for concurrent
// use.
type Arena[T any] struct {
	classes [numArenaClasses]sync.Pool
	// holders recycles the *[]T boxes the class pools store. Putting a
	// slice header into a sync.Pool directly would allocate a fresh box
	// per Put, costing exactly the allocation the arena exists to avoid.
	holders sync.Pool
}

// Get returns a slice with length 0 and capacity at least capacity,
// recycled when a suitable buffer is pooled. Requests above the largest
// size class are plainly allocated (and will not be pooled on Put).
func (a *Arena[T]) Get(capacity int) []T {
	c := ceilPow2(capacity)
	if c < 1<<minArenaShift {
		c = 1 << minArenaShift
	}
	if c > 1<<maxArenaShift {
		return make([]T, 0, capacity)
	}
	cl := bits.Len(uint(c)) - 1 - minArenaShift
	if v := a.classes[cl].Get(); v != nil {
		h := v.(*[]T)
		s := *h
		*h = nil
		a.holders.Put(h)
		return s
	}
	return make([]T, 0, c)
}

// Put recycles the slice's backing array for a later Get. Capacities
// outside the size-class range are dropped. The caller must not use s
// (or any slice sharing its array) afterwards.
func (a *Arena[T]) Put(s []T) {
	c := cap(s)
	if c < 1<<minArenaShift || c > 1<<maxArenaShift {
		return
	}
	// Round down: a buffer of capacity c can serve any class ≤ c.
	cl := bits.Len(uint(c)) - 1 - minArenaShift
	var h *[]T
	if v := a.holders.Get(); v != nil {
		h = v.(*[]T)
	} else {
		h = new([]T)
	}
	*h = s[:0]
	a.classes[cl].Put(h)
}
