package queue

import "sync"

// ConcurrentHeap is a mutex-guarded priority queue safe for concurrent use.
// Section 4.3 of the paper discusses (and rejects) the design where every
// node owns a concurrent priority queue instead of taking per-node locks for
// the whole run of event processing; this type exists so the trade-off can
// be measured (see the BenchmarkAblation* targets).
type ConcurrentHeap[T any] struct {
	mu sync.Mutex
	h  Heap[T]
}

// NewConcurrentHeap returns an empty concurrent heap ordered by less.
func NewConcurrentHeap[T any](less func(a, b T) bool) *ConcurrentHeap[T] {
	return &ConcurrentHeap[T]{h: Heap[T]{less: less}}
}

// Push inserts x.
func (c *ConcurrentHeap[T]) Push(x T) {
	c.mu.Lock()
	c.h.Push(x)
	c.mu.Unlock()
}

// Pop removes and returns the minimum element, reporting false when empty.
func (c *ConcurrentHeap[T]) Pop() (T, bool) {
	c.mu.Lock()
	x, ok := c.h.Pop()
	c.mu.Unlock()
	return x, ok
}

// Peek returns the minimum element without removing it.
func (c *ConcurrentHeap[T]) Peek() (T, bool) {
	c.mu.Lock()
	x, ok := c.h.Peek()
	c.mu.Unlock()
	return x, ok
}

// PopIf atomically removes and returns the minimum element when pred
// accepts it. It reports false when the heap is empty or pred rejects the
// minimum. This is the primitive a lock-free-style DES node needs to pull
// only ready events (timestamp <= local clock) without holding a lock
// across the whole processing run.
func (c *ConcurrentHeap[T]) PopIf(pred func(T) bool) (T, bool) {
	var zero T
	c.mu.Lock()
	defer c.mu.Unlock()
	top, ok := c.h.Peek()
	if !ok || !pred(top) {
		return zero, false
	}
	x, _ := c.h.Pop()
	return x, true
}

// Len reports the number of elements.
func (c *ConcurrentHeap[T]) Len() int {
	c.mu.Lock()
	n := c.h.Len()
	c.mu.Unlock()
	return n
}
