package queue

import (
	"sync"
	"testing"
)

func TestChunkStackSingleThread(t *testing.T) {
	cs := NewChunkStack[int]()
	l := cs.NewLocal()
	for i := 0; i < 10; i++ {
		l.Push(i)
	}
	if l.Buffered() != 10 {
		t.Fatalf("Buffered = %d, want 10", l.Buffered())
	}
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		v, ok := l.Pop()
		if !ok {
			t.Fatalf("Pop #%d failed", i)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("Pop on drained stack reported ok")
	}
}

func TestChunkStackFlushMakesVisible(t *testing.T) {
	cs := NewChunkStack[int]()
	a := cs.NewLocal()
	b := cs.NewLocal()
	a.Push(1)
	a.Push(2)
	if _, ok := b.Pop(); ok {
		t.Fatal("b observed unflushed items")
	}
	a.Flush()
	if cs.Size() != 2 {
		t.Fatalf("Size = %d after Flush, want 2", cs.Size())
	}
	if _, ok := b.Pop(); !ok {
		t.Fatal("b could not pop flushed item")
	}
}

func TestChunkStackChunkBoundary(t *testing.T) {
	cs := NewChunkStack[int]()
	l := cs.NewLocal()
	// Exactly one full chunk auto-publishes; the next item starts a new one.
	for i := 0; i < chunkSize+1; i++ {
		l.Push(i)
	}
	if cs.Size() != chunkSize {
		t.Fatalf("Size = %d, want %d (one auto-published chunk)", cs.Size(), chunkSize)
	}
	if l.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", l.Buffered())
	}
	count := 0
	for {
		if _, ok := l.Pop(); !ok {
			break
		}
		count++
	}
	if count != chunkSize+1 {
		t.Fatalf("drained %d items, want %d", count, chunkSize+1)
	}
}

func TestChunkStackSinglePush(t *testing.T) {
	cs := NewChunkStack[string]()
	cs.Push("x")
	cs.Push("y")
	if cs.Size() != 2 {
		t.Fatalf("Size = %d, want 2", cs.Size())
	}
	l := cs.NewLocal()
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, ok := l.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		got[v] = true
	}
	if !got["x"] || !got["y"] {
		t.Fatalf("got %v, want x and y", got)
	}
}

// TestChunkStackConcurrent verifies that items transferred between many
// producer and consumer goroutines are delivered exactly once.
func TestChunkStackConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	cs := NewChunkStack[int]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := cs.NewLocal()
			for i := 0; i < perWorker; i++ {
				l.Push(w*perWorker + i)
			}
			l.Flush()
		}(w)
	}
	wg.Wait()

	total := workers * perWorker
	if cs.Size() != total {
		t.Fatalf("Size = %d, want %d", cs.Size(), total)
	}
	results := make(chan []int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			l := cs.NewLocal()
			var mine []int
			for {
				v, ok := l.Pop()
				if !ok {
					break
				}
				mine = append(mine, v)
			}
			results <- mine
		}()
	}
	seen := make([]bool, total)
	count := 0
	for w := 0; w < workers; w++ {
		for _, v := range <-results {
			if seen[v] {
				t.Fatalf("value %d delivered twice", v)
			}
			seen[v] = true
			count++
		}
	}
	if count != total {
		t.Fatalf("delivered %d items, want %d", count, total)
	}
}

func BenchmarkChunkStackPingPong(b *testing.B) {
	cs := NewChunkStack[int]()
	b.RunParallel(func(pb *testing.PB) {
		l := cs.NewLocal()
		i := 0
		for pb.Next() {
			l.Push(i)
			l.Pop()
			i++
		}
	})
}
