// Package queue provides the sequential and concurrent containers used by
// the DES engines: a growable ring-buffer deque (the analog of
// java.util.ArrayDeque used by the paper's optimized HJlib implementation),
// a binary-heap priority queue (the analog of java.util.PriorityQueue used
// by the Galois-Java implementation), a mutex-guarded concurrent priority
// queue (the alternative design discussed in Section 4.3 of the paper), and
// a lock-free chunked stack used as the backbone of the Galois workset.
package queue

// Deque is a growable double-ended queue backed by a power-of-two ring
// buffer. The zero value is ready to use. It is not safe for concurrent
// use; the DES engines guard each Deque with a per-port lock, which is
// exactly the design the paper adopts in Section 4.5.1.
type Deque[T any] struct {
	buf   []T
	head  int // index of the first element
	n     int // number of elements
	arena *Arena[T] // optional ring recycler; nil means plain allocation
}

const minDequeCap = 8

// NewDeque returns a deque with capacity for at least capacity elements.
// Huge requests clamp at the largest power-of-two int instead of
// overflowing (the allocation itself may still fail, but loudly).
func NewDeque[T any](capacity int) *Deque[T] {
	c := ceilPow2(capacity)
	if c < minDequeCap {
		c = minDequeCap
	}
	return &Deque[T]{buf: make([]T, c)}
}

// SetArena makes the deque allocate (and on Release, recycle) its ring
// through a; see the Arena type for the pointer-free-element caveat.
// Call before first use or after Release.
func (d *Deque[T]) SetArena(a *Arena[T]) { d.arena = a }

// Release empties the deque and returns its ring to the arena set via
// SetArena (dropped for GC when none). The deque remains usable.
func (d *Deque[T]) Release() {
	if d.arena != nil && len(d.buf) > 0 {
		d.arena.Put(d.buf)
	}
	d.buf = nil
	d.head, d.n = 0, 0
}

// Len reports the number of elements in the deque.
func (d *Deque[T]) Len() int { return d.n }

// Empty reports whether the deque has no elements.
func (d *Deque[T]) Empty() bool { return d.n == 0 }

// Cap reports the current capacity of the backing ring.
func (d *Deque[T]) Cap() int { return len(d.buf) }

func (d *Deque[T]) grow() {
	newCap := minDequeCap
	if len(d.buf) > 0 {
		if len(d.buf) > maxPow2/2 {
			panic("queue: Deque capacity overflow")
		}
		newCap = len(d.buf) * 2
	}
	var buf []T
	if d.arena != nil {
		buf = d.arena.Get(newCap)[:newCap]
	} else {
		buf = make([]T, newCap)
	}
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	if d.arena != nil && len(d.buf) > 0 {
		d.arena.Put(d.buf)
	}
	d.buf = buf
	d.head = 0
}

// PushBack appends x at the tail of the deque.
func (d *Deque[T]) PushBack(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = x
	d.n++
}

// PushFront prepends x at the head of the deque.
func (d *Deque[T]) PushFront(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = x
	d.n++
}

// PopFront removes and returns the head element. The second result is
// false when the deque is empty.
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	x := d.buf[d.head]
	d.buf[d.head] = zero // release for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return x, true
}

// PopBack removes and returns the tail element. The second result is false
// when the deque is empty.
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	i := (d.head + d.n - 1) & (len(d.buf) - 1)
	x := d.buf[i]
	d.buf[i] = zero
	d.n--
	return x, true
}

// Front returns the head element without removing it.
func (d *Deque[T]) Front() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// Back returns the tail element without removing it.
func (d *Deque[T]) Back() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	return d.buf[(d.head+d.n-1)&(len(d.buf)-1)], true
}

// At returns the i-th element from the head (0-based) without removing it.
// It panics when i is out of range, matching slice indexing semantics.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("queue: Deque.At index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// Clear removes all elements, keeping the allocated ring for reuse.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = zero
	}
	d.head = 0
	d.n = 0
}

// Do calls f on every element in head-to-tail order.
func (d *Deque[T]) Do(f func(T)) {
	for i := 0; i < d.n; i++ {
		f(d.buf[(d.head+i)&(len(d.buf)-1)])
	}
}

// Slice returns the elements in head-to-tail order as a fresh slice.
func (d *Deque[T]) Slice() []T {
	out := make([]T, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	return out
}
