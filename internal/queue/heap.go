package queue

// Heap is a binary min-heap ordered by a user-supplied less function — the
// analog of java.util.PriorityQueue that the Galois-Java DES implementation
// uses for per-node event queues. The paper attributes roughly half of the
// Galois version's slowdown to this choice (Section 5), so the heap is kept
// faithful: array-backed, sift-up on push, sift-down on pop.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewHeapFrom heapifies items in O(n) and returns the heap. The slice is
// taken over by the heap and must not be reused by the caller.
func NewHeapFrom[T any](less func(a, b T) bool, items []T) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// Len reports the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum element. The second result is false
// when the heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

// Peek returns the minimum element without removing it.
func (h *Heap[T]) Peek() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

// Clear removes all elements, keeping the allocated array for reuse.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
