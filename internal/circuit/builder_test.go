package circuit

import (
	"strings"
	"testing"
)

func TestBuildFullAdderShape(t *testing.T) {
	c := FullAdder()
	// 3 inputs + 5 gates (xor, xor, and, and, or) + 2 outputs.
	if c.NumNodes() != 10 {
		t.Errorf("NumNodes = %d, want 10", c.NumNodes())
	}
	// Gate fanins: 2*5; output fanins: 2.
	if c.NumEdges() != 12 {
		t.Errorf("NumEdges = %d, want 12", c.NumEdges())
	}
	// Longest path: a -> axb -> and -> or -> cout = 4 edges.
	if c.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", c.Depth())
	}
	if len(c.Inputs) != 3 || len(c.Outputs) != 2 {
		t.Errorf("inputs=%d outputs=%d", len(c.Inputs), len(c.Outputs))
	}
	if _, ok := c.ByName("cin"); !ok {
		t.Error("ByName(cin) failed")
	}
	if _, ok := c.ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestBuildRejectsDuplicateNames(t *testing.T) {
	b := NewBuilder("dup")
	b.Input("x")
	b.Input("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Build err = %v, want duplicate-name error", err)
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder("cycle")
	in := b.Input("in")
	// Forward-reference the gate we are about to create (its own ID),
	// forming a self-loop.
	self := NodeID(2) // in=0, so the AND below gets ID 1... use explicit forward ref
	g1 := b.And(in, self)
	_ = b.And(g1, g1) // this node has ID 2 and is referenced by g1
	b.Output("out", g1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Build err = %v, want cycle error", err)
	}
}

func TestBuildRejectsOutOfRangeFanin(t *testing.T) {
	b := NewBuilder("range")
	in := b.Input("in")
	b.Output("out", b.And(in, NodeID(99)))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range fanin")
	}
}

func TestBuildRejectsOutputAsDriver(t *testing.T) {
	b := NewBuilder("outdrive")
	in := b.Input("in")
	out := b.Output("out", in)
	b.Output("out2", b.Buf(out))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "output terminal") {
		t.Fatalf("Build err = %v, want output-terminal error", err)
	}
}

func TestBuildRejectsNoInputs(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a circuit with no inputs")
	}
}

func TestBuildRejectsWrongGateArity(t *testing.T) {
	b := NewBuilder("arity")
	in := b.Input("in")
	b.Gate1(And, in) // And is 2-input
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted Gate1(And)")
	}
	b2 := NewBuilder("arity2")
	in2 := b2.Input("in")
	b2.Gate2(Not, in2, in2) // Not is 1-input
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted Gate2(Not)")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b := NewBuilder("bad")
	b.Input("x")
	b.Input("x")
	b.MustBuild()
}

func TestFanoutWiring(t *testing.T) {
	b := NewBuilder("fanout")
	in := b.Input("in")
	g1 := b.Buf(in)
	g2 := b.Not(in)
	g3 := b.And(g1, g2)
	b.Output("out", g3)
	c := b.MustBuild()
	// in drives g1 and g2.
	if got := len(c.Node(in).Fanout); got != 2 {
		t.Fatalf("input fanout = %d, want 2", got)
	}
	// g3 receives g1 on port 0 and g2 on port 1.
	found := map[int]NodeID{}
	for _, p := range c.Node(g1).Fanout {
		if p.Node == g3 {
			found[p.In] = g1
		}
	}
	for _, p := range c.Node(g2).Fanout {
		if p.Node == g3 {
			found[p.In] = g2
		}
	}
	if found[0] != g1 || found[1] != g2 {
		t.Fatalf("fanout ports wrong: %v", found)
	}
}

func TestProfileAndString(t *testing.T) {
	c := FullAdder()
	p := c.Profile()
	if p.Nodes != 10 || p.Edges != 12 || p.Inputs != 3 || p.Outputs != 2 || p.Depth != 4 {
		t.Fatalf("Profile = %+v", p)
	}
	if c.String() == "" || !strings.Contains(c.String(), "fulladder") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestSettleTimePositiveAndMonotone(t *testing.T) {
	small := KoggeStone(4)
	big := KoggeStone(64)
	if small.SettleTime() <= 0 {
		t.Fatal("SettleTime <= 0")
	}
	if big.SettleTime() <= small.SettleTime() {
		t.Fatalf("SettleTime not monotone with depth: %d vs %d", big.SettleTime(), small.SettleTime())
	}
}
