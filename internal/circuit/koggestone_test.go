package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKoggeStoneExhaustiveSmall(t *testing.T) {
	for width := 1; width <= 4; width++ {
		c := KoggeStone(width)
		limit := uint64(1) << uint(width)
		for a := uint64(0); a < limit; a++ {
			for b := uint64(0); b < limit; b++ {
				out := Evaluate(c, KoggeStoneAssign(width, a, b))
				if got := KoggeStoneSum(width, out); got != a+b {
					t.Fatalf("width %d: %d+%d = %d, want %d", width, a, b, got, a+b)
				}
			}
		}
	}
}

func TestKoggeStone64Random(t *testing.T) {
	c := KoggeStone(64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		out := Evaluate(c, KoggeStoneAssign(64, a, b))
		// At width 64 the carry bit would overflow KoggeStoneSum's
		// uint64, so compare the 65 output bits directly.
		sum := a + b
		carry := uint64(0)
		if sum < a {
			carry = 1
		}
		lowOK := true
		for bit := 0; bit < 64; bit++ {
			want := Value((sum >> uint(bit)) & 1)
			if out[sName(bit)] != want {
				lowOK = false
				break
			}
		}
		if !lowOK || uint64(out["cout"]) != carry {
			t.Fatalf("64-bit add %d+%d wrong (cout=%d want %d)", a, b, out["cout"], carry)
		}
	}
}

func sName(i int) string {
	return "s" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// TestKoggeStoneProperty16 checks a 16-bit adder against uint arithmetic
// with testing/quick-generated operands.
func TestKoggeStoneProperty16(t *testing.T) {
	c := KoggeStone(16)
	f := func(a, b uint16) bool {
		out := Evaluate(c, KoggeStoneAssign(16, uint64(a), uint64(b)))
		return KoggeStoneSum(16, out) == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKoggeStoneProfileMatchesPaperScale(t *testing.T) {
	// The paper's Table 1 reports 1306 nodes / 2289 edges for KS-64 and
	// 2973 / 5303 for KS-128. Our generator should land in the same
	// ballpark (same circuit family; minor structural differences).
	ks64 := KoggeStone(64).Profile()
	if ks64.Nodes < 900 || ks64.Nodes > 1800 {
		t.Errorf("KS-64 nodes = %d, expected ~1306 (paper)", ks64.Nodes)
	}
	if ks64.Inputs != 128 || ks64.Outputs != 65 {
		t.Errorf("KS-64 terminals: in=%d out=%d", ks64.Inputs, ks64.Outputs)
	}
	ks128 := KoggeStone(128).Profile()
	if ks128.Nodes < 2000 || ks128.Nodes > 4200 {
		t.Errorf("KS-128 nodes = %d, expected ~2973 (paper)", ks128.Nodes)
	}
	if ks128.Inputs != 256 || ks128.Outputs != 129 {
		t.Errorf("KS-128 terminals: in=%d out=%d", ks128.Inputs, ks128.Outputs)
	}
}

func TestKoggeStoneDepthLogarithmic(t *testing.T) {
	// A Kogge-Stone adder's depth grows with log2(width), not width.
	d64 := KoggeStone(64).Depth()
	d128 := KoggeStone(128).Depth()
	if d128-d64 > 6 {
		t.Errorf("depth jump 64->128 = %d, expected ~1 prefix level (+ constants)", d128-d64)
	}
	if d64 < 6 || d64 > 24 {
		t.Errorf("KS-64 depth = %d, implausible for a prefix adder", d64)
	}
}

func BenchmarkKoggeStoneBuild64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		KoggeStone(64)
	}
}
