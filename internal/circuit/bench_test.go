package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// c17Bench is the canonical ISCAS-85 c17 netlist.
const c17Bench = `# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBench(strings.NewReader(c17Bench), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 {
		t.Fatalf("terminals: %d in, %d out", len(c.Inputs), len(c.Outputs))
	}
	// Cross-check the full truth table against the builder version.
	ref := C17()
	refIn := []string{"n1", "n2", "n3", "n6", "n7"}
	benchIn := []string{"1", "2", "3", "6", "7"}
	for bits := 0; bits < 32; bits++ {
		refAssign := map[string]Value{}
		benchAssign := map[string]Value{}
		for i := 0; i < 5; i++ {
			v := Value((bits >> i) & 1)
			refAssign[refIn[i]] = v
			benchAssign[benchIn[i]] = v
		}
		want := Evaluate(ref, refAssign)
		got := Evaluate(c, benchAssign)
		if got["out_22"] != want["n22"] || got["out_23"] != want["n23"] {
			t.Fatalf("bits %05b: bench (%d,%d) vs ref (%d,%d)", bits,
				got["out_22"], got["out_23"], want["n22"], want["n23"])
		}
	}
}

func TestParseBenchMultiInputDecomposition(t *testing.T) {
	src := `INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
y = NAND(a, b, c, d)
z = NOR(a, b, c)
w = XNOR(a, b, c, d)
`
	cir, err := ParseBench(strings.NewReader(src), "multi")
	if err != nil {
		t.Fatal(err)
	}
	for bits := 0; bits < 16; bits++ {
		a, b, c, d := Value(bits&1), Value((bits>>1)&1), Value((bits>>2)&1), Value((bits>>3)&1)
		out := Evaluate(cir, map[string]Value{"a": a, "b": b, "c": c, "d": d})
		if want := (a & b & c & d) ^ 1; out["out_y"] != want {
			t.Fatalf("NAND4(%04b) = %d, want %d", bits, out["out_y"], want)
		}
		if want := (a | b | c) ^ 1; out["out_z"] != want {
			t.Fatalf("NOR3(%04b) = %d, want %d", bits, out["out_z"], want)
		}
		if want := (a ^ b ^ c ^ d) ^ 1; out["out_w"] != want {
			t.Fatalf("XNOR4(%04b) = %d, want %d", bits, out["out_w"], want)
		}
	}
}

func TestParseBenchOutOfOrderDefinitions(t *testing.T) {
	src := `INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, a)
`
	c, err := ParseBench(strings.NewReader(src), "ooo")
	if err != nil {
		t.Fatal(err)
	}
	out := Evaluate(c, map[string]Value{"a": 1})
	if out["out_y"] != 0 {
		t.Fatalf("y = %d, want 0", out["out_y"])
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"dff", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n", "sequential"},
		{"unknown fn", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "unknown function"},
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n", "cycle"},
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "undefined signal"},
		{"dup def", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", "defined twice"},
		{"dup input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n", "duplicate INPUT"},
		{"input redefined", "INPUT(a)\nOUTPUT(y)\na = NOT(a)\n", "also defined"},
		{"no inputs", "OUTPUT(y)\ny = NOT(y)\n", "no INPUT"},
		{"no outputs", "INPUT(a)\n", "no OUTPUT"},
		{"missing output def", "INPUT(a)\nOUTPUT(y)\n", "never defined"},
		{"garbage", "INPUT(a)\nOUTPUT(a)\nwhatever\n", "unrecognized"},
		{"bad arity", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n", "takes 1 argument"},
		{"malformed", "INPUT(a)\nOUTPUT(y)\ny = AND a\n", "malformed"},
	}
	for _, tc := range cases {
		_, err := ParseBench(strings.NewReader(tc.src), tc.name)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestWriteBenchRoundTripFunction(t *testing.T) {
	orig := KoggeStone(8)
	var buf bytes.Buffer
	if err := WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench(bytes.NewReader(buf.Bytes()), "ks8-rt")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	for a := uint64(0); a < 256; a += 37 {
		for b := uint64(0); b < 256; b += 41 {
			want := Evaluate(orig, KoggeStoneAssign(8, a, b))
			got := Evaluate(parsed, KoggeStoneAssign(8, a, b))
			for name, wv := range want {
				if got["out_"+name] != wv {
					t.Fatalf("%d+%d: output %s differs", a, b, name)
				}
			}
		}
	}
}

func TestParseBenchSingleInputVariants(t *testing.T) {
	src := `INPUT(a)
OUTPUT(p)
OUTPUT(q)
p = AND(a)
q = NAND(a)
`
	c, err := ParseBench(strings.NewReader(src), "deg")
	if err != nil {
		t.Fatal(err)
	}
	out := Evaluate(c, map[string]Value{"a": 1})
	if out["out_p"] != 1 || out["out_q"] != 0 {
		t.Fatalf("degenerate gates: p=%d q=%d", out["out_p"], out["out_q"])
	}
}
