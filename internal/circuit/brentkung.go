package circuit

import "fmt"

// BrentKung builds a width-bit Brent–Kung parallel-prefix adder: the
// sparse counterpart of the Kogge–Stone adder, with about half the
// prefix cells and roughly double the logic depth. It uses
// the same terminal names as KoggeStone (a0.., b0.., s0.., cout), so
// KoggeStoneAssign and KoggeStoneSum apply to both.
//
// The generator exists for parallelism studies: comparing its
// available-parallelism profile against Kogge–Stone's isolates how much
// of the simulator's exploitable parallelism comes from prefix-network
// fanout, the effect the paper's Figure 1 discussion attributes the
// limited speedups to.
func BrentKung(width int) *Circuit {
	if width < 1 {
		panic("circuit: BrentKung width must be >= 1")
	}
	b := NewBuilder(fmt.Sprintf("brentkung-%d", width))
	a := make([]NodeID, width)
	bb := make([]NodeID, width)
	for i := 0; i < width; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	p := make([]NodeID, width)
	g := make([]NodeID, width)
	for i := 0; i < width; i++ {
		p[i] = b.Xor(a[i], bb[i])
		g[i] = b.And(a[i], bb[i])
	}

	G := make([]NodeID, width)
	P := make([]NodeID, width)
	copy(G, g)
	copy(P, p)
	combine := func(i, j int) {
		// (G,P)[i] := (G,P)[i] ∘ (G,P)[j], the prefix operator.
		t := b.And(P[i], G[j])
		G[i] = b.Or(G[i], t)
		P[i] = b.And(P[i], P[j])
	}

	// Up-sweep: build power-of-two-aligned group prefixes.
	for d := 1; d < width; d <<= 1 {
		for i := 2*d - 1; i < width; i += 2 * d {
			combine(i, i-d)
		}
	}
	// Down-sweep: fill in the remaining positions.
	top := 1
	for top < width {
		top <<= 1
	}
	for d := top; d >= 2; d >>= 1 {
		for i := d + d/2 - 1; i < width; i += d {
			combine(i, i-d/2)
		}
	}

	b.Output("s0", p[0])
	for i := 1; i < width; i++ {
		b.Output(fmt.Sprintf("s%d", i), b.Xor(p[i], G[i-1]))
	}
	b.Output("cout", G[width-1])
	return b.MustBuild()
}

// PrefixAdderAssign maps operands onto any of the prefix adders
// (Kogge–Stone, Brent–Kung), which share terminal names.
func PrefixAdderAssign(width int, a, b uint64) map[string]Value {
	return KoggeStoneAssign(width, a, b)
}

// PrefixAdderSum decodes any prefix adder's settled outputs.
func PrefixAdderSum(width int, outs map[string]Value) uint64 {
	return KoggeStoneSum(width, outs)
}
