package circuit

import (
	"reflect"
	"testing"
)

func TestVectorWavesShape(t *testing.T) {
	c := FullAdder()
	s := VectorWaves(c, []map[string]Value{
		{"a": 1, "b": 0, "cin": 1},
		{"a": 1, "b": 1}, // cin omitted -> Low
	}, 100)
	if err := s.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every input gets one event per wave.
	if s.NumEvents() != 3*2 {
		t.Fatalf("NumEvents = %d, want 6", s.NumEvents())
	}
	// Input order in the circuit is a, b, cin.
	want := [][]Transition{
		{{0, 1}, {100, 1}},
		{{0, 0}, {100, 1}},
		{{0, 1}, {100, 0}},
	}
	if !reflect.DeepEqual(s.ByInput, want) {
		t.Fatalf("ByInput = %v, want %v", s.ByInput, want)
	}
}

func TestStimulusSet(t *testing.T) {
	c := FullAdder()
	s := NewStimulus(c)
	if err := s.Set(c, "a", 5, High); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := s.Set(c, "nope", 5, High); err == nil {
		t.Fatal("Set accepted unknown input")
	}
	if err := s.Set(c, "sum", 5, High); err == nil {
		t.Fatal("Set accepted an output terminal")
	}
	if s.NumEvents() != 1 {
		t.Fatalf("NumEvents = %d", s.NumEvents())
	}
}

func TestStimulusValidate(t *testing.T) {
	c := FullAdder()
	s := NewStimulus(c)
	s.ByInput[0] = []Transition{{10, 1}, {5, 0}} // out of order
	if err := s.Validate(c); err == nil {
		t.Fatal("Validate accepted out-of-order transitions")
	}
	bad := &Stimulus{ByInput: make([][]Transition, 1)}
	if err := bad.Validate(c); err == nil {
		t.Fatal("Validate accepted wrong wave count")
	}
}

func TestRandomStimulusDeterministic(t *testing.T) {
	c := KoggeStone(8)
	s1 := RandomStimulus(c, 10, 50, 7)
	s2 := RandomStimulus(c, 10, 50, 7)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different stimuli")
	}
	s3 := RandomStimulus(c, 10, 50, 8)
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical stimuli")
	}
	if s1.NumEvents() != 16*10 {
		t.Fatalf("NumEvents = %d, want 160", s1.NumEvents())
	}
	if err := s1.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSingleWave(t *testing.T) {
	c := Mux2()
	s := SingleWave(c, map[string]Value{"d0": 1, "sel": 0})
	if s.NumEvents() != 3 {
		t.Fatalf("NumEvents = %d, want 3", s.NumEvents())
	}
	for i, ts := range s.ByInput {
		if len(ts) != 1 || ts[0].Time != 0 {
			t.Fatalf("input %d transitions = %v", i, ts)
		}
	}
}
