package circuit

import "fmt"

// TreeMultiplier builds a bits×bits unsigned tree multiplier — the third
// evaluation circuit of the paper (12 bits in Table 1; Figure 1 profiles
// the 6-bit variant). Inputs are a0..a{n-1} and b0..b{n-1}; outputs are
// the 2n product bits p0..p{2n-1}.
//
// Structure: n² AND partial products feed a Wallace carry-save reduction
// tree (full/half adders) that compresses every column to at most two
// bits, followed by a final Kogge–Stone-style carry-propagate stage built
// from a ripple of full adders. The wide fanouts in the reduction tree
// are what produce the parallelism "bulge" the Galois project observed
// (Figure 1 of the paper).
func TreeMultiplier(bits int) *Circuit {
	if bits < 1 {
		panic("circuit: TreeMultiplier bits must be >= 1")
	}
	b := NewBuilder(fmt.Sprintf("treemult-%d", bits))
	a := make([]NodeID, bits)
	bb := make([]NodeID, bits)
	for i := 0; i < bits; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	// Partial products: column c collects a_i AND b_j for all i+j == c.
	cols := make([][]NodeID, 2*bits)
	for i := 0; i < bits; i++ {
		for j := 0; j < bits; j++ {
			cols[i+j] = append(cols[i+j], b.And(a[i], bb[j]))
		}
	}

	// fullAdder returns (sum, carry) of three bits: 2 XOR, 2 AND, 1 OR.
	fullAdder := func(x, y, z NodeID) (sum, carry NodeID) {
		xy := b.Xor(x, y)
		sum = b.Xor(xy, z)
		carry = b.Or(b.And(x, y), b.And(xy, z))
		return
	}
	// halfAdder returns (sum, carry) of two bits: 1 XOR, 1 AND.
	halfAdder := func(x, y NodeID) (sum, carry NodeID) {
		return b.Xor(x, y), b.And(x, y)
	}

	// Wallace reduction: repeatedly compress columns until every column
	// holds at most two bits.
	for {
		max := 0
		for _, col := range cols {
			if len(col) > max {
				max = len(col)
			}
		}
		if max <= 2 {
			break
		}
		next := make([][]NodeID, 2*bits)
		for c, col := range cols {
			i := 0
			for len(col)-i >= 3 {
				s, cy := fullAdder(col[i], col[i+1], col[i+2])
				next[c] = append(next[c], s)
				if c+1 < len(next) {
					next[c+1] = append(next[c+1], cy)
				}
				i += 3
			}
			if len(col)-i == 2 && len(col) > 2 {
				s, cy := halfAdder(col[i], col[i+1])
				next[c] = append(next[c], s)
				if c+1 < len(next) {
					next[c+1] = append(next[c+1], cy)
				}
				i += 2
			}
			next[c] = append(next[c], col[i:]...)
		}
		cols = next
	}

	// Final carry-propagate ripple over the (at most) two bits per column.
	var carry NodeID = NoNode
	for c := 0; c < 2*bits; c++ {
		var bit NodeID
		switch {
		case len(cols[c]) == 0:
			if carry == NoNode {
				// Column is constant zero: emit a0 AND NOT a0? Avoid
				// constants by outputting an always-zero XOR of a wire
				// with itself — not expressible; instead buffer the AND
				// of a0 with its inverse.
				bit = b.And(a[0], b.Not(a[0]))
			} else {
				bit = carry
				carry = NoNode
			}
		case len(cols[c]) == 1 && carry == NoNode:
			bit = cols[c][0]
		case len(cols[c]) == 1:
			bit, carry = halfAdder(cols[c][0], carry)
		case carry == NoNode:
			bit, carry = halfAdder(cols[c][0], cols[c][1])
		default:
			bit, carry = fullAdder(cols[c][0], cols[c][1], carry)
		}
		b.Output(fmt.Sprintf("p%d", c), bit)
	}
	return b.MustBuild()
}

// TreeMultiplierAssign maps operand values onto the multiplier's inputs.
func TreeMultiplierAssign(bits int, a, b uint64) map[string]Value {
	m := make(map[string]Value, 2*bits)
	for i := 0; i < bits; i++ {
		m[fmt.Sprintf("a%d", i)] = Value((a >> uint(i)) & 1)
		m[fmt.Sprintf("b%d", i)] = Value((b >> uint(i)) & 1)
	}
	return m
}

// TreeMultiplierProduct decodes the settled output values into the 2n-bit
// product.
func TreeMultiplierProduct(bits int, outs map[string]Value) uint64 {
	var p uint64
	for i := 0; i < 2*bits; i++ {
		p |= uint64(outs[fmt.Sprintf("p%d", i)]) << uint(i)
	}
	return p
}
