package circuit

import "fmt"

// KoggeStone builds a width-bit Kogge–Stone parallel-prefix tree adder
// [Kogge & Stone 1973], one of the three evaluation circuits of the paper
// (used at widths 64 and 128). Inputs are named a0..a{w-1} and
// b0..b{w-1}; outputs are the sum bits s0..s{w-1} and the carry-out
// "cout".
//
// Structure: bitwise propagate (XOR) and generate (AND) signals feed a
// log2(width)-level prefix network computing group generate/propagate
// with the standard combine G' = G_hi OR (P_hi AND G_lo),
// P' = P_hi AND P_lo; sum_i = p_i XOR carry_{i-1}.
func KoggeStone(width int) *Circuit {
	if width < 1 {
		panic("circuit: KoggeStone width must be >= 1")
	}
	b := NewBuilder(fmt.Sprintf("koggestone-%d", width))
	a := make([]NodeID, width)
	bb := make([]NodeID, width)
	for i := 0; i < width; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	p := make([]NodeID, width) // bit propagate
	g := make([]NodeID, width) // bit generate
	for i := 0; i < width; i++ {
		p[i] = b.Xor(a[i], bb[i])
		g[i] = b.And(a[i], bb[i])
	}

	// Prefix network. G[i], P[i] cover bits [i-span+1 .. i].
	G := make([]NodeID, width)
	P := make([]NodeID, width)
	copy(G, g)
	copy(P, p)
	for d := 1; d < width; d <<= 1 {
		nextG := make([]NodeID, width)
		nextP := make([]NodeID, width)
		copy(nextG, G)
		copy(nextP, P)
		for i := d; i < width; i++ {
			t := b.And(P[i], G[i-d])
			nextG[i] = b.Or(G[i], t)
			nextP[i] = b.And(P[i], P[i-d])
		}
		G, P = nextG, nextP
	}

	// Sum bits: s0 = p0; si = pi XOR c_{i-1} where c_i = G[i].
	b.Output("s0", p[0])
	for i := 1; i < width; i++ {
		b.Output(fmt.Sprintf("s%d", i), b.Xor(p[i], G[i-1]))
	}
	b.Output("cout", G[width-1])
	return b.MustBuild()
}

// KoggeStoneAssign maps operand values onto the adder's input names.
func KoggeStoneAssign(width int, a, b uint64) map[string]Value {
	m := make(map[string]Value, 2*width)
	for i := 0; i < width; i++ {
		m[fmt.Sprintf("a%d", i)] = Value((a >> uint(i)) & 1)
		m[fmt.Sprintf("b%d", i)] = Value((b >> uint(i)) & 1)
	}
	return m
}

// KoggeStoneSum decodes the adder's settled output values into the
// (width+1)-bit sum.
func KoggeStoneSum(width int, outs map[string]Value) uint64 {
	var sum uint64
	for i := 0; i < width; i++ {
		sum |= uint64(outs[fmt.Sprintf("s%d", i)]) << uint(i)
	}
	sum |= uint64(outs["cout"]) << uint(width)
	return sum
}
