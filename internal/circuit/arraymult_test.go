package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrayMultiplierExhaustiveSmall(t *testing.T) {
	for bits := 1; bits <= 4; bits++ {
		c := ArrayMultiplier(bits)
		limit := uint64(1) << uint(bits)
		for a := uint64(0); a < limit; a++ {
			for b := uint64(0); b < limit; b++ {
				out := Evaluate(c, TreeMultiplierAssign(bits, a, b))
				if got := TreeMultiplierProduct(bits, out); got != a*b {
					t.Fatalf("bits %d: %d*%d = %d, want %d", bits, a, b, got, a*b)
				}
			}
		}
	}
}

func TestArrayMultiplierRandom12(t *testing.T) {
	c := ArrayMultiplier(12)
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		a := rng.Uint64() & 0xFFF
		b := rng.Uint64() & 0xFFF
		out := Evaluate(c, TreeMultiplierAssign(12, a, b))
		if got := TreeMultiplierProduct(12, out); got != a*b {
			t.Fatalf("%d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestArrayMultiplierProperty8(t *testing.T) {
	c := ArrayMultiplier(8)
	f := func(a, b uint8) bool {
		out := Evaluate(c, TreeMultiplierAssign(8, uint64(a), uint64(b)))
		return TreeMultiplierProduct(8, out) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestArrayVsTreeStructure(t *testing.T) {
	arr := ArrayMultiplier(12)
	tree := TreeMultiplier(12)
	// The array has a much longer critical path (ripple through every
	// row) than the Wallace tree.
	if arr.Depth() <= tree.Depth() {
		t.Errorf("array depth %d <= tree depth %d", arr.Depth(), tree.Depth())
	}
	// Same function: cross-check a few operands.
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 50; i++ {
		a := rng.Uint64() & 0xFFF
		b := rng.Uint64() & 0xFFF
		assign := TreeMultiplierAssign(12, a, b)
		if TreeMultiplierProduct(12, Evaluate(arr, assign)) != TreeMultiplierProduct(12, Evaluate(tree, assign)) {
			t.Fatalf("array and tree disagree on %d*%d", a, b)
		}
	}
}
