package circuit

import (
	"fmt"
	"math/rand"
)

// RandomConfig parameterizes RandomDAG.
type RandomConfig struct {
	Inputs  int   // number of input terminals (>= 1)
	Gates   int   // number of logic gates
	Outputs int   // number of output terminals (>= 1)
	Seed    int64 // RNG seed; same seed, same circuit
}

// RandomDAG generates a random layered combinational circuit: useful for
// fuzzing the engines against the sequential reference on topologies the
// hand-built generators do not cover. Every gate draws its fanins
// uniformly from earlier nodes, so the graph is acyclic by construction;
// outputs sample the last gates so deep logic is observable.
func RandomDAG(cfg RandomConfig) *Circuit {
	if cfg.Inputs < 1 {
		cfg.Inputs = 1
	}
	if cfg.Outputs < 1 {
		cfg.Outputs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(fmt.Sprintf("random-%d-%d-%d", cfg.Inputs, cfg.Gates, cfg.Seed))

	pool := make([]NodeID, 0, cfg.Inputs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in%d", i)))
	}
	gateKinds := []Kind{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < cfg.Gates; i++ {
		kind := gateKinds[rng.Intn(len(gateKinds))]
		src := func() NodeID { return pool[rng.Intn(len(pool))] }
		var id NodeID
		if kind.Arity() == 1 {
			id = b.Gate1(kind, src())
		} else {
			id = b.Gate2(kind, src(), src())
		}
		pool = append(pool, id)
	}
	// Outputs tap the most recently created nodes (deepest logic), one
	// output per distinct tap.
	for i := 0; i < cfg.Outputs; i++ {
		tap := pool[len(pool)-1-rng.Intn(min(len(pool), cfg.Outputs*2))]
		b.Output(fmt.Sprintf("out%d", i), tap)
	}
	return b.MustBuild()
}
