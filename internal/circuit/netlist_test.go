package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c *Circuit) *Circuit {
	t.Helper()
	var buf bytes.Buffer
	if err := Serialize(&buf, c); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	parsed, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatalf("ParseNetlist: %v", err)
	}
	return parsed
}

func TestNetlistRoundTrip(t *testing.T) {
	for _, c := range []*Circuit{
		FullAdder(),
		Mux2(),
		ParityChain(9),
		KoggeStone(8),
		TreeMultiplier(4),
		RandomDAG(RandomConfig{Inputs: 5, Gates: 50, Outputs: 3, Seed: 7}),
	} {
		p := roundTrip(t, c)
		if p.Name != c.Name || p.NumNodes() != c.NumNodes() || p.NumEdges() != c.NumEdges() ||
			p.Depth() != c.Depth() || len(p.Inputs) != len(c.Inputs) || len(p.Outputs) != len(c.Outputs) {
			t.Fatalf("%s: round trip changed shape: %v vs %v", c.Name, p, c)
		}
		// Serialization of the parse must be byte-identical (canonical form).
		var b1, b2 bytes.Buffer
		if err := Serialize(&b1, c); err != nil {
			t.Fatal(err)
		}
		if err := Serialize(&b2, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%s: serialization not canonical", c.Name)
		}
	}
}

func TestNetlistRoundTripPreservesFunction(t *testing.T) {
	c := KoggeStone(6)
	p := roundTrip(t, c)
	for a := uint64(0); a < 64; a += 7 {
		for b := uint64(0); b < 64; b += 5 {
			want := Evaluate(c, KoggeStoneAssign(6, a, b))
			got := Evaluate(p, KoggeStoneAssign(6, a, b))
			if KoggeStoneSum(6, got) != KoggeStoneSum(6, want) {
				t.Fatalf("function changed for %d+%d", a, b)
			}
		}
	}
}

func TestParseNetlistComments(t *testing.T) {
	src := `# a comment
circuit tiny

input 0 x
# another comment
gate 1 NOT 0
output 2 y 1
`
	c, err := ParseNetlist(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseNetlist: %v", err)
	}
	if c.NumNodes() != 3 || c.Name != "tiny" {
		t.Fatalf("parsed %v", c)
	}
	out := Evaluate(c, map[string]Value{"x": 0})
	if out["y"] != 1 {
		t.Fatalf("y = %d, want 1", out["y"])
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "empty netlist"},
		{"no header", "input 0 x\n", "missing circuit header"},
		{"dup header", "circuit a\ncircuit b\n", "duplicate circuit header"},
		{"bad directive", "circuit a\nfrob 0\n", "unknown directive"},
		{"bad kind", "circuit a\ninput 0 x\ngate 1 FROB 0\n", "unknown gate kind"},
		{"id out of order", "circuit a\ninput 5 x\n", "out of order"},
		{"forward ref", "circuit a\ninput 0 x\ngate 1 NOT 9\n", "bad node reference"},
		{"arity mismatch", "circuit a\ninput 0 x\ngate 1 AND 0\n", "needs 2 sources"},
		{"input fields", "circuit a\ninput 0\n", "input needs"},
		{"output fields", "circuit a\ninput 0 x\noutput 1 y\n", "output needs"},
		{"header fields", "circuit\n", "needs a name"},
	}
	for _, tc := range cases {
		_, err := ParseNetlist(strings.NewReader(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestInputOutputNames(t *testing.T) {
	c := FullAdder()
	in := c.InputNames()
	if len(in) != 3 || in[0] != "a" || in[1] != "b" || in[2] != "cin" {
		t.Fatalf("InputNames = %v", in)
	}
	out := c.OutputNames()
	if len(out) != 2 || out[0] != "sum" || out[1] != "cout" {
		t.Fatalf("OutputNames = %v", out)
	}
	sorted := c.SortedOutputNames()
	if sorted[0] != "cout" || sorted[1] != "sum" {
		t.Fatalf("SortedOutputNames = %v", sorted)
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	cfg := RandomConfig{Inputs: 6, Gates: 100, Outputs: 4, Seed: 123}
	var b1, b2 bytes.Buffer
	if err := Serialize(&b1, RandomDAG(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := Serialize(&b2, RandomDAG(cfg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed produced different circuits")
	}
	cfg.Seed = 124
	var b3 bytes.Buffer
	if err := Serialize(&b3, RandomDAG(cfg)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestRandomDAGDefaults(t *testing.T) {
	c := RandomDAG(RandomConfig{Gates: 10, Seed: 1})
	if len(c.Inputs) < 1 || len(c.Outputs) < 1 {
		t.Fatalf("defaults not applied: %v", c)
	}
}
