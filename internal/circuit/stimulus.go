package circuit

import (
	"fmt"
	"math/rand"
)

// Transition is one scheduled level change on a circuit input: the input
// drives Value starting at Time. Transitions become the simulation's
// initial events (Section 4.1: "signals generated at circuit inputs are
// called initial events").
type Transition struct {
	Time  int64
	Value Value
}

// Stimulus assigns each input terminal (in Circuit.Inputs order) its list
// of transitions, sorted by time. It is the second half of a simulation's
// input: circuit + stimulus -> run.
type Stimulus struct {
	ByInput [][]Transition
}

// NumEvents reports the total number of initial events, the paper's
// Table 1 "# initial events" column.
func (s *Stimulus) NumEvents() int {
	n := 0
	for _, ts := range s.ByInput {
		n += len(ts)
	}
	return n
}

// Validate checks that s matches circuit c: one transition list per
// input, each sorted by nondecreasing time.
func (s *Stimulus) Validate(c *Circuit) error {
	if len(s.ByInput) != len(c.Inputs) {
		return fmt.Errorf("stimulus has %d input waves, circuit has %d inputs", len(s.ByInput), len(c.Inputs))
	}
	for i, ts := range s.ByInput {
		for j := 1; j < len(ts); j++ {
			if ts[j].Time < ts[j-1].Time {
				return fmt.Errorf("input %d: transitions out of order at index %d", i, j)
			}
		}
	}
	return nil
}

// NewStimulus returns an empty stimulus shaped for circuit c.
func NewStimulus(c *Circuit) *Stimulus {
	return &Stimulus{ByInput: make([][]Transition, len(c.Inputs))}
}

// Set appends a transition on the named input.
func (s *Stimulus) Set(c *Circuit, name string, t int64, v Value) error {
	id, ok := c.ByName(name)
	if !ok {
		return fmt.Errorf("no terminal named %q", name)
	}
	for i, in := range c.Inputs {
		if in == id {
			s.ByInput[i] = append(s.ByInput[i], Transition{Time: t, Value: v})
			return nil
		}
	}
	return fmt.Errorf("terminal %q is not an input", name)
}

// VectorWaves builds a stimulus that applies each assignment map (input
// name -> value) as one wave, spaced period time units apart, starting at
// time 0. Every input receives an event every wave (matching the paper's
// initial-event accounting: #initial events = #inputs × #waves); inputs
// missing from an assignment drive Low.
func VectorWaves(c *Circuit, waves []map[string]Value, period int64) *Stimulus {
	s := NewStimulus(c)
	for w, assign := range waves {
		t := int64(w) * period
		for i, id := range c.Inputs {
			v := assign[c.Nodes[id].Name]
			s.ByInput[i] = append(s.ByInput[i], Transition{Time: t, Value: v})
		}
	}
	return s
}

// VectorWavesChanged is VectorWaves with change-only events: an input
// emits a transition only on the first wave and whenever its value
// differs from the previous wave — the event-minimal encoding of the
// same waveform. Settled outputs are identical to VectorWaves'; only
// the event counts differ.
func VectorWavesChanged(c *Circuit, waves []map[string]Value, period int64) *Stimulus {
	s := NewStimulus(c)
	prev := make([]Value, len(c.Inputs))
	for w, assign := range waves {
		t := int64(w) * period
		for i, id := range c.Inputs {
			v := assign[c.Nodes[id].Name]
			if w == 0 || v != prev[i] {
				s.ByInput[i] = append(s.ByInput[i], Transition{Time: t, Value: v})
			}
			prev[i] = v
		}
	}
	return s
}

// RandomStimulus builds a waves-wave stimulus with uniformly random input
// values, spaced period apart. It is the workload generator for the
// paper-scale runs: waves is chosen so that #initial events matches the
// paper's Table 1 (e.g. 128 inputs × 1002 waves ≈ 128,258 for KS-64).
func RandomStimulus(c *Circuit, waves int, period int64, seed int64) *Stimulus {
	rng := rand.New(rand.NewSource(seed))
	s := NewStimulus(c)
	for w := 0; w < waves; w++ {
		t := int64(w) * period
		for i := range c.Inputs {
			s.ByInput[i] = append(s.ByInput[i], Transition{Time: t, Value: Value(rng.Intn(2))})
		}
	}
	return s
}

// SingleWave applies one assignment at time 0 — the stimulus form used by
// the functional correctness tests.
func SingleWave(c *Circuit, assign map[string]Value) *Stimulus {
	return VectorWaves(c, []map[string]Value{assign}, 1)
}
