package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Netlist text format
//
// A circuit serializes to a line-oriented format that round-trips through
// ParseNetlist. Node references are dense integer IDs in file order.
//
//	circuit <name>
//	input <id> <name>
//	gate <id> <KIND> <src> [<src2>]
//	output <id> <name> <src>
//
// Comments start with '#'; blank lines are ignored. IDs must be declared
// before use and must be exactly 0,1,2,... in order (which Serialize
// guarantees).

// Serialize writes c in netlist format.
func Serialize(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Kind {
		case Input:
			fmt.Fprintf(bw, "input %d %s\n", n.ID, n.Name)
		case Output:
			fmt.Fprintf(bw, "output %d %s %d\n", n.ID, n.Name, n.Fanin[0])
		default:
			if n.NumIn() == 1 {
				fmt.Fprintf(bw, "gate %d %s %d\n", n.ID, n.Kind, n.Fanin[0])
			} else {
				fmt.Fprintf(bw, "gate %d %s %d %d\n", n.ID, n.Kind, n.Fanin[0], n.Fanin[1])
			}
		}
	}
	return bw.Flush()
}

// ParseNetlist reads a circuit in netlist format.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	parseID := func(tok string, want NodeID) (NodeID, error) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad node id %q", lineNo, tok)
		}
		if want >= 0 && NodeID(v) != want {
			return 0, fmt.Errorf("line %d: node id %d out of order (want %d)", lineNo, v, want)
		}
		return NodeID(v), nil
	}
	parseRef := func(tok string, limit int) (NodeID, error) {
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v >= limit {
			return 0, fmt.Errorf("line %d: bad node reference %q", lineNo, tok)
		}
		return NodeID(v), nil
	}
	next := NodeID(0)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "circuit":
			if b != nil {
				return nil, fmt.Errorf("line %d: duplicate circuit header", lineNo)
			}
			if len(f) != 2 {
				return nil, fmt.Errorf("line %d: circuit header needs a name", lineNo)
			}
			b = NewBuilder(f[1])
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("line %d: missing circuit header", lineNo)
		}
		switch f[0] {
		case "input":
			if len(f) != 3 {
				return nil, fmt.Errorf("line %d: input needs <id> <name>", lineNo)
			}
			if _, err := parseID(f[1], next); err != nil {
				return nil, err
			}
			b.Input(f[2])
			next++
		case "output":
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: output needs <id> <name> <src>", lineNo)
			}
			if _, err := parseID(f[1], next); err != nil {
				return nil, err
			}
			src, err := parseRef(f[3], int(next))
			if err != nil {
				return nil, err
			}
			b.Output(f[2], src)
			next++
		case "gate":
			if len(f) != 4 && len(f) != 5 {
				return nil, fmt.Errorf("line %d: gate needs <id> <KIND> <src> [<src2>]", lineNo)
			}
			if _, err := parseID(f[1], next); err != nil {
				return nil, err
			}
			kind, ok := KindFromName(f[2])
			if !ok || !kind.IsGate() {
				return nil, fmt.Errorf("line %d: unknown gate kind %q", lineNo, f[2])
			}
			if kind.Arity() != len(f)-3 {
				return nil, fmt.Errorf("line %d: %s needs %d sources, got %d", lineNo, kind, kind.Arity(), len(f)-3)
			}
			a, err := parseRef(f[3], int(next))
			if err != nil {
				return nil, err
			}
			if kind.Arity() == 1 {
				b.Gate1(kind, a)
			} else {
				c, err := parseRef(f[4], int(next))
				if err != nil {
					return nil, err
				}
				b.Gate2(kind, a, c)
			}
			next++
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("empty netlist")
	}
	return b.Build()
}

// InputNames returns the circuit's input terminal names in declaration
// order.
func (c *Circuit) InputNames() []string {
	names := make([]string, len(c.Inputs))
	for i, id := range c.Inputs {
		names[i] = c.Nodes[id].Name
	}
	return names
}

// OutputNames returns the circuit's output terminal names in declaration
// order.
func (c *Circuit) OutputNames() []string {
	names := make([]string, len(c.Outputs))
	for i, id := range c.Outputs {
		names[i] = c.Nodes[id].Name
	}
	return names
}

// SortedOutputNames returns output names sorted lexicographically, for
// stable test output.
func (c *Circuit) SortedOutputNames() []string {
	names := c.OutputNames()
	sort.Strings(names)
	return names
}
