package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ISCAS .bench format
//
// ParseBench reads the netlist format of the ISCAS-85/89 benchmark
// suites (the format the original c17..c7552 circuits are distributed
// in):
//
//	# comment
//	INPUT(n1)
//	OUTPUT(n22)
//	n10 = NAND(n1, n3)
//	n11 = NOT(n9)
//
// Supported functions: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF.
// Gates with more than two inputs are decomposed into chains of 2-input
// gates (inverting gates invert only the final stage, preserving the
// n-ary semantics). Sequential elements (DFF) are rejected: the
// simulator is combinational, per the paper's acyclic-circuit model.

// benchDef is one parsed signal definition.
type benchDef struct {
	fn   string
	args []string
	line int
}

// ParseBench parses an ISCAS .bench netlist.
func ParseBench(r io.Reader, name string) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	defs := map[string]benchDef{}
	var inputs, outputs []string
	seenIn := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "OUTPUT("):
			open := strings.Index(line, "(")
			close := strings.LastIndex(line, ")")
			if close < open {
				return nil, fmt.Errorf("bench line %d: malformed declaration %q", lineNo, line)
			}
			sig := strings.TrimSpace(line[open+1 : close])
			if sig == "" {
				return nil, fmt.Errorf("bench line %d: empty signal name", lineNo)
			}
			if strings.HasPrefix(upper, "INPUT(") {
				if seenIn[sig] {
					return nil, fmt.Errorf("bench line %d: duplicate INPUT(%s)", lineNo, sig)
				}
				seenIn[sig] = true
				inputs = append(inputs, sig)
			} else {
				outputs = append(outputs, sig)
			}
		case strings.Contains(line, "="):
			eq := strings.Index(line, "=")
			sig := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("bench line %d: malformed definition %q", lineNo, line)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("bench line %d: empty argument", lineNo)
				}
				args = append(args, a)
			}
			if _, dup := defs[sig]; dup {
				return nil, fmt.Errorf("bench line %d: signal %q defined twice", lineNo, sig)
			}
			if seenIn[sig] {
				return nil, fmt.Errorf("bench line %d: signal %q is an INPUT and also defined", lineNo, sig)
			}
			defs[sig] = benchDef{fn: fn, args: args, line: lineNo}
		default:
			return nil, fmt.Errorf("bench line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("bench: no INPUT declarations")
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("bench: no OUTPUT declarations")
	}

	// Topologically order the definitions (the format allows any order).
	order, err := benchToposort(defs, seenIn)
	if err != nil {
		return nil, err
	}

	b := NewBuilder(name)
	sigNode := map[string]NodeID{}
	for _, in := range inputs {
		sigNode[in] = b.Input(in)
	}
	for _, sig := range order {
		def := defs[sig]
		srcs := make([]NodeID, len(def.args))
		for i, a := range def.args {
			id, ok := sigNode[a]
			if !ok {
				return nil, fmt.Errorf("bench line %d: %q uses undefined signal %q", def.line, sig, a)
			}
			srcs[i] = id
		}
		id, err := buildBenchGate(b, def, srcs)
		if err != nil {
			return nil, err
		}
		sigNode[sig] = id
	}
	for _, out := range outputs {
		id, ok := sigNode[out]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) never defined", out)
		}
		b.Output("out_"+out, id)
	}
	return b.Build()
}

// buildBenchGate lowers one n-ary .bench function to 2-input gates.
func buildBenchGate(b *Builder, def benchDef, srcs []NodeID) (NodeID, error) {
	type lowering struct {
		chain Kind // associative reduction for the leading args
		last  Kind // applied at the final stage (captures inversion)
	}
	table := map[string]lowering{
		"AND": {And, And}, "NAND": {And, Nand},
		"OR": {Or, Or}, "NOR": {Or, Nor},
		"XOR": {Xor, Xor}, "XNOR": {Xor, Xnor},
	}
	switch def.fn {
	case "NOT":
		if len(srcs) != 1 {
			return 0, fmt.Errorf("bench line %d: NOT takes 1 argument, got %d", def.line, len(srcs))
		}
		return b.Not(srcs[0]), nil
	case "BUF", "BUFF":
		if len(srcs) != 1 {
			return 0, fmt.Errorf("bench line %d: %s takes 1 argument, got %d", def.line, def.fn, len(srcs))
		}
		return b.Buf(srcs[0]), nil
	case "DFF", "DFFSR", "LATCH":
		return 0, fmt.Errorf("bench line %d: sequential element %s not supported (combinational simulator)", def.line, def.fn)
	}
	lw, ok := table[def.fn]
	if !ok {
		return 0, fmt.Errorf("bench line %d: unknown function %q", def.line, def.fn)
	}
	switch len(srcs) {
	case 0:
		return 0, fmt.Errorf("bench line %d: %s needs arguments", def.line, def.fn)
	case 1:
		// Degenerate single-input gate: identity (or inversion for the
		// inverting forms).
		switch lw.last {
		case Nand, Nor, Xnor:
			return b.Not(srcs[0]), nil
		default:
			return b.Buf(srcs[0]), nil
		}
	case 2:
		return b.Gate2(lw.last, srcs[0], srcs[1]), nil
	default:
		acc := srcs[0]
		for i := 1; i < len(srcs)-1; i++ {
			acc = b.Gate2(lw.chain, acc, srcs[i])
		}
		return b.Gate2(lw.last, acc, srcs[len(srcs)-1]), nil
	}
}

// benchToposort orders signal definitions so every argument is defined
// first; it rejects cycles (sequential logic encoded combinationally).
func benchToposort(defs map[string]benchDef, inputs map[string]bool) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var order []string
	var visit func(sig string) error
	visit = func(sig string) error {
		switch color[sig] {
		case gray:
			return fmt.Errorf("bench: combinational cycle through signal %q", sig)
		case black:
			return nil
		}
		def, ok := defs[sig]
		if !ok {
			// Inputs and undefined signals are resolved later.
			return nil
		}
		color[sig] = gray
		for _, a := range def.args {
			if !inputs[a] {
				if err := visit(a); err != nil {
					return err
				}
			}
		}
		color[sig] = black
		order = append(order, sig)
		return nil
	}
	sigs := make([]string, 0, len(defs))
	for sig := range defs {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs) // deterministic construction order
	for _, sig := range sigs {
		if err := visit(sig); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// WriteBench serializes a circuit in .bench form. Terminal names are
// preserved; internal gates get generated gNNN names. Circuits written
// this way round-trip through ParseBench with identical logic function.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s (hjdes export)\n", c.Name)
	sig := make([]string, len(c.Nodes))
	for _, id := range c.Inputs {
		sig[id] = c.Nodes[id].Name
		fmt.Fprintf(bw, "INPUT(%s)\n", sig[id])
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[id].Name)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Kind {
		case Input:
			continue
		case Output:
			// An output terminal re-names its driver: emit a BUF.
			sig[n.ID] = n.Name
			fmt.Fprintf(bw, "%s = BUF(%s)\n", n.Name, sig[n.Fanin[0]])
		default:
			sig[n.ID] = fmt.Sprintf("g%d", n.ID)
			if n.NumIn() == 1 {
				fmt.Fprintf(bw, "%s = %s(%s)\n", sig[n.ID], n.Kind, sig[n.Fanin[0]])
			} else {
				fmt.Fprintf(bw, "%s = %s(%s, %s)\n", sig[n.ID], n.Kind, sig[n.Fanin[0]], sig[n.Fanin[1]])
			}
		}
	}
	return bw.Flush()
}
