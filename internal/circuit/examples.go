package circuit

import "fmt"

// FullAdder builds the classic 1-bit full adder: inputs "a", "b", "cin";
// outputs "sum", "cout". Used throughout the tests as the smallest
// interesting circuit.
func FullAdder() *Circuit {
	b := NewBuilder("fulladder")
	a := b.Input("a")
	bi := b.Input("b")
	cin := b.Input("cin")
	axb := b.Xor(a, bi)
	b.Output("sum", b.Xor(axb, cin))
	b.Output("cout", b.Or(b.And(a, bi), b.And(axb, cin)))
	return b.MustBuild()
}

// ParityChain builds a linear chain of XOR gates computing the parity of
// n inputs — a worst case for parallelism (depth n, no fanout), the
// opposite extreme from FanoutTree.
func ParityChain(n int) *Circuit {
	if n < 2 {
		panic("circuit: ParityChain needs >= 2 inputs")
	}
	b := NewBuilder(fmt.Sprintf("parity-%d", n))
	acc := b.Input("in0")
	for i := 1; i < n; i++ {
		acc = b.Xor(acc, b.Input(fmt.Sprintf("in%d", i)))
	}
	b.Output("parity", acc)
	return b.MustBuild()
}

// FanoutTree builds one input driving a complete binary tree of buffers
// of the given depth, with every leaf observed — a best case for
// parallelism (maximal fanout, no reconvergence).
func FanoutTree(depth int) *Circuit {
	if depth < 1 {
		panic("circuit: FanoutTree needs depth >= 1")
	}
	b := NewBuilder(fmt.Sprintf("fanout-%d", depth))
	frontier := []NodeID{b.Input("in")}
	for d := 0; d < depth; d++ {
		var next []NodeID
		for _, n := range frontier {
			next = append(next, b.Buf(n), b.Buf(n))
		}
		frontier = next
	}
	for i, n := range frontier {
		b.Output(fmt.Sprintf("leaf%d", i), n)
	}
	return b.MustBuild()
}

// C17 builds the classic ISCAS-85 c17 benchmark circuit: five inputs
// (n1, n2, n3, n6, n7), two outputs (n22, n23), six NAND gates. It is
// the smallest standard netlist in the circuit-testing literature and a
// convenient fixed regression target.
func C17() *Circuit {
	b := NewBuilder("c17")
	n1 := b.Input("n1")
	n2 := b.Input("n2")
	n3 := b.Input("n3")
	n6 := b.Input("n6")
	n7 := b.Input("n7")
	g10 := b.Nand(n1, n3)
	g11 := b.Nand(n3, n6)
	g16 := b.Nand(n2, g11)
	g19 := b.Nand(g11, n7)
	b.Output("n22", b.Nand(g10, g16))
	b.Output("n23", b.Nand(g16, g19))
	return b.MustBuild()
}

// Mux2 builds a 2:1 multiplexer: inputs "d0", "d1", "sel"; output "y" =
// sel ? d1 : d0.
func Mux2() *Circuit {
	b := NewBuilder("mux2")
	d0 := b.Input("d0")
	d1 := b.Input("d1")
	sel := b.Input("sel")
	b.Output("y", b.Or(b.And(d0, b.Not(sel)), b.And(d1, sel)))
	return b.MustBuild()
}
