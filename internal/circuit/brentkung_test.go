package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBrentKungExhaustiveSmall(t *testing.T) {
	for width := 1; width <= 4; width++ {
		c := BrentKung(width)
		limit := uint64(1) << uint(width)
		for a := uint64(0); a < limit; a++ {
			for b := uint64(0); b < limit; b++ {
				out := Evaluate(c, PrefixAdderAssign(width, a, b))
				if got := PrefixAdderSum(width, out); got != a+b {
					t.Fatalf("width %d: %d+%d = %d, want %d", width, a, b, got, a+b)
				}
			}
		}
	}
}

func TestBrentKungNonPowerOfTwoWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{3, 5, 6, 7, 11, 13, 24} {
		c := BrentKung(width)
		mask := uint64(1)<<uint(width) - 1
		for i := 0; i < 50; i++ {
			a, b := rng.Uint64()&mask, rng.Uint64()&mask
			out := Evaluate(c, PrefixAdderAssign(width, a, b))
			if got := PrefixAdderSum(width, out); got != a+b {
				t.Fatalf("width %d: %d+%d = %d, want %d", width, a, b, got, a+b)
			}
		}
	}
}

func TestBrentKungProperty32(t *testing.T) {
	c := BrentKung(32)
	f := func(a, b uint32) bool {
		out := Evaluate(c, PrefixAdderAssign(32, uint64(a), uint64(b)))
		return PrefixAdderSum(32, out) == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBrentKungVsKoggeStoneStructure(t *testing.T) {
	bk := BrentKung(64)
	ks := KoggeStone(64)
	// Brent-Kung trades cells for depth: fewer nodes, more levels.
	if bk.NumNodes() >= ks.NumNodes() {
		t.Errorf("BK nodes %d >= KS nodes %d", bk.NumNodes(), ks.NumNodes())
	}
	if bk.Depth() <= ks.Depth() {
		t.Errorf("BK depth %d <= KS depth %d", bk.Depth(), ks.Depth())
	}
	// Brent-Kung uses roughly half the prefix cells of Kogge-Stone; at
	// width 64 that is hundreds of gates.
	if ks.NumNodes()-bk.NumNodes() < 200 {
		t.Errorf("BK %d vs KS %d nodes: expected a much sparser network", bk.NumNodes(), ks.NumNodes())
	}
}

func TestButterflyStructure(t *testing.T) {
	for _, stages := range []int{1, 2, 3, 5} {
		c := Butterfly(stages)
		lanes := 1 << uint(stages)
		if len(c.Inputs) != lanes || len(c.Outputs) != lanes {
			t.Fatalf("stages %d: terminals %d/%d, want %d", stages, len(c.Inputs), len(c.Outputs), lanes)
		}
		wantGates := stages * lanes
		if got := c.NumNodes() - 2*lanes; got != wantGates {
			t.Fatalf("stages %d: %d gates, want %d", stages, got, wantGates)
		}
		if c.Depth() < stages {
			t.Fatalf("stages %d: depth %d too small", stages, c.Depth())
		}
	}
}

// TestButterflyCompressorInvariant: each cell maps (x, y) to
// (x XOR y, x AND y), so x + y = xor + 2*and. Population weight is
// preserved per cell but redistributed; at the circuit level the total
// integer weight with stage-appropriate coefficients is invariant. Here
// we check the first stage directly: weight (count of ones, with AND
// outputs counted twice) equals the input population count.
func TestButterflyWeightInvariantOneStage(t *testing.T) {
	c := Butterfly(1)
	for pattern := 0; pattern < 4; pattern++ {
		assign := map[string]Value{
			"in0": Value(pattern & 1),
			"in1": Value((pattern >> 1) & 1),
		}
		out := Evaluate(c, assign)
		got := int(out["out0"]) + 2*int(out["out1"])
		want := pattern&1 + (pattern>>1)&1
		if got != want {
			t.Fatalf("pattern %02b: xor+2*and = %d, want %d", pattern, got, want)
		}
	}
}

func TestButterflyAllEnginesAgree(t *testing.T) {
	// Structural circuits must simulate identically everywhere; checked
	// via the oracle in the core tests, here just by evaluation symmetry.
	c := Butterfly(3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		assign := map[string]Value{}
		for _, name := range c.InputNames() {
			assign[name] = Value(rng.Intn(2))
		}
		out1 := Evaluate(c, assign)
		out2 := Evaluate(c, assign)
		for k, v := range out1 {
			if out2[k] != v {
				t.Fatalf("Evaluate not deterministic at %s", k)
			}
		}
	}
}
