package circuit

// Evaluate computes the circuit's settled output values for one input
// assignment by direct levelized evaluation in topological order. It is
// independent of the event-driven simulator and serves as the functional
// oracle for it: after a DES run settles, the last value observed at each
// output node must equal Evaluate's result.
//
// Inputs missing from assign drive Low.
func Evaluate(c *Circuit, assign map[string]Value) map[string]Value {
	vals := make([]Value, len(c.Nodes))
	indeg := make([]int, len(c.Nodes))
	var frontier []NodeID
	for i := range c.Nodes {
		indeg[i] = c.Nodes[i].NumIn()
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
		}
	}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		n := &c.Nodes[id]
		switch n.Kind {
		case Input:
			vals[id] = assign[n.Name]
		case Output, Buf, Not:
			vals[id] = n.Kind.Eval(vals[n.Fanin[0]], 0)
		default:
			vals[id] = n.Kind.Eval(vals[n.Fanin[0]], vals[n.Fanin[1]])
		}
		for _, port := range n.Fanout {
			indeg[port.Node]--
			if indeg[port.Node] == 0 {
				frontier = append(frontier, port.Node)
			}
		}
	}
	out := make(map[string]Value, len(c.Outputs))
	for _, id := range c.Outputs {
		out[c.Nodes[id].Name] = vals[id]
	}
	return out
}
