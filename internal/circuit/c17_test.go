package circuit

import "testing"

// c17Reference computes the ISCAS-85 c17 outputs directly.
func c17Reference(n1, n2, n3, n6, n7 Value) (n22, n23 Value) {
	nand := func(a, b Value) Value { return (a & b) ^ 1 }
	g10 := nand(n1, n3)
	g11 := nand(n3, n6)
	g16 := nand(n2, g11)
	g19 := nand(g11, n7)
	return nand(g10, g16), nand(g16, g19)
}

func TestC17ExhaustiveTruthTable(t *testing.T) {
	c := C17()
	if c.NumNodes() != 5+6+2 {
		t.Fatalf("c17 nodes = %d, want 13", c.NumNodes())
	}
	for bits := 0; bits < 32; bits++ {
		in := [5]Value{}
		for i := range in {
			in[i] = Value((bits >> i) & 1)
		}
		out := Evaluate(c, map[string]Value{
			"n1": in[0], "n2": in[1], "n3": in[2], "n6": in[3], "n7": in[4],
		})
		w22, w23 := c17Reference(in[0], in[1], in[2], in[3], in[4])
		if out["n22"] != w22 || out["n23"] != w23 {
			t.Fatalf("inputs %05b: got (%d,%d), want (%d,%d)",
				bits, out["n22"], out["n23"], w22, w23)
		}
	}
}

func TestVectorWavesChangedReducesEvents(t *testing.T) {
	c := C17()
	waves := []map[string]Value{
		{"n1": 1, "n2": 0, "n3": 1, "n6": 0, "n7": 1},
		{"n1": 1, "n2": 0, "n3": 1, "n6": 0, "n7": 1}, // identical: no events
		{"n1": 0, "n2": 0, "n3": 1, "n6": 0, "n7": 1}, // one change
	}
	full := VectorWaves(c, waves, 100)
	changed := VectorWavesChanged(c, waves, 100)
	if full.NumEvents() != 15 {
		t.Fatalf("full events = %d, want 15", full.NumEvents())
	}
	if changed.NumEvents() != 5+0+1 {
		t.Fatalf("changed events = %d, want 6", changed.NumEvents())
	}
	if err := changed.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestVectorWavesChangedFirstWaveComplete(t *testing.T) {
	c := FullAdder()
	s := VectorWavesChanged(c, []map[string]Value{{"a": 0, "b": 0, "cin": 0}}, 10)
	// Even an all-Low first wave emits one event per input (the initial
	// value announcement).
	if s.NumEvents() != 3 {
		t.Fatalf("first-wave events = %d, want 3", s.NumEvents())
	}
}
