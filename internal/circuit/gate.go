// Package circuit models combinational logic circuits as directed acyclic
// graphs, following Section 4.1 of the paper: every logic gate is a node,
// every connection from an output port to an input port is a directed
// edge, circuit inputs and outputs are dedicated input/output nodes, each
// gate has one output port and one or two input ports, each input port is
// driven by exactly one source, and the output port may fan out to many
// destinations. The package also provides the circuit generators used by
// the paper's evaluation (Kogge–Stone adders and a tree multiplier), a
// text netlist format, and stimulus (initial event) generators.
package circuit

import "fmt"

// Value is a logic level on a wire: 0 or 1.
type Value uint8

// Logic levels.
const (
	Low  Value = 0
	High Value = 1
)

func (v Value) String() string {
	if v == 0 {
		return "0"
	}
	return "1"
}

// Kind identifies the function of a node.
type Kind uint8

// Node kinds. Input and Output are the paper's input/output nodes; the
// rest are logic gates.
const (
	Input  Kind = iota // circuit input terminal: no fanin, injects initial events
	Output             // circuit output terminal: one fanin, absorbs events
	Buf                // 1-input buffer
	Not                // 1-input inverter
	And                // 2-input AND
	Or                 // 2-input OR
	Nand               // 2-input NAND
	Nor                // 2-input NOR
	Xor                // 2-input XOR
	Xnor               // 2-input XNOR
	Poison             // 1-input fault gate: Eval always panics (chaos/supervision testing)
	numKinds
)

var kindNames = [numKinds]string{
	Input: "INPUT", Output: "OUTPUT", Buf: "BUF", Not: "NOT",
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
	Poison: "POISON",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromName parses a kind name as written in netlist files.
func KindFromName(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// arity of each kind (number of input ports).
var kindArity = [numKinds]int{
	Input: 0, Output: 1, Buf: 1, Not: 1,
	And: 2, Or: 2, Nand: 2, Nor: 2, Xor: 2, Xnor: 2,
	Poison: 1,
}

// Arity reports the number of input ports of the kind.
func (k Kind) Arity() int { return kindArity[k] }

// IsGate reports whether the kind is a logic gate (not a terminal).
func (k Kind) IsGate() bool { return k != Input && k != Output }

// Per-kind processing delays, in simulated time units. The paper assigns
// a constant processing delay per gate type and a constant signal
// propagation time between gates (WireDelay). The exact values are not
// given in the paper; these follow typical gate-complexity ordering
// (XOR-family slowest, inverters fastest).
var kindDelay = [numKinds]int64{
	Input: 0, Output: 0, Buf: 1, Not: 1,
	And: 2, Or: 2, Nand: 2, Nor: 2, Xor: 3, Xnor: 3,
	Poison: 1,
}

// Delay reports the processing delay of the kind.
func (k Kind) Delay() int64 { return kindDelay[k] }

// WireDelay is the constant signal propagation time between neighboring
// nodes, applied on every edge.
const WireDelay int64 = 1

// Eval computes the gate function for input values a and b. For 1-input
// kinds, b is ignored; for terminals, the value passes through.
func (k Kind) Eval(a, b Value) Value {
	switch k {
	case Input, Output, Buf:
		return a
	case Not:
		return a ^ 1
	case And:
		return a & b
	case Or:
		return a | b
	case Nand:
		return (a & b) ^ 1
	case Nor:
		return (a | b) ^ 1
	case Xor:
		return a ^ b
	case Xnor:
		return (a ^ b) ^ 1
	case Poison:
		panic("circuit: poison gate evaluated")
	default:
		panic(fmt.Sprintf("circuit: Eval on invalid kind %d", k))
	}
}
