package circuit

import "testing"

func TestKindEvalTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		want [4]Value // results for (a,b) = 00, 01, 10, 11
	}{
		{And, [4]Value{0, 0, 0, 1}},
		{Or, [4]Value{0, 1, 1, 1}},
		{Nand, [4]Value{1, 1, 1, 0}},
		{Nor, [4]Value{1, 0, 0, 0}},
		{Xor, [4]Value{0, 1, 1, 0}},
		{Xnor, [4]Value{1, 0, 0, 1}},
	}
	for _, tc := range cases {
		for i := 0; i < 4; i++ {
			a, b := Value(i>>1), Value(i&1)
			if got := tc.kind.Eval(a, b); got != tc.want[i] {
				t.Errorf("%s.Eval(%d,%d) = %d, want %d", tc.kind, a, b, got, tc.want[i])
			}
		}
	}
}

func TestKindEvalUnary(t *testing.T) {
	for _, a := range []Value{0, 1} {
		if got := Not.Eval(a, 0); got != a^1 {
			t.Errorf("Not.Eval(%d) = %d", a, got)
		}
		if got := Buf.Eval(a, 1); got != a {
			t.Errorf("Buf.Eval(%d) = %d", a, got)
		}
		if got := Output.Eval(a, 1); got != a {
			t.Errorf("Output.Eval(%d) = %d", a, got)
		}
	}
}

func TestKindArity(t *testing.T) {
	for _, tc := range []struct {
		k    Kind
		want int
	}{
		{Input, 0}, {Output, 1}, {Buf, 1}, {Not, 1},
		{And, 2}, {Or, 2}, {Nand, 2}, {Nor, 2}, {Xor, 2}, {Xnor, 2},
	} {
		if tc.k.Arity() != tc.want {
			t.Errorf("%s.Arity() = %d, want %d", tc.k, tc.k.Arity(), tc.want)
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromName(k.String())
		if !ok || got != k {
			t.Errorf("KindFromName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromName("FROB"); ok {
		t.Error("KindFromName accepted an unknown name")
	}
}

func TestKindDelaysPositiveForGates(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.IsGate() && k.Delay() <= 0 {
			t.Errorf("%s.Delay() = %d, want > 0", k, k.Delay())
		}
	}
	if WireDelay <= 0 {
		t.Error("WireDelay must be positive")
	}
}

func TestValueString(t *testing.T) {
	if Low.String() != "0" || High.String() != "1" {
		t.Error("Value.String wrong")
	}
}
