package circuit

import "fmt"

// Butterfly builds a stages-stage butterfly network over 2^stages lanes
// — the multistage-interconnection topology of the communication systems
// the paper's introduction motivates (and of FFT dataflow). Each stage s
// pairs lane i with lane i XOR 2^s and replaces the pair with a
// compressor cell: the low lane becomes XOR(x, y) and the high lane
// AND(x, y) (a half adder, so the network is a population compressor).
// Inputs are in0..in{2^s-1}; outputs out0..out{2^s-1}.
//
// The butterfly's all-to-all connectivity gives it a broad, flat
// available-parallelism profile, the opposite of ParityChain — useful
// for studying how topology shapes the simulator's exploitable
// parallelism.
func Butterfly(stages int) *Circuit {
	if stages < 1 {
		panic("circuit: Butterfly needs stages >= 1")
	}
	lanes := 1 << uint(stages)
	b := NewBuilder(fmt.Sprintf("butterfly-%d", stages))
	cur := make([]NodeID, lanes)
	for i := range cur {
		cur[i] = b.Input(fmt.Sprintf("in%d", i))
	}
	next := make([]NodeID, lanes)
	for s := 0; s < stages; s++ {
		bit := 1 << uint(s)
		for i := 0; i < lanes; i++ {
			j := i ^ bit
			if i < j {
				next[i] = b.Xor(cur[i], cur[j])
				next[j] = b.And(cur[i], cur[j])
			}
		}
		cur, next = next, cur
	}
	for i, n := range cur {
		b.Output(fmt.Sprintf("out%d", i), n)
	}
	return b.MustBuild()
}
