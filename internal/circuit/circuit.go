package circuit

import (
	"fmt"
)

// NodeID indexes a node within its Circuit.
type NodeID int32

// NoNode marks an unused fanin slot.
const NoNode NodeID = -1

// Port addresses one input port of one node: the endpoint of an edge.
type Port struct {
	Node NodeID
	In   int // input port index on Node (0 or 1)
}

// Node is one vertex of the circuit graph. Fanin lists the source node
// driving each input port; Fanout lists every input port our output
// drives. Nodes are immutable after Build.
type Node struct {
	ID     NodeID
	Kind   Kind
	Name   string // non-empty for Input/Output terminals
	Fanin  [2]NodeID
	Fanout []Port
}

// NumIn reports the number of wired input ports.
func (n *Node) NumIn() int { return n.Kind.Arity() }

// Circuit is an immutable combinational circuit graph. Build one with a
// Builder, a generator (KoggeStone, TreeMultiplier, RandomDAG), or
// ParseNetlist.
type Circuit struct {
	Name    string
	Nodes   []Node   // indexed by NodeID
	Inputs  []NodeID // input terminals, in declaration order
	Outputs []NodeID // output terminals, in declaration order
	byName  map[string]NodeID
	depth   int // longest input→output path, in edges
}

// NumNodes reports the total node count (terminals included), the
// paper's Table 1 "# nodes".
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumEdges reports the number of directed edges (wired input ports), the
// paper's Table 1 "# edges".
func (c *Circuit) NumEdges() int {
	edges := 0
	for i := range c.Nodes {
		edges += c.Nodes[i].NumIn()
	}
	return edges
}

// Depth reports the longest path from an input to an output, in edges.
func (c *Circuit) Depth() int { return c.depth }

// Node returns the node with the given ID.
func (c *Circuit) Node(id NodeID) *Node { return &c.Nodes[id] }

// ByName returns the terminal with the given name.
func (c *Circuit) ByName(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// SettleTime returns an upper bound on the time for the circuit to settle
// after simultaneous input transitions: every gate delay plus wire delay
// along the deepest path.
func (c *Circuit) SettleTime() int64 {
	maxKindDelay := int64(0)
	for k := Kind(0); k < numKinds; k++ {
		if k.Delay() > maxKindDelay {
			maxKindDelay = k.Delay()
		}
	}
	return int64(c.depth+1) * (maxKindDelay + WireDelay)
}

// Profile describes a circuit the way the paper's Table 1 does. The
// event columns depend on a stimulus and are filled by callers.
type Profile struct {
	Name          string
	Nodes         int
	Edges         int
	Inputs        int
	Outputs       int
	Depth         int
	InitialEvents int   // filled from a Stimulus
	TotalEvents   int64 // filled by a reference simulation run
}

// Profile computes the static columns of the circuit's profile.
func (c *Circuit) Profile() Profile {
	return Profile{
		Name:    c.Name,
		Nodes:   c.NumNodes(),
		Edges:   c.NumEdges(),
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Depth:   c.depth,
	}
}

func (c *Circuit) String() string {
	return fmt.Sprintf("%s{nodes=%d edges=%d in=%d out=%d depth=%d}",
		c.Name, c.NumNodes(), c.NumEdges(), len(c.Inputs), len(c.Outputs), c.depth)
}
