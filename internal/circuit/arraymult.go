package circuit

import "fmt"

// ArrayMultiplier builds a bits×bits unsigned array multiplier: the
// classic grid of full adders, where each row adds one shifted partial
// product to a running sum and carries ripple through the array. It
// computes the same function as TreeMultiplier but with a long critical
// path and little fanout — the low-parallelism counterpart for
// profile-comparison studies. Terminal names match TreeMultiplier
// (a0.., b0.., p0..p{2n-1}), so TreeMultiplierAssign and
// TreeMultiplierProduct apply.
func ArrayMultiplier(bits int) *Circuit {
	if bits < 1 {
		panic("circuit: ArrayMultiplier bits must be >= 1")
	}
	b := NewBuilder(fmt.Sprintf("arraymult-%d", bits))
	a := make([]NodeID, bits)
	bb := make([]NodeID, bits)
	for i := 0; i < bits; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	pp := func(i, j int) NodeID { return b.And(a[i], bb[j]) }
	fullAdder := func(x, y, z NodeID) (sum, carry NodeID) {
		xy := b.Xor(x, y)
		sum = b.Xor(xy, z)
		carry = b.Or(b.And(x, y), b.And(xy, z))
		return
	}
	halfAdder := func(x, y NodeID) (sum, carry NodeID) {
		return b.Xor(x, y), b.And(x, y)
	}
	// add3 sums up to three optional bits (NoNode = absent).
	add3 := func(x, y, z NodeID) (sum, carry NodeID) {
		switch {
		case y == NoNode && z == NoNode:
			return x, NoNode
		case y == NoNode:
			return halfAdder(x, z)
		case z == NoNode:
			return halfAdder(x, y)
		default:
			return fullAdder(x, y, z)
		}
	}

	// After row r, running[k] holds bit (r+k) of the accumulated sum and
	// prevTop holds the carry out of the row (bit r+bits).
	running := make([]NodeID, bits)
	for k := 0; k < bits; k++ {
		running[k] = pp(k, 0)
	}
	b.Output("p0", running[0])
	prevTop := NoNode

	for row := 1; row < bits; row++ {
		next := make([]NodeID, bits)
		carry := NoNode
		for k := 0; k < bits; k++ {
			// Bit (row+k) sums pp(k,row), the previous row's bit at the
			// same weight (running[k+1], or its top carry at the highest
			// position), and the ripple carry.
			sumIn := prevTop
			if k+1 < bits {
				sumIn = running[k+1]
			}
			next[k], carry = add3(pp(k, row), sumIn, carry)
		}
		prevTop = carry
		running = next
		b.Output(fmt.Sprintf("p%d", row), running[0])
	}

	// Flush the final row's remaining bits and top carry.
	for k := 1; k < bits; k++ {
		b.Output(fmt.Sprintf("p%d", bits-1+k), running[k])
	}
	top := prevTop
	if top == NoNode {
		top = b.And(a[0], b.Not(a[0])) // constant 0 (bits == 1)
	}
	b.Output(fmt.Sprintf("p%d", 2*bits-1), top)
	return b.MustBuild()
}
