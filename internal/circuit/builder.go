package circuit

import (
	"fmt"
)

// Builder assembles a Circuit incrementally. Declare terminals and gates,
// then call Build, which wires fanouts, validates the graph (single
// driver per port, no cycles, no dangling ports) and freezes it.
type Builder struct {
	name  string
	nodes []Node
	names map[string]NodeID
	errs  []error
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: make(map[string]NodeID)}
}

func (b *Builder) addNode(kind Kind, name string, fanin ...NodeID) NodeID {
	id := NodeID(len(b.nodes))
	n := Node{ID: id, Kind: kind, Name: name, Fanin: [2]NodeID{NoNode, NoNode}}
	if len(fanin) > kind.Arity() {
		b.errs = append(b.errs, fmt.Errorf("node %d (%s): %d fanins for arity-%d kind", id, kind, len(fanin), kind.Arity()))
	}
	for i, src := range fanin {
		if i < 2 {
			n.Fanin[i] = src
		}
	}
	b.nodes = append(b.nodes, n)
	if name != "" {
		if _, dup := b.names[name]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate terminal name %q", name))
		}
		b.names[name] = id
	}
	return id
}

// Input declares a circuit input terminal.
func (b *Builder) Input(name string) NodeID {
	return b.addNode(Input, name)
}

// Output declares a circuit output terminal driven by src.
func (b *Builder) Output(name string, src NodeID) NodeID {
	return b.addNode(Output, name, src)
}

// Gate1 adds a 1-input gate (Buf or Not).
func (b *Builder) Gate1(kind Kind, a NodeID) NodeID {
	if kind.Arity() != 1 {
		b.errs = append(b.errs, fmt.Errorf("Gate1 with arity-%d kind %s", kind.Arity(), kind))
	}
	return b.addNode(kind, "", a)
}

// Gate2 adds a 2-input gate.
func (b *Builder) Gate2(kind Kind, a, fanin2 NodeID) NodeID {
	if kind.Arity() != 2 {
		b.errs = append(b.errs, fmt.Errorf("Gate2 with arity-%d kind %s", kind.Arity(), kind))
	}
	return b.addNode(kind, "", a, fanin2)
}

// Convenience gate constructors.

// And adds an AND gate.
func (b *Builder) And(a, c NodeID) NodeID { return b.Gate2(And, a, c) }

// Or adds an OR gate.
func (b *Builder) Or(a, c NodeID) NodeID { return b.Gate2(Or, a, c) }

// Xor adds an XOR gate.
func (b *Builder) Xor(a, c NodeID) NodeID { return b.Gate2(Xor, a, c) }

// Nand adds a NAND gate.
func (b *Builder) Nand(a, c NodeID) NodeID { return b.Gate2(Nand, a, c) }

// Nor adds a NOR gate.
func (b *Builder) Nor(a, c NodeID) NodeID { return b.Gate2(Nor, a, c) }

// Xnor adds an XNOR gate.
func (b *Builder) Xnor(a, c NodeID) NodeID { return b.Gate2(Xnor, a, c) }

// Not adds an inverter.
func (b *Builder) Not(a NodeID) NodeID { return b.Gate1(Not, a) }

// Buf adds a buffer.
func (b *Builder) Buf(a NodeID) NodeID { return b.Gate1(Buf, a) }

// Build validates and freezes the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	c := &Circuit{Name: b.name, Nodes: b.nodes, byName: b.names}
	// Wire fanouts and validate fanins.
	for i := range c.Nodes {
		n := &c.Nodes[i]
		for p := 0; p < n.NumIn(); p++ {
			src := n.Fanin[p]
			if src == NoNode {
				return nil, fmt.Errorf("node %d (%s): input port %d not driven", n.ID, n.Kind, p)
			}
			if src < 0 || int(src) >= len(c.Nodes) {
				return nil, fmt.Errorf("node %d: fanin %d out of range", n.ID, src)
			}
			if c.Nodes[src].Kind == Output {
				return nil, fmt.Errorf("node %d: driven by output terminal %d", n.ID, src)
			}
			c.Nodes[src].Fanout = append(c.Nodes[src].Fanout, Port{Node: n.ID, In: p})
		}
		switch n.Kind {
		case Input:
			c.Inputs = append(c.Inputs, n.ID)
		case Output:
			c.Outputs = append(c.Outputs, n.ID)
		}
	}
	// Topological order (Kahn) to reject cycles and compute depth.
	indeg := make([]int, len(c.Nodes))
	for i := range c.Nodes {
		indeg[i] = c.Nodes[i].NumIn()
	}
	level := make([]int, len(c.Nodes))
	var frontier []NodeID
	for i := range c.Nodes {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
		}
	}
	visited := 0
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		visited++
		for _, port := range c.Nodes[id].Fanout {
			if l := level[id] + 1; l > level[port.Node] {
				level[port.Node] = l
			}
			indeg[port.Node]--
			if indeg[port.Node] == 0 {
				frontier = append(frontier, port.Node)
			}
		}
	}
	if visited != len(c.Nodes) {
		return nil, fmt.Errorf("circuit %q contains a cycle (%d of %d nodes reachable)", b.name, visited, len(c.Nodes))
	}
	for i := range c.Nodes {
		if level[i] > c.depth {
			c.depth = level[i]
		}
	}
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit %q has no input terminals", b.name)
	}
	return c, nil
}

// MustBuild is Build, panicking on error; intended for generators whose
// construction is correct by design.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic("circuit: " + err.Error())
	}
	return c
}
