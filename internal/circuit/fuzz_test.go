package circuit

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNetlistNeverPanics feeds arbitrary bytes and structured
// garbage to the parser: it must return an error or a valid circuit,
// never panic.
func TestParseNetlistNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ParseNetlist panicked on %q: %v", data, r)
			}
		}()
		c, err := ParseNetlist(strings.NewReader(string(data)))
		if err == nil && c == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNetlistStructuredGarbage mutates a valid netlist line by line
// and checks the parser degrades to errors, not panics or corrupt
// circuits.
func TestParseNetlistStructuredGarbage(t *testing.T) {
	base := []string{
		"circuit g",
		"input 0 x",
		"input 1 y",
		"gate 2 AND 0 1",
		"output 3 z 2",
	}
	mutations := []string{
		"gate 2 AND 0 0 0 0", "gate 2 AND -1 1", "gate 99 AND 0 1",
		"input 1 x", "output 3 z 99", "gate 2 OUTPUT 0", "gate 2 INPUT",
		"circuit another", "gate two AND 0 1", "output 3", "",
	}
	for _, mut := range mutations {
		for pos := 1; pos < len(base); pos++ {
			lines := append([]string{}, base[:pos]...)
			lines = append(lines, mut)
			lines = append(lines, base[pos:]...)
			src := strings.Join(lines, "\n")
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("panic on mutation %q at %d: %v", mut, pos, r)
					}
				}()
				c, err := ParseNetlist(strings.NewReader(src))
				if err == nil && c != nil {
					// If it parsed, it must at least be self-consistent.
					if c.NumNodes() == 0 {
						t.Errorf("mutation %q at %d: empty circuit accepted", mut, pos)
					}
				}
			}()
		}
	}
}

// TestBuilderHandlesDegenerateGraphs exercises odd but legal shapes.
func TestBuilderHandlesDegenerateGraphs(t *testing.T) {
	// A gate feeding both of its consumer's ports.
	b := NewBuilder("both-ports")
	in := b.Input("x")
	n := b.Not(in)
	b.Output("y", b.Xor(n, n)) // x XOR x == 0 via shared fanin
	c := b.MustBuild()
	out := Evaluate(c, map[string]Value{"x": 1})
	if out["y"] != 0 {
		t.Fatalf("x^x = %d, want 0", out["y"])
	}
	// Input wired straight to output.
	b2 := NewBuilder("wire")
	b2.Output("o", b2.Input("i"))
	c2 := b2.MustBuild()
	if out := Evaluate(c2, map[string]Value{"i": 1}); out["o"] != 1 {
		t.Fatalf("pass-through = %d", out["o"])
	}
	// A dead gate (no fanout) must be tolerated.
	b3 := NewBuilder("dead")
	i3 := b3.Input("i")
	b3.Not(i3) // never observed
	b3.Output("o", i3)
	c3 := b3.MustBuild()
	if c3.NumNodes() != 3 {
		t.Fatalf("dead-gate circuit nodes = %d", c3.NumNodes())
	}
}

// FuzzNetlistParse drives the netlist parser with arbitrary bytes. The
// contract under fuzzing: never panic, and anything that parses must be
// a self-consistent circuit that survives a serialize/reparse round
// trip bit-for-bit in structure.
func FuzzNetlistParse(f *testing.F) {
	// Seed with real serializations of every circuit family plus the
	// known-tricky hand mutations from the table-driven garbage test.
	for _, c := range []*Circuit{FullAdder(), Mux2(), C17(), ParityChain(4), KoggeStone(2), Butterfly(1)} {
		var sb strings.Builder
		if err := Serialize(&sb, c); err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(sb.String()))
	}
	f.Add([]byte("circuit g\ninput 0 x\ngate 1 NOT 0\noutput 2 y 1\n"))
	f.Add([]byte("circuit g\ninput 0 x\ngate 1 AND 0 0\n# comment\n\noutput 2 y 1"))
	f.Add([]byte("circuit g\ninput 0 x\ngate 1 AND 0 99\noutput 2 y 1"))
	f.Add([]byte("input 0 x"))
	f.Add([]byte("circuit a\ncircuit b"))
	f.Add([]byte("circuit g\ninput 0 x\noutput 1 y 0\ngate 2 NOT 1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		c, err := ParseNetlist(strings.NewReader(string(data)))
		if err != nil {
			if c != nil {
				t.Fatal("non-nil circuit alongside error")
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit without error")
		}
		if c.NumNodes() == 0 || len(c.Inputs) == 0 {
			t.Fatalf("accepted degenerate circuit: %d nodes, %d inputs", c.NumNodes(), len(c.Inputs))
		}
		var sb strings.Builder
		if err := Serialize(&sb, c); err != nil {
			t.Fatalf("serialize accepted circuit: %v", err)
		}
		rt, err := ParseNetlist(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, sb.String())
		}
		if rt.NumNodes() != c.NumNodes() || rt.Depth() != c.Depth() {
			t.Fatalf("round trip drifted: %d/%d nodes, depth %d/%d", rt.NumNodes(), c.NumNodes(), rt.Depth(), c.Depth())
		}
		for i := range c.Nodes {
			a, b := &c.Nodes[i], &rt.Nodes[i]
			if a.Kind != b.Kind || a.Name != b.Name || a.Fanin != b.Fanin {
				t.Fatalf("round trip drifted at node %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
