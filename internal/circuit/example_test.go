package circuit_test

import (
	"fmt"

	"hjdes/internal/circuit"
)

// Build a circuit by hand and evaluate it combinationally.
func ExampleBuilder() {
	b := circuit.NewBuilder("halfadder")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("sum", b.Xor(x, y))
	b.Output("carry", b.And(x, y))
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	out := circuit.Evaluate(c, map[string]circuit.Value{"x": 1, "y": 1})
	fmt.Printf("1+1 = carry %s sum %s\n", out["carry"], out["sum"])
	// Output: 1+1 = carry 1 sum 0
}

// Generate one of the paper's evaluation circuits and decode a sum.
func ExampleKoggeStone() {
	c := circuit.KoggeStone(16)
	out := circuit.Evaluate(c, circuit.KoggeStoneAssign(16, 1234, 4321))
	fmt.Println(circuit.KoggeStoneSum(16, out))
	// Output: 5555
}

// A stimulus turns operand vectors into the simulation's initial events.
func ExampleVectorWaves() {
	c := circuit.FullAdder()
	stim := circuit.VectorWaves(c, []map[string]circuit.Value{
		{"a": 1, "b": 0, "cin": 0},
		{"a": 1, "b": 1, "cin": 1},
	}, 100)
	fmt.Println(stim.NumEvents())
	// Output: 6
}
