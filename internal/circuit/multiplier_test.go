package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeMultiplierExhaustiveSmall(t *testing.T) {
	for bits := 1; bits <= 4; bits++ {
		c := TreeMultiplier(bits)
		limit := uint64(1) << uint(bits)
		for a := uint64(0); a < limit; a++ {
			for b := uint64(0); b < limit; b++ {
				out := Evaluate(c, TreeMultiplierAssign(bits, a, b))
				if got := TreeMultiplierProduct(bits, out); got != a*b {
					t.Fatalf("bits %d: %d*%d = %d, want %d", bits, a, b, got, a*b)
				}
			}
		}
	}
}

func TestTreeMultiplier12Random(t *testing.T) {
	c := TreeMultiplier(12)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a := rng.Uint64() & 0xFFF
		b := rng.Uint64() & 0xFFF
		out := Evaluate(c, TreeMultiplierAssign(12, a, b))
		if got := TreeMultiplierProduct(12, out); got != a*b {
			t.Fatalf("%d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

// TestTreeMultiplierProperty8 cross-checks an 8-bit multiplier against
// integer arithmetic with generated operands.
func TestTreeMultiplierProperty8(t *testing.T) {
	c := TreeMultiplier(8)
	f := func(a, b uint8) bool {
		out := Evaluate(c, TreeMultiplierAssign(8, uint64(a), uint64(b)))
		return TreeMultiplierProduct(8, out) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTreeMultiplierProfile(t *testing.T) {
	p := TreeMultiplier(12).Profile()
	if p.Inputs != 24 || p.Outputs != 24 {
		t.Errorf("terminals: in=%d out=%d, want 24/24", p.Inputs, p.Outputs)
	}
	// The paper's 12-bit tree multiplier has 2731 nodes; our Wallace
	// construction is leaner but must be the same order of magnitude.
	if p.Nodes < 400 || p.Nodes > 4000 {
		t.Errorf("nodes = %d, out of plausible range", p.Nodes)
	}
	if p.Edges <= p.Nodes {
		t.Errorf("edges = %d, nodes = %d: 2-input gates should dominate", p.Edges, p.Nodes)
	}
}

func TestTreeMultiplierFanoutBulge(t *testing.T) {
	// The reduction tree should contain nodes with fanout > 2 (operand
	// bits feed many partial products) — the source of the parallelism
	// bulge in the paper's Figure 1.
	c := TreeMultiplier(6)
	maxFanout := 0
	for i := range c.Nodes {
		if f := len(c.Nodes[i].Fanout); f > maxFanout {
			maxFanout = f
		}
	}
	if maxFanout < 6 {
		t.Errorf("max fanout = %d, expected >= bits (operand bits drive a row/column of partial products)", maxFanout)
	}
}

func BenchmarkTreeMultiplierBuild12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TreeMultiplier(12)
	}
}
