package circuit

import "testing"

func TestEvaluateFullAdderTruthTable(t *testing.T) {
	c := FullAdder()
	for bits := 0; bits < 8; bits++ {
		a, b, cin := Value(bits&1), Value((bits>>1)&1), Value((bits>>2)&1)
		out := Evaluate(c, map[string]Value{"a": a, "b": b, "cin": cin})
		total := int(a) + int(b) + int(cin)
		if got := int(out["sum"]) + 2*int(out["cout"]); got != total {
			t.Errorf("a=%d b=%d cin=%d: sum=%d cout=%d (total %d, want %d)",
				a, b, cin, out["sum"], out["cout"], got, total)
		}
	}
}

func TestEvaluateMux2(t *testing.T) {
	c := Mux2()
	for bits := 0; bits < 8; bits++ {
		d0, d1, sel := Value(bits&1), Value((bits>>1)&1), Value((bits>>2)&1)
		out := Evaluate(c, map[string]Value{"d0": d0, "d1": d1, "sel": sel})
		want := d0
		if sel == 1 {
			want = d1
		}
		if out["y"] != want {
			t.Errorf("d0=%d d1=%d sel=%d: y=%d want %d", d0, d1, sel, out["y"], want)
		}
	}
}

func TestEvaluateParityChain(t *testing.T) {
	c := ParityChain(8)
	for pattern := 0; pattern < 256; pattern++ {
		assign := map[string]Value{}
		parity := Value(0)
		for i := 0; i < 8; i++ {
			v := Value((pattern >> i) & 1)
			assign[c.Nodes[c.Inputs[i]].Name] = v
			parity ^= v
		}
		if out := Evaluate(c, assign); out["parity"] != parity {
			t.Errorf("pattern %08b: parity=%d want %d", pattern, out["parity"], parity)
		}
	}
}

func TestEvaluateMissingInputsDriveLow(t *testing.T) {
	c := FullAdder()
	out := Evaluate(c, map[string]Value{"a": 1})
	if out["sum"] != 1 || out["cout"] != 0 {
		t.Errorf("a=1 only: sum=%d cout=%d, want 1, 0", out["sum"], out["cout"])
	}
}

func TestEvaluateFanoutTree(t *testing.T) {
	c := FanoutTree(4)
	out := Evaluate(c, map[string]Value{"in": 1})
	if len(out) != 16 {
		t.Fatalf("leaves = %d, want 16", len(out))
	}
	for name, v := range out {
		if v != 1 {
			t.Errorf("leaf %s = %d, want 1", name, v)
		}
	}
}
