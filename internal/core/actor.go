package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hjdes/internal/circuit"
)

// actorEngine is the message-passing engine the paper names as future
// work ("the use of HJlib actor model for parallelizing DES"): every
// gate/output node is an actor with a mailbox, implemented here as one
// goroutine per node connected by buffered channels. Chandy–Misra NULL
// messages terminate each actor; the DAG property guarantees blocking
// sends cannot deadlock (messages only flow downstream).
type actorEngine struct {
	opts Options
}

// NewActor returns the actor-model engine.
func NewActor(opts Options) Engine { return &actorEngine{opts: opts} }

func (e *actorEngine) Name() string { return "actor" }

// actorMsg is one mailbox message: a signal event or a NULL for a port.
type actorMsg struct {
	ev   Event
	port int32
	null bool
}

// actorMailboxCap bounds each node's mailbox. Small enough to keep
// memory flat at paper-scale event counts, large enough to keep
// upstream actors from blocking on every send.
const actorMailboxCap = 512

func (e *actorEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, err
	}
	record := !e.opts.DiscardOutputs

	boxes := make([]chan actorMsg, len(s.nodes))
	for i := range s.nodes {
		if s.nodes[i].numIn > 0 {
			boxes[i] = make(chan actorMsg, actorMailboxCap)
		}
	}

	var wg sync.WaitGroup
	for i := range s.nodes {
		ns := &s.nodes[i]
		if ns.kind == circuit.Input {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.runActor(s, ns, boxes, record)
		}()
	}

	// Input nodes flood from the driver goroutine: all their local
	// events are ready (no input ports), then the NULL.
	for _, id := range c.Inputs {
		ns := &s.nodes[id]
		for _, ev := range ns.inputOutgoing() {
			for _, d := range ns.fanout {
				boxes[d.node] <- actorMsg{ev: ev, port: d.port}
			}
		}
		for _, d := range ns.fanout {
			boxes[d.node] <- actorMsg{port: d.port, null: true}
		}
		ns.nullSent = true
	}
	wg.Wait()

	if bad := s.checkAllNullSent(); bad >= 0 {
		return nil, fmt.Errorf("core: actor simulation ended with node %d not terminated", bad)
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Result{
		Engine:      "actor",
		Workers:     workers,
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
	}, nil
}

// runActor is one node's message loop: absorb mailbox messages, process
// whatever became ready, and exit after propagating the NULL.
func (e *actorEngine) runActor(s *simState, ns *nodeState, boxes []chan actorMsg, record bool) {
	box := boxes[ns.id]
	var buf []portEvent
	for !ns.nullSent {
		// Block for one message, then drain whatever else is queued so
		// ready events are processed in batches.
		msg := <-box
		for {
			if msg.null {
				ns.receiveNull(msg.port)
			} else {
				ns.receive(msg.port, msg.ev)
			}
			select {
			case msg = <-box:
				continue
			default:
			}
			break
		}
		buf = ns.collectReady(buf[:0])
		for _, pe := range buf {
			if out, ok := ns.processOne(pe, record); ok {
				for _, d := range ns.fanout {
					boxes[d.node] <- actorMsg{ev: out, port: d.port}
				}
			}
		}
		if ns.drained() {
			for _, d := range ns.fanout {
				boxes[d.node] <- actorMsg{port: d.port, null: true}
			}
			ns.nullSent = true
		}
	}
}
