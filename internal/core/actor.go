package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hjdes/internal/circuit"
)

// actorEngine is the message-passing engine the paper names as future
// work ("the use of HJlib actor model for parallelizing DES"): every
// gate/output node is an actor with a mailbox, implemented here as one
// goroutine per node connected by buffered channels. Chandy–Misra NULL
// messages terminate each actor; the DAG property guarantees blocking
// sends cannot deadlock (messages only flow downstream).
//
// Failure containment: a panic inside one actor closes a shared stop
// channel; every other actor observes it at its next mailbox send or
// receive and exits, so the run returns a structured *EngineError naming
// the actor instead of crashing the process or leaking goroutines. The
// same stop channel implements context cancellation for RunContext.
type actorEngine struct {
	opts Options
}

// NewActor returns the actor-model engine.
func NewActor(opts Options) Engine { return &actorEngine{opts: opts} }

func (e *actorEngine) Name() string { return "actor" }

// actorMsg is one mailbox message: a signal event or a NULL for a port.
type actorMsg struct {
	ev   Event
	port int32
	null bool
}

// actorMailboxCap bounds each node's mailbox. Small enough to keep
// memory flat at paper-scale event counts, large enough to keep
// upstream actors from blocking on every send.
const actorMailboxCap = 512

// actorRun is the shared failure state of one run.
type actorRun struct {
	stop     chan struct{} // closed on first panic or cancellation
	stopOnce sync.Once
	failure  atomic.Pointer[EngineError]
}

func (a *actorRun) halt() { a.stopOnce.Do(func() { close(a.stop) }) }

func (e *actorEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx: on cancellation every actor
// exits at its next mailbox operation and the context's cause is
// returned.
func (e *actorEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: settle-boundary segments, snapshots
// into store, resume from the latest one.
func (e *actorEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

func (e *actorEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, ResumeState{}, err
	}
	s.seedResume(rs)
	record := !e.opts.DiscardOutputs

	boxes := make([]chan actorMsg, len(s.nodes))
	for i := range s.nodes {
		if s.nodes[i].numIn > 0 {
			boxes[i] = make(chan actorMsg, actorMailboxCap)
		}
	}

	a := &actorRun{stop: make(chan struct{})}
	defer a.halt() // reaps the cancellation watcher on every return path
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				a.halt()
			case <-a.stop:
			}
		}()
	}

	var wg sync.WaitGroup
	for i := range s.nodes {
		ns := &s.nodes[i]
		if ns.kind == circuit.Input {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					a.failure.CompareAndSwap(nil, &EngineError{
						Engine: "actor", Unit: fmt.Sprintf("node %d", ns.id),
						Reason: FailPanic, Value: r, Stack: debug.Stack(),
					})
					a.halt()
				}
			}()
			e.runActor(s, ns, boxes, a.stop, record)
		}()
	}

	// Input nodes flood from the driver goroutine: all their local
	// events are ready (no input ports), then the NULL.
flood:
	for _, id := range c.Inputs {
		ns := &s.nodes[id]
		for _, ev := range ns.inputOutgoing() {
			for _, d := range ns.fanout {
				select {
				case boxes[d.node] <- actorMsg{ev: ev, port: d.port}:
				case <-a.stop:
					break flood
				}
			}
		}
		for _, d := range ns.fanout {
			select {
			case boxes[d.node] <- actorMsg{port: d.port, null: true}:
			case <-a.stop:
				break flood
			}
		}
		ns.nullSent = true
	}
	wg.Wait()

	if ee := a.failure.Load(); ee != nil {
		return nil, ResumeState{}, ee
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ResumeState{}, context.Cause(ctx)
	}
	if bad := s.checkAllNullSent(); bad >= 0 {
		return nil, ResumeState{}, fmt.Errorf("core: actor simulation ended with node %d not terminated", bad)
	}
	var final ResumeState
	if capture {
		final = s.captureResume()
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		Engine:      "actor",
		Workers:     workers,
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
	}
	res.FillMetrics(e.opts)
	return res, final, nil
}

// runActor is one node's message loop: absorb mailbox messages, process
// whatever became ready, and exit after propagating the NULL (or when the
// run is stopped).
func (e *actorEngine) runActor(s *simState, ns *nodeState, boxes []chan actorMsg, stop <-chan struct{}, record bool) {
	box := boxes[ns.id]
	chaos := e.opts.Chaos
	var buf []portEvent
	for !ns.nullSent {
		// Block for one message, then drain whatever else is queued so
		// ready events are processed in batches.
		var msg actorMsg
		select {
		case msg = <-box:
		case <-stop:
			return
		}
		if chaos != nil && chaos.Task != nil {
			// A panic here is contained by this actor's recover and halts
			// the run with a FailPanic naming the node.
			chaos.Task(int(ns.id))
		}
		for {
			if msg.null {
				ns.receiveNull(msg.port)
			} else {
				ns.receive(msg.port, msg.ev)
			}
			select {
			case msg = <-box:
				continue
			default:
			}
			break
		}
		buf = ns.collectReady(buf[:0])
		for _, pe := range buf {
			if out, ok := ns.processOne(pe, record); ok {
				for _, d := range ns.fanout {
					select {
					case boxes[d.node] <- actorMsg{ev: out, port: d.port}:
					case <-stop:
						return
					}
				}
			}
		}
		if ns.drained() {
			for _, d := range ns.fanout {
				select {
				case boxes[d.node] <- actorMsg{port: d.port, null: true}:
				case <-stop:
					return
				}
			}
			ns.nullSent = true
		}
	}
}
