package core

import (
	"errors"
	"testing"

	"hjdes/internal/circuit"
)

// TestLPOptionValidation checks that the lp-family engines reject
// nonsensical Options up front with a structured, non-retryable
// *EngineError (Reason=FailConfig) instead of a late panic, and that
// sane defaults still run.
func TestLPOptionValidation(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.VectorWaves(c, randomWaves(c, 2, 9), c.SettleTime()+10)
	factories := map[string]func(Options) Engine{
		"lp":    NewLP,
		"lp-hj": NewLPHJ,
	}
	cases := []struct {
		name   string
		opts   Options
		wantOK bool
	}{
		{"defaults", Options{}, true},
		{"explicit", Options{Workers: 2, Partitions: 3, LPInboxCap: 8}, true},
		{"negative-inbox", Options{LPInboxCap: -1}, false},
		{"huge-inbox", Options{LPInboxCap: 1 << 30}, false},
		{"negative-partitions", Options{Partitions: -4}, false},
		{"huge-partitions", Options{Partitions: 1 << 28}, false},
		{"negative-workers", Options{Workers: -2}, false},
	}
	for engName, factory := range factories {
		for _, tc := range cases {
			t.Run(engName+"/"+tc.name, func(t *testing.T) {
				res, err := factory(tc.opts).Run(c, stim)
				if tc.wantOK {
					if err != nil {
						t.Fatalf("valid options rejected: %v", err)
					}
					if res.TotalEvents == 0 {
						t.Fatal("run processed no events")
					}
					return
				}
				if err == nil {
					t.Fatal("nonsensical options accepted")
				}
				var ee *EngineError
				if !errors.As(err, &ee) {
					t.Fatalf("error is not an *EngineError: %v", err)
				}
				if ee.Reason != FailConfig {
					t.Fatalf("Reason = %q, want %q (err: %v)", ee.Reason, FailConfig, err)
				}
				if ee.Engine != engName {
					t.Fatalf("Engine = %q, want %q", ee.Engine, engName)
				}
				if Retryable(err) {
					t.Fatalf("config errors must not be retryable: %v", err)
				}
			})
		}
	}
}
