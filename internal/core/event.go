// Package core implements the paper's discrete event simulation of logic
// circuits under the Chandy–Misra conservative algorithm, in four
// interchangeable engines:
//
//   - Sequential (Algorithm 1): the workset-based reference, with the
//     lightweight per-port array deques of the paper's HJlib version.
//   - SequentialPQ: the same algorithm with one priority queue per node,
//     matching the Galois-Java data-structure choices (the paper's Table 2
//     "Galois (Java)" sequential baseline).
//   - HJ (Algorithm 2 + Section 4.5 optimizations): the paper's
//     contribution — parallel simulation on the hj work-stealing runtime
//     using async/finish plus TryLock/ReleaseAllLocks.
//   - Galois (Algorithm 3): parallel simulation on the galois optimistic
//     runtime, the paper's baseline system.
//   - Actor: a message-passing engine (one goroutine per node), the
//     paper's stated future-work direction, included as an extension.
//
// Every engine implements Engine and produces a Result whose settled
// output values and total event count must agree with every other engine;
// the tests enforce this and additionally check the outputs against the
// levelized combinational oracle (circuit.Evaluate).
package core

import (
	"math"

	"hjdes/internal/circuit"
)

// TimeInfinity is the NULL-message timestamp that announces a port will
// never see another event (Chandy–Misra termination).
const TimeInfinity int64 = math.MaxInt64

// Event is a signal arriving at one input port of one node.
type Event struct {
	Time  int64
	Value circuit.Value
}

// portEvent pairs an event with the input port it arrived on; it is the
// element type of merged (per-node) event queues and of ready-event
// batches. Seq is a per-node arrival sequence number used as the heap
// tiebreaker: events on one port must be processed in arrival order even
// when timestamps tie, which an unstable binary heap would otherwise
// violate.
type portEvent struct {
	Ev   Event
	Seq  int64
	Port int32
}

// TimedValue is one observed (time, value) sample at an output terminal.
type TimedValue struct {
	Time  int64
	Value circuit.Value
}
