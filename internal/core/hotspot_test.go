package core

import (
	"strings"
	"testing"

	"hjdes/internal/circuit"
)

func TestTopHotspots(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	stim := circuit.RandomStimulus(c, 3, c.SettleTime()+10, 1)
	res, err := NewSequential(Options{DiscardOutputs: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeEvents) != c.NumNodes() {
		t.Fatalf("NodeEvents len = %d, want %d", len(res.NodeEvents), c.NumNodes())
	}
	var sum int64
	for _, n := range res.NodeEvents {
		sum += n
	}
	if sum != res.TotalEvents {
		t.Fatalf("NodeEvents sum %d != TotalEvents %d", sum, res.TotalEvents)
	}

	spots := TopHotspots(c, res, 5)
	if len(spots) != 5 {
		t.Fatalf("got %d hotspots", len(spots))
	}
	for i := 1; i < len(spots); i++ {
		if spots[i].Events > spots[i-1].Events {
			t.Fatalf("hotspots not sorted: %v", spots)
		}
	}
	if spots[0].Share <= 0 || spots[0].Share > 1 {
		t.Fatalf("share = %v", spots[0].Share)
	}
	if spots[0].String() == "" || !strings.Contains(spots[0].String(), "events") {
		t.Fatalf("String = %q", spots[0].String())
	}
}

func TestTopHotspotsDegenerate(t *testing.T) {
	c := circuit.FullAdder()
	if TopHotspots(c, &Result{}, 3) != nil {
		t.Fatal("mismatched NodeEvents should return nil")
	}
	res := &Result{NodeEvents: make([]int64, c.NumNodes())}
	if got := TopHotspots(c, res, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	// All-zero counts: no hotspots.
	if got := TopHotspots(c, res, 3); len(got) != 0 {
		t.Fatalf("all-zero counts produced %v", got)
	}
}

func TestHotspotsAgreeAcrossEngines(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.RandomStimulus(c, 3, c.SettleTime()+10, 2)
	var ref []int64
	for _, e := range testEngines(3) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if ref == nil {
			ref = res.NodeEvents
			continue
		}
		for i := range ref {
			if res.NodeEvents[i] != ref[i] {
				t.Fatalf("%s: node %d events %d, reference %d", e.Name(), i, res.NodeEvents[i], ref[i])
			}
		}
	}
}
