package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// twVerify runs the Time Warp engine on a circuit with random waves and
// checks it against both the oracle and the sequential reference
// (settled outputs and total committed events must match exactly).
func twVerify(t *testing.T, e Engine, c *circuit.Circuit, nWaves int, seed int64) *Result {
	t.Helper()
	waves := randomWaves(c, nWaves, seed)
	period := c.SettleTime() + 10
	ref, err := RunAndVerify(NewSequential(Options{}), c, waves, period)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	res, err := RunAndVerify(e, c, waves, period)
	if err != nil {
		t.Fatalf("%s on %s: %v", e.Name(), c.Name, err)
	}
	if ok, diff := SameOutputs(ref, res); !ok {
		t.Fatalf("%s disagrees with reference on %s: %s", e.Name(), c.Name, diff)
	}
	return res
}

func TestTimeWarpCircuits(t *testing.T) {
	for _, tc := range []struct {
		c     *circuit.Circuit
		waves int
	}{
		{circuit.FullAdder(), 12},
		{circuit.Mux2(), 10},
		{circuit.C17(), 10},
		{circuit.ParityChain(16), 5},
		{circuit.KoggeStone(12), 6},
		{circuit.BrentKung(10), 6},
		{circuit.TreeMultiplier(5), 4},
		{circuit.Butterfly(3), 6},
	} {
		t.Run(tc.c.Name, func(t *testing.T) {
			twVerify(t, NewTimeWarp(Options{}), tc.c, tc.waves, 31)
		})
	}
}

func TestTimeWarpRandomCircuits(t *testing.T) {
	for _, seed := range []int64{41, 42, 43, 44} {
		c := circuit.RandomDAG(circuit.RandomConfig{Inputs: 6, Gates: 90, Outputs: 5, Seed: seed})
		twVerify(t, NewTimeWarp(Options{}), c, 4, seed)
	}
}

func TestTimeWarpWindows(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	for _, w := range []int64{0, 1, 5, 50, 1 << 40} {
		res := twVerify(t, NewTimeWarp(Options{TimeWarpWindow: w}), c, 4, 33)
		if w > 0 && res.Engine == "timewarp" {
			t.Fatalf("windowed engine misnamed %q", res.Engine)
		}
	}
}

func TestTimeWarpRollsBack(t *testing.T) {
	// Unequal path delays (XOR slower than AND/OR) make stragglers
	// likely on reconvergent circuits at meaningful wave counts.
	c := circuit.TreeMultiplier(6)
	waves := randomWaves(c, 6, 34)
	period := c.SettleTime() + 10
	res, err := NewTimeWarp(Options{}).Run(c, circuit.VectorWaves(c, waves, period))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeWarp.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if res.TimeWarp.Rollbacks == 0 {
		t.Fatal("expected rollbacks on a reconvergent circuit; speculation never misfired")
	}
	if res.TimeWarp.Undone == 0 || res.TimeWarp.Antis == 0 {
		t.Fatalf("rollbacks without undone work or antis: %v", res.TimeWarp)
	}
	if res.TimeWarp.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestTimeWarpWorkerIndependence(t *testing.T) {
	c := circuit.KoggeStone(10)
	waves := randomWaves(c, 5, 35)
	period := c.SettleTime() + 10
	stim := circuit.VectorWaves(c, waves, period)
	ref, err := NewTimeWarp(Options{Workers: 1}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := NewTimeWarp(Options{Workers: workers}).Run(c, stim)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ok, diff := SameOutputs(ref, res); !ok {
			t.Fatalf("workers=%d: %s", workers, diff)
		}
		// BSP structure makes even the speculation deterministic.
		if res.TimeWarp != ref.TimeWarp {
			t.Fatalf("workers=%d: stats differ: %v vs %v", workers, res.TimeWarp, ref.TimeWarp)
		}
	}
}

func TestTimeWarpCommittedEventCountsMatchConservative(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	stim := circuit.VectorWaves(c, randomWaves(c, 5, 36), c.SettleTime()+10)
	cons, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewTimeWarp(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if cons.TotalEvents != opt.TotalEvents {
		t.Fatalf("committed %d, conservative %d", opt.TotalEvents, cons.TotalEvents)
	}
	// Per-node commits must agree too.
	for i := range cons.NodeEvents {
		if cons.NodeEvents[i] != opt.NodeEvents[i] {
			t.Fatalf("node %d: %d vs %d", i, opt.NodeEvents[i], cons.NodeEvents[i])
		}
	}
}

func TestTimeWarpEmptyStimulus(t *testing.T) {
	c := circuit.FullAdder()
	res, err := NewTimeWarp(Options{}).Run(c, circuit.NewStimulus(c))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents != 0 {
		t.Fatalf("events = %d", res.TotalEvents)
	}
}

func TestTimeWarpDiscardOutputs(t *testing.T) {
	c := circuit.C17()
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 37), c.SettleTime()+10)
	res, err := NewTimeWarp(Options{DiscardOutputs: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range res.Outputs {
		if len(h) != 0 {
			t.Fatalf("output %q recorded despite DiscardOutputs", name)
		}
	}
	if res.TotalEvents == 0 {
		t.Fatal("no events processed")
	}
}

func TestTimeWarpChangedStimulus(t *testing.T) {
	c := circuit.C17()
	waves := randomWaves(c, 8, 38)
	period := c.SettleTime() + 10
	res, err := NewTimeWarp(Options{}).Run(c, circuit.VectorWavesChanged(c, waves, period))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstOracle(c, waves, period, res); err != nil {
		t.Fatal(err)
	}
}
