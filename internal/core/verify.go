package core

import (
	"fmt"

	"hjdes/internal/circuit"
)

// VerifyAgainstOracle checks a simulation result against the levelized
// combinational oracle: for each wave of the stimulus (assignments spaced
// period apart, as built by circuit.VectorWaves), the settled value at
// every output just before the next wave's effects arrive must equal
// circuit.Evaluate of that wave's assignment. period must be at least the
// circuit's SettleTime plus one.
func VerifyAgainstOracle(c *circuit.Circuit, waves []map[string]circuit.Value, period int64, res *Result) error {
	if period <= c.SettleTime() {
		return fmt.Errorf("core: period %d <= settle time %d; waves would overlap", period, c.SettleTime())
	}
	for w, assign := range waves {
		want := circuit.Evaluate(c, assign)
		// Effects of wave w+1 (applied at (w+1)*period) reach the
		// shallowest output no earlier than (w+1)*period + WireDelay, so
		// sampling at (w+1)*period is safely inside wave w's settled
		// window.
		deadline := int64(w+1) * period
		for name, wantV := range want {
			history := res.Outputs[name]
			got, ok := ValueAt(history, deadline)
			if !ok {
				return fmt.Errorf("core: wave %d: output %q saw no events by t=%d", w, name, deadline)
			}
			if got.Value != wantV {
				return fmt.Errorf("core: wave %d: output %q = %v at t=%d, oracle says %v",
					w, name, got.Value, deadline, wantV)
			}
		}
	}
	return nil
}

// RunAndVerify runs the engine on the waves and verifies against the
// oracle; a convenience wrapper used by tests and examples.
func RunAndVerify(e Engine, c *circuit.Circuit, waves []map[string]circuit.Value, period int64) (*Result, error) {
	stim := circuit.VectorWaves(c, waves, period)
	res, err := e.Run(c, stim)
	if err != nil {
		return nil, err
	}
	if err := VerifyAgainstOracle(c, waves, period, res); err != nil {
		return res, err
	}
	return res, nil
}
