package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hjdes/internal/circuit"
)

// testEngines returns every engine configuration under test, with the
// causality assertion armed: any per-port timestamp regression panics.
func testEngines(workers int) []Engine {
	p := Options{Paranoid: true}
	return []Engine{
		NewSequential(p),
		NewSequentialPQ(p),
		NewHJ(Options{Workers: workers, Paranoid: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, PerNodePQ: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, PerNodeLocks: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, NoTempQueue: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, NaiveRespawn: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, GlobalIsolated: true}),
		NewHJ(Options{Workers: workers, Paranoid: true, MutexLocks: true}),
		NewGalois(Options{Workers: workers, Paranoid: true}),
		NewGaloisFine(Options{Workers: workers, Paranoid: true}),
		NewOrdered(Options{Workers: workers, Paranoid: true}),
		NewActor(Options{Workers: workers, Paranoid: true}),
		NewLP(Options{Workers: workers, Paranoid: true}),
		NewLP(Options{Partitions: 3, Paranoid: true}),
		NewLPHJ(Options{Workers: workers, Paranoid: true}),
		NewLPHJ(Options{Workers: workers, Partitions: 3, Paranoid: true}),
		NewLPHJ(Options{Workers: 2, Partitions: 16, Paranoid: true}),
		NewLPHJ(Options{Workers: workers, Partitions: 5, Paranoid: true, NoAffinity: true}),
		NewTWHJ(Options{Workers: workers, Paranoid: true}),
		NewTWHJ(Options{Workers: workers, Paranoid: true, TimeWarpWindow: 40, TimeWarpSaveEvery: 4}),
		NewTWHJ(Options{Workers: workers, Paranoid: true, TimeWarpAdaptive: true, NoAffinity: true}),
	}
}

// randomWaves builds n random input assignments for circuit c.
func randomWaves(c *circuit.Circuit, n int, seed int64) []map[string]circuit.Value {
	rng := rand.New(rand.NewSource(seed))
	waves := make([]map[string]circuit.Value, n)
	for w := range waves {
		m := make(map[string]circuit.Value)
		for _, name := range c.InputNames() {
			m[name] = circuit.Value(rng.Intn(2))
		}
		waves[w] = m
	}
	return waves
}

// verifyAllEngines runs every engine on the circuit with random waves,
// checks each against the combinational oracle, and checks all results
// agree with the sequential reference.
func verifyAllEngines(t *testing.T, c *circuit.Circuit, nWaves int, seed int64) {
	t.Helper()
	waves := randomWaves(c, nWaves, seed)
	period := c.SettleTime() + 10

	ref, err := RunAndVerify(NewSequential(Options{}), c, waves, period)
	if err != nil {
		t.Fatalf("%s: sequential reference: %v", c.Name, err)
	}
	if ref.TotalEvents == 0 {
		t.Fatalf("%s: reference processed no events", c.Name)
	}
	for _, e := range testEngines(4) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			res, err := RunAndVerify(e, c, waves, period)
			if err != nil {
				t.Fatalf("%s on %s: %v", e.Name(), c.Name, err)
			}
			if ok, diff := SameOutputs(ref, res); !ok {
				t.Fatalf("%s disagrees with sequential reference: %s", e.Name(), diff)
			}
		})
	}
}

func TestFullAdderAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.FullAdder(), 16, 1)
}

func TestMux2AllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.Mux2(), 12, 2)
}

func TestParityChainAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.ParityChain(24), 6, 3)
}

func TestFanoutTreeAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.FanoutTree(5), 6, 4)
}

func TestKoggeStone16AllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.KoggeStone(16), 8, 5)
}

func TestTreeMultiplier6AllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.TreeMultiplier(6), 4, 6)
}

func TestRandomCircuitsAllEngines(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		c := circuit.RandomDAG(circuit.RandomConfig{Inputs: 8, Gates: 120, Outputs: 6, Seed: seed})
		verifyAllEngines(t, c, 5, seed)
	}
}

// TestAdderAddsViaDES is the end-to-end functional check: drive the
// Kogge-Stone adder through the event-driven simulator and read the sum.
func TestAdderAddsViaDES(t *testing.T) {
	const width = 12
	c := circuit.KoggeStone(width)
	rng := rand.New(rand.NewSource(7))
	period := c.SettleTime() + 10
	var waves []map[string]circuit.Value
	var operands [][2]uint64
	for i := 0; i < 10; i++ {
		a := rng.Uint64() & ((1 << width) - 1)
		b := rng.Uint64() & ((1 << width) - 1)
		waves = append(waves, circuit.KoggeStoneAssign(width, a, b))
		operands = append(operands, [2]uint64{a, b})
	}
	for _, e := range []Engine{NewSequential(Options{}), NewHJ(Options{Workers: 4})} {
		stim := circuit.VectorWaves(c, waves, period)
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for w, ops := range operands {
			deadline := int64(w+1) * period
			outs := map[string]circuit.Value{}
			for name, h := range res.Outputs {
				if tv, ok := ValueAt(h, deadline); ok {
					outs[name] = tv.Value
				}
			}
			if got := circuit.KoggeStoneSum(width, outs); got != ops[0]+ops[1] {
				t.Fatalf("%s wave %d: %d+%d = %d", e.Name(), w, ops[0], ops[1], got)
			}
		}
	}
}

// TestMultiplierMultipliesViaDES drives the tree multiplier end to end.
func TestMultiplierMultipliesViaDES(t *testing.T) {
	const bits = 6
	c := circuit.TreeMultiplier(bits)
	period := c.SettleTime() + 10
	rng := rand.New(rand.NewSource(8))
	var waves []map[string]circuit.Value
	var operands [][2]uint64
	for i := 0; i < 8; i++ {
		a := rng.Uint64() & ((1 << bits) - 1)
		b := rng.Uint64() & ((1 << bits) - 1)
		waves = append(waves, circuit.TreeMultiplierAssign(bits, a, b))
		operands = append(operands, [2]uint64{a, b})
	}
	stim := circuit.VectorWaves(c, waves, period)
	res, err := NewHJ(Options{Workers: 4}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for w, ops := range operands {
		deadline := int64(w+1) * period
		outs := map[string]circuit.Value{}
		for name, h := range res.Outputs {
			if tv, ok := ValueAt(h, deadline); ok {
				outs[name] = tv.Value
			}
		}
		if got := circuit.TreeMultiplierProduct(bits, outs); got != ops[0]*ops[1] {
			t.Fatalf("wave %d: %d*%d = %d", w, ops[0], ops[1], got)
		}
	}
}

func TestEventCountsAgreeAcrossEngines(t *testing.T) {
	c := circuit.KoggeStone(8)
	waves := randomWaves(c, 5, 9)
	period := c.SettleTime() + 10
	stim := circuit.VectorWaves(c, waves, period)
	var counts []int64
	for _, e := range testEngines(3) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		counts = append(counts, res.TotalEvents)
	}
	for i, n := range counts {
		if n != counts[0] {
			t.Fatalf("engine %d processed %d events, engine 0 processed %d", i, n, counts[0])
		}
	}
}

func TestEmptyStimulusTerminates(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.NewStimulus(c) // no transitions at all
	for _, e := range testEngines(2) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.TotalEvents != 0 {
			t.Fatalf("%s: %d events from empty stimulus", e.Name(), res.TotalEvents)
		}
	}
}

func TestStimulusMismatchRejected(t *testing.T) {
	c := circuit.FullAdder()
	bad := &circuit.Stimulus{ByInput: make([][]circuit.Transition, 1)}
	for _, e := range testEngines(2) {
		if _, err := e.Run(c, bad); err == nil {
			t.Fatalf("%s accepted a mismatched stimulus", e.Name())
		}
	}
}

// TestOutputHistoryMonotone checks the causality invariant observable at
// the outputs: event timestamps never decrease.
func TestOutputHistoryMonotone(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	waves := randomWaves(c, 6, 10)
	stim := circuit.VectorWaves(c, waves, c.SettleTime()+10)
	for _, e := range testEngines(4) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for name, h := range res.Outputs {
			for i := 1; i < len(h); i++ {
				if h[i].Time < h[i-1].Time {
					t.Fatalf("%s: output %q timestamps decrease at %d: %v -> %v",
						e.Name(), name, i, h[i-1], h[i])
				}
			}
		}
	}
}

func TestDiscardOutputs(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 11), c.SettleTime()+10)
	res, err := NewSequential(Options{DiscardOutputs: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range res.Outputs {
		if len(h) != 0 {
			t.Fatalf("output %q recorded %d samples with DiscardOutputs", name, len(h))
		}
	}
	if res.TotalEvents == 0 {
		t.Fatal("DiscardOutputs must not skip event processing")
	}
}

func TestHJStatsPopulated(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 12), c.SettleTime()+10)
	res, err := NewHJ(Options{Workers: 4}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if res.HJ.Spawns == 0 || res.HJ.LockAcquires == 0 {
		t.Fatalf("HJ stats empty: %+v", res.HJ)
	}
	if res.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", res.Workers)
	}
}

func TestResultEngineNamesMatch(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.SingleWave(c, map[string]circuit.Value{"a": 1})
	for _, e := range testEngines(2) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Engine != e.Name() {
			t.Errorf("Result.Engine = %q, engine Name() = %q", res.Engine, e.Name())
		}
	}
}

func TestGaloisStatsPopulated(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 13), c.SettleTime()+10)
	res, err := NewGalois(Options{Workers: 4}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Galois.Committed == 0 {
		t.Fatalf("Galois stats empty: %+v", res.Galois)
	}
}

func TestEngineNames(t *testing.T) {
	want := map[string]Engine{
		"seq":            NewSequential(Options{}),
		"seq-pq":         NewSequentialPQ(Options{}),
		"hj":             NewHJ(Options{}),
		"hj-pq":          NewHJ(Options{PerNodePQ: true}),
		"hj-nodelocks":   NewHJ(Options{PerNodeLocks: true}),
		"hj-notemp":      NewHJ(Options{NoTempQueue: true}),
		"hj-naive":       NewHJ(Options{NaiveRespawn: true}),
		"hj-isolated":    NewHJ(Options{GlobalIsolated: true}),
		"hj-mutex":       NewHJ(Options{MutexLocks: true}),
		"hj-noaff":       NewHJ(Options{NoAffinity: true}),
		"hj-steal1":      NewHJ(Options{SingleSteal: true}),
		"galois":         NewGalois(Options{}),
		"galois-fine":    NewGaloisFine(Options{}),
		"galois-ordered": NewOrdered(Options{}),
		"actor":          NewActor(Options{}),
		"lp":             NewLP(Options{}),
		"lp-hj":          NewLPHJ(Options{}),
	}
	for name, e := range want {
		if e.Name() != name {
			t.Errorf("Name() = %q, want %q", e.Name(), name)
		}
	}
}

func TestResultStringAndThroughput(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.VectorWaves(c, randomWaves(c, 2, 14), c.SettleTime()+10)
	res, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty Result.String")
	}
	if res.EventsPerSec() <= 0 {
		t.Fatalf("EventsPerSec = %v", res.EventsPerSec())
	}
	zero := &Result{}
	if zero.EventsPerSec() != 0 {
		t.Fatal("zero result should report 0 throughput")
	}
}

func TestSettledValues(t *testing.T) {
	h := []TimedValue{{1, 0}, {1, 1}, {3, 0}, {3, 0}, {5, 1}}
	s := SettledValues(h)
	want := []TimedValue{{1, 1}, {3, 0}, {5, 1}}
	if len(s) != len(want) {
		t.Fatalf("SettledValues = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SettledValues[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if SettledValues(nil) != nil {
		t.Fatal("SettledValues(nil) should be nil")
	}
}

func TestValueAt(t *testing.T) {
	h := []TimedValue{{2, 1}, {5, 0}, {9, 1}}
	for _, tc := range []struct {
		t    int64
		ok   bool
		want circuit.Value
	}{
		{1, false, 0}, {2, true, 1}, {4, true, 1}, {5, true, 0}, {100, true, 1},
	} {
		got, ok := ValueAt(h, tc.t)
		if ok != tc.ok || (ok && got.Value != tc.want) {
			t.Errorf("ValueAt(%d) = %v, %v", tc.t, got, ok)
		}
	}
}

func TestSameOutputsDetectsDifferences(t *testing.T) {
	mk := func(events int64, outs map[string][]TimedValue) *Result {
		return &Result{Engine: "x", TotalEvents: events, Outputs: outs}
	}
	a := mk(5, map[string][]TimedValue{"y": {{1, 0}}})
	if ok, _ := SameOutputs(a, mk(5, map[string][]TimedValue{"y": {{1, 0}}})); !ok {
		t.Fatal("identical results reported different")
	}
	if ok, msg := SameOutputs(a, mk(6, map[string][]TimedValue{"y": {{1, 0}}})); ok || msg == "" {
		t.Fatal("event count difference missed")
	}
	if ok, _ := SameOutputs(a, mk(5, map[string][]TimedValue{"z": {{1, 0}}})); ok {
		t.Fatal("output name difference missed")
	}
	if ok, _ := SameOutputs(a, mk(5, map[string][]TimedValue{"y": {{1, 1}}})); ok {
		t.Fatal("value difference missed")
	}
	if ok, _ := SameOutputs(a, mk(5, map[string][]TimedValue{"y": {{1, 0}, {2, 1}}})); ok {
		t.Fatal("length difference missed")
	}
}

func TestVerifyRejectsShortPeriod(t *testing.T) {
	c := circuit.FullAdder()
	waves := randomWaves(c, 2, 15)
	if _, err := RunAndVerify(NewSequential(Options{}), c, waves, 1); err == nil {
		t.Fatal("RunAndVerify accepted a period shorter than settle time")
	}
}

func TestWorkerSweepHJ(t *testing.T) {
	c := circuit.KoggeStone(8)
	waves := randomWaves(c, 4, 16)
	period := c.SettleTime() + 10
	for workers := 1; workers <= 8; workers *= 2 {
		res, err := RunAndVerify(NewHJ(Options{Workers: workers}), c, waves, period)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Fatalf("Workers = %d, want %d", res.Workers, workers)
		}
	}
}

func TestRepeatedRunsSameEngine(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	waves := randomWaves(c, 3, 17)
	period := c.SettleTime() + 10
	e := NewHJ(Options{Workers: 4})
	var first *Result
	for i := 0; i < 5; i++ {
		res, err := RunAndVerify(e, c, waves, period)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if first == nil {
			first = res
			continue
		}
		if ok, diff := SameOutputs(first, res); !ok {
			t.Fatalf("run %d differs: %s", i, diff)
		}
	}
}

func ExampleNewSequential() {
	c := circuit.FullAdder()
	stim := circuit.SingleWave(c, map[string]circuit.Value{"a": 1, "b": 1, "cin": 0})
	res, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		panic(err)
	}
	sum, _ := ValueAt(res.Outputs["sum"], c.SettleTime())
	cout, _ := ValueAt(res.Outputs["cout"], c.SettleTime())
	fmt.Printf("1+1+0 = sum %s carry %s\n", sum.Value, cout.Value)
	// Output: 1+1+0 = sum 0 carry 1
}
