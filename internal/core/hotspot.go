package core

import (
	"fmt"
	"sort"

	"hjdes/internal/circuit"
)

// Hotspot describes one node's share of the simulation's event
// processing.
type Hotspot struct {
	ID     circuit.NodeID
	Kind   circuit.Kind
	Name   string // terminal name, if any
	Events int64
	Share  float64 // fraction of total events
}

func (h Hotspot) String() string {
	label := h.Name
	if label == "" {
		label = fmt.Sprintf("%s#%d", h.Kind, h.ID)
	}
	return fmt.Sprintf("%-12s %10d events (%5.2f%%)", label, h.Events, 100*h.Share)
}

// TopHotspots ranks the circuit's nodes by processed-event count from a
// run's NodeEvents and returns the k busiest (fewer if the circuit is
// smaller). It identifies the gates whose locks are most contended —
// useful when tuning the Section 4.5 optimizations for a new circuit.
func TopHotspots(c *circuit.Circuit, res *Result, k int) []Hotspot {
	if len(res.NodeEvents) != len(c.Nodes) || k <= 0 {
		return nil
	}
	spots := make([]Hotspot, 0, len(c.Nodes))
	for i := range c.Nodes {
		if res.NodeEvents[i] == 0 {
			continue
		}
		n := &c.Nodes[i]
		share := 0.0
		if res.TotalEvents > 0 {
			share = float64(res.NodeEvents[i]) / float64(res.TotalEvents)
		}
		spots = append(spots, Hotspot{
			ID: n.ID, Kind: n.Kind, Name: n.Name,
			Events: res.NodeEvents[i], Share: share,
		})
	}
	sort.Slice(spots, func(a, b int) bool {
		if spots[a].Events != spots[b].Events {
			return spots[a].Events > spots[b].Events
		}
		return spots[a].ID < spots[b].ID
	})
	if len(spots) > k {
		spots = spots[:k]
	}
	return spots
}
