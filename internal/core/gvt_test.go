package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hjdes/internal/circuit"
)

// Asynchronous GVT safety: a published GVT must never exceed any LP's
// local virtual time minus its in-transit sends — equivalently, no
// event may ever be delivered with a timestamp below the GVT its
// receiver can observe. These tests attack the Mattern-style
// double-read snapshot directly with delayed and duplicated deliveries,
// and then again through the full engine with the Paranoid in-engine
// assertion armed (a sub-GVT delivery panics the run).

func newGVTHarness(n int) *twhjRun {
	r := &twhjRun{
		cells:     make([]gvtCell, n),
		snapSent:  make([]int64, n),
		snapRecvd: make([]int64, n),
	}
	for i := range r.cells {
		r.cells[i].floor.Store(TimeInfinity)
	}
	r.gvt.Store(-1)
	return r
}

// TestGVTSnapshotQuiescent pins the snapshot's base cases: balanced
// counters yield the minimum floor; any imbalance (a message in
// transit, or a duplicated delivery counted without its send) aborts.
func TestGVTSnapshotQuiescent(t *testing.T) {
	r := newGVTHarness(3)
	if g, ok := r.snapshotGVT(); !ok || g != TimeInfinity {
		t.Fatalf("idle snapshot = (%d, %v), want (inf, true)", g, ok)
	}
	r.cells[0].floor.Store(40)
	r.cells[1].floor.Store(25)
	r.cells[2].floor.Store(90)
	if g, ok := r.snapshotGVT(); !ok || g != 25 {
		t.Fatalf("quiescent snapshot = (%d, %v), want (25, true)", g, ok)
	}
	// One message in transit: sent counted, receive not yet visible.
	r.cells[0].sent.Add(1)
	if _, ok := r.snapshotGVT(); ok {
		t.Fatal("snapshot succeeded with a message in transit")
	}
	// Duplicated delivery: a receive counted twice can make one cell's
	// counters look balanced against another's — totals still differ.
	r.cells[1].recvd.Add(2)
	if _, ok := r.snapshotGVT(); ok {
		t.Fatal("snapshot succeeded with a duplicated delivery imbalance")
	}
	r.cells[1].recvd.Add(-1)
	if g, ok := r.snapshotGVT(); !ok || g != 25 {
		t.Fatalf("rebalanced snapshot = (%d, %v), want (25, true)", g, ok)
	}
}

// TestGVTSnapshotUnderTraffic runs protocol-faithful actors — floor
// lowered before the receive is counted, send counted before the
// message becomes deliverable, floor republished only after sends are
// visible — while a sweeper publishes snapshots exactly like the
// engine's sweep goroutine. Deliveries are randomly delayed (a message
// may sit invisible in transit for a long time) and randomly duplicated
// via an anti-message twin (its own send/receive accounting, same
// timestamp, like a positive/anti pair). Every delivery asserts the
// published GVT never got past the message's timestamp.
func TestGVTSnapshotUnderTraffic(t *testing.T) {
	const (
		actors   = 4
		messages = 400
	)
	r := newGVTHarness(actors)
	type msg struct {
		to   int
		time int64
		dup  bool
	}
	var violated atomic.Int64
	ch := make(chan msg, actors*8)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Sweeper: publish monotone GVT from successful snapshots, as the
	// engine's sweep does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g, ok := r.snapshotGVT(); ok && g > r.gvt.Load() {
				r.gvt.Store(g)
			}
			runtime.Gosched()
		}
	}()

	// Deliverers: drain messages after a random delay, lowering the
	// receiver's floor BEFORE counting the receive.
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for m := range ch {
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
				if g := r.gvt.Load(); m.time < g {
					violated.Store(m.time - g)
				}
				cell := &r.cells[m.to]
				for {
					f := cell.floor.Load()
					if m.time >= f || cell.floor.CompareAndSwap(f, m.time) {
						break
					}
				}
				cell.recvd.Add(1)
			}
		}(int64(100 + d))
	}

	// Senders: walk local virtual time forward; each step counts the
	// send, exposes the message (possibly duplicated as an anti twin),
	// then republishes the floor at the new LVT.
	var sendWG sync.WaitGroup
	for a := 0; a < actors; a++ {
		sendWG.Add(1)
		go func(id int) {
			defer sendWG.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			cell := &r.cells[id]
			lvt := int64(0)
			cell.floor.Store(lvt)
			for i := 0; i < messages; i++ {
				lvt += int64(1 + rng.Intn(5))
				to := rng.Intn(actors)
				n := 1
				if rng.Intn(8) == 0 {
					n = 2 // duplicated delivery: positive + anti twin
				}
				cell.sent.Add(int64(n))
				for k := 0; k < n; k++ {
					ch <- msg{to: to, time: lvt, dup: k > 0}
				}
				// Floor republished only after the sends are visible, so
				// the in-transit messages are covered by the counters.
				cell.floor.Store(lvt)
				if rng.Intn(16) == 0 {
					runtime.Gosched()
				}
			}
			cell.floor.Store(TimeInfinity)
		}(a)
	}
	sendWG.Wait()
	close(ch)
	close(stop)
	wg.Wait()
	if d := violated.Load(); d != 0 {
		t.Fatalf("delivery observed GVT %d past its own timestamp", -d)
	}
	// All traffic drained and processed: once the owners republish their
	// floors (as the engine's slice epilogue does after draining), the
	// snapshot must succeed at infinity.
	if g, ok := r.snapshotGVT(); !ok || g > TimeInfinity {
		t.Fatalf("drained snapshot = (%d, %v), want success", g, ok)
	}
	for i := range r.cells {
		r.cells[i].floor.Store(TimeInfinity)
	}
	if g, ok := r.snapshotGVT(); !ok || g != TimeInfinity {
		t.Fatalf("republished snapshot = (%d, %v), want (inf, true)", g, ok)
	}
}

// TestGVTEngineParanoidStress arms the engine's own safety assertion (a
// received event with a timestamp below published GVT panics the run)
// and stresses it with rollback storms — which flood the system with
// positive/anti duplicate pairs — across worker counts. Any premature
// fossil horizon surfaces as a run error, not a silent wrong answer.
func TestGVTEngineParanoidStress(t *testing.T) {
	c := circuit.KoggeStone(12)
	stim := circuit.VectorWaves(c, randomWaves(c, 5, 97), c.SettleTime()+10)
	ref, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			hooks := &ChaosHooks{Rollback: func(node int32, round int) bool {
				return rng.Int63()&3 == 0
			}}
			var mu sync.Mutex
			locked := *hooks
			locked.Rollback = func(node int32, round int) bool {
				mu.Lock()
				defer mu.Unlock()
				return hooks.Rollback(node, round)
			}
			res, err := NewTWHJ(Options{Workers: workers, Paranoid: true, Chaos: &locked}).Run(c, stim)
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if ok, diff := SameOutputs(ref, res); !ok {
				t.Fatalf("workers=%d seed=%d diverged: %s", workers, seed, diff)
			}
			if res.TimeWarp.Rollbacks == 0 && workers > 1 {
				t.Logf("workers=%d seed=%d: storm produced no rollbacks", workers, seed)
			}
		}
	}
}
