package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// TestSoakAllEnginesOnPaperCircuits runs every engine configuration on
// the paper's actual evaluation circuits at a moderate event volume and
// cross-checks everything. It is the closest thing to the paper's full
// experimental matrix that still fits in a test run; -short skips it.
func TestSoakAllEnginesOnPaperCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cases := []struct {
		c     *circuit.Circuit
		waves int
		// Deep multiplier trees are hostile to fine-grain optimism —
		// every upstream glitch cascade invalidates downstream
		// speculation, so both Time Warp engines roll back about as many
		// events as they commit (DESIGN §16). One barrier-timewarp row
		// keeps that regime covered; the tw-hj variants soak on the
		// adders, where optimism actually pays.
		skipTWHJ bool
	}{
		{circuit.TreeMultiplier(12), 1, true},
		{circuit.KoggeStone(64), 3, false},
		{circuit.KoggeStone(128), 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.c.Name, func(t *testing.T) {
			waves := randomWaves(tc.c, tc.waves, 71)
			period := tc.c.SettleTime() + 10
			stim := circuit.VectorWaves(tc.c, waves, period)
			ref, err := NewSequential(Options{Paranoid: true}).Run(tc.c, stim)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyAgainstOracle(tc.c, waves, period, ref); err != nil {
				t.Fatal(err)
			}
			all := testEngines(4)
			engines := all[:0:0]
			for _, e := range all {
				if tc.skipTWHJ && twhjName(e.Name()) {
					continue
				}
				engines = append(engines, e)
			}
			engines = append(engines, NewTimeWarp(Options{Workers: 2}))
			for _, e := range engines {
				res, err := e.Run(tc.c, stim)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if ok, diff := SameOutputs(ref, res); !ok {
					t.Fatalf("%s: %s", e.Name(), diff)
				}
			}
		})
	}
}

// twhjName reports whether an engine name belongs to the barrier-free
// optimistic family ("tw-hj", "tw-hj-w40", ...).
func twhjName(name string) bool {
	return name == "tw-hj" || (len(name) > 6 && name[:6] == "tw-hj-")
}
