package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// TestSoakAllEnginesOnPaperCircuits runs every engine configuration on
// the paper's actual evaluation circuits at a moderate event volume and
// cross-checks everything. It is the closest thing to the paper's full
// experimental matrix that still fits in a test run; -short skips it.
func TestSoakAllEnginesOnPaperCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cases := []struct {
		c     *circuit.Circuit
		waves int
	}{
		{circuit.TreeMultiplier(12), 1},
		{circuit.KoggeStone(64), 3},
		{circuit.KoggeStone(128), 2},
	}
	for _, tc := range cases {
		t.Run(tc.c.Name, func(t *testing.T) {
			waves := randomWaves(tc.c, tc.waves, 71)
			period := tc.c.SettleTime() + 10
			stim := circuit.VectorWaves(tc.c, waves, period)
			ref, err := NewSequential(Options{Paranoid: true}).Run(tc.c, stim)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyAgainstOracle(tc.c, waves, period, ref); err != nil {
				t.Fatal(err)
			}
			engines := append(testEngines(4), NewTimeWarp(Options{Workers: 2}))
			for _, e := range engines {
				res, err := e.Run(tc.c, stim)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if ok, diff := SameOutputs(ref, res); !ok {
					t.Fatalf("%s: %s", e.Name(), diff)
				}
			}
		})
	}
}
