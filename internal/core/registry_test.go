package core

import (
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers the engine registry from many
// goroutines; run under -race this pins down the RWMutex guarantees of
// RegisterEngine / NewEngine / EngineNames.
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			// All writers race on one name: replacement is legal, and a
			// single leftover entry keeps EngineNames clean for the other
			// tests in this package.
			for j := 0; j < 50; j++ {
				RegisterEngine("scratch", NewSequential)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := NewEngine("seq", Options{}); err != nil {
					t.Errorf("NewEngine(seq): %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if names := EngineNames(); len(names) == 0 {
					t.Error("EngineNames returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()

	// The scratch name stays registered (the registry has no Unregister
	// on purpose) and must resolve.
	if _, err := NewEngine("scratch", Options{}); err != nil {
		t.Fatalf("registered scratch engine did not resolve: %v", err)
	}
	if _, err := NewEngine("no-such-engine", Options{}); err == nil {
		t.Fatal("unknown engine name resolved")
	}
}
