package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers the engine registry from many
// goroutines; run under -race this pins down the RWMutex guarantees of
// RegisterEngine / NewEngine / EngineNames. Every writer registers a
// distinct name: duplicate registration is a panic, not a replacement.
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(3)
		go func(writer int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				RegisterEngine(fmt.Sprintf("scratch-%d-%d", writer, j), NewSequential)
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := NewEngine("seq", Options{}); err != nil {
					t.Errorf("NewEngine(seq): %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if names := EngineNames(); len(names) == 0 {
					t.Error("EngineNames returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Registered names stay registered (the registry has no Unregister on
	// purpose) and must resolve.
	if _, err := NewEngine("scratch-0-0", Options{}); err != nil {
		t.Fatalf("registered scratch engine did not resolve: %v", err)
	}
	if _, err := NewEngine("no-such-engine", Options{}); err == nil {
		t.Fatal("unknown engine name resolved")
	}
}

// TestRegisterEngineDuplicatePanics is the shadowing regression: a
// second registration under an existing name — including any of the
// init-time built-ins — must panic instead of silently replacing the
// real engine. Pre-fix, the typo'd factory won and every later
// NewEngine("hj") quietly built the impostor.
func TestRegisterEngineDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, f EngineFactory, wantSub string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("RegisterEngine(%q) did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, wantSub) {
				t.Fatalf("RegisterEngine(%q) panic %q, want it to mention %q", name, msg, wantSub)
			}
		}()
		RegisterEngine(name, f)
	}

	RegisterEngine("registry-dup-probe", NewSequential)
	mustPanic("registry-dup-probe", NewSequentialPQ, "already registered")
	// The built-in table is protected the same way.
	mustPanic("hj", NewSequential, "already registered")
	mustPanic("", NewSequential, "empty name")
	mustPanic("registry-nil-probe", nil, "nil factory")

	// The original registration survives the rejected duplicate.
	eng, err := NewEngine("registry-dup-probe", Options{})
	if err != nil {
		t.Fatalf("original registration lost: %v", err)
	}
	if eng.Name() != NewSequential(Options{}).Name() {
		t.Fatalf("duplicate registration replaced the original: got %q", eng.Name())
	}
}

// TestEngineNamesSorted is the regression test for the -engine help
// text shared by dessim and paperbench: the listing must be sorted,
// stable across calls, include every engine family the binaries
// document, and hand out a fresh copy each time (a caller mutating the
// returned slice must not corrupt the registry's view).
func TestEngineNamesSorted(t *testing.T) {
	names := EngineNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("EngineNames not sorted: %v", names)
	}
	for _, want := range []string{"seq", "hj", "lp", "lp-hj", "galois", "actor", "timewarp", "tw-hj"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("EngineNames missing %q: %v", want, names)
		}
	}
	names[0] = "zzz-mutated"
	again := EngineNames()
	if !sort.StringsAreSorted(again) {
		t.Fatalf("EngineNames affected by caller mutation: %v", again)
	}
	for _, n := range again {
		if n == "zzz-mutated" {
			t.Fatalf("EngineNames returned a shared slice: %v", again)
		}
	}
}
