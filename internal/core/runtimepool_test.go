package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"hjdes/internal/circuit"
)

// poolTestJob runs one hj simulation on a pool-owned runtime and
// returns its result, the way the serving layer dispatches jobs.
func poolTestJob(t *testing.T, pool *RuntimePool, workers int, seed int64) *Result {
	t.Helper()
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, seed)
	rt := pool.Get(workers)
	defer func() {
		if err := pool.Put(rt); err != nil {
			t.Fatalf("healthy runtime failed the reuse check: %v", err)
		}
	}()
	eng := NewHJ(Options{Workers: workers, Runtime: rt, DiscardOutputs: true})
	res, err := eng.Run(c, stim)
	if err != nil {
		t.Fatalf("pooled run: %v", err)
	}
	return res
}

// TestRuntimePoolReusesWorkers pins the serving-path contract: after the
// first job warms the pool, subsequent jobs reuse the same runtime — no
// new worker goroutines, one runtime ever constructed — and the merged
// results match a fresh-runtime run.
func TestRuntimePoolReusesWorkers(t *testing.T) {
	const workers = 4
	pool := NewRuntimePool(2)
	defer pool.Close()

	ref := poolTestJob(t, pool, workers, 7) // warm: constructs the runtime
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		res := poolTestJob(t, pool, workers, 7)
		if ok, diff := SameOutputs(ref, res); !ok {
			t.Fatalf("pooled run %d diverged: %s", i, diff)
		}
		if n := runtime.NumGoroutine(); n > base+2 {
			t.Fatalf("job %d leaked goroutines: %d running vs %d after warmup", i, n, base)
		}
	}
	s := pool.Stats()
	if s.Created != 1 {
		t.Fatalf("pool constructed %d runtimes for 6 same-shape jobs, want 1", s.Created)
	}
	if s.Reused != 5 {
		t.Fatalf("pool reused %d times, want 5", s.Reused)
	}
	if s.Discarded != 0 {
		t.Fatalf("healthy runtimes discarded: %d", s.Discarded)
	}
}

// TestRuntimePoolDefaultWorkersReuse pins the Get/Put key agreement for
// the default worker count: Get(0) must reuse a runtime returned by Put,
// whose key is the runtime's resolved (GOMAXPROCS) count, never 0. The
// serving path submits Workers:0 jobs almost exclusively, so a key
// mismatch here silently rebuilds every runtime.
func TestRuntimePoolDefaultWorkersReuse(t *testing.T) {
	pool := NewRuntimePool(2)
	defer pool.Close()
	poolTestJob(t, pool, 0, 13)
	poolTestJob(t, pool, 0, 13)
	poolTestJob(t, pool, runtime.GOMAXPROCS(0), 13) // same shape, explicit count
	s := pool.Stats()
	if s.Created != 1 || s.Reused != 2 {
		t.Fatalf("default-workers pooling: created=%d reused=%d, want 1/2", s.Created, s.Reused)
	}
}

// TestRuntimePoolDiscardsPoisonedRuntime cancels a pooled run mid-flight
// and requires Put to fail the health check, shut the runtime down, and
// never hand it to the next job.
func TestRuntimePoolDiscardsPoisonedRuntime(t *testing.T) {
	const workers = 2
	pool := NewRuntimePool(2)
	defer pool.Close()
	base := runtime.NumGoroutine()

	c := circuit.KoggeStone(32)
	stim := circuit.RandomStimulus(c, 200, c.SettleTime()+10, 3)
	rt := pool.Get(workers)
	eng := NewHJ(Options{Workers: workers, Runtime: rt, DiscardOutputs: true}).(ContextEngine)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // poison: the run dies on the canceled context
	if _, err := eng.RunContext(ctx, c, stim); err == nil {
		t.Fatal("canceled pooled run reported success")
	}
	if err := pool.Put(rt); err == nil {
		t.Fatal("poisoned runtime passed the reuse health check")
	}
	if got := pool.Stats().Discarded; got != 1 {
		t.Fatalf("Discarded = %d, want 1", got)
	}

	// The next job must get a fresh, working runtime.
	res := poolTestJob(t, pool, workers, 5)
	if res.TotalEvents == 0 {
		t.Fatal("post-discard job processed no events")
	}
	settleGoroutines(t, base+workers) // one healthy runtime may stay pooled
}

// TestRuntimePoolCloseShutsDownIdle verifies Close reaps parked worker
// goroutines and later Puts do not resurrect the pool.
func TestRuntimePoolCloseShutsDownIdle(t *testing.T) {
	base := runtime.NumGoroutine()
	pool := NewRuntimePool(4)
	poolTestJob(t, pool, 3, 11)
	pool.Close()
	if got := pool.Stats().Idle; got != 0 {
		t.Fatalf("idle after Close = %d, want 0", got)
	}
	rt := pool.Get(3) // throwaway after Close
	if err := pool.Put(rt); err != nil {
		t.Fatalf("post-Close Put: %v", err)
	}
	if got := pool.Stats().Idle; got != 0 {
		t.Fatalf("Put after Close re-pooled a runtime (idle=%d)", got)
	}
	settleGoroutines(t, base)
}

// TestQuiescentFlagsDirtyRuntime drives hj.Runtime.Quiescent directly
// through the engine path: a clean run is quiescent, a canceled one is
// not, and the check stays stable over time (no background activity).
func TestQuiescentFlagsDirtyRuntime(t *testing.T) {
	pool := NewRuntimePool(1)
	defer pool.Close()
	rt := pool.Get(2)
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 3, c.SettleTime()+10, 1)
	if _, err := NewHJ(Options{Workers: 2, Runtime: rt, DiscardOutputs: true}).Run(c, stim); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := rt.Quiescent(); err != nil {
			t.Fatalf("clean runtime not quiescent (check %d): %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	rt.Cancel()
	if err := rt.Quiescent(); err == nil {
		t.Fatal("canceled runtime reported quiescent")
	}
	pool.Put(rt) // discards
}
