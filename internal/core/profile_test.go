package core

import (
	"testing"

	"hjdes/internal/circuit"
)

func TestProfileParityChainIsSerial(t *testing.T) {
	c := circuit.ParityChain(16)
	profile, err := ProfileCircuit(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) == 0 {
		t.Fatal("empty profile")
	}
	// A linear chain admits only a little overlap; available parallelism
	// must stay far below the one of a wide circuit — near the number of
	// inputs at the start, then ~1 down the chain.
	tail := profile[len(profile)/2:]
	for _, p := range tail {
		if p > 3 {
			t.Fatalf("chain tail parallelism %d, want <= 3 (profile %v)", p, profile)
		}
	}
}

func TestProfileMultiplierBulge(t *testing.T) {
	// Figure 1's shape: parallelism starts small (few input ports),
	// grows through the fanout-heavy middle, and shrinks toward the
	// outputs.
	c := circuit.TreeMultiplier(6)
	profile, err := ProfileCircuit(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) < 5 {
		t.Fatalf("profile too short: %v", profile)
	}
	peak := MaxParallelism(profile)
	first, last := profile[0], profile[len(profile)-1]
	if peak <= first || peak <= last {
		t.Fatalf("no bulge: first=%d peak=%d last=%d (profile %v)", first, peak, last, profile)
	}
	if peak < 8 {
		t.Fatalf("peak parallelism %d implausibly low for a 6-bit multiplier", peak)
	}
}

func TestProfileMatchesSequentialResults(t *testing.T) {
	// Profiling executes the whole simulation; it must process the same
	// events as the plain sequential engine.
	c := circuit.KoggeStone(8)
	stim := circuit.RandomStimulus(c, 2, c.SettleTime()+10, 3)
	res, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := ParallelismProfile(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, p := range profile {
		total += p
	}
	if total == 0 {
		t.Fatal("profile executed nothing")
	}
	_ = res // the engine run validates the stimulus is simulatable
}

func TestProfileHelpers(t *testing.T) {
	if MaxParallelism(nil) != 0 {
		t.Error("MaxParallelism(nil)")
	}
	if MeanParallelism(nil) != 0 {
		t.Error("MeanParallelism(nil)")
	}
	if MaxParallelism([]int{1, 5, 2}) != 5 {
		t.Error("MaxParallelism")
	}
	if MeanParallelism([]int{2, 4}) != 3 {
		t.Error("MeanParallelism")
	}
}

func TestProfileValidatesStimulus(t *testing.T) {
	c := circuit.FullAdder()
	bad := &circuit.Stimulus{ByInput: make([][]circuit.Transition, 1)}
	if _, err := ParallelismProfile(c, bad); err == nil {
		t.Fatal("profile accepted mismatched stimulus")
	}
}
