package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hjdes/internal/circuit"
)

// poisonCircuit builds a small circuit with a Poison gate in the middle:
// the first event processed by that gate panics inside whatever engine
// worker happens to run it.
func poisonCircuit() *circuit.Circuit {
	b := circuit.NewBuilder("poison")
	a := b.Input("a")
	c := b.Input("c")
	g := b.And(a, c)
	x := b.Xor(a, c)
	p := b.Gate1(circuit.Poison, g)
	b.Output("y", p)
	b.Output("z", x)
	return b.MustBuild()
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack for runtime helpers); a failed wait dumps all
// stacks. This is the no-leak check for contained failures.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicContainmentAllEngines drives every registered engine into a
// worker panic via the poison gate and requires a structured *EngineError
// (never a process crash) and no leaked goroutines.
func TestPanicContainmentAllEngines(t *testing.T) {
	c := poisonCircuit()
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 1)
	base := runtime.NumGoroutine()
	for _, name := range EngineNames() {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(name, Options{Workers: 4, Partitions: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Supervise(context.Background(), eng, c, stim,
				SuperviseConfig{Timeout: 30 * time.Second})
			if err == nil {
				t.Fatalf("%s: poison circuit ran to completion: %+v", name, res)
			}
			var ee *EngineError
			if !errors.As(err, &ee) {
				t.Fatalf("%s: error is %T (%v), want *EngineError", name, err, err)
			}
			if ee.Reason != FailPanic {
				t.Fatalf("%s: reason = %q, want %q (err: %v)", name, ee.Reason, FailPanic, err)
			}
			if ee.Value == nil {
				t.Fatalf("%s: EngineError has no recovered panic value: %v", name, err)
			}
			settleGoroutines(t, base)
		})
	}
}

// sleeper is a plain (non-cancelable) engine that just burns wall time.
type sleeper struct{ d time.Duration }

func (s *sleeper) Name() string { return "sleeper" }
func (s *sleeper) Run(*circuit.Circuit, *circuit.Stimulus) (*Result, error) {
	time.Sleep(s.d)
	return &Result{Engine: "sleeper"}, nil
}

func TestSuperviseTimeoutPlainEngine(t *testing.T) {
	start := time.Now()
	_, err := Supervise(context.Background(), &sleeper{d: 2 * time.Second}, nil, nil,
		SuperviseConfig{Timeout: 50 * time.Millisecond})
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Reason != FailTimeout {
		t.Fatalf("err = %v, want *EngineError with reason %q", err, FailTimeout)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timed-out run returned after %v; the caller should not wait out a plain engine", elapsed)
	}
}

// stuck is a cancelable engine whose progress counter never moves: the
// watchdog must trip and surface its diagnostics.
type stuck struct{}

func (s *stuck) Name() string     { return "stuck" }
func (s *stuck) Progress() uint64 { return 7 }
func (s *stuck) Diagnose() string { return "stuck: wedged on purpose" }
func (s *stuck) Run(c *circuit.Circuit, st *circuit.Stimulus) (*Result, error) {
	return s.RunContext(context.Background(), c, st)
}
func (s *stuck) RunContext(ctx context.Context, _ *circuit.Circuit, _ *circuit.Stimulus) (*Result, error) {
	<-ctx.Done()
	return nil, context.Cause(ctx)
}

func TestSuperviseStallWatchdog(t *testing.T) {
	base := runtime.NumGoroutine()
	_, err := Supervise(context.Background(), &stuck{}, nil, nil,
		SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 100 * time.Millisecond})
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Reason != FailStall {
		t.Fatalf("err = %v, want *EngineError with reason %q", err, FailStall)
	}
	if ee.Diag != "stuck: wedged on purpose" {
		t.Fatalf("Diag = %q, want the engine's snapshot", ee.Diag)
	}
	settleGoroutines(t, base)
}

func TestSuperviseCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Supervise(ctx, &stuck{}, nil, nil, SuperviseConfig{})
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Reason != FailCancel {
		t.Fatalf("err = %v, want *EngineError with reason %q", err, FailCancel)
	}
}

// TestSuperviseHealthyRunsUnchanged checks supervision is transparent for
// a passing run: same outputs as a direct Run.
func TestSuperviseHealthyRunsUnchanged(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 3)
	for _, name := range EngineNames() {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(name, Options{Workers: 2, Partitions: 2, Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := eng.Run(c, stim)
			if err != nil {
				t.Fatal(err)
			}
			eng2, _ := NewEngine(name, Options{Workers: 2, Partitions: 2, Paranoid: true})
			sup, err := Supervise(context.Background(), eng2, c, stim,
				SuperviseConfig{Timeout: 60 * time.Second, StallTimeout: 20 * time.Second})
			if err != nil {
				t.Fatalf("supervised run failed: %v", err)
			}
			if ok, diff := SameOutputs(direct, sup); !ok {
				t.Fatalf("supervised outputs differ from direct run: %s", diff)
			}
		})
	}
}

// TestEngineErrorFormat pins the rendered failure shape scripts grep for.
func TestEngineErrorFormat(t *testing.T) {
	ee := &EngineError{Engine: "lp", Unit: "lp 3", Reason: FailPanic, Value: "boom"}
	want := "core: lp lp 3: panic: boom"
	if got := ee.Error(); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	ee2 := &EngineError{Engine: "hj", Reason: FailStall, Err: fmt.Errorf("quiet")}
	if got := ee2.Error(); got != "core: hj: stall: quiet" {
		t.Fatalf("Error() = %q", got)
	}
}
