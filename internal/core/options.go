package core

import (
	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/obs"
)

// Options configures an engine run. The zero value gives the paper's
// fully optimized HJlib configuration (per-port deques + per-port locks +
// temp ready queue + spawn avoidance) with outputs recorded; the boolean
// fields switch individual Section 4.5 optimizations off for the ablation
// benchmarks.
type Options struct {
	// Workers is the parallel engines' worker count (ignored by the
	// sequential engines). Zero means GOMAXPROCS.
	Workers int

	// PerNodePQ replaces the per-input-port array deques of Section
	// 4.5.1 with a single priority queue per node — the data-structure
	// choice of the Galois-Java version. The Galois and SequentialPQ
	// engines always run in this mode. For the parallel HJ engine it
	// implies PerNodeLocks: a shared per-node queue cannot be guarded by
	// per-port locks.
	PerNodePQ bool

	// PerNodeLocks replaces per-input-port locks with one lock per node,
	// undoing the lock-granularity half of Section 4.5.1.
	PerNodeLocks bool

	// NoTempQueue disables the temporary ready-event queue of Section
	// 4.5.1: the node keeps its own input-port locks for the whole
	// processing run instead of releasing them after extracting ready
	// events.
	NoTempQueue bool

	// GlobalIsolated replaces fine-grained TryLock synchronization with
	// the coarse HJlib isolated construct (one global critical section),
	// the natural pre-extension HJlib formulation.
	GlobalIsolated bool

	// MutexLocks backs every lock with a sync.Mutex instead of the
	// paper's lightweight atomic-boolean CAS (Section 4.5.2's
	// AtomicBoolean-vs-ReentrantLock comparison).
	MutexLocks bool

	// Partitions is the LP engine's logical-process count: the circuit
	// is split into this many partitions, each simulated by one
	// goroutine exchanging Chandy–Misra–Bryant messages. Zero means
	// Workers (and GOMAXPROCS when that is also zero). Ignored by the
	// other engines.
	Partitions int

	// LPInboxCap bounds each logical process's inbox channel (LP engine
	// only). Zero means lp.DefaultInboxCap. Small values exercise the
	// protocol's backpressure path; the chaos tests run with capacity 1.
	LPInboxCap int

	// TimeWarpWindow bounds the optimistic engine's speculation: a node
	// never runs more than this far ahead of its earliest pending event.
	// Zero means unbounded (pure Time Warp). Ignored by other engines.
	TimeWarpWindow int64

	// TimeWarpSaveEvery is the optimistic engines' incremental state-saving
	// interval: pre-event state is snapshotted into the rollback log only on
	// every Nth processed event; a rollback between anchors coast-forwards
	// by replaying the logged events from the nearest earlier anchor. 0 or
	// 1 saves on every event (full state saving, the classic Jefferson
	// scheme). Semantics-preserving: the committed results are identical
	// for every interval. Honored by tw-hj; ignored by other engines.
	TimeWarpSaveEvery int

	// TimeWarpAdaptive lets the barrier-free optimistic engine (tw-hj)
	// throttle its own optimism: the GVT sweep widens or narrows the
	// effective speculation window from the observed rollback fraction
	// (halving it when rollbacks dominate progress, doubling it back when
	// speculation is clean). The adjustment changes only scheduling, never
	// results. When set with TimeWarpWindow == 0, the initial window is
	// seeded from the circuit's settle time. Ignored by other engines.
	TimeWarpAdaptive bool

	// Paranoid enables runtime assertion of the local causality
	// constraint inside the conservative engines: every port must see
	// nondecreasing event timestamps, or the run panics. Used by the
	// tests; costs one comparison per delivered event.
	Paranoid bool

	// NaiveRespawn disables the Section 4.5.3 avoidance of unnecessary
	// async statements: every run unconditionally respawns tasks for all
	// downstream neighbors instead of deduplicating scheduled nodes.
	NaiveRespawn bool

	// DiscardOutputs skips recording output-terminal event histories.
	// Benchmarks set it to keep memory flat; correctness tests leave it
	// unset.
	DiscardOutputs bool

	// NoAffinity disables the HJ engine's locality-aware wakeups: without
	// it, each node is assigned a home worker from a K-way partition of
	// the circuit and downstream wakeups are submitted to the owner's
	// mailbox (hj.AsyncIdxOn); with it, every wakeup is pushed on the
	// spawning worker's own deque and migrates only by stealing. Ablation
	// knob for the scheduling-locality experiments.
	NoAffinity bool

	// SingleSteal restores the classic one-task-per-round Chase–Lev steal
	// in the HJ runtime instead of batched steal-half. Ablation knob.
	SingleSteal bool

	// Metrics, when non-nil, receives every run's counters: the engine
	// folds Result.Metrics into the registry, and engines with live
	// sharded instruments (the LP batch-size histogram) write them here
	// during the run. Shared across runs; snapshot with Metrics.Snapshot.
	Metrics *obs.Registry

	// Trace, when non-nil, attaches a flight recorder to the run: engine
	// workers/LPs record scheduling and protocol events into per-worker
	// ring buffers. Drain with Trace.Events (Chrome export) or Trace.Tail
	// (failure diagnostics); the stall watchdog appends the tail to every
	// EngineError diag dump. Nil costs the hot paths one branch.
	Trace *obs.Recorder

	// CheckpointEvery is the snapshot cadence for checkpointed runs
	// (Supervise with a CheckpointStore, or Resilient with
	// CheckpointEvery > 0): a crash-consistent snapshot is saved at every
	// CheckpointEvery-th safe settle boundary of the stimulus. 1 saves at
	// every boundary; 0 leaves the engine's default (every boundary when
	// a store is supplied). Runs without a store never segment.
	CheckpointEvery int

	// Runtime, when non-nil, runs the hj engine family on this
	// caller-owned runtime instead of creating (and shutting down) a
	// fresh one per run — the steady-state serving path, where worker
	// goroutines are amortized across jobs through a core.RuntimePool.
	// The caller keeps ownership: the engine never Shutdowns it, and the
	// caller must check Runtime.Quiescent before reuse (a canceled or
	// panicked run poisons the runtime; return it to the pool, which
	// discards it). Ignored when Trace or Chaos is set — those wire
	// per-run hooks into the runtime at construction, so such runs get a
	// private runtime — and by every non-hj engine. The runtime's worker
	// count overrides Options.Workers.
	Runtime *hj.Runtime

	// Chaos, when non-nil, injects scheduler-level faults into the
	// parallel runtimes: Task fires before each task/LP body (may panic),
	// Wake may drop or delay a worker wakeup, Rollback may force a Time
	// Warp node to roll back. Wired by internal/chaos.SchedInjector; nil
	// costs the hot paths one branch.
	Chaos *ChaosHooks
}

// ChaosHooks are the scheduler-level fault-injection points the engines
// honor. All hooks must be safe for concurrent use and deterministic for
// a fixed seed (internal/chaos derives every decision from a hash of the
// seed and a per-hook call counter, never from shared RNG state). Any
// field may be nil.
type ChaosHooks struct {
	// Task runs before a task/actor/LP body with the executing unit's id
	// (worker id for hj/galois, node id for actor/timewarp, 0 for seq).
	// A panic here is contained by the engine's normal panic path and
	// surfaces as a retryable FailPanic EngineError.
	Task func(unit int)
	// Wake intercepts a single-worker wakeup (hj wakeOne). Returning
	// false swallows the wake token — a lost wake. The hook may also
	// sleep briefly before returning true — a delayed wakeup.
	// Cancellation broadcasts (wakeAll) never consult it, so a chaotic
	// run can always be stopped.
	Wake func() bool
	// Rollback, when it returns true, forces the Time Warp node to roll
	// back half its processed history in the given round (a rollback
	// storm). Semantics-preserving: anti-messages and re-execution make
	// the final state identical.
	Rollback func(node int32, round int) bool
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 0 // resolved by the runtimes (GOMAXPROCS)
	}
	return o.Workers
}

// storageMode selects the per-node event storage (Section 4.5.1).
type storageMode uint8

const (
	storePerPortDeque storageMode = iota // java.util.ArrayDeque analog
	storePerNodeHeap                     // java.util.PriorityQueue analog
)

func (o Options) storage() storageMode {
	if o.PerNodePQ {
		return storePerNodeHeap
	}
	return storePerPortDeque
}

// Engine runs a logic-circuit simulation: circuit + stimulus in, Result
// out. Implementations are stateless between runs (each Run builds fresh
// node state), so one Engine value may be reused, but a single Engine
// must not Run concurrently with itself.
type Engine interface {
	// Name identifies the engine (and its options) for reports.
	Name() string
	// Run simulates the circuit under the stimulus to completion.
	Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error)
}
