package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
)

// hjEngine is Algorithm 2: parallel simulation on the hj work-stealing
// runtime with the paper's TryLock/ReleaseAllLocks extension and the
// Section 4.5 optimizations (per-port deques and locks, temporary ready
// queue with early release of the node's own locks, lightweight
// AtomicBoolean locks, and avoidance of unnecessary async statements).
//
// Scheduling deviation from the paper, documented in DESIGN.md: the
// paper skips respawning a node both when it fails to lock itself and
// when a to-be-spawned neighbor is locked by others, relying on the
// holder to respawn it. Checking a neighbor's activity safely requires
// owning all of its ports, which the per-port protocol does not provide;
// instead each node carries a "scheduled" flag (test-and-set) that
// deduplicates tasks — achieving 4.5.3's goal (no redundant tasks in the
// deques) with a guarantee of no lost wakeups — and a task that loses a
// lock race conservatively reschedules itself.
type hjEngine struct {
	opts Options
	name string
	rt   atomic.Pointer[hj.Runtime] // current run's runtime, for Progress
}

// NewHJ returns the paper's parallel engine. The zero Options value gives
// the fully optimized configuration; see Options for the ablations.
func NewHJ(opts Options) Engine {
	name := "hj"
	switch {
	case opts.GlobalIsolated:
		name += "-isolated"
	case opts.PerNodeLocks:
		name += "-nodelocks"
	}
	if opts.PerNodePQ {
		name += "-pq"
	}
	if opts.NoTempQueue {
		name += "-notemp"
	}
	if opts.NaiveRespawn {
		name += "-naive"
	}
	if opts.MutexLocks {
		name += "-mutex"
	}
	if opts.NoAffinity {
		name += "-noaff"
	}
	if opts.SingleSteal {
		name += "-steal1"
	}
	// A single per-node event queue cannot be guarded by per-port locks:
	// two upstream tasks owning different destination ports would push
	// into the same heap concurrently. The data structure dictates the
	// lock granularity (the same coupling the paper's Section 4.5.1
	// optimization exploits in the other direction), so PerNodePQ
	// implies per-node locks.
	if opts.PerNodePQ && !opts.GlobalIsolated {
		opts.PerNodeLocks = true
	}
	return &hjEngine{opts: opts, name: name}
}

func (e *hjEngine) Name() string { return e.name }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) for supervision failure dumps.
func (e *hjEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// Progress exposes the scheduler's spawn counter as the stall watchdog's
// activity signal: a live simulation keeps spawning node tasks.
func (e *hjEngine) Progress() uint64 {
	rt := e.rt.Load()
	if rt == nil {
		return 0
	}
	return uint64(rt.Stats().Spawns)
}

// hjNodePlan is the precomputed per-node locking plan: the node's lock
// set in ascending lock-ID order (the paper's livelock-avoidance order),
// with the node's own locks identified for the early-release step, plus
// the deduplicated list of downstream nodes to wake after a run.
type hjNodePlan struct {
	locks    []*hj.Lock
	own      []bool // parallel to locks: true for the node's own locks
	wakeList []int32
}

type hjRun struct {
	s      *simState
	eng    *hjEngine
	plans  []hjNodePlan
	record bool
	// body is the one shared RunNode function value: nodes are spawned by
	// index (hj.AsyncIdx*), so respawns allocate no per-node closure.
	body hj.IndexedTask
	// home maps each node to the worker that owns it (a K-way partition
	// of the circuit, K = workers); nil when affinity is disabled or the
	// runtime has one worker. Wakeups are submitted to the home worker's
	// mailbox, so a node's tasks tend to run where its locks and event
	// queues are already cached — and two tasks racing for the same locks
	// tend to serialize on one worker instead of respawning.
	home []int32
	// bufs are per-worker ready-event buffers, indexed by WorkerID.
	bufs [][]portEvent
}

func (e *hjEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx: on cancellation the hj
// runtime's workers exit at their next steal/park point and the context's
// cause is returned. A panic inside a task becomes an *EngineError naming
// the worker instead of crashing the process.
func (e *hjEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: settle-boundary segments, snapshots
// into store, resume from the latest one.
func (e *hjEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

func (e *hjEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, ResumeState{}, err
	}
	s.seedResume(rs)
	if !e.opts.GlobalIsolated {
		s.initLocks(e.opts.PerNodeLocks, e.opts.MutexLocks)
	}
	r := &hjRun{s: s, eng: e, record: !e.opts.DiscardOutputs}
	r.body = r.runNodeIdx
	r.buildPlans()

	cfg := hj.Config{Workers: e.opts.workers(), Trace: e.opts.Trace}
	if e.opts.SingleSteal {
		cfg.StealMax = 1
	}
	if ch := e.opts.Chaos; ch != nil {
		cfg.TaskHook = ch.Task
		cfg.WakeHook = ch.Wake
	}
	// Caller-owned runtime (the serving pool): reuse its workers and
	// leave its lifecycle alone. Trace and chaos hooks are wired at
	// runtime construction, so hooked runs always build a private one.
	rt := e.opts.Runtime
	if rt == nil || e.opts.Trace != nil || e.opts.Chaos != nil {
		rt = hj.NewRuntime(cfg)
		defer rt.Shutdown()
	}
	e.rt.Store(rt)
	r.bufs = make([][]portEvent, rt.NumWorkers())
	// Locality-aware wakeups: partition the circuit K ways (K = workers)
	// and pin each node's tasks to its partition's worker. The
	// partitioner is deterministic and O(edges), a negligible one-time
	// cost next to the millions of events a run processes.
	if w := rt.NumWorkers(); w > 1 && !e.opts.NoAffinity {
		if plan, perr := partition.Partition(c, w); perr == nil {
			r.home = make([]int32, len(s.nodes))
			for id, p := range plan.Assign {
				r.home[id] = int32(p)
			}
		}
	}
	before := rt.Stats()

	// Propagate external cancellation into the runtime; the watcher is
	// reaped on return.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				// The run may have completed between the cancellation and
				// this goroutine being scheduled (Supervise cancels its
				// attempt context on return). Cancelling then would poison
				// a caller-owned runtime after a successful run, so only
				// cancel while the run is still in flight.
				select {
				case <-watchDone:
				default:
					rt.Cancel()
				}
			case <-watchDone:
			}
		}()
	}

	// Launch one task per input node (Algorithm 2, RUN()).
	rt.Finish(func(hctx *hj.Ctx) {
		for _, id := range c.Inputs {
			r.schedule(hctx, int32(id))
		}
	})

	if err := rt.Err(); err != nil {
		var tp *hj.TaskPanic
		if errors.As(err, &tp) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.name, Unit: fmt.Sprintf("worker %d", tp.Worker),
				Reason: FailPanic, Value: tp.Value, Stack: tp.Stack, Err: tp,
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, ResumeState{}, context.Cause(ctx)
		}
		return nil, ResumeState{}, err
	}

	if bad := s.checkAllNullSent(); bad >= 0 {
		return nil, ResumeState{}, fmt.Errorf("core: hj simulation ended with node %d not terminated", bad)
	}
	var final ResumeState
	if capture {
		final = s.captureResume()
	}
	// Clean completion: every task has run to completion inside Finish,
	// so nothing can touch the event rings anymore.
	s.release()
	res := &Result{
		Engine:      e.name,
		Workers:     rt.NumWorkers(),
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
		HJ:          rt.Stats().Sub(before),
	}
	res.FillMetrics(e.opts)
	return res, final, nil
}

// buildPlans computes every node's ordered lock set and wake list. It is
// O(nodes·fanout) on every run of a large circuit, so it avoids per-node
// churn: wake-list dedup uses one reusable epoch-stamped slice instead of
// a map per node, the wake lists and lock sets are carved out of three
// slab allocations, and the (small) lock sets are insertion-sorted in
// place rather than through sort.Slice's per-call closures.
func (r *hjRun) buildPlans() {
	s := r.s
	n := len(s.nodes)
	r.plans = make([]hjNodePlan, n)
	// stamp[m] == epoch(i) marks m as already on node i's wake list; the
	// epoch bump replaces clearing (or reallocating) the slice per node.
	stamp := make([]int32, n)
	totalOut := 0
	for i := range s.nodes {
		totalOut += len(s.nodes[i].fanout)
	}
	wakeSlab := make([]int32, 0, totalOut)
	for i := range s.nodes {
		ns := &s.nodes[i]
		plan := &r.plans[i]
		epoch := int32(i) + 1
		start := len(wakeSlab)
		for _, d := range ns.fanout {
			if stamp[d.node] != epoch {
				stamp[d.node] = epoch
				wakeSlab = append(wakeSlab, d.node)
			}
		}
		plan.wakeList = wakeSlab[start:len(wakeSlab):len(wakeSlab)]
	}
	if r.eng.opts.GlobalIsolated {
		return
	}
	// Upper-bound the lock-entry slab: per-node locks need 1 + wake-list
	// entries, per-port locks need own ports + fanout entries.
	totalLocks := 0
	for i := range s.nodes {
		if r.eng.opts.PerNodeLocks {
			totalLocks += 1 + len(r.plans[i].wakeList)
		} else {
			totalLocks += len(s.nodes[i].ports) + len(s.nodes[i].fanout)
		}
	}
	lockSlab := make([]*hj.Lock, 0, totalLocks)
	ownSlab := make([]bool, 0, totalLocks)
	for i := range s.nodes {
		ns := &s.nodes[i]
		plan := &r.plans[i]
		start := len(lockSlab)
		if r.eng.opts.PerNodeLocks {
			lockSlab, ownSlab = append(lockSlab, ns.nodeLock), append(ownSlab, true)
			for _, m := range plan.wakeList {
				lockSlab, ownSlab = append(lockSlab, s.nodes[m].nodeLock), append(ownSlab, false)
			}
		} else {
			for p := range ns.ports {
				lockSlab, ownSlab = append(lockSlab, ns.ports[p].lock), append(ownSlab, true)
			}
			for _, d := range ns.fanout {
				lockSlab, ownSlab = append(lockSlab, s.nodes[d.node].ports[d.port].lock), append(ownSlab, false)
			}
		}
		locks := lockSlab[start:len(lockSlab):len(lockSlab)]
		own := ownSlab[start:len(ownSlab):len(ownSlab)]
		// Ascending lock-ID acquisition order (paper Section 4.3:
		// "acquires the locks in the ascending order of the node IDs").
		// Insertion sort: the sets are a handful of entries each.
		for j := 1; j < len(locks); j++ {
			l, o := locks[j], own[j]
			k := j
			for k > 0 && locks[k-1].ID() > l.ID() {
				locks[k], own[k] = locks[k-1], own[k-1]
				k--
			}
			locks[k], own[k] = l, o
		}
		plan.locks = locks
		plan.own = own
	}
}

// schedule arranges for a RunNode task for node id to exist: with the
// scheduled-flag protocol a new task is spawned only if none is pending;
// in NaiveRespawn mode a task is always spawned. Spawning goes through
// the runtime's node-indexed fast path (no closure, recycled task
// record), routed to the node's home worker when affinity is on.
func (r *hjRun) schedule(ctx *hj.Ctx, id int32) {
	ns := &r.s.nodes[id]
	if !r.eng.opts.NaiveRespawn && !ns.scheduled.CompareAndSwap(false, true) {
		return
	}
	if r.home != nil {
		ctx.AsyncIdxOn(int(r.home[id]), r.body, id)
		return
	}
	ctx.AsyncIdx(r.body, id)
}

// runNodeIdx adapts runNode to the runtime's indexed-task spawn path.
func (r *hjRun) runNodeIdx(ctx *hj.Ctx, id int32) {
	r.runNode(ctx, &r.s.nodes[id])
}

// runNode is RUNNODE(n) from Algorithm 2, with the Section 4.5
// optimizations applied according to the engine options.
func (r *hjRun) runNode(ctx *hj.Ctx, ns *nodeState) {
	if !r.eng.opts.NaiveRespawn {
		// Clear before looking at any state: events delivered after this
		// point trigger a fresh task; events delivered before are visible
		// to this run once it holds the locks.
		ns.scheduled.Store(false)
	}
	if r.eng.opts.GlobalIsolated {
		var delivered bool
		ctx.Isolated(func() { delivered = r.step(ctx, ns, nil) })
		if delivered {
			r.wake(ctx, ns)
		}
		return
	}

	plan := &r.plans[ns.id]
	for _, l := range plan.locks {
		if !ctx.TryLock(l) {
			// Lost the race: back off and try n again later (Algorithm 2
			// lines 10-14; see the type comment for why the self-lock
			// case also respawns here).
			ctx.ReleaseAllLocks()
			r.schedule(ctx, ns.id)
			return
		}
	}
	delivered := r.step(ctx, ns, plan)
	ctx.ReleaseAllLocks()
	if delivered {
		r.wake(ctx, ns)
	}
}

// step performs one locked simulation run of ns and reports whether
// anything (events or NULLs) was delivered downstream. The caller holds
// the node's full lock set (or the global isolated section); when the
// temp-queue optimization applies, step releases the node's own locks
// early via ctx.Unlock.
func (r *hjRun) step(ctx *hj.Ctx, ns *nodeState, plan *hjNodePlan) bool {
	s := r.s
	if ns.kind == circuit.Input {
		if ns.nullSent {
			return false
		}
		for _, ev := range ns.inputOutgoing() {
			for _, d := range ns.fanout {
				s.nodes[d.node].receive(d.port, ev)
			}
		}
		s.sendNull(ns)
		return true
	}

	buf := r.bufs[ctx.WorkerID()][:0]
	buf = ns.collectReady(buf)
	nullNow := !ns.nullSent && ns.drained()

	// Section 4.5.1 temp queue: ready events now live in buf, so the
	// node's own input-port locks can be released, letting upstream
	// neighbors deliver concurrently. Only meaningful with per-port
	// locks and when the processing phase is still protected by the
	// fanout destination locks.
	if plan != nil && !r.eng.opts.NoTempQueue && !r.eng.opts.PerNodeLocks && len(ns.fanout) > 0 {
		for i, own := range plan.own {
			if own {
				ctx.Unlock(plan.locks[i])
			}
		}
	}

	for _, pe := range buf {
		if out, ok := ns.processOne(pe, r.record); ok {
			for _, d := range ns.fanout {
				s.nodes[d.node].receive(d.port, out)
			}
		}
	}
	if nullNow {
		s.sendNull(ns)
	}
	r.bufs[ctx.WorkerID()] = buf[:0]
	delivered := nullNow || (len(buf) > 0 && ns.kind != circuit.Output)
	return delivered && len(ns.fanout) > 0
}

// wake schedules a task for every distinct downstream neighbor.
func (r *hjRun) wake(ctx *hj.Ctx, ns *nodeState) {
	for _, m := range r.plans[ns.id].wakeList {
		r.schedule(ctx, m)
	}
}
