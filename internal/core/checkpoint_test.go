package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// checkpointStim builds the standard test stimulus: random waves at the
// paper's spacing (period = SettleTime()+10), so every wave boundary is a
// legal settle cut.
func checkpointStim(c *circuit.Circuit, waves int, seed int64) (*circuit.Stimulus, int64) {
	period := c.SettleTime() + 10
	return circuit.RandomStimulus(c, waves, period, seed), period
}

func TestSettleCutsEveryWaveBoundary(t *testing.T) {
	c := circuit.FullAdder()
	const waves = 6
	stim, period := checkpointStim(c, waves, 1)

	cuts := settleCuts(c, stim, 1)
	// Waves land at 0, period, ..., (waves-1)*period and each boundary is
	// at least SettleTime apart, so every boundary but the first time
	// qualifies.
	if len(cuts) != waves-1 {
		t.Fatalf("got %d cuts, want %d", len(cuts), waves-1)
	}
	for i, cut := range cuts {
		if want := int64(i+1) * period; cut != want {
			t.Fatalf("cut %d at t=%d, want t=%d", i, cut, want)
		}
	}
	// every=0 behaves like every=1; every=2 keeps half the boundaries.
	if got := settleCuts(c, stim, 0); len(got) != waves-1 {
		t.Fatalf("every=0: got %d cuts, want %d", len(got), waves-1)
	}
	if got := settleCuts(c, stim, 2); len(got) != (waves-1)/2 {
		t.Fatalf("every=2: got %d cuts, want %d", len(got), (waves-1)/2)
	}
	if got := settleCuts(c, circuit.NewStimulus(c), 1); got != nil {
		t.Fatalf("empty stimulus: got %v cuts, want none", got)
	}
}

func TestSettleCutsRejectCrowdedBoundaries(t *testing.T) {
	c := circuit.ParityChain(8)
	// Waves packed tighter than the settle bound: no boundary is provably
	// quiescent, so there must be no cuts.
	stim := circuit.RandomStimulus(c, 6, c.SettleTime()/2, 3)
	if cuts := settleCuts(c, stim, 1); len(cuts) != 0 {
		t.Fatalf("sub-settle spacing produced cuts %v", cuts)
	}
}

func TestSliceStimulusPartitions(t *testing.T) {
	c := circuit.Mux2()
	stim, period := checkpointStim(c, 5, 2)
	mid := 2 * period

	lo := sliceStimulus(stim, -1<<62, mid)
	hi := sliceStimulus(stim, mid, 1<<62)
	if n := lo.NumEvents() + hi.NumEvents(); n != stim.NumEvents() {
		t.Fatalf("slices hold %d events, original holds %d", n, stim.NumEvents())
	}
	for i, ts := range lo.ByInput {
		for _, tr := range ts {
			if tr.Time >= mid {
				t.Fatalf("low slice of input %d contains t=%d >= %d", i, tr.Time, mid)
			}
		}
	}
	for i, ts := range hi.ByInput {
		for _, tr := range ts {
			if tr.Time < mid {
				t.Fatalf("high slice of input %d contains t=%d < %d", i, tr.Time, mid)
			}
		}
	}
}

// TestSegmentedMatchesSeqAllEngines is the engine-agnostic checkpoint
// contract: every registered engine must implement Checkpointer, and a
// fully segmented run (a snapshot at every wave boundary) must be
// bit-exact with the unbroken sequential reference.
func TestSegmentedMatchesSeqAllEngines(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim, _ := checkpointStim(c, 6, 7)

	ref, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	for _, name := range EngineNames() {
		t.Run(name, func(t *testing.T) {
			e, err := NewEngine(name, Options{Workers: 4, CheckpointEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			cp, ok := e.(Checkpointer)
			if !ok {
				t.Fatalf("engine %q does not implement Checkpointer", name)
			}
			store := NewCheckpointStore()
			res, err := cp.RunFrom(nil, c, stim, store)
			if err != nil {
				t.Fatalf("RunFrom: %v", err)
			}
			if res.TotalEvents != ref.TotalEvents {
				t.Fatalf("segmented run counted %d events, reference %d", res.TotalEvents, ref.TotalEvents)
			}
			if ok, diff := SameOutputs(ref, res); !ok {
				t.Fatalf("segmented %s disagrees with reference: %s", name, diff)
			}
			if store.Count() == 0 {
				t.Fatal("no checkpoints were saved")
			}
			if res.Metrics["checkpoint.count"] != store.Count() {
				t.Fatalf("checkpoint.count metric = %d, store saved %d",
					res.Metrics["checkpoint.count"], store.Count())
			}
			if res.Metrics["checkpoint.bytes"] <= 0 {
				t.Fatal("checkpoint.bytes metric missing")
			}
		})
	}
}

// TestResumeAcrossEngineFamilies checks the cross-family resume that
// Resilient's degradation relies on: a store populated by the hj engine
// seeds a sequential run, which resumes at the final segment and still
// reproduces the full run's outputs and event counts.
func TestResumeAcrossEngineFamilies(t *testing.T) {
	c := circuit.FanoutTree(4)
	stim, _ := checkpointStim(c, 5, 9)
	opts := Options{Workers: 4, CheckpointEvery: 1}

	store := NewCheckpointStore()
	hjRes, err := NewHJ(opts).(Checkpointer).RunFrom(nil, c, stim, store)
	if err != nil {
		t.Fatalf("hj segmented run: %v", err)
	}
	if store.Latest() == nil {
		t.Fatal("hj run saved no checkpoint")
	}

	seqRes, err := NewSequential(opts).(Checkpointer).RunFrom(nil, c, stim, store)
	if err != nil {
		t.Fatalf("seq resume from hj checkpoint: %v", err)
	}
	if seqRes.TotalEvents != hjRes.TotalEvents {
		t.Fatalf("resumed run counted %d events, original %d", seqRes.TotalEvents, hjRes.TotalEvents)
	}
	if ok, diff := SameOutputs(hjRes, seqRes); !ok {
		t.Fatalf("seq resume disagrees with hj run: %s", diff)
	}
	if seqRes.Metrics["resilient.resumes"] != 1 {
		t.Fatalf("resilient.resumes = %d, want 1", seqRes.Metrics["resilient.resumes"])
	}
	if seqRes.Metrics["resilient.resume_cycle"] == 0 {
		t.Fatal("resilient.resume_cycle missing: resume should start past segment 0")
	}
}

func TestSegmentedNilStoreIsPlainRun(t *testing.T) {
	c := circuit.FullAdder()
	stim, _ := checkpointStim(c, 4, 11)
	opts := Options{CheckpointEvery: 1}

	plain, err := NewSequential(opts).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewSequential(opts).(Checkpointer).RunFrom(nil, c, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := SameOutputs(plain, res); !ok {
		t.Fatalf("nil-store RunFrom diverged from Run: %s", diff)
	}
	if res.Metrics["checkpoint.count"] != 0 {
		t.Fatal("nil-store run reported checkpoint metrics")
	}
}

func TestSegmentedRejectsForeignCheckpoint(t *testing.T) {
	c := circuit.FullAdder()
	stim, _ := checkpointStim(c, 4, 13)

	store := NewCheckpointStore()
	store.Save(&Checkpoint{Seg: 1, State: ResumeState{InVal: make([][2]circuit.Value, 3)}})
	_, err := NewSequential(Options{CheckpointEvery: 1}).(Checkpointer).RunFrom(nil, c, stim, store)
	if err == nil {
		t.Fatal("mismatched checkpoint (wrong node count) was accepted")
	}
}

func TestCheckpointEveryCadence(t *testing.T) {
	c := circuit.ParityChain(10)
	stim, _ := checkpointStim(c, 8, 17)
	ref, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}

	var prev int64 = 1 << 62
	for _, every := range []int{1, 2, 4} {
		store := NewCheckpointStore()
		e, _ := NewEngine("seq", Options{CheckpointEvery: every})
		res, err := e.(Checkpointer).RunFrom(nil, c, stim, store)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if ok, diff := SameOutputs(ref, res); !ok {
			t.Fatalf("every=%d diverged: %s", every, diff)
		}
		if store.Count() >= prev {
			t.Fatalf("every=%d saved %d snapshots, not fewer than %d", every, store.Count(), prev)
		}
		prev = store.Count()
	}
}
