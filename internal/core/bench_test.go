package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// Micro-benchmarks for the per-node event machinery: the data-structure
// trade-off of Section 4.5.1 at its smallest scale.

func benchNodeState(b *testing.B, pq bool) (*simState, *nodeState) {
	b.Helper()
	c := circuit.FullAdder()
	s, err := newSimState(c, circuit.NewStimulus(c), Options{PerNodePQ: pq})
	if err != nil {
		b.Fatal(err)
	}
	for i := range s.nodes {
		if s.nodes[i].kind.IsGate() && s.nodes[i].numIn == 2 {
			return s, &s.nodes[i]
		}
	}
	b.Fatal("no 2-input gate")
	return nil, nil
}

func benchReceiveCollect(b *testing.B, pq bool) {
	_, ns := benchNodeState(b, pq)
	var buf []portEvent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i + 1)
		ns.receive(0, Event{Time: t, Value: 1})
		ns.receive(1, Event{Time: t, Value: 0})
		buf = ns.collectReady(buf[:0])
		if len(buf) != 2 {
			b.Fatalf("ready = %d", len(buf))
		}
	}
}

// BenchmarkPortDequeReceiveCollect measures the paper's optimized
// per-port ArrayDeque path.
func BenchmarkPortDequeReceiveCollect(b *testing.B) { benchReceiveCollect(b, false) }

// BenchmarkNodeHeapReceiveCollect measures the Galois-Java-style
// per-node PriorityQueue path.
func BenchmarkNodeHeapReceiveCollect(b *testing.B) { benchReceiveCollect(b, true) }

// BenchmarkSequentialSmall measures whole-run overhead on a small
// circuit (per-run setup dominates at this size).
func BenchmarkSequentialSmall(b *testing.B) {
	c := circuit.C17()
	stim := circuit.RandomStimulus(c, 50, c.SettleTime()+10, 1)
	e := NewSequential(Options{DiscardOutputs: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(c, stim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHJEngineSmall includes runtime startup/shutdown per run, the
// cost a caller pays for one-shot simulations.
func BenchmarkHJEngineSmall(b *testing.B) {
	c := circuit.C17()
	stim := circuit.RandomStimulus(c, 50, c.SettleTime()+10, 1)
	e := NewHJ(Options{Workers: 2, DiscardOutputs: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(c, stim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileMultiplier6 measures the Figure 1 profiler.
func BenchmarkProfileMultiplier6(b *testing.B) {
	c := circuit.TreeMultiplier(6)
	for i := 0; i < b.N; i++ {
		if _, err := ProfileCircuit(c, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLPFamily measures a whole over-decomposed run (K partitions on a
// few workers) of one lp-family engine: the goroutine-per-LP engine vs
// the fused task-per-LP engine on the same circuit, stimulus and
// partition plan. Allocs/op is the headline here — the fused engine's
// idle LPs must not pay goroutine or channel costs.
func benchLPFamily(b *testing.B, name string, k int) {
	c := circuit.KoggeStone(64)
	stim := circuit.RandomStimulus(c, 20, c.SettleTime()+10, 1)
	e, err := NewEngine(name, Options{Workers: 4, Partitions: k, DiscardOutputs: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(c, stim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPGoroutineK64(b *testing.B) { benchLPFamily(b, "lp", 64) }
func BenchmarkLPHJK64(b *testing.B)       { benchLPFamily(b, "lp-hj", 64) }

func BenchmarkLPHJK64NoAff(b *testing.B) {
	c := circuit.KoggeStone(64)
	stim := circuit.RandomStimulus(c, 20, c.SettleTime()+10, 1)
	e, err := NewEngine("lp-hj", Options{Workers: 4, Partitions: 64, DiscardOutputs: true, NoAffinity: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(c, stim); err != nil {
			b.Fatal(err)
		}
	}
}
