package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/obs"
	"hjdes/internal/queue"
)

// twEngine is an optimistic (Time Warp) engine — the other family of
// PDES algorithms the paper's Section 2.1 surveys (Jefferson & Sowizral's
// rollback mechanism), implemented here so the conservative/optimistic
// trade-off can be measured on the same workloads.
//
// Nodes process events beyond their Chandy–Misra-safe horizon. When a
// straggler (an event older than the node's local virtual time) or an
// anti-message arrives, the node rolls back: it restores the saved state,
// re-enqueues the undone events, and sends anti-messages cancelling the
// emissions of the undone processing steps. Execution is organized in
// BSP rounds with double-buffered per-edge channels, which makes the
// whole simulation deterministic for every worker count; global virtual
// time (GVT) is computed at each barrier and fossil collection archives
// or discards history older than GVT. The optional window bounds
// optimism to GVT+W, giving a spectrum from nearly-conservative (small
// W) to pure Time Warp (unbounded).
type twEngine struct {
	opts Options
	name string
}

// NewTimeWarp returns the optimistic engine. Options.TimeWarpWindow
// bounds speculation (0 = unbounded).
func NewTimeWarp(opts Options) Engine {
	name := "timewarp"
	if opts.TimeWarpWindow > 0 {
		name = fmt.Sprintf("timewarp-w%d", opts.TimeWarpWindow)
	}
	return &twEngine{opts: opts, name: name}
}

func (e *twEngine) Name() string { return e.name }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) for supervision failure dumps.
func (e *twEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// TWStats counts optimistic-execution activity.
type TWStats struct {
	Rounds     int
	Rollbacks  int64 // rollback episodes
	Undone     int64 // processed events undone by rollbacks
	Antis      int64 // anti-messages sent
	Stragglers int64 // late positive events that forced a rollback
	Sweeps     int64 // asynchronous GVT snapshots published (tw-hj; barrier engine: 0)
	Fires      int64 // throttled-node wakeups fired by the GVT sweep (tw-hj)
}

func (s TWStats) String() string {
	return fmt.Sprintf("rounds=%d rollbacks=%d undone=%d antis=%d stragglers=%d sweeps=%d fires=%d",
		s.Rounds, s.Rollbacks, s.Undone, s.Antis, s.Stragglers, s.Sweeps, s.Fires)
}

// MetricsInto folds the counters into a flat metrics map under the "tw."
// namespace.
func (s TWStats) MetricsInto(m obs.Metrics) {
	m.Add("tw.rounds", int64(s.Rounds))
	m.Add("tw.rollbacks", s.Rollbacks)
	m.Add("tw.undone", s.Undone)
	m.Add("tw.antis", s.Antis)
	m.Add("tw.stragglers", s.Stragglers)
	m.Add("tw.sweeps", s.Sweeps)
	m.Add("tw.fires", s.Fires)
}

// twEvent is an optimistic message: a signal value or an anti-message
// cancelling a previous one (matched by ID).
type twEvent struct {
	Time  int64
	ID    int64 // unique per emission; annihilation key
	Port  int32
	Value circuit.Value
	Anti  bool
}

func lessTWEvent(a, b twEvent) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.ID < b.ID
}

// twSend records one emission for possible cancellation.
type twSend struct {
	edge int32 // index into the node's fanout
	ev   twEvent
}

// twRecord is one processed event with its pre-state, for rollback.
type twRecord struct {
	ev     twEvent
	preVal [2]circuit.Value
	sends  []twSend
}

// twInEdge locates one incoming edge's double-buffered channel.
type twInEdge struct {
	src  int32 // source node
	slot int32 // index into the source's fanout/outBuf
}

// twNode is the Time Warp state of one circuit node.
type twNode struct {
	id     int32
	kind   circuit.Kind
	delay  int64
	fanout []dest
	inEdge []twInEdge

	inputQ    *queue.Heap[twEvent]
	cancelled map[int64]bool // tombstones for annihilated queued events
	log       []twRecord
	inVal     [2]circuit.Value
	lvt       int64
	emitSeq   int64

	// Double-buffered per-fanout-edge outboxes: bank (round%2) is
	// written this round, the other bank is read by destinations.
	outBuf [2][][]twEvent

	// committed history (output terminals archive TimedValues; all nodes
	// count committed events at fossil collection).
	archived    int64
	history     []TimedValue
	transitions []circuit.Transition // input terminals
	rollbacks   int64
	undone      int64
	antis       int64
	stragglers  int64
}

// twRun is one engine run.
type twRun struct {
	nodes  []twNode
	window int64
	record bool
	hooks  *ChaosHooks // scheduler-level fault injection; may be nil
	// roundNo is the current BSP round, written by the driver between
	// rounds (the Finish hand-off orders the write before every node
	// step) and read by the chaos rollback hook.
	roundNo int
}

func (e *twEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx, checked at every BSP barrier:
// on cancellation the round loop exits (stopping the hj workers when
// parallel) and the context's cause is returned. A panic inside a
// parallel round becomes an *EngineError naming the worker.
func (e *twEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer. Time Warp's snapshots are taken at
// settle boundaries, which coincide with GVT = ∞ for the segment: every
// log entry has been fossil-collected, so the saved wire state is fully
// committed — never speculative.
func (e *twEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

func (e *twEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	if err := stim.Validate(c); err != nil {
		return nil, ResumeState{}, err
	}
	r := &twRun{window: e.opts.TimeWarpWindow, record: !e.opts.DiscardOutputs, hooks: e.opts.Chaos}
	r.nodes = make([]twNode, len(c.Nodes))
	for i := range c.Nodes {
		cn := &c.Nodes[i]
		n := &r.nodes[i]
		n.id = int32(cn.ID)
		n.kind = cn.Kind
		n.delay = cn.Kind.Delay()
		n.fanout = make([]dest, len(cn.Fanout))
		for j, p := range cn.Fanout {
			n.fanout[j] = dest{node: int32(p.Node), port: int32(p.In)}
		}
		n.outBuf[0] = make([][]twEvent, len(n.fanout))
		n.outBuf[1] = make([][]twEvent, len(n.fanout))
		n.inputQ = queue.NewHeap(lessTWEvent)
		n.cancelled = map[int64]bool{}
		n.lvt = -1
	}
	// Wire incoming-edge locators.
	for i := range r.nodes {
		src := &r.nodes[i]
		for slot, d := range src.fanout {
			dst := &r.nodes[d.node]
			dst.inEdge = append(dst.inEdge, twInEdge{src: int32(i), slot: int32(slot)})
		}
	}
	for i, id := range c.Inputs {
		r.nodes[id].transitions = stim.ByInput[i]
	}
	if rs != nil && len(rs.InVal) == len(r.nodes) {
		for i := range r.nodes {
			r.nodes[i].inVal = rs.InVal[i]
		}
	}

	var rt *hj.Runtime
	if e.opts.Workers != 1 {
		rt = hj.NewRuntime(hj.Config{Workers: e.opts.workers(), Trace: e.opts.Trace})
		defer rt.Shutdown()
		if ctx != nil {
			watchDone := make(chan struct{})
			defer close(watchDone)
			go func() {
				select {
				case <-ctx.Done():
					rt.Cancel()
				case <-watchDone:
				}
			}()
		}
	}

	// Round 0: input terminals flood their whole schedules (sources are
	// conservative and never roll back).
	for _, id := range c.Inputs {
		n := &r.nodes[id]
		for _, tr := range n.transitions {
			ev := twEvent{Time: tr.Time + circuit.WireDelay, Value: tr.Value}
			for slot := range n.fanout {
				n.emit(0, slot, ev)
			}
		}
	}

	stats := TWStats{}
	// The barrier loop runs on this goroutine; hj workers own trace shards
	// 0..W-1, so round records go on a dedicated shard above them.
	var ring *obs.Ring
	if e.opts.Trace != nil {
		shard := 0
		if rt != nil {
			shard = rt.NumWorkers()
		}
		ring = e.opts.Trace.Ring(shard)
	}
	bank := 0 // the bank written during round 0 above
	n := len(r.nodes)
	for {
		if ctx != nil && ctx.Err() != nil {
			return nil, ResumeState{}, context.Cause(ctx)
		}
		r.roundNo = stats.Rounds
		// Swap banks: this round absorbs from `bank`, writes to 1-bank.
		read, write := bank, 1-bank
		step := func(i int) { r.nodes[i].round(r, read, write) }
		if rt != nil {
			rt.Finish(func(hctx *hj.Ctx) {
				hctx.ForAsync(n, 4, func(_ *hj.Ctx, i int) { step(i) })
			})
			if err := rt.Err(); err != nil {
				var tp *hj.TaskPanic
				if errors.As(err, &tp) {
					return nil, ResumeState{}, &EngineError{
						Engine: e.name, Unit: fmt.Sprintf("worker %d", tp.Worker),
						Reason: FailPanic, Value: tp.Value, Stack: tp.Stack, Err: tp,
					}
				}
				if ctx != nil && ctx.Err() != nil {
					return nil, ResumeState{}, context.Cause(ctx)
				}
				return nil, ResumeState{}, err
			}
		} else {
			for i := 0; i < n; i++ {
				step(i)
			}
		}
		stats.Rounds++

		// Barrier work: clear the consumed bank, compute GVT, detect
		// termination, fossil-collect.
		gvt := TimeInfinity
		busy := false
		for i := range r.nodes {
			nd := &r.nodes[i]
			for slot := range nd.outBuf[read] {
				nd.outBuf[read][slot] = nd.outBuf[read][slot][:0]
			}
			if top, ok := nd.inputQ.Peek(); ok && !nd.cancelled[top.ID] {
				busy = true
				if top.Time < gvt {
					gvt = top.Time
				}
			} else if ok {
				busy = true // tombstoned entries still need draining
				if top.Time < gvt {
					gvt = top.Time
				}
			}
			for slot := range nd.outBuf[write] {
				for _, ev := range nd.outBuf[write][slot] {
					busy = true
					if ev.Time < gvt {
						gvt = ev.Time
					}
				}
			}
		}
		if gvt == TimeInfinity {
			ring.Record(obs.EvRound, int64(stats.Rounds), -1)
		} else {
			ring.Record(obs.EvRound, int64(stats.Rounds), gvt)
		}
		if !busy {
			break
		}
		for i := range r.nodes {
			r.nodes[i].fossilCollect(gvt, r.record)
		}
		bank = write
	}

	// Commit all remaining history.
	res := &Result{
		Engine:     e.name,
		Workers:    1,
		NodeEvents: make([]int64, len(r.nodes)),
		Outputs:    map[string][]TimedValue{},
	}
	if rt != nil {
		res.Workers = rt.NumWorkers()
	}
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.fossilCollect(TimeInfinity, r.record)
		res.NodeEvents[i] = nd.archived
		res.TotalEvents += nd.archived
		stats.Rollbacks += nd.rollbacks
		stats.Undone += nd.undone
		stats.Antis += nd.antis
		stats.Stragglers += nd.stragglers
	}
	for _, id := range c.Outputs {
		res.Outputs[c.Nodes[id].Name] = r.nodes[id].history
	}
	var final ResumeState
	if capture {
		// Every log entry was just fossil-collected (GVT = ∞): inVal is
		// the committed settled wire state.
		final = ResumeState{InVal: make([][2]circuit.Value, len(r.nodes))}
		for i := range r.nodes {
			final.InVal[i] = r.nodes[i].inVal
		}
	}
	res.TimeWarp = stats
	if rt != nil {
		res.HJ = rt.Stats()
	}
	res.FillMetrics(e.opts)
	res.Elapsed = time.Since(start)
	return res, final, nil
}

// emit appends an event to the node's outbox bank for the given fanout
// slot, stamping a fresh emission ID.
func (n *twNode) emit(bank, slot int, ev twEvent) {
	n.emitSeq++
	ev.ID = int64(n.id)<<40 | n.emitSeq
	ev.Port = n.fanout[slot].port
	n.outBuf[bank][slot] = append(n.outBuf[bank][slot], ev)
}

// emitAnti sends an anti-message cancelling a recorded send.
func (n *twNode) emitAnti(bank int, s twSend) {
	anti := s.ev
	anti.Anti = true
	n.outBuf[bank][s.edge] = append(n.outBuf[bank][s.edge], anti)
	n.antis++
}

// round is one node's BSP step: absorb arrivals from the read bank
// (handling stragglers and anti-messages with rollbacks), then process
// optimistically into the write bank.
func (n *twNode) round(r *twRun, read, write int) {
	if h := r.hooks; h != nil && h.Task != nil {
		// Contained by the hj worker's recover in parallel runs, by the
		// supervisor's in sequential ones.
		h.Task(int(n.id))
	}
	// Absorb.
	for _, ie := range n.inEdge {
		src := &r.nodes[ie.src]
		for _, ev := range src.outBuf[read][ie.slot] {
			if ev.Anti {
				n.annihilate(r, write, ev)
				continue
			}
			if n.lvt >= 0 && ev.Time < n.lvt {
				n.stragglers++
				n.rollbackBefore(r, write, ev.Time, -1)
			}
			n.inputQ.Push(ev)
		}
	}
	// Injected rollback storm: undo the newer half of the processed log
	// as if a straggler had arrived. Semantics-preserving — the undone
	// events re-queue, anti-messages cancel their emissions downstream,
	// and re-execution reconverges — so chaotic runs stay bit-exact.
	if h := r.hooks; h != nil && h.Rollback != nil && len(n.log) > 1 && h.Rollback(n.id, r.roundNo) {
		n.rollbackBefore(r, write, n.log[len(n.log)/2].ev.Time, -1)
	}
	// Process optimistically up to the window horizon.
	horizon := TimeInfinity
	if r.window > 0 {
		// GVT is implicit: the node's own unprocessed minimum is a safe
		// local proxy available without a barrier; the driver's fossil
		// GVT governs memory, not the horizon. A window W means "do not
		// run more than W ahead of your own earliest pending work".
		if top, ok := n.inputQ.Peek(); ok {
			horizon = top.Time + r.window
		}
	}
	for {
		top, ok := n.inputQ.Peek()
		if !ok || top.Time > horizon {
			break
		}
		ev, _ := n.inputQ.Pop()
		if n.cancelled[ev.ID] {
			delete(n.cancelled, ev.ID)
			continue
		}
		n.process(write, ev)
	}
}

// process executes one event optimistically, logging state and sends.
func (n *twNode) process(bank int, ev twEvent) {
	rec := twRecord{ev: ev, preVal: n.inVal}
	n.inVal[ev.Port] = ev.Value
	if n.kind != circuit.Output && n.kind != circuit.Input {
		v := n.kind.Eval(n.inVal[0], n.inVal[1])
		out := twEvent{Time: ev.Time + n.delay + circuit.WireDelay, Value: v}
		for slot := range n.fanout {
			n.emit(bank, slot, out)
			sent := n.outBuf[bank][slot][len(n.outBuf[bank][slot])-1]
			rec.sends = append(rec.sends, twSend{edge: int32(slot), ev: sent})
		}
	}
	n.log = append(n.log, rec)
	n.lvt = ev.Time
}

// annihilate handles an anti-message: remove the matching positive event
// from the queue (tombstone) or roll back its processing.
func (n *twNode) annihilate(r *twRun, bank int, anti twEvent) {
	// Processed?
	for i := range n.log {
		if n.log[i].ev.ID == anti.ID {
			n.rollbackBefore(r, bank, anti.Time, anti.ID)
			return
		}
	}
	// Still queued (positives always arrive before their antis).
	n.cancelled[anti.ID] = true
}

// rollbackBefore undoes every processed event with time > t (plus the
// event with ID dropID, which is annihilated rather than re-queued),
// restoring the state snapshot and sending anti-messages for all undone
// emissions. For a straggler at time t, ties at t keep their processing
// (tie order is free, per Section 4.1); for annihilation, the target
// itself must go, so the cut starts at its log position.
func (n *twNode) rollbackBefore(r *twRun, bank int, t int64, dropID int64) {
	cut := len(n.log)
	for i := range n.log {
		if n.log[i].ev.Time > t || n.log[i].ev.ID == dropID {
			cut = i
			break
		}
	}
	if cut == len(n.log) {
		return
	}
	n.rollbacks++
	for i := len(n.log) - 1; i >= cut; i-- {
		rec := &n.log[i]
		for _, s := range rec.sends {
			n.emitAnti(bank, s)
		}
		n.undone++
		if rec.ev.ID != dropID {
			n.inputQ.Push(rec.ev)
		}
	}
	n.inVal = n.log[cut].preVal
	if cut > 0 {
		n.lvt = n.log[cut-1].ev.Time
	} else {
		n.lvt = -1
	}
	n.log = n.log[:cut]
}

// fossilCollect commits log entries strictly older than gvt: output
// terminals archive them as history samples; every node counts them.
func (n *twNode) fossilCollect(gvt int64, record bool) {
	cut := 0
	for cut < len(n.log) && n.log[cut].ev.Time < gvt {
		cut++
	}
	if cut == 0 {
		return
	}
	if n.kind == circuit.Output && record {
		for i := 0; i < cut; i++ {
			n.history = append(n.history, TimedValue{Time: n.log[i].ev.Time, Value: n.log[i].ev.Value})
		}
	}
	n.archived += int64(cut)
	n.log = append(n.log[:0], n.log[cut:]...)
}
