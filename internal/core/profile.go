package core

import (
	"hjdes/internal/circuit"
)

// ParallelismProfile measures the available parallelism of a simulation
// the way the Galois project's study did for the paper's Figure 1: the
// simulation executes in level-synchronous rounds, and each round runs a
// greedy maximal set of active nodes whose lock neighborhoods (the node
// plus its fanout) are pairwise disjoint — the nodes that a parallel
// execution could safely run simultaneously. The returned slice holds
// that set's size for every computation step.
//
// The characteristic shape for the tree multiplier — low at first (few
// input ports), rising through the circuit's large fanouts, then falling
// toward the small number of output ports — is the paper's explanation
// for its limited speedups.
func ParallelismProfile(c *circuit.Circuit, stim *circuit.Stimulus) ([]int, error) {
	s, err := newSimState(c, stim, Options{DiscardOutputs: true})
	if err != nil {
		return nil, err
	}
	var profile []int
	claimed := make([]bool, len(s.nodes))
	var selected []int32
	var buf []portEvent
	for {
		// Gather this round's active nodes and greedily pack a
		// conflict-free subset (neighborhood-disjoint, in ID order).
		selected = selected[:0]
		for i := range claimed {
			claimed[i] = false
		}
		for i := range s.nodes {
			ns := &s.nodes[i]
			if !ns.needsRun() {
				continue
			}
			if claimed[ns.id] {
				continue
			}
			free := true
			for _, d := range ns.fanout {
				if claimed[d.node] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			claimed[ns.id] = true
			for _, d := range ns.fanout {
				claimed[d.node] = true
			}
			selected = append(selected, ns.id)
		}
		if len(selected) == 0 {
			break
		}
		for _, id := range selected {
			buf = s.simulate(&s.nodes[id], buf[:0], false)
		}
		profile = append(profile, len(selected))
	}
	if bad := s.checkAllNullSent(); bad >= 0 {
		return profile, errIncomplete(bad)
	}
	return profile, nil
}

type profileError int32

func (e profileError) Error() string {
	return "core: parallelism profile ended with an unterminated node"
}

func errIncomplete(id int32) error { return profileError(id) }

// MaxParallelism returns the peak of a profile, or 0 for an empty one.
func MaxParallelism(profile []int) int {
	m := 0
	for _, p := range profile {
		if p > m {
			m = p
		}
	}
	return m
}

// MeanParallelism returns the average available parallelism.
func MeanParallelism(profile []int) float64 {
	if len(profile) == 0 {
		return 0
	}
	sum := 0
	for _, p := range profile {
		sum += p
	}
	return float64(sum) / float64(len(profile))
}

// stimOneWave is a convenience for profiling: a single random wave.
func stimOneWave(c *circuit.Circuit, seed int64) *circuit.Stimulus {
	return circuit.RandomStimulus(c, 1, c.SettleTime()+1, seed)
}

// ProfileCircuit runs ParallelismProfile on a single-wave stimulus, the
// configuration of the paper's Figure 1.
func ProfileCircuit(c *circuit.Circuit, seed int64) ([]int, error) {
	return ParallelismProfile(c, stimOneWave(c, seed))
}
