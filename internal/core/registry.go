package core

import (
	"fmt"
	"sort"
	"strings"
)

// EngineFactory builds an engine from run options.
type EngineFactory func(Options) Engine

// engineRegistry is the central name → factory table. Every engine
// registers here once; cmd/dessim, the harness and the tests all resolve
// engines through it instead of keeping their own switch statements.
var engineRegistry = map[string]EngineFactory{
	"seq":            NewSequential,
	"seq-pq":         NewSequentialPQ,
	"hj":             NewHJ,
	"galois":         NewGalois,
	"galois-fine":    NewGaloisFine,
	"galois-ordered": NewOrdered,
	"actor":          NewActor,
	"timewarp":       NewTimeWarp,
	"lp":             NewLP,
}

// RegisterEngine adds (or replaces) a named engine factory. It is meant
// for engines living outside this package; registering a nil factory or
// an empty name panics.
func RegisterEngine(name string, f EngineFactory) {
	if name == "" || f == nil {
		panic("core: RegisterEngine with empty name or nil factory")
	}
	engineRegistry[name] = f
}

// NewEngine builds the named engine with the given options. The error
// lists the known engine names.
func NewEngine(name string, opts Options) (Engine, error) {
	f, ok := engineRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown engine %q (known: %s)", name, strings.Join(EngineNames(), " | "))
	}
	return f(opts), nil
}

// EngineNames returns every registered engine name, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineRegistry))
	for name := range engineRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
