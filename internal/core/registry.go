package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EngineFactory builds an engine from run options.
type EngineFactory func(Options) Engine

// engineRegistry is the central name → factory table, guarded by
// registryMu so engines may be registered and resolved from concurrent
// goroutines (harness sweeps, parallel tests). Every engine registers
// here once; cmd/dessim, the harness and the tests all resolve engines
// through it instead of keeping their own switch statements.
var (
	registryMu     sync.RWMutex
	engineRegistry = map[string]EngineFactory{
		"seq":            NewSequential,
		"seq-pq":         NewSequentialPQ,
		"hj":             NewHJ,
		"hj-noaff":       func(o Options) Engine { o.NoAffinity = true; return NewHJ(o) },
		"hj-steal1":      func(o Options) Engine { o.SingleSteal = true; return NewHJ(o) },
		"galois":         NewGalois,
		"galois-fine":    NewGaloisFine,
		"galois-ordered": NewOrdered,
		"actor":          NewActor,
		"timewarp":       NewTimeWarp,
		"lp":             NewLP,
	}
)

// RegisterEngine adds a named engine factory. It is meant for engines
// living outside this package; registering a nil factory or an empty
// name panics, and so does registering a name that already exists — a
// typo'd registration must fail loudly instead of silently shadowing a
// real engine behind the same name. Safe for concurrent use.
func RegisterEngine(name string, f EngineFactory) {
	if name == "" || f == nil {
		panic("core: RegisterEngine with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := engineRegistry[name]; dup {
		panic(fmt.Sprintf("core: RegisterEngine: engine %q already registered", name))
	}
	engineRegistry[name] = f
}

// NewEngine builds the named engine with the given options. The error
// lists the known engine names. Safe for concurrent use.
func NewEngine(name string, opts Options) (Engine, error) {
	registryMu.RLock()
	f, ok := engineRegistry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown engine %q (known: %s)", name, strings.Join(EngineNames(), " | "))
	}
	return f(opts), nil
}

// EngineNames returns every registered engine name, sorted. Safe for
// concurrent use.
func EngineNames() []string {
	registryMu.RLock()
	names := make([]string, 0, len(engineRegistry))
	for name := range engineRegistry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}
