package core

import (
	"context"
	"fmt"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/galois"
)

// orderedEngine expresses the simulation on the Galois *ordered-set*
// iterator — the other formulation studied by Hassaan, Burtscher and
// Pingali ("Ordered vs. unordered", the paper's reference [12], which is
// where its DES benchmark comes from). Work items are (node, time)
// pairs ordered by timestamp: because the runtime commits all items of
// one timestamp before starting the next, an activity for (n, t) may
// safely process every event with timestamp exactly t — no local clocks
// and no NULL messages are needed. The trade-off is a global priority
// order enforced by the scheduler, which is precisely the
// synchronization the Chandy–Misra engines avoid.
type orderedEngine struct {
	opts Options
}

// NewOrdered returns the ordered-iterator engine.
func NewOrdered(opts Options) Engine {
	opts.PerNodePQ = false // per-port deques; arrivals per port are sorted
	return &orderedEngine{opts: opts}
}

func (e *orderedEngine) Name() string { return "galois-ordered" }

// orderedItem schedules node's events at exactly time.
type orderedItem struct {
	node int32
	time int64
}

func (e *orderedEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.runSeg(c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: settle-boundary segments, snapshots
// into store, resume from the latest one.
func (e *orderedEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(_ context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.runSeg(c, seg, rs, true)
		})
}

func (e *orderedEngine) runSeg(c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, ResumeState{}, err
	}
	s.seedResume(rs)
	record := !e.opts.DiscardOutputs
	rt := galois.New(e.opts.workers())
	rt.SetTrace(e.opts.Trace)
	if ch := e.opts.Chaos; ch != nil {
		rt.SetTaskHook(ch.Task)
	}
	before := rt.Stats()

	// Setup: flood every input terminal's events directly (the ordered
	// formulation needs no sources inside the iteration), seeding the
	// workset with one item per (destination, arrival time).
	seen := map[orderedItem]bool{}
	var initial []orderedItem
	for _, id := range c.Inputs {
		ns := &s.nodes[id]
		for _, ev := range ns.inputOutgoing() {
			for _, d := range ns.fanout {
				s.nodes[d.node].receive(d.port, ev)
				it := orderedItem{node: d.node, time: ev.Time}
				if !seen[it] {
					seen[it] = true
					initial = append(initial, it)
				}
			}
		}
		ns.nullSent = true
	}

	galois.ForEachOrdered(rt, initial,
		func(it orderedItem) int64 { return it.time },
		func(it *galois.OrderedIteration[orderedItem], item orderedItem) {
			ns := &s.nodes[item.node]
			it.Acquire(&ns.obj)
			for _, d := range ns.fanout {
				it.Acquire(&s.nodes[d.node].obj)
			}
			// Process exactly this timestamp's events, in port order.
			// Everything with an earlier timestamp was handled by an
			// earlier (already committed) priority level.
			emitted := false
			var outTime int64
			for p := range ns.ports {
				for {
					head, ok := ns.ports[p].q.Front()
					if !ok || head.Time != item.time {
						break
					}
					ev, _ := ns.ports[p].q.PopFront()
					out, isGate := ns.processOne(portEvent{Ev: ev, Port: int32(p)}, record)
					if isGate {
						for _, d := range ns.fanout {
							s.nodes[d.node].receive(d.port, out)
						}
						emitted = true
						outTime = out.Time
					}
				}
			}
			if emitted {
				// All of this batch's emissions share one timestamp
				// (t + delay + wire), so one item per destination node
				// schedules them.
				for _, d := range ns.fanout {
					it.Push(orderedItem{node: d.node, time: outTime})
				}
			}
		})

	// Mark gates terminated for the invariant checker: the ordered
	// execution drains every queue by construction.
	for i := range s.nodes {
		ns := &s.nodes[i]
		if ns.kind == circuit.Input {
			continue
		}
		for p := range ns.ports {
			if !ns.ports[p].q.Empty() {
				return nil, ResumeState{}, fmt.Errorf("core: ordered run left events at node %d port %d", ns.id, p)
			}
			ns.ports[p].clock = TimeInfinity
		}
		ns.nullSent = true
	}
	var final ResumeState
	if capture {
		final = s.captureResume()
	}
	res := &Result{
		Engine:      "galois-ordered",
		Workers:     rt.NumWorkers(),
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
		Galois:      statsDelta(rt.Stats(), before),
	}
	res.FillMetrics(e.opts)
	return res, final, nil
}
