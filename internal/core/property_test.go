package core

import (
	"testing"
	"testing/quick"

	"hjdes/internal/circuit"
)

// TestPropertyRandomCircuitEnginesAgree is the central property test of
// the repository: for generated random circuit topologies and random
// stimuli, every engine configuration must (a) satisfy the combinational
// oracle and (b) agree exactly with the sequential reference on settled
// outputs and total event count.
func TestPropertyRandomCircuitEnginesAgree(t *testing.T) {
	type gen struct {
		Seed   int64
		Inputs uint8
		Gates  uint8
		Waves  uint8
	}
	f := func(g gen) bool {
		inputs := int(g.Inputs%6) + 2
		gates := int(g.Gates%80) + 10
		nWaves := int(g.Waves%4) + 1
		c := circuit.RandomDAG(circuit.RandomConfig{
			Inputs: inputs, Gates: gates, Outputs: 3, Seed: g.Seed,
		})
		waves := randomWaves(c, nWaves, g.Seed+1)
		period := c.SettleTime() + 10
		ref, err := RunAndVerify(NewSequential(Options{}), c, waves, period)
		if err != nil {
			t.Logf("seq reference failed on %s: %v", c.Name, err)
			return false
		}
		engines := []Engine{
			NewSequentialPQ(Options{}),
			NewHJ(Options{Workers: 3}),
			NewHJ(Options{Workers: 2, PerNodePQ: true, NoTempQueue: true}),
			NewHJ(Options{Workers: 3, NoAffinity: true}),
			NewHJ(Options{Workers: 3, SingleSteal: true}),
			NewGalois(Options{Workers: 2}),
			NewActor(Options{}),
			NewLP(Options{Partitions: 1}),
			NewLP(Options{Partitions: 2}),
			NewLP(Options{Partitions: 3}),
			NewLP(Options{Partitions: 8}),
		}
		for _, e := range engines {
			res, err := RunAndVerify(e, c, waves, period)
			if err != nil {
				t.Logf("%s failed on %s: %v", e.Name(), c.Name, err)
				return false
			}
			if ok, diff := SameOutputs(ref, res); !ok {
				t.Logf("%s disagrees on %s: %s", e.Name(), c.Name, diff)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEventCountScalesLinearlyWithWaves: each wave of the same
// stimulus shape contributes the same number of descendant events, so
// total events must scale exactly linearly in the wave count when waves
// are identical.
func TestPropertyEventCountScalesLinearlyWithWaves(t *testing.T) {
	c := circuit.KoggeStone(8)
	assign := circuit.KoggeStoneAssign(8, 170, 85)
	period := c.SettleTime() + 10
	counts := make([]int64, 0, 3)
	for _, n := range []int{1, 2, 4} {
		waves := make([]map[string]circuit.Value, n)
		for i := range waves {
			waves[i] = assign
		}
		res, err := NewSequential(Options{}).Run(c, circuit.VectorWaves(c, waves, period))
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.TotalEvents)
	}
	if counts[1] != 2*counts[0] || counts[2] != 4*counts[0] {
		t.Fatalf("event counts not linear in waves: %v", counts)
	}
}

// TestPropertyOutputsIndependentOfWorkers: for a fixed circuit and
// stimulus, the HJ engine's outputs must not depend on the worker count.
func TestPropertyOutputsIndependentOfWorkers(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	waves := randomWaves(c, 4, 5)
	period := c.SettleTime() + 10
	stim := circuit.VectorWaves(c, waves, period)
	var ref *Result
	for _, workers := range []int{1, 2, 3, 5, 8} {
		res, err := NewHJ(Options{Workers: workers}).Run(c, stim)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if ok, diff := SameOutputs(ref, res); !ok {
			t.Fatalf("workers=%d changed outputs: %s", res.Workers, diff)
		}
	}
}

// TestPropertySettleMatchesOracleEverywhere: the settled value of every
// output after the final wave equals direct levelized evaluation, for
// all prefix-adder families.
func TestPropertySettleMatchesOracleEverywhere(t *testing.T) {
	f := func(a, b uint16) bool {
		for _, c := range []*circuit.Circuit{circuit.KoggeStone(16), circuit.BrentKung(16)} {
			assign := circuit.PrefixAdderAssign(16, uint64(a), uint64(b))
			res, err := NewHJ(Options{Workers: 2}).Run(c, circuit.SingleWave(c, assign))
			if err != nil {
				return false
			}
			outs := map[string]circuit.Value{}
			for name, h := range res.Outputs {
				if tv, ok := ValueAt(h, c.SettleTime()+1); ok {
					outs[name] = tv.Value
				}
			}
			if circuit.PrefixAdderSum(16, outs) != uint64(a)+uint64(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChangedStimulusSameSettledOutputs: the change-only stimulus
// encoding carries fewer events but must settle every output to the same
// value as the full encoding, on every engine, per the oracle.
func TestChangedStimulusSameSettledOutputs(t *testing.T) {
	c := circuit.C17()
	waves := randomWaves(c, 10, 23)
	period := c.SettleTime() + 10
	stim := circuit.VectorWavesChanged(c, waves, period)
	full := circuit.VectorWaves(c, waves, period)
	if stim.NumEvents() >= full.NumEvents() {
		t.Fatalf("change-only encoding not smaller: %d vs %d", stim.NumEvents(), full.NumEvents())
	}
	for _, e := range testEngines(3) {
		res, err := e.Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := VerifyAgainstOracle(c, waves, period, res); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
}

// TestPropertyLPPartitionSweep: the LP engine must agree exactly with
// the sequential reference on the paper's circuit families and on random
// DAGs, at partition counts spanning the degenerate single-LP case,
// small counts, and counts exceeding the worker parallelism — and every
// run must report a finite null-message ratio (termination without
// deadlock or a null storm).
func TestPropertyLPPartitionSweep(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.KoggeStone(16),
		circuit.TreeMultiplier(6),
		circuit.RandomDAG(circuit.RandomConfig{Inputs: 6, Gates: 100, Outputs: 5, Seed: 77}),
	}
	for _, c := range circuits {
		waves := randomWaves(c, 5, 7)
		period := c.SettleTime() + 10
		ref, err := RunAndVerify(NewSequential(Options{}), c, waves, period)
		if err != nil {
			t.Fatalf("%s: sequential reference: %v", c.Name, err)
		}
		for _, k := range []int{1, 2, 3, 8} {
			// Workers below the partition count exercises K > workers.
			e := NewLP(Options{Partitions: k, Workers: 2, Paranoid: true})
			res, err := RunAndVerify(e, c, waves, period)
			if err != nil {
				t.Fatalf("%s k=%d: %v", c.Name, k, err)
			}
			if ok, diff := SameOutputs(ref, res); !ok {
				t.Fatalf("%s k=%d disagrees with seq: %s", c.Name, k, diff)
			}
			if res.Workers != k {
				t.Fatalf("%s k=%d: Result.Workers = %d", c.Name, k, res.Workers)
			}
			s := res.LP
			if s.Partitions != k {
				t.Fatalf("%s k=%d: stats report %d partitions", c.Name, k, s.Partitions)
			}
			if r := s.NullRatio(); r < 0 || r >= 1 {
				t.Fatalf("%s k=%d: null ratio %f not in [0,1)", c.Name, k, r)
			}
			if s.NullMsgs > 10*s.EventMsgs+1000 {
				t.Fatalf("%s k=%d: null storm: %d nulls vs %d events", c.Name, k, s.NullMsgs, s.EventMsgs)
			}
			if k == 1 && (s.CutEdges != 0 || s.EventMsgs != 0 || s.NullMsgs != 0) {
				t.Fatalf("%s k=1 reported cross traffic: %+v", c.Name, s)
			}
		}
	}
}

func TestC17AllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.C17(), 12, 24)
}

func TestBrentKungAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.BrentKung(16), 6, 21)
}

func TestArrayMultiplierAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.ArrayMultiplier(4), 5, 25)
}

func TestButterflyAllEngines(t *testing.T) {
	verifyAllEngines(t, circuit.Butterfly(4), 6, 22)
}
