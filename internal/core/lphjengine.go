package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/lp"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
)

func init() { RegisterEngine("lp-hj", NewLPHJ) }

// lpHJEngine fuses the partitioned logical-process protocol onto the hj
// work-stealing runtime: the circuit is split into Options.Partitions
// LPs exactly as the lp engine does, but each LP runs as an hj
// IndexedTask on a small worker pool instead of its own goroutine —
// lock-free MPSC mailboxes replace the bounded inbox channels, a
// scheduled-flag dedup keeps at most one pending slice per LP, and each
// slice runs every locally-safe event to completion (with lookahead
// safe-window widening) before yielding. This is the configuration for
// high partition counts (K >> workers), where goroutine-per-LP
// oversubscribes the OS scheduler; the goroutine `lp` engine remains as
// the ablation baseline.
//
// The engine implements ContextEngine (cancellation propagates into the
// runtime and every slice), ProgressReporter and Diagnoser (lp.Probe),
// and Checkpointer (engine-agnostic settle-boundary snapshots), so the
// full Supervise/Resilient stack applies.
type lpHJEngine struct {
	opts  Options
	newIC func(lp int) lp.Interceptor
	probe lp.Probe
	rt    atomic.Pointer[hj.Runtime]
	plan  atomic.Pointer[cachedPlan]
}

// cachedPlan memoizes the partition plan across runs of one engine
// instance. The engine is built for repeated runs on a pooled runtime
// (the serving path re-submits the same circuit many times), and the
// plan is a pure function of (circuit, K) that lp.RunHJ only reads —
// recomputing it dominated the per-run allocation profile. The key is
// the circuit pointer: a rebuilt circuit misses and repartitions.
type cachedPlan struct {
	c    *circuit.Circuit
	k    int
	plan *partition.Plan
}

// NewLPHJ returns the hj-scheduled logical-process engine.
func NewLPHJ(opts Options) Engine { return &lpHJEngine{opts: opts} }

// NewLPHJIntercepted returns an lp-hj engine whose LPs send every
// cross-partition message through an interceptor built by newIC (one
// per LP) — the same chaos boundary as NewLPIntercepted; slices are
// mutually exclusive per LP, so interceptor state needs no locking.
func NewLPHJIntercepted(opts Options, newIC func(lp int) lp.Interceptor) Engine {
	return &lpHJEngine{opts: opts, newIC: newIC}
}

func (e *lpHJEngine) Name() string { return "lp-hj" }

// Progress exposes the run's monotonic activity counter for the stall
// watchdog; zero when no run is active.
func (e *lpHJEngine) Progress() uint64 { return e.probe.Progress() }

// Diagnose renders the per-LP state snapshot (state, clock, mailbox
// depth) of the most recent run.
func (e *lpHJEngine) Diagnose() string { return e.probe.Snapshot() }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) so supervision failure dumps include the per-LP event tail.
func (e *lpHJEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// partitions resolves the LP count: Partitions, else Workers, else
// GOMAXPROCS. Unlike the goroutine engine, K may usefully exceed the
// worker count by orders of magnitude.
func (e *lpHJEngine) partitions() int {
	if e.opts.Partitions > 0 {
		return e.opts.Partitions
	}
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *lpHJEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx: on cancellation the runtime
// is canceled, every slice unwinds, and the context's cause is returned.
func (e *lpHJEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: settle-boundary segments, snapshots
// into store, resume from the latest one (the same engine-agnostic
// layer the goroutine lp engine uses; see lpEngine.RunFrom).
func (e *lpHJEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

func (e *lpHJEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	if err := validateLPOptions(e.Name(), e.opts); err != nil {
		return nil, ResumeState{}, err
	}
	k := e.partitions()
	var plan *partition.Plan
	if cached := e.plan.Load(); cached != nil && cached.c == c && cached.k == k {
		plan = cached.plan
	} else {
		var err error
		plan, err = partition.Partition(c, k)
		if err != nil {
			return nil, ResumeState{}, err
		}
		e.plan.Store(&cachedPlan{c: c, k: k, plan: plan})
	}
	cfg := lp.Config{
		Record:         !e.opts.DiscardOutputs,
		Paranoid:       e.opts.Paranoid,
		Ctx:            ctx,
		NewInterceptor: e.newIC,
		Probe:          &e.probe,
		Trace:          e.opts.Trace,
		Metrics:        e.opts.Metrics,
		CaptureFinal:   capture,
		NoAffinity:     e.opts.NoAffinity,
	}
	if rs != nil {
		cfg.InitVals = rs.InVal
	}

	hcfg := hj.Config{Workers: e.opts.workers()}
	if e.opts.SingleSteal {
		hcfg.StealMax = 1
	}
	if ch := e.opts.Chaos; ch != nil {
		hcfg.TaskHook = ch.Task
		hcfg.WakeHook = ch.Wake
	}
	// Caller-owned runtime (the serving pool): reuse its workers and
	// leave its lifecycle alone. Chaos hooks are wired at runtime
	// construction, so hooked runs always build a private one. The LP
	// flight recorder attaches through lp.Config (ring shard = LP id),
	// NOT hj.Config — sharing shards between workers and LPs would give
	// the seqlock rings two writers.
	rt := e.opts.Runtime
	if rt == nil || e.opts.Chaos != nil {
		hrt := hj.NewRuntime(hcfg)
		defer hrt.Shutdown()
		rt = hrt
	}
	e.rt.Store(rt)

	// Propagate external cancellation into the runtime; the watcher is
	// reaped on return (and never cancels after a completed run, which
	// would poison a pooled caller-owned runtime).
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				select {
				case <-watchDone:
				default:
					rt.Cancel()
				}
			case <-watchDone:
			}
		}()
	}

	res, err := lp.RunHJ(c, stim, plan, rt, cfg)
	if err != nil {
		var pe *lp.PanicError
		if errors.As(err, &pe) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.Name(), Unit: fmt.Sprintf("lp %d", pe.LP),
				Reason: FailPanic, Value: pe.Value, Stack: pe.Stack, Err: pe,
			}
		}
		var tp *hj.TaskPanic
		if errors.As(err, &tp) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.Name(), Unit: fmt.Sprintf("worker %d", tp.Worker),
				Reason: FailPanic, Value: tp.Value, Stack: tp.Stack, Err: tp,
			}
		}
		// Global starvation quiesces the runtime instead of blocking LPs
		// (mailboxes never block), so a conservative deadlock is detected
		// at collection time rather than by the stall watchdog. Map it to
		// the same structured stall, with the per-LP probe snapshot the
		// watchdog would have attached.
		var de *lp.DeadlockError
		if errors.As(err, &de) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.Name(), Unit: fmt.Sprintf("lp %d", plan.Assign[de.Node]),
				Reason: FailStall, Diag: e.probe.Snapshot(), Err: de,
			}
		}
		return nil, ResumeState{}, err
	}
	outputs := make(map[string][]TimedValue, len(res.Outputs))
	for name, h := range res.Outputs {
		tv := make([]TimedValue, len(h))
		for i, s := range h {
			tv[i] = TimedValue{Time: s.Time, Value: s.Value}
		}
		outputs[name] = tv
	}
	out := &Result{
		Engine:      e.Name(),
		Workers:     rt.NumWorkers(),
		TotalEvents: res.TotalEvents,
		NodeEvents:  res.NodeEvents,
		Elapsed:     time.Since(start),
		Outputs:     outputs,
		LP:          res.Stats,
	}
	out.FillMetrics(e.opts)
	return out, ResumeState{InVal: res.FinalVals}, nil
}

// validateLPOptions rejects nonsensical LP-engine options up front with
// a structured, non-retryable *EngineError, instead of letting them
// surface later as an allocation panic (a huge InboxCap backs a channel
// allocation) or a confusing partitioner error. Shared by the lp and
// lp-hj engines.
func validateLPOptions(engine string, opts Options) error {
	bad := func(format string, args ...any) error {
		return &EngineError{Engine: engine, Reason: FailConfig, Err: fmt.Errorf(format, args...)}
	}
	const maxInboxCap = 1 << 24 // 16M batches: far beyond any sane bound, small enough to allocate
	const maxPartitions = 1 << 20
	switch {
	case opts.LPInboxCap < 0:
		return bad("LPInboxCap %d is negative (0 means the default)", opts.LPInboxCap)
	case opts.LPInboxCap > maxInboxCap:
		return bad("LPInboxCap %d exceeds the %d maximum", opts.LPInboxCap, maxInboxCap)
	case opts.Partitions < 0:
		return bad("Partitions %d is negative (0 derives the count from Workers)", opts.Partitions)
	case opts.Partitions > maxPartitions:
		return bad("Partitions %d exceeds the %d maximum", opts.Partitions, maxPartitions)
	case opts.Workers < 0:
		return bad("Workers %d is negative (0 means GOMAXPROCS)", opts.Workers)
	}
	return nil
}
