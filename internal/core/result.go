package core

import (
	"fmt"
	"time"

	"hjdes/internal/galois"
	"hjdes/internal/hj"
	"hjdes/internal/lp"
	"hjdes/internal/obs"
)

// Result is the outcome of one simulation run.
type Result struct {
	Engine      string
	Workers     int
	TotalEvents int64         // signal events processed across all nodes
	NodeEvents  []int64       // per-node processed-event counts, by NodeID
	Elapsed     time.Duration // wall time of the whole run
	Outputs     map[string][]TimedValue

	// Attempts is how many supervised attempts the run took (1 = clean
	// first try); Degraded reports that a fallback engine, not the one
	// originally requested, produced the result. Set by core.Resilient.
	Attempts int
	Degraded bool

	HJ       hj.StatsSnapshot     // populated by the HJ engine
	Galois   galois.StatsSnapshot // populated by the Galois engine
	TimeWarp TWStats              // populated by the Time Warp engine
	LP       lp.Stats             // populated by the LP engine

	// Metrics is the run's uniform counter map: every engine family folds
	// its typed stats into dot-namespaced keys ("events", "hj.spawns",
	// "lp.null_msgs", "galois.aborted", "tw.rollbacks", "chaos.kills"), so
	// reporting code needs no per-engine switch.
	Metrics obs.Metrics
}

// FillMetrics populates r.Metrics from the typed per-engine stats and, when
// opts.Metrics is non-nil, folds the map into the shared registry. Engines
// call it once at the end of a successful Run.
func (r *Result) FillMetrics(opts Options) {
	m := make(obs.Metrics)
	m.Add("events", r.TotalEvents)
	if r.HJ != (hj.StatsSnapshot{}) {
		r.HJ.MetricsInto(m)
	}
	if r.Galois != (galois.StatsSnapshot{}) {
		r.Galois.MetricsInto(m)
	}
	if r.TimeWarp != (TWStats{}) {
		r.TimeWarp.MetricsInto(m)
	}
	if r.LP.Partitions > 0 {
		r.LP.MetricsInto(m)
	}
	r.Metrics = m
	if opts.Metrics != nil {
		opts.Metrics.MergeMetrics(m)
	}
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: %d events in %v (%.2f Mev/s)",
		r.Engine, r.TotalEvents, r.Elapsed, r.EventsPerSec()/1e6)
}

// EventsPerSec reports processing throughput.
func (r *Result) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalEvents) / r.Elapsed.Seconds()
}

// SettledValues reduces an output's event history to its final value at
// each distinct timestamp. Engines may interleave same-timestamp events
// differently (the paper notes ties can be processed in any order), but
// the last value at each timestamp — the settled value — is deterministic,
// so this is the representation cross-engine comparison uses.
func SettledValues(history []TimedValue) []TimedValue {
	var out []TimedValue
	for _, tv := range history {
		if len(out) > 0 && out[len(out)-1].Time == tv.Time {
			out[len(out)-1] = tv
			continue
		}
		out = append(out, tv)
	}
	return out
}

// ValueAt returns the output's settled value at time t (the value carried
// by the last event with timestamp <= t), or Low if no event has arrived
// by t.
func ValueAt(history []TimedValue, t int64) (v TimedValue, ok bool) {
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Time <= t {
			return history[i], true
		}
	}
	return TimedValue{}, false
}

// SameOutputs reports whether two results agree on every output's settled
// value sequence and on the total event count; it returns a description
// of the first disagreement.
func SameOutputs(a, b *Result) (bool, string) {
	if a.TotalEvents != b.TotalEvents {
		return false, fmt.Sprintf("total events differ: %s=%d %s=%d", a.Engine, a.TotalEvents, b.Engine, b.TotalEvents)
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false, fmt.Sprintf("output sets differ: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for name, ha := range a.Outputs {
		hb, ok := b.Outputs[name]
		if !ok {
			return false, fmt.Sprintf("output %q missing in %s", name, b.Engine)
		}
		sa, sb := SettledValues(ha), SettledValues(hb)
		if len(sa) != len(sb) {
			return false, fmt.Sprintf("output %q: %d settled samples vs %d", name, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false, fmt.Sprintf("output %q sample %d: %+v vs %+v", name, i, sa[i], sb[i])
			}
		}
	}
	return true, ""
}
