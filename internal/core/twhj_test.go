package core

import (
	"errors"
	"testing"

	"hjdes/internal/circuit"
)

// The barrier-free engine must commit exactly what the sequential
// reference produces on every circuit family, with speculation armed
// (Paranoid also arms the in-engine GVT-safety assertion: a received
// event below published GVT panics the run).
func TestTWHJCircuits(t *testing.T) {
	for _, tc := range []struct {
		c     *circuit.Circuit
		waves int
	}{
		{circuit.FullAdder(), 12},
		{circuit.Mux2(), 10},
		{circuit.C17(), 10},
		{circuit.ParityChain(16), 5},
		{circuit.KoggeStone(12), 6},
		{circuit.BrentKung(10), 6},
		{circuit.TreeMultiplier(5), 4},
		{circuit.Butterfly(3), 6},
	} {
		t.Run(tc.c.Name, func(t *testing.T) {
			twVerify(t, NewTWHJ(Options{Paranoid: true}), tc.c, tc.waves, 51)
		})
	}
}

func TestTWHJRandomCircuits(t *testing.T) {
	for _, seed := range []int64{61, 62, 63, 64} {
		c := circuit.RandomDAG(circuit.RandomConfig{Inputs: 6, Gates: 90, Outputs: 5, Seed: seed})
		twVerify(t, NewTWHJ(Options{Paranoid: true}), c, 4, seed)
	}
}

// The optimism window is scheduling-only: any bound (including the
// degenerate 1 and the effectively-unbounded 1<<40) commits identical
// results, and a bounded window renames the engine.
func TestTWHJWindows(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	for _, w := range []int64{0, 1, 5, 50, 1 << 40} {
		res := twVerify(t, NewTWHJ(Options{TimeWarpWindow: w, Paranoid: true}), c, 4, 53)
		if w > 0 && res.Engine == "tw-hj" {
			t.Fatalf("windowed engine misnamed %q", res.Engine)
		}
	}
}

// Incremental state saving is semantics-preserving for every interval:
// coast-forward from the nearest anchor must reconstruct exactly the
// state full saving would have restored.
func TestTWHJSaveEvery(t *testing.T) {
	c := circuit.TreeMultiplier(5)
	for _, se := range []int{0, 1, 2, 3, 7, 64, 1 << 20} {
		twVerify(t, NewTWHJ(Options{TimeWarpSaveEvery: se, Paranoid: true}), c, 4, 54)
	}
}

// Adaptive throttling only moves the effective window; results are
// invariant, seeded from settle time when no window is given.
func TestTWHJAdaptive(t *testing.T) {
	c := circuit.TreeMultiplier(5)
	twVerify(t, NewTWHJ(Options{TimeWarpAdaptive: true, Paranoid: true}), c, 5, 55)
	twVerify(t, NewTWHJ(Options{TimeWarpAdaptive: true, TimeWarpWindow: 30, Paranoid: true}), c, 5, 56)
}

func TestTWHJWorkerIndependence(t *testing.T) {
	c := circuit.KoggeStone(10)
	waves := randomWaves(c, 5, 57)
	period := c.SettleTime() + 10
	stim := circuit.VectorWaves(c, waves, period)
	ref, err := NewTWHJ(Options{Workers: 1, Paranoid: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := NewTWHJ(Options{Workers: workers, Paranoid: true}).Run(c, stim)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ok, diff := SameOutputs(ref, res); !ok {
			t.Fatalf("workers=%d: %s", workers, diff)
		}
		// Unlike the BSP engine, speculation here is schedule-dependent,
		// so only the committed outputs (checked above) and committed
		// event counts are deterministic — not the rollback counters.
		if res.TotalEvents != ref.TotalEvents {
			t.Fatalf("workers=%d: committed %d events, want %d", workers, res.TotalEvents, ref.TotalEvents)
		}
	}
}

func TestTWHJStatsPopulated(t *testing.T) {
	c := circuit.TreeMultiplier(6)
	waves := randomWaves(c, 6, 58)
	period := c.SettleTime() + 10
	res, err := NewTWHJ(Options{Workers: 4}).Run(c, circuit.VectorWaves(c, waves, period))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeWarp == (TWStats{}) {
		t.Fatal("no Time Warp stats recorded")
	}
	if res.TimeWarp.Rounds != 0 {
		t.Fatalf("barrier-free engine reported %d BSP rounds", res.TimeWarp.Rounds)
	}
	if res.TimeWarp.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestTWHJCommittedEventCountsMatchConservative(t *testing.T) {
	c := circuit.TreeMultiplier(4)
	stim := circuit.VectorWaves(c, randomWaves(c, 5, 59), c.SettleTime()+10)
	cons, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewTWHJ(Options{Paranoid: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if cons.TotalEvents != opt.TotalEvents {
		t.Fatalf("committed %d, conservative %d", opt.TotalEvents, cons.TotalEvents)
	}
	for i := range cons.NodeEvents {
		if cons.NodeEvents[i] != opt.NodeEvents[i] {
			t.Fatalf("node %d: %d vs %d", i, opt.NodeEvents[i], cons.NodeEvents[i])
		}
	}
}

func TestTWHJEmptyStimulus(t *testing.T) {
	c := circuit.FullAdder()
	res, err := NewTWHJ(Options{}).Run(c, circuit.NewStimulus(c))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents != 0 {
		t.Fatalf("events = %d", res.TotalEvents)
	}
}

func TestTWHJDiscardOutputs(t *testing.T) {
	c := circuit.C17()
	stim := circuit.VectorWaves(c, randomWaves(c, 4, 60), c.SettleTime()+10)
	res, err := NewTWHJ(Options{DiscardOutputs: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range res.Outputs {
		if len(h) != 0 {
			t.Fatalf("output %q recorded despite DiscardOutputs", name)
		}
	}
	if res.TotalEvents == 0 {
		t.Fatal("no events processed")
	}
}

func TestTWHJOptionValidation(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.SingleWave(c, map[string]circuit.Value{"a": 1})
	for _, opts := range []Options{
		{Workers: -1},
		{TimeWarpWindow: -5},
		{TimeWarpSaveEvery: -1},
		{TimeWarpSaveEvery: 1 << 21},
	} {
		_, err := NewTWHJ(opts).Run(c, stim)
		var ee *EngineError
		if !errors.As(err, &ee) || ee.Reason != FailConfig {
			t.Fatalf("opts %+v: want FailConfig EngineError, got %v", opts, err)
		}
	}
}
