package core

import (
	"runtime"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/lp"
	"hjdes/internal/partition"
)

// lpEngine is the partitioned logical-process engine: the circuit is
// split into Options.Partitions node-disjoint partitions
// (internal/partition), and each partition is simulated by one logical
// process exchanging timestamped messages under the Chandy–Misra–Bryant
// null-message protocol (internal/lp). Unlike the shared-memory engines,
// no mutable node state is shared between workers — this is the
// architecture that shards a simulation across processes or machines.
type lpEngine struct {
	opts Options
}

// NewLP returns the partitioned logical-process engine.
func NewLP(opts Options) Engine { return &lpEngine{opts: opts} }

func (e *lpEngine) Name() string { return "lp" }

// partitions resolves the LP count: Partitions, else Workers, else
// GOMAXPROCS.
func (e *lpEngine) partitions() int {
	if e.opts.Partitions > 0 {
		return e.opts.Partitions
	}
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *lpEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	start := time.Now()
	plan, err := partition.Partition(c, e.partitions())
	if err != nil {
		return nil, err
	}
	res, err := lp.Run(c, stim, plan, lp.Config{
		Record:   !e.opts.DiscardOutputs,
		Paranoid: e.opts.Paranoid,
	})
	if err != nil {
		return nil, err
	}
	outputs := make(map[string][]TimedValue, len(res.Outputs))
	for name, h := range res.Outputs {
		tv := make([]TimedValue, len(h))
		for i, s := range h {
			tv[i] = TimedValue{Time: s.Time, Value: s.Value}
		}
		outputs[name] = tv
	}
	return &Result{
		Engine:      e.Name(),
		Workers:     plan.K,
		TotalEvents: res.TotalEvents,
		NodeEvents:  res.NodeEvents,
		Elapsed:     time.Since(start),
		Outputs:     outputs,
		LP:          res.Stats,
	}, nil
}
