package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/lp"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
)

// lpEngine is the partitioned logical-process engine: the circuit is
// split into Options.Partitions node-disjoint partitions
// (internal/partition), and each partition is simulated by one logical
// process exchanging timestamped messages under the Chandy–Misra–Bryant
// null-message protocol (internal/lp). Unlike the shared-memory engines,
// no mutable node state is shared between workers — this is the
// architecture that shards a simulation across processes or machines.
//
// The engine implements ContextEngine (cancellation propagates into every
// LP goroutine), ProgressReporter and Diagnoser (via an lp.Probe), so a
// supervised run can be timed out, stall-detected and diagnosed.
type lpEngine struct {
	opts  Options
	newIC func(lp int) lp.Interceptor
	probe lp.Probe
}

// NewLP returns the partitioned logical-process engine.
func NewLP(opts Options) Engine { return &lpEngine{opts: opts} }

// NewLPIntercepted returns an LP engine whose logical processes send
// every cross-partition message through an interceptor built by newIC
// (one per LP). This is the hook the deterministic fault injector in
// internal/chaos plugs into; newIC may return nil for LPs to leave
// untouched.
func NewLPIntercepted(opts Options, newIC func(lp int) lp.Interceptor) Engine {
	return &lpEngine{opts: opts, newIC: newIC}
}

func (e *lpEngine) Name() string { return "lp" }

// Progress exposes the run's monotonic activity counter for the stall
// watchdog; zero when no run is active.
func (e *lpEngine) Progress() uint64 { return e.probe.Progress() }

// Diagnose renders the per-LP state snapshot (state, clock, inbox depth)
// of the most recent run.
func (e *lpEngine) Diagnose() string { return e.probe.Snapshot() }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) so supervision failure dumps include the per-LP event tail.
func (e *lpEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// partitions resolves the LP count: Partitions, else Workers, else
// GOMAXPROCS.
func (e *lpEngine) partitions() int {
	if e.opts.Partitions > 0 {
		return e.opts.Partitions
	}
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *lpEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx: on cancellation every LP
// unwinds at its next blocking point and the context's cause is returned.
func (e *lpEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer. These settle-boundary snapshots are a
// second, engine-agnostic checkpoint layer above lp's own in-run
// crash-point checkpoints (§9): each segment runs the full CMB protocol
// to NULL(∞) termination, so the saved state is trivially crash-consistent
// (no inbox or channel state exists at a segment boundary), and a resume
// may hand the state to a different engine family entirely.
func (e *lpEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

func (e *lpEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	if err := validateLPOptions(e.Name(), e.opts); err != nil {
		return nil, ResumeState{}, err
	}
	plan, err := partition.Partition(c, e.partitions())
	if err != nil {
		return nil, ResumeState{}, err
	}
	cfg := lp.Config{
		Record:         !e.opts.DiscardOutputs,
		Paranoid:       e.opts.Paranoid,
		InboxCap:       e.opts.LPInboxCap,
		Ctx:            ctx,
		NewInterceptor: e.newIC,
		Probe:          &e.probe,
		Trace:          e.opts.Trace,
		Metrics:        e.opts.Metrics,
		CaptureFinal:   capture,
	}
	if rs != nil {
		cfg.InitVals = rs.InVal
	}
	res, err := lp.Run(c, stim, plan, cfg)
	if err != nil {
		var pe *lp.PanicError
		if errors.As(err, &pe) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.Name(), Unit: fmt.Sprintf("lp %d", pe.LP),
				Reason: FailPanic, Value: pe.Value, Stack: pe.Stack, Err: pe,
			}
		}
		return nil, ResumeState{}, err
	}
	outputs := make(map[string][]TimedValue, len(res.Outputs))
	for name, h := range res.Outputs {
		tv := make([]TimedValue, len(h))
		for i, s := range h {
			tv[i] = TimedValue{Time: s.Time, Value: s.Value}
		}
		outputs[name] = tv
	}
	out := &Result{
		Engine:      e.Name(),
		Workers:     plan.K,
		TotalEvents: res.TotalEvents,
		NodeEvents:  res.NodeEvents,
		Elapsed:     time.Since(start),
		Outputs:     outputs,
		LP:          res.Stats,
	}
	out.FillMetrics(e.opts)
	return out, ResumeState{InVal: res.FinalVals}, nil
}
