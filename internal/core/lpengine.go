package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/lp"
	"hjdes/internal/obs"
	"hjdes/internal/partition"
)

// lpEngine is the partitioned logical-process engine: the circuit is
// split into Options.Partitions node-disjoint partitions
// (internal/partition), and each partition is simulated by one logical
// process exchanging timestamped messages under the Chandy–Misra–Bryant
// null-message protocol (internal/lp). Unlike the shared-memory engines,
// no mutable node state is shared between workers — this is the
// architecture that shards a simulation across processes or machines.
//
// The engine implements ContextEngine (cancellation propagates into every
// LP goroutine), ProgressReporter and Diagnoser (via an lp.Probe), so a
// supervised run can be timed out, stall-detected and diagnosed.
type lpEngine struct {
	opts  Options
	newIC func(lp int) lp.Interceptor
	probe lp.Probe
}

// NewLP returns the partitioned logical-process engine.
func NewLP(opts Options) Engine { return &lpEngine{opts: opts} }

// NewLPIntercepted returns an LP engine whose logical processes send
// every cross-partition message through an interceptor built by newIC
// (one per LP). This is the hook the deterministic fault injector in
// internal/chaos plugs into; newIC may return nil for LPs to leave
// untouched.
func NewLPIntercepted(opts Options, newIC func(lp int) lp.Interceptor) Engine {
	return &lpEngine{opts: opts, newIC: newIC}
}

func (e *lpEngine) Name() string { return "lp" }

// Progress exposes the run's monotonic activity counter for the stall
// watchdog; zero when no run is active.
func (e *lpEngine) Progress() uint64 { return e.probe.Progress() }

// Diagnose renders the per-LP state snapshot (state, clock, inbox depth)
// of the most recent run.
func (e *lpEngine) Diagnose() string { return e.probe.Snapshot() }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) so supervision failure dumps include the per-LP event tail.
func (e *lpEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// partitions resolves the LP count: Partitions, else Workers, else
// GOMAXPROCS.
func (e *lpEngine) partitions() int {
	if e.opts.Partitions > 0 {
		return e.opts.Partitions
	}
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *lpEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	return e.run(nil, c, stim)
}

// RunContext runs the simulation under ctx: on cancellation every LP
// unwinds at its next blocking point and the context's cause is returned.
func (e *lpEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	return e.run(ctx, c, stim)
}

func (e *lpEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	start := time.Now()
	plan, err := partition.Partition(c, e.partitions())
	if err != nil {
		return nil, err
	}
	res, err := lp.Run(c, stim, plan, lp.Config{
		Record:         !e.opts.DiscardOutputs,
		Paranoid:       e.opts.Paranoid,
		InboxCap:       e.opts.LPInboxCap,
		Ctx:            ctx,
		NewInterceptor: e.newIC,
		Probe:          &e.probe,
		Trace:          e.opts.Trace,
		Metrics:        e.opts.Metrics,
	})
	if err != nil {
		var pe *lp.PanicError
		if errors.As(err, &pe) {
			return nil, &EngineError{
				Engine: e.Name(), Unit: fmt.Sprintf("lp %d", pe.LP),
				Reason: FailPanic, Value: pe.Value, Stack: pe.Stack, Err: pe,
			}
		}
		return nil, err
	}
	outputs := make(map[string][]TimedValue, len(res.Outputs))
	for name, h := range res.Outputs {
		tv := make([]TimedValue, len(h))
		for i, s := range h {
			tv[i] = TimedValue{Time: s.Time, Value: s.Value}
		}
		outputs[name] = tv
	}
	out := &Result{
		Engine:      e.Name(),
		Workers:     plan.K,
		TotalEvents: res.TotalEvents,
		NodeEvents:  res.NodeEvents,
		Elapsed:     time.Since(start),
		Outputs:     outputs,
		LP:          res.Stats,
	}
	out.FillMetrics(e.opts)
	return out, nil
}
