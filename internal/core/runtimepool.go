package core

import (
	"runtime"
	"sync"

	"hjdes/internal/hj"
	"hjdes/internal/obs"
)

// RuntimePool amortizes hj worker goroutines across simulation jobs: a
// long-running service checks a runtime out per job (Options.Runtime),
// runs on it, and returns it, so steady-state dispatch spawns no worker
// goroutines and allocates no scheduler state. Idle runtimes are kept
// per worker count; every returned runtime passes the Quiescent
// leak/reset check before it can be handed to another job — a canceled,
// panicked or task-leaking runtime is shut down and discarded instead.
// Safe for concurrent use.
type RuntimePool struct {
	mu      sync.Mutex
	free    map[int][]*hj.Runtime // worker count -> idle runtimes
	maxIdle int                   // per worker count; <=0 means 4
	closed  bool

	created   int64 // runtimes constructed
	reused    int64 // Gets served from the free list
	discarded int64 // Puts that failed the health check
}

// NewRuntimePool returns a pool keeping at most maxIdle idle runtimes
// per worker count (<= 0 means 4).
func NewRuntimePool(maxIdle int) *RuntimePool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &RuntimePool{free: make(map[int][]*hj.Runtime), maxIdle: maxIdle}
}

// normWorkers resolves "default" worker counts to the same value the
// runtime itself would (GOMAXPROCS), so the Get key always matches the
// Put key (rt.NumWorkers reports the resolved count, never 0) and a job
// asking for 0 shares runtimes with one asking for the resolved value.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Get checks out a runtime with the given worker count (0 means
// GOMAXPROCS), reusing an idle one when available. The caller owns the
// runtime until Put.
func (p *RuntimePool) Get(workers int) *hj.Runtime {
	workers = normWorkers(workers)
	p.mu.Lock()
	if l := p.free[workers]; len(l) > 0 && !p.closed {
		rt := l[len(l)-1]
		p.free[workers] = l[:len(l)-1]
		p.reused++
		p.mu.Unlock()
		return rt
	}
	p.created++
	p.mu.Unlock()
	return hj.NewRuntime(hj.Config{Workers: workers})
}

// Put returns a runtime checked out by Get. The runtime is re-pooled
// only if it passes the Quiescent health check (alive, no contained
// panic, no task left anywhere); otherwise — or when the pool is closed
// or full — it is shut down. Put reports the health error, nil when the
// runtime was clean (pooled or not).
func (p *RuntimePool) Put(rt *hj.Runtime) error {
	if rt == nil {
		return nil
	}
	if err := rt.Quiescent(); err != nil {
		rt.Shutdown()
		p.mu.Lock()
		p.discarded++
		p.mu.Unlock()
		return err
	}
	key := rt.NumWorkers()
	p.mu.Lock()
	if !p.closed && len(p.free[key]) < p.maxIdle {
		p.free[key] = append(p.free[key], rt)
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	rt.Shutdown()
	return nil
}

// Close shuts down every idle runtime and marks the pool closed:
// subsequent Gets build throwaway runtimes and Puts shut them down.
func (p *RuntimePool) Close() {
	p.mu.Lock()
	p.closed = true
	var all []*hj.Runtime
	for k, l := range p.free {
		all = append(all, l...)
		delete(p.free, k)
	}
	p.mu.Unlock()
	for _, rt := range all {
		rt.Shutdown()
	}
}

// RuntimePoolStats is a point-in-time view of the pool's counters.
type RuntimePoolStats struct {
	Created   int64 // runtimes constructed
	Reused    int64 // checkouts served without spawning workers
	Discarded int64 // returns rejected by the health check
	Idle      int   // runtimes currently parked in the pool
}

// Stats snapshots the pool counters.
func (p *RuntimePool) Stats() RuntimePoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := RuntimePoolStats{Created: p.created, Reused: p.reused, Discarded: p.discarded}
	for _, l := range p.free {
		s.Idle += len(l)
	}
	return s
}

// MetricsInto writes the pool counters into a flat metrics map
// (assignment, not addition, so repeated folding is idempotent).
func (s RuntimePoolStats) MetricsInto(m obs.Metrics) {
	m["pool.created"] = s.Created
	m["pool.reused"] = s.Reused
	m["pool.discarded"] = s.Discarded
	m["pool.idle"] = int64(s.Idle)
}
