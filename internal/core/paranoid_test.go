package core

import (
	"testing"

	"hjdes/internal/circuit"
)

// TestParanoidDetectsCausalityViolation drives a node's receive path
// directly with out-of-order timestamps and expects the armed assertion
// to fire.
func TestParanoidDetectsCausalityViolation(t *testing.T) {
	c := circuit.FullAdder()
	s, err := newSimState(c, circuit.NewStimulus(c), Options{Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	// Any gate node will do; feed port 0 backwards in time.
	var gate *nodeState
	for i := range s.nodes {
		if s.nodes[i].kind.IsGate() {
			gate = &s.nodes[i]
			break
		}
	}
	gate.receive(0, Event{Time: 10, Value: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("causality violation not detected")
		}
	}()
	gate.receive(0, Event{Time: 9, Value: 0})
}

// TestParanoidOffToleratesDirectMisuse documents that the assertion is
// opt-in: without Paranoid the same misuse is not trapped (the engines
// themselves never produce it; the tests run with Paranoid on).
func TestParanoidOffToleratesDirectMisuse(t *testing.T) {
	c := circuit.FullAdder()
	s, err := newSimState(c, circuit.NewStimulus(c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gate *nodeState
	for i := range s.nodes {
		if s.nodes[i].kind.IsGate() {
			gate = &s.nodes[i]
			break
		}
	}
	gate.receive(0, Event{Time: 10, Value: 1})
	gate.receive(0, Event{Time: 9, Value: 0}) // tolerated silently
}
