package core

import (
	"context"
	"fmt"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/galois"
)

// galoisEngine is Algorithm 3: the simulation expressed as a Galois
// unordered-set optimistic iterator over active nodes. Matching the
// Galois-Java version the paper benchmarks against, it uses one priority
// queue per node for event storage and per-node conflict objects, and it
// cannot apply the paper's cautious lock-checking or temp-queue
// optimizations: the body simply touches its neighborhood through
// Iteration.Acquire and lets the runtime detect conflicts and retry.
//
// The fine-grained variant (NewGaloisFine) acquires per-input-port
// conflict objects instead — the optimistic-side analog of the paper's
// Section 4.5.1 lock-granularity optimization. Because an activity then
// owns only the ports it touches, it cannot safely inspect a neighbor's
// activity, so it pushes all downstream neighbors it delivered to
// unconditionally (spurious activities are no-ops).
type galoisEngine struct {
	opts Options
	fine bool
}

// NewGalois returns the Galois-baseline engine.
func NewGalois(opts Options) Engine {
	opts.PerNodePQ = true // the Galois-Java version's data structure
	return &galoisEngine{opts: opts}
}

// NewGaloisFine returns the per-port-granularity Galois variant. It
// pairs the finer conflict objects with per-port deque storage: a shared
// per-node priority queue would be written concurrently by activities
// owning different ports of the same node, so the data-structure choice
// and the conflict granularity go together (the same coupling as in the
// paper's Section 4.5.1).
func NewGaloisFine(opts Options) Engine {
	opts.PerNodePQ = false
	return &galoisEngine{opts: opts, fine: true}
}

func (e *galoisEngine) Name() string {
	if e.fine {
		return "galois-fine"
	}
	return "galois"
}

func (e *galoisEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.runSeg(c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: settle-boundary segments, snapshots
// into store, resume from the latest one.
func (e *galoisEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(_ context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.runSeg(c, seg, rs, true)
		})
}

func (e *galoisEngine) runSeg(c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, ResumeState{}, err
	}
	s.seedResume(rs)
	record := !e.opts.DiscardOutputs
	rt := galois.New(e.opts.workers())
	rt.SetTrace(e.opts.Trace)
	if ch := e.opts.Chaos; ch != nil {
		rt.SetTaskHook(ch.Task)
	}
	before := rt.Stats()

	initial := make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		initial[i] = int32(id)
	}

	body := func(it *galois.Iteration[int32], n int32) {
		ns := &s.nodes[n]
		// Acquire the activity's whole neighborhood. The runtime aborts
		// and retries on conflict; since all acquisitions precede all
		// mutations, no undo entries are needed (the operator is
		// structurally cautious even though the user code cannot check
		// ownership — the Galois runtime enforces it).
		it.Acquire(&ns.obj)
		for _, d := range ns.fanout {
			it.Acquire(&s.nodes[d.node].obj)
		}
		s.simulate(ns, nil, record)
		// foreach m in n ∪ neighbors: if isActive(m): WS ∪= m. Safe to
		// inspect neighbors here: the activity owns them.
		if ns.needsRun() {
			it.Push(n)
		}
		for _, d := range ns.fanout {
			if s.nodes[d.node].needsRun() {
				it.Push(d.node)
			}
		}
	}
	if e.fine {
		body = func(it *galois.Iteration[int32], n int32) {
			ns := &s.nodes[n]
			// Per-port granularity: own every input port (to drain
			// ready events) and every fanout destination port (to
			// deliver), mirroring the HJ engine's per-port lock set.
			for p := range ns.ports {
				it.Acquire(&ns.ports[p].obj)
			}
			for _, d := range ns.fanout {
				it.Acquire(&s.nodes[d.node].ports[d.port].obj)
			}
			// nullSent may only be read once the node's ports are owned:
			// a concurrent activity for the same node sets it inside
			// sendNull under the same ownership.
			hadWork := !ns.nullSent
			if !hadWork && !ns.needsRun() {
				return // spurious activity
			}
			delivered := ns.needsRun()
			s.simulate(ns, nil, record)
			if delivered {
				// Owning only single ports of the neighbors, activity
				// checks on them would race; push them unconditionally.
				for _, d := range ns.fanout {
					it.Push(d.node)
				}
			}
		}
	}
	galois.ForEach(rt, initial, body)

	if bad := s.checkAllNullSent(); bad >= 0 {
		return nil, ResumeState{}, fmt.Errorf("core: galois simulation ended with node %d not terminated", bad)
	}
	var final ResumeState
	if capture {
		final = s.captureResume()
	}
	s.release()
	res := &Result{
		Engine:      e.Name(),
		Workers:     rt.NumWorkers(),
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
		Galois:      statsDelta(rt.Stats(), before),
	}
	res.FillMetrics(e.opts)
	return res, final, nil
}

func statsDelta(now, before galois.StatsSnapshot) galois.StatsSnapshot {
	return galois.StatsSnapshot{
		Committed: now.Committed - before.Committed,
		Aborted:   now.Aborted - before.Aborted,
		Pushed:    now.Pushed - before.Pushed,
	}
}
