package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/hj"
	"hjdes/internal/lp"
	"hjdes/internal/obs"
	"hjdes/internal/queue"
)

func init() { RegisterEngine("tw-hj", NewTWHJ) }

// twhjEngine is the barrier-free optimistic engine: Time Warp fused onto
// the hj work-stealing runtime. Where the barrier `timewarp` engine runs
// BSP rounds — every node steps, then a global barrier computes GVT and
// swaps message banks — tw-hj gives each circuit node its own logical
// process running as an hj IndexedTask: events and anti-messages travel
// through the same lock-free MPSC mailboxes the lp-hj engine uses, a
// scheduled-flag dedup keeps at most one pending slice per node, and no
// node ever waits for any other. GVT is computed asynchronously by a
// Mattern-style sweep goroutine off the critical path: each node
// publishes a floor (the minimum timestamp it may still send at) and
// sent/received message counts on padded atomics; when a double-read of
// the counters shows no message in transit, the minimum floor is a safe
// GVT, which drives fossil collection, commit, and the optimism
// throttle. See DESIGN.md §16 for the safety argument.
//
// Two optimizations ride on the barrier-free core: incremental state
// saving (Options.TimeWarpSaveEvery logs pre-state only at anchor
// events, rollback coast-forwards from the nearest anchor) and adaptive
// optimism throttling (Options.TimeWarpAdaptive lets the sweep widen or
// narrow the effective TimeWarpWindow from the observed rollback
// fraction). Both are semantics-preserving.
//
// The engine implements ContextEngine, ProgressReporter, Diagnoser,
// TraceSource and Checkpointer, so the full Supervise/Resilient stack
// applies; the barrier `timewarp` engine remains registered as the
// ablation baseline.
type twhjEngine struct {
	opts Options
	name string
	runP atomic.Pointer[twhjRun]
}

// NewTWHJ returns the barrier-free optimistic engine.
// Options.TimeWarpWindow bounds speculation (0 = unbounded).
func NewTWHJ(opts Options) Engine {
	name := "tw-hj"
	if opts.TimeWarpWindow > 0 {
		name = fmt.Sprintf("tw-hj-w%d", opts.TimeWarpWindow)
	}
	return &twhjEngine{opts: opts, name: name}
}

func (e *twhjEngine) Name() string { return e.name }

// TraceRecorder exposes the run's flight recorder (nil when tracing is
// off) for supervision failure dumps.
func (e *twhjEngine) TraceRecorder() *obs.Recorder { return e.opts.Trace }

// Progress exposes the monotonic processed-event counter of the current
// (or most recent) run for the stall watchdog.
func (e *twhjEngine) Progress() uint64 {
	if r := e.runP.Load(); r != nil {
		return r.progress.Load()
	}
	return 0
}

// Diagnose renders the GVT-accounting snapshot of the most recent run:
// published GVT, effective window, and the per-node floors and message
// counters (atomics only — a diagnostic may race an abandoned run).
func (e *twhjEngine) Diagnose() string {
	r := e.runP.Load()
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tw-hj: gvt=%d window=%d progress=%d nodes=%d\n",
		r.gvt.Load(), r.effWin.Load(), r.progress.Load(), len(r.nodes))
	shown := 0
	for i := range r.nodes {
		cell := &r.cells[i]
		f := cell.floor.Load()
		if f == TimeInfinity && !r.nodes[i].sched.Load() {
			continue
		}
		fmt.Fprintf(&b, "node %d: floor=%d sent=%d recvd=%d sched=%v\n",
			i, f, cell.sent.Load(), cell.recvd.Load(), r.nodes[i].sched.Load())
		if shown++; shown >= 32 {
			fmt.Fprintf(&b, "... (%d nodes total)\n", len(r.nodes))
			break
		}
	}
	return b.String()
}

// twMail / twMailbox instantiate the lp package's lock-free MPSC
// mailbox for Time Warp traffic: one node carries one batch of
// (positive or anti) events. Per-sender FIFO — push order preserved by
// the drain reversal — is what guarantees a positive message always
// arrives before its own anti-message.
type (
	twMail    = lp.Mail[[]twEvent]
	twMailbox = lp.Mailbox[[]twEvent]
)

// twhjRecord is one processed event in the rollback log. Under
// incremental state saving only anchor records carry the pre-state;
// rollback to a non-anchor record replays forward from the nearest
// earlier anchor (coast-forward).
type twhjRecord struct {
	ev     twEvent
	preVal [2]circuit.Value
	hasPre bool
	sends  []twSend
}

// gvtCell is one node's GVT accounting, alone on its cache line: the
// floor (a lower bound on every timestamp this node may still send at)
// and cumulative sent/received message counts. The sweep reads all
// cells; each node writes only its own, so padding keeps the sweep's
// scans from bouncing the nodes' hot lines.
type gvtCell struct {
	floor atomic.Int64
	sent  atomic.Int64
	recvd atomic.Int64
	_     [40]byte
}

// twhjNode is one circuit node's Time Warp logical process. Fields
// before the pad are owner-only (touched inside the node's slice, which
// the scheduled-flag protocol makes exclusive); the mailbox head and
// the scheduled flag after the pad are written by peers.
type twhjNode struct {
	id     int32
	home   int32 // home hj worker (submit-to-owner affinity)
	kind   circuit.Kind
	delay  int64
	fanout []dest

	inputQ    *queue.Heap[twEvent]
	cancelled map[int64]bool // tombstones for annihilated queued events
	log       []twhjRecord
	inVal     [2]circuit.Value
	lvt       int64
	emitSeq   int64
	sliceSeq  int64 // chaos rollback key and EvSlice counter
	sinceSave int   // events since the last state-saving anchor

	out       [][]twEvent // per-fanout-slot send buffers, flushed at slice end
	mailFree  []*twMail   // owner-only recycled mail nodes (migrate sender→receiver)
	batchFree [][]twEvent // owner-only recycled batch slices

	history     []TimedValue
	transitions []circuit.Transition
	archived    int64
	rollbacks   int64
	undone      int64
	antis       int64
	stragglers  int64

	ring   *obs.Ring // flight-recorder shard = node id; nil when off
	ticket atomic.Pointer[hj.Ticket]

	_     [64]byte
	mb    twMailbox
	sched atomic.Bool
}

// twhjSweepInterval paces the GVT sweep goroutine. Low-frequency by
// design: the sweep is off every node's critical path, and a tick only
// advances fossil collection, the optimism throttle, and throttled-node
// wakeups.
const twhjSweepInterval = 50 * time.Microsecond

// twhjMailChunk is the slab size for mail-node carving.
const twhjMailChunk = 64

// twhjRun is one barrier-free run.
type twhjRun struct {
	nodes []twhjNode
	cells []gvtCell

	gvt      atomic.Int64 // last published safe GVT (monotone; -1 before the first sweep)
	effWin   atomic.Int64 // effective optimism window; 0 = unbounded
	progress atomic.Uint64
	undoneA  atomic.Int64 // rollback-undone events, for the adaptive throttle
	done     atomic.Bool  // cancellation flag checked inside long slices

	record    bool
	paranoid  bool
	noAff     bool
	adaptive  bool
	saveEvery int
	minWin    int64
	maxWin    int64
	hooks     *ChaosHooks

	sliceTask hj.IndexedTask
	sweepRing *obs.Ring // EvRound shard = len(nodes); sweep-goroutine only

	// sweep-goroutine-private counters, read after the sweep joins.
	sweeps, fires, widens, narrows int64

	// sweep snapshot scratch (allocated once).
	snapSent, snapRecvd []int64
}

func (e *twhjEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(nil, c, stim, nil, false)
	return res, err
}

// RunContext runs the simulation under ctx: on cancellation the runtime
// is canceled, every slice unwinds at its next check, and the context's
// cause is returned.
func (e *twhjEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.run(ctx, c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer. Like the barrier engine, snapshots
// are taken at settle boundaries, which coincide with GVT = ∞ for the
// segment: every log entry has been fossil-collected, so the saved wire
// state is fully committed — never speculative.
func (e *twhjEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(sctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.run(sctx, c, seg, rs, true)
		})
}

// validateTWHJOptions rejects nonsensical optimistic-engine options up
// front with a structured, non-retryable *EngineError.
func validateTWHJOptions(engine string, opts Options) error {
	bad := func(format string, args ...any) error {
		return &EngineError{Engine: engine, Reason: FailConfig, Err: fmt.Errorf(format, args...)}
	}
	const maxSaveEvery = 1 << 20
	switch {
	case opts.Workers < 0:
		return bad("Workers %d is negative (0 means GOMAXPROCS)", opts.Workers)
	case opts.TimeWarpWindow < 0:
		return bad("TimeWarpWindow %d is negative (0 means unbounded)", opts.TimeWarpWindow)
	case opts.TimeWarpSaveEvery < 0:
		return bad("TimeWarpSaveEvery %d is negative (0 means save every event)", opts.TimeWarpSaveEvery)
	case opts.TimeWarpSaveEvery > maxSaveEvery:
		return bad("TimeWarpSaveEvery %d exceeds the %d maximum", opts.TimeWarpSaveEvery, maxSaveEvery)
	}
	return nil
}

func (e *twhjEngine) run(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	if err := validateTWHJOptions(e.name, e.opts); err != nil {
		return nil, ResumeState{}, err
	}
	if err := stim.Validate(c); err != nil {
		return nil, ResumeState{}, err
	}

	// Runtime selection mirrors lp-hj: reuse a caller-owned (pooled)
	// runtime when given one, except for chaotic runs, whose hooks are
	// wired at runtime construction. Tracing does not force a private
	// runtime: node slices record on per-node ring shards, never through
	// hj.Config (sharing shards between workers and nodes would give the
	// seqlock rings two writers).
	hcfg := hj.Config{Workers: e.opts.workers()}
	if e.opts.SingleSteal {
		hcfg.StealMax = 1
	}
	if ch := e.opts.Chaos; ch != nil {
		hcfg.TaskHook = ch.Task
		hcfg.WakeHook = ch.Wake
	}
	rt := e.opts.Runtime
	private := rt == nil || e.opts.Chaos != nil
	if private {
		rt = hj.NewRuntime(hcfg)
		defer rt.Shutdown()
	}

	r := &twhjRun{
		record:    !e.opts.DiscardOutputs,
		paranoid:  e.opts.Paranoid,
		noAff:     e.opts.NoAffinity,
		adaptive:  e.opts.TimeWarpAdaptive,
		saveEvery: e.opts.TimeWarpSaveEvery,
		hooks:     e.opts.Chaos,
	}
	r.gvt.Store(-1)
	win := e.opts.TimeWarpWindow
	if r.adaptive {
		if win == 0 {
			win = 4 * c.SettleTime() // a real window to adapt from
		}
		r.minWin = max(1, win/16)
		r.maxWin = win * 16
	}
	r.effWin.Store(win)
	e.runP.Store(r)

	// Build nodes. Home workers tile the index space so neighbor nodes
	// share a worker and cross-node mail stays cache-warm.
	w := rt.NumWorkers()
	r.nodes = make([]twhjNode, len(c.Nodes))
	r.cells = make([]gvtCell, len(c.Nodes))
	r.snapSent = make([]int64, len(c.Nodes))
	r.snapRecvd = make([]int64, len(c.Nodes))
	for i := range c.Nodes {
		cn := &c.Nodes[i]
		n := &r.nodes[i]
		n.id = int32(cn.ID)
		n.home = int32(i * w / len(c.Nodes))
		n.kind = cn.Kind
		n.delay = cn.Kind.Delay()
		n.fanout = make([]dest, len(cn.Fanout))
		for j, p := range cn.Fanout {
			n.fanout[j] = dest{node: int32(p.Node), port: int32(p.In)}
		}
		n.out = make([][]twEvent, len(n.fanout))
		n.inputQ = queue.NewHeap(lessTWEvent)
		n.cancelled = map[int64]bool{}
		n.lvt = -1
		n.ring = e.opts.Trace.Ring(i)
		r.cells[i].floor.Store(TimeInfinity)
	}
	r.sweepRing = e.opts.Trace.Ring(len(r.nodes))
	for i, id := range c.Inputs {
		r.nodes[id].transitions = stim.ByInput[i]
	}
	if rs != nil && len(rs.InVal) == len(r.nodes) {
		for i := range r.nodes {
			r.nodes[i].inVal = rs.InVal[i]
		}
	}
	r.sliceTask = func(hctx *hj.Ctx, idx int32) { r.slice(hctx, idx) }

	// Flood the stimulus: input terminals are conservative (they never
	// roll back), so their whole schedules go out before the first slice
	// runs. Sends are counted before the push, like every send.
	for _, id := range c.Inputs {
		n := &r.nodes[id]
		for slot := range n.fanout {
			batch := make([]twEvent, 0, len(n.transitions))
			for _, tr := range n.transitions {
				ev := twEvent{Time: tr.Time + circuit.WireDelay, Value: tr.Value}
				n.emitSeq++
				ev.ID = int64(n.id)<<40 | n.emitSeq
				ev.Port = n.fanout[slot].port
				batch = append(batch, ev)
			}
			if len(batch) == 0 {
				continue
			}
			d := n.fanout[slot]
			r.cells[id].sent.Add(int64(len(batch)))
			r.nodes[d.node].mb.Push(&twMail{Val: batch})
		}
	}

	// Propagate external cancellation into the runtime; the watcher is
	// reaped on return and never cancels a completed run (which would
	// poison a pooled caller-owned runtime).
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				select {
				case <-watchDone:
				default:
					r.done.Store(true)
					rt.Cancel()
				}
			case <-watchDone:
			}
		}()
	}

	// The GVT sweep runs for the whole Finish: it must keep resolving
	// tickets (rescheduling window-throttled nodes) or the finish scope
	// never drains, so it is stopped only after Finish returns.
	sweepStop := make(chan struct{})
	sweepDone := make(chan struct{})
	go r.sweep(sweepStop, sweepDone)

	rt.Finish(func(hctx *hj.Ctx) {
		for i := range r.nodes {
			n := &r.nodes[i]
			if n.mb.Empty() {
				continue
			}
			if !n.sched.CompareAndSwap(false, true) {
				continue
			}
			if r.noAff {
				hctx.AsyncIdx(r.sliceTask, int32(i))
			} else {
				hctx.AsyncIdxOn(int(n.home), r.sliceTask, int32(i))
			}
		}
	})
	close(sweepStop)
	<-sweepDone

	if err := rt.Err(); err != nil {
		var tp *hj.TaskPanic
		if errors.As(err, &tp) {
			return nil, ResumeState{}, &EngineError{
				Engine: e.name, Unit: fmt.Sprintf("worker %d", tp.Worker),
				Reason: FailPanic, Value: tp.Value, Stack: tp.Stack, Err: tp,
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, ResumeState{}, context.Cause(ctx)
		}
		return nil, ResumeState{}, err
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ResumeState{}, context.Cause(ctx)
	}

	// Quiesced: commit all remaining history (GVT = ∞).
	stats := TWStats{Sweeps: r.sweeps, Fires: r.fires}
	res := &Result{
		Engine:     e.name,
		Workers:    rt.NumWorkers(),
		NodeEvents: make([]int64, len(r.nodes)),
		Outputs:    map[string][]TimedValue{},
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		n.fossilCollect(TimeInfinity, r.record)
		res.NodeEvents[i] = n.archived
		res.TotalEvents += n.archived
		stats.Rollbacks += n.rollbacks
		stats.Undone += n.undone
		stats.Antis += n.antis
		stats.Stragglers += n.stragglers
	}
	for _, id := range c.Outputs {
		res.Outputs[c.Nodes[id].Name] = r.nodes[id].history
	}
	var final ResumeState
	if capture {
		final = ResumeState{InVal: make([][2]circuit.Value, len(r.nodes))}
		for i := range r.nodes {
			final.InVal[i] = r.nodes[i].inVal
		}
	}
	res.TimeWarp = stats
	if private {
		res.HJ = rt.Stats()
	}
	res.FillMetrics(e.opts)
	res.Elapsed = time.Since(start)
	return res, final, nil
}

// slice is one node's run-to-completion turn: drain the mailbox
// (handling stragglers and anti-messages with rollbacks), fossil-collect
// to the published GVT, process optimistically up to the window horizon,
// flush sends, republish the floor, and yield — leaving a ticket for the
// GVT sweep when pending work sits beyond the horizon.
func (r *twhjRun) slice(hctx *hj.Ctx, id int32) {
	n := &r.nodes[id]
	cell := &r.cells[id]
	for {
		if r.done.Load() {
			return
		}
		n.sliceSeq++
		n.ring.Record(obs.EvSlice, n.sliceSeq, 0)
		g := r.gvt.Load()

		// Drain. The floor is lowered to cover the arrivals BEFORE the
		// received counter absorbs them: a sweep that sees balanced
		// counters must already see the lowered floor, else it could
		// publish a GVT above an event we now hold (see DESIGN §16).
		if fifo := n.mb.Drain(); fifo != nil {
			minT := int64(TimeInfinity)
			count := int64(0)
			for m := fifo; m != nil; m = m.Next {
				count += int64(len(m.Val))
				for i := range m.Val {
					if m.Val[i].Time < minT {
						minT = m.Val[i].Time
					}
				}
			}
			if minT < cell.floor.Load() {
				cell.floor.Store(minT)
			}
			if r.paranoid && minT < g {
				panic(fmt.Sprintf("tw-hj: GVT safety violated: node %d received t=%d below GVT %d", id, minT, g))
			}
			for m := fifo; m != nil; {
				for _, ev := range m.Val {
					n.absorb(r, ev)
				}
				next := m.Next
				n.freeMail(m)
				m = next
			}
			cell.recvd.Add(count)
		}

		// Injected rollback storm: undo the newer half of the processed
		// log as if a straggler had arrived. Semantics-preserving, same
		// as the barrier engine's injection point.
		if h := r.hooks; h != nil && h.Rollback != nil && len(n.log) > 1 && h.Rollback(n.id, int(n.sliceSeq)) {
			n.rollbackBefore(r, n.log[len(n.log)/2].ev.Time, -1)
		}

		// Fossil-collect to the last published GVT: commit and trim off
		// the critical path, amortized over slices.
		n.fossilCollect(g, r.record)

		// Process optimistically up to the window horizon. The window is
		// local, matching the barrier engine's documented semantics: "do
		// not run more than W ahead of your own earliest pending work" —
		// so progress never waits on the GVT sweep (whose published GVT
		// governs memory and the adaptive throttle, not the horizon).
		horizon := TimeInfinity
		if w := r.effWin.Load(); w > 0 {
			if top, ok := n.inputQ.Peek(); ok {
				if horizon = top.Time + w; horizon < top.Time {
					horizon = TimeInfinity // overflow on huge windows
				}
			}
		}
		processed := 0
		for {
			top, ok := n.inputQ.Peek()
			if !ok || top.Time > horizon {
				break
			}
			ev, _ := n.inputQ.Pop()
			if n.cancelled[ev.ID] {
				delete(n.cancelled, ev.ID)
				continue
			}
			n.process(r, ev)
			if processed++; processed%1024 == 0 && r.done.Load() {
				return
			}
		}
		if processed > 0 {
			r.progress.Add(uint64(processed))
		}

		// Flush sends (counting each before its push), then republish the
		// floor. Order matters: raising the floor before the flush could
		// let a sweep publish a GVT above an anti-message we are about to
		// send.
		n.flush(r, hctx)
		floor := int64(TimeInfinity)
		pending := false
		if top, ok := n.inputQ.Peek(); ok {
			floor, pending = top.Time, true
		}
		cell.floor.Store(floor)

		// A drained node cancels its stale wakeup ticket, if the sweep
		// has not consumed it already.
		if !pending {
			if tk := n.ticket.Swap(nil); tk != nil {
				tk.Cancel()
			}
		}

		// Yield protocol: clear the flag, then re-check the mailbox. A
		// producer that pushed before the clear saw sched=true and did
		// not spawn — the re-check picks its mail up here; a producer
		// that pushes after it wins the CAS and spawns a fresh slice.
		// Either way exactly one slice owns the mail.
		n.sched.Store(false)
		if !n.mb.Empty() && n.sched.CompareAndSwap(false, true) {
			continue
		}
		// Returning with pending work beyond the horizon: leave a ticket
		// so the GVT sweep can reschedule this node once GVT advances —
		// there is no "next round" to pick it up. Install-by-CAS: if a
		// concurrent slice (spawned after the flag cleared) already left
		// one, release ours immediately.
		if pending {
			tk := hctx.Reserve(r.sliceTask, id)
			if !n.ticket.CompareAndSwap(nil, tk) {
				tk.Cancel()
			}
		}
		return
	}
}

// absorb applies one received event: anti-messages annihilate, late
// positives (stragglers) roll the node back, and everything else queues.
func (n *twhjNode) absorb(r *twhjRun, ev twEvent) {
	if ev.Anti {
		n.annihilate(r, ev)
		return
	}
	if n.lvt >= 0 && ev.Time < n.lvt {
		n.stragglers++
		n.rollbackBefore(r, ev.Time, -1)
	}
	n.inputQ.Push(ev)
}

// annihilate handles an anti-message: roll back the processing of the
// matching positive, or tombstone it in the queue. Positives always
// arrive before their antis (per-sender FIFO through the mailbox), and
// a fossil-collected positive can never meet its anti (any in-transit
// anti blocks the GVT snapshot; see DESIGN §16).
func (n *twhjNode) annihilate(r *twhjRun, anti twEvent) {
	// The log is nondecreasing in event time (a straggler truncates it
	// before being appended), so only the anti's own time cohort can
	// hold the matching positive — binary-search to it instead of
	// scanning the whole speculative history.
	lo := sort.Search(len(n.log), func(i int) bool { return n.log[i].ev.Time >= anti.Time })
	for i := lo; i < len(n.log) && n.log[i].ev.Time == anti.Time; i++ {
		if n.log[i].ev.ID == anti.ID {
			n.rollbackBefore(r, anti.Time, anti.ID)
			return
		}
	}
	n.ring.Record(obs.EvAbort, int64(n.id), anti.Time)
	n.cancelled[anti.ID] = true
}

// process executes one event optimistically. Pre-state is logged only
// at anchors (every saveEvery-th event, and always on an empty log);
// rollback coast-forwards from the nearest anchor.
func (n *twhjNode) process(r *twhjRun, ev twEvent) {
	rec := twhjRecord{ev: ev}
	if r.saveEvery <= 1 || len(n.log) == 0 || n.sinceSave+1 >= r.saveEvery {
		rec.preVal, rec.hasPre = n.inVal, true
		n.sinceSave = 0
	} else {
		n.sinceSave++
	}
	n.inVal[ev.Port] = ev.Value
	if n.kind != circuit.Output && n.kind != circuit.Input {
		v := n.kind.Eval(n.inVal[0], n.inVal[1])
		out := twEvent{Time: ev.Time + n.delay + circuit.WireDelay, Value: v}
		for slot := range n.fanout {
			sent := n.emit(slot, out)
			rec.sends = append(rec.sends, twSend{edge: int32(slot), ev: sent})
		}
	}
	n.log = append(n.log, rec)
	n.lvt = ev.Time
}

// emit stamps a fresh emission ID and buffers the event on the slot's
// send buffer (flushed at slice end).
func (n *twhjNode) emit(slot int, ev twEvent) twEvent {
	n.emitSeq++
	ev.ID = int64(n.id)<<40 | n.emitSeq
	ev.Port = n.fanout[slot].port
	n.out[slot] = append(n.out[slot], ev)
	return ev
}

// emitAnti buffers an anti-message cancelling a recorded send.
func (n *twhjNode) emitAnti(s twSend) {
	anti := s.ev
	anti.Anti = true
	n.out[s.edge] = append(n.out[s.edge], anti)
	n.antis++
}

// stateBefore reconstructs the input-wire state immediately before
// log[cut] by replaying from the nearest earlier anchor (log[0] always
// carries pre-state, so the scan terminates).
func (n *twhjNode) stateBefore(cut int) [2]circuit.Value {
	j := cut
	for !n.log[j].hasPre {
		j--
	}
	v := n.log[j].preVal
	// Stamp anchors along the way: a replay that walked this prefix once
	// must never walk it end-to-end again, no matter how sparse the
	// configured save interval is. The stamped entries survive rollback
	// truncation (they sit below the cut), so repeated rollbacks into
	// the same region stay O(64) instead of O(save interval).
	for i := j; i < cut; i++ {
		if steps := i - j; steps > 0 && steps%64 == 0 && !n.log[i].hasPre {
			n.log[i].preVal = v
			n.log[i].hasPre = true
		}
		v[n.log[i].ev.Port] = n.log[i].ev.Value
	}
	return v
}

// rollbackBefore undoes every processed event with time > t (plus the
// event with ID dropID, which is annihilated rather than re-queued),
// restoring the coast-forward state and sending anti-messages for all
// undone emissions. Ties at t keep their processing, exactly like the
// barrier engine.
func (n *twhjNode) rollbackBefore(r *twhjRun, t int64, dropID int64) {
	// Entries strictly newer than t are undone; within t's own cohort
	// only the annihilated event itself is. Time-sorted log: binary-search
	// to the cohort, then scan only it for dropID.
	cut := sort.Search(len(n.log), func(i int) bool { return n.log[i].ev.Time > t })
	if dropID >= 0 {
		lo := sort.Search(cut, func(i int) bool { return n.log[i].ev.Time >= t })
		for i := lo; i < cut; i++ {
			if n.log[i].ev.ID == dropID {
				cut = i
				break
			}
		}
	}
	if cut == len(n.log) {
		return
	}
	n.rollbacks++
	state := n.stateBefore(cut)
	undone := int64(len(n.log) - cut)
	for i := len(n.log) - 1; i >= cut; i-- {
		rec := &n.log[i]
		for _, s := range rec.sends {
			n.emitAnti(s)
		}
		n.undone++
		if rec.ev.ID != dropID {
			n.inputQ.Push(rec.ev)
		}
	}
	n.inVal = state
	if cut > 0 {
		n.lvt = n.log[cut-1].ev.Time
	} else {
		n.lvt = -1
	}
	n.log = n.log[:cut]
	r.undoneA.Add(undone)
	n.ring.Record(obs.EvRollback, int64(n.id), undone)
}

// fossilCollect commits log entries strictly older than gvt: output
// terminals archive them as history samples; every node counts them.
// Under incremental state saving, the surviving head record is
// materialized into an anchor first, so coast-forward never needs the
// archived prefix.
func (n *twhjNode) fossilCollect(gvt int64, record bool) {
	cut := sort.Search(len(n.log), func(i int) bool { return n.log[i].ev.Time >= gvt })
	if cut == 0 {
		return
	}
	// Trimming memmoves the surviving suffix, so collect in batches: a
	// sweep that publishes GVT every tick must not turn every slice into
	// an O(log) copy. Dead-entry memory stays bounded by the batch size.
	if cut < len(n.log) && cut < 64 {
		return
	}
	if cut < len(n.log) && !n.log[cut].hasPre {
		n.log[cut].preVal = n.stateBefore(cut)
		n.log[cut].hasPre = true
	}
	if n.kind == circuit.Output && record {
		for i := 0; i < cut; i++ {
			n.history = append(n.history, TimedValue{Time: n.log[i].ev.Time, Value: n.log[i].ev.Value})
		}
	}
	n.archived += int64(cut)
	n.log = append(n.log[:0], n.log[cut:]...)
	n.ring.Record(obs.EvCommit, int64(n.id), int64(cut))
}

// flush pushes every non-empty slot buffer to its destination's mailbox
// and schedules the destination if no slice owns it. The send counter
// rises before the push: a message must never be drainable before it is
// accounted in transit.
func (n *twhjNode) flush(r *twhjRun, hctx *hj.Ctx) {
	cell := &r.cells[n.id]
	for slot := range n.out {
		buf := n.out[slot]
		if len(buf) == 0 {
			continue
		}
		n.out[slot] = n.takeBatch()
		d := n.fanout[slot]
		q := &r.nodes[d.node]
		cell.sent.Add(int64(len(buf)))
		q.mb.Push(n.takeMail(buf))
		if q.sched.CompareAndSwap(false, true) {
			if r.noAff {
				hctx.AsyncIdx(r.sliceTask, d.node)
			} else {
				hctx.AsyncIdxOn(int(q.home), r.sliceTask, d.node)
			}
		}
	}
}

// takeMail fetches a recycled mail node carrying batch, carving a fresh
// chunk when the free list runs dry. Owner-only.
func (n *twhjNode) takeMail(batch []twEvent) *twMail {
	if len(n.mailFree) == 0 {
		chunk := make([]twMail, twhjMailChunk)
		for i := range chunk {
			n.mailFree = append(n.mailFree, &chunk[i])
		}
	}
	m := n.mailFree[len(n.mailFree)-1]
	n.mailFree = n.mailFree[:len(n.mailFree)-1]
	m.Val, m.Next = batch, nil
	return m
}

// freeMail retires a drained node (and its batch slice) to the owner's
// free lists; nodes migrate sender→receiver exactly like lp's mailboxes.
func (n *twhjNode) freeMail(m *twMail) {
	if cap(m.Val) > 0 && len(n.batchFree) < 64 {
		n.batchFree = append(n.batchFree, m.Val[:0])
	}
	m.Val, m.Next = nil, nil
	if len(n.mailFree) < 1024 {
		n.mailFree = append(n.mailFree, m)
	}
}

// takeBatch returns an empty send buffer, recycled when possible.
func (n *twhjNode) takeBatch() []twEvent {
	if k := len(n.batchFree); k > 0 {
		b := n.batchFree[k-1]
		n.batchFree = n.batchFree[:k-1]
		return b
	}
	return nil
}

// sweep is the asynchronous GVT daemon: a Mattern-style stable snapshot
// (double-read counters around the floor scan) yields a safe GVT, which
// drives the published fossil horizon, the adaptive optimism throttle,
// and the rescheduling of window-throttled nodes via their tickets. It
// runs until the enclosing Finish completes — tickets must keep being
// resolved or the finish scope never drains.
func (r *twhjRun) sweep(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var prevUndone int64
	var prevProg uint64
	adaptTick := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		time.Sleep(twhjSweepInterval)

		// A single snapshot attempt rarely survives under steady traffic
		// (any in-flight message aborts it), so retry a bounded number of
		// times per tick — the sweep runs on its own goroutine, off every
		// node's critical path, and a published GVT is what lets fossil
		// collection keep log memory bounded mid-run.
		for attempt := 0; attempt < 4; attempt++ {
			g, ok := r.snapshotGVT()
			if !ok {
				continue
			}
			if g > r.gvt.Load() {
				r.gvt.Store(g)
				r.sweeps++
				if g == TimeInfinity {
					r.sweepRing.Record(obs.EvRound, r.sweeps, -1)
				} else {
					r.sweepRing.Record(obs.EvRound, r.sweeps, g)
				}
			}
			break
		}

		// Adaptive optimism throttle, every 8th tick: when rollback work
		// dominates forward progress, narrow the window; when speculation
		// runs clean, widen it back. Scheduling-only — results are
		// invariant under any window.
		if r.adaptive {
			if adaptTick++; adaptTick%8 == 0 {
				undone, prog := r.undoneA.Load(), r.progress.Load()
				du, dp := undone-prevUndone, int64(prog-prevProg)
				prevUndone, prevProg = undone, prog
				w := r.effWin.Load()
				switch {
				case dp > 0 && du > dp/4 && w > r.minWin:
					r.effWin.Store(max(r.minWin, w/2))
					r.narrows++
				case dp > 0 && du < dp/16 && w < r.maxWin:
					r.effWin.Store(min(r.maxWin, w*2))
					r.widens++
				}
			}
		}

		// Resolve tickets: a throttled node whose ticket we can claim the
		// scheduled flag for gets rescheduled (its horizon includes its
		// own top cohort, so it always progresses); one whose flag is
		// taken has a live slice that will re-reserve at yield if needed.
		for i := range r.nodes {
			n := &r.nodes[i]
			if n.ticket.Load() == nil {
				continue
			}
			tk := n.ticket.Swap(nil)
			if tk == nil {
				continue
			}
			if n.sched.CompareAndSwap(false, true) {
				tk.Fire()
				r.fires++
			} else {
				tk.Cancel()
			}
		}
	}
}

// snapshotGVT attempts one stable GVT snapshot: read every node's
// sent/received counters, abort unless they balance (a message is in
// transit), scan the floors, then re-read the counters and abort if any
// moved. A snapshot that survives saw a moment with no message in
// flight anywhere, at which the minimum floor bounds every timestamp
// the system can ever send again — a safe GVT.
func (r *twhjRun) snapshotGVT() (int64, bool) {
	var ts, tr int64
	for i := range r.cells {
		s, v := r.cells[i].sent.Load(), r.cells[i].recvd.Load()
		r.snapSent[i], r.snapRecvd[i] = s, v
		ts += s
		tr += v
	}
	if ts != tr {
		return 0, false
	}
	g := int64(TimeInfinity)
	for i := range r.cells {
		if f := r.cells[i].floor.Load(); f < g {
			g = f
		}
	}
	for i := range r.cells {
		if r.cells[i].sent.Load() != r.snapSent[i] || r.cells[i].recvd.Load() != r.snapRecvd[i] {
			return 0, false
		}
	}
	return g, true
}
