package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/obs"
)

// Checkpointer is implemented by engines that can snapshot a run at
// crash-consistent boundaries and resume from the latest snapshot.
// RunFrom behaves like Run/RunContext except that it periodically saves
// checkpoints into store and, when store already holds one (from an
// earlier failed attempt — possibly by a *different* engine), resumes
// from it instead of starting over. Checkpoints are engine-agnostic:
// a run checkpointed by hj can be resumed by seq, which is what lets
// Resilient degrade down a fallback chain without losing completed work.
type Checkpointer interface {
	Engine
	RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error)
}

// ResumeState is the engine-agnostic wire state of a quiescent circuit:
// the settled value on every node's input ports. At a settle boundary no
// events are queued or in flight anywhere, so this — plus the stimulus
// still to come — is the complete simulation state. Every engine family
// (workset, hj, galois, actor, timewarp, lp) can seed a fresh run from it
// and capture it at completion.
type ResumeState struct {
	InVal [][2]circuit.Value // per node, indexed by NodeID
}

// clone deep-copies the state so a stored checkpoint can never alias a
// live run's buffers.
func (rs *ResumeState) clone() ResumeState {
	return ResumeState{InVal: append([][2]circuit.Value(nil), rs.InVal...)}
}

// Checkpoint is one crash-consistent snapshot: everything accumulated by
// the segments already completed, plus the wire state to seed the next
// segment with. Seg is the index of the next segment to run.
type Checkpoint struct {
	Seg         int
	TotalEvents int64
	NodeEvents  []int64
	Outputs     map[string][]TimedValue
	Metrics     obs.Metrics
	State       ResumeState
}

// sizeBytes estimates the snapshot's memory footprint for the
// checkpoint.bytes metric.
func (ck *Checkpoint) sizeBytes() int64 {
	n := int64(len(ck.State.InVal))*2 + int64(len(ck.NodeEvents))*8 + int64(len(ck.Metrics))*24
	for _, h := range ck.Outputs {
		n += int64(len(h)) * 16
	}
	return n
}

// CheckpointStore holds the latest checkpoint of one logical run across
// supervised attempts (and across fallback engines). Safe for concurrent
// use: the engine goroutine saves while the supervisor may be reading
// counters.
type CheckpointStore struct {
	mu        sync.Mutex
	latest    *Checkpoint
	count     int64 // snapshots saved
	bytes     int64 // cumulative snapshot bytes
	resumes   int64 // attempts that resumed from a snapshot
	resumeSeg int64 // segment index of the most recent resume
}

// NewCheckpointStore returns an empty store for one logical run.
func NewCheckpointStore() *CheckpointStore { return &CheckpointStore{} }

// Save records ck as the latest snapshot. ck must not alias live run
// state (runSegmented deep-copies before saving).
func (s *CheckpointStore) Save(ck *Checkpoint) {
	s.mu.Lock()
	s.latest = ck
	s.count++
	s.bytes += ck.sizeBytes()
	s.mu.Unlock()
}

// Latest returns the most recent snapshot, or nil when none was saved.
func (s *CheckpointStore) Latest() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// Count reports how many snapshots were saved.
func (s *CheckpointStore) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *CheckpointStore) noteResume(seg int) {
	s.mu.Lock()
	s.resumes++
	s.resumeSeg = int64(seg)
	s.mu.Unlock()
}

// MetricsInto writes the store's counters into a flat metrics map
// (assignment, not addition, so repeated folding is idempotent).
func (s *CheckpointStore) MetricsInto(m obs.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m["checkpoint.count"] = s.count
	m["checkpoint.bytes"] = s.bytes
	if s.resumes > 0 {
		m["resilient.resumes"] = s.resumes
		m["resilient.resume_cycle"] = s.resumeSeg
	}
}

// settleCuts computes the safe checkpoint boundaries of a stimulus: the
// distinct transition times t at which the circuit is provably quiescent
// before t's events enter — i.e. the previous transition time plus the
// circuit's settle bound does not reach t, so every earlier cascade has
// died out, no events are queued anywhere, and the run can be cut into
// independent segments. With the paper's wave spacing (period =
// SettleTime()+10) every wave boundary qualifies. every > 1 keeps only
// each every-th boundary (the Options.CheckpointEvery cadence).
func settleCuts(c *circuit.Circuit, stim *circuit.Stimulus, every int) []int64 {
	if every <= 0 {
		every = 1
	}
	var times []int64
	for _, ts := range stim.ByInput {
		for _, tr := range ts {
			times = append(times, tr.Time)
		}
	}
	if len(times) == 0 {
		return nil
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	distinct := times[:1]
	for _, t := range times[1:] {
		if t != distinct[len(distinct)-1] {
			distinct = append(distinct, t)
		}
	}
	settle := c.SettleTime()
	var cuts []int64
	safe := 0
	for i := 1; i < len(distinct); i++ {
		if distinct[i] >= distinct[i-1]+settle {
			safe++
			if safe%every == 0 {
				cuts = append(cuts, distinct[i])
			}
		}
	}
	return cuts
}

// sliceStimulus returns the sub-stimulus with transition times in
// [lo, hi). Transitions keep their absolute timestamps (a resumed
// segment's outputs land at the same times as the full run's) and the
// slices share the original backing arrays.
func sliceStimulus(stim *circuit.Stimulus, lo, hi int64) *circuit.Stimulus {
	out := &circuit.Stimulus{ByInput: make([][]circuit.Transition, len(stim.ByInput))}
	for i, ts := range stim.ByInput {
		a := sort.Search(len(ts), func(j int) bool { return ts[j].Time >= lo })
		b := sort.Search(len(ts), func(j int) bool { return ts[j].Time >= hi })
		out.ByInput[i] = ts[a:b:b]
	}
	return out
}

// segmentRunner runs one stimulus segment to completion, seeded with the
// previous segment's settled wire state (nil for a cold start), and
// returns the segment's result plus the wire state at its end.
type segmentRunner func(ctx context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error)

// runSegmented is the shared Checkpointer driver: it cuts the stimulus at
// settle boundaries, resumes from store's latest snapshot when one
// exists, runs the remaining segments through runSeg, saves a snapshot
// after each completed segment, and merges the per-segment results into
// one Result indistinguishable (outputs, event counts) from an unbroken
// run. Engine-typed stats (Result.HJ etc.) are taken from the last
// segment; the Metrics map is summed across segments.
func runSegmented(ctx context.Context, e Engine, c *circuit.Circuit, stim *circuit.Stimulus, every int, store *CheckpointStore, runSeg segmentRunner) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	cuts := settleCuts(c, stim, every)
	if store == nil || len(cuts) == 0 {
		res, _, err := runSeg(ctx, stim, nil)
		return res, err
	}
	bounds := make([]int64, 0, len(cuts)+2)
	bounds = append(bounds, math.MinInt64)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, math.MaxInt64)
	segs := len(bounds) - 1

	acc := &Result{
		Engine:     e.Name(),
		NodeEvents: make([]int64, len(c.Nodes)),
		Outputs:    map[string][]TimedValue{},
		Metrics:    obs.Metrics{},
	}
	startSeg := 0
	var rs *ResumeState
	if ck := store.Latest(); ck != nil {
		if ck.Seg >= segs || len(ck.State.InVal) != len(c.Nodes) {
			return nil, fmt.Errorf("core: checkpoint (segment %d, %d nodes) does not match run (%d segments, %d nodes)",
				ck.Seg, len(ck.State.InVal), segs, len(c.Nodes))
		}
		startSeg = ck.Seg
		acc.TotalEvents = ck.TotalEvents
		copy(acc.NodeEvents, ck.NodeEvents)
		for name, h := range ck.Outputs {
			acc.Outputs[name] = append([]TimedValue(nil), h...)
		}
		acc.Metrics.Merge(ck.Metrics)
		st := ck.State.clone()
		rs = &st
		store.noteResume(startSeg)
	}

	for k := startSeg; k < segs; k++ {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		seg := sliceStimulus(stim, bounds[k], bounds[k+1])
		res, st, err := runSeg(ctx, seg, rs)
		if err != nil {
			return nil, err
		}
		acc.Workers = res.Workers
		acc.TotalEvents += res.TotalEvents
		for i, n := range res.NodeEvents {
			acc.NodeEvents[i] += n
		}
		for name, h := range res.Outputs {
			acc.Outputs[name] = append(acc.Outputs[name], h...)
		}
		acc.Metrics.Merge(res.Metrics)
		acc.HJ, acc.Galois, acc.TimeWarp, acc.LP = res.HJ, res.Galois, res.TimeWarp, res.LP
		rs = &st
		if k < segs-1 {
			ck := &Checkpoint{
				Seg:         k + 1,
				TotalEvents: acc.TotalEvents,
				NodeEvents:  append([]int64(nil), acc.NodeEvents...),
				Outputs:     make(map[string][]TimedValue, len(acc.Outputs)),
				Metrics:     obs.Metrics{},
				State:       st.clone(),
			}
			for name, h := range acc.Outputs {
				ck.Outputs[name] = append([]TimedValue(nil), h...)
			}
			ck.Metrics.Merge(acc.Metrics)
			store.Save(ck)
		}
	}
	store.MetricsInto(acc.Metrics)
	acc.Elapsed = time.Since(start)
	return acc, nil
}
