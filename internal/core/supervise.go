package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/obs"
)

// Failure reasons carried by EngineError.Reason.
const (
	FailPanic   = "panic"   // a worker/task panicked; Value and Stack are set
	FailTimeout = "timeout" // the run exceeded SuperviseConfig.Timeout (or the ctx deadline)
	FailStall   = "stall"   // the watchdog saw no progress for SuperviseConfig.StallTimeout
	FailCancel  = "cancel"  // the caller's context was canceled
	FailConfig  = "config"  // the engine rejected its Options up front (never retryable)
)

// EngineError is the structured failure of a supervised engine run: which
// engine failed, where (worker/LP/node, when known), why, and — for panics
// — the recovered value and stack. Diag carries a diagnostic snapshot
// (per-LP clocks, inbox depths, blocked-on info) when the engine can
// produce one.
type EngineError struct {
	Engine string // engine name
	Unit   string // failing unit, e.g. "worker 3" or "lp 2"; may be empty
	Reason string // one of the Fail* constants
	Value  any    // recovered panic value (FailPanic)
	Stack  []byte // stack of the panicking goroutine (FailPanic)
	Diag   string // diagnostic snapshot at failure time, if available
	Err    error  // underlying error, if the failure wrapped one
}

func (e *EngineError) Error() string {
	where := e.Engine
	if e.Unit != "" {
		where += " " + e.Unit
	}
	switch {
	case e.Value != nil:
		return fmt.Sprintf("core: %s: %s: %v", where, e.Reason, e.Value)
	case e.Err != nil:
		return fmt.Sprintf("core: %s: %s: %v", where, e.Reason, e.Err)
	}
	return fmt.Sprintf("core: %s: %s", where, e.Reason)
}

func (e *EngineError) Unwrap() error { return e.Err }

// Is lets errors.Is classify supervised failures against the standard
// context sentinels without string matching: a FailTimeout matches
// context.DeadlineExceeded and a FailCancel matches context.Canceled,
// even when the underlying Err chain was lost in transport (e.g. a panic
// value stringified by an engine boundary).
func (e *EngineError) Is(target error) bool {
	switch target {
	case context.DeadlineExceeded:
		return e.Reason == FailTimeout
	case context.Canceled:
		return e.Reason == FailCancel
	}
	return false
}

// Retryable classifies a supervised failure: panics (including injected
// chaos faults), timeouts and stalls are transient — another attempt,
// possibly resumed from a checkpoint or on a fallback engine, can
// succeed. Cancellation (the caller gave up) and engine-protocol errors
// (bad stimulus, mismatched checkpoint) are fatal.
func Retryable(err error) bool {
	var ee *EngineError
	if !errors.As(err, &ee) {
		return false
	}
	switch ee.Reason {
	case FailPanic, FailTimeout, FailStall:
		return true
	}
	return false
}

// ContextEngine is implemented by engines whose Run can be canceled: when
// ctx is done, RunContext stops the run promptly, releases its worker
// goroutines and returns context.Cause(ctx) (possibly wrapped). Engines
// that do not implement it can still be supervised, but a timed-out run
// is abandoned rather than stopped.
type ContextEngine interface {
	Engine
	RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error)
}

// ProgressReporter is implemented by engines that expose a monotonically
// nondecreasing progress counter (events processed, messages applied,
// tasks spawned) for the stall watchdog to sample during a run.
type ProgressReporter interface {
	Progress() uint64
}

// Diagnoser is implemented by engines that can describe the current run's
// internal state (per-LP clocks, inbox depths, blocked-on info) for
// failure reports.
type Diagnoser interface {
	Diagnose() string
}

// TraceSource is implemented by engines carrying a flight recorder
// (Options.Trace): failure diagnostics append the recorder's per-worker
// event tail to the Diag dump.
type TraceSource interface {
	TraceRecorder() *obs.Recorder
}

// diagTailEvents is how many flight-recorder events per worker a failure
// diagnostic includes.
const diagTailEvents = 32

// SuperviseConfig tunes one supervised run. The zero value supervises
// with no deadline and no watchdog: only panic containment applies.
type SuperviseConfig struct {
	// Timeout bounds the whole run; 0 means no bound (beyond ctx's own
	// deadline, which is always honored).
	Timeout time.Duration
	// StallTimeout arms the watchdog: if the engine's Progress counter
	// does not advance for this long, the run is failed with FailStall
	// and a diagnostic snapshot. 0 disables the watchdog. Ignored for
	// engines that are not ProgressReporters.
	StallTimeout time.Duration
	// Poll is the watchdog sampling interval; 0 derives it from
	// StallTimeout.
	Poll time.Duration
	// Checkpoints, when non-nil and the engine is a Checkpointer, routes
	// the run through RunFrom: the engine saves crash-consistent
	// snapshots into the store and — when the store already holds one
	// from an earlier failed attempt — resumes from it instead of
	// restarting from time zero.
	Checkpoints *CheckpointStore
}

// stallCause marks a context canceled by the watchdog, carrying the
// diagnostic snapshot taken just before cancellation.
type stallCause struct{ diag string }

func (s *stallCause) Error() string { return "engine made no progress (stall watchdog)" }

// Supervise runs the engine under supervision: the run is bounded by ctx
// (plus cfg.Timeout), a panic anywhere the engine can contain one — or on
// the engine's own goroutine — becomes an *EngineError instead of
// crashing the process, and the optional stall watchdog fails runs that
// stop making progress. For ContextEngines, cancellation propagates into
// the engine's workers, so a failed run does not leak goroutines; for
// plain Engines a timed-out run is abandoned (its goroutine keeps the
// final result nobody reads) and an *EngineError is returned immediately.
func Supervise(ctx context.Context, e Engine, c *circuit.Circuit, stim *circuit.Stimulus, cfg SuperviseConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	if cfg.Timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeoutCause(ctx, cfg.Timeout, context.DeadlineExceeded)
		defer cancelT()
	}

	type outcome struct {
		res *Result
		err error
	}
	resCh := make(chan outcome, 1)
	cp, checkpointed := e.(Checkpointer)
	if cfg.Checkpoints == nil {
		checkpointed = false
	}
	ce, cancelable := e.(ContextEngine)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				resCh <- outcome{err: &EngineError{
					Engine: e.Name(), Reason: FailPanic, Value: r, Stack: debug.Stack(),
				}}
			}
		}()
		var o outcome
		switch {
		case checkpointed:
			o.res, o.err = cp.RunFrom(ctx, c, stim, cfg.Checkpoints)
		case cancelable:
			o.res, o.err = ce.RunContext(ctx, c, stim)
		default:
			o.res, o.err = e.Run(c, stim)
		}
		resCh <- o
	}()

	// Stall watchdog: sample the progress counter; if it sits still for
	// StallTimeout, snapshot diagnostics and cancel the run.
	watchStop := make(chan struct{})
	defer close(watchStop)
	if pr, ok := e.(ProgressReporter); ok && cfg.StallTimeout > 0 {
		poll := cfg.Poll
		if poll <= 0 {
			poll = cfg.StallTimeout / 8
		}
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		go func() {
			last := pr.Progress()
			quietSince := time.Now()
			ticker := time.NewTicker(poll)
			defer ticker.Stop()
			for {
				select {
				case <-watchStop:
					return
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if now := pr.Progress(); now != last {
					last = now
					quietSince = time.Now()
					continue
				}
				if time.Since(quietSince) >= cfg.StallTimeout {
					cancel(&stallCause{diag: diagnose(e)})
					return
				}
			}
		}()
	}

	if cancelable {
		// The engine honors cancellation: wait for it to unwind, so no
		// goroutines outlive the call.
		o := <-resCh
		if o.err != nil {
			return nil, supervisedError(ctx, e, o.err)
		}
		return o.res, nil
	}
	select {
	case o := <-resCh:
		if o.err != nil {
			return nil, supervisedError(ctx, e, o.err)
		}
		return o.res, nil
	case <-ctx.Done():
		// The engine cannot be stopped; report the failure and abandon
		// the run.
		return nil, supervisedError(ctx, e, context.Cause(ctx))
	}
}

// supervisedError normalizes a failed run's error into *EngineError,
// folding in the cancellation cause and a diagnostic snapshot.
func supervisedError(ctx context.Context, e Engine, err error) error {
	var ee *EngineError
	if errors.As(err, &ee) {
		if ee.Diag == "" {
			ee.Diag = diagnose(e)
		}
		return err
	}
	reason := FailCancel
	diag := ""
	switch cause := context.Cause(ctx); {
	case cause == nil:
		// The engine failed on its own (validation, protocol error):
		// return its error untouched.
		return err
	case errors.Is(cause, context.DeadlineExceeded):
		reason = FailTimeout
	default:
		var sc *stallCause
		if errors.As(cause, &sc) {
			reason = FailStall
			diag = sc.diag
		} else if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			return err
		}
	}
	if diag == "" {
		diag = diagnose(e)
	}
	return &EngineError{Engine: e.Name(), Reason: reason, Diag: diag, Err: err}
}

func diagnose(e Engine) string {
	diag := ""
	if d, ok := e.(Diagnoser); ok {
		diag = d.Diagnose()
	}
	if ts, ok := e.(TraceSource); ok {
		if tail := obs.FormatTail(ts.TraceRecorder(), diagTailEvents); tail != "" {
			diag += "flight recorder (last " + fmt.Sprint(diagTailEvents) + " events per worker):\n" + tail
		}
	}
	return diag
}
