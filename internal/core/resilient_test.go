package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hjdes/internal/circuit"
)

func TestEngineErrorClassification(t *testing.T) {
	inner := errors.New("root cause")
	cases := []struct {
		name       string
		err        error
		retryable  bool
		isDeadline bool
		isCanceled bool
	}{
		{"panic", &EngineError{Engine: "hj", Reason: FailPanic, Value: "boom"}, true, false, false},
		{"timeout", &EngineError{Engine: "lp", Reason: FailTimeout}, true, true, false},
		{"stall", &EngineError{Engine: "galois", Reason: FailStall}, true, false, false},
		{"cancel", &EngineError{Engine: "seq", Reason: FailCancel}, false, false, true},
		{"wrapped panic", &EngineError{Engine: "actor", Reason: FailPanic, Err: inner}, true, false, false},
		{"plain error", errors.New("protocol violation"), false, false, false},
		{"nil", nil, false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Retryable(tc.err); got != tc.retryable {
				t.Fatalf("Retryable = %v, want %v", got, tc.retryable)
			}
			if got := errors.Is(tc.err, context.DeadlineExceeded); got != tc.isDeadline {
				t.Fatalf("Is(DeadlineExceeded) = %v, want %v", got, tc.isDeadline)
			}
			if got := errors.Is(tc.err, context.Canceled); got != tc.isCanceled {
				t.Fatalf("Is(Canceled) = %v, want %v", got, tc.isCanceled)
			}
		})
	}
	wrapped := &EngineError{Engine: "actor", Reason: FailPanic, Err: inner}
	if !errors.Is(wrapped, inner) {
		t.Fatal("EngineError does not unwrap to its cause")
	}
}

// flakyEngine fails its first failures runs with a retryable panic error,
// then delegates to the inner engine.
type flakyEngine struct {
	failures int
	calls    int
	inner    Engine
}

func (f *flakyEngine) Name() string { return "flaky" }

func (f *flakyEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, &EngineError{Engine: "flaky", Reason: FailPanic, Value: "induced failure"}
	}
	return f.inner.Run(c, stim)
}

func resilientTestInputs(t *testing.T) (*circuit.Circuit, *circuit.Stimulus, *Result) {
	t.Helper()
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 21)
	ref, err := NewSequential(Options{}).Run(c, stim)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	return c, stim, ref
}

func TestResilientRetriesThroughFlakyEngine(t *testing.T) {
	c, stim, ref := resilientTestInputs(t)
	e := &flakyEngine{failures: 2, inner: NewSequential(Options{})}
	res, err := Resilient(nil, e, c, stim, ResilientConfig{
		Retry: RetryPolicy{Retries: 3, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("resilient run failed: %v", err)
	}
	if res.Attempts != 3 || res.Degraded {
		t.Fatalf("Attempts=%d Degraded=%v, want 3/false", res.Attempts, res.Degraded)
	}
	if res.Metrics["resilient.retries"] != 2 || res.Metrics["resilient.degraded"] != 0 {
		t.Fatalf("metrics %v, want retries=2 degraded=0", res.Metrics)
	}
	if ok, diff := SameOutputs(ref, res); !ok {
		t.Fatalf("retried run diverged: %s", diff)
	}
}

func TestResilientDegradesToFallback(t *testing.T) {
	c, stim, ref := resilientTestInputs(t)
	e := &flakyEngine{failures: 1 << 30, inner: nil} // never succeeds
	res, err := Resilient(nil, e, c, stim, ResilientConfig{
		Retry:    RetryPolicy{Retries: 1, Backoff: time.Millisecond},
		Fallback: []string{"seq"},
	})
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if !res.Degraded || res.Attempts != 3 { // primary, retry, then seq
		t.Fatalf("Attempts=%d Degraded=%v, want 3/true", res.Attempts, res.Degraded)
	}
	if res.Engine != "seq" {
		t.Fatalf("final engine %q, want seq", res.Engine)
	}
	if res.Metrics["resilient.degraded"] != 1 {
		t.Fatalf("resilient.degraded = %d, want 1", res.Metrics["resilient.degraded"])
	}
	if ok, diff := SameOutputs(ref, res); !ok {
		t.Fatalf("degraded run diverged: %s", diff)
	}
}

func TestResilientChainExhaustedFails(t *testing.T) {
	c, stim, _ := resilientTestInputs(t)
	bad := &flakyEngine{failures: 1 << 30}
	_, err := Resilient(nil, bad, c, stim, ResilientConfig{
		Retry: RetryPolicy{Retries: 1, Backoff: time.Millisecond},
	})
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Reason != FailPanic {
		t.Fatalf("exhausted chain returned %v, want the last FailPanic", err)
	}
}

// cancelingEngine always fails with a non-retryable cancellation error.
type cancelingEngine struct{ calls int }

func (e *cancelingEngine) Name() string { return "canceling" }
func (e *cancelingEngine) Run(*circuit.Circuit, *circuit.Stimulus) (*Result, error) {
	e.calls++
	return nil, &EngineError{Engine: "canceling", Reason: FailCancel}
}

func TestResilientDoesNotRetryCancel(t *testing.T) {
	c, stim, _ := resilientTestInputs(t)
	e := &cancelingEngine{}
	_, err := Resilient(nil, e, c, stim, ResilientConfig{
		Retry:    RetryPolicy{Retries: 5, Backoff: time.Millisecond},
		Fallback: []string{"seq"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want a cancellation error", err)
	}
	if e.calls != 1 {
		t.Fatalf("cancellation was attempted %d times, want exactly 1", e.calls)
	}
}

// TestResilientResumesFromCheckpoint is the end-to-end crash/resume path:
// a chaos hook panics the run once a checkpoint exists, and the retry must
// resume past segment 0 and still be bit-exact with the clean reference.
func TestResilientResumesFromCheckpoint(t *testing.T) {
	c, stim, ref := resilientTestInputs(t)
	store := NewCheckpointStore()
	panicked := false
	opts := Options{
		CheckpointEvery: 1,
		Chaos: &ChaosHooks{Task: func(int) {
			if !panicked && store.Count() >= 1 {
				panicked = true
				panic("chaos: induced mid-run crash")
			}
		}},
	}
	res, err := Resilient(nil, NewSequential(opts), c, stim, ResilientConfig{
		Supervise: SuperviseConfig{Checkpoints: store},
		Retry:     RetryPolicy{Retries: 1, Backoff: time.Millisecond},
		Options:   opts,
	})
	if err != nil {
		t.Fatalf("resilient run failed: %v", err)
	}
	if !panicked {
		t.Fatal("chaos hook never fired")
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	if res.Metrics["resilient.resumes"] != 1 {
		t.Fatalf("resilient.resumes = %d, want 1 (retry restarted from scratch?)", res.Metrics["resilient.resumes"])
	}
	if res.Metrics["resilient.resume_cycle"] < 1 {
		t.Fatalf("resilient.resume_cycle = %d, want >= 1", res.Metrics["resilient.resume_cycle"])
	}
	if res.TotalEvents != ref.TotalEvents {
		t.Fatalf("resumed run counted %d events, reference %d", res.TotalEvents, ref.TotalEvents)
	}
	if ok, diff := SameOutputs(ref, res); !ok {
		t.Fatalf("resumed run diverged: %s", diff)
	}
}

// nullEngine completes instantly with a preallocated result, isolating the
// wrapper overhead from real engine work.
type nullEngine struct{ res Result }

func (n *nullEngine) Name() string { return "null" }
func (n *nullEngine) Run(*circuit.Circuit, *circuit.Stimulus) (*Result, error) {
	return &n.res, nil
}

// TestResilientCleanPathZeroAlloc pins the clean-path guarantee: with no
// faults, no fallback and no checkpoint store, Resilient must not allocate
// beyond what bare Supervise already does.
func TestResilientCleanPathZeroAlloc(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 1, c.SettleTime()+10, 1)
	e := &nullEngine{}

	bare := testing.AllocsPerRun(200, func() {
		if _, err := Supervise(nil, e, c, stim, SuperviseConfig{}); err != nil {
			t.Fatal(err)
		}
	})
	wrapped := testing.AllocsPerRun(200, func() {
		if _, err := Resilient(nil, e, c, stim, ResilientConfig{}); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > bare {
		t.Fatalf("clean Resilient allocates %.1f allocs/run vs %.1f for bare Supervise", wrapped, bare)
	}
}

// The overhead pair for BENCH comparisons: bare Supervise vs clean-path
// Resilient on the paper's largest adder. The issue budget is <1% runtime
// overhead; the wrapper adds one loop iteration and three integer stores.
func benchResilientInputs(b *testing.B) (*circuit.Circuit, *circuit.Stimulus) {
	b.Helper()
	c := circuit.KoggeStone(64)
	return c, circuit.RandomStimulus(c, 8, c.SettleTime()+10, 5)
}

func BenchmarkSuperviseBare(b *testing.B) {
	c, stim := benchResilientInputs(b)
	e := NewSequential(Options{DiscardOutputs: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Supervise(nil, e, c, stim, SuperviseConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilientOverhead(b *testing.B) {
	c, stim := benchResilientInputs(b)
	e := NewSequential(Options{DiscardOutputs: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resilient(nil, e, c, stim, ResilientConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// stubbornEngine fails with a retryable panic on every attempt; when
// block is set it first waits for the context to die, modeling a worker
// panic that arrives in the same instant as a cancellation.
type stubbornEngine struct{ block bool }

func (e *stubbornEngine) Name() string { return "stubborn" }
func (e *stubbornEngine) Run(*circuit.Circuit, *circuit.Stimulus) (*Result, error) {
	return nil, &EngineError{Engine: "stubborn", Reason: FailPanic, Value: "induced"}
}
func (e *stubbornEngine) RunContext(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	if e.block {
		<-ctx.Done()
	}
	return nil, &EngineError{Engine: "stubborn", Reason: FailPanic, Value: "induced"}
}

// TestResilientCancelMidBackoff cancels the parent context while
// Resilient sleeps out a multi-second backoff and requires a prompt
// return carrying context.Canceled, with no goroutines left behind.
func TestResilientCancelMidBackoff(t *testing.T) {
	c, stim, _ := resilientTestInputs(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Resilient(ctx, &stubbornEngine{}, c, stim, ResilientConfig{
		Retry: RetryPolicy{Retries: 5, Backoff: 10 * time.Second, MaxBackoff: 10 * time.Second},
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to surface; the backoff sleep must abort immediately", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if Retryable(err) {
		t.Fatalf("canceled run classified retryable: %v", err)
	}
	settleGoroutines(t, base)
}

// TestResilientCancelRacesRetryableFailure is the reclassification
// regression: when the caller's cancel and a retryable worker failure
// land together, Resilient must surface the cancellation — never hand an
// outer retry layer a Retryable error for a job whose owner walked away.
// Pre-fix, the attempt's FailPanic was returned verbatim here.
func TestResilientCancelRacesRetryableFailure(t *testing.T) {
	c, stim, _ := resilientTestInputs(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Resilient(ctx, &stubbornEngine{block: true}, c, stim, ResilientConfig{
		Retry:    RetryPolicy{Retries: 3, Backoff: 10 * time.Second},
		Fallback: []string{"seq"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation reclassified as %v, want context.Canceled", err)
	}
	if Retryable(err) {
		t.Fatalf("canceled run classified retryable: %v", err)
	}
	settleGoroutines(t, base)
}
