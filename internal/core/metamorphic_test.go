package core

import (
	"math/rand"
	"testing"

	"hjdes/internal/circuit"
)

// Metamorphic cross-engine conformance: for seeded random circuits, the
// committed result must be invariant under stimulus equal-time
// reordering, under the TimeWarpWindow choice, and under the
// TimeWarpSaveEvery choice — bit-exact against the sequential oracle
// (full output histories, not just settled samples). The stimuli are
// deliberately dense in equal-time ties: every input transitions at the
// same instants, and same-port tie pairs pin the per-port FIFO contract
// ("events on one port must be processed in arrival order even when
// timestamps tie") through speculation, rollback and annihilation.

// metaCircuits returns the seeded random circuits the whole suite runs
// over.
func metaCircuits() []*circuit.Circuit {
	var cs []*circuit.Circuit
	for _, seed := range []int64{71, 72, 73} {
		cs = append(cs, circuit.RandomDAG(circuit.RandomConfig{Inputs: 5, Gates: 60, Outputs: 4, Seed: seed}))
	}
	return cs
}

// tieStimulus builds a stimulus where all inputs transition at the same
// wave instants and, on top, each input gets same-time transition pairs
// (a glitch and its resolution at one instant). swapTies reverses the
// order of every such pair — an equal-time reordering of the stimulus.
func tieStimulus(c *circuit.Circuit, seed int64, swapTies bool) *circuit.Stimulus {
	rng := rand.New(rand.NewSource(seed))
	period := c.SettleTime() + 10
	s := circuit.NewStimulus(c)
	for w := 0; w < 5; w++ {
		t := int64(w) * period
		for i := range s.ByInput {
			v := circuit.Value(rng.Intn(2))
			if rng.Intn(3) == 0 {
				// A same-port equal-time pair: FIFO order decides the
				// surviving value, so the pair order is semantics-bearing
				// exactly when the two values differ.
				first, second := v^1, v
				if swapTies {
					first, second = second, first
				}
				s.ByInput[i] = append(s.ByInput[i],
					circuit.Transition{Time: t, Value: first},
					circuit.Transition{Time: t, Value: second})
			} else {
				s.ByInput[i] = append(s.ByInput[i], circuit.Transition{Time: t, Value: v})
			}
		}
	}
	return s
}

// collapseHistory reduces an output history to its last value per
// timestamp. Within one timestamp, transient glitch samples depend on
// the serialization order of equal-time events across ports — any legal
// schedule is a valid interleaving — but the cohort's final value and
// the committed event count are serialization-independent, so those are
// what "bit-exact" means across engines.
func collapseHistory(h []TimedValue) []TimedValue {
	var out []TimedValue
	for _, s := range h {
		if n := len(out); n > 0 && out[n-1].Time == s.Time {
			out[n-1] = s
		} else {
			out = append(out, s)
		}
	}
	return out
}

// sameHistories compares committed output histories bit-exactly modulo
// equal-time transients: exact event counts, exact output sets, and the
// exact last-value-per-timestamp sequence on every output (much finer
// than the settle-boundary samples SameOutputs checks).
func sameHistories(t *testing.T, ref, res *Result, label string) {
	t.Helper()
	if res.TotalEvents != ref.TotalEvents {
		t.Fatalf("%s: committed %d events, oracle %d", label, res.TotalEvents, ref.TotalEvents)
	}
	if len(res.Outputs) != len(ref.Outputs) {
		t.Fatalf("%s: %d outputs, oracle %d", label, len(res.Outputs), len(ref.Outputs))
	}
	for name, raw := range ref.Outputs {
		rawRes, ok := res.Outputs[name]
		if !ok {
			t.Fatalf("%s: output %q missing", label, name)
		}
		hr, h := collapseHistory(raw), collapseHistory(rawRes)
		if len(h) != len(hr) {
			t.Fatalf("%s: output %q has %d timestamps, oracle %d", label, name, len(h), len(hr))
		}
		for i := range hr {
			if h[i] != hr[i] {
				t.Fatalf("%s: output %q timestamp %d: %+v, oracle %+v", label, name, i, h[i], hr[i])
			}
		}
	}
}

// TestMetamorphicEqualTimeReordering runs the tie-dense stimulus and its
// equal-time-swapped variant through both optimistic engines. Each
// variant must be bit-exact against seq on the same variant; and for the
// pairs where the swap is semantically neutral (seq commits the same
// histories either way), the optimistic engines must be invariant too.
func TestMetamorphicEqualTimeReordering(t *testing.T) {
	for _, c := range metaCircuits() {
		for _, seed := range []int64{81, 82} {
			base := tieStimulus(c, seed, false)
			swapped := tieStimulus(c, seed, true)
			if err := base.Validate(c); err != nil {
				t.Fatal(err)
			}
			refBase, err := NewSequential(Options{}).Run(c, base)
			if err != nil {
				t.Fatal(err)
			}
			refSwap, err := NewSequential(Options{}).Run(c, swapped)
			if err != nil {
				t.Fatal(err)
			}
			for _, mk := range []func() Engine{
				func() Engine { return NewTWHJ(Options{Workers: 4, Paranoid: true}) },
				func() Engine { return NewTimeWarp(Options{Workers: 4, Paranoid: true}) },
			} {
				e := mk()
				resBase, err := e.Run(c, base)
				if err != nil {
					t.Fatalf("%s on %s: %v", e.Name(), c.Name, err)
				}
				sameHistories(t, refBase, resBase, e.Name()+" base "+c.Name)
				resSwap, err := mk().Run(c, swapped)
				if err != nil {
					t.Fatalf("%s on %s swapped: %v", e.Name(), c.Name, err)
				}
				sameHistories(t, refSwap, resSwap, e.Name()+" swapped "+c.Name)
			}
			// When the oracle declares the reordering neutral, the two
			// bit-exact checks above transitively force the optimistic
			// engines to be invariant across it as well.
		}
	}
}

// TestMetamorphicWindowChoice: the optimism window is scheduling-only.
// Every choice must commit the oracle's histories on the tie-dense
// stimulus.
func TestMetamorphicWindowChoice(t *testing.T) {
	for _, c := range metaCircuits() {
		stim := tieStimulus(c, 91, false)
		ref, err := NewSequential(Options{}).Run(c, stim)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int64{0, 1, 3, 17, 1 << 40} {
			res, err := NewTWHJ(Options{Workers: 4, TimeWarpWindow: w, Paranoid: true}).Run(c, stim)
			if err != nil {
				t.Fatalf("window %d on %s: %v", w, c.Name, err)
			}
			sameHistories(t, ref, res, c.Name)
		}
	}
}

// TestMetamorphicSaveEveryChoice: the state-saving interval is a
// memory/speed trade-off, never a semantics knob.
func TestMetamorphicSaveEveryChoice(t *testing.T) {
	for _, c := range metaCircuits() {
		stim := tieStimulus(c, 92, false)
		ref, err := NewSequential(Options{}).Run(c, stim)
		if err != nil {
			t.Fatal(err)
		}
		for _, se := range []int{0, 1, 2, 5, 64} {
			res, err := NewTWHJ(Options{Workers: 4, TimeWarpSaveEvery: se, Paranoid: true}).Run(c, stim)
			if err != nil {
				t.Fatalf("save-every %d on %s: %v", se, c.Name, err)
			}
			sameHistories(t, ref, res, c.Name)
		}
	}
}
