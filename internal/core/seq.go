package core

import (
	"context"
	"fmt"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/queue"
)

// seqEngine is Algorithm 1: the sequential workset simulation. With the
// default per-port deques it is the paper's "HJlib" sequential version;
// with PerNodePQ it matches the Galois-Java sequential version's
// PriorityQueue-based event storage (Table 2's two baselines).
type seqEngine struct {
	opts Options
	name string
}

// NewSequential returns the Algorithm 1 engine with the paper's
// lightweight per-port array deques.
func NewSequential(opts Options) Engine {
	opts.PerNodePQ = false
	return &seqEngine{opts: opts, name: "seq"}
}

// NewSequentialPQ returns the Algorithm 1 engine with one priority queue
// per node, reproducing the Galois-Java sequential baseline's event
// storage.
func NewSequentialPQ(opts Options) Engine {
	opts.PerNodePQ = true
	return &seqEngine{opts: opts, name: "seq-pq"}
}

func (e *seqEngine) Name() string { return e.name }

func (e *seqEngine) Run(c *circuit.Circuit, stim *circuit.Stimulus) (*Result, error) {
	res, _, err := e.runSeg(c, stim, nil, false)
	return res, err
}

// RunFrom implements Checkpointer: the run is cut at settle boundaries,
// each segment saved into store, and a pre-populated store resumes from
// its latest snapshot.
func (e *seqEngine) RunFrom(ctx context.Context, c *circuit.Circuit, stim *circuit.Stimulus, store *CheckpointStore) (*Result, error) {
	return runSegmented(ctx, e, c, stim, e.opts.CheckpointEvery, store,
		func(_ context.Context, seg *circuit.Stimulus, rs *ResumeState) (*Result, ResumeState, error) {
			return e.runSeg(c, seg, rs, true)
		})
}

// runSeg runs one stimulus segment (the whole stimulus for a plain Run)
// to Chandy–Misra termination. rs seeds the wire state left by the
// previous segment; capture extracts the state for the next one (skipped
// on plain runs so the clean path stays allocation-identical).
func (e *seqEngine) runSeg(c *circuit.Circuit, stim *circuit.Stimulus, rs *ResumeState, capture bool) (*Result, ResumeState, error) {
	start := time.Now()
	s, err := newSimState(c, stim, e.opts)
	if err != nil {
		return nil, ResumeState{}, err
	}
	s.seedResume(rs)
	record := !e.opts.DiscardOutputs
	chaos := e.opts.Chaos

	// WS <- I (the input nodes); inWS deduplicates workset membership.
	var ws queue.Deque[int32]
	inWS := make([]bool, len(s.nodes))
	for _, id := range c.Inputs {
		ws.PushBack(int32(id))
		inWS[id] = true
	}

	var buf []portEvent
	for {
		// Active nodes may run in any order (Algorithm 1); LIFO order
		// gives depth-first propagation, which keeps the population of
		// live queued events small — the same locality the parallel
		// engine gets from its LIFO work-stealing deques.
		n, ok := ws.PopBack()
		if !ok {
			break
		}
		if chaos != nil && chaos.Task != nil {
			chaos.Task(0)
		}
		inWS[n] = false
		ns := &s.nodes[n]
		buf = s.simulate(ns, buf[:0], record)
		// for m in n ∪ n.neighbors: if isActive(m) add to WS.
		if ns.needsRun() && !inWS[n] {
			ws.PushBack(n)
			inWS[n] = true
		}
		for _, d := range ns.fanout {
			if s.nodes[d.node].needsRun() && !inWS[d.node] {
				ws.PushBack(d.node)
				inWS[d.node] = true
			}
		}
	}

	if bad := s.checkAllNullSent(); bad >= 0 {
		return nil, ResumeState{}, fmt.Errorf("core: simulation ended with node %d not terminated", bad)
	}
	var final ResumeState
	if capture {
		final = s.captureResume()
	}
	s.release()
	res := &Result{
		Engine:      e.name,
		Workers:     1,
		TotalEvents: s.totalEvents(),
		NodeEvents:  s.nodeEvents(),
		Elapsed:     time.Since(start),
		Outputs:     s.outputs(),
	}
	res.FillMetrics(e.opts)
	return res, final, nil
}

// simulate is the SIMULATE(n) routine shared by the sequential engines:
// process every ready event of ns, delivering generated events to the
// fanout, then propagate the NULL message once the node drains.
func (s *simState) simulate(ns *nodeState, buf []portEvent, record bool) []portEvent {
	if ns.kind == circuit.Input {
		if !ns.nullSent {
			for _, ev := range ns.inputOutgoing() {
				for _, d := range ns.fanout {
					s.nodes[d.node].receive(d.port, ev)
				}
			}
			s.sendNull(ns)
		}
		return buf
	}
	buf = ns.collectReady(buf)
	for _, pe := range buf {
		if out, ok := ns.processOne(pe, record); ok {
			for _, d := range ns.fanout {
				s.nodes[d.node].receive(d.port, out)
			}
		}
	}
	if !ns.nullSent && ns.drained() {
		s.sendNull(ns)
	}
	return buf
}

// sendNull propagates the Chandy–Misra NULL(∞) message to every fanout
// port and marks the node terminated.
func (s *simState) sendNull(ns *nodeState) {
	for _, d := range ns.fanout {
		s.nodes[d.node].receiveNull(d.port)
	}
	ns.nullSent = true
}
