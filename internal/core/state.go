package core

import (
	"fmt"
	"sync/atomic"

	"hjdes/internal/circuit"
	"hjdes/internal/galois"
	"hjdes/internal/hj"
	"hjdes/internal/queue"
)

// clockUnset marks an input port that has not received any event yet; no
// event can be ready while any port clock is unset (all event times are
// nonnegative and arrive after at least one WireDelay).
const clockUnset int64 = -1

// dest is one fanout edge endpoint.
type dest struct {
	node int32
	port int32
}

// portState is the receive side of one input port: its event deque (in
// per-port-deque mode), its Chandy–Misra clock (timestamp of the last
// event received), and its lock (in per-port-lock mode).
type portState struct {
	q     queue.Deque[Event]
	clock int64
	lock  *hj.Lock
	obj   galois.Object // per-port conflict object (galois-fine mode)
}

// nodeState is the runtime state of one circuit node within one engine
// run. The static fields are filled by newSimState; the dynamic fields
// are owned by whichever engine/task currently holds the node (or its
// ports), so none of them need their own synchronization.
type nodeState struct {
	id     int32
	kind   circuit.Kind
	delay  int64 // gate processing delay (excl. wire delay)
	numIn  int
	fanout []dest

	// Input terminals: the stimulus transitions to flood.
	transitions []circuit.Transition

	// Event storage: ports[i].q in deque mode, heap in heap mode.
	// ports[i].clock is maintained in both modes.
	ports []portState
	heap  *queue.Heap[portEvent]

	inVal    [2]circuit.Value // current value per input port
	paranoid bool             // assert per-port timestamp monotonicity
	nullSent bool             // this node already propagated its NULL
	events   int64            // signal events processed by this node
	arrivals int64            // arrival sequence for heap-mode tiebreaking

	history []TimedValue // output terminals: observed samples

	// Parallel-engine state.
	nodeLock  *hj.Lock    // per-node-lock mode (HJ engine ablation)
	scheduled atomic.Bool // a task for this node exists or is running
	obj       galois.Object
}

// simState is one engine run's complete mutable state.
type simState struct {
	c     *circuit.Circuit
	mode  storageMode
	opts  Options
	nodes []nodeState
}

func lessPortEvent(a, b portEvent) bool {
	if a.Ev.Time != b.Ev.Time {
		return a.Ev.Time < b.Ev.Time
	}
	return a.Seq < b.Seq
}

// newSimState builds fresh runtime state for a run.
func newSimState(c *circuit.Circuit, stim *circuit.Stimulus, opts Options) (*simState, error) {
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	s := &simState{c: c, mode: opts.storage(), opts: opts, nodes: make([]nodeState, len(c.Nodes))}
	// Slab-allocate the per-node port and fanout arrays: two allocations
	// for the whole circuit instead of two per node.
	totalIn, totalOut := 0, 0
	for i := range c.Nodes {
		totalIn += c.Nodes[i].NumIn()
		totalOut += len(c.Nodes[i].Fanout)
	}
	portSlab := make([]portState, totalIn)
	destSlab := make([]dest, totalOut)
	for i := range c.Nodes {
		cn := &c.Nodes[i]
		ns := &s.nodes[i]
		ns.id = int32(cn.ID)
		ns.kind = cn.Kind
		ns.delay = cn.Kind.Delay()
		ns.numIn = cn.NumIn()
		ns.fanout, destSlab = destSlab[:len(cn.Fanout):len(cn.Fanout)], destSlab[len(cn.Fanout):]
		for j, p := range cn.Fanout {
			ns.fanout[j] = dest{node: int32(p.Node), port: int32(p.In)}
		}
		ns.paranoid = opts.Paranoid
		ns.ports, portSlab = portSlab[:ns.numIn:ns.numIn], portSlab[ns.numIn:]
		for p := range ns.ports {
			ns.ports[p].clock = clockUnset
			ns.ports[p].q.SetArena(&eventArena)
		}
		if s.mode == storePerNodeHeap && ns.numIn > 0 {
			ns.heap = queue.NewHeap(lessPortEvent)
		}
	}
	for i, id := range c.Inputs {
		s.nodes[id].transitions = stim.ByInput[i]
	}
	return s, nil
}

// initLocks creates the HJ locks in node/port order, so hj.Lock IDs embed
// the paper's livelock-avoiding acquisition order ("in the ascending
// order of the node IDs"). mutex selects the heavier mutex-backed locks
// for the Section 4.5.2 ablation.
func (s *simState) initLocks(perNode, mutex bool) {
	newLock := hj.NewLock
	if mutex {
		newLock = hj.NewMutexLock
	}
	for i := range s.nodes {
		ns := &s.nodes[i]
		if perNode {
			ns.nodeLock = newLock()
			continue
		}
		for p := range ns.ports {
			ns.ports[p].lock = newLock()
		}
	}
}

// localClock is the node's Chandy–Misra local clock: the minimum over all
// input ports of the last received timestamp (TimeInfinity for a node
// with no inputs).
func (ns *nodeState) localClock() int64 {
	clock := TimeInfinity
	for p := range ns.ports {
		if c := ns.ports[p].clock; c < clock {
			clock = c
		}
	}
	return clock
}

// receive delivers a signal event to input port p, advancing that port's
// clock. The caller must own the port (or node) for the current engine's
// locking discipline.
func (ns *nodeState) receive(p int32, ev Event) {
	if ns.paranoid && ev.Time < ns.ports[p].clock {
		panic(fmt.Sprintf("core: causality violation at node %d port %d: event t=%d after clock %d",
			ns.id, p, ev.Time, ns.ports[p].clock))
	}
	ns.ports[p].clock = ev.Time
	if ns.heap != nil {
		ns.arrivals++
		ns.heap.Push(portEvent{Ev: ev, Seq: ns.arrivals, Port: p})
	} else {
		ns.ports[p].q.PushBack(ev)
	}
}

// receiveNull delivers a NULL(∞) message to input port p: the port will
// never see another event.
func (ns *nodeState) receiveNull(p int32) {
	ns.ports[p].clock = TimeInfinity
}

// hasReady reports whether at least one queued event has a timestamp at
// or below the local clock.
func (ns *nodeState) hasReady() bool {
	clock := ns.localClock()
	if ns.heap != nil {
		top, ok := ns.heap.Peek()
		return ok && top.Ev.Time <= clock
	}
	for p := range ns.ports {
		if head, ok := ns.ports[p].q.Front(); ok && head.Time <= clock {
			return true
		}
	}
	return false
}

// collectReady extracts every ready event in nondecreasing timestamp
// order into buf (reused across calls) and returns it.
func (ns *nodeState) collectReady(buf []portEvent) []portEvent {
	clock := ns.localClock()
	if ns.heap != nil {
		for {
			top, ok := ns.heap.Peek()
			if !ok || top.Ev.Time > clock {
				return buf
			}
			pe, _ := ns.heap.Pop()
			buf = append(buf, pe)
		}
	}
	for {
		best := -1
		bestTime := clock
		for p := range ns.ports {
			if head, ok := ns.ports[p].q.Front(); ok && head.Time <= bestTime {
				// <= keeps port-order stable for ties; any order is
				// correct (paper Section 4.1), this one is deterministic.
				if best == -1 || head.Time < bestTime {
					best = p
					bestTime = head.Time
				}
			}
		}
		if best == -1 {
			return buf
		}
		ev, _ := ns.ports[best].q.PopFront()
		buf = append(buf, portEvent{Ev: ev, Port: int32(best)})
	}
}

// drained reports whether the node has consumed everything it will ever
// receive: every port clock is at infinity and no events remain queued.
// A drained gate owes its fanout a NULL message (Chandy–Misra).
func (ns *nodeState) drained() bool {
	for p := range ns.ports {
		if ns.ports[p].clock != TimeInfinity {
			return false
		}
	}
	if ns.heap != nil {
		return ns.heap.Empty()
	}
	for p := range ns.ports {
		if !ns.ports[p].q.Empty() {
			return false
		}
	}
	return true
}

// needsRun reports whether the node has any pending work: ready events to
// process or a NULL to propagate.
func (ns *nodeState) needsRun() bool {
	if ns.nullSent {
		return false
	}
	return ns.hasReady() || ns.drained()
}

// processOne consumes one ready event: updates the port's current value,
// counts it, records it (output terminals), and — for gates — returns the
// outgoing event. ok is false for terminals, which emit nothing.
func (ns *nodeState) processOne(pe portEvent, record bool) (out Event, ok bool) {
	ns.inVal[pe.Port] = pe.Ev.Value
	ns.events++
	switch ns.kind {
	case circuit.Output:
		if record {
			ns.history = append(ns.history, TimedValue{Time: pe.Ev.Time, Value: pe.Ev.Value})
		}
		return Event{}, false
	case circuit.Input:
		return Event{}, false // inputs are flooded separately
	}
	v := ns.kind.Eval(ns.inVal[0], ns.inVal[1])
	return Event{Time: pe.Ev.Time + ns.delay + circuit.WireDelay, Value: v}, true
}

// inputOutgoing converts an input terminal's stimulus transitions into
// its outgoing event stream (one event per transition, delayed by the
// wire), in order.
func (ns *nodeState) inputOutgoing() []Event {
	evs := make([]Event, len(ns.transitions))
	for i, tr := range ns.transitions {
		evs[i] = Event{Time: tr.Time + circuit.WireDelay, Value: tr.Value}
	}
	return evs
}

// seedResume restores a settle-boundary checkpoint's wire state: every
// node's per-port current values. Port clocks stay at clockUnset and no
// events are queued — a settle boundary is quiescent, so the wire values
// plus the remaining stimulus are the whole state.
func (s *simState) seedResume(rs *ResumeState) {
	if rs == nil || len(rs.InVal) != len(s.nodes) {
		return
	}
	for i := range s.nodes {
		s.nodes[i].inVal = rs.InVal[i]
	}
}

// captureResume copies out the settled wire state at the end of a fully
// terminated run, for the next segment's seedResume.
func (s *simState) captureResume() ResumeState {
	rs := ResumeState{InVal: make([][2]circuit.Value, len(s.nodes))}
	for i := range s.nodes {
		rs.InVal[i] = s.nodes[i].inVal
	}
	return rs
}

// eventArena recycles the per-port event deque rings across runs
// (process-wide, sync.Pool-backed), so repeated simulations reach a
// steady state with no per-event heap allocation.
var eventArena queue.Arena[Event]

// release returns every pooled event ring to the package arena for later
// runs. Call only on paths where the run has fully joined — after a
// clean engine completion, never after a contained worker panic — since
// no task may touch node state once its rings are recycled.
func (s *simState) release() {
	for i := range s.nodes {
		ns := &s.nodes[i]
		for p := range ns.ports {
			ns.ports[p].q.Release()
		}
	}
}

// totalEvents sums the per-node processed-event counters.
func (s *simState) totalEvents() int64 {
	var total int64
	for i := range s.nodes {
		total += s.nodes[i].events
	}
	return total
}

// nodeEvents copies out the per-node processed-event counters.
func (s *simState) nodeEvents() []int64 {
	out := make([]int64, len(s.nodes))
	for i := range s.nodes {
		out[i] = s.nodes[i].events
	}
	return out
}

// outputs collects the recorded output histories by terminal name.
func (s *simState) outputs() map[string][]TimedValue {
	m := make(map[string][]TimedValue, len(s.c.Outputs))
	for _, id := range s.c.Outputs {
		m[s.c.Nodes[id].Name] = s.nodes[id].history
	}
	return m
}

// checkAllNullSent verifies the Chandy–Misra termination invariant: when
// the simulation ends, every node (including outputs) has seen its NULLs
// through. It returns the id of the first violating node, or -1.
func (s *simState) checkAllNullSent() int32 {
	for i := range s.nodes {
		ns := &s.nodes[i]
		if ns.kind == circuit.Output {
			if !ns.drained() {
				return ns.id
			}
			continue
		}
		if !ns.nullSent {
			return ns.id
		}
	}
	return -1
}
