package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/obs"
)

// TestTracedLPKoggestone is the acceptance run for the flight recorder:
// a traced koggestone-64 lp run must emit Chrome trace_event JSON that
// parses and carries events from at least two worker (LP) tracks.
func TestTracedLPKoggestone(t *testing.T) {
	c := circuit.KoggeStone(64)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 1)
	rec := obs.NewRecorder(0)
	eng := core.NewLP(core.Options{Partitions: 4, Paranoid: true, Trace: rec})
	res, err := eng.Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents == 0 {
		t.Fatal("run processed no events")
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("traced run emitted no events")
	}
	tids := map[int32]bool{}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "i" {
			t.Fatalf("event phase = %q, want instant", ev.Phase)
		}
		tids[ev.TID] = true
		names[ev.Name] = true
	}
	if len(tids) < 2 {
		t.Fatalf("trace covers %d worker tracks, want >= 2 (tids: %v)", len(tids), tids)
	}
	// A conservative lp run must at minimum ship batches and apply them.
	for _, want := range []string{"lp-send", "lp-recv"} {
		if !names[want] {
			t.Fatalf("trace has no %q events (saw %v)", want, names)
		}
	}
}

// TestMetricsAllEngines: every engine family reports through the uniform
// metrics map, and a shared registry accumulates across runs.
func TestMetricsAllEngines(t *testing.T) {
	c := circuit.KoggeStone(16)
	reg := obs.NewRegistry(0)
	cases := []struct {
		name string
		mk   func(opts core.Options) core.Engine
		keys []string
	}{
		{"seq", core.NewSequential, []string{"events"}},
		{"hj", core.NewHJ, []string{"events", "hj.spawns", "hj.steals", "hj.parks"}},
		{"lp", core.NewLP, []string{"events", "lp.partitions", "lp.event_msgs", "lp.null_msgs", "lp.batches"}},
		{"galois", core.NewGalois, []string{"events", "galois.committed"}},
		{"timewarp", core.NewTimeWarp, []string{"events", "tw.rounds", "hj.spawns"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 2)
			eng := tc.mk(core.Options{Workers: 4, Partitions: 4, Paranoid: true, Metrics: reg})
			res, err := eng.Run(c, stim)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics == nil {
				t.Fatal("Result.Metrics is nil")
			}
			for _, k := range tc.keys {
				if _, ok := res.Metrics[k]; !ok {
					t.Errorf("metrics missing %q (have: %s)", k, res.Metrics)
				}
			}
			if res.Metrics["events"] != res.TotalEvents {
				t.Errorf("metrics events = %d, want %d", res.Metrics["events"], res.TotalEvents)
			}
		})
	}
	// The shared registry saw every run: its merged view covers all families.
	snap := reg.Snapshot()
	for _, k := range []string{"events", "hj.spawns", "lp.event_msgs", "galois.committed", "tw.rounds"} {
		if snap.Counters[k] == 0 {
			t.Errorf("registry counter %q = 0 after all-engine sweep (have: %s)", k, snap.Counters)
		}
	}
	// The lp engine observes live batch sizes on the registry's histogram.
	h, ok := snap.Hists["lp.batch_size"]
	if !ok || h.Count == 0 {
		t.Fatalf("lp.batch_size histogram empty: %+v (hists: %v)", h, snap.Hists)
	}
	if h.Min < 1 || h.P50 < 1 {
		t.Errorf("batch-size distribution implausible: %+v", h)
	}
}

// TestWatchdogDiagIncludesTraceTail induces the drop-nulls deadlock with
// tracing enabled and requires the stall watchdog's diagnostic dump to
// carry the flight-recorder tail — the last events each LP recorded
// before wedging.
func TestWatchdogDiagIncludesTraceTail(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 9)
	rec := obs.NewRecorder(0)

	inj := chaos.New(chaos.Config{Seed: 9, DropNulls: true})
	eng := core.NewLPIntercepted(core.Options{
		Partitions: 4, Paranoid: true, Trace: rec,
	}, inj.Factory())

	_, err := core.Supervise(context.Background(), eng, c, stim,
		core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 300 * time.Millisecond})
	var ee *core.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("deadlocked run returned %v, want *EngineError", err)
	}
	if ee.Reason != core.FailStall {
		t.Fatalf("reason = %q, want %q", ee.Reason, core.FailStall)
	}
	if !strings.Contains(ee.Diag, "flight recorder") {
		t.Fatalf("diagnostics missing flight-recorder tail:\n%s", ee.Diag)
	}
	// The tail must show real transport activity from before the wedge,
	// attributed to a shard.
	if !strings.Contains(ee.Diag, "[shard ") {
		t.Fatalf("flight-recorder tail has no shard-attributed events:\n%s", ee.Diag)
	}
	for _, want := range []string{"lp-send", "lp-block"} {
		if !strings.Contains(ee.Diag, want) {
			t.Fatalf("flight-recorder tail missing %q events:\n%s", want, ee.Diag)
		}
	}
}

// TestUntracedRunHasNoRecorder pins the disabled path: no Options.Trace
// means engines see nil rings everywhere and results still carry metrics.
func TestUntracedRunHasNoRecorder(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 2, c.SettleTime()+10, 3)
	res, err := core.NewLP(core.Options{Partitions: 2, Paranoid: true}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Metrics["events"] != res.TotalEvents {
		t.Fatalf("untraced run metrics = %v", res.Metrics)
	}
}
