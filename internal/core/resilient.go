package core

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/obs"
)

// RetryPolicy tunes Resilient's response to a retryable failure.
type RetryPolicy struct {
	// Retries is how many extra attempts the current engine gets after
	// its first failure before Resilient degrades to the next engine in
	// the fallback chain. 0 means fail over (or fail out) immediately.
	Retries int
	// Backoff is the first retry's delay; each subsequent retry doubles
	// it, capped at MaxBackoff. Zero defaults to 50ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Zero defaults to 2s.
	MaxBackoff time.Duration
	// Seed seeds the backoff jitter so chaos soaks are reproducible.
	Seed int64
}

func (p RetryPolicy) backoff() time.Duration {
	if p.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return p.Backoff
}

func (p RetryPolicy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return p.MaxBackoff
}

// ResilientConfig configures one resilient run.
type ResilientConfig struct {
	// Supervise is applied to every attempt (timeout, stall watchdog).
	// If Supervise.Checkpoints is nil and Options.CheckpointEvery > 0, a
	// fresh CheckpointStore is created so attempts resume rather than
	// restart.
	Supervise SuperviseConfig
	// Retry is the per-engine retry budget and backoff schedule.
	Retry RetryPolicy
	// Fallback is the engine degradation chain, tried in order after the
	// primary engine's retry budget is exhausted (e.g. "lp", "seq").
	// Each name is resolved through the registry with Options.
	Fallback []string
	// Options builds the fallback engines and sets CheckpointEvery.
	Options Options
}

// Resilient runs the engine under Supervise and keeps the run alive
// through classified-retryable failures (task panics — including injected
// chaos faults — timeouts, stalls): it retries with capped exponential
// backoff plus seeded jitter, resumes each retry from the latest
// crash-consistent checkpoint when checkpointing is enabled, and after
// the retry budget degrades down cfg.Fallback so the run completes on a
// simpler engine rather than failing. The Result is annotated with
// Attempts/Degraded and, when anything non-clean happened, with
// resilient.* metrics. Fatal failures (cancellation, protocol errors) and
// an exhausted chain return the last error.
//
// The clean path — first attempt succeeds, no checkpoint store — adds no
// allocations over bare Supervise.
func Resilient(ctx context.Context, e Engine, c *circuit.Circuit, stim *circuit.Stimulus, cfg ResilientConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scfg := cfg.Supervise
	if scfg.Checkpoints == nil && cfg.Options.CheckpointEvery > 0 {
		scfg.Checkpoints = NewCheckpointStore()
	}

	var rng *rand.Rand // lazily created: clean runs never touch it
	attempts := 0
	tries := 0    // failures of the *current* engine
	chainIdx := 0 // 0 = primary, i>0 = cfg.Fallback[i-1]
	for {
		attempts++
		res, err := Supervise(ctx, e, c, stim, scfg)
		if err == nil {
			res.Attempts = attempts
			res.Degraded = chainIdx > 0
			annotateResilient(res, attempts, res.Degraded, scfg.Checkpoints, cfg.Options)
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller gave up. Surface the cancellation, never the
			// failure that raced it: a worker panic arriving in the same
			// instant as the cancel must not leave the caller holding a
			// Retryable error — an outer layer (the serving drain path)
			// would re-run a job whose owner already walked away. When the
			// engine's own error classifies as the context sentinel it is
			// kept (it carries Diag); otherwise the context cause wins.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			return nil, context.Cause(ctx)
		}
		if !Retryable(err) {
			return nil, err
		}
		tries++
		if tries > cfg.Retry.Retries {
			// Budget exhausted: degrade to the next engine in the chain.
			if chainIdx >= len(cfg.Fallback) {
				return nil, err
			}
			next, nerr := NewEngine(cfg.Fallback[chainIdx], cfg.Options)
			if nerr != nil {
				return nil, nerr
			}
			e = next
			chainIdx++
			tries = 0
			continue // fail over immediately, no backoff
		}
		b := cfg.Retry.backoff() << (tries - 1)
		if max := cfg.Retry.maxBackoff(); b <= 0 || b > max {
			b = max
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(cfg.Retry.Seed))
		}
		// Equal jitter: half deterministic, half seeded-random, so
		// concurrent retries decorrelate without unbounded spread.
		b = b/2 + time.Duration(rng.Int63n(int64(b/2)+1))
		t := time.NewTimer(b)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, context.Cause(ctx)
		case <-t.C:
		}
	}
}

// annotateResilient folds the resilience counters into the result's
// metrics map. Clean runs (one attempt, no degradation, no snapshots)
// are left untouched so the zero-fault path allocates nothing.
func annotateResilient(res *Result, attempts int, degraded bool, store *CheckpointStore, opts Options) {
	if attempts <= 1 && !degraded && (store == nil || store.Count() == 0) {
		return
	}
	if res.Metrics == nil {
		res.Metrics = make(obs.Metrics)
	}
	res.Metrics["resilient.retries"] = int64(attempts - 1)
	if degraded {
		res.Metrics["resilient.degraded"] = 1
	} else {
		res.Metrics["resilient.degraded"] = 0
	}
	if store != nil {
		store.MetricsInto(res.Metrics)
	}
	if opts.Metrics != nil {
		opts.Metrics.MergeMetrics(obs.Metrics{
			"resilient.retries":  int64(attempts - 1),
			"resilient.degraded": res.Metrics["resilient.degraded"],
		})
	}
}
