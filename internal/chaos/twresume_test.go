package chaos_test

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/trace"
)

// vcdOf renders a result's waveform under a fixed module name, so
// byte-diffs compare only the committed signal history, never the
// engine label.
func vcdOf(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteVCD(&buf, "resume", res.Outputs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTWResumeUnderRollbackStorm kills an optimistic run mid-flight —
// one induced panic while a rollback storm is raging — and requires the
// resilient wrapper to resume from the reached segment and finish with
// a waveform byte-identical to a clean, chaos-free run. Covers both the
// barrier ablation baseline and the barrier-free engine.
func TestTWResumeUnderRollbackStorm(t *testing.T) {
	// Deep enough that per-round logs exceed one entry even inside
	// single-wave segments — the barrier engine only injects rollbacks
	// on logs it could actually halve.
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 6, c.SettleTime()+10, 67)

	for _, name := range []string{"timewarp", "tw-hj"} {
		t.Run(name, func(t *testing.T) {
			clean, err := core.NewEngine(name, core.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			cleanRes, err := clean.Run(c, stim)
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			cleanVCD := vcdOf(t, cleanRes)

			store := core.NewCheckpointStore()
			inj := chaos.NewSched(chaos.SchedConfig{Seed: 23, RollbackProb: 0.9, MaxRollbacks: 200})
			hooks := inj.Hooks()
			var killed atomic.Bool
			hooks.Task = func(worker int) {
				// Kill exactly once, and only after a segment checkpoint
				// exists, so the retry genuinely resumes rather than
				// restarting from scratch.
				if store.Count() >= 1 && killed.CompareAndSwap(false, true) {
					panic("chaos: induced mid-storm crash")
				}
			}
			// Three waves per segment: single-wave segments settle so fast
			// that barrier-engine logs never exceed one entry, starving the
			// storm of injection points.
			opts := core.Options{Workers: 4, CheckpointEvery: 3, Chaos: hooks}
			e, err := core.NewEngine(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Resilient(nil, e, c, stim, core.ResilientConfig{
				Supervise: core.SuperviseConfig{Timeout: 30 * time.Second, Checkpoints: store},
				Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: 1},
				Options:   opts,
			})
			if err != nil {
				t.Fatalf("resilient run failed: %v", err)
			}
			if !killed.Load() {
				t.Fatal("induced crash never fired")
			}
			if inj.Stats.Rollbacks.Load() == 0 {
				t.Fatal("rollback storm never fired")
			}
			if res.Metrics["resilient.resumes"] < 1 {
				t.Fatalf("resilient.resumes = %d, want >= 1", res.Metrics["resilient.resumes"])
			}
			if got := vcdOf(t, res); !bytes.Equal(cleanVCD, got) {
				t.Fatalf("recovered VCD differs from clean run (%d vs %d bytes)", len(got), len(cleanVCD))
			}
			if ok, diff := core.SameOutputs(cleanRes, res); !ok {
				t.Fatalf("recovered run diverged: %s", diff)
			}
		})
	}
}

// TestTWHJCrossEngineResumeIntoSeq kills a segmented tw-hj run mid-way
// and hands its checkpoint store to the sequential engine: the seq
// resume must reproduce the full run bit-for-bit — the degradation path
// Resilient relies on when an optimistic engine keeps failing.
func TestTWHJCrossEngineResumeIntoSeq(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.RandomStimulus(c, 6, c.SettleTime()+10, 71)

	ref, err := core.NewSequential(core.Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	refVCD := vcdOf(t, ref)

	store := core.NewCheckpointStore()
	inj := chaos.NewSched(chaos.SchedConfig{Seed: 29, RollbackProb: 0.8, MaxRollbacks: 100})
	hooks := inj.Hooks()
	var killed atomic.Bool
	hooks.Task = func(worker int) {
		if store.Count() >= 2 && killed.CompareAndSwap(false, true) {
			panic("chaos: induced mid-run crash")
		}
	}
	opts := core.Options{Workers: 4, CheckpointEvery: 1, Chaos: hooks}
	twhj, err := core.NewEngine("tw-hj", opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = twhj.(core.Checkpointer).RunFrom(nil, c, stim, store)
	if err == nil {
		if !killed.Load() {
			t.Skip("run finished before two segments checkpointed; nothing to resume")
		}
		t.Fatal("killed run reported success")
	}
	reached := store.Count()
	if reached < 2 {
		t.Fatalf("store reached %d segments, want >= 2", reached)
	}

	seqRes, err := core.NewSequential(core.Options{CheckpointEvery: 1}).(core.Checkpointer).RunFrom(nil, c, stim, store)
	if err != nil {
		t.Fatalf("seq resume from tw-hj checkpoint: %v", err)
	}
	if seqRes.Metrics["resilient.resumes"] != 1 {
		t.Fatalf("resilient.resumes = %d, want 1", seqRes.Metrics["resilient.resumes"])
	}
	if seqRes.Metrics["resilient.resume_cycle"] == 0 {
		t.Fatal("resume started from segment 0, not the reached segment")
	}
	if ok, diff := core.SameOutputs(ref, seqRes); !ok {
		t.Fatalf("seq resume diverged from reference: %s", diff)
	}
	if got := vcdOf(t, seqRes); !bytes.Equal(refVCD, got) {
		t.Fatalf("resumed VCD differs from clean run (%d vs %d bytes)", len(got), len(refVCD))
	}
}

// TestTWHJChaosSweepBitExact is the barrier-free Time Warp analogue of
// the lp-hj chaos sweep: 200 seeded runs rotating circuits and worker
// counts K ∈ {1, 2, 8, 64}, half under pure rollback storms, half with
// an induced mid-run panic recovered through checkpoint-resume — every
// completed run bit-compared against the sequential oracle with the
// Paranoid sub-GVT delivery assertion armed.
func TestTWHJChaosSweepBitExact(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.FullAdder(),
		circuit.KoggeStone(8),
		circuit.KoggeStone(16),
		circuit.ParityChain(24),
	}
	workerCounts := []int{1, 2, 8, 64}

	base := runtime.NumGoroutine()
	runs, failures := 0, 0
	var storms, resumes int64
	for seed := int64(0); runs < 200; seed++ {
		c := circuits[int(seed)%len(circuits)]
		k := workerCounts[int(seed)%len(workerCounts)]
		stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, seed)
		want := seqReference(t, c, stim)

		cfg := chaos.SchedConfig{Seed: seed, RollbackProb: 0.6, MaxRollbacks: 50}
		if seed%2 == 1 {
			// Kill/restart arm: one induced task panic, recovered by the
			// resilient retry resuming from the reached segment.
			cfg.PanicProb = 0.002
			cfg.MaxPanics = 1
		}
		inj := chaos.NewSched(cfg)
		opts := core.Options{Workers: k, Paranoid: true, CheckpointEvery: 2, Chaos: inj.Hooks()}
		eng, err := core.NewEngine("tw-hj", opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Resilient(nil, eng, c, stim, core.ResilientConfig{
			Supervise: core.SuperviseConfig{Timeout: 30 * time.Second},
			Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: seed},
			Options:   opts,
		})
		runs++
		if err != nil {
			failures++
			continue
		}
		storms += inj.Stats.Rollbacks.Load()
		resumes += got.Metrics["resilient.resumes"] + got.Metrics["resilient.retries"]
		if ok, diff := core.SameOutputs(want, got); !ok {
			t.Fatalf("seed %d (%s k=%d): SILENTLY WRONG under chaos: %s", seed, c.Name, k, diff)
		}
		if got.TotalEvents != want.TotalEvents {
			t.Fatalf("seed %d (%s k=%d): committed %d events, oracle %d",
				seed, c.Name, k, got.TotalEvents, want.TotalEvents)
		}
	}
	settleGoroutines(t, base)
	t.Logf("%d tw-hj chaos runs: %d verified, %d failed loudly, %d injected rollbacks, %d retry/resumes",
		runs, runs-failures, failures, storms, resumes)
	if failures > runs/10 {
		t.Fatalf("%d/%d chaos runs failed; rollback storms and panic-resume should verify", failures, runs)
	}
	if storms == 0 {
		t.Fatal("rollback storms never fired")
	}
	if resumes == 0 {
		t.Fatal("panic chaos never exercised the retry/resume path")
	}
}
