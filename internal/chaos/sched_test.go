package chaos_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

func TestParseSchedSpecRoundTrip(t *testing.T) {
	cfg, err := chaos.ParseSchedSpec("seed=7, panic=0.25, maxpanics=3, wakedrop=0.5, maxwakedrops=4, wakedelay=0.1, rollback=0.75, maxrollbacks=16")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.PanicProb != 0.25 || cfg.MaxPanics != 3 ||
		cfg.WakeDropProb != 0.5 || cfg.MaxWakeDrops != 4 || cfg.WakeDelayProb != 0.1 ||
		cfg.RollbackProb != 0.75 || cfg.MaxRollbacks != 16 {
		t.Fatalf("parsed config %+v does not match spec", cfg)
	}
	if cfg, err := chaos.ParseSchedSpec(""); err != nil || cfg != (chaos.SchedConfig{}) {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	if _, err := chaos.ParseSchedSpec("frobnicate=1"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := chaos.ParseSchedSpec("panic=lots"); err == nil {
		t.Fatal("malformed probability accepted")
	}
}

// TestSchedPanicCapExactUnderConcurrency hammers the task hook from many
// goroutines and checks the injected-panic cap holds exactly.
func TestSchedPanicCapExactUnderConcurrency(t *testing.T) {
	inj := chaos.NewSched(chaos.SchedConfig{Seed: 3, PanicProb: 1, MaxPanics: 5})
	hooks := inj.Hooks()
	if hooks.Task == nil {
		t.Fatal("panic hook not armed")
	}
	var panics atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(chaos.InjectedPanic); !ok {
								t.Errorf("unexpected panic value %v", r)
							}
							panics.Add(1)
						}
					}()
					hooks.Task(0)
				}()
			}
		}()
	}
	wg.Wait()
	if panics.Load() != 5 {
		t.Fatalf("observed %d injected panics, cap is 5", panics.Load())
	}
	if inj.Stats.TaskPanics.Load() != 5 {
		t.Fatalf("stats count %d panics, want 5", inj.Stats.TaskPanics.Load())
	}
}

func TestSchedHooksNilWhenUnconfigured(t *testing.T) {
	h := chaos.NewSched(chaos.SchedConfig{Seed: 1}).Hooks()
	if h.Task != nil || h.Wake != nil || h.Rollback != nil {
		t.Fatalf("zero-probability config armed hooks: %+v", h)
	}
}

func TestSchedStatsMetrics(t *testing.T) {
	inj := chaos.NewSched(chaos.SchedConfig{Seed: 2, WakeDropProb: 1, MaxWakeDrops: 2})
	h := inj.Hooks()
	for i := 0; i < 5; i++ {
		h.Wake()
	}
	m := inj.Stats.Metrics()
	if m["chaos.wake_drops"] != 2 {
		t.Fatalf("chaos.wake_drops = %d, want 2 (capped)", m["chaos.wake_drops"])
	}
	for _, key := range []string{"chaos.task_panics", "chaos.wake_drops", "chaos.wake_delays", "chaos.rollback_storms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %s", key)
		}
	}
}

// schedFamilies maps each engine family that consumes core.ChaosHooks to
// one representative registry name.
var schedFamilies = []string{"seq", "hj", "galois", "galois-ordered", "actor", "timewarp", "tw-hj"}

// runResilientChaos runs the named engine under core.Resilient with the
// given injector wired in, a seq fallback, and full checkpointing.
func runResilientChaos(t *testing.T, name string, c *circuit.Circuit, stim *circuit.Stimulus, inj *chaos.SchedInjector) *core.Result {
	t.Helper()
	opts := core.Options{Workers: 4, CheckpointEvery: 1, Chaos: inj.Hooks()}
	e, err := core.NewEngine(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Resilient(nil, e, c, stim, core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 5 * time.Second},
		Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: 1},
		Fallback:  []string{"seq"},
		Options:   opts,
	})
	if err != nil {
		t.Fatalf("%s chaotic run failed: %v", name, err)
	}
	return res
}

// TestInducedPanicRecoveryPerFamily is the per-engine-family acceptance
// test: a guaranteed injected task panic must surface as a retryable
// failure, and the resilient retry (resuming from checkpoints) must
// complete bit-exact against the sequential oracle with the recovery
// visible in the result metrics.
func TestInducedPanicRecoveryPerFamily(t *testing.T) {
	c := circuit.KoggeStone(8)
	stim := circuit.RandomStimulus(c, 5, c.SettleTime()+10, 41)
	ref := seqReference(t, c, stim)

	for _, name := range schedFamilies {
		t.Run(name, func(t *testing.T) {
			inj := chaos.NewSched(chaos.SchedConfig{Seed: 11, PanicProb: 1, MaxPanics: 1})
			res := runResilientChaos(t, name, c, stim, inj)
			if inj.Stats.TaskPanics.Load() != 1 {
				t.Fatalf("injected %d panics, want 1", inj.Stats.TaskPanics.Load())
			}
			if res.Attempts != 2 || res.Degraded {
				t.Fatalf("Attempts=%d Degraded=%v, want one retry on the same engine", res.Attempts, res.Degraded)
			}
			if res.Metrics["resilient.retries"] != 1 {
				t.Fatalf("resilient.retries = %d, want 1", res.Metrics["resilient.retries"])
			}
			if res.TotalEvents != ref.TotalEvents {
				t.Fatalf("recovered run counted %d events, oracle %d", res.TotalEvents, ref.TotalEvents)
			}
			if ok, diff := core.SameOutputs(ref, res); !ok {
				t.Fatalf("recovered %s diverged from oracle: %s", name, diff)
			}
		})
	}
}

// TestWakeDropRecoveryHJ drops hj wake tokens: the run must still finish
// bit-exact, either in place (parking workers re-scan for visible work) or
// through the stall watchdog and a resilient retry.
func TestWakeDropRecoveryHJ(t *testing.T) {
	c := circuit.FanoutTree(5)
	stim := circuit.RandomStimulus(c, 5, c.SettleTime()+10, 43)
	ref := seqReference(t, c, stim)

	inj := chaos.NewSched(chaos.SchedConfig{Seed: 13, WakeDropProb: 0.5, MaxWakeDrops: 4, WakeDelayProb: 0.25})
	res := runResilientChaos(t, "hj", c, stim, inj)
	if ok, diff := core.SameOutputs(ref, res); !ok {
		t.Fatalf("wake-drop run diverged: %s", diff)
	}
	if res.TotalEvents != ref.TotalEvents {
		t.Fatalf("wake-drop run counted %d events, oracle %d", res.TotalEvents, ref.TotalEvents)
	}
}

// TestRollbackStormTimewarp forces extra Time Warp rollbacks and checks
// they are semantics-preserving: the output must stay bit-exact while the
// injector confirms storms actually fired.
func TestRollbackStormTimewarp(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 6, c.SettleTime()+10, 47)
	ref := seqReference(t, c, stim)

	// No checkpoint segmentation here: a segment per wave would collapse
	// the optimism window (all of a segment's stimulus is in flight at
	// once), leaving processed logs too short to storm.
	inj := chaos.NewSched(chaos.SchedConfig{Seed: 17, RollbackProb: 0.9, MaxRollbacks: 100})
	opts := core.Options{Workers: 4, Chaos: inj.Hooks()}
	e, err := core.NewEngine("timewarp", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Resilient(nil, e, c, stim, core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: 30 * time.Second},
		Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: 1},
		Fallback:  []string{"seq"},
		Options:   opts,
	})
	if err != nil {
		t.Fatalf("rollback-storm run failed: %v", err)
	}
	if inj.Stats.Rollbacks.Load() == 0 {
		t.Fatal("rollback storm never fired")
	}
	if res.TimeWarp.Rollbacks == 0 {
		t.Fatal("timewarp stats recorded no rollbacks")
	}
	if ok, diff := core.SameOutputs(ref, res); !ok {
		t.Fatalf("rollback-storm run diverged: %s", diff)
	}
}

// TestRollbackStormTWHJ is the barrier-free analogue: storms are keyed
// by (node, slice) instead of (node, round), and the engine's own
// rollback counters must confirm the extra rollbacks were absorbed
// bit-exact — no global barrier re-synchronizes the nodes afterwards.
func TestRollbackStormTWHJ(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 6, c.SettleTime()+10, 47)
	ref := seqReference(t, c, stim)

	inj := chaos.NewSched(chaos.SchedConfig{Seed: 19, RollbackProb: 0.9, MaxRollbacks: 100})
	opts := core.Options{Workers: 4, Chaos: inj.Hooks()}
	e, err := core.NewEngine("tw-hj", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Resilient(nil, e, c, stim, core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: 30 * time.Second},
		Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: 1},
		Fallback:  []string{"seq"},
		Options:   opts,
	})
	if err != nil {
		t.Fatalf("rollback-storm run failed: %v", err)
	}
	if inj.Stats.Rollbacks.Load() == 0 {
		t.Fatal("rollback storm never fired")
	}
	if res.TimeWarp.Rollbacks == 0 {
		t.Fatal("tw-hj stats recorded no rollbacks")
	}
	if ok, diff := core.SameOutputs(ref, res); !ok {
		t.Fatalf("rollback-storm run diverged: %s", diff)
	}
}

// TestChaosSoakAllEngines is the full recovery soak: every registered
// engine × every scheduler fault kind × several seeds, each run under
// core.Resilient with checkpoint-resume and a seq fallback, each output
// compared bit for bit against the sequential oracle. The lp engine takes
// its faults through the inbox injector instead (delayed releases,
// duplicated nulls, kill-and-restart) since its chaos surface is the
// message plane, not a shared scheduler. ~200 runs; -short trims the seed
// axis, CI's chaos-soak job runs the full matrix under -race.
func TestChaosSoakAllEngines(t *testing.T) {
	c := circuit.ParityChain(12)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 53)
	ref := seqReference(t, c, stim)

	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:1]
	}
	kinds := []string{"panic", "wakedrop", "rollback"}
	for _, name := range core.EngineNames() {
		for _, kind := range kinds {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, kind, seed), func(t *testing.T) {
					t.Parallel()
					var res *core.Result
					if name == "lp" {
						res = runResilientLPChaos(t, kind, seed, c, stim)
					} else {
						inj := chaos.NewSched(schedConfigFor(kind, seed))
						res = runResilientChaos(t, name, c, stim, inj)
					}
					if res.TotalEvents != ref.TotalEvents {
						t.Fatalf("chaotic run counted %d events, oracle %d", res.TotalEvents, ref.TotalEvents)
					}
					if ok, diff := core.SameOutputs(ref, res); !ok {
						t.Fatalf("chaotic run diverged from oracle: %s", diff)
					}
				})
			}
		}
	}
}

func schedConfigFor(kind string, seed int64) chaos.SchedConfig {
	cfg := chaos.SchedConfig{Seed: seed}
	switch kind {
	case "panic":
		cfg.PanicProb, cfg.MaxPanics = 0.001, 2
	case "wakedrop":
		cfg.WakeDropProb, cfg.MaxWakeDrops, cfg.WakeDelayProb = 0.2, 3, 0.1
	case "rollback":
		cfg.RollbackProb, cfg.MaxRollbacks = 0.5, 8
	}
	return cfg
}

// runResilientLPChaos drives the lp engine through the message-plane
// injector under the same resilient envelope as the scheduler families.
func runResilientLPChaos(t *testing.T, kind string, seed int64, c *circuit.Circuit, stim *circuit.Stimulus) *core.Result {
	t.Helper()
	cfg := chaos.Config{Seed: seed}
	switch kind {
	case "panic": // closest message-plane analogue: kill an LP mid-run
		cfg.KillProb, cfg.MaxKills = 0.05, 1
	case "wakedrop":
		cfg.DelayProb, cfg.MaxHeld = 0.3, 8
	case "rollback":
		cfg.DupNullProb = 0.4
	}
	inj := chaos.New(cfg)
	opts := core.Options{Partitions: 3, CheckpointEvery: 1}
	e := core.NewLPIntercepted(opts, inj.Factory())
	res, err := core.Resilient(nil, e, c, stim, core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 5 * time.Second},
		Retry:     core.RetryPolicy{Retries: 2, Backoff: time.Millisecond, Seed: seed},
		Fallback:  []string{"seq"},
		Options:   opts,
	})
	if err != nil {
		t.Fatalf("lp chaotic run (%s) failed: %v", kind, err)
	}
	return res
}
