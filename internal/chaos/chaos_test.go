package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"hjdes/internal/chaos"
	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/lp"
)

// seqReference runs the sequential oracle engine once for a circuit and
// stimulus; every chaos run is compared against it bit for bit.
func seqReference(t *testing.T, c *circuit.Circuit, stim *circuit.Stimulus) *core.Result {
	t.Helper()
	res, err := core.NewSequential(core.Options{}).Run(c, stim)
	if err != nil {
		t.Fatalf("seq reference: %v", err)
	}
	return res
}

func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after chaos run\n%s", buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosNeverSilentlyWrong is the headline property test: 200 seeded
// chaos runs across circuits, partition counts, and inbox capacities.
// Every run must either verify bit-exactly against the sequential oracle
// or fail loudly with a structured error. Hanging is impossible by
// construction (Supervise timeout) and silent corruption fails the
// comparison.
func TestChaosNeverSilentlyWrong(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.FullAdder(),
		circuit.KoggeStone(8),
		circuit.KoggeStone(16),
		circuit.ParityChain(24),
	}
	partitions := []int{2, 3, 4}
	inboxCaps := []int{0, 1, 2} // 0 = engine default

	base := runtime.NumGoroutine()
	runs, failures := 0, 0
	for seed := int64(0); runs < 200; seed++ {
		c := circuits[int(seed)%len(circuits)]
		k := partitions[int(seed)%len(partitions)]
		cap := inboxCaps[int(seed)%len(inboxCaps)]
		stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, seed)
		want := seqReference(t, c, stim)

		inj := chaos.New(chaos.Config{
			Seed:        seed,
			DelayProb:   0.4,
			DupNullProb: 0.3,
			KillProb:    0.05,
			MaxKills:    2,
		})
		eng := core.NewLPIntercepted(core.Options{
			Partitions: k,
			Paranoid:   true,
			LPInboxCap: cap,
		}, inj.Factory())

		got, err := core.Supervise(context.Background(), eng, c, stim,
			core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 10 * time.Second})
		runs++
		if err != nil {
			// A loud, structured failure is acceptable; silence is not.
			var ee *core.EngineError
			if !errors.As(err, &ee) {
				t.Fatalf("seed %d (%s k=%d cap=%d): unstructured failure: %v",
					seed, c.Name, k, cap, err)
			}
			failures++
			continue
		}
		if ok, diff := core.SameOutputs(want, got); !ok {
			t.Fatalf("seed %d (%s k=%d cap=%d): SILENTLY WRONG under chaos %s: %s",
				seed, c.Name, k, cap, inj.Stats.String(), diff)
		}
	}
	settleGoroutines(t, base)
	t.Logf("%d chaos runs: %d verified, %d failed loudly", runs, runs-failures, failures)
	// Delay/dup/kill faults are all survivable by design; a high failure
	// rate means the injector broke an invariant it promised to keep.
	if failures > runs/10 {
		t.Fatalf("%d/%d chaos runs failed; these fault classes should verify", failures, runs)
	}
}

// TestChaosDeadlockWatchdog induces the classic conservative-PDES
// deadlock — null messages suppressed on every edge — and requires the
// stall watchdog to catch it with per-LP diagnostics instead of hanging.
func TestChaosDeadlockWatchdog(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 9)
	base := runtime.NumGoroutine()

	inj := chaos.New(chaos.Config{Seed: 9, DropNulls: true})
	eng := core.NewLPIntercepted(core.Options{
		Partitions: 4, Paranoid: true,
	}, inj.Factory())

	start := time.Now()
	_, err := core.Supervise(context.Background(), eng, c, stim,
		core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 300 * time.Millisecond})
	var ee *core.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("deadlocked run returned %v, want *EngineError", err)
	}
	if ee.Reason != core.FailStall {
		t.Fatalf("reason = %q, want %q (err: %v)", ee.Reason, core.FailStall, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to trip a 300ms stall window", elapsed)
	}
	// The diagnostic snapshot must describe each LP: clock, inbox depth,
	// and what it is blocked on.
	for lp := 0; lp < 4; lp++ {
		if !strings.Contains(ee.Diag, fmt.Sprintf("lp %d:", lp)) {
			t.Fatalf("diagnostics missing lp %d:\n%s", lp, ee.Diag)
		}
	}
	if !strings.Contains(ee.Diag, "blocked-recv") {
		t.Fatalf("diagnostics show no blocked LP:\n%s", ee.Diag)
	}
	if inj.Stats.DroppedNulls.Load() == 0 {
		t.Fatal("injector dropped no nulls; the deadlock was not induced")
	}
	settleGoroutines(t, base)
}

// TestChaosDeadlockQuiesceLPHJ induces the same null-suppression
// deadlock in the fused lp-hj engine, where nothing ever blocks: the
// starved LPs yield with empty mailboxes, the runtime quiesces, and
// collection detects the deadlock immediately — the engine must report
// the same structured FailStall with per-LP diagnostics as the
// goroutine engine's watchdog, without waiting for any stall window.
func TestChaosDeadlockQuiesceLPHJ(t *testing.T) {
	c := circuit.KoggeStone(16)
	stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, 9)
	base := runtime.NumGoroutine()

	inj := chaos.New(chaos.Config{Seed: 9, DropNulls: true})
	eng := core.NewLPHJIntercepted(core.Options{
		Partitions: 4, Paranoid: true,
	}, inj.Factory())

	start := time.Now()
	_, err := eng.Run(c, stim)
	var ee *core.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("deadlocked run returned %v, want *EngineError", err)
	}
	if ee.Reason != core.FailStall {
		t.Fatalf("reason = %q, want %q (err: %v)", ee.Reason, core.FailStall, err)
	}
	var de *lp.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("stall does not wrap *lp.DeadlockError: %v", err)
	}
	// Quiescence detection is immediate; no watchdog window is involved.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("quiescence detection took %v", elapsed)
	}
	for lpID := 0; lpID < 4; lpID++ {
		if !strings.Contains(ee.Diag, fmt.Sprintf("lp %d:", lpID)) {
			t.Fatalf("diagnostics missing lp %d:\n%s", lpID, ee.Diag)
		}
	}
	if inj.Stats.DroppedNulls.Load() == 0 {
		t.Fatal("injector dropped no nulls; the deadlock was not induced")
	}
	settleGoroutines(t, base)
}

// TestChaosBackpressureInboxCapOne pins the bounded-inbox deadlock-freedom
// claim at its most hostile setting: capacity-1 inboxes, delay chaos
// holding events back, and partition counts that include a 2-LP cycle
// (KoggeStone's quotient graph at k=2 is a two-node cycle).
func TestChaosBackpressureInboxCapOne(t *testing.T) {
	c := circuit.KoggeStone(16)
	for _, k := range []int{2, 3, 8} {
		for seed := int64(0); seed < 5; seed++ {
			stim := circuit.RandomStimulus(c, 6, c.SettleTime()+10, 100+seed)
			want := seqReference(t, c, stim)

			inj := chaos.New(chaos.Config{Seed: seed, DelayProb: 0.5, DupNullProb: 0.2})
			eng := core.NewLPIntercepted(core.Options{
				Partitions: k, Paranoid: true, LPInboxCap: 1,
			}, inj.Factory())

			got, err := core.Supervise(context.Background(), eng, c, stim,
				core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 10 * time.Second})
			if err != nil {
				t.Fatalf("k=%d seed=%d cap=1: %v (chaos %s)", k, seed, err, inj.Stats.String())
			}
			if ok, diff := core.SameOutputs(want, got); !ok {
				t.Fatalf("k=%d seed=%d cap=1: wrong outputs: %s", k, seed, diff)
			}
		}
	}
}

// TestChaosSpecRoundTrip keeps the -chaos flag grammar honest.
func TestChaosSpecRoundTrip(t *testing.T) {
	cfg, err := chaos.ParseSpec("seed=42,delay=0.25,dup=0.1,kill=0.05,maxkills=3,maxheld=8,dropnulls")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.DelayProb != 0.25 || cfg.DupNullProb != 0.1 ||
		cfg.KillProb != 0.05 || cfg.MaxKills != 3 || cfg.MaxHeld != 8 || !cfg.DropNulls {
		t.Fatalf("ParseSpec = %+v", cfg)
	}
	if _, err := chaos.ParseSpec("delay=nope"); err == nil {
		t.Fatal("bad probability parsed")
	}
	if _, err := chaos.ParseSpec("unknown=1"); err == nil {
		t.Fatal("unknown key parsed")
	}
}

// TestChaosDeterministicReplay pins the package's determinism contract:
// fault decisions are a pure function of (seed, the LP's own send
// sequence). Feeding an identical scripted sequence through two
// same-seeded interceptors must yield an identical decision trace. (A
// full engine run is NOT trace-reproducible — null-message traffic is
// timing-dependent — which is exactly why the contract is stated per
// send sequence, not per wall-clock run.)
func TestChaosDeterministicReplay(t *testing.T) {
	script := func(ic lp.Interceptor) string {
		var sb strings.Builder
		dump := func(tag string, ds []lp.Delivery) {
			fmt.Fprintf(&sb, "%s:", tag)
			for _, d := range ds {
				fmt.Fprintf(&sb, " ->%d kind=%d node=%d t=%d", d.To, d.M.Kind, d.M.Node, d.M.Time)
			}
			sb.WriteByte('\n')
		}
		for i := 0; i < 200; i++ {
			fmt.Fprintf(&sb, "crash=%v\n", ic.CrashPoint(0))
			m := lp.Msg{Kind: lp.MsgEvent, Src: 0, Node: int32(i % 7), Port: int32(i % 2), Time: int64(i)}
			if i%5 == 0 {
				m.Kind = lp.MsgNullEdge
			}
			dump("send", ic.OnSend(0, int32(1+i%3), m))
			if i%17 == 0 {
				dump("block", ic.OnBlock(0))
			}
		}
		dump("final-block", ic.OnBlock(0))
		return sb.String()
	}
	cfg := chaos.Config{Seed: 17, DelayProb: 0.5, DupNullProb: 0.4, KillProb: 0.1, MaxKills: 2}
	t1 := script(chaos.New(cfg).Factory()(4))
	t2 := script(chaos.New(cfg).Factory()(4))
	if t1 != t2 {
		t.Fatalf("same seed, same send sequence, different decisions:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
	// A different LP id must draw from an independent stream.
	if t3 := script(chaos.New(cfg).Factory()(5)); t3 == t1 {
		t.Fatal("different LP ids produced identical fault streams")
	}
}

// TestLPHJChaosSweepBitExact is the lp-hj twin of
// TestChaosNeverSilentlyWrong, sweeping the partition counts where the
// fused engine matters (K up to 64, far above the worker count): 200
// seeded runs under message chaos — delays, duplicated nulls, and
// kill-and-restart from in-run checkpoints — each either bit-exact
// against the sequential oracle or a loud structured failure. Slices
// run mutually exclusive per LP, so the same deterministic interceptor
// contract applies unchanged.
func TestLPHJChaosSweepBitExact(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.FullAdder(),
		circuit.KoggeStone(8),
		circuit.KoggeStone(16),
		circuit.ParityChain(24),
	}
	partitions := []int{1, 2, 8, 64}

	base := runtime.NumGoroutine()
	runs, failures, restarts := 0, 0, int64(0)
	for seed := int64(0); runs < 200; seed++ {
		c := circuits[int(seed)%len(circuits)]
		k := partitions[int(seed)%len(partitions)]
		stim := circuit.RandomStimulus(c, 4, c.SettleTime()+10, seed)
		want := seqReference(t, c, stim)

		inj := chaos.New(chaos.Config{
			Seed:        seed,
			DelayProb:   0.4,
			DupNullProb: 0.3,
			KillProb:    0.05,
			MaxKills:    2,
		})
		eng := core.NewLPHJIntercepted(core.Options{
			Partitions: k,
			Workers:    4,
			Paranoid:   true,
		}, inj.Factory())

		got, err := core.Supervise(context.Background(), eng, c, stim,
			core.SuperviseConfig{Timeout: 30 * time.Second, StallTimeout: 10 * time.Second})
		runs++
		if err != nil {
			var ee *core.EngineError
			if !errors.As(err, &ee) {
				t.Fatalf("seed %d (%s k=%d): unstructured failure: %v", seed, c.Name, k, err)
			}
			failures++
			continue
		}
		restarts += got.LP.Restarts
		if ok, diff := core.SameOutputs(want, got); !ok {
			t.Fatalf("seed %d (%s k=%d): SILENTLY WRONG under chaos %s: %s",
				seed, c.Name, k, inj.Stats.String(), diff)
		}
	}
	settleGoroutines(t, base)
	t.Logf("%d lp-hj chaos runs: %d verified, %d failed loudly, %d kill-and-restarts survived",
		runs, runs-failures, failures, restarts)
	if failures > runs/10 {
		t.Fatalf("%d/%d chaos runs failed; these fault classes should verify", failures, runs)
	}
	if restarts == 0 {
		t.Fatal("kill chaos never exercised the checkpoint restart path")
	}
}
