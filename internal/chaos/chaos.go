// Package chaos is a seeded, deterministic fault injector for the LP
// engine. It implements lp.Interceptor at the inbox boundary: every
// cross-partition message an LP sends passes through a per-LP injector
// that can hold it back (delaying it past later traffic — a cross-port
// reorder within the protocol's lookahead), duplicate it (null messages
// only: clock advances are idempotent, event duplication would corrupt
// the simulation), drop it (null messages only, to induce protocol
// deadlocks for watchdog testing), or kill the LP at its next loop top
// and restart it from a checkpoint.
//
// Determinism: each LP gets its own RNG seeded from Config.Seed and the
// LP id, and all injector state is touched only from that LP's goroutine.
// The fault *decisions* are therefore a pure function of (seed, that LP's
// send sequence), independent of scheduling. Because the injector
// preserves the invariants in the lp.Interceptor contract — per-port
// FIFO, no event duplication or loss, full flush before nulls and blocks
// — a chaos run must still produce bit-identical results to the
// sequential oracle, or fail loudly (Paranoid causality panic, structured
// engine error). The chaos tests assert exactly that.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"

	"hjdes/internal/lp"
	"hjdes/internal/obs"
)

// Config tunes the injector. The zero value injects nothing.
type Config struct {
	// Seed drives every fault decision; same seed, same faults.
	Seed int64
	// DelayProb is the probability of holding back an outgoing event
	// message until a later send to the same LP, the next null on that
	// channel, or the sender's next block point.
	DelayProb float64
	// MaxHeld caps messages held per LP at once; 0 means 16.
	MaxHeld int
	// DupNullProb is the probability of sending a null message twice.
	DupNullProb float64
	// DropNulls drops every null message (both per-edge NULL(∞) and
	// channel promises). Termination and clock advances then never
	// propagate across cuts, so any multi-LP run deadlocks — the induced
	// failure the stall watchdog must catch.
	DropNulls bool
	// KillProb is the per-loop-iteration probability of killing the LP
	// and restarting it from a checkpoint.
	KillProb float64
	// MaxKills caps kill-restart cycles per LP; 0 means 1 (when KillProb
	// is set).
	MaxKills int
}

// Stats counts injected faults across all LPs of a run.
type Stats struct {
	Held         atomic.Int64 // event messages held back
	Released     atomic.Int64 // held messages released again
	DupedNulls   atomic.Int64
	DroppedNulls atomic.Int64
	Kills        atomic.Int64
}

func (s *Stats) String() string {
	return fmt.Sprintf("held=%d released=%d duped-nulls=%d dropped-nulls=%d kills=%d",
		s.Held.Load(), s.Released.Load(), s.DupedNulls.Load(), s.DroppedNulls.Load(), s.Kills.Load())
}

// Metrics returns the fault counts as a flat metrics map under the
// "chaos." namespace. Safe to call concurrently with a run.
func (s *Stats) Metrics() obs.Metrics {
	return obs.Metrics{
		"chaos.held":          s.Held.Load(),
		"chaos.released":      s.Released.Load(),
		"chaos.duped_nulls":   s.DupedNulls.Load(),
		"chaos.dropped_nulls": s.DroppedNulls.Load(),
		"chaos.kills":         s.Kills.Load(),
	}
}

// Injector builds per-LP interceptors sharing one Config and Stats.
type Injector struct {
	cfg   Config
	Stats Stats
}

// New returns an injector for one run (or several: decisions depend only
// on seed and per-LP send sequences, so reuse is safe; Stats accumulate).
func New(cfg Config) *Injector {
	if cfg.MaxHeld <= 0 {
		cfg.MaxHeld = 16
	}
	if cfg.MaxKills <= 0 {
		cfg.MaxKills = 1
	}
	return &Injector{cfg: cfg}
}

// Factory is the lp.Config.NewInterceptor / core.NewLPIntercepted hook.
func (inj *Injector) Factory() func(lpID int) lp.Interceptor {
	return func(lpID int) lp.Interceptor {
		return &interceptor{
			inj: inj,
			rng: rand.New(rand.NewSource(inj.cfg.Seed ^ int64(uint64(lpID+1)*0x9e3779b97f4a7c15))),
		}
	}
}

// portKey identifies one destination (node, port) stream for the FIFO
// hold rule.
type portKey struct{ node, port int32 }

// interceptor is one LP's fault state; all fields are confined to that
// LP's goroutine.
type interceptor struct {
	inj       *Injector
	rng       *rand.Rand
	held      []lp.Delivery    // insertion order; per-port FIFO inside
	heldPorts map[portKey]bool // ports with a held event (FIFO: later events must queue behind)
	kills     int
}

// takeHeldFor removes and returns, in order, every held delivery bound
// for LP to.
func (ic *interceptor) takeHeldFor(to int32) []lp.Delivery {
	var out, rest []lp.Delivery
	for _, d := range ic.held {
		if d.To == to {
			out = append(out, d)
			delete(ic.heldPorts, portKey{d.M.Node, d.M.Port})
		} else {
			rest = append(rest, d)
		}
	}
	ic.held = rest
	ic.inj.Stats.Released.Add(int64(len(out)))
	return out
}

func (ic *interceptor) OnSend(src, to int32, m lp.Msg) []lp.Delivery {
	cfg := &ic.inj.cfg
	switch m.Kind {
	case lp.MsgEvent:
		key := portKey{m.Node, m.Port}
		// FIFO rule: once an event for this (node, port) is held, every
		// later event for it must queue behind, regardless of the dice.
		mustHold := ic.heldPorts[key]
		wantHold := cfg.DelayProb > 0 && len(ic.held) < cfg.MaxHeld && ic.rng.Float64() < cfg.DelayProb
		if mustHold || wantHold {
			if ic.heldPorts == nil {
				ic.heldPorts = map[portKey]bool{}
			}
			ic.heldPorts[key] = true
			ic.held = append(ic.held, lp.Delivery{To: to, M: m})
			ic.inj.Stats.Held.Add(1)
			return nil
		}
		return []lp.Delivery{{To: to, M: m}}

	default: // MsgNullEdge, MsgNullChan
		if cfg.DropNulls {
			ic.inj.Stats.DroppedNulls.Add(1)
			// Held events still flush eventually (OnBlock); only the
			// promises vanish.
			return nil
		}
		// A null is a promise about this destination's future: everything
		// held for it must be delivered first, or the promise is a lie.
		out := ic.takeHeldFor(to)
		out = append(out, lp.Delivery{To: to, M: m})
		if cfg.DupNullProb > 0 && ic.rng.Float64() < cfg.DupNullProb {
			// Nulls are idempotent (clocks only ratchet forward), so a
			// duplicate exercises receiver tolerance without corruption.
			out = append(out, lp.Delivery{To: to, M: m})
			ic.inj.Stats.DupedNulls.Add(1)
		}
		return out
	}
}

func (ic *interceptor) OnBlock(src int32) []lp.Delivery {
	if len(ic.held) == 0 {
		return nil
	}
	out := ic.held
	ic.held = nil
	for k := range ic.heldPorts {
		delete(ic.heldPorts, k)
	}
	ic.inj.Stats.Released.Add(int64(len(out)))
	return out
}

func (ic *interceptor) CrashPoint(src int32) bool {
	cfg := &ic.inj.cfg
	if cfg.KillProb <= 0 || ic.kills >= cfg.MaxKills {
		return false
	}
	if ic.rng.Float64() >= cfg.KillProb {
		return false
	}
	ic.kills++
	ic.inj.Stats.Kills.Add(1)
	return true
}

// ParseSpec parses a command-line fault spec of comma-separated
// key[=value] fields:
//
//	seed=N delay=P dup=P kill=P maxkills=N maxheld=N dropnulls
//
// e.g. "seed=7,delay=0.3,dup=0.2,kill=0.1". An empty spec returns the
// zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		var err error
		switch key {
		case "dropnulls":
			cfg.DropNulls = true
			if hasVal {
				cfg.DropNulls, err = strconv.ParseBool(val)
			}
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "delay":
			cfg.DelayProb, err = strconv.ParseFloat(val, 64)
		case "dup":
			cfg.DupNullProb, err = strconv.ParseFloat(val, 64)
		case "kill":
			cfg.KillProb, err = strconv.ParseFloat(val, 64)
		case "maxkills":
			cfg.MaxKills, err = strconv.Atoi(val)
		case "maxheld":
			cfg.MaxHeld, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("chaos: unknown spec field %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad spec field %q: %v", field, err)
		}
	}
	return cfg, nil
}
