package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hjdes/internal/core"
	"hjdes/internal/obs"
)

// SchedConfig tunes the scheduler-level injector: faults inside the
// parallel runtimes themselves (hj workers, galois activities, timewarp
// rounds, actor loops, even the sequential workset loop), complementing
// the lp inbox injector above. The zero value injects nothing.
type SchedConfig struct {
	// Seed drives every fault decision; same seed, same faults.
	Seed int64
	// PanicProb is the per-task probability of panicking before the task
	// body runs. The panic is contained by the engine's normal panic path
	// and surfaces as a retryable FailPanic *core.EngineError.
	PanicProb float64
	// MaxPanics caps injected panics across the injector's lifetime —
	// i.e. across every attempt of a resilient run, so a retried run can
	// eventually get through. 0 means 1 (when PanicProb is set).
	MaxPanics int
	// WakeDropProb is the probability of swallowing an hj wakeOne token
	// (a lost wakeup). Mostly recoverable in place (parking workers
	// re-scan for visible work); the residual stall window is what the
	// supervisor watchdog exists for.
	WakeDropProb float64
	// MaxWakeDrops caps dropped wake tokens; 0 means 2.
	MaxWakeDrops int
	// WakeDelayProb is the probability of delaying a wakeup by WakeDelay
	// before it proceeds.
	WakeDelayProb float64
	// WakeDelay is the injected wakeup latency; 0 means 50µs.
	WakeDelay time.Duration
	// RollbackProb is the per-(node, round) probability of forcing a Time
	// Warp node to roll back half its processed history (a rollback
	// storm). Semantics-preserving.
	RollbackProb float64
	// MaxRollbacks caps forced rollbacks; 0 means 8.
	MaxRollbacks int
}

// SchedStats counts injected scheduler faults.
type SchedStats struct {
	TaskPanics atomic.Int64
	WakeDrops  atomic.Int64
	WakeDelays atomic.Int64
	Rollbacks  atomic.Int64
}

func (s *SchedStats) String() string {
	return fmt.Sprintf("task-panics=%d wake-drops=%d wake-delays=%d rollback-storms=%d",
		s.TaskPanics.Load(), s.WakeDrops.Load(), s.WakeDelays.Load(), s.Rollbacks.Load())
}

// Metrics returns the fault counts as a flat metrics map under the
// "chaos." namespace. Safe to call concurrently with a run.
func (s *SchedStats) Metrics() obs.Metrics {
	return obs.Metrics{
		"chaos.task_panics":     s.TaskPanics.Load(),
		"chaos.wake_drops":      s.WakeDrops.Load(),
		"chaos.wake_delays":     s.WakeDelays.Load(),
		"chaos.rollback_storms": s.Rollbacks.Load(),
	}
}

// InjectedPanic is the value thrown by an injected task panic, so tests
// (and humans reading EngineError dumps) can tell chaos faults from real
// bugs.
type InjectedPanic struct {
	Seq int64 // the task sequence number that drew the fault
}

func (p InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected task panic (task #%d)", p.Seq)
}

// SchedInjector injects scheduler-level faults through core.ChaosHooks.
// Unlike the lp interceptor — whose decisions can key off one goroutine's
// private send sequence — scheduler hooks fire from many workers at once,
// so decisions must not depend on shared RNG *state* (the interleaving
// would change the fault pattern and break run-to-run determinism of the
// caps). Every decision is therefore a pure splitmix64 hash of
// (seed, hook stream, per-hook call counter), and the caps are enforced
// with CAS so exactly MaxPanics/MaxWakeDrops/... faults fire no matter
// how calls interleave.
type SchedInjector struct {
	cfg     SchedConfig
	Stats   SchedStats
	taskSeq atomic.Int64
	wakeSeq atomic.Int64
}

// NewSched returns a scheduler-fault injector. One injector spans every
// attempt of a resilient run: the caps are lifetime caps, which is what
// lets a retried run complete once the fault budget is spent.
func NewSched(cfg SchedConfig) *SchedInjector {
	if cfg.MaxPanics <= 0 {
		cfg.MaxPanics = 1
	}
	if cfg.MaxWakeDrops <= 0 {
		cfg.MaxWakeDrops = 2
	}
	if cfg.WakeDelay <= 0 {
		cfg.WakeDelay = 50 * time.Microsecond
	}
	if cfg.MaxRollbacks <= 0 {
		cfg.MaxRollbacks = 8
	}
	return &SchedInjector{cfg: cfg}
}

// Hook stream identifiers: decisions on different hooks must be
// independent even at equal call counters.
const (
	streamPanic = 1 + iota
	streamWakeDelay
	streamWakeDrop
	streamRollback
)

// Hooks returns the core.ChaosHooks wired to this injector, for
// core.Options.Chaos. Returns hooks with nil members for fault kinds
// whose probability is zero, so unconfigured paths cost nothing.
func (inj *SchedInjector) Hooks() *core.ChaosHooks {
	h := &core.ChaosHooks{}
	if inj.cfg.PanicProb > 0 {
		h.Task = func(unit int) {
			n := inj.taskSeq.Add(1)
			if hash01(inj.cfg.Seed, streamPanic, n) < inj.cfg.PanicProb &&
				bumpCapped(&inj.Stats.TaskPanics, inj.cfg.MaxPanics) {
				panic(InjectedPanic{Seq: n})
			}
		}
	}
	if inj.cfg.WakeDropProb > 0 || inj.cfg.WakeDelayProb > 0 {
		h.Wake = func() bool {
			n := inj.wakeSeq.Add(1)
			if inj.cfg.WakeDelayProb > 0 && hash01(inj.cfg.Seed, streamWakeDelay, n) < inj.cfg.WakeDelayProb {
				inj.Stats.WakeDelays.Add(1)
				time.Sleep(inj.cfg.WakeDelay)
			}
			if inj.cfg.WakeDropProb > 0 && hash01(inj.cfg.Seed, streamWakeDrop, n) < inj.cfg.WakeDropProb &&
				bumpCapped(&inj.Stats.WakeDrops, inj.cfg.MaxWakeDrops) {
				return false
			}
			return true
		}
	}
	if inj.cfg.RollbackProb > 0 {
		h.Rollback = func(node int32, round int) bool {
			// Keyed by (node, round) rather than a counter: the decision is
			// identical for every worker count, keeping chaotic timewarp
			// runs deterministic.
			key := int64(node)<<20 ^ int64(round)
			return hash01(inj.cfg.Seed, streamRollback, key) < inj.cfg.RollbackProb &&
				bumpCapped(&inj.Stats.Rollbacks, inj.cfg.MaxRollbacks)
		}
	}
	return h
}

// hash01 maps (seed, stream, n) to [0, 1) via the splitmix64 finalizer.
func hash01(seed int64, stream, n int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(stream)<<32 + uint64(n)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// bumpCapped increments c unless it has reached cap, reporting whether
// this call won an increment. The CAS loop makes the cap exact under
// concurrent callers.
func bumpCapped(c *atomic.Int64, cap int) bool {
	for {
		cur := c.Load()
		if cur >= int64(cap) {
			return false
		}
		if c.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ParseSchedSpec parses a command-line scheduler-fault spec of
// comma-separated key=value fields:
//
//	seed=N panic=P maxpanics=N wakedrop=P maxwakedrops=N
//	wakedelay=P rollback=P maxrollbacks=N
//
// e.g. "seed=7,panic=0.001,maxpanics=2". An empty spec returns the zero
// SchedConfig.
func ParseSchedSpec(spec string) (SchedConfig, error) {
	var cfg SchedConfig
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, _ := strings.Cut(field, "=")
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "panic":
			cfg.PanicProb, err = strconv.ParseFloat(val, 64)
		case "maxpanics":
			cfg.MaxPanics, err = strconv.Atoi(val)
		case "wakedrop":
			cfg.WakeDropProb, err = strconv.ParseFloat(val, 64)
		case "maxwakedrops":
			cfg.MaxWakeDrops, err = strconv.Atoi(val)
		case "wakedelay":
			cfg.WakeDelayProb, err = strconv.ParseFloat(val, 64)
		case "rollback":
			cfg.RollbackProb, err = strconv.ParseFloat(val, 64)
		case "maxrollbacks":
			cfg.MaxRollbacks, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("chaos: unknown sched spec field %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad sched spec field %q: %v", field, err)
		}
	}
	return cfg, nil
}
