package trace

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

func TestIDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 94*94+5; i++ {
		id := idCode(i)
		if id == "" || seen[id] {
			t.Fatalf("idCode(%d) = %q (dup or empty)", i, id)
		}
		for _, r := range id {
			if r < '!' || r > '~' {
				t.Fatalf("idCode(%d) = %q contains non-printable", i, id)
			}
		}
		seen[id] = true
	}
	if idCode(0) != "!" || idCode(1) != "\"" {
		t.Fatalf("first codes: %q %q", idCode(0), idCode(1))
	}
	if idCode(94) != "!!" {
		t.Fatalf("idCode(94) = %q, want !!", idCode(94))
	}
}

func TestWriteVCDStructure(t *testing.T) {
	outputs := map[string][]core.TimedValue{
		"sum":  {{Time: 3, Value: 1}, {Time: 3, Value: 0}, {Time: 7, Value: 1}},
		"cout": {{Time: 5, Value: 1}},
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "adder", outputs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module adder $end",
		"$var wire 1 ! cout $end", // sorted: cout gets the first id
		"$var wire 1 \" sum $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#3",
		"#5",
		"#7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Settled value at t=3 is 0 (the later same-timestamp event wins).
	if !strings.Contains(out, "#3\n0\"") {
		t.Errorf("VCD should record sum=0 at t=3:\n%s", out)
	}
}

func TestWriteVCDTimesMonotone(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 5, c.SettleTime()+10, 1)
	res, err := core.NewSequential(core.Options{}).Run(c, stim)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultVCD(&buf, res); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		tick, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			t.Fatalf("bad timestamp line %q", line)
		}
		if tick <= last {
			t.Fatalf("timestamps not strictly increasing: %d after %d", tick, last)
		}
		last = tick
	}
	if last < 0 {
		t.Fatal("no timestamps emitted")
	}
}

func TestWriteVCDSuppressesNonChanges(t *testing.T) {
	outputs := map[string][]core.TimedValue{
		"y": {
			{Time: 1, Value: 1}, {Time: 2, Value: 1},
			{Time: 3, Value: 1}, {Time: 4, Value: 0},
		},
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "m", outputs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Only the initial 1 (t=1) and the drop to 0 (t=4) are changes.
	if strings.Contains(out, "#2") || strings.Contains(out, "#3") {
		t.Fatalf("non-changes not suppressed:\n%s", out)
	}
	if !strings.Contains(out, "#1") || !strings.Contains(out, "#4") {
		t.Fatalf("changes missing:\n%s", out)
	}
}

func TestWriteVCDEmptyAndDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "", map[string][]core.TimedValue{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$scope module sim $end") {
		t.Fatalf("default module name missing:\n%s", buf.String())
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("a b\tc"); got != "a_b_c" {
		t.Fatalf("sanitizeName = %q", got)
	}
}
