// Package trace exports simulation results as industry-standard Value
// Change Dump (VCD, IEEE 1364) waveform files, viewable in GTKWave and
// similar tools. The paper's simulator is a logic-circuit DES; waveform
// export is the natural inspection format for its outputs.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hjdes/internal/core"
)

// idCode returns the VCD identifier code for signal index i: base-94
// strings over the printable ASCII range '!'..'~'.
func idCode(i int) string {
	const base = 94
	var b []byte
	for {
		b = append(b, byte('!'+i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	// Digits were produced little-endian; reverse.
	for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
		b[l], b[r] = b[r], b[l]
	}
	return string(b)
}

// sanitizeName makes a signal name VCD-safe (no whitespace).
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// WriteVCD writes the output histories of a simulation result as a VCD
// file: one 1-bit wire per output terminal under a module scope named
// after the circuit. Signals start as 'x' (unknown) in $dumpvars and
// change at the settled value of each timestamp. The time unit is the
// simulation's abstract tick, declared as 1ns.
func WriteVCD(w io.Writer, module string, outputs map[string][]core.TimedValue) error {
	if module == "" {
		module = "sim"
	}
	names := make([]string, 0, len(outputs))
	for name := range outputs {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("$version hjdes discrete event simulator $end\n")
	b.WriteString("$timescale 1ns $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", sanitizeName(module))
	ids := make(map[string]string, len(names))
	for i, name := range names {
		id := idCode(i)
		ids[name] = id
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", id, sanitizeName(name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Initial values: unknown until the first event arrives.
	b.WriteString("$dumpvars\n")
	for _, name := range names {
		fmt.Fprintf(&b, "x%s\n", ids[name])
	}
	b.WriteString("$end\n")

	// Merge all settled changes into one time-ordered stream.
	type change struct {
		t    int64
		id   string
		v    core.TimedValue
		name string
	}
	var changes []change
	for _, name := range names {
		prevKnown := false
		var prev core.TimedValue
		for _, tv := range core.SettledValues(outputs[name]) {
			if prevKnown && tv.Value == prev.Value {
				prev = tv
				continue
			}
			changes = append(changes, change{t: tv.Time, id: ids[name], v: tv, name: name})
			prev, prevKnown = tv, true
		}
	}
	sort.SliceStable(changes, func(i, j int) bool {
		if changes[i].t != changes[j].t {
			return changes[i].t < changes[j].t
		}
		return changes[i].name < changes[j].name
	})

	last := int64(-1)
	for _, ch := range changes {
		if ch.t != last {
			fmt.Fprintf(&b, "#%d\n", ch.t)
			last = ch.t
		}
		fmt.Fprintf(&b, "%d%s\n", ch.v.Value, ch.id)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteResultVCD is a convenience wrapper: dump a Result's outputs under
// the engine's name.
func WriteResultVCD(w io.Writer, res *core.Result) error {
	return WriteVCD(w, res.Engine, res.Outputs)
}
