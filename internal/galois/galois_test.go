package galois

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		rt := New(workers)
		var count atomic.Int64
		items := make([]int, 1000)
		for i := range items {
			items[i] = i
		}
		ForEach(rt, items, func(it *Iteration[int], item int) {
			count.Add(1)
		})
		if count.Load() != 1000 {
			t.Fatalf("workers=%d: ran %d items, want 1000", workers, count.Load())
		}
	}
}

func TestForEachEmptyInitial(t *testing.T) {
	rt := New(4)
	ran := false
	ForEach(rt, nil, func(it *Iteration[int], item int) { ran = true })
	if ran {
		t.Fatal("body ran with empty workset")
	}
}

func TestForEachPushedItemsExecute(t *testing.T) {
	rt := New(4)
	var count atomic.Int64
	// Each item < 100 pushes two children; total items = full binary
	// expansion starting from 1 root.
	var expected atomic.Int64
	expected.Store(1)
	ForEach(rt, []int{1}, func(it *Iteration[int], item int) {
		count.Add(1)
		if item < 100 {
			it.Push(item * 2)
			it.Push(item*2 + 1)
			expected.Add(2)
		}
	})
	if count.Load() != expected.Load() {
		t.Fatalf("ran %d items, want %d", count.Load(), expected.Load())
	}
}

// TestConflictDetection verifies mutual exclusion: activities increment a
// plain int guarded by one shared Object; the total must be exact.
func TestConflictDetection(t *testing.T) {
	rt := New(8)
	var obj Object
	counter := 0 // not atomic; guarded by obj ownership
	items := make([]int, 20000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.Acquire(&obj)
		counter++
	})
	if counter != 20000 {
		t.Fatalf("counter = %d, want 20000 (conflict detection failed)", counter)
	}
	s := rt.Stats()
	if s.Committed != 20000 {
		t.Fatalf("Committed = %d, want 20000", s.Committed)
	}
}

func TestAcquireIdempotent(t *testing.T) {
	rt := New(2)
	var obj Object
	ForEach(rt, []int{1}, func(it *Iteration[int], item int) {
		it.Acquire(&obj)
		it.Acquire(&obj) // must not self-conflict
		it.Acquire(&obj)
	})
	if rt.Stats().Aborted != 0 {
		t.Fatalf("self-acquire caused %d aborts", rt.Stats().Aborted)
	}
	if obj.owner.Load() != nil {
		t.Fatal("ownership not released after commit")
	}
}

// TestUndoLogRollsBack mutates shared state before acquiring a contended
// object, registering inverses. After the run, the net effect must equal
// the committed effect only.
func TestUndoLogRollsBack(t *testing.T) {
	rt := New(8)
	var gate Object
	var mutations, committedDelta atomic.Int64
	items := make([]int, 5000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		// Side effect before the (potentially conflicting) acquire, with
		// a registered inverse.
		mutations.Add(1)
		it.Undo(func() { mutations.Add(-1) })
		it.Acquire(&gate)
		committedDelta.Add(1)
		it.Undo(func() { committedDelta.Add(-1) })
	})
	if mutations.Load() != 5000 {
		t.Fatalf("net mutations = %d, want 5000 (undo log broken)", mutations.Load())
	}
	if committedDelta.Load() != 5000 {
		t.Fatalf("committed delta = %d, want 5000", committedDelta.Load())
	}
}

// TestAbortedPushesDiscarded ensures an aborted activity's Push calls are
// not published: only committed activities enqueue children.
func TestAbortedPushesDiscarded(t *testing.T) {
	rt := New(8)
	var gate Object
	var childRuns atomic.Int64
	items := make([]int, 2000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		if item == -1 {
			childRuns.Add(1)
			return
		}
		it.Push(-1)
		it.Acquire(&gate) // may abort after the push
	})
	// Each of the 2000 parents commits exactly once, so exactly 2000
	// children run even though aborted attempts also called Push.
	if childRuns.Load() != 2000 {
		t.Fatalf("children ran %d times, want 2000", childRuns.Load())
	}
	if got := rt.Stats().Pushed; got != 2000 {
		t.Fatalf("Pushed = %d, want 2000", got)
	}
}

func TestAbortsAreCounted(t *testing.T) {
	rt := New(8)
	var hot Object
	items := make([]int, 30000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.Acquire(&hot)
		// Hold briefly to force overlap.
		for i := 0; i < 50; i++ {
			_ = i
		}
	})
	s := rt.Stats()
	if s.Committed != 30000 {
		t.Fatalf("Committed = %d", s.Committed)
	}
	// On a multicore box there will be aborts; on a single-CPU box there
	// may be none. Either way, AbortRate must be well-formed.
	if r := s.AbortRate(); r < 0 || r >= 1 {
		t.Fatalf("AbortRate = %v out of range", r)
	}
}

func TestDisjointObjectsDontConflict(t *testing.T) {
	rt := New(4)
	objs := make([]Object, 64)
	counters := make([]int, 64)
	items := make([]int, 6400)
	for i := range items {
		items[i] = i % 64
	}
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.Acquire(&objs[item])
		counters[item]++
	})
	for i, c := range counters {
		if c != 100 {
			t.Fatalf("counter[%d] = %d, want 100", i, c)
		}
	}
}

func TestTryAcquireAll(t *testing.T) {
	rt := New(4)
	objs := []*Object{{}, {}, {}}
	counter := 0
	items := make([]int, 3000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.TryAcquireAll(objs)
		counter++
	})
	if counter != 3000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	rt := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("body panic did not propagate")
		}
	}()
	ForEach(rt, []int{1}, func(it *Iteration[int], item int) {
		panic("boom")
	})
}

func TestNewDefaultWorkers(t *testing.T) {
	if New(0).NumWorkers() < 1 {
		t.Fatal("default workers < 1")
	}
	if New(-5).NumWorkers() < 1 {
		t.Fatal("negative workers not defaulted")
	}
}

func TestStatsSnapshotString(t *testing.T) {
	s := StatsSnapshot{Committed: 3, Aborted: 1}
	if s.AbortRate() != 0.25 {
		t.Fatalf("AbortRate = %v, want 0.25", s.AbortRate())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	var zero StatsSnapshot
	if zero.AbortRate() != 0 {
		t.Fatal("zero snapshot AbortRate should be 0")
	}
}

func BenchmarkForEachIndependent(b *testing.B) {
	rt := New(0)
	items := make([]int, b.N)
	var sink atomic.Int64
	b.ResetTimer()
	ForEach(rt, items, func(it *Iteration[int], item int) {
		sink.Add(1)
	})
}

func BenchmarkForEachContended(b *testing.B) {
	rt := New(0)
	var hot Object
	items := make([]int, b.N)
	counter := 0
	b.ResetTimer()
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.Acquire(&hot)
		counter++
	})
	if counter != b.N {
		b.Fatalf("counter = %d, want %d", counter, b.N)
	}
}
