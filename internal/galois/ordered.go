package galois

import (
	"fmt"
	"sync"

	"hjdes/internal/queue"
)

// OrderedIteration is the activity record handed to ForEachOrdered
// bodies. It offers the same conflict-detection interface as Iteration,
// but Push routes produced items into the ordered pending set (at commit
// time), where they wait for their own priority's turn.
type OrderedIteration[T any] struct {
	inner *Iteration[T]
	sink  func(T)
}

// Acquire takes ownership of obj, aborting (and retrying) the activity
// on conflict.
func (o *OrderedIteration[T]) Acquire(obj *Object) { o.inner.Acquire(obj) }

// TryAcquireAll acquires every object or aborts.
func (o *OrderedIteration[T]) TryAcquireAll(objs []*Object) { o.inner.TryAcquireAll(objs) }

// Undo registers an inverse to run on abort.
func (o *OrderedIteration[T]) Undo(fn func()) { o.inner.Undo(fn) }

// OnCommit registers an action to run if the activity commits.
func (o *OrderedIteration[T]) OnCommit(fn func()) { o.inner.OnCommit(fn) }

// Push schedules a new item. It takes effect only if the activity
// commits, and the item must not be ordered before the batch currently
// executing (priorities may only move forward).
func (o *OrderedIteration[T]) Push(item T) {
	o.inner.OnCommit(func() { o.sink(item) })
}

// orderedEntry keeps insertion order stable within a priority level.
type orderedEntry[T any] struct {
	prio int64
	seq  int64
	item T
}

// ForEachOrdered is the Galois ordered-set optimistic iterator (Section
// 2.2 of the paper describes both iterator forms): items execute in
// nondecreasing priority order, with all items of one priority level
// running as one speculative parallel batch (conflicts within the batch
// abort and retry, exactly as in ForEach). Items pushed during execution
// join the pending set at their own priority, which must be at least the
// priority of the batch that produced them; pushing an earlier-ordered
// item panics, as it would violate the iterator's ordering contract.
func ForEachOrdered[T any](rt *Runtime, initial []T, prio func(T) int64, body func(it *OrderedIteration[T], item T)) {
	var mu sync.Mutex
	var seq int64
	pending := queue.NewHeap(func(a, b orderedEntry[T]) bool {
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		return a.seq < b.seq
	})
	push := func(item T, floor int64, haveFloor bool) {
		p := prio(item)
		if haveFloor && p < floor {
			panic(fmt.Sprintf("galois: ForEachOrdered: pushed item with priority %d below current batch priority %d", p, floor))
		}
		mu.Lock()
		seq++
		pending.Push(orderedEntry[T]{prio: p, seq: seq, item: item})
		mu.Unlock()
	}
	for _, item := range initial {
		push(item, 0, false)
	}
	for {
		mu.Lock()
		head, ok := pending.Peek()
		if !ok {
			mu.Unlock()
			return
		}
		level := head.prio
		var batch []T
		for {
			h, ok := pending.Peek()
			if !ok || h.prio != level {
				break
			}
			e, _ := pending.Pop()
			batch = append(batch, e.item)
		}
		mu.Unlock()

		ForEach(rt, batch, func(it *Iteration[T], item T) {
			o := &OrderedIteration[T]{
				inner: it,
				sink:  func(x T) { push(x, level, true) },
			}
			body(o, item)
			if len(it.produced) > 0 {
				panic("galois: ForEachOrdered bodies must not reach the unordered Push")
			}
		})
	}
}
