package galois

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestOrderedRunsInPriorityOrder(t *testing.T) {
	rt := New(4)
	var mu sync.Mutex
	var order []int
	items := []int{5, 1, 3, 1, 5, 2, 4, 2}
	ForEachOrdered(rt, items, func(x int) int64 { return int64(x) },
		func(it *OrderedIteration[int], item int) {
			it.OnCommit(func() {
				mu.Lock()
				order = append(order, item)
				mu.Unlock()
			})
		})
	if len(order) != len(items) {
		t.Fatalf("ran %d items, want %d", len(order), len(items))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("commit order not nondecreasing: %v", order)
		}
	}
}

func TestOrderedPushJoinsLaterBatch(t *testing.T) {
	rt := New(4)
	var mu sync.Mutex
	var order []int
	// Items at priority p < 3 push a child at p+1; the children must all
	// commit after every item of their parents' priority.
	ForEachOrdered(rt, []int{0, 0, 0}, func(x int) int64 { return int64(x) },
		func(it *OrderedIteration[int], item int) {
			if item < 3 {
				it.Push(item + 1)
			}
			it.OnCommit(func() {
				mu.Lock()
				order = append(order, item)
				mu.Unlock()
			})
		})
	// 3 roots at 0, each spawning a chain 1,2,3: 12 commits total.
	if len(order) != 12 {
		t.Fatalf("ran %d items: %v", len(order), order)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("order violated: %v", order)
		}
	}
}

func TestOrderedConflictsRetried(t *testing.T) {
	rt := New(8)
	var hot Object
	counter := 0
	items := make([]int, 5000)
	ForEachOrdered(rt, items, func(int) int64 { return 1 },
		func(it *OrderedIteration[int], item int) {
			it.Acquire(&hot)
			counter++
		})
	if counter != 5000 {
		t.Fatalf("counter = %d (conflict retry broken)", counter)
	}
}

func TestOrderedUndoOnAbort(t *testing.T) {
	rt := New(8)
	var gate Object
	var net atomic.Int64
	items := make([]int, 2000)
	ForEachOrdered(rt, items, func(int) int64 { return 0 },
		func(it *OrderedIteration[int], item int) {
			net.Add(1)
			it.Undo(func() { net.Add(-1) })
			it.Acquire(&gate)
		})
	if net.Load() != 2000 {
		t.Fatalf("net effect = %d, want 2000", net.Load())
	}
}

func TestOrderedPushBackwardPanics(t *testing.T) {
	rt := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("backward push did not panic")
		}
	}()
	ForEachOrdered(rt, []int{5}, func(x int) int64 { return int64(x) },
		func(it *OrderedIteration[int], item int) {
			it.Push(1) // priority 1 < current batch 5
		})
}

func TestOrderedEmpty(t *testing.T) {
	rt := New(2)
	ran := false
	ForEachOrdered(rt, nil, func(int) int64 { return 0 },
		func(it *OrderedIteration[int], item int) { ran = true })
	if ran {
		t.Fatal("body ran on empty input")
	}
}

func TestOrderedTryAcquireAllFacade(t *testing.T) {
	rt := New(4)
	objs := []*Object{{}, {}}
	counter := 0
	items := make([]int, 1000)
	ForEachOrdered(rt, items, func(int) int64 { return 0 },
		func(it *OrderedIteration[int], item int) {
			it.TryAcquireAll(objs)
			counter++
		})
	if counter != 1000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestOnCommitDiscardedOnAbort(t *testing.T) {
	rt := New(8)
	var gate Object
	var commits atomic.Int64
	items := make([]int, 3000)
	ForEach(rt, items, func(it *Iteration[int], item int) {
		it.OnCommit(func() { commits.Add(1) })
		it.Acquire(&gate) // may abort after registration
	})
	if commits.Load() != 3000 {
		t.Fatalf("commit actions ran %d times, want 3000", commits.Load())
	}
}
