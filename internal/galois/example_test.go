package galois_test

import (
	"fmt"
	"sort"
	"sync"

	"hjdes/internal/galois"
)

// The unordered-set optimistic iterator: activities execute
// speculatively in parallel, acquiring the shared objects they touch;
// conflicting activities abort and retry transparently.
func ExampleForEach() {
	rt := galois.New(4)

	// A shared counter guarded by one conflict object.
	var obj galois.Object
	counter := 0
	items := make([]int, 500)
	galois.ForEach(rt, items, func(it *galois.Iteration[int], item int) {
		it.Acquire(&obj)
		counter++
	})
	fmt.Println(counter)
	// Output: 500
}

// The ordered-set iterator commits strictly by priority: all priority-1
// work finishes before any priority-2 work runs.
func ExampleForEachOrdered() {
	rt := galois.New(4)
	var mu sync.Mutex
	var order []int
	galois.ForEachOrdered(rt, []int{3, 1, 2, 1, 3},
		func(x int) int64 { return int64(x) },
		func(it *galois.OrderedIteration[int], item int) {
			it.OnCommit(func() {
				mu.Lock()
				order = append(order, item)
				mu.Unlock()
			})
		})
	// Within a priority level order is free; sort each level for output.
	sort.Ints(order)
	fmt.Println(order)
	// Output: [1 1 2 3 3]
}
