// Package galois is a from-scratch Go implementation of the core of the
// Galois object-based optimistic parallelization system (Section 2.2 of
// the paper), which the paper uses as its performance baseline. It
// provides the three ingredients the paper lists:
//
//   - an unordered-set optimistic iterator (ForEach) whose elements
//     execute as speculative parallel activities;
//   - a runtime scheme that detects conflicting shared-object accesses
//     (per-object ownership acquired on first access) and recovers from
//     them (undo-log rollback, abort, and re-execution);
//   - library hooks for registering inverse methods (Iteration.Undo),
//     standing in for Galois's class-library assertions.
//
// As in Galois, conflict management is implicit: the activity body cannot
// observe ownership and decide to bail out early, which is exactly why the
// paper's "cautious" check-locks-first optimization (Algorithm 2, lines
// 9-15) cannot be expressed on top of this runtime without modifying it.
package galois

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hjdes/internal/obs"
	"hjdes/internal/queue"
)

// Object is the per-shared-datum ownership record used for conflict
// detection. Embed one (or hold one) in every shared structure touched by
// speculative activities. The zero value is ready to use.
type Object struct {
	owner atomic.Pointer[ownerTag]
}

// ownerTag identifies one running iteration; a fresh tag is used per
// executed activity so stale pointers can never alias a new iteration.
type ownerTag struct{ _ byte }

// conflict is the panic sentinel thrown by Iteration.Acquire on a
// detected conflict and caught by the executor's rollback handler.
type conflict struct{ obj *Object }

// Stats holds the executor's activity counters.
type Stats struct {
	Committed atomic.Int64 // activities that ran to completion
	Aborted   atomic.Int64 // activities rolled back and retried
	Pushed    atomic.Int64 // new items added during execution
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Committed, Aborted, Pushed int64
}

// AbortRate returns aborts / (commits+aborts), the speculation waste.
func (s StatsSnapshot) AbortRate() float64 {
	total := s.Committed + s.Aborted
	if total == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(total)
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("committed=%d aborted=%d pushed=%d abortRate=%.3f",
		s.Committed, s.Aborted, s.Pushed, s.AbortRate())
}

// MetricsInto folds the snapshot into a flat metrics map under the
// "galois." namespace.
func (s StatsSnapshot) MetricsInto(m obs.Metrics) {
	m.Add("galois.committed", s.Committed)
	m.Add("galois.aborted", s.Aborted)
	m.Add("galois.pushed", s.Pushed)
}

// Runtime configures Galois-style execution. It is stateless between
// ForEach calls apart from the accumulated Stats.
type Runtime struct {
	workers  int
	stats    Stats
	trace    *obs.Recorder    // nil when tracing is off
	taskHook func(worker int) // chaos: runs before each activity attempt
}

// New returns a runtime that executes activities on the given number of
// workers (GOMAXPROCS when workers <= 0).
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runtime{workers: workers}
}

// NumWorkers reports the configured worker count.
func (rt *Runtime) NumWorkers() int { return rt.workers }

// SetTrace attaches a flight recorder: each ForEach worker owns ring
// shard = its worker index and records activity commits and aborts. Only
// one ForEach may run at a time on a traced runtime (the rings are
// single-writer).
func (rt *Runtime) SetTrace(rec *obs.Recorder) { rt.trace = rec }

// SetTaskHook attaches a scheduler-level fault-injection hook that runs
// before every activity attempt with the executing worker's index. A
// panic inside the hook propagates like a panic in the activity body
// (first one wins, workers drain, ForEach re-panics on the caller). Nil
// disables it.
func (rt *Runtime) SetTaskHook(h func(worker int)) { rt.taskHook = h }

// Stats returns a snapshot of the accumulated activity counters.
func (rt *Runtime) Stats() StatsSnapshot {
	return StatsSnapshot{
		Committed: rt.stats.Committed.Load(),
		Aborted:   rt.stats.Aborted.Load(),
		Pushed:    rt.stats.Pushed.Load(),
	}
}

// Iteration is the per-activity record handed to the ForEach body: it
// tracks acquired objects for conflict detection, the undo log for
// rollback, and new work items produced by the activity.
type Iteration[T any] struct {
	tag      *ownerTag
	acquired []*Object
	undo     []func()
	produced []T
	onCommit []func()
	aborts   int       // consecutive aborts by this worker (for backoff)
	ring     *obs.Ring // flight-recorder shard; nil when tracing is off
}

// Acquire takes ownership of obj for this activity. If another running
// activity owns obj, the current activity aborts: its undo log is played
// backwards, its owned objects are released, and the item is re-queued
// for execution. Acquire is idempotent for objects already owned by this
// activity.
func (it *Iteration[T]) Acquire(obj *Object) {
	cur := obj.owner.Load()
	if cur == it.tag {
		return
	}
	if cur == nil && obj.owner.CompareAndSwap(nil, it.tag) {
		it.acquired = append(it.acquired, obj)
		return
	}
	panic(conflict{obj})
}

// TryAcquireAll is the runtime-internal arbitration hook used by library
// code that knows an activity's full object neighborhood up front; user
// operators should call Acquire as they touch objects. It acquires every
// object or aborts.
func (it *Iteration[T]) TryAcquireAll(objs []*Object) {
	for _, o := range objs {
		it.Acquire(o)
	}
}

// Undo registers fn to be executed (in reverse registration order) if the
// activity later aborts. Register an inverse before or immediately after
// each side effect on acquired shared state.
func (it *Iteration[T]) Undo(fn func()) {
	it.undo = append(it.undo, fn)
}

// Push adds a new work item produced by this activity. Items become
// visible to other workers only when the activity commits; an aborted
// activity's pushes are discarded (and re-produced by the retry), which
// keeps the workset consistent with transactional semantics.
func (it *Iteration[T]) Push(item T) {
	it.produced = append(it.produced, item)
}

// OnCommit registers fn to run if and when the activity commits (after
// its ownership is released); an aborted attempt discards registered
// actions. This is the analog of Galois's commit-pool actions, and it is
// how irreversible side effects (I/O, cross-workset publication) are
// made safe inside speculative activities.
func (it *Iteration[T]) OnCommit(fn func()) {
	it.onCommit = append(it.onCommit, fn)
}

// release drops ownership of every acquired object.
func (it *Iteration[T]) release() {
	for i := len(it.acquired) - 1; i >= 0; i-- {
		it.acquired[i].owner.Store(nil)
	}
	it.acquired = it.acquired[:0]
}

// rollback plays the undo log backwards and releases ownership.
func (it *Iteration[T]) rollback() {
	for i := len(it.undo) - 1; i >= 0; i-- {
		it.undo[i]()
	}
	it.reset()
}

func (it *Iteration[T]) reset() {
	it.release()
	it.undo = it.undo[:0]
	it.produced = it.produced[:0]
	it.onCommit = it.onCommit[:0]
}

// ForEach executes body once (to commit) for every element of initial and
// for every element pushed during execution, speculatively in parallel on
// rt's workers, with unordered-set iterator semantics. It returns when the
// workset is exhausted — i.e. every activity has committed.
//
// The body must route every access to shared mutable state through
// it.Acquire (and register inverses with it.Undo for mutations performed
// before all acquisitions are complete). A body that acquires everything
// it needs before mutating anything never needs the undo log.
func ForEach[T any](rt *Runtime, initial []T, body func(it *Iteration[T], item T)) {
	ws := queue.NewChunkStack[T]()
	var pending atomic.Int64
	pending.Store(int64(len(initial)))
	seedLocal := ws.NewLocal()
	for _, item := range initial {
		seedLocal.Push(item)
	}
	seedLocal.Flush()

	// A panic in the body surfaces on a worker goroutine; capture the
	// first one, drain the other workers, and re-panic on the caller.
	var failure atomic.Pointer[panicBox]
	var wg sync.WaitGroup
	for w := 0; w < rt.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					failure.CompareAndSwap(nil, &panicBox{val: r})
				}
			}()
			local := ws.NewLocal()
			it := &Iteration[T]{tag: new(ownerTag), ring: rt.trace.Ring(w)}
			idleSpins := 0
			for failure.Load() == nil {
				item, ok := local.Pop()
				if !ok {
					if pending.Load() == 0 {
						return
					}
					idleSpins++
					if idleSpins < 16 {
						runtime.Gosched()
					} else {
						time.Sleep(2 * time.Microsecond)
					}
					continue
				}
				idleSpins = 0
				if h := rt.taskHook; h != nil {
					h(w)
				}
				if runItem(rt, it, local, &pending, body, item) {
					// Committed: publish produced items eagerly so idle
					// workers can start on them.
					local.Flush()
				}
			}
		}()
	}
	wg.Wait()
	if f := failure.Load(); f != nil {
		panic(f.val)
	}
}

// panicBox carries a recovered panic value across goroutines.
type panicBox struct{ val any }

// runItem executes one activity attempt, committing or rolling back. It
// reports whether the activity committed.
func runItem[T any](rt *Runtime, it *Iteration[T], local *queue.Local[T], pending *atomic.Int64, body func(*Iteration[T], T), item T) (committed bool) {
	defer func() {
		r := recover()
		switch c := r.(type) {
		case nil:
			// Commit: publish produced items and run commit actions,
			// then release ownership.
			for _, p := range it.produced {
				pending.Add(1)
				rt.stats.Pushed.Add(1)
				local.Push(p)
			}
			for _, fn := range it.onCommit {
				fn()
			}
			it.ring.Record(obs.EvCommit, int64(len(it.acquired)), 0)
			it.reset()
			it.tag = new(ownerTag)
			it.aborts = 0
			rt.stats.Committed.Add(1)
			pending.Add(-1)
			committed = true
		case conflict:
			_ = c
			it.rollback()
			it.tag = new(ownerTag)
			it.aborts++
			it.ring.Record(obs.EvAbort, int64(it.aborts), 0)
			rt.stats.Aborted.Add(1)
			// Requeue for retry with escalating backoff so the winning
			// activity can finish (livelock avoidance by arbitration).
			local.Push(item)
			if it.aborts > 4 {
				local.Flush() // let another worker try it
				time.Sleep(time.Duration(it.aborts) * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		default:
			// A genuine panic from the body: release ownership so other
			// workers are not wedged, then propagate.
			it.rollback()
			panic(r)
		}
	}()
	body(it, item)
	return // value set in the deferred handler
}
