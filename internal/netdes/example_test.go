package netdes_test

import (
	"fmt"

	"hjdes/internal/netdes"
)

// Simulate one packet crossing a three-hop line: each hop costs the
// node's service time plus the link's propagation delay.
func ExampleSimulate() {
	nw := netdes.Line(4, 2, 1) // 4 nodes, link delay 2, service 1
	tr := netdes.Traffic{{Src: 0, Dst: 3, Start: 10, Interval: 1, Count: 1}}

	res, err := netdes.Simulate(nw, tr, netdes.Config{RecordPackets: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered=%d hops=%d latency=%d\n",
		res.Delivered, res.Packets[0].Hops, res.Packets[0].Time-10)
	// Output: delivered=1 hops=3 latency=9
}
