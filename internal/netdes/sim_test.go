package netdes

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoutesOnLine(t *testing.T) {
	nw := Line(4, 1, 1) // 0-1-2-3
	routes := nw.Routes()
	// From 0 to 3: first hop must be the 0->1 link.
	li := routes[0][3]
	if li < 0 {
		t.Fatal("0 cannot reach 3")
	}
	l := nw.Links[li]
	if l.From != 0 || l.To != 1 {
		t.Fatalf("first hop 0->3 is %d->%d, want 0->1", l.From, l.To)
	}
	// Self route is -1 by construction? routes[i][i] has next -1 is fine:
	// dist 0, no hop needed.
	if routes[2][2] >= 0 {
		t.Fatalf("routes[2][2] = %d, want -1 (already there)", routes[2][2])
	}
}

func TestRoutesUnreachable(t *testing.T) {
	nw := NewNetwork("disc", 3, 1)
	must(nw.AddLink(0, 1, 1)) // node 2 isolated; and 1 cannot reach 0
	routes := nw.Routes()
	if routes[0][2] != -1 || routes[1][0] != -1 {
		t.Fatal("unreachable pairs should be -1")
	}
	tr := Traffic{{Src: 0, Dst: 2, Start: 1, Interval: 1, Count: 1}}
	if err := tr.Validate(nw, routes); err == nil {
		t.Fatal("Validate accepted unreachable flow")
	}
}

func TestAddLinkValidation(t *testing.T) {
	nw := NewNetwork("v", 2, 1)
	if err := nw.AddLink(0, 5, 1); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := nw.AddLink(1, 1, 1); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := nw.AddLink(0, 1, -3); err != nil {
		t.Fatal("delay should be clamped, not rejected")
	}
	if nw.Links[0].Delay != 1 {
		t.Fatalf("delay clamped to %d, want 1", nw.Links[0].Delay)
	}
}

func TestTrafficValidate(t *testing.T) {
	nw := Line(3, 1, 1)
	routes := nw.Routes()
	bad := []Traffic{
		{{Src: 0, Dst: 9, Start: 1, Interval: 1, Count: 1}},
		{{Src: 1, Dst: 1, Start: 1, Interval: 1, Count: 1}},
		{{Src: 0, Dst: 2, Start: 1, Interval: 0, Count: 5}},
	}
	for i, tr := range bad {
		if err := tr.Validate(nw, routes); err == nil {
			t.Errorf("bad traffic %d accepted", i)
		}
	}
	good := Traffic{{Src: 0, Dst: 2, Start: 1, Interval: 5, Count: 3}}
	if err := good.Validate(nw, routes); err != nil {
		t.Errorf("good traffic rejected: %v", err)
	}
	if good.TotalPackets() != 3 {
		t.Errorf("TotalPackets = %d", good.TotalPackets())
	}
}

// TestSinglePacketLatencyExact: one packet across a line of h hops has
// latency exactly h*(service+linkDelay).
func TestSinglePacketLatencyExact(t *testing.T) {
	const service, delay = 2, 3
	for hops := 1; hops <= 5; hops++ {
		nw := Line(hops+1, delay, service)
		tr := Traffic{{Src: 0, Dst: NodeID(hops), Start: 10, Interval: 1, Count: 1}}
		res, err := Simulate(nw, tr, Config{RecordPackets: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != 1 {
			t.Fatalf("hops=%d: delivered %d", hops, res.Delivered)
		}
		want := int64(hops) * (service + delay)
		if res.MaxLatency != want {
			t.Fatalf("hops=%d: latency %d, want %d", hops, res.MaxLatency, want)
		}
		if res.Packets[0].Hops != int32(hops) {
			t.Fatalf("hops recorded %d, want %d", res.Packets[0].Hops, hops)
		}
		if res.LastDelivery != 10+want {
			t.Fatalf("delivery time %d, want %d", res.LastDelivery, 10+want)
		}
	}
}

// TestRingCyclicTopologyTerminates: conservative simulation over a cycle
// must make progress via the lookahead bounds.
func TestRingCyclicTopologyTerminates(t *testing.T) {
	nw := Ring(8, 1, 1)
	tr := Traffic{
		{Src: 0, Dst: 4, Start: 1, Interval: 3, Count: 50},
		{Src: 4, Dst: 0, Start: 2, Interval: 3, Count: 50},
		{Src: 2, Dst: 7, Start: 1, Interval: 5, Count: 20},
	}
	res, err := Simulate(nw, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != int64(tr.TotalPackets()) {
		t.Fatalf("delivered %d/%d", res.Delivered, tr.TotalPackets())
	}
	// Minimum-hop routing on a ring of 8: 0->4 is 4 hops either way.
	if res.TotalHops < int64(tr.TotalPackets()) {
		t.Fatalf("TotalHops = %d implausible", res.TotalHops)
	}
}

// TestConservation: every injected packet is delivered exactly once, on
// every topology and worker count.
func TestConservation(t *testing.T) {
	topologies := []*Network{
		Line(6, 2, 1),
		Ring(9, 1, 2),
		Grid(4, 4, 1, 1),
		Star(7, 3, 1),
	}
	tr := Traffic{
		{Src: 0, Dst: 5, Start: 1, Interval: 2, Count: 40},
		{Src: 5, Dst: 1, Start: 3, Interval: 3, Count: 30},
		{Src: 2, Dst: 4, Start: 1, Interval: 1, Count: 60},
	}
	for _, nw := range topologies {
		for _, workers := range []int{1, 4} {
			res, err := Simulate(nw, tr, Config{Workers: workers, RecordPackets: true})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", nw.Name, workers, err)
			}
			if res.Delivered != int64(tr.TotalPackets()) {
				t.Fatalf("%s workers=%d: delivered %d/%d", nw.Name, workers, res.Delivered, tr.TotalPackets())
			}
			for id, rec := range res.Packets {
				if !rec.Delivered {
					t.Fatalf("%s: packet %d lost", nw.Name, id)
				}
			}
		}
	}
}

// TestSequentialAndParallelIdentical: per-packet delivery records must
// be bit-identical across worker counts.
func TestSequentialAndParallelIdentical(t *testing.T) {
	nw := Grid(5, 5, 2, 1)
	tr := Traffic{
		{Src: 0, Dst: 24, Start: 1, Interval: 1, Count: 100},
		{Src: 24, Dst: 0, Start: 1, Interval: 1, Count: 100},
		{Src: 4, Dst: 20, Start: 5, Interval: 2, Count: 50},
		{Src: 12, Dst: 3, Start: 2, Interval: 7, Count: 25},
	}
	ref, err := Simulate(nw, tr, Config{Workers: 1, RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Simulate(nw, tr, Config{Workers: workers, RecordPackets: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref.Packets, res.Packets) {
			t.Fatalf("workers=%d: per-packet records differ", workers)
		}
		if ref.Events != res.Events || ref.LatencySum != res.LatencySum ||
			ref.TotalHops != res.TotalHops || ref.LastDelivery != res.LastDelivery {
			t.Fatalf("workers=%d: aggregates differ: %+v vs %+v", workers, ref, res)
		}
	}
}

// TestPropertyLatencyLowerBound: latency of every delivered packet is at
// least hops * (service + min link delay).
func TestPropertyLatencyLowerBound(t *testing.T) {
	f := func(seed uint8, count uint8) bool {
		nw := Grid(3, 3, 1+int64(seed%3), 1+int64(seed%2))
		src := NodeID(seed % 9)
		dst := NodeID((seed + 4) % 9)
		if src == dst {
			return true
		}
		tr := Traffic{{Src: src, Dst: dst, Start: 1, Interval: 2, Count: int(count%20) + 1}}
		res, err := Simulate(nw, tr, Config{RecordPackets: true})
		if err != nil {
			t.Log(err)
			return false
		}
		minHop := int64(1 + nw.Links[0].Delay) // service + delay (uniform here)
		_ = minHop
		for _, rec := range res.Packets {
			if !rec.Delivered {
				return false
			}
			if int64(rec.Hops)*(nw.Service+nw.Links[0].Delay) > res.MaxLatency && res.Delivered == 1 {
				return false
			}
		}
		return res.Delivered == int64(tr.TotalPackets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomNetworkDeterministicAndConnected(t *testing.T) {
	a := RandomNetwork(20, 3, 4, 1, 9)
	b := RandomNetwork(20, 3, 4, 1, 9)
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different networks")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("same seed produced different links")
		}
	}
	// The ring backbone guarantees full reachability.
	routes := a.Routes()
	for s := 0; s < a.N; s++ {
		for d := 0; d < a.N; d++ {
			if s != d && routes[s][d] < 0 {
				t.Fatalf("node %d cannot reach %d", s, d)
			}
		}
	}
}

func TestRandomTrafficRunsOnRandomNetwork(t *testing.T) {
	nw := RandomNetwork(16, 3, 3, 1, 5)
	tr := RandomTraffic(nw, 10, 20, 6)
	if tr.TotalPackets() != 200 {
		t.Fatalf("TotalPackets = %d", tr.TotalPackets())
	}
	ref, err := Simulate(nw, tr, Config{Workers: 1, RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Simulate(nw, tr, Config{Workers: 4, RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Delivered != 200 || par.Delivered != 200 {
		t.Fatalf("delivered %d / %d", ref.Delivered, par.Delivered)
	}
	if !reflect.DeepEqual(ref.Packets, par.Packets) {
		t.Fatal("records differ across worker counts on random network")
	}
}

// TestLinkBandwidthQueueing: a burst through one finite-bandwidth link
// serializes — the k-th packet's latency grows by k*TxTime.
func TestLinkBandwidthQueueing(t *testing.T) {
	const txTime, delay, service = 7, 2, 1
	nw := NewNetwork("pipe", 2, service)
	must(nw.AddLinkTx(0, 1, delay, txTime))
	const burst = 10
	// All packets injected at the same instant.
	tr := Traffic{}
	for i := 0; i < burst; i++ {
		tr = append(tr, Flow{Src: 0, Dst: 1, Start: 5, Interval: 1, Count: 1})
	}
	res, err := Simulate(nw, tr, Config{RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != burst {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// Packet k departs at 5+service+k*txTime, arrives +delay.
	for k := 0; k < burst; k++ {
		want := int64(5 + service + k*txTime + delay)
		if res.Packets[k].Time != want {
			t.Fatalf("packet %d delivered at %d, want %d", k, res.Packets[k].Time, want)
		}
	}
	// Infinite bandwidth: all arrive together.
	nw2 := NewNetwork("pipe2", 2, service)
	must(nw2.AddLink(0, 1, delay))
	res2, err := Simulate(nw2, tr, Config{RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < burst; k++ {
		if res2.Packets[k].Time != int64(5+service+delay) {
			t.Fatalf("uncapped packet %d at %d", k, res2.Packets[k].Time)
		}
	}
}

// TestBandwidthDeterministicParallel: queueing state must not break the
// parallel engine's determinism.
func TestBandwidthDeterministicParallel(t *testing.T) {
	nw := NewNetwork("bw", 4, 1)
	must(nw.AddLinkTx(0, 1, 2, 3))
	must(nw.AddLinkTx(1, 2, 2, 3))
	must(nw.AddLinkTx(2, 3, 2, 3))
	must(nw.AddLinkTx(3, 0, 2, 3)) // cycle with bandwidth
	must(nw.AddLinkTx(1, 0, 2, 3))
	must(nw.AddLinkTx(2, 1, 2, 3))
	must(nw.AddLinkTx(3, 2, 2, 3))
	must(nw.AddLinkTx(0, 3, 2, 3))
	tr := Traffic{
		{Src: 0, Dst: 2, Start: 1, Interval: 1, Count: 50},
		{Src: 2, Dst: 0, Start: 1, Interval: 1, Count: 50},
	}
	ref, err := Simulate(nw, tr, Config{Workers: 1, RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Simulate(nw, tr, Config{Workers: 4, RecordPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Packets, par.Packets) {
		t.Fatal("bandwidth queueing broke worker determinism")
	}
	if ref.MaxLatency <= 2*(1+2) {
		t.Fatalf("no queueing observed: max latency %d", ref.MaxLatency)
	}
}

func TestEmptyTraffic(t *testing.T) {
	res, err := Simulate(Ring(4, 1, 1), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Supersteps != 0 {
		t.Fatalf("empty traffic: %+v", res)
	}
	if res.AvgLatency() != 0 {
		t.Fatal("AvgLatency on empty result")
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	nw := Line(40, 5, 5)
	tr := Traffic{{Src: 0, Dst: 39, Start: 1, Interval: 1, Count: 1}}
	// Absurdly low cap must trip the guard, not hang.
	if _, err := Simulate(nw, tr, Config{MaxSupersteps: 1}); err == nil {
		t.Fatal("superstep guard did not trip")
	}
}

func TestBusiestNodes(t *testing.T) {
	// Star topology: every packet transits the hub, which must dominate.
	nw := Star(6, 1, 1)
	tr := Traffic{
		{Src: 1, Dst: 4, Start: 1, Interval: 1, Count: 30},
		{Src: 2, Dst: 5, Start: 1, Interval: 1, Count: 30},
		{Src: 3, Dst: 6, Start: 1, Interval: 1, Count: 30},
	}
	res, err := Simulate(nw, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	busiest := res.BusiestNodes(3)
	if len(busiest) != 3 || busiest[0] != 0 {
		t.Fatalf("busiest = %v, want hub (node 0) first", busiest)
	}
	var sum int64
	for _, n := range res.NodeEvents {
		sum += n
	}
	if sum != res.Events {
		t.Fatalf("NodeEvents sum %d != Events %d", sum, res.Events)
	}
	if got := res.BusiestNodes(100); len(got) > nw.N {
		t.Fatalf("BusiestNodes returned %d ids", len(got))
	}
}

func TestResultString(t *testing.T) {
	res, err := Simulate(Line(3, 1, 1), Traffic{{Src: 0, Dst: 2, Start: 1, Interval: 1, Count: 2}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkGridTraffic(b *testing.B) {
	nw := Grid(8, 8, 1, 1)
	tr := Traffic{
		{Src: 0, Dst: 63, Start: 1, Interval: 1, Count: 500},
		{Src: 63, Dst: 0, Start: 1, Interval: 1, Count: 500},
		{Src: 7, Dst: 56, Start: 1, Interval: 1, Count: 500},
		{Src: 56, Dst: 7, Start: 1, Interval: 1, Count: 500},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(nw, tr, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != 2000 {
			b.Fatalf("delivered %d", res.Delivered)
		}
	}
}
