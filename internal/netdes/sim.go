package netdes

import (
	"fmt"
	"sort"
	"time"

	"hjdes/internal/hj"
	"hjdes/internal/queue"
)

// Packet is one unit of traffic.
type Packet struct {
	ID      int64
	Src     NodeID
	Dst     NodeID
	Created int64
	Hops    int32
}

// pktEvent is a packet arriving somewhere at a time.
type pktEvent struct {
	Time int64
	P    Packet
}

// PacketRecord is the delivery record of one packet (indexed by packet
// ID in Result.Packets when Config.RecordPackets is set).
type PacketRecord struct {
	Delivered bool
	Time      int64
	Hops      int32
}

// Config parameterizes a simulation run.
type Config struct {
	// Workers > 1 runs the supersteps on an hj work-stealing runtime;
	// 0 or 1 runs sequentially. Results are identical either way.
	Workers int
	// Grain is the ForAsync chunk size for parallel phases (default 8).
	Grain int
	// RecordPackets fills Result.Packets with per-packet records.
	RecordPackets bool
	// MaxSupersteps aborts runaway simulations (default 1e6).
	MaxSupersteps int
}

// Result summarizes a simulation.
type Result struct {
	Engine       string
	Injected     int64
	Delivered    int64
	TotalHops    int64
	LatencySum   int64
	MaxLatency   int64
	LastDelivery int64
	Supersteps   int
	Events       int64   // node event-processing count (arrivals + injections)
	NodeEvents   []int64 // per-node processing counts (router utilization)
	Elapsed      time.Duration
	Packets      []PacketRecord
}

// BusiestNodes returns the k nodes that processed the most events, most
// loaded first — the routers a capacity planner would upgrade first.
func (r *Result) BusiestNodes(k int) []NodeID {
	type load struct {
		id NodeID
		n  int64
	}
	loads := make([]load, 0, len(r.NodeEvents))
	for i, n := range r.NodeEvents {
		if n > 0 {
			loads = append(loads, load{NodeID(i), n})
		}
	}
	sort.Slice(loads, func(a, b int) bool {
		if loads[a].n != loads[b].n {
			return loads[a].n > loads[b].n
		}
		return loads[a].id < loads[b].id
	})
	if len(loads) > k {
		loads = loads[:k]
	}
	out := make([]NodeID, len(loads))
	for i, l := range loads {
		out[i] = l.id
	}
	return out
}

// AvgLatency reports mean end-to-end latency.
func (r *Result) AvgLatency() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.LatencySum) / float64(r.Delivered)
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: delivered %d/%d packets, avg latency %.1f, max %d, %d supersteps, %v",
		r.Engine, r.Delivered, r.Injected, r.AvgLatency(), r.MaxLatency, r.Supersteps, r.Elapsed)
}

// injection is one scheduled packet creation at a source node.
type injection struct {
	time int64
	pkt  Packet
}

// netNode is the runtime state of one router.
type netNode struct {
	id      NodeID
	inQ     []queue.Deque[pktEvent] // one per incoming link
	clock   []int64                 // per incoming link
	sched   []injection             // local injections, time-ordered
	schedAt int

	// outputs of the current superstep, one buffer per outgoing link
	// (written only by this node).
	outBuf [][]pktEvent

	// per-node tallies, merged by the driver after the run.
	delivered  int64
	hops       int64
	latencySum int64
	maxLatency int64
	lastTime   int64
	events     int64
	processed  bool // did this node process anything this superstep

	horizon int64 // local clock after the current processing phase
}

// sim is one run's state.
type sim struct {
	nw     *Network
	routes [][]int32
	nodes  []netNode
	cfg    Config
	recs   []PacketRecord
	// busyUntil[li] is link li's earliest next departure (finite
	// bandwidth); written only by the link's source node.
	busyUntil []int64
}

func newSim(nw *Network, tr Traffic, cfg Config) (*sim, error) {
	nw.finalize()
	routes := nw.Routes()
	if err := tr.Validate(nw, routes); err != nil {
		return nil, err
	}
	s := &sim{nw: nw, routes: routes, cfg: cfg, nodes: make([]netNode, nw.N), busyUntil: make([]int64, len(nw.Links))}
	for i := range s.nodes {
		n := &s.nodes[i]
		n.id = NodeID(i)
		n.inQ = make([]queue.Deque[pktEvent], len(nw.in[i]))
		n.clock = make([]int64, len(nw.in[i]))
		n.outBuf = make([][]pktEvent, len(nw.out[i]))
	}
	// Assign packet IDs deterministically: flows in order, packets in
	// sequence; schedules per node sorted by (time, id).
	var id int64
	total := tr.TotalPackets()
	if cfg.RecordPackets {
		s.recs = make([]PacketRecord, total)
	}
	for _, f := range tr {
		t := f.Start
		for k := 0; k < f.Count; k++ {
			s.nodes[f.Src].sched = append(s.nodes[f.Src].sched, injection{
				time: t,
				pkt:  Packet{ID: id, Src: f.Src, Dst: f.Dst, Created: t},
			})
			id++
			t += f.Interval
		}
	}
	for i := range s.nodes {
		sched := s.nodes[i].sched
		sort.Slice(sched, func(a, b int) bool {
			if sched[a].time != sched[b].time {
				return sched[a].time < sched[b].time
			}
			return sched[a].pkt.ID < sched[b].pkt.ID
		})
	}
	return s, nil
}

// localClock is the Chandy–Misra bound: the node may safely process
// everything up to the minimum over link clocks and the next local
// injection.
func (n *netNode) localClock() int64 {
	clock := TimeInfinity
	if n.schedAt < len(n.sched) {
		clock = n.sched[n.schedAt].time
	}
	for _, c := range n.clock {
		if c < clock {
			clock = c
		}
	}
	return clock
}

// processPhase runs one node's processing for the superstep: consume all
// safe events (arrivals and injections) in timestamp order, absorbing or
// forwarding each.
func (s *sim) processPhase(n *netNode) {
	clock := n.localClock()
	n.processed = false
	for {
		// Pick the earliest safe event across inlinks and the schedule;
		// ties resolve to the lowest inlink, then the schedule, which
		// keeps execution deterministic.
		best := -1
		bestTime := clock
		for li := range n.inQ {
			if head, ok := n.inQ[li].Front(); ok && head.Time <= bestTime {
				if best == -1 || head.Time < bestTime {
					best = li
					bestTime = head.Time
				}
			}
		}
		useSched := false
		if n.schedAt < len(n.sched) {
			st := n.sched[n.schedAt].time
			if st <= bestTime && (best == -1 || st < bestTime) {
				useSched = true
				bestTime = st
			}
		}
		var ev pktEvent
		switch {
		case useSched:
			ev = pktEvent{Time: n.sched[n.schedAt].time, P: n.sched[n.schedAt].pkt}
			n.schedAt++
		case best >= 0:
			ev, _ = n.inQ[best].PopFront()
		default:
			// Nothing safe left; expose the post-processing horizon for
			// the delivery phase's clock advancement. The horizon is the
			// earliest time this node could still emit from: its local
			// clock capped by any event left queued beyond the clock —
			// such an event will be forwarded later at time+lookahead,
			// and the announced bound must not overshoot that.
			h := n.localClock()
			for li := range n.inQ {
				if head, ok := n.inQ[li].Front(); ok && head.Time < h {
					h = head.Time
				}
			}
			n.horizon = h
			return
		}
		n.events++
		n.processed = true
		s.handle(n, ev)
	}
}

// handle absorbs or forwards one packet at node n.
func (s *sim) handle(n *netNode, ev pktEvent) {
	p := ev.P
	if p.Dst == n.id {
		n.delivered++
		n.hops += int64(p.Hops)
		lat := ev.Time - p.Created
		n.latencySum += lat
		if lat > n.maxLatency {
			n.maxLatency = lat
		}
		if ev.Time > n.lastTime {
			n.lastTime = ev.Time
		}
		if s.recs != nil {
			s.recs[p.ID] = PacketRecord{Delivered: true, Time: ev.Time, Hops: p.Hops}
		}
		return
	}
	li := s.routes[n.id][p.Dst]
	link := s.nw.Links[li]
	p.Hops++
	// Departure respects the link's bandwidth: at least TxTime after the
	// previous departure on this link. Processing order is timestamp
	// order, so departures stay nondecreasing, and the Chandy–Misra
	// lower bound (which queueing only ever raises) remains valid.
	depart := ev.Time + s.nw.Service
	if link.TxTime > 0 {
		if s.busyUntil[li] > depart {
			depart = s.busyUntil[li]
		}
		s.busyUntil[li] = depart + link.TxTime
	}
	out := pktEvent{Time: depart + link.Delay, P: p}
	// Locate the link's position among this node's outgoing links.
	for pos, l := range s.nw.out[n.id] {
		if l == li {
			n.outBuf[pos] = append(n.outBuf[pos], out)
			return
		}
	}
	panic("netdes: route uses a link not owned by the node")
}

// deliverPhase runs one node's delivery for the superstep: drain every
// incoming link's buffer (filled by the source in the processing phase)
// and advance each link clock to the source's guaranteed lower bound —
// the superstep analog of a Chandy–Misra null message.
func (s *sim) deliverPhase(n *netNode) {
	for pos, li := range s.nw.in[n.id] {
		link := s.nw.Links[li]
		src := &s.nodes[link.From]
		// Find the buffer position of li at the source.
		for spos, sl := range s.nw.out[link.From] {
			if sl != li {
				continue
			}
			for _, ev := range src.outBuf[spos] {
				n.inQ[pos].PushBack(ev)
			}
			break
		}
		if src.horizon == TimeInfinity {
			n.clock[pos] = TimeInfinity
		} else if bound := src.horizon + s.nw.Service + link.Delay; bound > n.clock[pos] {
			n.clock[pos] = bound
		}
	}
}

// clearBuffers resets every node's output buffers after delivery.
func (n *netNode) clearBuffers() {
	for i := range n.outBuf {
		n.outBuf[i] = n.outBuf[i][:0]
	}
}

// Simulate runs the traffic over the network to completion and returns
// the summary. Results are identical for every worker count.
func Simulate(nw *Network, tr Traffic, cfg Config) (*Result, error) {
	start := time.Now()
	s, err := newSim(nw, tr, cfg)
	if err != nil {
		return nil, err
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	grain := cfg.Grain
	if grain <= 0 {
		grain = 8
	}
	total := int64(tr.TotalPackets())

	engine := "netdes-seq"
	var rt *hj.Runtime
	if cfg.Workers > 1 {
		engine = fmt.Sprintf("netdes-hj(%d)", cfg.Workers)
		rt = hj.NewRuntime(hj.Config{Workers: cfg.Workers})
		defer rt.Shutdown()
	}

	n := len(s.nodes)
	steps := 0
	for delivered := int64(0); delivered < total; steps++ {
		if steps >= maxSteps {
			return nil, fmt.Errorf("netdes: no convergence after %d supersteps (%d/%d delivered)", steps, delivered, total)
		}
		if rt != nil {
			rt.Finish(func(ctx *hj.Ctx) {
				ctx.ForAsync(n, grain, func(_ *hj.Ctx, i int) { s.processPhase(&s.nodes[i]) })
			})
			rt.Finish(func(ctx *hj.Ctx) {
				ctx.ForAsync(n, grain, func(_ *hj.Ctx, i int) { s.deliverPhase(&s.nodes[i]) })
			})
		} else {
			for i := range s.nodes {
				s.processPhase(&s.nodes[i])
			}
			for i := range s.nodes {
				s.deliverPhase(&s.nodes[i])
			}
		}
		delivered = 0
		for i := range s.nodes {
			s.nodes[i].clearBuffers()
			delivered += s.nodes[i].delivered
		}
	}

	res := &Result{
		Engine:     engine,
		Injected:   total,
		Supersteps: steps,
		Elapsed:    time.Since(start),
		Packets:    s.recs,
		NodeEvents: make([]int64, len(s.nodes)),
	}
	for i := range s.nodes {
		nd := &s.nodes[i]
		res.Delivered += nd.delivered
		res.TotalHops += nd.hops
		res.LatencySum += nd.latencySum
		res.Events += nd.events
		res.NodeEvents[i] = nd.events
		if nd.maxLatency > res.MaxLatency {
			res.MaxLatency = nd.maxLatency
		}
		if nd.lastTime > res.LastDelivery {
			res.LastDelivery = nd.lastTime
		}
	}
	return res, nil
}
