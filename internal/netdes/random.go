package netdes

import (
	"fmt"
	"math/rand"
)

// RandomNetwork builds a strongly connected random topology: a
// bidirectional ring backbone (guaranteeing reachability) plus random
// chord links until the average out-degree reaches avgDegree. Link
// delays are uniform in [1, maxDelay]. Deterministic in seed.
func RandomNetwork(n int, avgDegree float64, maxDelay int64, service int64, seed int64) *Network {
	if n < 3 {
		n = 3
	}
	if maxDelay < 1 {
		maxDelay = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nw := NewNetwork(fmt.Sprintf("randomnet-%d-%d", n, seed), n, service)
	delay := func() int64 { return 1 + rng.Int63n(maxDelay) }
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		must(nw.AddLink(NodeID(i), NodeID(j), delay()))
		must(nw.AddLink(NodeID(j), NodeID(i), delay()))
	}
	target := int(avgDegree * float64(n))
	for len(nw.Links) < target {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		// Duplicate links are allowed (parallel channels); routing picks
		// the lowest link index among equal-hop choices.
		must(nw.AddLink(a, b, delay()))
	}
	return nw
}

// RandomTraffic builds flows between random distinct endpoints with
// randomized starts and intervals. Deterministic in seed.
func RandomTraffic(nw *Network, flows, packetsPerFlow int, seed int64) Traffic {
	rng := rand.New(rand.NewSource(seed))
	tr := make(Traffic, 0, flows)
	for f := 0; f < flows; f++ {
		src := NodeID(rng.Intn(nw.N))
		dst := NodeID(rng.Intn(nw.N))
		for dst == src {
			dst = NodeID(rng.Intn(nw.N))
		}
		tr = append(tr, Flow{
			Src:      src,
			Dst:      dst,
			Start:    1 + rng.Int63n(20),
			Interval: 1 + rng.Int63n(5),
			Count:    packetsPerFlow,
		})
	}
	return tr
}
