// Package netdes is a conservative discrete event simulator for
// communication networks — the paper's stated next step ("exploring
// larger-scale DES application, such as wireless mobile ad hoc network
// simulation, with Java and HJlib"). Routers with per-input-link FIFO
// queues and Chandy–Misra local clocks forward packets along statically
// routed shortest paths; unlike the logic-circuit substrate, topologies
// may contain cycles.
//
// Synchronization uses a synchronous-conservative (BSP) scheme: each
// superstep first lets every node process all events up to its local
// clock in parallel, buffering emissions per outgoing link (each link
// buffer has exactly one writer), then delivers all buffers and advances
// every link clock to its source's lower bound (local horizon plus
// service and propagation lookahead). This plays the role of the
// paper's null messages; progress per superstep is at least the minimum
// lookahead, so the simulation cannot deadlock even on cyclic graphs.
// Sequential and parallel executions are bit-identical.
package netdes

import (
	"fmt"
	"math"
)

// NodeID identifies a router/host in the network.
type NodeID int32

// TimeInfinity marks an exhausted event source.
const TimeInfinity int64 = math.MaxInt64

// Link is a directed communication channel. Delay is the propagation
// latency; TxTime models finite bandwidth: consecutive packets on the
// link depart at least TxTime apart, so a congested link builds genuine
// queueing delay. TxTime zero means infinite bandwidth.
type Link struct {
	From, To NodeID
	Delay    int64 // propagation delay, >= 1
	TxTime   int64 // serialization time per packet, >= 0
}

// Network is a directed (possibly cyclic) communication topology with a
// constant per-node service delay.
type Network struct {
	Name    string
	N       int
	Links   []Link
	Service int64 // per-hop processing delay, >= 1

	out [][]int32 // node -> indices into Links (outgoing)
	in  [][]int32 // node -> indices into Links (incoming)
}

// NewNetwork returns an empty network with n nodes and the given
// per-node service delay.
func NewNetwork(name string, n int, service int64) *Network {
	if service < 1 {
		service = 1
	}
	return &Network{Name: name, N: n, Service: service}
}

// AddLink adds a directed link with infinite bandwidth. Delay values
// below 1 are raised to 1 so every cycle has positive lookahead.
func (nw *Network) AddLink(from, to NodeID, delay int64) error {
	return nw.AddLinkTx(from, to, delay, 0)
}

// AddLinkTx adds a directed link with finite bandwidth: consecutive
// packets depart at least txTime apart.
func (nw *Network) AddLinkTx(from, to NodeID, delay, txTime int64) error {
	if from < 0 || int(from) >= nw.N || to < 0 || int(to) >= nw.N {
		return fmt.Errorf("netdes: link %d->%d out of range (n=%d)", from, to, nw.N)
	}
	if from == to {
		return fmt.Errorf("netdes: self-link on node %d", from)
	}
	if delay < 1 {
		delay = 1
	}
	if txTime < 0 {
		txTime = 0
	}
	nw.Links = append(nw.Links, Link{From: from, To: to, Delay: delay, TxTime: txTime})
	nw.out, nw.in = nil, nil // invalidate adjacency
	return nil
}

// finalize (re)builds adjacency lists.
func (nw *Network) finalize() {
	if nw.out != nil {
		return
	}
	nw.out = make([][]int32, nw.N)
	nw.in = make([][]int32, nw.N)
	for i, l := range nw.Links {
		nw.out[l.From] = append(nw.out[l.From], int32(i))
		nw.in[l.To] = append(nw.in[l.To], int32(i))
	}
}

// Routes computes static next-hop routing: routes[src][dst] is the index
// into Links of the first hop on a minimum-hop path (ties broken by
// lower link index, so routing is deterministic), or -1 when dst is
// unreachable from src.
func (nw *Network) Routes() [][]int32 {
	nw.finalize()
	routes := make([][]int32, nw.N)
	for dst := 0; dst < nw.N; dst++ {
		// Reverse BFS from dst over incoming links: dist[v] = hops from
		// v to dst; nextHop[v] = the outgoing link to take at v.
		dist := make([]int32, nw.N)
		for i := range dist {
			dist[i] = -1
		}
		next := make([]int32, nw.N)
		for i := range next {
			next[i] = -1
		}
		dist[dst] = 0
		frontier := []NodeID{NodeID(dst)}
		for len(frontier) > 0 {
			var nf []NodeID
			for _, v := range frontier {
				for _, li := range nw.in[v] {
					u := nw.Links[li].From
					if dist[u] == -1 {
						dist[u] = dist[v] + 1
						next[u] = li
						nf = append(nf, u)
					} else if dist[u] == dist[v]+1 && li < next[u] {
						next[u] = li
					}
				}
			}
			frontier = nf
		}
		for src := 0; src < nw.N; src++ {
			if routes[src] == nil {
				routes[src] = make([]int32, nw.N)
			}
			routes[src][dst] = next[src]
		}
	}
	return routes
}

// Ring builds a bidirectional ring of n nodes (a cyclic topology).
func Ring(n int, linkDelay, service int64) *Network {
	nw := NewNetwork(fmt.Sprintf("ring-%d", n), n, service)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		must(nw.AddLink(NodeID(i), NodeID(j), linkDelay))
		must(nw.AddLink(NodeID(j), NodeID(i), linkDelay))
	}
	return nw
}

// Grid builds a rows×cols mesh with bidirectional links.
func Grid(rows, cols int, linkDelay, service int64) *Network {
	nw := NewNetwork(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, service)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				must(nw.AddLink(id(r, c), id(r, c+1), linkDelay))
				must(nw.AddLink(id(r, c+1), id(r, c), linkDelay))
			}
			if r+1 < rows {
				must(nw.AddLink(id(r, c), id(r+1, c), linkDelay))
				must(nw.AddLink(id(r+1, c), id(r, c), linkDelay))
			}
		}
	}
	return nw
}

// Star builds a hub-and-spoke topology with node 0 as the hub.
func Star(leaves int, linkDelay, service int64) *Network {
	nw := NewNetwork(fmt.Sprintf("star-%d", leaves), leaves+1, service)
	for i := 1; i <= leaves; i++ {
		must(nw.AddLink(0, NodeID(i), linkDelay))
		must(nw.AddLink(NodeID(i), 0, linkDelay))
	}
	return nw
}

// Line builds a linear chain of n nodes with bidirectional links.
func Line(n int, linkDelay, service int64) *Network {
	nw := NewNetwork(fmt.Sprintf("line-%d", n), n, service)
	for i := 0; i+1 < n; i++ {
		must(nw.AddLink(NodeID(i), NodeID(i+1), linkDelay))
		must(nw.AddLink(NodeID(i+1), NodeID(i), linkDelay))
	}
	return nw
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Flow is a deterministic packet injection schedule: Count packets from
// Src to Dst, the first at Start, then every Interval.
type Flow struct {
	Src, Dst        NodeID
	Start, Interval int64
	Count           int
}

// Traffic is a set of flows.
type Traffic []Flow

// TotalPackets reports the number of packets the traffic injects.
func (tr Traffic) TotalPackets() int {
	total := 0
	for _, f := range tr {
		total += f.Count
	}
	return total
}

// Validate checks flows against the network and its routing.
func (tr Traffic) Validate(nw *Network, routes [][]int32) error {
	for i, f := range tr {
		if f.Src < 0 || int(f.Src) >= nw.N || f.Dst < 0 || int(f.Dst) >= nw.N {
			return fmt.Errorf("netdes: flow %d: endpoint out of range", i)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("netdes: flow %d: src == dst", i)
		}
		if f.Count < 0 || f.Interval < 1 && f.Count > 1 {
			return fmt.Errorf("netdes: flow %d: need Interval >= 1 for multi-packet flows", i)
		}
		if routes[f.Src][f.Dst] < 0 {
			return fmt.Errorf("netdes: flow %d: node %d cannot reach node %d", i, f.Src, f.Dst)
		}
	}
	return nil
}
