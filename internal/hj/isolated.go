package hj

import (
	"runtime"
	"sort"
	"time"
)

// Isolated executes fn in mutual exclusion with every other Isolated
// invocation, regardless of the objects involved — the HJlib
// "isolated(() -> stmt)" global form. It must only be used from inside a
// task; fn must not call Finish or block on other tasks.
func (c *Ctx) Isolated(fn func()) {
	rt := c.worker.rt
	rt.globalIso.Lock()
	defer rt.globalIso.Unlock()
	c.worker.stats.isolated.Add(1)
	fn()
}

// IsolatedOn executes fn in mutual exclusion with every other potentially
// parallel Isolated/IsolatedOn invocation whose lock set intersects locks
// — the HJlib "isolated(v1, v2, ..., () -> stmt)" object-based form.
//
// The locks are acquired in ascending ID order, which makes the construct
// deadlock-free: all IsolatedOn invocations agree on a total acquisition
// order. Acquisition spins (with escalating yields) rather than parking;
// isolated sections are expected to be short, per the HJ model.
func (c *Ctx) IsolatedOn(locks []*Lock, fn func()) {
	if len(locks) == 0 {
		c.Isolated(fn)
		return
	}
	ordered := make([]*Lock, len(locks))
	copy(ordered, locks)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, l := range ordered {
		spinAcquire(l)
	}
	// Release on panic too: a contained task panic must not leave the
	// isolation locks held and wedge every other worker.
	defer func() {
		for i := len(ordered) - 1; i >= 0; i-- {
			ordered[i].release()
		}
	}()
	c.worker.stats.isolated.Add(1)
	fn()
}

// spinAcquire blocks until l is acquired, escalating from raw spinning
// through scheduler yields to short parked sleeps. The sleep tier matters
// under oversubscription (more workers than GOMAXPROCS): Gosched only
// reshuffles runnable goroutines on the current Ps, so when every P is
// occupied by a spinning waiter, a preempted lock holder can starve
// indefinitely — parking the waiter, however briefly, frees its P for the
// holder to finish.
func spinAcquire(l *Lock) {
	for spins := 0; ; spins++ {
		if l.tryAcquire() {
			return
		}
		switch {
		case spins < 32:
			// Busy-spin: the common uncontended-ish case, holder exits fast.
		case spins < 1024:
			runtime.Gosched()
		default:
			time.Sleep(10 * time.Microsecond)
		}
	}
}
