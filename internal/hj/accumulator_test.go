package hj

import (
	"testing"
)

func TestAccumulatorSum(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		acc := NewAccumulator(rt, 0, func(a, b int) int { return a + b })
		const n = 10000
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(n, 16, func(c *Ctx, i int) {
				acc.Put(c, i)
			})
		})
		if got := acc.Value(); got != n*(n-1)/2 {
			t.Fatalf("sum = %d, want %d", got, n*(n-1)/2)
		}
	})
}

func TestAccumulatorMax(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		acc := NewAccumulator(rt, -1<<62, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(5000, 8, func(c *Ctx, i int) {
				acc.Put(c, int64((i*2654435761)%99991))
			})
		})
		want := int64(0)
		for i := 0; i < 5000; i++ {
			if v := int64((i * 2654435761) % 99991); v > want {
				want = v
			}
		}
		if got := acc.Value(); got != want {
			t.Fatalf("max = %d, want %d", got, want)
		}
	})
}

func TestAccumulatorResetAndReuse(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		acc := NewAccumulator(rt, 0, func(a, b int) int { return a + b })
		for round := 1; round <= 3; round++ {
			acc.Reset()
			rt.Finish(func(ctx *Ctx) {
				ctx.ForAsync(100, 4, func(c *Ctx, i int) { acc.Put(c, 1) })
			})
			if got := acc.Value(); got != 100 {
				t.Fatalf("round %d: %d, want 100", round, got)
			}
		}
	})
}

func TestAccumulatorIdentityWhenUnused(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		// The element must be a true identity of the operation (the
		// documented contract): 1 for products.
		acc := NewAccumulator(rt, 1, func(a, b int) int { return a * b })
		if acc.Value() != 1 {
			t.Fatalf("unused accumulator = %d, want identity 1", acc.Value())
		}
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(10, 2, func(c *Ctx, i int) { acc.Put(c, 2) })
		})
		if got := acc.Value(); got != 1024 {
			t.Fatalf("product = %d, want 2^10", got)
		}
	})
}

func TestAccumulatorStringConcatOrderIndependentLength(t *testing.T) {
	// A non-numeric payload: concatenation is associative (though not
	// commutative, lengths still must add up — the documented contract
	// requires commutativity for deterministic *values*, so only the
	// length is asserted here).
	withRuntime(t, 4, func(rt *Runtime) {
		acc := NewAccumulator(rt, "", func(a, b string) string { return a + b })
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(200, 8, func(c *Ctx, i int) { acc.Put(c, "x") })
		})
		if got := len(acc.Value()); got != 200 {
			t.Fatalf("len = %d, want 200", got)
		}
	})
}
