package hj

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the runtime's live scheduler counters. All fields are
// updated atomically on hot paths; read them through Runtime.Stats.
type Stats struct {
	Spawns       atomic.Int64 // tasks created via Async/Finish
	Steals       atomic.Int64 // successful steals
	Parks        atomic.Int64 // times a worker parked for lack of work
	Isolated     atomic.Int64 // isolated sections entered
	LockAcquires atomic.Int64 // successful TryLock calls
	LockFailures atomic.Int64 // failed TryLock calls
	LeakedLocks  atomic.Int64 // locks auto-released at task exit

	stealTries int // configuration, not a counter
}

// StatsSnapshot is a point-in-time copy of the scheduler counters.
type StatsSnapshot struct {
	Spawns       int64
	Steals       int64
	Parks        int64
	Isolated     int64
	LockAcquires int64
	LockFailures int64
	LeakedLocks  int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Spawns:       s.Spawns.Load(),
		Steals:       s.Steals.Load(),
		Parks:        s.Parks.Load(),
		Isolated:     s.Isolated.Load(),
		LockAcquires: s.LockAcquires.Load(),
		LockFailures: s.LockFailures.Load(),
		LeakedLocks:  s.LeakedLocks.Load(),
	}
}

// LockSuccessRate returns the fraction of TryLock calls that succeeded,
// the metric the paper's Section 4.5 optimizations aim to raise.
func (s StatsSnapshot) LockSuccessRate() float64 {
	total := s.LockAcquires + s.LockFailures
	if total == 0 {
		return 1
	}
	return float64(s.LockAcquires) / float64(total)
}

// String summarizes the snapshot on one line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("spawns=%d steals=%d parks=%d isolated=%d locks(ok=%d fail=%d leak=%d rate=%.3f)",
		s.Spawns, s.Steals, s.Parks, s.Isolated,
		s.LockAcquires, s.LockFailures, s.LeakedLocks, s.LockSuccessRate())
}

// Sub returns the counter deltas s - prev, for measuring one run.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Spawns:       s.Spawns - prev.Spawns,
		Steals:       s.Steals - prev.Steals,
		Parks:        s.Parks - prev.Parks,
		Isolated:     s.Isolated - prev.Isolated,
		LockAcquires: s.LockAcquires - prev.LockAcquires,
		LockFailures: s.LockFailures - prev.LockFailures,
		LeakedLocks:  s.LeakedLocks - prev.LeakedLocks,
	}
}
