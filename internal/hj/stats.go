package hj

import (
	"fmt"
	"sync/atomic"

	"hjdes/internal/obs"
)

// workerStats is one worker's scheduler counters. Every field is written
// by exactly one goroutine — the owning worker (a thief that executes a
// stolen task counts it on its own line) — so the atomics are always
// uncontended; they exist only so Runtime.Stats and the stall watchdog
// can read a consistent value mid-run. Each worker embeds its own copy
// behind cache-line padding, so the spawn/steal/park hot paths never
// write a cache line shared with another worker (the old Runtime-global
// Stats struct serialized every Async on one line).
type workerStats struct {
	spawns       atomic.Int64 // tasks created via Async/AsyncOn by this worker
	remoteSpawns atomic.Int64 // AsyncOn submissions posted to another worker's mailbox
	steals       atomic.Int64 // successful steal rounds by this worker
	stolenTasks  atomic.Int64 // tasks obtained by stealing (≥ steals with stealHalf)
	parks        atomic.Int64 // times this worker parked in the main loop
	helpParks    atomic.Int64 // times this worker parked inside a nested Finish join
	isolated     atomic.Int64 // isolated sections entered
	lockAcquires atomic.Int64 // successful TryLock calls
	lockFailures atomic.Int64 // failed TryLock calls
	leakedLocks  atomic.Int64 // locks auto-released at task exit
}

// StatsSnapshot is a point-in-time aggregate of the per-worker scheduler
// counters (plus the external-submission spawn count).
type StatsSnapshot struct {
	Spawns       int64 // tasks created via Async/AsyncOn/Finish
	RemoteSpawns int64 // of Spawns: posted to another worker's mailbox (AsyncOn)
	Steals       int64 // successful steal rounds
	StolenTasks  int64 // tasks transferred by stealing (≥ Steals with stealHalf)
	Parks        int64 // main-loop parks for lack of work
	HelpParks    int64 // nested-Finish join parks (helpUntil)
	Isolated     int64 // isolated sections entered
	LockAcquires int64 // successful TryLock calls
	LockFailures int64 // failed TryLock calls
	LeakedLocks  int64 // locks auto-released at task exit
}

// Stats returns a snapshot of the scheduler counters, aggregated across
// workers. Safe to call concurrently with a run (the watchdog does).
func (rt *Runtime) Stats() StatsSnapshot {
	s := StatsSnapshot{Spawns: rt.extSpawns.Load()}
	for _, w := range rt.workers {
		s.Spawns += w.stats.spawns.Load()
		s.RemoteSpawns += w.stats.remoteSpawns.Load()
		s.Steals += w.stats.steals.Load()
		s.StolenTasks += w.stats.stolenTasks.Load()
		s.Parks += w.stats.parks.Load()
		s.HelpParks += w.stats.helpParks.Load()
		s.Isolated += w.stats.isolated.Load()
		s.LockAcquires += w.stats.lockAcquires.Load()
		s.LockFailures += w.stats.lockFailures.Load()
		s.LeakedLocks += w.stats.leakedLocks.Load()
	}
	return s
}

// LockSuccessRate returns the fraction of TryLock calls that succeeded,
// the metric the paper's Section 4.5 optimizations aim to raise.
func (s StatsSnapshot) LockSuccessRate() float64 {
	total := s.LockAcquires + s.LockFailures
	if total == 0 {
		return 1
	}
	return float64(s.LockAcquires) / float64(total)
}

// String summarizes the snapshot on one line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("spawns=%d (remote=%d) steals=%d (stolen=%d) parks=%d helpparks=%d isolated=%d locks(ok=%d fail=%d leak=%d rate=%.3f)",
		s.Spawns, s.RemoteSpawns, s.Steals, s.StolenTasks, s.Parks, s.HelpParks, s.Isolated,
		s.LockAcquires, s.LockFailures, s.LeakedLocks, s.LockSuccessRate())
}

// MetricsInto folds the snapshot into a flat metrics map under the "hj."
// namespace.
func (s StatsSnapshot) MetricsInto(m obs.Metrics) {
	m.Add("hj.spawns", s.Spawns)
	m.Add("hj.remote_spawns", s.RemoteSpawns)
	m.Add("hj.steals", s.Steals)
	m.Add("hj.stolen_tasks", s.StolenTasks)
	m.Add("hj.parks", s.Parks)
	m.Add("hj.help_parks", s.HelpParks)
	m.Add("hj.isolated", s.Isolated)
	m.Add("hj.lock_acquires", s.LockAcquires)
	m.Add("hj.lock_failures", s.LockFailures)
	m.Add("hj.leaked_locks", s.LeakedLocks)
}

// Sub returns the counter deltas s - prev, for measuring one run.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Spawns:       s.Spawns - prev.Spawns,
		RemoteSpawns: s.RemoteSpawns - prev.RemoteSpawns,
		Steals:       s.Steals - prev.Steals,
		StolenTasks:  s.StolenTasks - prev.StolenTasks,
		Parks:        s.Parks - prev.Parks,
		HelpParks:    s.HelpParks - prev.HelpParks,
		Isolated:     s.Isolated - prev.Isolated,
		LockAcquires: s.LockAcquires - prev.LockAcquires,
		LockFailures: s.LockFailures - prev.LockFailures,
		LeakedLocks:  s.LeakedLocks - prev.LeakedLocks,
	}
}
