package hj

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func withRuntime(t *testing.T, workers int, fn func(rt *Runtime)) {
	t.Helper()
	rt := NewRuntime(Config{Workers: workers})
	defer rt.Shutdown()
	fn(rt)
}

func TestFinishRunsBody(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		ran := false
		rt.Finish(func(ctx *Ctx) { ran = true })
		if !ran {
			t.Fatal("finish body did not run")
		}
	})
}

func TestFinishWaitsForAsyncs(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		withRuntime(t, workers, func(rt *Runtime) {
			const n = 10000
			var count atomic.Int64
			rt.Finish(func(ctx *Ctx) {
				for i := 0; i < n; i++ {
					ctx.Async(func(*Ctx) { count.Add(1) })
				}
			})
			if count.Load() != n {
				t.Fatalf("workers=%d: finish returned with %d/%d tasks done", workers, count.Load(), n)
			}
		})
	}
}

func TestFinishWaitsForTransitiveAsyncs(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		var count atomic.Int64
		var spawn func(ctx *Ctx, depth int)
		spawn = func(ctx *Ctx, depth int) {
			count.Add(1)
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := depth - 1
				ctx.Async(func(c *Ctx) { spawn(c, d) })
			}
		}
		rt.Finish(func(ctx *Ctx) { spawn(ctx, 8) })
		// A full ternary tree of depth 8 has (3^9-1)/2 nodes.
		want := int64((19683 - 1) / 2)
		if count.Load() != want {
			t.Fatalf("count = %d, want %d", count.Load(), want)
		}
	})
}

func TestNestedFinish(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		var order []string
		var inner atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			order = append(order, "pre")
			ctx.Finish(func(c *Ctx) {
				for i := 0; i < 1000; i++ {
					c.Async(func(*Ctx) { inner.Add(1) })
				}
			})
			// Every inner task must be complete before the nested
			// finish returns.
			if inner.Load() != 1000 {
				t.Errorf("nested finish returned early: %d/1000", inner.Load())
			}
			order = append(order, "post")
		})
		if len(order) != 2 || order[0] != "pre" || order[1] != "post" {
			t.Fatalf("order = %v", order)
		}
	})
}

func TestDeeplyNestedFinish(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		var depthReached atomic.Int64
		var nest func(ctx *Ctx, depth int)
		nest = func(ctx *Ctx, depth int) {
			if depth == 0 {
				depthReached.Add(1)
				return
			}
			ctx.Finish(func(c *Ctx) {
				c.Async(func(cc *Ctx) { nest(cc, depth-1) })
			})
		}
		rt.Finish(func(ctx *Ctx) { nest(ctx, 50) })
		if depthReached.Load() != 1 {
			t.Fatalf("deep nesting did not complete: %d", depthReached.Load())
		}
	})
}

func TestSequentialFinishCalls(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		for round := 0; round < 20; round++ {
			var count atomic.Int64
			rt.Finish(func(ctx *Ctx) {
				for i := 0; i < 100; i++ {
					ctx.Async(func(*Ctx) { count.Add(1) })
				}
			})
			if count.Load() != 100 {
				t.Fatalf("round %d: %d/100 tasks", round, count.Load())
			}
		}
	})
}

func TestSingleWorkerCompletes(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		var count atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			var chain func(c *Ctx, n int)
			chain = func(c *Ctx, n int) {
				count.Add(1)
				if n > 0 {
					c.Async(func(cc *Ctx) { chain(cc, n-1) })
				}
			}
			chain(ctx, 5000)
		})
		if count.Load() != 5001 {
			t.Fatalf("count = %d, want 5001", count.Load())
		}
	})
}

func TestWorkerIDsInRange(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		var bad atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 1000; i++ {
				ctx.Async(func(c *Ctx) {
					if c.WorkerID() < 0 || c.WorkerID() >= 4 {
						bad.Add(1)
					}
					if c.Runtime() != rt {
						bad.Add(1)
					}
				})
			}
		})
		if bad.Load() != 0 {
			t.Fatalf("%d tasks observed bad worker identity", bad.Load())
		}
	})
}

func TestWorkDistribution(t *testing.T) {
	// With several workers and many tasks, stealing must spread work:
	// more than one worker should execute tasks. Each task yields so the
	// test does not depend on preemption timing on single-CPU machines.
	withRuntime(t, 4, func(rt *Runtime) {
		var perWorker [4]atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 4000; i++ {
				ctx.Async(func(c *Ctx) {
					runtime.Gosched()
					perWorker[c.WorkerID()].Add(1)
				})
			}
		})
		active := 0
		for i := range perWorker {
			if perWorker[i].Load() > 0 {
				active++
			}
		}
		if active < 2 {
			t.Fatalf("only %d workers executed tasks; stealing appears broken", active)
		}
		if rt.Stats().Steals == 0 {
			t.Fatal("no steals recorded")
		}
	})
}

func TestStatsCounters(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		before := rt.Stats()
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 50; i++ {
				ctx.Async(func(*Ctx) {})
			}
		})
		delta := rt.Stats().Sub(before)
		if delta.Spawns != 51 { // 50 asyncs + 1 root
			t.Fatalf("Spawns delta = %d, want 51", delta.Spawns)
		}
		if delta.LockSuccessRate() != 1 {
			t.Fatalf("LockSuccessRate with no locks = %v, want 1", delta.LockSuccessRate())
		}
	})
}

func TestShutdownStopsWorkers(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	rt.Finish(func(ctx *Ctx) {})
	rt.Shutdown()
	// Idempotent.
	rt.Shutdown()
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := NewRuntime(Config{})
	defer rt.Shutdown()
	if rt.NumWorkers() < 1 {
		t.Fatalf("NumWorkers = %d", rt.NumWorkers())
	}
}

func BenchmarkAsyncFinishFanOut(b *testing.B) {
	rt := NewRuntime(Config{})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			for j := 0; j < 1000; j++ {
				ctx.Async(func(*Ctx) { count.Add(1) })
			}
		})
	}
}

func BenchmarkTaskSpawnOverhead(b *testing.B) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Async(func(*Ctx) {})
		}
	})
}
