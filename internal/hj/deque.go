// Package hj is a from-scratch Go implementation of the execution model of
// the Habanero-Java library (HJlib) described in Section 3 of the paper:
// lightweight tasks scheduled by per-worker work-stealing deques, the
// async/finish task spawning and synchronization model, the isolated
// construct for weak isolation, and the TryLock/ReleaseAllLocks fine-grained
// locking extension the paper proposes. The runtime preserves HJlib's
// deadlock-freedom property for programs that use only Async, Finish,
// Isolated, TryLock and ReleaseAllLocks.
package hj

import (
	"sync/atomic"
)

// taskArray is the growable circular buffer behind a wsDeque. It is
// published atomically so stealers can safely read a consistent snapshot.
type taskArray struct {
	mask int64
	buf  []atomic.Pointer[task]
}

func newTaskArray(logSize uint) *taskArray {
	size := int64(1) << logSize
	return &taskArray{mask: size - 1, buf: make([]atomic.Pointer[task], size)}
}

func (a *taskArray) size() int64 { return a.mask + 1 }

func (a *taskArray) get(i int64) *task { return a.buf[i&a.mask].Load() }

func (a *taskArray) put(i int64, t *task) { a.buf[i&a.mask].Store(t) }

// grow returns a doubled array containing the elements in [top, bottom).
func (a *taskArray) grow(top, bottom int64) *taskArray {
	na := &taskArray{mask: a.size()*2 - 1, buf: make([]atomic.Pointer[task], a.size()*2)}
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// wsDeque is a lock-free Chase–Lev work-stealing deque. The owning worker
// pushes and pops at the bottom (LIFO); thieves steal from the top (FIFO).
// Go's sync/atomic operations are sequentially consistent, which satisfies
// the fences the algorithm requires. The buffer grows when full and is
// never shrunk; old arrays are reclaimed by the garbage collector, which
// also rules out ABA on the array pointer.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[taskArray]
}

const initialDequeLogSize = 8

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.array.Store(newTaskArray(initialDequeLogSize))
	return d
}

// pushBottom appends t at the bottom. Only the owning worker may call it.
func (d *wsDeque) pushBottom(t *task) {
	b := d.bottom.Load()
	top := d.top.Load()
	a := d.array.Load()
	if b-top >= a.size() {
		a = a.grow(top, b)
		d.array.Store(a)
	}
	a.put(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes and returns the bottom task, or nil when the deque is
// empty. Only the owning worker may call it.
func (d *wsDeque) popBottom() *task {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the invariant bottom >= top.
		d.bottom.Store(t)
		return nil
	}
	tk := a.get(b)
	if b > t {
		return tk
	}
	// Single element left: race against stealers for it.
	if !d.top.CompareAndSwap(t, t+1) {
		tk = nil // a thief won
	}
	d.bottom.Store(t + 1)
	return tk
}

// steal removes and returns the top task. It returns nil with retry=false
// when the deque looked empty, and nil with retry=true when it lost a race
// and the caller may try again.
func (d *wsDeque) steal() (tk *task, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	tk = a.get(t)
	// The read above is safe even against a concurrent grow or wraparound:
	// the owner only reuses slot t after top has advanced past t, in which
	// case this CAS fails and the (stale) read is discarded.
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return tk, false
}

// stealHalf transfers up to half the victim's queue (capped at max) in
// one round: the first stolen task is returned for immediate execution
// and the rest are pushed onto dst, the thief's own deque, where they
// become stealable in turn. With max == 1 it degenerates to the classic
// single steal (kept separately as steal for the ablation).
//
// Each task is still claimed by its own top-CAS. A single CAS of top from
// t to t+k would race with the owner: popBottom takes interior elements
// (index > top) without touching top, so a concurrent pop-then-push could
// recycle a slot inside [t, t+k) invisibly — the reason schedulers with
// one-shot batch stealing (Go, Tokio) make the owner side FIFO with its
// own head-CAS. Per-element claiming keeps the Chase–Lev invariant that a
// slot read is validated by the CAS on exactly its index: any overwrite
// of slot i requires top to have advanced past i first, which makes the
// claim CAS fail and the stale read harmless. The batch still amortizes
// victim selection, the top/bottom size probe, and the array load across
// up to max tasks, and returns bursty wake-lists to one thief in a single
// round.
//
// taken counts the transferred tasks; retry is true only when nothing was
// taken because the first claim lost a race (the victim still has work).
func (d *wsDeque) stealHalf(dst *wsDeque, max int) (first *task, taken int, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return nil, 0, false
	}
	k := (n + 1) / 2
	if k > int64(max) {
		k = int64(max)
	}
	a := d.array.Load()
	for i := int64(0); i < k; i++ {
		tk := a.get(t + i)
		if !d.top.CompareAndSwap(t+i, t+i+1) {
			return first, int(i), first == nil
		}
		if first == nil {
			first = tk
		} else {
			dst.pushBottom(tk)
		}
	}
	return first, int(k), false
}

// sizeHint returns an instantaneous estimate of the deque's length. It is
// exact when no operation is in flight and is used only as a parking
// heuristic, never for correctness.
func (d *wsDeque) sizeHint() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
