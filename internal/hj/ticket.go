package hj

import (
	"sync/atomic"
)

// Ticket is a reserved future spawn: a task slot registered with a
// finish scope before the task body is known to be needed. It exists
// for engines whose tasks suspend themselves — a Time Warp LP that has
// hit its optimism window yields its worker, but something outside the
// runtime (the GVT sweep) must later be able to reschedule it without
// the enclosing Finish having already returned. Reserve keeps the
// finish scope open; Fire injects the task; Cancel releases the
// reservation. Exactly one of Fire or Cancel must be called, exactly
// once, from any goroutine (worker or external) — double resolution
// panics, because it means two schedulers claimed the same suspended
// task.
type Ticket struct {
	rt   *Runtime
	t    *task
	used atomic.Bool
}

// Reserve registers a future spawn of fn(idx) with the current task's
// finish scope and returns its ticket. The scope cannot complete until
// the ticket is resolved (Fire's task runs, or Cancel). Ticket task
// records are allocated fresh, not recycled: reservations are
// low-frequency (sweep-paced) and may outlive the reserving slice.
func (c *Ctx) Reserve(fn IndexedTask, idx int32) *Ticket {
	c.fin.register()
	return &Ticket{rt: c.worker.rt, t: &task{ifn: fn, idx: idx, fin: c.fin}}
}

// Fire schedules the reserved task. It goes through the injector (the
// external submission path), so Fire is safe from any goroutine,
// including ones that are not hj workers. On a canceled runtime the
// task is still enqueued but will never run; the enclosing Finish has
// already been released by cancellation.
func (tk *Ticket) Fire() {
	tk.resolve("Fire")
	tk.rt.injector.push(tk.t)
	tk.rt.wakeOne()
}

// Cancel releases the reservation without running the task: the finish
// scope's count drops as if the task had completed.
func (tk *Ticket) Cancel() {
	tk.resolve("Cancel")
	tk.t.fin.complete()
}

func (tk *Ticket) resolve(op string) {
	if tk.used.Swap(true) {
		panic("hj: Ticket." + op + " on an already-resolved ticket")
	}
}
