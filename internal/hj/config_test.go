package hj

import (
	"sync/atomic"
	"testing"
)

func TestConfigStealTries(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, StealTries: 1})
	defer rt.Shutdown()
	var count atomic.Int64
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < 1000; i++ {
			ctx.Async(func(*Ctx) { count.Add(1) })
		}
	})
	if count.Load() != 1000 {
		t.Fatalf("count = %d with StealTries=1", count.Load())
	}
}

func TestConfigSeedIsAccepted(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		rt := NewRuntime(Config{Workers: 3, Seed: seed})
		var count atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(100, 1, func(*Ctx, int) { count.Add(1) })
		})
		rt.Shutdown()
		if count.Load() != 100 {
			t.Fatalf("seed %d: count = %d", seed, count.Load())
		}
	}
}

// TestManyRuntimes ensures runtimes are independent: several coexisting
// runtimes all complete their work.
func TestManyRuntimes(t *testing.T) {
	const n = 8
	rts := make([]*Runtime, n)
	for i := range rts {
		rts[i] = NewRuntime(Config{Workers: 2})
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()
	var total atomic.Int64
	done := make(chan struct{}, n)
	for _, rt := range rts {
		rt := rt
		go func() {
			rt.Finish(func(ctx *Ctx) {
				for i := 0; i < 500; i++ {
					ctx.Async(func(*Ctx) { total.Add(1) })
				}
			})
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if total.Load() != n*500 {
		t.Fatalf("total = %d, want %d", total.Load(), n*500)
	}
}

// TestConcurrentFinishFromManyGoroutines: external goroutines may submit
// root tasks concurrently to one runtime.
func TestConcurrentFinishFromManyGoroutines(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Shutdown()
	const submitters = 6
	var total atomic.Int64
	done := make(chan struct{}, submitters)
	for s := 0; s < submitters; s++ {
		go func() {
			for round := 0; round < 10; round++ {
				rt.Finish(func(ctx *Ctx) {
					for i := 0; i < 50; i++ {
						ctx.Async(func(*Ctx) { total.Add(1) })
					}
				})
			}
			done <- struct{}{}
		}()
	}
	for s := 0; s < submitters; s++ {
		<-done
	}
	if total.Load() != submitters*10*50 {
		t.Fatalf("total = %d", total.Load())
	}
}
