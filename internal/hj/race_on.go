//go:build race

package hj

// raceEnabled reports whether the binary was built with -race.
const raceEnabled = true
