package hj

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestStealHalfEmpty(t *testing.T) {
	d, dst := newWSDeque(), newWSDeque()
	first, taken, retry := d.stealHalf(dst, defaultStealMax)
	if first != nil || taken != 0 || retry {
		t.Fatalf("stealHalf on empty = (%v, %d, %v), want (nil, 0, false)", first, taken, retry)
	}
}

func TestStealHalfOneElement(t *testing.T) {
	d, dst := newWSDeque(), newWSDeque()
	tk := &task{}
	d.pushBottom(tk)
	first, taken, retry := d.stealHalf(dst, defaultStealMax)
	if first != tk || taken != 1 || retry {
		t.Fatalf("stealHalf on one element = (%v, %d, %v), want (task, 1, false)", first, taken, retry)
	}
	if d.sizeHint() != 0 || dst.sizeHint() != 0 {
		t.Fatal("one-element steal should leave both deques empty")
	}
}

func TestStealHalfTakesHalfRoundedUp(t *testing.T) {
	for _, n := range []int{2, 3, 9, 10, 31} {
		d, dst := newWSDeque(), newWSDeque()
		tasks := make([]*task, n)
		for i := range tasks {
			tasks[i] = &task{}
			d.pushBottom(tasks[i])
		}
		first, taken, _ := d.stealHalf(dst, defaultStealMax)
		want := (n + 1) / 2
		if want > defaultStealMax {
			want = defaultStealMax
		}
		if taken != want {
			t.Fatalf("n=%d: taken = %d, want %d", n, taken, want)
		}
		if first != tasks[0] {
			t.Fatalf("n=%d: first stolen task is not the oldest", n)
		}
		// The rest went to dst (order unspecified); victim keeps n-taken.
		if got := int(dst.sizeHint()); got != taken-1 {
			t.Fatalf("n=%d: dst holds %d, want %d", n, got, taken-1)
		}
		if got := int(d.sizeHint()); got != n-taken {
			t.Fatalf("n=%d: victim holds %d, want %d", n, got, n-taken)
		}
	}
}

func TestStealHalfRespectsMax(t *testing.T) {
	d, dst := newWSDeque(), newWSDeque()
	for i := 0; i < 100; i++ {
		d.pushBottom(&task{})
	}
	_, taken, _ := d.stealHalf(dst, 4)
	if taken != 4 {
		t.Fatalf("taken = %d, want max 4", taken)
	}
	_, taken, _ = d.stealHalf(dst, 1) // single-steal ablation mode
	if taken != 1 {
		t.Fatalf("taken = %d, want 1 with max 1", taken)
	}
}

// TestStealHalfWraparound exercises stealing across the ring boundary of
// the backing array: after the indices have advanced past the initial
// array size, slots are reused modulo the mask.
func TestStealHalfWraparound(t *testing.T) {
	d, dst := newWSDeque(), newWSDeque()
	size := 1 << initialDequeLogSize
	// Advance top and bottom by 3/4 of the array without growing.
	for i := 0; i < size*3/4; i++ {
		d.pushBottom(&task{})
		if tk, _ := d.steal(); tk == nil {
			t.Fatal("unexpected empty steal during advance")
		}
	}
	// Now fill half the array: it straddles the wrap point.
	tasks := make([]*task, size/2)
	seen := make(map[*task]bool, len(tasks))
	for i := range tasks {
		tasks[i] = &task{}
		seen[tasks[i]] = false
		d.pushBottom(tasks[i])
	}
	got := 0
	for d.sizeHint() > 0 {
		first, taken, _ := d.stealHalf(dst, defaultStealMax)
		if first == nil {
			t.Fatal("stealHalf returned nil with tasks remaining")
		}
		record := func(tk *task) {
			was, ok := seen[tk]
			if !ok || was {
				t.Fatalf("task %p stolen twice or unknown", tk)
			}
			seen[tk] = true
			got++
		}
		record(first)
		for {
			tk := dst.popBottom()
			if tk == nil {
				break
			}
			record(tk)
		}
		_ = taken
	}
	if got != len(tasks) {
		t.Fatalf("recovered %d tasks, want %d", got, len(tasks))
	}
}

// TestStealHalfConcurrentExactlyOnce is the linearizability stress test:
// one owner interleaving pushBottom/popBottom against 4×GOMAXPROCS
// thieves — half using batched stealHalf, half the classic single steal —
// with every task delivered exactly once. Run under -race this also
// checks the memory ordering of the per-element claims.
func TestStealHalfConcurrentExactlyOnce(t *testing.T) {
	const total = 200000
	thieves := 4 * runtime.GOMAXPROCS(0)
	d := newWSDeque()
	tasks := make([]task, total)
	index := make(map[*task]int, total)
	for i := range tasks {
		index[&tasks[i]] = i
	}
	delivered := make([]atomic.Int32, total)
	var count atomic.Int64

	record := func(tk *task) {
		if tk == nil {
			return
		}
		idx := index[tk] // read-only map access; safe concurrently
		if delivered[idx].Add(1) != 1 {
			t.Errorf("task %d delivered more than once", idx)
		}
		count.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		batch := i%2 == 0
		go func() {
			defer wg.Done()
			dst := newWSDeque() // each thief owns a private destination deque
			drainDst := func() {
				for {
					tk := dst.popBottom()
					if tk == nil {
						return
					}
					record(tk)
				}
			}
			stealOnce := func() (tk *task, retry bool) {
				if batch {
					first, _, r := d.stealHalf(dst, defaultStealMax)
					return first, r
				}
				return d.steal()
			}
			for {
				tk, _ := stealOnce()
				if tk != nil {
					record(tk)
					drainDst()
					continue
				}
				select {
				case <-stop:
					for {
						tk, retry := stealOnce()
						if tk != nil {
							record(tk)
							drainDst()
						} else if !retry {
							return
						}
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < total; i++ {
		d.pushBottom(&tasks[i])
		if i%3 == 0 {
			record(d.popBottom())
		}
	}
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	close(stop)
	wg.Wait()
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	if count.Load() != total {
		t.Fatalf("delivered %d tasks, want %d", count.Load(), total)
	}
}
