package hj

import "testing"

func TestMutexLockBasic(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		l := NewMutexLock()
		rt.Finish(func(ctx *Ctx) {
			if !ctx.TryLock(l) {
				t.Error("TryLock on free mutex lock failed")
			}
			if !l.Held() {
				t.Error("mutex lock not marked held")
			}
			if ctx.TryLock(l) {
				t.Error("second TryLock on held mutex lock succeeded")
			}
			ctx.ReleaseAllLocks()
			if l.Held() {
				t.Error("mutex lock still held after release")
			}
			// Reusable.
			if !ctx.TryLock(l) {
				t.Error("mutex lock unusable after release")
			}
			ctx.Unlock(l)
			if l.Held() {
				t.Error("Unlock did not release mutex lock")
			}
		})
	})
}

func TestMutexLockMutualExclusion(t *testing.T) {
	withRuntime(t, 8, func(rt *Runtime) {
		l := NewMutexLock()
		counter := 0
		const n = 5000
		var body func(c *Ctx)
		body = func(c *Ctx) {
			if !c.TryLock(l) {
				c.Async(body)
				return
			}
			counter++
			c.ReleaseAllLocks()
		}
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Async(body)
			}
		})
		if counter != n {
			t.Fatalf("counter = %d, want %d", counter, n)
		}
	})
}

func TestMutexLockInIsolatedOn(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		locks := []*Lock{NewMutexLock(), NewMutexLock()}
		counter := 0
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 2000; i++ {
				ctx.Async(func(c *Ctx) {
					c.IsolatedOn(locks, func() { counter++ })
				})
			}
		})
		if counter != 2000 {
			t.Fatalf("counter = %d", counter)
		}
	})
}

func TestMutexLockIDsInterleaveWithCASLocks(t *testing.T) {
	a := NewLock()
	b := NewMutexLock()
	c := NewLock()
	if !(a.ID() < b.ID() && b.ID() < c.ID()) {
		t.Fatalf("lock IDs not monotone: %d %d %d", a.ID(), b.ID(), c.ID())
	}
}
