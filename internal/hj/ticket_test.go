package hj

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTicketFireRunsTask: a reserved ticket keeps the finish scope open
// until an external goroutine fires it, and the fired task runs with
// the reserved index.
func TestTicketFireRunsTask(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	var got atomic.Int32
	released := make(chan *Ticket, 1)
	done := make(chan struct{})
	go func() {
		rt.Finish(func(ctx *Ctx) {
			released <- ctx.Reserve(func(_ *Ctx, idx int32) { got.Store(idx + 1) }, 41)
		})
		close(done)
	}()
	tk := <-released
	select {
	case <-done:
		t.Fatal("Finish returned with an unresolved ticket outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	tk.Fire()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Finish did not return after Fire")
	}
	if got.Load() != 42 {
		t.Fatalf("fired task saw idx result %d, want 42", got.Load())
	}
}

// TestTicketCancelReleasesScope: Cancel must release the reservation
// without running the task.
func TestTicketCancelReleasesScope(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Shutdown()
	ran := false
	rt.Finish(func(ctx *Ctx) {
		tk := ctx.Reserve(func(_ *Ctx, _ int32) { ran = true }, 0)
		tk.Cancel()
	})
	if ran {
		t.Fatal("canceled ticket's task ran")
	}
	if err := rt.Quiescent(); err != nil {
		t.Fatalf("runtime not quiescent after Cancel: %v", err)
	}
}

// TestTicketDoubleResolvePanics: resolving a ticket twice is a protocol
// bug and must panic rather than corrupt the finish count.
func TestTicketDoubleResolvePanics(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Shutdown()
	rt.Finish(func(ctx *Ctx) {
		tk := ctx.Reserve(func(_ *Ctx, _ int32) {}, 0)
		tk.Cancel()
		defer func() {
			if recover() == nil {
				t.Error("second resolve did not panic")
			}
		}()
		tk.Fire()
	})
}

// TestTicketConcurrentResolve: many goroutines race to resolve one
// ticket; exactly one must win, the rest must panic, and the scope must
// close exactly once.
func TestTicketConcurrentResolve(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		rt := NewRuntime(Config{Workers: 2})
		var runs atomic.Int32
		released := make(chan *Ticket, 1)
		go rt.Finish(func(ctx *Ctx) {
			released <- ctx.Reserve(func(_ *Ctx, _ int32) { runs.Add(1) }, 0)
		})
		tk := <-released
		var wins, panics atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				defer func() {
					if recover() != nil {
						panics.Add(1)
					}
				}()
				if g%2 == 0 {
					tk.Fire()
				} else {
					tk.Cancel()
				}
				wins.Add(1)
			}(g)
		}
		wg.Wait()
		if wins.Load() != 1 || panics.Load() != 3 {
			t.Fatalf("iter %d: %d winners, %d panics; want 1 and 3", iter, wins.Load(), panics.Load())
		}
		rt.Shutdown()
		if runs.Load() > 1 {
			t.Fatalf("iter %d: fired task ran %d times", iter, runs.Load())
		}
	}
}
