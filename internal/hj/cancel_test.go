package hj

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// settle waits for worker goroutines to drain back to the baseline.
func settle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after cancel\n%s", buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTaskPanicContained: a panicking task must not crash the process;
// Finish returns, Err carries a TaskPanic with worker id and stack, and
// the workers exit rather than leak.
func TestTaskPanicContained(t *testing.T) {
	base := runtime.NumGoroutine()
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Shutdown()
	rt.Finish(func(ctx *Ctx) {
		ctx.Async(func(*Ctx) { panic("kaboom") })
	})
	err := rt.Err()
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("Err() = %v, want *TaskPanic", err)
	}
	if tp.Value != "kaboom" || len(tp.Stack) == 0 || tp.Worker < 0 || tp.Worker >= 4 {
		t.Fatalf("TaskPanic = {worker %d, value %v, stack %d bytes}", tp.Worker, tp.Value, len(tp.Stack))
	}
	rt.Shutdown()
	settle(t, base)
}

// TestCancelUnblocksFinish: an external Cancel makes an in-flight Finish
// return without waiting for the remaining task tree.
func TestCancelUnblocksFinish(t *testing.T) {
	base := runtime.NumGoroutine()
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()

	var spawned atomic.Int64
	go func() {
		time.Sleep(20 * time.Millisecond)
		rt.Cancel()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.Finish(func(ctx *Ctx) {
			// A self-replicating task tree that would run ~forever: only
			// cancellation can end this Finish.
			var loop func(*Ctx)
			loop = func(c *Ctx) {
				spawned.Add(1)
				time.Sleep(100 * time.Microsecond)
				c.Async(loop)
			}
			ctx.Async(loop)
			ctx.Async(loop)
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Finish did not return after Cancel")
	}
	if err := rt.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err() = %v, want ErrCanceled", err)
	}
	if spawned.Load() == 0 {
		t.Fatal("task tree never ran")
	}
	rt.Shutdown()
	settle(t, base)
}

// TestIsolatedPanicReleasesLocks: a panic inside Isolated/IsolatedOn must
// release the isolation locks, or every later isolated section wedges.
func TestIsolatedPanicReleasesLocks(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	rt.Finish(func(ctx *Ctx) {
		ctx.Async(func(c *Ctx) {
			c.Isolated(func() { panic("inside isolated") })
		})
	})
	if rt.Err() == nil {
		t.Fatal("contained panic not reported")
	}

	// Fresh runtime: the same pattern with IsolatedOn and object locks.
	rt2 := NewRuntime(Config{Workers: 2})
	defer rt2.Shutdown()
	l := NewLock()
	rt2.Finish(func(ctx *Ctx) {
		ctx.Async(func(c *Ctx) {
			c.IsolatedOn([]*Lock{l}, func() { panic("inside isolatedOn") })
		})
	})
	if rt2.Err() == nil {
		t.Fatal("contained IsolatedOn panic not reported")
	}
	// The lock must be free again (release ran despite the panic).
	if !l.tryAcquire() {
		t.Fatal("isolation lock still held after contained panic")
	}
	l.release()
}
