package hj

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestQuickRandomTaskTrees generates random async/finish trees and
// checks that Finish always joins exactly the spawned set.
func TestQuickRandomTaskTrees(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Shutdown()

	type shape struct {
		Fanout  uint8
		Depth   uint8
		Workers uint8
	}
	f := func(s shape) bool {
		fanout := int(s.Fanout%4) + 1
		depth := int(s.Depth % 5)
		var count, expected atomic.Int64
		// Expected node count of a complete fanout^depth tree.
		nodes := int64(0)
		pow := int64(1)
		for d := 0; d <= depth; d++ {
			nodes += pow
			pow *= int64(fanout)
		}
		expected.Store(nodes)
		var spawn func(c *Ctx, d int)
		spawn = func(c *Ctx, d int) {
			count.Add(1)
			if d == 0 {
				return
			}
			for i := 0; i < fanout; i++ {
				c.Async(func(cc *Ctx) { spawn(cc, d-1) })
			}
		}
		rt.Finish(func(ctx *Ctx) { spawn(ctx, depth) })
		return count.Load() == expected.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestUnlockSelective holds several locks and releases a middle one; the
// others must stay held and ReleaseAllLocks must clean up the rest.
func TestUnlockSelective(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		rt.Finish(func(ctx *Ctx) {
			locks := []*Lock{NewLock(), NewLock(), NewLock()}
			for _, l := range locks {
				if !ctx.TryLock(l) {
					t.Fatal("acquire failed")
				}
			}
			if !ctx.Unlock(locks[1]) {
				t.Fatal("Unlock reported not-held")
			}
			if locks[1].Held() {
				t.Fatal("middle lock still held")
			}
			if !locks[0].Held() || !locks[2].Held() {
				t.Fatal("neighbors were released")
			}
			if ctx.HeldLocks() != 2 {
				t.Fatalf("HeldLocks = %d", ctx.HeldLocks())
			}
			// Unlock on a lock we do not hold reports false.
			if ctx.Unlock(locks[1]) {
				t.Fatal("double Unlock succeeded")
			}
			ctx.ReleaseAllLocks()
			for i, l := range locks {
				if l.Held() {
					t.Fatalf("lock %d held after ReleaseAllLocks", i)
				}
			}
		})
	})
}

// TestUnlockScopedToTask: a helping worker must not be able to unlock an
// outer task's lock through the shared Ctx.
func TestUnlockScopedToTask(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		outer := NewLock()
		rt.Finish(func(ctx *Ctx) {
			if !ctx.TryLock(outer) {
				t.Fatal("outer acquire failed")
			}
			// Nested finish forces this worker to help-execute the
			// inner task on the same Ctx.
			ctx.Finish(func(c *Ctx) {
				c.Async(func(cc *Ctx) {
					if cc.Unlock(outer) {
						t.Error("inner task unlocked the outer task's lock")
					}
					if cc.HeldLocks() != 0 {
						t.Errorf("inner task sees %d held locks", cc.HeldLocks())
					}
				})
			})
			if !outer.Held() {
				t.Error("outer lock lost during nested finish")
			}
			ctx.ReleaseAllLocks()
		})
	})
}
