package hj

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestInjectorRingFIFO is the regression test for the injector queue: the
// old implementation popped by re-slicing the head off, which both cost
// O(n) per pop (after the append amortization argument broke) and kept
// every popped *task reachable from the backing array. The ring must
// preserve FIFO order across wraps and nil-out consumed slots.
func TestInjectorRingFIFO(t *testing.T) {
	var q injectorQueue
	tasks := make([]task, 100)
	next := 0
	popped := 0
	// Interleave pushes and pops so head walks around the ring several
	// times while the buffer stays small.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			q.push(&tasks[next])
			next++
		}
		for i := 0; i < 7; i++ {
			got := q.pop()
			if got != &tasks[popped] {
				t.Fatalf("pop %d: got task %p, want %p (FIFO violated)", popped, got, &tasks[popped])
			}
			popped++
		}
	}
	for !q.empty() {
		got := q.pop()
		if got != &tasks[popped] {
			t.Fatalf("drain pop %d out of order", popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue should return nil")
	}
	// No consumed slot may retain its task pointer.
	for i, p := range q.buf {
		if p != nil {
			t.Fatalf("slot %d still holds %p after full drain", i, p)
		}
	}
}

// TestAsyncRespawnZeroAlloc pins the tentpole: once the per-worker free
// list is warm, the respawn chain — a task re-spawning its successor by
// index, the DES engine's hot path — allocates nothing. The Finish
// wrapper itself allocates a handful of records (scope, done channel,
// root task, closure), so the budget is a small constant independent of
// the 2000 respawns inside.
func TestAsyncRespawnZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Shutdown()
	var step IndexedTask
	step = func(c *Ctx, idx int32) {
		if idx > 0 {
			c.AsyncIdx(step, idx-1)
		}
	}
	run := func() {
		rt.Finish(func(ctx *Ctx) { ctx.AsyncIdx(step, 2000) })
	}
	run() // populate the worker's task free list
	avg := testing.AllocsPerRun(20, run)
	if avg > 10 {
		t.Fatalf("steady-state Finish with 2000 indexed respawns allocates %.1f objects/run, want <= 10 (respawns must hit the free list)", avg)
	}
}

func TestAsyncOnDeliversToMailbox(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Shutdown()
	before := rt.Stats()
	const perWorker = 200
	var ran [4]atomic.Int64
	var onTarget atomic.Int64
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < 4*perWorker; i++ {
			target := i % 4
			ctx.AsyncOn(target, func(c *Ctx) {
				ran[target].Add(1)
				if c.WorkerID() == target {
					onTarget.Add(1)
				}
			})
		}
	})
	if err := rt.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	var total int64
	for i := range ran {
		total += ran[i].Load()
	}
	if total != 4*perWorker {
		t.Fatalf("ran %d tasks, want %d (mailbox delivery lost tasks)", total, 4*perWorker)
	}
	// Tasks posted to a mailbox are stealable once the owner re-queues
	// them, so not every task is guaranteed to run on its target — but the
	// cross-worker submissions must be counted as remote spawns.
	delta := rt.Stats().Sub(before)
	if delta.RemoteSpawns == 0 {
		t.Fatal("RemoteSpawns = 0, want > 0 for cross-worker AsyncOn")
	}
	if onTarget.Load() == 0 {
		t.Fatal("no AsyncOn task ran on its target worker")
	}
}

func TestAsyncIdxOnCarriesIndex(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	const n = 500
	var sum atomic.Int64
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			ctx.AsyncIdxOn(i%2, func(c *Ctx, idx int32) { sum.Add(int64(idx)) }, int32(i))
		}
	})
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("index sum = %d, want %d", sum.Load(), want)
	}
}

func TestAsyncOnOutOfRangePanics(t *testing.T) {
	for _, target := range []int{-1, 2} {
		rt := NewRuntime(Config{Workers: 2})
		rt.Finish(func(ctx *Ctx) {
			ctx.AsyncOn(target, func(c *Ctx) {})
		})
		err := rt.Err()
		rt.Shutdown()
		var tp *TaskPanic
		if !asTaskPanic(err, &tp) {
			t.Fatalf("target %d: Err() = %v, want contained TaskPanic", target, err)
		}
	}
}

func asTaskPanic(err error, out **TaskPanic) bool {
	tp, ok := err.(*TaskPanic)
	if ok {
		*out = tp
	}
	return ok
}

// TestScheduledFlagNoLostWakeup stresses the engine's respawn dedup
// protocol on the node-indexed path through owner mailboxes: a deliverer
// publishes work (pending.Add) before trying to claim the scheduled flag,
// and the node body clears the flag before draining, so either the CAS
// wins and a fresh task sees the work, or the still-running body's drain
// does. If any interleaving of mailbox submission, parking, and batched
// stealing dropped a wakeup, some pending work would survive the Finish.
func TestScheduledFlagNoLostWakeup(t *testing.T) {
	const (
		nodes      = 64
		producers  = 8
		deliveries = 5000
	)
	rt := NewRuntime(Config{Workers: 4})
	defer rt.Shutdown()
	var scheduled [nodes]atomic.Bool
	var pending [nodes]atomic.Int64
	var consumed atomic.Int64
	body := IndexedTask(func(c *Ctx, id int32) {
		scheduled[id].Store(false)
		if n := pending[id].Swap(0); n > 0 {
			consumed.Add(n)
		}
	})
	rt.Finish(func(ctx *Ctx) {
		for p := 0; p < producers; p++ {
			p := p
			ctx.Async(func(c *Ctx) {
				for i := 0; i < deliveries; i++ {
					id := int32((p*31 + i*17) % nodes)
					pending[id].Add(1)
					if scheduled[id].CompareAndSwap(false, true) {
						c.AsyncIdxOn(int(id)%rt.NumWorkers(), body, id)
					}
				}
			})
		}
	})
	if err := rt.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	if got := consumed.Load(); got != producers*deliveries {
		t.Fatalf("consumed %d deliveries, want %d (lost wakeup)", got, producers*deliveries)
	}
	for id := range pending {
		if n := pending[id].Load(); n != 0 {
			t.Fatalf("node %d still has %d pending deliveries after Finish", id, n)
		}
	}
}

// TestHelpUntilParksAreCounted drives a worker into the helpUntil park
// path: its nested Finish waits on a task that another worker's mailbox
// holds, so the helper has nothing to run and must park on its own
// parker (counted as HelpParks, not Parks).
func TestHelpUntilParksAreCounted(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	for attempt := 0; attempt < 20; attempt++ {
		before := rt.Stats()
		rt.Finish(func(ctx *Ctx) {
			other := 1 - ctx.WorkerID()
			ctx.Finish(func(inner *Ctx) {
				inner.AsyncOn(other, func(c *Ctx) {
					time.Sleep(20 * time.Millisecond)
				})
			})
		})
		if err := rt.Err(); err != nil {
			t.Fatalf("Err() = %v", err)
		}
		if rt.Stats().Sub(before).HelpParks > 0 {
			return
		}
	}
	t.Fatal("helpUntil never parked (HelpParks stayed 0 across 20 attempts)")
}

// TestStatsStringMentionsNewCounters keeps the human-readable snapshot in
// sync with the new per-worker counters.
func TestStatsStringMentionsNewCounters(t *testing.T) {
	s := StatsSnapshot{Spawns: 1, RemoteSpawns: 2, Steals: 3, StolenTasks: 4, Parks: 5, HelpParks: 6}
	str := s.String()
	for _, want := range []string{"remote", "stolen", "helpParks"} {
		if !containsFold(str, want) {
			t.Fatalf("Stats String %q does not mention %s", str, want)
		}
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if eqFold(s[i:i+len(sub)], sub) {
			return true
		}
	}
	return false
}

func eqFold(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i]|0x20, b[i]|0x20
		if ca != cb {
			return false
		}
	}
	return true
}

func ExampleCtx_AsyncOn() {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	var hits atomic.Int64
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < 100; i++ {
			ctx.AsyncOn(i%2, func(c *Ctx) { hits.Add(1) })
		}
	})
	fmt.Println(hits.Load())
	// Output: 100
}
