package hj

import (
	"sync/atomic"
	"testing"
)

func TestPhaserLockstep(t *testing.T) {
	const n, phases = 8, 20
	var counters [n]atomic.Int64
	ForAllPhased(n, func(i int, ph *Phaser) {
		for p := 0; p < phases; p++ {
			counters[i].Add(1)
			ph.Next()
			// After the barrier, every participant must have finished
			// phase p: all counters >= p+1.
			for j := 0; j < n; j++ {
				if c := counters[j].Load(); c < int64(p+1) {
					t.Errorf("phase %d: participant %d at %d", p, j, c)
					return
				}
			}
		}
	})
	for i := 0; i < n; i++ {
		if counters[i].Load() != phases {
			t.Fatalf("participant %d ran %d phases", i, counters[i].Load())
		}
	}
}

func TestPhaserHeterogeneousExit(t *testing.T) {
	// Participant i performs i+1 phases then returns; the implicit Drop
	// must keep the remaining participants progressing.
	const n = 6
	var total atomic.Int64
	ForAllPhased(n, func(i int, ph *Phaser) {
		for p := 0; p <= i; p++ {
			total.Add(1)
			ph.Next()
		}
	})
	want := int64(n * (n + 1) / 2)
	if total.Load() != want {
		t.Fatalf("total phase-work = %d, want %d", total.Load(), want)
	}
}

func TestPhaserNextReturnsPhase(t *testing.T) {
	ForAllPhased(3, func(i int, ph *Phaser) {
		if got := ph.Next(); got != 1 {
			t.Errorf("first Next = %d, want 1", got)
		}
		if got := ph.Next(); got != 2 {
			t.Errorf("second Next = %d, want 2", got)
		}
	})
}

func TestPhaserPhaseAccessor(t *testing.T) {
	ph := NewPhaser(1)
	if ph.Phase() != 0 {
		t.Fatal("initial phase != 0")
	}
	ph.Next() // sole participant: advances immediately
	if ph.Phase() != 1 {
		t.Fatalf("phase = %d", ph.Phase())
	}
}

func TestPhaserSingleParticipantNeverBlocks(t *testing.T) {
	ForAllPhased(1, func(i int, ph *Phaser) {
		for p := 0; p < 1000; p++ {
			ph.Next()
		}
	})
}

func TestForAllPhasedZero(t *testing.T) {
	ran := false
	ForAllPhased(0, func(int, *Phaser) { ran = true })
	if ran {
		t.Fatal("body ran for n=0")
	}
}

func TestNewPhaserPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPhaser(0)
}

// TestPhaserPipelineSum uses phases to implement a synchronous parallel
// prefix sum (the classic phased-forall exercise): log2(n) phases over a
// shared array.
func TestPhaserPipelineSum(t *testing.T) {
	const n = 16
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i + 1)
	}
	next := make([]int64, n)
	ForAllPhased(n, func(i int, ph *Phaser) {
		for d := 1; d < n; d *= 2 {
			v := data[i]
			if i >= d {
				v += data[i-d]
			}
			next[i] = v
			ph.Next()
			data[i] = next[i]
			ph.Next()
		}
	})
	for i := 0; i < n; i++ {
		want := int64((i + 1) * (i + 2) / 2)
		if data[i] != want {
			t.Fatalf("prefix[%d] = %d, want %d", i, data[i], want)
		}
	}
}
