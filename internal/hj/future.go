package hj

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Future is a single-assignment value produced by an async task — one of
// the additional HJlib constructs the paper notes preserve Habanero's
// deadlock-freedom property (Section 3.2). Deadlock freedom holds
// because a task can only wait on futures created before the wait, so
// the waits-for graph is acyclic; and because Get helps execute pending
// tasks while it waits, a worker blocked on a future still drains the
// deques.
type Future[T any] struct {
	val  T
	done atomic.Bool
	ch   chan struct{}
}

// AsyncFuture spawns fn as a child task of the current IEF and returns a
// Future for its result — HJlib's "future(() -> expr)".
func AsyncFuture[T any](c *Ctx, fn func(*Ctx) T) *Future[T] {
	f := &Future[T]{ch: make(chan struct{})}
	c.Async(func(ctx *Ctx) {
		f.val = fn(ctx)
		f.done.Store(true)
		close(f.ch)
	})
	return f
}

// Ready reports whether the value is available.
func (f *Future[T]) Ready() bool { return f.done.Load() }

// Get returns the future's value, helping execute pending tasks while it
// waits (so a worker never idles inside Get).
func (f *Future[T]) Get(c *Ctx) T {
	w := c.worker
	spins := 0
	for !f.done.Load() {
		if t := w.findWork(); t != nil {
			w.execute(t)
			spins = 0
			continue
		}
		spins++
		if spins < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
	return f.val
}

// Wait blocks a non-worker goroutine until the value is available. Use
// Get from inside tasks; Wait exists for code outside the runtime.
func (f *Future[T]) Wait() T {
	<-f.ch
	return f.val
}

// ForAsync spawns fn for every index in [0, n), chunked into grain-sized
// tasks under the current IEF — HJlib's forasync loop construct. A grain
// of 1 spawns one task per index; larger grains amortize task overhead
// for fine-grained bodies. The call returns once all tasks are spawned
// (join at the enclosing Finish, as with Async).
func (c *Ctx) ForAsync(n, grain int, fn func(ctx *Ctx, i int)) {
	if grain < 1 {
		grain = 1
	}
	for lo := 0; lo < n; lo += grain {
		lo := lo
		hi := lo + grain
		if hi > n {
			hi = n
		}
		c.Async(func(ctx *Ctx) {
			for i := lo; i < hi; i++ {
				fn(ctx, i)
			}
		})
	}
}
