package hj_test

import (
	"fmt"
	"sync/atomic"

	"hjdes/internal/hj"
)

// The basic async/finish pattern: spawn lightweight tasks and join them.
func ExampleRuntime_Finish() {
	rt := hj.NewRuntime(hj.Config{Workers: 4})
	defer rt.Shutdown()

	var sum atomic.Int64
	rt.Finish(func(ctx *hj.Ctx) {
		for i := 1; i <= 100; i++ {
			i := i
			ctx.Async(func(*hj.Ctx) { sum.Add(int64(i)) })
		}
	})
	fmt.Println(sum.Load())
	// Output: 5050
}

// Futures compose fork/join computations; Get helps run pending tasks
// while it waits, so workers never idle.
func ExampleAsyncFuture() {
	rt := hj.NewRuntime(hj.Config{Workers: 2})
	defer rt.Shutdown()

	var result int
	rt.Finish(func(ctx *hj.Ctx) {
		a := hj.AsyncFuture(ctx, func(*hj.Ctx) int { return 20 })
		b := hj.AsyncFuture(ctx, func(*hj.Ctx) int { return 22 })
		result = a.Get(ctx) + b.Get(ctx)
	})
	fmt.Println(result)
	// Output: 42
}

// The paper's TryLock/ReleaseAllLocks extension: non-blocking locks that
// keep the runtime deadlock-free; a task that loses the race retries by
// respawning itself.
func ExampleCtx_TryLock() {
	rt := hj.NewRuntime(hj.Config{Workers: 4})
	defer rt.Shutdown()

	lock := hj.NewLock()
	counter := 0 // protected by lock
	var body func(c *hj.Ctx)
	body = func(c *hj.Ctx) {
		if !c.TryLock(lock) {
			c.Async(body) // try again later, never block
			return
		}
		counter++
		c.ReleaseAllLocks()
	}
	rt.Finish(func(ctx *hj.Ctx) {
		for i := 0; i < 1000; i++ {
			ctx.Async(body)
		}
	})
	fmt.Println(counter)
	// Output: 1000
}

// Accumulators reduce values contributed by many tasks without
// contention (one lane per worker).
func ExampleAccumulator() {
	rt := hj.NewRuntime(hj.Config{Workers: 4})
	defer rt.Shutdown()

	max := hj.NewAccumulator(rt, 0, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	rt.Finish(func(ctx *hj.Ctx) {
		ctx.ForAsync(1000, 16, func(c *hj.Ctx, i int) {
			max.Put(c, (i*37)%997)
		})
	})
	fmt.Println(max.Value())
	// Output: 996
}

// Phased activities advance through barriers in lockstep.
func ExampleForAllPhased() {
	history := make([][]int, 3)
	hj.ForAllPhased(4, func(i int, ph *hj.Phaser) {
		for p := 0; p < 3; p++ {
			_ = i
			next := ph.Next()
			if i == 0 {
				history[p] = []int{next}
			}
		}
	})
	fmt.Println(history)
	// Output: [[1] [2] [3]]
}
