package hj

import "sync/atomic"

// parker is a one-worker park/wake slot. A worker that finds no work
// publishes itself as parked and blocks on its own channel; wakers claim
// exactly one parked worker by winning the parked CAS and then send one
// token. Compared to a global mutex/condvar, parking and waking touch
// only the target worker's cache line plus one shared idle counter, and a
// waker can target a specific worker by ID (locality wakeups).
//
// Protocol invariants:
//
//   - Only the owning worker stores parked=true (park prologue); anyone
//     may CAS it true→false (wakers claiming, or the owner cancelling its
//     own park).
//   - A token is sent on ch only by a waker that won the claiming CAS,
//     and every claim's token is consumed by the owner before it parks
//     again, so the buffered-1 send never blocks and the channel is
//     always empty at park time.
//   - The park prologue is store(parked=true), then re-scan for work;
//     pushers publish work, then load parked. Sequentially consistent
//     atomics make this a Dekker handshake: either the parking worker
//     sees the new work, or the pusher sees the parked worker and wakes
//     it. No lost wakeups.
type parker struct {
	parked atomic.Bool
	ch     chan struct{}
}

func newParker() parker { return parker{ch: make(chan struct{}, 1)} }

// prepark publishes the worker as parked and bumps the runtime's idle
// count. The caller must then re-check for visible work and either block
// on p.ch or call cancelPark.
func (w *worker) prepark() {
	w.parker.parked.Store(true)
	w.rt.idle.Add(1)
}

// cancelPark withdraws a prepark. If a waker already claimed this worker
// (the CAS fails), its token is consumed so the channel is empty before
// the next park; the waker has then also already re-decremented idle.
func (w *worker) cancelPark() {
	if w.parker.parked.CompareAndSwap(true, false) {
		w.rt.idle.Add(-1)
		return
	}
	<-w.parker.ch
}

// wakeWorker claims w if it is parked and wakes it. It reports whether
// this call performed the wake.
func (rt *Runtime) wakeWorker(w *worker) bool {
	if w.parker.parked.CompareAndSwap(true, false) {
		rt.idle.Add(-1)
		w.parker.ch <- struct{}{}
		return true
	}
	return false
}

// wakeOne wakes one parked worker, if any. The rotating start index
// spreads wakeups across workers instead of hammering worker 0. The
// idle-count fast path keeps the all-busy steady state down to a single
// shared atomic load. The chaos wake hook (Config.WakeHook) may delay or
// swallow the wake; a swallowed token is mostly harmless because parking
// workers re-scan for visible work, and the residual stall window is the
// supervisor watchdog's job — which is exactly what the hook exists to
// exercise. wakeAll never consults it.
func (rt *Runtime) wakeOne() {
	if h := rt.wakeHook; h != nil && !h() {
		return
	}
	if rt.idle.Load() == 0 {
		return
	}
	n := len(rt.workers)
	start := int(rt.wakeRR.Add(1))
	for i := 0; i < n; i++ {
		if rt.wakeWorker(rt.workers[(start+i)%n]) {
			return
		}
	}
}

// wakeAll wakes every parked worker (shutdown, cancellation).
func (rt *Runtime) wakeAll() {
	for _, w := range rt.workers {
		rt.wakeWorker(w)
	}
}
