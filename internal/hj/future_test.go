package hj

import (
	"sync/atomic"
	"testing"
)

func TestFutureBasic(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		rt.Finish(func(ctx *Ctx) {
			f := AsyncFuture(ctx, func(*Ctx) int { return 42 })
			if got := f.Get(ctx); got != 42 {
				t.Errorf("Get = %d", got)
			}
			// Get is idempotent.
			if got := f.Get(ctx); got != 42 {
				t.Errorf("second Get = %d", got)
			}
			if !f.Ready() {
				t.Error("Ready = false after Get")
			}
		})
	})
}

// TestFutureFib computes fib via recursive futures — the canonical
// async/finish + futures exercise, and a deadlock check: every Get
// happens on workers that must help each other.
func TestFutureFib(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		var fib func(ctx *Ctx, n int) int
		fib = func(ctx *Ctx, n int) int {
			if n < 2 {
				return n
			}
			left := AsyncFuture(ctx, func(c *Ctx) int { return fib(c, n-1) })
			right := fib(ctx, n-2)
			return left.Get(ctx) + right
		}
		var got int
		rt.Finish(func(ctx *Ctx) { got = fib(ctx, 18) })
		if got != 2584 {
			t.Fatalf("fib(18) = %d, want 2584", got)
		}
	})
}

func TestFutureSingleWorkerNoDeadlock(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		rt.Finish(func(ctx *Ctx) {
			// A chain of futures each waiting on the next; with one
			// worker, Get must help or this deadlocks.
			fs := make([]*Future[int], 10)
			for i := range fs {
				i := i
				fs[i] = AsyncFuture(ctx, func(c *Ctx) int { return i * i })
			}
			sum := 0
			for _, f := range fs {
				sum += f.Get(ctx)
			}
			if sum != 285 {
				t.Errorf("sum = %d, want 285", sum)
			}
		})
	})
}

func TestFutureWaitFromOutside(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	defer rt.Shutdown()
	results := make(chan int, 1)
	rt.Finish(func(ctx *Ctx) {
		f := AsyncFuture(ctx, func(*Ctx) int { return 7 })
		results <- f.Wait() // Wait also works on workers here because the value closes ch
	})
	if got := <-results; got != 7 {
		t.Fatalf("Wait = %d", got)
	}
}

func TestForAsyncCoversAllIndices(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		for _, grain := range []int{1, 3, 7, 100, 1000} {
			const n = 500
			var hits [n]atomic.Int32
			rt.Finish(func(ctx *Ctx) {
				ctx.ForAsync(n, grain, func(c *Ctx, i int) {
					hits[i].Add(1)
				})
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("grain %d: index %d hit %d times", grain, i, hits[i].Load())
				}
			}
		}
	})
}

func TestForAsyncZeroIterations(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		ran := atomic.Int32{}
		rt.Finish(func(ctx *Ctx) {
			ctx.ForAsync(0, 1, func(*Ctx, int) { ran.Add(1) })
			ctx.ForAsync(5, 0, func(*Ctx, int) { ran.Add(1) }) // grain<1 defaults to 1
		})
		if ran.Load() != 5 {
			t.Fatalf("ran = %d, want 5", ran.Load())
		}
	})
}

func BenchmarkFutureFanIn(b *testing.B) {
	rt := NewRuntime(Config{})
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Finish(func(ctx *Ctx) {
			fs := make([]*Future[int], 64)
			for j := range fs {
				j := j
				fs[j] = AsyncFuture(ctx, func(*Ctx) int { return j })
			}
			sum := 0
			for _, f := range fs {
				sum += f.Get(ctx)
			}
			if sum != 64*63/2 {
				b.Fatal("bad sum")
			}
		})
	}
}
