package hj

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hjdes/internal/obs"
)

// Task is the body of an HJ async task. The Ctx argument identifies the
// worker the task is running on and carries the task's Immediately
// Enclosing Finish (IEF); it must not be retained after the task returns.
type Task func(ctx *Ctx)

// IndexedTask is a task body taking a small integer argument. Spawning
// with AsyncIdx/AsyncIdxOn lets a caller fan tasks out over an indexed
// domain (the DES engine's circuit nodes) through one shared function
// value instead of allocating a fresh closure per spawn.
type IndexedTask func(ctx *Ctx, idx int32)

// task is the internal spawned-task record: the body plus its IEF.
// Records are recycled through per-worker free lists (see worker.newTask
// / worker.recycle), so steady-state spawning allocates nothing; next is
// the intrusive link used by both the free list and the worker mailboxes
// (a task is never on both at once).
type task struct {
	fn   Task
	ifn  IndexedTask
	idx  int32
	fin  *finishScope
	next *task
}

// finishScope tracks the outstanding tasks of one dynamic finish instance.
// count holds the number of registered-but-incomplete tasks (the finish
// body itself counts as one); when it reaches zero the scope is complete
// and done is closed for external waiters.
type finishScope struct {
	count atomic.Int64
	done  chan struct{}
}

func newFinishScope() *finishScope {
	f := &finishScope{done: make(chan struct{})}
	f.count.Store(1) // the body
	return f
}

func (f *finishScope) register() { f.count.Add(1) }

func (f *finishScope) complete() {
	if f.count.Add(-1) == 0 {
		close(f.done)
	}
}

func (f *finishScope) finished() bool { return f.count.Load() == 0 }

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines (HJlib's "number of
	// workers", typically one per core). Zero means runtime.GOMAXPROCS(0).
	Workers int
	// StealTries is the number of random-victim rounds a worker attempts
	// before parking. Zero means a default proportional to Workers.
	StealTries int
	// StealMax caps how many tasks one steal round may transfer (the
	// stealHalf batch bound). Zero means defaultStealMax; 1 restores the
	// classic one-task-per-round Chase–Lev steal (the ablation baseline).
	StealMax int
	// Seed seeds the per-worker victim selection. Zero means a fixed
	// default so runs are reproducible.
	Seed int64
	// Trace, when non-nil, attaches a flight recorder: each worker owns
	// ring shard = its worker id and records task spawns, steals and
	// parks. Nil (the default) costs the hot paths one nil check.
	Trace *obs.Recorder
	// TaskHook, when non-nil, runs before every task body with the
	// executing worker's id. It is the scheduler-level fault-injection
	// point: a panic inside the hook is contained exactly like a panic in
	// the task body (TaskPanic + cancellation). Must be safe for
	// concurrent use. Nil costs the execute path one branch.
	TaskHook func(worker int)
	// WakeHook, when non-nil, intercepts single-worker wakeups (wakeOne):
	// returning false swallows the wake token, and the hook may sleep to
	// delay the wakeup. Cancellation/shutdown broadcasts (wakeAll) bypass
	// it, so a chaotic runtime can always be stopped. Must be safe for
	// concurrent use.
	WakeHook func() bool
}

// defaultStealMax bounds one stealHalf round. Half the victim's queue is
// already the balancing ideal; the cap just keeps one round's latency (and
// the thief's deque growth) bounded on very deep victim queues.
const defaultStealMax = 16

// taskFreeCap bounds each worker's task-record free list. Records are 6
// words, so the cap costs at most ~48KB per worker while covering any
// realistic in-flight task burst.
const taskFreeCap = 1024

// idleSpins is how many failed find-work rounds a worker tolerates
// (yielding between them) before parking. Parking is cheap with
// per-worker parkers, so the spin phase is short: it exists to catch the
// common "a task arrives immediately" case without a park/wake round trip.
const idleSpins = 4

// Runtime is a work-stealing task scheduler: the Go analog of the HJlib
// runtime. Create one with NewRuntime, submit work with Finish (which
// blocks until the whole task tree completes), and release the workers
// with Shutdown.
type Runtime struct {
	workers  []*worker
	injector injectorQueue // tasks submitted from outside worker context

	idle    atomic.Int32  // number of workers currently published as parked
	wakeRR  atomic.Uint32 // rotating wakeOne start index
	stopped atomic.Bool

	stealTries int
	stealMax   int
	taskHook   func(worker int)
	wakeHook   func() bool

	extSpawns atomic.Int64 // root tasks submitted via Runtime.Finish

	// Cancellation and panic containment: Cancel (or a contained task
	// panic) closes cancelCh, sets canceledA, and wakes every worker.
	// Outstanding Finish calls return immediately; the Runtime is dead
	// afterwards and must be Shutdown/discarded.
	cancelCh   chan struct{}
	cancelOnce sync.Once
	canceledA  atomic.Bool
	failure    atomic.Pointer[TaskPanic] // first contained task panic

	globalIso sync.Mutex // backs the object-free Isolated construct
}

// TaskPanic is a panic recovered inside a worker: instead of crashing the
// process, the runtime records the first one, cancels the run, and
// reports it through Runtime.Err.
type TaskPanic struct {
	Worker int    // worker that executed the panicking task
	Value  any    // recovered panic value
	Stack  []byte // stack of the panicking goroutine
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("hj: task panicked on worker %d: %v", p.Worker, p.Value)
}

// ErrCanceled is returned by Runtime.Err after an external Cancel with no
// contained panic.
var ErrCanceled = fmt.Errorf("hj: runtime canceled")

// injectorQueue is a small mutex-guarded ring FIFO for externally
// submitted tasks. It is off the hot path: the DES application submits
// one root task per simulation. Popped slots are nil-ed so the queue
// never retains completed task records (the old head-shift slice kept
// every popped pointer alive in the backing array), and the atomic size
// mirror lets the workers' find-work and park-recheck paths probe
// emptiness without the mutex.
type injectorQueue struct {
	mu   sync.Mutex
	buf  []*task
	head int
	n    int
	size atomic.Int32
}

func (q *injectorQueue) push(t *task) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		nb := make([]*task, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = nb, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
	q.size.Store(int32(q.n))
	q.mu.Unlock()
}

func (q *injectorQueue) pop() *task {
	if q.size.Load() == 0 {
		return nil
	}
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.size.Store(int32(q.n))
	q.mu.Unlock()
	return t
}

func (q *injectorQueue) empty() bool { return q.size.Load() == 0 }

// worker is one scheduling loop bound to a wsDeque. The fields before the
// pad are touched (almost) exclusively by the owning worker; the fields
// after it — the mailbox head and the parker — are written by other
// workers (submit-to-owner spawns, wakeups), so the pad keeps that
// cross-worker traffic off the owner's hot cache lines.
type worker struct {
	id       int
	rt       *Runtime
	deque    *wsDeque
	rng      *rand.Rand
	ctx      Ctx
	freeTask *task // intrusive free list of recycled task records
	freeLen  int
	stats    workerStats
	trace    *obs.Ring // flight-recorder shard; nil when tracing is off

	_ [64]byte

	// mailbox is an intrusive Treiber stack of tasks submitted to this
	// worker by AsyncOn from other workers. Multi-producer (CAS push),
	// single-consumer: only the owner pops, and only with a wholesale
	// Swap(nil) — never a pop-one CAS — which is what makes the recycled
	// task records ABA-safe.
	mailbox atomic.Pointer[task]
	parker  parker
}

// NewRuntime starts cfg.Workers worker goroutines and returns the runtime.
func NewRuntime(cfg Config) *Runtime {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	rt := &Runtime{workers: make([]*worker, n), cancelCh: make(chan struct{})}
	rt.stealTries = cfg.StealTries
	if rt.stealTries <= 0 {
		rt.stealTries = 2 * n
	}
	rt.stealMax = cfg.StealMax
	if rt.stealMax <= 0 {
		rt.stealMax = defaultStealMax
	}
	rt.taskHook = cfg.TaskHook
	rt.wakeHook = cfg.WakeHook
	for i := 0; i < n; i++ {
		w := &worker{
			id:     i,
			rt:     rt,
			deque:  newWSDeque(),
			rng:    rand.New(rand.NewSource(seed + int64(i)*1664525 + 1013904223)),
			parker: newParker(),
		}
		w.ctx.worker = w
		w.trace = cfg.Trace.Ring(i) // nil recorder → nil ring
		rt.workers[i] = w
	}
	for _, w := range rt.workers {
		go w.run()
	}
	return rt
}

// NumWorkers reports the number of worker goroutines.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Finish runs body as the root task of a new finish scope and blocks the
// calling goroutine until body and every task transitively spawned inside
// it (via Ctx.Async) have completed. It is the library analog of HJlib's
//
//	finish(() -> { body });
//
// issued from the main program. Finish may be called repeatedly, but not
// after Shutdown.
func (rt *Runtime) Finish(body Task) {
	fin := newFinishScope()
	t := &task{fin: fin, fn: body}
	rt.injector.push(t)
	rt.extSpawns.Add(1)
	rt.wakeOne()
	select {
	case <-fin.done:
	case <-rt.cancelCh:
		// Canceled (externally or by a contained panic): abandon the
		// scope; the caller must consult Err.
	}
}

// Cancel stops the runtime mid-run: workers exit, outstanding Finish
// calls return without waiting for their task trees, and Err reports
// ErrCanceled (or the contained TaskPanic that triggered cancellation).
// Like Shutdown, it is terminal. Safe to call from any goroutine,
// repeatedly.
func (rt *Runtime) Cancel() {
	rt.cancelOnce.Do(func() {
		rt.canceledA.Store(true)
		close(rt.cancelCh)
		rt.wakeAll()
	})
}

// Err reports why the runtime died: the first contained task panic, or
// ErrCanceled after an external Cancel. It returns nil while the runtime
// is healthy (including after a clean Shutdown).
func (rt *Runtime) Err() error {
	if p := rt.failure.Load(); p != nil {
		return p
	}
	if rt.canceledA.Load() {
		return ErrCanceled
	}
	return nil
}

// Shutdown stops all workers. Outstanding tasks are abandoned; callers
// should only invoke it after their final Finish has returned. A Runtime
// cannot be restarted.
func (rt *Runtime) Shutdown() {
	rt.stopped.Store(true)
	rt.wakeAll()
}

// dead reports whether the runtime has been shut down or canceled.
func (rt *Runtime) dead() bool { return rt.stopped.Load() || rt.canceledA.Load() }

// Quiescent reports whether the runtime is healthy and idle: alive (not
// canceled, not shut down, no contained panic) with no task visible in
// the injector, any deque, or any mailbox. It is the leak/reset check a
// runtime pool runs between jobs — a caller that sees a non-nil error
// must not hand the runtime to another job. Only meaningful between
// Finish calls (a mid-run runtime legitimately has work everywhere).
func (rt *Runtime) Quiescent() error {
	if err := rt.Err(); err != nil {
		return fmt.Errorf("hj: runtime not reusable: %w", err)
	}
	if rt.stopped.Load() {
		return fmt.Errorf("hj: runtime not reusable: shut down")
	}
	if !rt.injector.empty() {
		return fmt.Errorf("hj: runtime not quiescent: injector holds tasks")
	}
	for _, w := range rt.workers {
		if n := w.deque.sizeHint(); n > 0 {
			return fmt.Errorf("hj: runtime not quiescent: worker %d deque holds %d tasks", w.id, n)
		}
		if w.mailbox.Load() != nil {
			return fmt.Errorf("hj: runtime not quiescent: worker %d mailbox not drained", w.id)
		}
	}
	return nil
}

// workVisibleTo reports whether any work w could run appears to exist:
// the injector, w's own mailbox, or any deque (stealable). Other workers'
// mailboxes are excluded — only their owners can drain them, and the
// submitting side wakes the owner directly. Used between prepark and
// blocking, so a task published before the check is never missed (see the
// parker protocol comment).
func (rt *Runtime) workVisibleTo(w *worker) bool {
	if !rt.injector.empty() {
		return true
	}
	if w.mailbox.Load() != nil {
		return true
	}
	for _, v := range rt.workers {
		if v.deque.sizeHint() > 0 {
			return true
		}
	}
	return false
}

// newTask returns a task record from the worker's free list, or a fresh
// allocation when the list is empty. Only the owning worker calls it.
func (w *worker) newTask(fn Task, fin *finishScope) *task {
	t := w.takeFree()
	t.fn, t.fin = fn, fin
	return t
}

func (w *worker) newIdxTask(fn IndexedTask, idx int32, fin *finishScope) *task {
	t := w.takeFree()
	t.ifn, t.idx, t.fin = fn, idx, fin
	return t
}

func (w *worker) takeFree() *task {
	if t := w.freeTask; t != nil {
		w.freeTask = t.next
		w.freeLen--
		t.next = nil
		return t
	}
	return new(task)
}

// recycle returns an executed task record to the worker's free list. The
// record must be unreachable from every queue (it has been executed).
// Whichever worker executed the task recycles it, so a record spawned on
// one worker and stolen by another simply migrates between free lists.
func (w *worker) recycle(t *task) {
	t.fn, t.ifn, t.fin = nil, nil, nil
	if w.freeLen >= taskFreeCap {
		t.next = nil
		return
	}
	t.next = w.freeTask
	w.freeTask = t
	w.freeLen++
}

// run is the top-level worker loop: execute local work, steal, park.
// Cancellation (external or after a contained panic) is checked at the
// find-work/park points: before taking new work and around waiting.
func (w *worker) run() {
	rt := w.rt
	spins := 0
	for {
		if rt.canceledA.Load() {
			return
		}
		if t := w.findWork(); t != nil {
			w.execute(t)
			spins = 0
			continue
		}
		if spins++; spins < idleSpins {
			runtime.Gosched()
			continue
		}
		spins = 0
		// Park. prepark publishes parked=true before the work re-scan, so
		// a task pushed concurrently is either seen here or its pusher
		// sees us parked and wakes us.
		w.prepark()
		if rt.dead() || rt.workVisibleTo(w) {
			w.cancelPark()
			if rt.dead() {
				return
			}
			continue
		}
		w.stats.parks.Add(1)
		w.trace.Record(obs.EvPark, 0, 0)
		<-w.parker.ch
	}
}

// findWork returns the next task: own deque first (LIFO), then the
// mailbox, then the injector, then random-victim batch stealing.
func (w *worker) findWork() *task {
	if t := w.deque.popBottom(); t != nil {
		return t
	}
	if t := w.drainMailbox(); t != nil {
		return t
	}
	if t := w.rt.injector.pop(); t != nil {
		return t
	}
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	for attempt := 0; attempt < w.rt.stealTries; attempt++ {
		victim := w.rt.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		t, taken, retry := victim.deque.stealHalf(w.deque, w.rt.stealMax)
		if t != nil {
			w.stats.steals.Add(1)
			w.stats.stolenTasks.Add(int64(taken))
			w.trace.Record(obs.EvSteal, int64(victim.id), int64(taken))
			if taken > 1 {
				// The surplus sits in our deque now; offer it to another
				// thief instead of letting it wait for us.
				w.rt.wakeOne()
			}
			return t
		}
		if retry {
			attempt-- // lost a race; that victim still has work
		}
	}
	return nil
}

// drainMailbox takes the whole submitted-task chain at once, returns one
// task to run and pushes the rest onto the worker's own deque, where they
// are stealable like any local spawn.
func (w *worker) drainMailbox() *task {
	head := w.mailbox.Swap(nil)
	if head == nil {
		return nil
	}
	next := head.next
	head.next = nil
	if next != nil {
		for t := next; t != nil; {
			nx := t.next
			t.next = nil
			w.deque.pushBottom(t)
			t = nx
		}
		w.rt.wakeOne()
	}
	return head
}

// execute runs one task with the worker's Ctx bound to the task's IEF.
// Lock ownership is scoped to the task: heldBase marks where this task's
// locks begin in the shared held slice, so a worker helping inside a
// nested Finish while the outer task holds locks cannot release them.
func (w *worker) execute(t *task) {
	prevFin, prevBase := w.ctx.fin, w.ctx.heldBase
	w.ctx.fin = t.fin
	w.ctx.heldBase = len(w.ctx.held)
	w.runContained(t)
	// The paper's lock API scopes lock ownership to the async task; a
	// task that returns (or panics) while holding locks would poison the
	// whole simulation, so leaked locks are released here and counted.
	if leaked := len(w.ctx.held) - w.ctx.heldBase; leaked > 0 {
		w.stats.leakedLocks.Add(int64(leaked))
		w.ctx.ReleaseAllLocks()
	}
	w.ctx.fin = prevFin
	w.ctx.heldBase = prevBase
	fin := t.fin
	w.recycle(t)
	fin.complete()
}

// runContained executes the task body, converting a panic into a recorded
// TaskPanic plus runtime cancellation instead of crashing the process.
func (w *worker) runContained(t *task) {
	defer func() {
		if r := recover(); r != nil {
			w.rt.failure.CompareAndSwap(nil, &TaskPanic{
				Worker: w.id, Value: r, Stack: debug.Stack(),
			})
			w.rt.Cancel()
		}
	}()
	if h := w.rt.taskHook; h != nil {
		h(w.id)
	}
	if t.ifn != nil {
		t.ifn(&w.ctx, t.idx)
		return
	}
	t.fn(&w.ctx)
}

// helpUntil runs tasks until the scope completes. It is the help-first
// join used when a worker blocks at the end of a nested Finish. Idling
// follows the same spin-then-park policy as the main loop (the parked
// worker is wakeable by any pusher), with the scope's own completion as
// an additional wake source.
func (w *worker) helpUntil(fin *finishScope) {
	rt := w.rt
	spins := 0
	for !fin.finished() {
		if rt.canceledA.Load() {
			return
		}
		if t := w.findWork(); t != nil {
			w.execute(t)
			spins = 0
			continue
		}
		if spins++; spins < idleSpins {
			runtime.Gosched()
			continue
		}
		spins = 0
		w.prepark()
		if fin.finished() || rt.dead() || rt.workVisibleTo(w) {
			w.cancelPark()
			continue
		}
		w.stats.helpParks.Add(1)
		w.trace.Record(obs.EvPark, 1, 0)
		select {
		case <-w.parker.ch:
			// Claimed and woken by a pusher; loop and look for its work.
		case <-fin.done:
			w.cancelPark()
		}
	}
}

// Ctx is the per-worker execution context handed to every Task. It gives
// access to task spawning (Async), nested joins (Finish), mutual exclusion
// (Isolated) and the fine-grained lock API (TryLock / ReleaseAllLocks).
type Ctx struct {
	worker   *worker
	fin      *finishScope
	held     []*Lock // locks held, all tasks on this worker's call stack
	heldBase int     // index in held where the current task's locks begin
}

// WorkerID reports the identity of the worker executing the task, in
// [0, NumWorkers).
func (c *Ctx) WorkerID() int { return c.worker.id }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.worker.rt }

// Async spawns fn as a new child task of the current task's IEF, exactly
// like HJlib's async(() -> ...). The task is pushed on the calling
// worker's deque and may run before, after, or in parallel with the
// remainder of the caller.
func (c *Ctx) Async(fn Task) {
	c.fin.register()
	w := c.worker
	w.deque.pushBottom(w.newTask(fn, c.fin))
	w.stats.spawns.Add(1)
	w.trace.Record(obs.EvSpawn, -1, -1)
	w.rt.wakeOne()
}

// AsyncIdx is Async for an IndexedTask: fn is a shared function value and
// idx travels in the task record, so spawning allocates no closure.
func (c *Ctx) AsyncIdx(fn IndexedTask, idx int32) {
	c.fin.register()
	w := c.worker
	w.deque.pushBottom(w.newIdxTask(fn, idx, c.fin))
	w.stats.spawns.Add(1)
	w.trace.Record(obs.EvSpawn, int64(idx), -1)
	w.rt.wakeOne()
}

// AsyncOn spawns fn as a child of the current IEF on a specific worker:
// the task is posted to that worker's mailbox (and the worker woken if
// parked) instead of the caller's deque. It is the locality-aware submit
// path — a caller that knows which worker owns a task's data sends the
// task to its owner rather than forcing a steal. Posting to the calling
// worker degenerates to Async. worker must be in [0, NumWorkers).
func (c *Ctx) AsyncOn(worker int, fn Task) {
	c.asyncOn(worker, c.worker.newTask(fn, c.fin))
}

// AsyncIdxOn combines AsyncOn's submit-to-owner routing with AsyncIdx's
// closure-free indexed spawn.
func (c *Ctx) AsyncIdxOn(worker int, fn IndexedTask, idx int32) {
	c.asyncOn(worker, c.worker.newIdxTask(fn, idx, c.fin))
}

func (c *Ctx) asyncOn(target int, t *task) {
	w := c.worker
	rt := w.rt
	if target < 0 || target >= len(rt.workers) {
		panic(fmt.Sprintf("hj: AsyncOn worker %d out of range [0,%d)", target, len(rt.workers)))
	}
	t.fin.register()
	w.stats.spawns.Add(1)
	w.trace.Record(obs.EvSpawn, int64(t.idx), int64(target))
	tw := rt.workers[target]
	if tw == w {
		w.deque.pushBottom(t)
		rt.wakeOne()
		return
	}
	for {
		old := tw.mailbox.Load()
		t.next = old
		if tw.mailbox.CompareAndSwap(old, t) {
			break
		}
	}
	w.stats.remoteSpawns.Add(1)
	// Wake the owner if it is parked; if it is busy it will drain the
	// mailbox on its next find-work round.
	rt.wakeWorker(tw)
}

// Finish runs body inline under a fresh nested finish scope and blocks
// until body and all tasks transitively spawned within it complete. While
// blocked, the worker helps execute pending tasks, so nested Finish never
// idles a core.
func (c *Ctx) Finish(body Task) {
	parent := c.fin
	fin := newFinishScope()
	c.fin = fin
	body(c)
	fin.complete()
	c.fin = parent
	c.worker.helpUntil(fin)
}

// String implements fmt.Stringer for debugging.
func (c *Ctx) String() string {
	return fmt.Sprintf("hj.Ctx{worker=%d, heldLocks=%d}", c.worker.id, len(c.held))
}
