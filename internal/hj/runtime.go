package hj

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Task is the body of an HJ async task. The Ctx argument identifies the
// worker the task is running on and carries the task's Immediately
// Enclosing Finish (IEF); it must not be retained after the task returns.
type Task func(ctx *Ctx)

// task is the internal spawned-task record: the body plus its IEF.
type task struct {
	fn  Task
	fin *finishScope
}

// finishScope tracks the outstanding tasks of one dynamic finish instance.
// count holds the number of registered-but-incomplete tasks (the finish
// body itself counts as one); when it reaches zero the scope is complete
// and done is closed for external waiters.
type finishScope struct {
	count atomic.Int64
	done  chan struct{}
}

func newFinishScope() *finishScope {
	f := &finishScope{done: make(chan struct{})}
	f.count.Store(1) // the body
	return f
}

func (f *finishScope) register() { f.count.Add(1) }

func (f *finishScope) complete() {
	if f.count.Add(-1) == 0 {
		close(f.done)
	}
}

func (f *finishScope) finished() bool { return f.count.Load() == 0 }

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines (HJlib's "number of
	// workers", typically one per core). Zero means runtime.GOMAXPROCS(0).
	Workers int
	// StealTries is the number of random-victim rounds a worker attempts
	// before parking. Zero means a default proportional to Workers.
	StealTries int
	// Seed seeds the per-worker victim selection. Zero means a fixed
	// default so runs are reproducible.
	Seed int64
}

// Runtime is a work-stealing task scheduler: the Go analog of the HJlib
// runtime. Create one with NewRuntime, submit work with Finish (which
// blocks until the whole task tree completes), and release the workers
// with Shutdown.
type Runtime struct {
	workers  []*worker
	injector injectorQueue // tasks submitted from outside worker context

	mu       sync.Mutex
	cond     *sync.Cond
	idle     int
	idleHint atomic.Int32 // mirror of idle for lock-free reads by pushers
	stopped  bool

	// Cancellation and panic containment: Cancel (or a contained task
	// panic) closes cancelCh, sets canceledA, and wakes every worker.
	// Outstanding Finish calls return immediately; the Runtime is dead
	// afterwards and must be Shutdown/discarded.
	cancelCh   chan struct{}
	cancelOnce sync.Once
	canceledA  atomic.Bool
	failure    atomic.Pointer[TaskPanic] // first contained task panic

	globalIso sync.Mutex // backs the object-free Isolated construct

	stats Stats
}

// TaskPanic is a panic recovered inside a worker: instead of crashing the
// process, the runtime records the first one, cancels the run, and
// reports it through Runtime.Err.
type TaskPanic struct {
	Worker int    // worker that executed the panicking task
	Value  any    // recovered panic value
	Stack  []byte // stack of the panicking goroutine
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("hj: task panicked on worker %d: %v", p.Worker, p.Value)
}

// ErrCanceled is returned by Runtime.Err after an external Cancel with no
// contained panic.
var ErrCanceled = fmt.Errorf("hj: runtime canceled")

// injectorQueue is a small mutex-guarded FIFO for externally submitted
// tasks. It is off the hot path: the DES application submits one root task
// per simulation.
type injectorQueue struct {
	mu    sync.Mutex
	tasks []*task
}

func (q *injectorQueue) push(t *task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

func (q *injectorQueue) pop() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t
}

func (q *injectorQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks) == 0
}

// worker is one scheduling loop bound to a wsDeque.
type worker struct {
	id    int
	rt    *Runtime
	deque *wsDeque
	rng   *rand.Rand
	ctx   Ctx
}

// NewRuntime starts cfg.Workers worker goroutines and returns the runtime.
func NewRuntime(cfg Config) *Runtime {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	rt := &Runtime{workers: make([]*worker, n), cancelCh: make(chan struct{})}
	rt.cond = sync.NewCond(&rt.mu)
	rt.stats.stealTries = cfg.StealTries
	if rt.stats.stealTries <= 0 {
		rt.stats.stealTries = 2 * n
	}
	for i := 0; i < n; i++ {
		w := &worker{
			id:    i,
			rt:    rt,
			deque: newWSDeque(),
			rng:   rand.New(rand.NewSource(seed + int64(i)*1664525 + 1013904223)),
		}
		w.ctx.worker = w
		rt.workers[i] = w
	}
	for _, w := range rt.workers {
		go w.run()
	}
	return rt
}

// NumWorkers reports the number of worker goroutines.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Finish runs body as the root task of a new finish scope and blocks the
// calling goroutine until body and every task transitively spawned inside
// it (via Ctx.Async) have completed. It is the library analog of HJlib's
//
//	finish(() -> { body });
//
// issued from the main program. Finish may be called repeatedly, but not
// after Shutdown.
func (rt *Runtime) Finish(body Task) {
	fin := newFinishScope()
	t := &task{fin: fin, fn: body}
	rt.injector.push(t)
	rt.stats.Spawns.Add(1)
	rt.wakeOne()
	select {
	case <-fin.done:
	case <-rt.cancelCh:
		// Canceled (externally or by a contained panic): abandon the
		// scope; the caller must consult Err.
	}
}

// Cancel stops the runtime mid-run: workers exit, outstanding Finish
// calls return without waiting for their task trees, and Err reports
// ErrCanceled (or the contained TaskPanic that triggered cancellation).
// Like Shutdown, it is terminal. Safe to call from any goroutine,
// repeatedly.
func (rt *Runtime) Cancel() {
	rt.cancelOnce.Do(func() {
		rt.canceledA.Store(true)
		rt.mu.Lock()
		close(rt.cancelCh)
		rt.cond.Broadcast()
		rt.mu.Unlock()
	})
}

// Err reports why the runtime died: the first contained task panic, or
// ErrCanceled after an external Cancel. It returns nil while the runtime
// is healthy (including after a clean Shutdown).
func (rt *Runtime) Err() error {
	if p := rt.failure.Load(); p != nil {
		return p
	}
	if rt.canceledA.Load() {
		return ErrCanceled
	}
	return nil
}

// Shutdown stops all workers. Outstanding tasks are abandoned; callers
// should only invoke it after their final Finish has returned. A Runtime
// cannot be restarted.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	rt.stopped = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// Stats returns a snapshot of scheduler counters.
func (rt *Runtime) Stats() StatsSnapshot { return rt.stats.snapshot() }

// wakeOne nudges a parked worker if any are idle.
func (rt *Runtime) wakeOne() {
	if rt.idleHint.Load() == 0 {
		return
	}
	rt.mu.Lock()
	rt.cond.Signal()
	rt.mu.Unlock()
}

// anyWorkVisible reports whether any deque or the injector appears
// non-empty. It is used under rt.mu as the final check before parking, so
// a task pushed before the check is never missed.
func (rt *Runtime) anyWorkVisible() bool {
	if !rt.injector.empty() {
		return true
	}
	for _, w := range rt.workers {
		if w.deque.sizeHint() > 0 {
			return true
		}
	}
	return false
}

// run is the top-level worker loop: execute local work, steal, park.
// Cancellation (external or after a contained panic) is checked at the
// steal/park points: before taking new work and before/after waiting.
func (w *worker) run() {
	rt := w.rt
	for {
		if rt.canceledA.Load() {
			return
		}
		t := w.findWork()
		if t != nil {
			w.execute(t)
			continue
		}
		// Park. Re-check for work under the lock so a concurrent Async
		// cannot slip between our last scan and the wait.
		rt.mu.Lock()
		if rt.stopped || rt.canceledA.Load() {
			rt.mu.Unlock()
			return
		}
		if rt.anyWorkVisible() {
			rt.mu.Unlock()
			continue
		}
		rt.idle++
		rt.idleHint.Store(int32(rt.idle))
		rt.stats.Parks.Add(1)
		for !rt.stopped && !rt.canceledA.Load() && !rt.anyWorkVisible() {
			rt.cond.Wait()
		}
		rt.idle--
		rt.idleHint.Store(int32(rt.idle))
		dead := rt.stopped || rt.canceledA.Load()
		rt.mu.Unlock()
		if dead {
			return
		}
	}
}

// findWork returns the next task: own deque first (LIFO), then the
// injector, then random-victim stealing.
func (w *worker) findWork() *task {
	if t := w.deque.popBottom(); t != nil {
		return t
	}
	if t := w.rt.injector.pop(); t != nil {
		return t
	}
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	for attempt := 0; attempt < w.rt.stats.stealTries; attempt++ {
		victim := w.rt.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		t, retry := victim.deque.steal()
		if t != nil {
			w.rt.stats.Steals.Add(1)
			return t
		}
		if retry {
			attempt-- // lost a race; that victim still has work
		}
	}
	return nil
}

// execute runs one task with the worker's Ctx bound to the task's IEF.
// Lock ownership is scoped to the task: heldBase marks where this task's
// locks begin in the shared held slice, so a worker helping inside a
// nested Finish while the outer task holds locks cannot release them.
func (w *worker) execute(t *task) {
	prevFin, prevBase := w.ctx.fin, w.ctx.heldBase
	w.ctx.fin = t.fin
	w.ctx.heldBase = len(w.ctx.held)
	w.runContained(t)
	// The paper's lock API scopes lock ownership to the async task; a
	// task that returns (or panics) while holding locks would poison the
	// whole simulation, so leaked locks are released here and counted.
	if leaked := len(w.ctx.held) - w.ctx.heldBase; leaked > 0 {
		w.rt.stats.LeakedLocks.Add(int64(leaked))
		w.ctx.ReleaseAllLocks()
	}
	w.ctx.fin = prevFin
	w.ctx.heldBase = prevBase
	t.fin.complete()
}

// runContained executes the task body, converting a panic into a recorded
// TaskPanic plus runtime cancellation instead of crashing the process.
func (w *worker) runContained(t *task) {
	defer func() {
		if r := recover(); r != nil {
			w.rt.failure.CompareAndSwap(nil, &TaskPanic{
				Worker: w.id, Value: r, Stack: debug.Stack(),
			})
			w.rt.Cancel()
		}
	}()
	t.fn(&w.ctx)
}

// helpUntil runs tasks (or yields) until the scope completes. It is the
// help-first join used when a worker blocks at the end of a nested Finish.
func (w *worker) helpUntil(fin *finishScope) {
	spins := 0
	for !fin.finished() {
		if w.rt.canceledA.Load() {
			return
		}
		if t := w.findWork(); t != nil {
			w.execute(t)
			spins = 0
			continue
		}
		spins++
		if spins < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// Ctx is the per-worker execution context handed to every Task. It gives
// access to task spawning (Async), nested joins (Finish), mutual exclusion
// (Isolated) and the fine-grained lock API (TryLock / ReleaseAllLocks).
type Ctx struct {
	worker   *worker
	fin      *finishScope
	held     []*Lock // locks held, all tasks on this worker's call stack
	heldBase int     // index in held where the current task's locks begin
}

// WorkerID reports the identity of the worker executing the task, in
// [0, NumWorkers).
func (c *Ctx) WorkerID() int { return c.worker.id }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.worker.rt }

// Async spawns fn as a new child task of the current task's IEF, exactly
// like HJlib's async(() -> ...). The task is pushed on the calling
// worker's deque and may run before, after, or in parallel with the
// remainder of the caller.
func (c *Ctx) Async(fn Task) {
	c.fin.register()
	c.worker.deque.pushBottom(&task{fn: fn, fin: c.fin})
	c.worker.rt.stats.Spawns.Add(1)
	c.worker.rt.wakeOne()
}

// Finish runs body inline under a fresh nested finish scope and blocks
// until body and all tasks transitively spawned within it complete. While
// blocked, the worker helps execute pending tasks, so nested Finish never
// idles a core.
func (c *Ctx) Finish(body Task) {
	parent := c.fin
	fin := newFinishScope()
	c.fin = fin
	body(c)
	fin.complete()
	c.fin = parent
	c.worker.helpUntil(fin)
}

// String implements fmt.Stringer for debugging.
func (c *Ctx) String() string {
	return fmt.Sprintf("hj.Ctx{worker=%d, heldLocks=%d}", c.worker.id, len(c.held))
}
