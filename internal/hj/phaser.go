package hj

import "sync"

// Phaser is the barrier-style synchronization construct of the Habanero
// model (the paper's Section 3.2 lists phasers among the constructs that
// preserve deadlock freedom). This implementation supports the
// forall-phased pattern: a fixed set of participants repeatedly computes
// a phase and calls Next to wait for everyone.
//
// Unlike Async tasks — which are run-to-completion closures on the
// work-stealing deques and therefore cannot suspend mid-task — phased
// participants are long-running activities. ForAllPhased runs each
// participant on its own goroutine, exactly as the actor engine runs
// nodes; the deadlock-freedom argument is the classic cyclic-barrier
// one: every registered participant either reaches Next or returns
// (deregistering), so no phase can wait forever.
type Phaser struct {
	mu         sync.Mutex
	cond       *sync.Cond
	registered int
	arrived    int
	phase      int
}

// NewPhaser returns a phaser with the given number of registered
// participants.
func NewPhaser(participants int) *Phaser {
	if participants < 1 {
		panic("hj: NewPhaser needs at least one participant")
	}
	p := &Phaser{registered: participants}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Phase reports the current phase number (0-based).
func (p *Phaser) Phase() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phase
}

// Next signals the participant's arrival at the current phase and blocks
// until every registered participant has arrived, then advances the
// phase. It returns the new phase number.
func (p *Phaser) Next() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.arrived++
	if p.arrived >= p.registered {
		p.arrived = 0
		p.phase++
		p.cond.Broadcast()
		return p.phase
	}
	myPhase := p.phase
	for p.phase == myPhase {
		p.cond.Wait()
	}
	return p.phase
}

// Drop deregisters the calling participant (HJlib's phaser drop): the
// remaining participants no longer wait for it. If the dropper was the
// last arrival needed, the phase advances.
func (p *Phaser) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registered--
	if p.registered < 0 {
		panic("hj: Phaser.Drop without a registered participant")
	}
	if p.arrived >= p.registered && p.registered > 0 {
		p.arrived = 0
		p.phase++
		p.cond.Broadcast()
	}
	if p.registered == 0 {
		p.phase++
		p.cond.Broadcast()
	}
}

// ForAllPhased runs body(i, ph) for i in [0, n) as n phased activities
// sharing one phaser, and returns when all have finished — HJlib's
// forall construct with phaser registration. The body synchronizes
// phases with ph.Next(); a body that returns is automatically dropped
// from the phaser, so heterogeneous phase counts cannot deadlock.
func ForAllPhased(n int, body func(i int, ph *Phaser)) {
	if n <= 0 {
		return
	}
	ph := NewPhaser(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ph.Drop()
			body(i, ph)
		}(i)
	}
	wg.Wait()
}
