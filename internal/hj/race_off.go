//go:build !race

package hj

// raceEnabled reports whether the binary was built with -race. Tests that
// pin allocation counts skip under the race detector, whose instrumentation
// changes what allocates.
const raceEnabled = false
