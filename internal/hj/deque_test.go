package hj

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWSDequeOwnerLIFO(t *testing.T) {
	d := newWSDeque()
	tasks := make([]*task, 10)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBottom(tasks[i])
	}
	for i := 9; i >= 0; i-- {
		got := d.popBottom()
		if got != tasks[i] {
			t.Fatalf("popBottom order wrong at %d", i)
		}
	}
	if d.popBottom() != nil {
		t.Fatal("popBottom on empty deque returned a task")
	}
}

func TestWSDequeStealFIFO(t *testing.T) {
	d := newWSDeque()
	tasks := make([]*task, 10)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBottom(tasks[i])
	}
	for i := 0; i < 10; i++ {
		got, retry := d.steal()
		if retry {
			i--
			continue
		}
		if got != tasks[i] {
			t.Fatalf("steal order wrong at %d", i)
		}
	}
	if got, _ := d.steal(); got != nil {
		t.Fatal("steal on empty deque returned a task")
	}
}

func TestWSDequeGrowth(t *testing.T) {
	d := newWSDeque()
	n := (1 << initialDequeLogSize) * 4
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBottom(tasks[i])
	}
	if d.sizeHint() != int64(n) {
		t.Fatalf("sizeHint = %d, want %d", d.sizeHint(), n)
	}
	for i := n - 1; i >= 0; i-- {
		if d.popBottom() != tasks[i] {
			t.Fatalf("post-growth pop wrong at %d", i)
		}
	}
}

func TestWSDequeMixedOwnerOps(t *testing.T) {
	d := newWSDeque()
	a, b, c := &task{}, &task{}, &task{}
	d.pushBottom(a)
	d.pushBottom(b)
	if got := d.popBottom(); got != b {
		t.Fatal("expected b")
	}
	d.pushBottom(c)
	if got, _ := d.steal(); got != a {
		t.Fatal("expected steal to take a")
	}
	if got := d.popBottom(); got != c {
		t.Fatal("expected c")
	}
	if d.popBottom() != nil || d.sizeHint() != 0 {
		t.Fatal("deque should be empty")
	}
}

// TestWSDequeConcurrentExactlyOnce runs one owner (pushing and popping)
// against several thieves and checks every task is delivered exactly once.
func TestWSDequeConcurrentExactlyOnce(t *testing.T) {
	const total = 200000
	const thieves = 4
	d := newWSDeque()
	tasks := make([]task, total)
	index := make(map[*task]int, total)
	for i := range tasks {
		index[&tasks[i]] = i
	}
	delivered := make([]atomic.Int32, total)
	var count atomic.Int64

	record := func(tk *task) {
		if tk == nil {
			return
		}
		idx := index[tk] // read-only map access; safe concurrently
		if delivered[idx].Add(1) != 1 {
			t.Errorf("task %d delivered more than once", idx)
		}
		count.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, _ := d.steal()
				if tk != nil {
					record(tk)
					continue
				}
				select {
				case <-stop:
					// Final drain after the owner stops.
					for {
						tk, retry := d.steal()
						if tk != nil {
							record(tk)
						} else if !retry {
							return
						}
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < total; i++ {
		d.pushBottom(&tasks[i])
		if i%3 == 0 {
			record(d.popBottom())
		}
	}
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	close(stop)
	wg.Wait()

	// Anything left (thieves may have bailed while owner repushed) —
	// deque must be drainable to empty by the owner.
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	if count.Load() != total {
		t.Fatalf("delivered %d tasks, want %d", count.Load(), total)
	}
}
