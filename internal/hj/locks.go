package hj

import (
	"sync"
	"sync/atomic"
)

// Lock is the runtime-managed lock object behind the TRYLOCK /
// RELEASEALLLOCKS API the paper adds to the Habanero execution model
// (Section 3.2). As in the paper, it is implemented with a single
// compare-and-swap boolean (the analog of java.util.concurrent.atomic.
// AtomicBoolean): TryLock CASes false→true and ReleaseAllLocks stores
// false. Because acquisition never blocks, programs using this API retain
// HJlib's deadlock-freedom guarantee; livelock avoidance is the caller's
// job (the DES engine orders acquisitions by node ID).
//
// Each Lock carries a unique ID assigned at creation, used by Isolated to
// impose a global acquisition order.
type Lock struct {
	held atomic.Bool
	mu   *sync.Mutex // non-nil for mutex-backed locks (Section 4.5.2 ablation)
	id   uint64
}

var lockIDs atomic.Uint64

// NewLock returns a fresh unheld lock backed by a single atomic boolean
// — the paper's choice ("the lightweight AtomicBoolean ... instead of
// more complicated lock implementations", Section 4.5.2).
func NewLock() *Lock {
	return &Lock{id: lockIDs.Add(1)}
}

// NewMutexLock returns a lock backed by a sync.Mutex (acquired with
// TryLock, released with Unlock) — the heavier alternative the paper's
// Section 4.5.2 argues against (its ReentrantLock analog). It exists for
// the ablation benchmark comparing lock implementations.
func NewMutexLock() *Lock {
	return &Lock{id: lockIDs.Add(1), mu: new(sync.Mutex)}
}

// tryAcquire attempts the underlying acquisition.
func (l *Lock) tryAcquire() bool {
	if l.mu != nil {
		if !l.mu.TryLock() {
			return false
		}
		l.held.Store(true) // mirror for Held()
		return true
	}
	return l.held.CompareAndSwap(false, true)
}

// release drops the lock.
func (l *Lock) release() {
	if l.mu != nil {
		l.held.Store(false)
		l.mu.Unlock()
		return
	}
	l.held.Store(false)
}

// ID returns the lock's creation-ordered unique identifier.
func (l *Lock) ID() uint64 { return l.id }

// Held reports (racily) whether the lock is currently held. It exists for
// tests and diagnostics only.
func (l *Lock) Held() bool { return l.held.Load() }

// TryLock attempts to acquire l for the current async task. It returns
// true on success and false when some other task holds the lock; it never
// blocks. Acquired locks are tracked on the task and released together by
// ReleaseAllLocks (or automatically, with a leak warning counter, when the
// task returns).
func (c *Ctx) TryLock(l *Lock) bool {
	if l.tryAcquire() {
		c.held = append(c.held, l)
		c.worker.stats.lockAcquires.Add(1)
		return true
	}
	c.worker.stats.lockFailures.Add(1)
	return false
}

// ReleaseAllLocks releases every lock the current async task holds, in
// reverse acquisition order. It is a no-op when the task holds none.
func (c *Ctx) ReleaseAllLocks() {
	for i := len(c.held) - 1; i >= c.heldBase; i-- {
		c.held[i].release()
		c.held[i] = nil
	}
	c.held = c.held[:c.heldBase]
}

// Unlock releases one specific lock held by the current async task and
// reports whether it was held. The paper's optimized DES implementation
// needs this selective form: after moving ready events to the temporary
// queue, a node "releases all the locks of its input ports" while keeping
// its neighbors' port locks until event delivery finishes (Section 4.5.1).
func (c *Ctx) Unlock(l *Lock) bool {
	for i := len(c.held) - 1; i >= c.heldBase; i-- {
		if c.held[i] == l {
			l.release()
			c.held = append(c.held[:i], c.held[i+1:]...)
			return true
		}
	}
	return false
}

// HeldLocks reports how many locks the current async task holds.
func (c *Ctx) HeldLocks() int { return len(c.held) - c.heldBase }
