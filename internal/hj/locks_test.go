package hj

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestTryLockBasic(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		l := NewLock()
		rt.Finish(func(ctx *Ctx) {
			if !ctx.TryLock(l) {
				t.Error("TryLock on free lock failed")
			}
			if ctx.HeldLocks() != 1 {
				t.Errorf("HeldLocks = %d, want 1", ctx.HeldLocks())
			}
			if !l.Held() {
				t.Error("lock not marked held")
			}
			ctx.ReleaseAllLocks()
			if ctx.HeldLocks() != 0 || l.Held() {
				t.Error("ReleaseAllLocks did not release")
			}
		})
	})
}

func TestTryLockContention(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		l := NewLock()
		rt.Finish(func(ctx *Ctx) {
			if !ctx.TryLock(l) {
				t.Fatal("first TryLock failed")
			}
			done := make(chan bool, 1)
			ctx.Async(func(c *Ctx) {
				done <- c.TryLock(l)
			})
			if <-done {
				t.Error("second task acquired a held lock")
			}
			ctx.ReleaseAllLocks()
		})
	})
}

// TestTryLockMutualExclusion guards a non-atomic counter with TryLock;
// tasks that fail to acquire respawn themselves, exactly like the DES
// engine's RunNode. The final count proves mutual exclusion.
func TestTryLockMutualExclusion(t *testing.T) {
	withRuntime(t, 8, func(rt *Runtime) {
		l := NewLock()
		counter := 0 // deliberately not atomic
		const n = 5000
		var body func(c *Ctx)
		body = func(c *Ctx) {
			if !c.TryLock(l) {
				c.Async(body) // try again later
				return
			}
			counter++
			c.ReleaseAllLocks()
		}
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Async(body)
			}
		})
		if counter != n {
			t.Fatalf("counter = %d, want %d (mutual exclusion violated or tasks lost)", counter, n)
		}
	})
}

func TestReleaseAllLocksReleasesEverything(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		locks := make([]*Lock, 10)
		for i := range locks {
			locks[i] = NewLock()
		}
		rt.Finish(func(ctx *Ctx) {
			for _, l := range locks {
				if !ctx.TryLock(l) {
					t.Fatal("acquire failed on free lock")
				}
			}
			ctx.ReleaseAllLocks()
			for i, l := range locks {
				if l.Held() {
					t.Errorf("lock %d still held", i)
				}
			}
		})
	})
}

func TestLeakedLocksAutoReleased(t *testing.T) {
	withRuntime(t, 2, func(rt *Runtime) {
		l := NewLock()
		rt.Finish(func(ctx *Ctx) {
			ctx.Async(func(c *Ctx) {
				c.TryLock(l) // leak deliberately
			})
		})
		if l.Held() {
			t.Fatal("leaked lock was not auto-released at task exit")
		}
		if rt.Stats().LeakedLocks == 0 {
			t.Fatal("leak not counted")
		}
		// The lock must be reusable.
		rt.Finish(func(ctx *Ctx) {
			if !ctx.TryLock(l) {
				t.Error("lock unusable after auto-release")
			}
			ctx.ReleaseAllLocks()
		})
	})
}

func TestLockIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewLock().ID()
		if seen[id] {
			t.Fatalf("duplicate lock ID %d", id)
		}
		seen[id] = true
	}
}

func TestLockStatsCounted(t *testing.T) {
	withRuntime(t, 1, func(rt *Runtime) {
		l := NewLock()
		before := rt.Stats()
		rt.Finish(func(ctx *Ctx) {
			ctx.TryLock(l)
			ctx.TryLock(l) // second attempt on a held lock must fail
			ctx.ReleaseAllLocks()
		})
		delta := rt.Stats().Sub(before)
		if delta.LockAcquires != 1 {
			t.Fatalf("LockAcquires delta = %d, want 1", delta.LockAcquires)
		}
		if delta.LockFailures != 1 {
			t.Fatalf("LockFailures delta = %d, want 1", delta.LockFailures)
		}
	})
}

func TestIsolatedMutualExclusion(t *testing.T) {
	withRuntime(t, 8, func(rt *Runtime) {
		counter := 0 // not atomic; protected by Isolated
		const n = 20000
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Async(func(c *Ctx) {
					c.Isolated(func() { counter++ })
				})
			}
		})
		if counter != n {
			t.Fatalf("counter = %d, want %d", counter, n)
		}
	})
}

func TestIsolatedOnOverlappingSets(t *testing.T) {
	withRuntime(t, 8, func(rt *Runtime) {
		a, b, c := NewLock(), NewLock(), NewLock()
		counters := [3]int{} // guarded by a, b, c respectively
		const n = 3000       // divisible by 3 so the three groups are equal
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				i := i
				ctx.Async(func(cx *Ctx) {
					switch i % 3 {
					case 0:
						cx.IsolatedOn([]*Lock{a, b}, func() { counters[0]++; counters[1]++ })
					case 1:
						cx.IsolatedOn([]*Lock{b, c}, func() { counters[1]++; counters[2]++ })
					case 2:
						cx.IsolatedOn([]*Lock{c, a}, func() { counters[2]++; counters[0]++ })
					}
				})
			}
		})
		// Each counter is touched by two of the three groups; each group
		// has n/3 tasks incrementing two counters.
		want := 2 * n / 3
		for i, got := range counters {
			if got != want {
				t.Fatalf("counter %d = %d, want %d", i, got, want)
			}
		}
	})
}

// TestIsolatedOnNoDeadlock stresses overlapping lock sets acquired in
// conflicting user orders; ordered acquisition inside IsolatedOn must
// prevent deadlock.
func TestIsolatedOnNoDeadlock(t *testing.T) {
	withRuntime(t, 8, func(rt *Runtime) {
		locks := make([]*Lock, 6)
		for i := range locks {
			locks[i] = NewLock()
		}
		var count atomic.Int64
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 3000; i++ {
				i := i
				ctx.Async(func(c *Ctx) {
					// Present the locks in rotating (conflicting) orders.
					set := []*Lock{
						locks[i%6],
						locks[(i+3)%6],
						locks[(i+5)%6],
					}
					c.IsolatedOn(set, func() { count.Add(1) })
				})
			}
		})
		if count.Load() != 3000 {
			t.Fatalf("count = %d, want 3000", count.Load())
		}
	})
}

func TestIsolatedOnEmptySetFallsBackToGlobal(t *testing.T) {
	withRuntime(t, 4, func(rt *Runtime) {
		counter := 0
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < 2000; i++ {
				ctx.Async(func(c *Ctx) {
					c.IsolatedOn(nil, func() { counter++ })
				})
			}
		})
		if counter != 2000 {
			t.Fatalf("counter = %d", counter)
		}
	})
}

func BenchmarkTryLockUncontended(b *testing.B) {
	rt := NewRuntime(Config{Workers: 1})
	defer rt.Shutdown()
	l := NewLock()
	b.ResetTimer()
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.TryLock(l)
			ctx.ReleaseAllLocks()
		}
	})
}

func BenchmarkIsolatedGlobal(b *testing.B) {
	rt := NewRuntime(Config{})
	defer rt.Shutdown()
	b.ResetTimer()
	rt.Finish(func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Isolated(func() {})
		}
	})
}

// TestIsolatedOversubscribed runs IsolatedOn with far more workers than
// GOMAXPROCS. Pure Gosched spinning can starve a preempted lock holder
// when every P is occupied by a spinning waiter (each yield just picks
// another waiter); spinAcquire's parked-sleep escalation must let the
// holder run, so the test's only assertion is that it terminates (with a
// correct count) at 4× oversubscription, race detector included.
func TestIsolatedOversubscribed(t *testing.T) {
	workers := 4 * runtime.GOMAXPROCS(0)
	withRuntime(t, workers, func(rt *Runtime) {
		l := NewLock()
		counter := 0 // deliberately not atomic; IsolatedOn is the only guard
		tasks := 4 * workers
		perTask := 200
		rt.Finish(func(ctx *Ctx) {
			for i := 0; i < tasks; i++ {
				ctx.Async(func(c *Ctx) {
					for j := 0; j < perTask; j++ {
						c.IsolatedOn([]*Lock{l}, func() { counter++ })
					}
				})
			}
		})
		if want := tasks * perTask; counter != want {
			t.Fatalf("counter = %d, want %d", counter, want)
		}
	})
}
