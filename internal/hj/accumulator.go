package hj

// Accumulator is HJlib's finish accumulator: a reduction variable that
// any task may contribute to with Put, whose combined value becomes
// available once the enclosing Finish has joined all contributors. It
// keeps one padded lane per worker, so Put is contention-free, and it
// preserves deadlock freedom trivially (Put never blocks; Value is read
// after the join).
//
// The combining operation must be associative and commutative;
// contribution order is unspecified.
type Accumulator[T any] struct {
	op    func(a, b T) T
	ident T
	lanes []accLane[T]
}

// accLane pads each worker's slot to its own cache line to avoid false
// sharing on the Put fast path.
type accLane[T any] struct {
	val T
	_   [64]byte
}

// NewAccumulator creates an accumulator on rt with the given identity
// element and combining operation (e.g. 0 and +, 1 and *, -inf and max).
func NewAccumulator[T any](rt *Runtime, identity T, op func(a, b T) T) *Accumulator[T] {
	acc := &Accumulator[T]{op: op, ident: identity, lanes: make([]accLane[T], rt.NumWorkers())}
	acc.Reset()
	return acc
}

// Put combines v into the calling worker's lane.
func (a *Accumulator[T]) Put(c *Ctx, v T) {
	lane := &a.lanes[c.WorkerID()]
	lane.val = a.op(lane.val, v)
}

// Value combines all lanes. It must only be called when no task can
// still contribute — i.e. after the Finish enclosing the contributing
// asyncs has returned.
func (a *Accumulator[T]) Value() T {
	out := a.ident
	for i := range a.lanes {
		out = a.op(out, a.lanes[i].val)
	}
	return out
}

// Reset restores every lane to the identity, so the accumulator can be
// reused across phases.
func (a *Accumulator[T]) Reset() {
	for i := range a.lanes {
		a.lanes[i].val = a.ident
	}
}
