package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates flight-recorder event records.
type Kind uint8

// Flight-recorder event kinds, covering the scheduler (task spawn /
// steal / park), the LP transport (batch send / receive, null promise,
// block-for-input), the fault-injection lifecycle (checkpoint, restart)
// and the optimistic engines (commit, abort, rollback, BSP round).
const (
	EvNone       Kind = iota
	EvSpawn           // task spawned; A = task index (-1 for closures), B = target worker (-1 local)
	EvSteal           // steal round succeeded; A = victim worker, B = tasks taken
	EvPark            // worker parked for lack of work; A = 1 inside a nested join
	EvSend            // LP batch shipped; A = destination LP, B = batch length
	EvRecv            // LP batch applied; A = batch length
	EvNull            // standalone null promise sent; A = destination LP, B = promised bound
	EvBlock           // LP blocked waiting for input
	EvCheckpoint      // LP checkpoint taken; A = owned nodes
	EvRestart         // LP restored from checkpoint; A = restart count
	EvCommit          // speculative activity committed; A = item
	EvAbort           // speculative activity aborted; A = item
	EvRollback        // Time Warp rollback; A = node, B = events undone
	EvRound           // Time Warp BSP round barrier; A = round, B = GVT
	EvSlice           // fused-LP run-to-completion slice; A = events processed, B = safe horizon
)

var kindNames = [...]string{
	EvNone: "none", EvSpawn: "spawn", EvSteal: "steal", EvPark: "park",
	EvSend: "lp-send", EvRecv: "lp-recv", EvNull: "lp-null", EvBlock: "lp-block",
	EvCheckpoint: "checkpoint", EvRestart: "restart",
	EvCommit: "commit", EvAbort: "abort", EvRollback: "rollback", EvRound: "round",
	EvSlice: "lp-slice",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one drained flight-recorder record.
type Event struct {
	TS    int64 // nanoseconds since the recorder started
	Shard int32 // owning ring (worker / LP id)
	Kind  Kind
	A, B  int64 // kind-specific arguments
}

// DefaultRingCap is the per-shard record capacity when NewRecorder is
// given none. At 32 bytes of payload per slot this keeps a shard under
// ~200KB while holding far more history than a failure report prints.
const DefaultRingCap = 4096

// Recorder owns the per-shard trace rings of one traced run (or several:
// rings persist across runs and keep overwriting). The zero of tracing is
// a nil *Recorder — Ring returns nil and a nil *Ring's Record is a single
// branch, so the disabled hot path costs one predictable comparison.
type Recorder struct {
	start    time.Time
	shardCap int

	mu    sync.Mutex
	rings []*Ring
}

// NewRecorder returns a recorder whose rings hold perShardCap records
// each (rounded up to a power of two; <= 0 means DefaultRingCap).
func NewRecorder(perShardCap int) *Recorder {
	if perShardCap <= 0 {
		perShardCap = DefaultRingCap
	}
	n := 1
	for n < perShardCap {
		n <<= 1
	}
	return &Recorder{start: time.Now(), shardCap: n}
}

// Ring returns the ring for the given shard, creating rings up to that
// index on first use. Each ring must have exactly one writer (the worker
// or LP that owns the shard); Ring itself is safe to call from engine
// setup on any goroutine. A nil recorder returns a nil ring.
func (r *Recorder) Ring(shard int) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.rings) <= shard {
		r.rings = append(r.rings, &Ring{
			start: r.start,
			shard: int32(len(r.rings)),
			mask:  uint64(r.shardCap - 1),
			slots: make([]slot, r.shardCap),
		})
	}
	return r.rings[shard]
}

// Events drains every ring and returns all stable records sorted by
// timestamp. Safe to call concurrently with recording (records written
// mid-drain may or may not appear).
func (r *Recorder) Events() []Event {
	return r.drain(0)
}

// Tail returns the newest n records per shard, merged and sorted by
// timestamp — the failure-report view. n <= 0 means everything.
func (r *Recorder) Tail(n int) []Event {
	return r.drain(n)
}

func (r *Recorder) drain(perShard int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rings := append([]*Ring(nil), r.rings...)
	r.mu.Unlock()
	var out []Event
	for _, g := range rings {
		out = g.appendTail(out, perShard)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// slot is one ring entry. Fields are atomics so a drain racing the writer
// is well-defined (and race-detector clean); seq is a per-slot seqlock:
// the stable value for the record written at monotonic index i is 2i+2,
// and any other value means the slot is mid-write or already recycled.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64 // Kind
	a    atomic.Int64
	b    atomic.Int64
}

// Ring is one shard's fixed-size trace ring: a single-writer lock-free
// flight recorder. Record overwrites the oldest entry when full and never
// allocates; readers validate slots through the per-slot seqlock.
type Ring struct {
	start time.Time
	shard int32
	mask  uint64
	slots []slot

	w    uint64        // monotonic write count; owner-only
	wpos atomic.Uint64 // published copy of w for readers

	_ [32]byte
}

// Record appends one event. It must only be called by the ring's owning
// worker; on a nil ring (tracing disabled) it is a single branch. The
// enabled path is zero-alloc: one clock read plus five uncontended
// atomic stores into owner-written slots.
func (g *Ring) Record(k Kind, a, b int64) {
	if g == nil {
		return
	}
	i := g.w
	s := &g.slots[i&g.mask]
	s.seq.Store(2*i + 1) // mark mid-write: readers of the old record bail
	s.ts.Store(int64(time.Since(g.start)))
	s.meta.Store(uint64(k))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(2*i + 2) // stable
	g.w = i + 1
	g.wpos.Store(g.w)
}

// Shard reports the ring's shard index (worker / LP id).
func (g *Ring) Shard() int { return int(g.shard) }

// appendTail appends the newest n stable records (n <= 0: all retained)
// to out. Records overwritten or written concurrently with the read are
// skipped; the seqlock guarantees every returned record is consistent.
func (g *Ring) appendTail(out []Event, n int) []Event {
	if g == nil {
		return out
	}
	w := g.wpos.Load()
	span := w
	if span > uint64(len(g.slots)) {
		span = uint64(len(g.slots))
	}
	if n > 0 && span > uint64(n) {
		span = uint64(n)
	}
	for i := w - span; i < w; i++ {
		s := &g.slots[i&g.mask]
		if s.seq.Load() != 2*i+2 {
			continue // mid-write or recycled under us
		}
		ev := Event{
			TS:    s.ts.Load(),
			Shard: g.shard,
			Kind:  Kind(s.meta.Load()),
			A:     s.a.Load(),
			B:     s.b.Load(),
		}
		if s.seq.Load() != 2*i+2 {
			continue // overwritten while copying
		}
		out = append(out, ev)
	}
	return out
}
