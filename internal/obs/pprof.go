package obs

import (
	"context"
	"runtime/pprof"
)

// Labeled runs fn with pprof labels engine=<engine> phase=<phase>
// attached to the calling goroutine (and inherited by goroutines it
// starts, including every engine worker). CPU and goroutine profiles
// taken during a run can then be sliced per engine and per experiment
// phase with `go tool pprof -tagfocus`.
func Labeled(ctx context.Context, engine, phase string, fn func(ctx context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("engine", engine, "phase", phase), fn)
}
