package obs

import (
	"fmt"
	"strings"
)

// FormatEvents renders events one per line:
//
//	[shard 2] +1.234ms lp-send a=3 b=64
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "[shard %d] +%.3fms %s a=%d b=%d\n",
			ev.Shard, float64(ev.TS)/1e6, ev.Kind, ev.A, ev.B)
	}
	return b.String()
}

// FormatTail renders the newest n records per shard of a recorder — the
// compact dump appended to engine failure reports. Empty (and harmless)
// for a nil recorder or one that recorded nothing.
func FormatTail(r *Recorder, n int) string {
	events := r.Tail(n)
	if len(events) == 0 {
		return ""
	}
	return FormatEvents(events)
}
