package obs

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hjdes/internal/stats"
)

// Registry is a typed metrics registry with per-worker write sharding.
// Counter and Histogram return get-or-create handles (setup path, under a
// lock); the handles' write methods are the hot path and touch only the
// caller's own cache-line-padded shard. Snapshot merges the shards on
// demand.
//
// The shard count is fixed at construction and rounded up to a power of
// two; write methods mask the caller-supplied shard index, so callers may
// pass any nonnegative worker/LP id without bounds-checking against the
// registry.
type Registry struct {
	shards int
	mask   uint32

	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns a registry with the given number of write shards
// per metric (rounded up to a power of two). shards <= 0 means
// GOMAXPROCS.
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Registry{
		shards:   n,
		mask:     uint32(n - 1),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Shards reports the (power-of-two) shard count.
func (r *Registry) Shards() int { return r.shards }

// Counter returns the named counter, creating it on first use. Safe for
// concurrent use; intended for engine setup, not the per-event hot path
// (hold the returned handle instead).
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{mask: r.mask, shards: make([]paddedInt64, r.shards)}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. Safe
// for concurrent use; setup path only.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{mask: r.mask, shards: make([]histShard, r.shards)}
		r.hists[name] = h
	}
	return h
}

// MergeMetrics folds a finished run's flat metrics map into the registry
// (shard 0 — the map is already merged, so sharding it again would buy
// nothing).
func (r *Registry) MergeMetrics(m Metrics) {
	for k, v := range m {
		r.Counter(k).Add(0, v)
	}
}

// Snapshot is a point-in-time merge of every registered metric.
type Snapshot struct {
	Counters Metrics
	Hists    map[string]HistSnapshot
}

// Snapshot merges all shards of every metric. Safe to call concurrently
// with writers (counter reads are atomic; histogram shards are briefly
// locked one at a time).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Counters: make(Metrics, len(r.counters)), Hists: make(map[string]HistSnapshot, len(r.hists))}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// paddedInt64 is one counter shard: an atomic on its own cache line, so
// two workers bumping the same metric never write the same line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is an accumulating int64 metric with per-worker write shards.
type Counter struct {
	mask   uint32
	shards []paddedInt64
}

// Add adds delta on the given shard (masked into range). Each shard is an
// uncontended atomic when callers pass their own worker id.
func (c *Counter) Add(shard int, delta int64) {
	c.shards[uint32(shard)&c.mask].v.Add(delta)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value sums the shards.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// histShardCap bounds each shard's sample reservoir. Once full the shard
// keeps counting and summing exactly but recycles reservoir slots as a
// sliding window, so percentiles reflect recent observations.
const histShardCap = 4096

// histShard is one histogram shard: a small mutex plus reservoir, padded
// so neighboring shards do not share a line.
type histShard struct {
	mu    sync.Mutex
	n     int64
	sum   float64
	min   float64
	max   float64
	reser []float64
	_     [24]byte
}

// Histogram is a sampled distribution metric: exact count/sum/min/max,
// and quantiles computed from per-shard reservoirs at snapshot time via
// stats.Sample.Percentile.
type Histogram struct {
	mask   uint32
	shards []histShard
}

// Observe records one value on the given shard (masked into range).
func (h *Histogram) Observe(shard int, v float64) {
	s := &h.shards[uint32(shard)&h.mask]
	s.mu.Lock()
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	if len(s.reser) < histShardCap {
		s.reser = append(s.reser, v)
	} else {
		s.reser[s.n%histShardCap] = v
	}
	s.n++
	s.sum += v
	s.mu.Unlock()
}

// HistSnapshot is the merged view of one histogram.
type HistSnapshot struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Mean returns Sum/Count, or NaN for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Snapshot merges the shards and computes quantiles over the pooled
// reservoirs.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	sample := stats.New()
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if s.n > 0 {
			if out.Count == 0 || s.min < out.Min {
				out.Min = s.min
			}
			if out.Count == 0 || s.max > out.Max {
				out.Max = s.max
			}
			out.Count += s.n
			out.Sum += s.sum
			for _, v := range s.reser {
				sample.Add(v)
			}
		}
		s.mu.Unlock()
	}
	if sample.N() > 0 {
		out.P50 = sample.Percentile(50)
		out.P90 = sample.Percentile(90)
		out.P99 = sample.Percentile(99)
	}
	return out
}
