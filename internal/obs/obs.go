// Package obs is the runtime observability layer shared by every engine
// family: a sharded metrics registry, a per-worker flight-recorder trace
// ring, and exporters (Chrome trace_event JSON for Perfetto, a compact
// text dump, pprof label scoping).
//
// The design splits observability into two costs:
//
//   - Metrics are counters, gauges and histograms behind a Registry whose
//     write side is sharded per worker on cache-line-padded slots — the
//     generalization of the hand-rolled padded per-worker counters the hj
//     scheduler grew in earlier PRs. Shards are merged only on Snapshot,
//     so the hot path never writes a cache line another worker reads.
//   - Tracing is a flight recorder: each worker (or logical process) owns
//     a fixed-size ring of binary event records and overwrites the oldest
//     when full. Recording is zero-alloc and lock-free (single writer per
//     ring, seqlock-validated readers), and a disabled recorder costs one
//     nil check. Rings are drained on completion — or mid-run by the
//     stall watchdog, so a wedged engine's failure report carries the
//     last events each worker saw before the stall.
//
// Engines surface their run counters as a flat Metrics map with
// dot-namespaced keys (hj.spawns, lp.null_msgs, galois.aborted,
// tw.rollbacks, chaos.kills), the uniform representation core.Result
// carries for every engine family.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics is a flat name → value map of run counters, the uniform
// cross-engine metrics representation. Keys are dot-namespaced by
// subsystem (hj.spawns, lp.event_msgs, chaos.kills).
type Metrics map[string]int64

// Add increments key by delta, creating it at zero first.
func (m Metrics) Add(key string, delta int64) { m[key] += delta }

// Merge folds every entry of other into m (summing shared keys).
func (m Metrics) Merge(other Metrics) {
	for k, v := range other {
		m[k] += v
	}
}

// Keys returns the metric names in sorted order, for deterministic
// rendering.
func (m Metrics) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the map as "k=v k=v ..." in key order.
func (m Metrics) String() string {
	var b strings.Builder
	for i, k := range m.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, m[k])
	}
	return b.String()
}
