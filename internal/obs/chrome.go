package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format's JSON Array
// flavor, the subset Perfetto and chrome://tracing load: instant events
// ("ph":"i") with thread scope, timestamps in microseconds, tid = the
// recording shard (worker / LP).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Scope string         `json:"s"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON Object wrapper, which lets viewers apply the
// display unit.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders drained flight-recorder events as Chrome
// trace_event JSON. Open the file in https://ui.perfetto.dev or
// chrome://tracing; each shard appears as one thread track.
func WriteChromeTrace(w io.Writer, events []Event) error {
	ce := make([]chromeEvent, len(events))
	for i, ev := range events {
		ce[i] = chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(ev.TS) / 1e3,
			TID:   ev.Shard,
			Args:  map[string]any{"a": ev.A, "b": ev.B},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: ce, DisplayTimeUnit: "ns"})
}
