package obs

import (
	"sync"
	"testing"
)

func TestRingNilSafety(t *testing.T) {
	var rec *Recorder
	g := rec.Ring(3)
	if g != nil {
		t.Fatal("nil recorder should hand out nil rings")
	}
	g.Record(EvSpawn, 1, 2) // must not panic
	if evs := rec.Events(); evs != nil {
		t.Fatalf("nil recorder Events = %v", evs)
	}
	if evs := rec.Tail(8); evs != nil {
		t.Fatalf("nil recorder Tail = %v", evs)
	}
	if out := g.appendTail(nil, 0); out != nil {
		t.Fatalf("nil ring appendTail = %v", out)
	}
}

func TestRecorderRingGrowth(t *testing.T) {
	rec := NewRecorder(16)
	g5 := rec.Ring(5)
	if g5 == nil || g5.Shard() != 5 {
		t.Fatalf("Ring(5).Shard() = %v", g5.Shard())
	}
	if rec.Ring(2).Shard() != 2 {
		t.Fatal("intermediate rings should exist after growth")
	}
	if rec.Ring(5) != g5 {
		t.Fatal("Ring must be idempotent per shard")
	}
}

func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(64)
	g := rec.Ring(0)
	cap := len(g.slots)
	total := 3 * cap
	for i := 0; i < total; i++ {
		g.Record(EvSend, int64(i), int64(2*i))
	}
	evs := rec.Events()
	if len(evs) != cap {
		t.Fatalf("drained %d events, want the newest %d", len(evs), cap)
	}
	// Only the newest cap records survive, in order, internally consistent.
	for j, ev := range evs {
		want := int64(total - cap + j)
		if ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest must be overwritten)", j, ev.A, want)
		}
		if ev.B != 2*ev.A {
			t.Fatalf("event %d: torn record A=%d B=%d", j, ev.A, ev.B)
		}
		if ev.Kind != EvSend || ev.Shard != 0 {
			t.Fatalf("event %d: kind/shard = %v/%d", j, ev.Kind, ev.Shard)
		}
		if j > 0 && ev.TS < evs[j-1].TS {
			t.Fatalf("event %d: timestamps not sorted", j)
		}
	}
}

func TestTailNewestPerShard(t *testing.T) {
	rec := NewRecorder(64)
	for shard := 0; shard < 3; shard++ {
		g := rec.Ring(shard)
		for i := 0; i < 10; i++ {
			g.Record(EvSpawn, int64(100*shard+i), 0)
		}
	}
	evs := rec.Tail(4)
	if len(evs) != 12 {
		t.Fatalf("Tail(4) over 3 shards = %d events, want 12", len(evs))
	}
	perShard := map[int32][]int64{}
	for _, ev := range evs {
		perShard[ev.Shard] = append(perShard[ev.Shard], ev.A)
	}
	for shard, as := range perShard {
		if len(as) != 4 {
			t.Fatalf("shard %d: %d events in tail, want 4", shard, len(as))
		}
		for j, a := range as {
			if want := int64(100*int(shard) + 6 + j); a != want {
				t.Fatalf("shard %d tail[%d] = %d, want %d (newest 4)", shard, j, a, want)
			}
		}
	}
	if all := rec.Tail(0); len(all) != 30 {
		t.Fatalf("Tail(0) = %d events, want all 30", len(all))
	}
}

// TestConcurrentDrainWhileRecording exercises the seqlock under -race:
// one writer per ring records continuously while the main goroutine
// drains. Every drained record must be internally consistent (B == 2*A),
// which a torn read would violate.
func TestConcurrentDrainWhileRecording(t *testing.T) {
	rec := NewRecorder(128)
	const shards, perShard = 4, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < shards; s++ {
		g := rec.Ring(s)
		wg.Add(1)
		go func(g *Ring, s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				g.Record(EvRecv, int64(i), int64(2*i))
			}
		}(g, s)
	}
	go func() { wg.Wait(); close(stop) }()
	drains := 0
	for {
		for _, ev := range rec.Events() {
			if ev.B != 2*ev.A {
				t.Fatalf("torn record under concurrent drain: A=%d B=%d", ev.A, ev.B)
			}
			if ev.Kind != EvRecv {
				t.Fatalf("torn kind: %v", ev.Kind)
			}
		}
		for _, ev := range rec.Tail(16) {
			if ev.B != 2*ev.A {
				t.Fatalf("torn record in Tail: A=%d B=%d", ev.A, ev.B)
			}
		}
		drains++
		select {
		case <-stop:
			// One final quiescent drain must see exactly the retained window.
			evs := rec.Events()
			want := shards * 128
			if perShard < 128 {
				want = shards * perShard
			}
			if len(evs) != want {
				t.Fatalf("quiescent drain = %d events, want %d (drained %d times live)", len(evs), want, drains)
			}
			return
		default:
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		EvSpawn: "spawn", EvSteal: "steal", EvPark: "park",
		EvSend: "lp-send", EvRecv: "lp-recv", EvNull: "lp-null", EvBlock: "lp-block",
		EvCheckpoint: "checkpoint", EvRestart: "restart",
		EvCommit: "commit", EvAbort: "abort", EvRollback: "rollback", EvRound: "round",
		EvNone: "none", Kind(200): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
