package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrentShardedAdds(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("test.adds")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
	if snap := r.Snapshot(); snap.Counters["test.adds"] != workers*perWorker {
		t.Fatalf("Snapshot = %d, want %d", snap.Counters["test.adds"], workers*perWorker)
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry(4)
	a := r.Counter("same")
	b := r.Counter("same")
	if a != b {
		t.Fatal("Counter should return the same handle for the same name")
	}
	a.Inc(0)
	b.Inc(99) // masked into the shard range, never out of bounds
	if a.Value() != 2 {
		t.Fatalf("Value = %d, want 2", a.Value())
	}
}

func TestRegistryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := NewRegistry(tc.in).Shards(); got != tc.want {
			t.Errorf("NewRegistry(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewRegistry(0).Shards() < 1 {
		t.Error("default shard count should be at least 1")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry(4)
	h := r.Histogram("lat")
	// 1..1000 spread across shards: exact count/sum and stable quantiles.
	var sum float64
	for i := 1; i <= 1000; i++ {
		h.Observe(i%4, float64(i))
		sum += float64(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != sum || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 500.5", got)
	}
	if s.P50 < 450 || s.P50 > 550 {
		t.Fatalf("P50 = %v, want ~500", s.P50)
	}
	if s.P99 < 950 || s.P99 > 1000 {
		t.Fatalf("P99 = %v, want ~990", s.P99)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramSlidingWindowKeepsExactCount(t *testing.T) {
	r := NewRegistry(1)
	h := r.Histogram("win")
	n := histShardCap*2 + 17
	for i := 0; i < n; i++ {
		h.Observe(0, float64(i))
	}
	s := h.Snapshot()
	if s.Count != int64(n) {
		t.Fatalf("Count = %d, want %d (window must not lose the exact count)", s.Count, n)
	}
	if s.Max != float64(n-1) || s.Min != 0 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Quantiles reflect the recent window, not the full history.
	if s.P50 < float64(n-histShardCap) {
		t.Fatalf("P50 = %v reflects evicted history (window starts at %d)", s.P50, n-histShardCap)
	}
}

func TestMergeMetricsAndSnapshot(t *testing.T) {
	r := NewRegistry(2)
	r.MergeMetrics(Metrics{"a": 1, "b": 10})
	r.MergeMetrics(Metrics{"a": 2})
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Counters["b"] != 10 {
		t.Fatalf("merged counters = %v", snap.Counters)
	}
}

func TestMetricsMapHelpers(t *testing.T) {
	m := make(Metrics)
	m.Add("z", 1)
	m.Add("a", 2)
	m.Add("z", 3)
	m.Merge(Metrics{"m": 5})
	if got := fmt.Sprint(m.Keys()); got != "[a m z]" {
		t.Fatalf("Keys = %v", got)
	}
	if m["z"] != 4 {
		t.Fatalf("Add should accumulate: z = %d", m["z"])
	}
	if s := m.String(); s != "a=2 m=5 z=4" {
		t.Fatalf("String = %q", s)
	}
}

// TestRegistrySnapshotUnderConcurrentJobs is the serving-path workload:
// many jobs record into one shared registry (sharded counter adds,
// histogram observations, and whole-run MergeMetrics folds) while a
// metrics endpoint snapshots in a tight loop. Run under -race this pins
// the lock discipline; the final snapshot must see every write.
func TestRegistrySnapshotUnderConcurrentJobs(t *testing.T) {
	r := NewRegistry(8)
	const jobs, perJob = 16, 500
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	// The scraper: hammer Snapshot concurrently with the writers and
	// require monotonicity — a snapshot can lag, never overcount.
	scraped := make(chan error, 1)
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		var last int64
		for {
			snap := r.Snapshot()
			got := snap.Counters["events"]
			if got < last {
				select {
				case scraped <- fmt.Errorf("snapshot went backwards: %d after %d", got, last):
				default:
				}
				return
			}
			if got > jobs*perJob {
				select {
				case scraped <- fmt.Errorf("snapshot overcounted: %d > %d", got, jobs*perJob):
				default:
				}
				return
			}
			last = got
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for j := 0; j < jobs; j++ {
		writers.Add(1)
		go func(j int) {
			defer writers.Done()
			h := r.Histogram("job_ms")
			for i := 0; i < perJob; i++ {
				r.Counter("events").Add(j, 1)
				h.Observe(j, float64(i))
			}
			// The per-run fold every engine does at completion.
			r.MergeMetrics(Metrics{"runs": 1})
		}(j)
	}
	writers.Wait()
	close(stop) // scraper overlapped the writers' whole lifetime
	scraper.Wait()
	select {
	case err := <-scraped:
		t.Fatal(err)
	default:
	}
	snap := r.Snapshot()
	if got := snap.Counters["events"]; got != jobs*perJob {
		t.Fatalf("events = %d, want %d", got, jobs*perJob)
	}
	if got := snap.Counters["runs"]; got != jobs {
		t.Fatalf("runs = %d, want %d", got, jobs)
	}
	if h := snap.Hists["job_ms"]; h.Count != jobs*perJob {
		t.Fatalf("histogram count = %d, want %d", h.Count, jobs*perJob)
	}
}

// TestRegistryMergeCorrectness pins the /metrics contract the service
// relies on: when every job folds its Result.Metrics into one shared
// registry, the registry's total equals the sum of the per-job counts —
// no job's contribution is lost or double-counted by the merge.
func TestRegistryMergeCorrectness(t *testing.T) {
	r := NewRegistry(4)
	const jobs = 64
	perJob := make([]int64, jobs)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			n := int64(100 + 37*j) // distinct per-job event counts
			perJob[j] = n
			r.MergeMetrics(Metrics{"events": n, "hj.spawns": n / 2})
		}(j)
	}
	wg.Wait()
	var sum, sumSpawns int64
	for _, n := range perJob {
		sum += n
		sumSpawns += n / 2
	}
	snap := r.Snapshot()
	if got := snap.Counters["events"]; got != sum {
		t.Fatalf("registry events = %d, sum of per-job = %d", got, sum)
	}
	if got := snap.Counters["hj.spawns"]; got != sumSpawns {
		t.Fatalf("registry hj.spawns = %d, sum of per-job = %d", got, sumSpawns)
	}
}
