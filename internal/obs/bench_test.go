package obs

import "testing"

// TestRecordDisabledZeroAlloc is the overhead guard for untraced runs:
// the disabled path (nil ring) must be a single branch with zero
// allocations, and the enabled path must be zero-alloc too — a ring
// never grows after construction.
func TestRecordDisabledZeroAlloc(t *testing.T) {
	var nilRing *Ring
	if n := testing.AllocsPerRun(1000, func() {
		nilRing.Record(EvSpawn, 1, 2)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %v/op, want 0", n)
	}
	g := NewRecorder(256).Ring(0)
	if n := testing.AllocsPerRun(1000, func() {
		g.Record(EvSpawn, 1, 2)
	}); n != 0 {
		t.Fatalf("enabled Record allocates %v/op, want 0", n)
	}
}

func TestCounterAddZeroAlloc(t *testing.T) {
	c := NewRegistry(8).Counter("bench")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3, 1)
	}); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op, want 0", n)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var g *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Record(EvSpawn, int64(i), 0)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	g := NewRecorder(4096).Ring(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Record(EvSpawn, int64(i), 0)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry(8).Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		shard := 0
		for pb.Next() {
			c.Add(shard, 1)
			shard++
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry(8).Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0, float64(i&1023))
	}
}
