// Package atomicfile provides crash-safe artifact writes for the
// command-line tools: VCD waveforms, Chrome traces, benchmark JSON and
// generated netlists are streamed into a temporary file next to the
// destination and renamed over it only after the encoder has finished
// and the data is flushed. A panic, exit(2) or encode failure midway
// leaves the previous artifact byte-for-byte intact instead of a
// truncated file that downstream tooling would parse as valid-but-wrong.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write streams the artifact through write into a hidden temporary file
// in path's directory, syncs it, and renames it over path only once
// everything succeeded. On any failure the temporary file is removed
// and path is left untouched (whatever was there before still is).
func Write(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	// Cleanup runs on every failure path below; after the rename the
	// temp name no longer exists and both calls are no-ops.
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("atomicfile: encode %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
