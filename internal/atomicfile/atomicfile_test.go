package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

func TestWriteCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.vcd")
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first artifact")
		return err
	}); err != nil {
		t.Fatalf("initial write: %v", err)
	}
	if got := readFile(t, path); got != "first artifact" {
		t.Fatalf("content %q", got)
	}
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second artifact")
		return err
	}); err != nil {
		t.Fatalf("replace write: %v", err)
	}
	if got := readFile(t, path); got != "second artifact" {
		t.Fatalf("content after replace %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp litter left behind: %v", names)
	}
}

// TestEncodeFailureKeepsOldArtifact is the crash-safety regression: an
// encoder that dies partway through — after already emitting bytes —
// must leave the previous artifact intact and the directory free of
// temporaries. Pre-fix the tools os.Create'd in place, so the old file
// was already truncated and half-overwritten by the time the encoder
// failed.
func TestEncodeFailureKeepsOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	const good = `{"schema":3,"records":[{"ok":true}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatalf("seed artifact: %v", err)
	}
	boom := errors.New("encoder died mid-stream")
	err := Write(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, `{"schema":3,"records":[`); werr != nil {
			return werr
		}
		return boom // half the artifact is out; then the encode fails
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the encoder's error surfaced, got %v", err)
	}
	if got := readFile(t, path); got != good {
		t.Fatalf("old artifact corrupted by failed write:\n got %q\nwant %q", got, good)
	}
	for _, name := range listDir(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Fatalf("failed write left temp file %s", name)
		}
	}
}

func TestWriteMissingDirFails(t *testing.T) {
	err := Write(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
