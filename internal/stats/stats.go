// Package stats provides the summary statistics the paper's evaluation
// reports: minimum execution times (Figures 4-6), averages with 95%
// confidence intervals (Figure 7), and speedups relative to a sequential
// baseline.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of repeated measurements.
type Sample struct {
	xs []float64
}

// New returns a sample over the given values.
func New(xs ...float64) *Sample {
	s := &Sample{xs: append([]float64(nil), xs...)}
	return s
}

// FromDurations builds a sample of seconds from durations.
func FromDurations(ds []time.Duration) *Sample {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return &Sample{xs: xs}
}

// Add appends a value.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of values.
func (s *Sample) N() int { return len(s.xs) }

// Min returns the smallest value (the paper's headline metric for
// execution times), or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Median returns the median, or NaN for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (p in [0, 100], clamped), using
// linear interpolation between closest ranks, so Percentile(50) equals
// Median for every sample size. It returns NaN for an empty sample; a
// single-value sample returns that value for every p.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for samples smaller than 2.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal approximation 1.96 is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% critical value for df degrees of
// freedom.
func tCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (Student t), the error-bar metric of the paper's Figure 7. It is 0 for
// samples smaller than 2.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// Summary formats the sample as "mean ± ci [min, max]".
func (s *Sample) Summary() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g]", s.Mean(), s.CI95(), s.Min(), s.Max())
}

// Speedup returns baseline/t: how many times faster t is than baseline.
func Speedup(baseline, t float64) float64 {
	if t <= 0 {
		return math.NaN()
	}
	return baseline / t
}

// PercentReduction returns how much shorter t is than baseline, in
// percent — the paper's headline "reduced the execution time by
// 44.5-79.7%" metric.
func PercentReduction(baseline, t float64) float64 {
	if baseline <= 0 {
		return math.NaN()
	}
	return 100 * (baseline - t) / baseline
}
