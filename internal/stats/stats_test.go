package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicMoments(t *testing.T) {
	s := New(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if !almost(s.Min(), 2) || !almost(s.Max(), 9) {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev with n-1: variance = 32/7.
	if !almost(s.StdDev(), math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v", s.StdDev())
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
}

func TestMedian(t *testing.T) {
	if m := New(3, 1, 2).Median(); !almost(m, 2) {
		t.Errorf("odd median = %v", m)
	}
	if m := New(4, 1, 3, 2).Median(); !almost(m, 2.5) {
		t.Errorf("even median = %v", m)
	}
	if !math.IsNaN(New().Median()) {
		t.Error("empty median should be NaN")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	e := New()
	if !math.IsNaN(e.Mean()) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Error("empty sample should report NaN moments")
	}
	one := New(3)
	if one.StdDev() != 0 || one.CI95() != 0 {
		t.Error("singleton sample should have zero spread")
	}
	if !almost(one.Mean(), 3) {
		t.Error("singleton mean")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, sd=1: half-width = t(4) * 1 / sqrt(5) = 2.776/2.2360.
	s := New(0, 0, 0, 0, 0)
	s.xs = []float64{-1.2649110640673518, -0.6324555320336759, 0, 0.6324555320336759, 1.2649110640673518}
	// This sample has mean 0 and sample stddev 1.
	if !almost(s.StdDev(), 1) {
		t.Fatalf("constructed stddev = %v", s.StdDev())
	}
	want := 2.776 / math.Sqrt(5)
	if !almost(s.CI95(), want) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestTCritical(t *testing.T) {
	if !almost(tCritical95(1), 12.706) {
		t.Error("df=1")
	}
	if !almost(tCritical95(30), 2.042) {
		t.Error("df=30")
	}
	if !almost(tCritical95(31), 1.96) {
		t.Error("df>30 should use normal approx")
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestFromDurations(t *testing.T) {
	s := FromDurations([]time.Duration{time.Second, 2 * time.Second})
	if !almost(s.Mean(), 1.5) {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestAdd(t *testing.T) {
	s := New()
	s.Add(1)
	s.Add(2)
	if s.N() != 2 || !almost(s.Mean(), 1.5) {
		t.Error("Add broken")
	}
}

func TestSpeedupAndReduction(t *testing.T) {
	if !almost(Speedup(10, 2), 5) {
		t.Error("Speedup")
	}
	if !math.IsNaN(Speedup(10, 0)) {
		t.Error("Speedup by zero")
	}
	if !almost(PercentReduction(100, 20), 80) {
		t.Error("PercentReduction")
	}
	if !math.IsNaN(PercentReduction(0, 5)) {
		t.Error("PercentReduction zero baseline")
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	if New(1, 2, 3).Summary() == "" {
		t.Error("empty Summary")
	}
}

// TestMomentProperties checks basic order/shift invariants with
// testing/quick.
func TestMomentProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := New(xs...)
		if s.Min() > s.Mean()+1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		if s.StdDev() < 0 || s.CI95() < 0 {
			return false
		}
		// Shifting all values shifts the mean, not the spread.
		shifted := New()
		for _, x := range xs {
			shifted.Add(x + 1000)
		}
		return almost(shifted.Mean(), s.Mean()+1000) &&
			math.Abs(shifted.StdDev()-s.StdDev()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// unitSD returns an n-point sample with mean 0 and sample standard
// deviation exactly 1, so CI95 must equal tCritical95(n-1)/sqrt(n).
func unitSD(n int) *Sample {
	s := New()
	if n%2 == 1 {
		s.Add(0)
		n--
	}
	c := 1.0
	if s.N() == 0 { // even n: ±c with c = sqrt((n-1)/n) gives sample sd 1
		c = math.Sqrt(float64(n-1) / float64(n))
	}
	for i := 0; i < n/2; i++ {
		s.Add(c)
		s.Add(-c)
	}
	return s
}

// TestCI95StudentTPinned pins CI95 against hand-computed Student-t
// half-widths at the interesting sample sizes: n=2 (df=1, the fat
// t=12.706 end), n=20 (the paper's repeat count, df=19), n=31 (df=30,
// the last table entry) and n=32 (df=31, the first normal-approximation
// 1.96 value past the table).
func TestCI95StudentTPinned(t *testing.T) {
	// n=2 computed fully by hand: sample {0, 1} has sd = sqrt(1/2), so
	// CI95 = 12.706 * sqrt(1/2) / sqrt(2) = 12.706 / 2.
	two := New(0, 1)
	if want := 12.706 / 2; !almost(two.CI95(), want) {
		t.Errorf("n=2: CI95 = %v, want %v", two.CI95(), want)
	}
	for _, tc := range []struct {
		n    int
		crit float64
	}{
		{2, 12.706},
		{20, 2.093},
		{31, 2.042},
		{32, 1.96}, // tTable95 → normal-approximation crossover
	} {
		s := unitSD(tc.n)
		if s.N() != tc.n || !almost(s.Mean(), 0) || !almost(s.StdDev(), 1) {
			t.Fatalf("unitSD(%d): n=%d mean=%v sd=%v", tc.n, s.N(), s.Mean(), s.StdDev())
		}
		want := tc.crit / math.Sqrt(float64(tc.n))
		if !almost(s.CI95(), want) {
			t.Errorf("n=%d: CI95 = %v, want %v (t=%v)", tc.n, s.CI95(), want, tc.crit)
		}
	}
}

// TestRatioNaNPropagation: Speedup and PercentReduction must answer NaN —
// never ±Inf or a sign-flipped ratio — for non-positive and NaN inputs
// in the guarded position, and propagate NaN from the other operand.
func TestRatioNaNPropagation(t *testing.T) {
	nan := math.NaN()
	for _, bad := range []float64{0, -1, math.Inf(-1), nan} {
		if got := Speedup(10, bad); !math.IsNaN(got) {
			t.Errorf("Speedup(10, %v) = %v, want NaN", bad, got)
		}
		if got := PercentReduction(bad, 10); !math.IsNaN(got) {
			t.Errorf("PercentReduction(%v, 10) = %v, want NaN", bad, got)
		}
	}
	// NaN in the unguarded operand must come out as NaN, not a number.
	if got := Speedup(nan, 2); !math.IsNaN(got) {
		t.Errorf("Speedup(NaN, 2) = %v, want NaN", got)
	}
	if got := PercentReduction(100, nan); !math.IsNaN(got) {
		t.Errorf("PercentReduction(100, NaN) = %v, want NaN", got)
	}
}

// TestPercentileMatchesMedian pins Percentile(50) == Median for both
// parities and across random samples: the linear-interpolation rank
// definition was chosen precisely for this identity.
func TestPercentileMatchesMedian(t *testing.T) {
	cases := [][]float64{
		{3, 1, 2},
		{4, 1, 3, 2},
		{7},
		{5, 5, 5, 5},
		{-2, 9, 0.5, 3.25, -7, 11},
	}
	for _, xs := range cases {
		s := New(xs...)
		if p, m := s.Percentile(50), s.Median(); !almost(p, m) {
			t.Errorf("xs=%v: Percentile(50) = %v, Median = %v", xs, p, m)
		}
	}
	if err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			// Keep inputs where the even-n midpoint (a+b)/2 and the
			// interpolated rank agree to the absolute tolerance.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		s := New(xs...)
		if len(xs) == 0 {
			return math.IsNaN(s.Percentile(50))
		}
		return almost(s.Percentile(50), s.Median())
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileEdges(t *testing.T) {
	if !math.IsNaN(New().Percentile(50)) {
		t.Error("empty sample should report NaN percentile")
	}
	one := New(42)
	for _, p := range []float64{0, 17, 50, 100} {
		if got := one.Percentile(p); !almost(got, 42) {
			t.Errorf("singleton Percentile(%v) = %v, want 42", p, got)
		}
	}
	s := New(10, 20, 30, 40)
	if got := s.Percentile(0); !almost(got, 10) {
		t.Errorf("Percentile(0) = %v, want min", got)
	}
	if got := s.Percentile(100); !almost(got, 40) {
		t.Errorf("Percentile(100) = %v, want max", got)
	}
	// Out-of-range p clamps rather than panics or extrapolates.
	if got := s.Percentile(-5); !almost(got, 10) {
		t.Errorf("Percentile(-5) = %v, want min", got)
	}
	if got := s.Percentile(250); !almost(got, 40) {
		t.Errorf("Percentile(250) = %v, want max", got)
	}
	// Interpolation between closest ranks: p75 of {10..40} sits 1/4 of the
	// way from 30 to 40.
	if got := s.Percentile(75); !almost(got, 32.5) {
		t.Errorf("Percentile(75) = %v, want 32.5", got)
	}
}
