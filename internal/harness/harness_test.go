package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
)

// tinyConfig keeps the experiment tests fast: two repeats, two workers,
// and small stand-in circuits instead of the paper's full-size inputs.
func tinyConfig() Config {
	return Config{
		Scale: 1, Repeats: 2, MaxWorkers: 2, Seed: 1,
		Circuits: []PaperCircuit{
			{Name: "tiny-mult-4", Build: func() *circuit.Circuit { return circuit.TreeMultiplier(4) }, FullWaves: 2},
			{Name: "tiny-ks-8", Build: func() *circuit.Circuit { return circuit.KoggeStone(8) }, FullWaves: 3},
			{Name: "tiny-c17", Build: circuit.C17, FullWaves: 4},
		},
	}
}

func TestMeasureRepeats(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 3, c.SettleTime()+10, 1)
	m, err := Measure(Spec{
		Label: "fa", Circuit: c, Stim: stim,
		Factory: seqFactory, Repeats: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Times.N() != 5 {
		t.Fatalf("recorded %d times, want 5", m.Times.N())
	}
	if m.Events == 0 {
		t.Fatal("no events recorded")
	}
	if m.MinSeconds() <= 0 || m.MeanSeconds() < m.MinSeconds() {
		t.Fatalf("min=%v mean=%v", m.MinSeconds(), m.MeanSeconds())
	}
	if m.Engine != "seq" {
		t.Fatalf("engine = %q", m.Engine)
	}
}

func TestMeasureDefaultsRepeats(t *testing.T) {
	c := circuit.FullAdder()
	stim := circuit.RandomStimulus(c, 1, c.SettleTime()+10, 1)
	m, err := Measure(Spec{Label: "fa", Circuit: c, Stim: stim, Factory: seqFactory})
	if err != nil {
		t.Fatal(err)
	}
	if m.Times.N() != 1 {
		t.Fatalf("default repeats = %d, want 1", m.Times.N())
	}
}

func TestSweepShape(t *testing.T) {
	c := circuit.KoggeStone(4)
	stim := circuit.RandomStimulus(c, 2, c.SettleTime()+10, 1)
	pts, err := Sweep("ks4", c, stim, hjFactory, []int{1, 2, 4}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, w := range []int{1, 2, 4} {
		if pts[i].Workers != w || pts[i].M.Workers != w {
			t.Fatalf("point %d workers = %d/%d", i, pts[i].Workers, pts[i].M.Workers)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := FmtSeconds(1.23456); got != "1.2346" {
		t.Errorf("FmtSeconds = %q", got)
	}
	if got := FmtDuration(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("FmtDuration = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "bee"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var text, csv bytes.Buffer
	if err := tbl.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("text output:\n%s", out)
	}
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "a,bee\n1,2\n333,4\n"
	if csv.String() != want {
		t.Fatalf("csv = %q, want %q", csv.String(), want)
	}
}

func TestWorkerCounts(t *testing.T) {
	cfg := Config{MaxWorkers: 8}
	got := cfg.workerCounts()
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("workerCounts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workerCounts = %v", got)
		}
	}
	// Non-power-of-two max is appended.
	cfg.MaxWorkers = 6
	got = cfg.workerCounts()
	if got[len(got)-1] != 6 {
		t.Fatalf("workerCounts = %v, want trailing 6", got)
	}
	// Explicit list wins.
	cfg.Workers = []int{3, 5}
	got = cfg.workerCounts()
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("workerCounts = %v", got)
	}
	// Degenerate config.
	if ws := (Config{}).workerCounts(); len(ws) != 1 || ws[0] != 1 {
		t.Fatalf("empty config workerCounts = %v", ws)
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Fatalf("ragged row: %v", row)
		}
	}
}

func TestTable2ReturnsBaselines(t *testing.T) {
	tbl, baselines, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || len(baselines) != 3 {
		t.Fatalf("rows=%d baselines=%d", len(tbl.Rows), len(baselines))
	}
	for name, b := range baselines {
		if b <= 0 {
			t.Fatalf("baseline %q = %v", name, b)
		}
	}
}

func TestFig1Profile(t *testing.T) {
	tbl, profile, err := Fig1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) == 0 || len(tbl.Rows) != len(profile) {
		t.Fatalf("profile=%d rows=%d", len(profile), len(tbl.Rows))
	}
	if core.MaxParallelism(profile) < 2 {
		t.Fatalf("suspicious profile %v", profile)
	}
}

func TestFigSweepValidatesFigure(t *testing.T) {
	if _, err := FigSweep(tinyConfig(), 9); err == nil {
		t.Fatal("FigSweep accepted figure 9")
	}
}

func TestFigSweepTiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = []int{1, 2}
	tbl, err := FigSweep(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig7Tiny(t *testing.T) {
	tbl, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 circuits x 2 engines
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
}

func TestAblationsTiny(t *testing.T) {
	tbl, err := Ablations(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
	// The first row is the optimized reference: its ratio column is 1.00x.
	if tbl.Rows[0][3] != "1.00x" {
		t.Fatalf("reference ratio = %q", tbl.Rows[0][3])
	}
}

func TestProfilesExperiment(t *testing.T) {
	tbl, err := Profiles(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	// The parity chain's mean parallelism must be far below the
	// butterfly's — that is the point of the comparison.
	var chainMean, bflyMean string
	for _, row := range tbl.Rows {
		switch {
		case row[0] == "parity-32":
			chainMean = row[5]
		case row[0] == "butterfly-5":
			bflyMean = row[5]
		}
	}
	if chainMean == "" || bflyMean == "" {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
}

func TestTimeWarpExpTiny(t *testing.T) {
	tbl, err := TimeWarpExp(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestOrderedExpTiny(t *testing.T) {
	tbl, err := OrderedExp(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestLPExpTiny(t *testing.T) {
	tbl, err := LPExp(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three circuits, each swept over workerCounts() = {1, 2}.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

func TestNetDESTiny(t *testing.T) {
	cfg := tinyConfig()
	tbl, err := NetDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series should render empty")
	}
	s := Sparkline([]int{0, 1, 2, 4, 8})
	if len([]rune(s)) != 5 {
		t.Fatalf("sparkline %q", s)
	}
	if Sparkline([]int{0, 0}) == "" {
		t.Fatal("all-zero series should still render")
	}
}

// TestAllEndToEnd runs the complete experiment driver (every table and
// figure plus the extensions) on the tiny circuit set and checks the
// report contains each section.
func TestAllEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment driver skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := All(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 1", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Ablations", "parallelism profiles",
		"Time Warp", "ordered", "logical-process", "packet-network",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All report missing %q", want)
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale <= 0 || cfg.Repeats < 1 || cfg.MaxWorkers < 1 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if len(cfg.circuits()) != 3 {
		t.Fatalf("default circuits = %d", len(cfg.circuits()))
	}
}

// TestPaperScaleCalibration verifies the FullWaves calibration: at
// scale 1 each paper circuit's simulated event volume lands within 25%
// of the paper's Table 1 total. Runs tens of millions of events; -short
// skips it.
func TestPaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale calibration skipped in -short mode")
	}
	cfg := Config{Scale: 1, Seed: 1}
	for _, pc := range PaperCircuits {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		res, err := core.NewSequential(core.Options{DiscardOutputs: true}).Run(c, stim)
		if err != nil {
			t.Fatalf("%s: %v", pc.Name, err)
		}
		ratio := float64(res.TotalEvents) / float64(pc.PaperTotal)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s: %d events at scale 1, paper %d (ratio %.2f)",
				pc.Name, res.TotalEvents, pc.PaperTotal, ratio)
		}
	}
}

func TestWavesScaling(t *testing.T) {
	cfg := Config{Scale: 1}
	if w := cfg.waves(PaperCircuits[1]); w != PaperCircuits[1].FullWaves {
		t.Fatalf("full-scale waves = %d", w)
	}
	cfg.Scale = 0.0001
	if w := cfg.waves(PaperCircuits[0]); w != 1 {
		t.Fatalf("tiny-scale waves = %d, want 1", w)
	}
	cfg.Scale = 0
	if w := cfg.waves(PaperCircuits[0]); w < 1 {
		t.Fatalf("zero-scale waves = %d", w)
	}
}
