package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"hjdes/internal/core"
	"hjdes/internal/obs"
	"hjdes/internal/stats"
)

// BenchSchema is the version of the BenchRecord JSON shape. History:
//
//	v1 (implicit, schema field absent): timing + alloc + lp message fields
//	v2: adds "schema" and the uniform per-engine "metrics" map
//	v3: adds "attempts"/"degraded" (resilient envelope); resilient.* and
//	    checkpoint.* counters appear in "metrics" when non-clean
const BenchSchema = 3

// BenchRecord is one machine-readable benchmark measurement, the unit of
// the repository's performance trajectory (`paperbench -json`, appended
// to BENCH_*.json per PR). Timing fields follow the paper's reporting
// conventions (min for headline, mean ± CI95 for error bars); allocation
// fields are the benchmark notion of allocs/op; the message-layer fields
// are populated for the lp engine only, where the null-message ratio is
// the canonical CMB overhead metric.
type BenchRecord struct {
	Schema      int         `json:"schema"`
	Engine      string      `json:"engine"`
	Circuit     string      `json:"circuit"`
	Workers     int         `json:"workers"`
	Events      int64       `json:"events"`
	MinS        float64     `json:"min_s"`
	MeanS       float64     `json:"mean_s"`
	CI95S       float64     `json:"ci95_s"`
	AllocsPerOp uint64      `json:"allocs_per_op"`
	BytesPerOp  uint64      `json:"bytes_per_op"`
	Partitions  int         `json:"partitions,omitempty"`
	EventMsgs   int64       `json:"event_msgs,omitempty"`
	NullMsgs    int64       `json:"null_msgs,omitempty"`
	NMR         float64     `json:"nmr,omitempty"`
	Attempts    int         `json:"attempts,omitempty"`
	Degraded    bool        `json:"degraded,omitempty"`
	Metrics     obs.Metrics `json:"metrics,omitempty"`
}

// record converts a Measurement into its trajectory record.
func record(circuit string, m *Measurement) BenchRecord {
	r := BenchRecord{
		Schema:      BenchSchema,
		Engine:      m.Engine,
		Circuit:     circuit,
		Workers:     m.Workers,
		Events:      m.Events,
		MinS:        m.MinSeconds(),
		MeanS:       m.MeanSeconds(),
		CI95S:       m.CI95(),
		AllocsPerOp: m.AllocsPerOp,
		BytesPerOp:  m.BytesPerOp,
	}
	if m.Best != nil && m.Best.LP.Partitions > 0 {
		r.Partitions = m.Best.LP.Partitions
		r.EventMsgs = m.Best.LP.EventMsgs
		r.NullMsgs = m.Best.LP.NullMsgs
		r.NMR = m.Best.LP.NullRatio()
	}
	// attempts is only recorded when something non-clean happened, so
	// clean trajectories stay byte-stable across schema v2→v3.
	if m.Attempts > 1 || m.Degraded {
		r.Attempts = m.Attempts
		r.Degraded = m.Degraded
	}
	if m.Best != nil {
		r.Metrics = m.Best.Metrics
	}
	return r
}

// BenchSweep runs the bench-trajectory suite: per circuit, the seq
// baseline once, then the hj, lp and lp-hj engines across the configured
// worker counts (the lp-family engines with one partition per worker).
// It returns one record per configuration, in a deterministic order.
func BenchSweep(cfg Config) ([]BenchRecord, error) {
	// Every bench spec inherits the config's resilient envelope.
	measure := func(spec Spec) (*Measurement, error) {
		spec.Retries, spec.Fallback, spec.CheckpointEvery = cfg.Retries, cfg.Fallback, cfg.CheckpointEvery
		return Measure(spec)
	}
	var records []BenchRecord
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		mSeq, err := measure(Spec{Label: pc.Name + "/seq", Circuit: c, Stim: stim,
			Factory: seqFactory, Workers: 1, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		records = append(records, record(pc.Name, mSeq))
		for _, w := range cfg.workerCounts() {
			mHJ, err := measure(Spec{Label: fmt.Sprintf("%s/hj/w%d", pc.Name, w), Circuit: c, Stim: stim,
				Factory: hjFactory, Workers: w, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			records = append(records, record(pc.Name, mHJ))
			if cfg.HJAblations && w > 1 {
				for _, abl := range []string{"hj-noaff", "hj-steal1"} {
					mA, err := measure(Spec{Label: fmt.Sprintf("%s/%s/w%d", pc.Name, abl, w), Circuit: c, Stim: stim,
						Factory: factory(abl, core.Options{}), Workers: w, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
					if err != nil {
						return nil, err
					}
					records = append(records, record(pc.Name, mA))
				}
			}
			mLP, err := measure(Spec{Label: fmt.Sprintf("%s/lp/w%d", pc.Name, w), Circuit: c, Stim: stim,
				Factory: factory("lp", core.Options{Partitions: w}), Workers: w,
				Repeats: cfg.repeats(), Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			records = append(records, record(pc.Name, mLP))
			mLPHJ, err := measure(Spec{Label: fmt.Sprintf("%s/lp-hj/w%d", pc.Name, w), Circuit: c, Stim: stim,
				Factory: factory("lp-hj", core.Options{Partitions: w}), Workers: w,
				Repeats: cfg.repeats(), Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			records = append(records, record(pc.Name, mLPHJ))
		}
	}
	return records, nil
}

// LPKSweep is the over-decomposition trajectory: the goroutine lp engine
// against the fused lp-hj engine at a fixed worker count (cfg.MaxWorkers)
// across rising partition counts K. At K ≈ workers the two are
// architecturally similar; the sweep exists to show the regime K >>
// workers, where the goroutine engine pays one blocked goroutine (stack,
// channel, park/unpark) per idle LP while lp-hj pays one unscheduled
// IndexedTask (a mailbox pointer and an atomic flag). Records carry
// Partitions so a trajectory diff can tell the K points apart.
//
// Unlike BenchSweep this measures the engines hand-rolled and
// interleaved — repeat i of every engine runs before repeat i+1 of any —
// because the comparison is a head-to-head of two engines whose true
// difference is a few percent: block-wise measurement (all of one
// engine's repeats, then the other's) lets slow drift in machine load
// bias one side, which on small hosts is larger than the effect under
// measurement. For the same reason the collector is paced off for the
// duration of the sweep with an explicit GC at every repeat boundary:
// both engines recycle hot-path buffers through sync.Pool-backed
// arenas, which the collector wipes, so with automatic GC the allocs/op
// column measures collector timing relative to pool occupancy — noise
// an order of magnitude above the engines' structural difference —
// instead of what the engines allocate. The explicit GC leaves those
// pools empty, so an uncounted warmup run follows it before each
// measured run: the measurement then reflects warm steady state (the
// regime a pooled engine actually serves from) rather than charging
// whichever engine keeps the larger transient working set for
// repopulating the pools from scratch.
func LPKSweep(cfg Config, ks []int) ([]BenchRecord, error) {
	w := cfg.MaxWorkers
	if w < 1 {
		w = 1
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	names := []string{"lp", "lp-hj"}
	var records []BenchRecord
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		for _, k := range ks {
			ms := make([]*Measurement, len(names))
			for i, name := range names {
				ms[i] = &Measurement{
					Label:    fmt.Sprintf("%s/%s/w%d/k%d", pc.Name, name, w, k),
					Engine:   name,
					Workers:  w,
					Times:    stats.New(),
					Attempts: 1,
				}
			}
			engines := make([]core.Engine, len(names))
			for i, name := range names {
				engines[i] = factory(name, core.Options{Partitions: k})(w)
			}
			var before, after runtime.MemStats
			for rep := 0; rep < cfg.repeats(); rep++ {
				for i, e := range engines {
					m := ms[i]
					runtime.GC()
					if _, err := e.Run(c, stim); err != nil { // uncounted pool-warming run
						return nil, fmt.Errorf("harness: %s warmup %d: %w", m.Label, rep, err)
					}
					runtime.ReadMemStats(&before)
					res, err := e.Run(c, stim)
					runtime.ReadMemStats(&after)
					if err != nil {
						return nil, fmt.Errorf("harness: %s run %d: %w", m.Label, rep, err)
					}
					m.Events = res.TotalEvents
					m.Times.Add(res.Elapsed.Seconds())
					m.AllocsPerOp += after.Mallocs - before.Mallocs
					m.BytesPerOp += after.TotalAlloc - before.TotalAlloc
					if m.Best == nil || res.Elapsed < m.Best.Elapsed {
						m.Best = res
					}
				}
			}
			for _, m := range ms {
				m.AllocsPerOp /= uint64(cfg.repeats())
				m.BytesPerOp /= uint64(cfg.repeats())
				records = append(records, record(pc.Name, m))
			}
		}
	}
	return records, nil
}

// TWSweep is the optimistic-engine trajectory: the barrier-synchronized
// timewarp engine (the ablation baseline, GVT at a global barrier every
// round) against the barrier-free tw-hj engine across optimism windows ×
// worker counts. Window 0 is unbounded optimism; a positive window W
// bounds speculation to W ticks past each node's earliest pending event
// (both engines share this local-window semantics, so the comparison
// isolates the barrier). Measurement protocol is LPKSweep's: the engines
// run interleaved repeat by repeat, the collector is paced off with an
// explicit GC plus an uncounted pool-warming run at every repeat
// boundary, and the head-to-head is decided on min_s.
func TWSweep(cfg Config, windows []int64) ([]BenchRecord, error) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	names := []string{"timewarp", "tw-hj"}
	var records []BenchRecord
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		for _, w := range cfg.workerCounts() {
			for _, win := range windows {
				ms := make([]*Measurement, len(names))
				engines := make([]core.Engine, len(names))
				for i, name := range names {
					engines[i] = factory(name, core.Options{TimeWarpWindow: win})(w)
					ms[i] = &Measurement{
						Label:    fmt.Sprintf("%s/%s/w%d/win%d", pc.Name, engines[i].Name(), w, win),
						Engine:   engines[i].Name(),
						Workers:  w,
						Times:    stats.New(),
						Attempts: 1,
					}
				}
				var before, after runtime.MemStats
				for rep := 0; rep < cfg.repeats(); rep++ {
					for i, e := range engines {
						m := ms[i]
						runtime.GC()
						if _, err := e.Run(c, stim); err != nil { // uncounted pool-warming run
							return nil, fmt.Errorf("harness: %s warmup %d: %w", m.Label, rep, err)
						}
						runtime.ReadMemStats(&before)
						res, err := e.Run(c, stim)
						runtime.ReadMemStats(&after)
						if err != nil {
							return nil, fmt.Errorf("harness: %s run %d: %w", m.Label, rep, err)
						}
						m.Events = res.TotalEvents
						m.Times.Add(res.Elapsed.Seconds())
						m.AllocsPerOp += after.Mallocs - before.Mallocs
						m.BytesPerOp += after.TotalAlloc - before.TotalAlloc
						if m.Best == nil || res.Elapsed < m.Best.Elapsed {
							m.Best = res
						}
					}
				}
				for _, m := range ms {
					m.AllocsPerOp /= uint64(cfg.repeats())
					m.BytesPerOp /= uint64(cfg.repeats())
					records = append(records, record(pc.Name, m))
				}
			}
		}
	}
	return records, nil
}

// WriteBenchJSON renders the records as an indented JSON array.
func WriteBenchJSON(w io.Writer, records []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// BenchTable renders the records as a human-readable table (the -exp
// bench view when no -json path is given).
func BenchTable(records []BenchRecord) *Table {
	t := &Table{
		Title: "Bench trajectory: engines × workers (min/mean/ci95 seconds, allocs per run, lp null-message ratio)",
		Headers: []string{"circuit", "engine", "workers", "parts", "events", "min_s", "mean_s", "ci95_s",
			"allocs/op", "KB/op", "event_msgs", "null_msgs", "nmr"},
	}
	for _, r := range records {
		parts := "-"
		if r.Partitions > 0 {
			parts = fmt.Sprint(r.Partitions)
		}
		t.AddRow(r.Circuit, r.Engine, fmt.Sprint(r.Workers), parts, fmt.Sprint(r.Events),
			FmtSeconds(r.MinS), FmtSeconds(r.MeanS), FmtSeconds(r.CI95S),
			fmt.Sprint(r.AllocsPerOp), fmt.Sprintf("%.0f", float64(r.BytesPerOp)/1024),
			fmt.Sprint(r.EventMsgs), fmt.Sprint(r.NullMsgs), fmt.Sprintf("%.3f", r.NMR))
	}
	return t
}
