// Package harness runs the paper's evaluation: repeated, parameterized
// simulation runs over circuits, engines and worker counts, summarized
// the way the paper reports them (minimum execution times for Figures
// 4-6, averages with 95% confidence intervals for Figure 7) and rendered
// as aligned text tables and CSV.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/obs"
	"hjdes/internal/stats"
)

// EngineFactory builds an engine for a given worker count. Sequential
// engines ignore the argument.
type EngineFactory func(workers int) core.Engine

// Spec describes one measured configuration.
type Spec struct {
	Label   string
	Circuit *circuit.Circuit
	Stim    *circuit.Stimulus
	Factory EngineFactory
	Workers int
	Repeats int // paper: 20
	// Timeout bounds each individual run (0 = unbounded): a wedged
	// engine fails the measurement with a structured error instead of
	// hanging the whole suite.
	Timeout time.Duration
	// Retries, Fallback and CheckpointEvery configure the resilient
	// envelope (core.Resilient) each run executes under. All zero means
	// fail-fast, exactly the old supervised behavior.
	Retries         int
	Fallback        []string
	CheckpointEvery int
}

// resilientOptions builds the option set Resilient uses to construct
// fallback engines for this spec.
func (s Spec) resilientOptions() core.Options {
	return core.Options{
		Workers:         s.Workers,
		Partitions:      s.Workers,
		DiscardOutputs:  true,
		CheckpointEvery: s.CheckpointEvery,
	}
}

// Measurement is the repeated-run summary of one Spec.
type Measurement struct {
	Label   string
	Engine  string
	Workers int
	Events  int64
	Times   *stats.Sample // seconds per run
	// AllocsPerOp and BytesPerOp are the process-wide heap allocation
	// count and volume per run, averaged over the repeats (the benchmark
	// notion of allocs/op, measured with runtime.MemStats deltas).
	AllocsPerOp uint64
	BytesPerOp  uint64
	// Attempts is the worst (maximum) attempt count any repeat needed;
	// Degraded reports whether any repeat finished on a fallback engine.
	// Clean measurements read 1/false.
	Attempts int
	Degraded bool
	// Best is the full result of the fastest run, for engine-specific
	// statistics (null-message ratio, scheduler counters) next to the
	// timing summary.
	Best *core.Result
}

// Measure runs the spec Repeats times and collects timing statistics.
// Output recording is disabled during measurement; a RunAndVerify pass
// belongs in the tests, not the timed loop. Runs execute under the
// resilient envelope: a panic inside an engine fails the measurement with
// a structured error (or, with Spec.Retries/Fallback set, is retried and
// degraded through the fallback chain), and Spec.Timeout bounds each run.
func Measure(spec Spec) (*Measurement, error) {
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	eng := spec.Factory(spec.Workers)
	m := &Measurement{
		Label:    spec.Label,
		Engine:   eng.Name(),
		Workers:  spec.Workers,
		Times:    stats.New(),
		Attempts: 1,
	}
	rcfg := core.ResilientConfig{
		Supervise: core.SuperviseConfig{Timeout: spec.Timeout},
		Retry:     core.RetryPolicy{Retries: spec.Retries},
		Fallback:  spec.Fallback,
		Options:   spec.resilientOptions(),
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	// pprof labels scope any CPU/goroutine profile taken during the sweep:
	// `go tool pprof -tagfocus engine=lp` isolates one engine's samples.
	var runErr error
	obs.Labeled(context.Background(), m.Engine, spec.Label, func(ctx context.Context) {
		for i := 0; i < repeats; i++ {
			res, err := core.Resilient(ctx, eng, spec.Circuit, spec.Stim, rcfg)
			if err != nil {
				runErr = fmt.Errorf("harness: %s run %d: %w", spec.Label, i, err)
				return
			}
			m.Events = res.TotalEvents
			m.Times.Add(res.Elapsed.Seconds())
			if res.Attempts > m.Attempts {
				m.Attempts = res.Attempts
			}
			m.Degraded = m.Degraded || res.Degraded
			if m.Best == nil || res.Elapsed < m.Best.Elapsed {
				m.Best = res
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	runtime.ReadMemStats(&after)
	m.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(repeats)
	m.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(repeats)
	return m, nil
}

// MinSeconds is the paper's headline metric (minimum over repeats).
func (m *Measurement) MinSeconds() float64 { return m.Times.Min() }

// MeanSeconds and CI95 are the Figure 7 metrics.
func (m *Measurement) MeanSeconds() float64 { return m.Times.Mean() }

// CI95 is the 95% confidence half-width of the mean, in seconds.
func (m *Measurement) CI95() float64 { return m.Times.CI95() }

// SweepPoint is one worker count of a sweep.
type SweepPoint struct {
	Workers int
	M       *Measurement
}

// Sweep measures the factory across the given worker counts; timeout
// bounds each individual run (0 = unbounded).
func Sweep(label string, c *circuit.Circuit, stim *circuit.Stimulus, f EngineFactory, workerCounts []int, repeats int, timeout time.Duration) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		m, err := Measure(Spec{
			Label: fmt.Sprintf("%s/w%d", label, w), Circuit: c, Stim: stim,
			Factory: f, Workers: w, Repeats: repeats, Timeout: timeout,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Workers: w, M: m})
	}
	return points, nil
}

// Table is a rendered experiment: headers plus rows, writable as aligned
// text or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (cells are simple tokens; no quoting
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FmtSeconds renders a duration in seconds with ms precision.
func FmtSeconds(s float64) string {
	return fmt.Sprintf("%.4f", s)
}

// FmtDuration renders a time.Duration compactly.
func FmtDuration(d time.Duration) string { return d.Round(time.Microsecond).String() }
