package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hjdes/internal/serve"
	"hjdes/internal/stats"
)

// LoadConfig drives a dessimd instance with N concurrent closed-loop
// clients: each client submits a job, waits for its terminal status,
// records the end-to-end latency, and immediately submits the next.
// 429 responses are honored (sleep Retry-After, resubmit) and counted —
// they are the backpressure working, not failures.
type LoadConfig struct {
	// Addr is the server base URL, e.g. "http://127.0.0.1:8047".
	Addr string
	// Clients is the closed-loop client count (<=0 means 8).
	Clients int
	// JobsPer is how many jobs each client must complete (<=0 means 4).
	JobsPer int
	// Engines are assigned round-robin across submissions (empty means
	// seq, hj, lp — one engine per paper family).
	Engines []string
	// Circuit and Waves shape each job (defaults koggestone-16, 4).
	Circuit string
	Waves   int
	// Workers per job (0 = server default).
	Workers int
	// Timeout bounds one job's submit-to-terminal wait (<=0 means 60s).
	Timeout time.Duration
}

func (c *LoadConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.JobsPer <= 0 {
		c.JobsPer = 4
	}
	if len(c.Engines) == 0 {
		c.Engines = []string{"seq", "hj", "lp", "lp-hj"}
	}
	if c.Circuit == "" {
		c.Circuit = "koggestone-16"
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
}

// LoadReport aggregates one load run.
type LoadReport struct {
	Jobs      int           // jobs completed with status "done"
	Failed    int           // jobs that ended failed/interrupted (service bug under pure load)
	Rejected  int           // 429 responses absorbed by the clients
	Elapsed   time.Duration // wall time of the whole run
	Latency   *stats.Sample // per-job submit-to-done seconds
	ByEngine  map[string]int
	FirstFail string // first failure's description, for the report
}

// Throughput reports completed jobs per second.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Jobs) / r.Elapsed.Seconds()
}

// DriveLoad runs the closed-loop load against a live server.
func DriveLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	client := &http.Client{Timeout: 10 * time.Second}
	rep := &LoadReport{Latency: stats.New(), ByEngine: make(map[string]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < cfg.JobsPer; k++ {
				eng := cfg.Engines[(ci*cfg.JobsPer+k)%len(cfg.Engines)]
				lat, rejected, err := runOne(client, cfg, eng, int64(ci*1000+k+1))
				mu.Lock()
				rep.Rejected += rejected
				if err != nil {
					rep.Failed++
					if rep.FirstFail == "" {
						rep.FirstFail = fmt.Sprintf("client %d job %d (%s): %v", ci, k, eng, err)
					}
				} else {
					rep.Jobs++
					rep.ByEngine[eng]++
					rep.Latency.Add(lat.Seconds())
				}
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runOne submits one job (retrying through 429 backpressure) and waits
// for its terminal status.
func runOne(client *http.Client, cfg LoadConfig, engine string, seed int64) (time.Duration, int, error) {
	spec := serve.JobSpec{
		Circuit: cfg.Circuit,
		Engine:  engine,
		Waves:   cfg.Waves,
		Seed:    seed,
		Workers: cfg.Workers,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, 0, err
	}
	deadline := time.Now().Add(cfg.Timeout)
	start := time.Now()
	rejected := 0
	var id string
	for {
		resp, err := client.Post(cfg.Addr+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, rejected, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			resp.Body.Close()
			if time.Now().Add(wait).After(deadline) {
				return 0, rejected, fmt.Errorf("still rejected at deadline after %d 429s", rejected)
			}
			time.Sleep(wait)
			continue
		}
		var out struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return 0, rejected, fmt.Errorf("submit: status %d: %s", resp.StatusCode, out.Error)
		}
		if derr != nil {
			return 0, rejected, derr
		}
		id = out.ID
		break
	}
	for {
		resp, err := client.Get(cfg.Addr + "/jobs/" + id)
		if err != nil {
			return 0, rejected, err
		}
		var v serve.JobView
		derr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if derr != nil {
			return 0, rejected, derr
		}
		switch v.Status {
		case serve.StatusDone:
			return time.Since(start), rejected, nil
		case serve.StatusQueued, serve.StatusRunning:
			if time.Now().After(deadline) {
				return 0, rejected, fmt.Errorf("job %s still %q at deadline", id, v.Status)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			return 0, rejected, fmt.Errorf("job %s ended %q: %s", id, v.Status, v.Error)
		}
	}
}

// LoadTable renders a load report in the experiment-table format.
func LoadTable(cfg LoadConfig, rep *LoadReport) *Table {
	cfg.fill()
	t := &Table{
		Title:   fmt.Sprintf("serve: %d clients x %d jobs (%s, %v)", cfg.Clients, cfg.JobsPer, cfg.Circuit, cfg.Engines),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("jobs done", fmt.Sprintf("%d", rep.Jobs))
	t.AddRow("jobs failed", fmt.Sprintf("%d", rep.Failed))
	t.AddRow("429s absorbed", fmt.Sprintf("%d", rep.Rejected))
	t.AddRow("elapsed", FmtDuration(rep.Elapsed))
	t.AddRow("throughput", fmt.Sprintf("%.1f jobs/s", rep.Throughput()))
	if rep.Latency.N() > 0 {
		t.AddRow("latency p50", FmtSeconds(rep.Latency.Percentile(50)))
		t.AddRow("latency p90", FmtSeconds(rep.Latency.Percentile(90)))
		t.AddRow("latency p99", FmtSeconds(rep.Latency.Percentile(99)))
		t.AddRow("latency max", FmtSeconds(rep.Latency.Max()))
	}
	for eng, n := range rep.ByEngine {
		t.AddRow("done on "+eng, fmt.Sprintf("%d", n))
	}
	return t
}
