package harness

import (
	"fmt"
	"io"

	"time"

	"hjdes/internal/circuit"
	"hjdes/internal/core"
	"hjdes/internal/netdes"
	"hjdes/internal/stats"
)

// Config scales the paper's evaluation to the available time budget.
type Config struct {
	// Scale is the fraction of the paper's total event volume to
	// simulate (1.0 reproduces Table 1's 56M-103M events per run).
	Scale float64
	// Repeats per configuration; the paper uses 20.
	Repeats int
	// MaxWorkers bounds the sweep; the paper's POWER7 machine used 32.
	MaxWorkers int
	// Workers optionally fixes the sweep points; derived from MaxWorkers
	// (powers of two) when nil.
	Workers []int
	// Seed drives stimulus generation.
	Seed int64
	// Timeout bounds each individual engine run (0 = unbounded); a
	// wedged run fails its experiment with a structured error instead of
	// hanging the suite.
	Timeout time.Duration
	// Circuits optionally replaces the paper's three input circuits in
	// every experiment (useful for benchmarking your own circuits, and
	// for fast test configurations). Defaults to PaperCircuits.
	Circuits []PaperCircuit
	// HJAblations adds the hj scheduler ablation rows (hj-noaff: no
	// locality-aware wakeups; hj-steal1: single-task steal instead of
	// steal-half) to the bench sweep at every worker count above one.
	HJAblations bool
	// Retries, Fallback and CheckpointEvery configure the resilient
	// envelope for every measured run (see Spec); all zero means
	// fail-fast. Degraded or retried measurements are flagged in the
	// bench records so a trajectory point that survived faults is never
	// mistaken for a clean one.
	Retries         int
	Fallback        []string
	CheckpointEvery int
}

func (cfg Config) circuits() []PaperCircuit {
	if len(cfg.Circuits) > 0 {
		return cfg.Circuits
	}
	return PaperCircuits
}

// DefaultConfig is sized to regenerate every experiment in minutes on a
// laptop; use Scale=1, Repeats=20, MaxWorkers=32 for the paper's exact
// protocol.
func DefaultConfig() Config {
	return Config{Scale: 0.1, Repeats: 3, MaxWorkers: 8, Seed: 1}
}

func (cfg Config) workerCounts() []int {
	if len(cfg.Workers) > 0 {
		return cfg.Workers
	}
	max := cfg.MaxWorkers
	if max < 1 {
		max = 1
	}
	var ws []int
	for w := 1; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != max {
		ws = append(ws, max)
	}
	return ws
}

// PaperCircuit ties one of the paper's input circuits (Table 1) to its
// published profile, so reports can show paper-vs-ours side by side.
type PaperCircuit struct {
	Name       string
	Build      func() *circuit.Circuit
	PaperNodes int
	PaperEdges int
	PaperInit  int
	PaperTotal int64
	// FullWaves is the wave count whose total event volume approximates
	// PaperTotal on our generators (calibrated empirically).
	FullWaves int
}

// PaperCircuits are Table 1's three inputs.
var PaperCircuits = []PaperCircuit{
	{"multiplier-12", func() *circuit.Circuit { return circuit.TreeMultiplier(12) }, 2731, 5100, 49, 56035581, 22},
	{"koggestone-64", func() *circuit.Circuit { return circuit.KoggeStone(64) }, 1306, 2289, 128258, 89683016, 1000},
	{"koggestone-128", func() *circuit.Circuit { return circuit.KoggeStone(128) }, 2973, 5303, 66050, 102591960, 258},
}

func (cfg Config) waves(pc PaperCircuit) int {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 0.1
	}
	w := int(float64(pc.FullWaves)*scale + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}

func (cfg Config) stimulus(c *circuit.Circuit, pc PaperCircuit) *circuit.Stimulus {
	return circuit.RandomStimulus(c, cfg.waves(pc), c.SettleTime()+10, cfg.Seed)
}

func (cfg Config) repeats() int {
	if cfg.Repeats <= 0 {
		return 1
	}
	return cfg.Repeats
}

// Engine factories, resolved through the core engine registry so the
// harness never repeats the name→constructor mapping.

// factory returns an EngineFactory for the registered engine name with
// the given option template; the sweep's worker count is filled in per
// call and outputs are discarded (the harness only measures). The names
// used here are compile-time constants, so resolution failures panic.
func factory(name string, opts core.Options) EngineFactory {
	return func(workers int) core.Engine {
		o := opts
		o.Workers = workers
		o.DiscardOutputs = true
		e, err := core.NewEngine(name, o)
		if err != nil {
			panic(err)
		}
		return e
	}
}

var (
	seqFactory    = factory("seq", core.Options{})
	seqPQFactory  = factory("seq-pq", core.Options{})
	hjFactory     = factory("hj", core.Options{})
	galoisFactory = factory("galois", core.Options{})
)

// Table1 regenerates the paper's Table 1: profiles of the input circuits,
// with the published numbers alongside for comparison. Event counts are
// at the configured scale.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 1: circuit profiles (scale=%.3g; paper values in parens)", cfg.Scale),
		Headers: []string{"circuit", "nodes", "paper", "edges", "paper",
			"init_events", "paper", "total_events", "paper"},
	}
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		res, err := core.NewSequential(core.Options{DiscardOutputs: true}).Run(c, stim)
		if err != nil {
			return nil, err
		}
		t.AddRow(pc.Name,
			fmt.Sprint(c.NumNodes()), fmt.Sprintf("(%d)", pc.PaperNodes),
			fmt.Sprint(c.NumEdges()), fmt.Sprintf("(%d)", pc.PaperEdges),
			fmt.Sprint(stim.NumEvents()), fmt.Sprintf("(%d)", pc.PaperInit),
			fmt.Sprint(res.TotalEvents), fmt.Sprintf("(%d)", pc.PaperTotal),
		)
	}
	return t, nil
}

// Table2 regenerates the paper's Table 2: minimum sequential execution
// times of the HJlib-style (per-port deques) and Galois-style (priority
// queues) implementations. It returns the Galois-sequential minima keyed
// by circuit name, the speedup baselines of Figures 4-6.
func Table2(cfg Config) (*Table, map[string]float64, error) {
	t := &Table{
		Title:   fmt.Sprintf("Table 2: minimum sequential execution time, seconds (scale=%.3g, repeats=%d)", cfg.Scale, cfg.repeats()),
		Headers: []string{"circuit", "hjlib_seq_s", "galois_seq_s", "galois/hjlib"},
	}
	baselines := map[string]float64{}
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		mSeq, err := Measure(Spec{Label: pc.Name + "/seq", Circuit: c, Stim: stim, Factory: seqFactory, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, nil, err
		}
		mPQ, err := Measure(Spec{Label: pc.Name + "/seq-pq", Circuit: c, Stim: stim, Factory: seqPQFactory, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, nil, err
		}
		baselines[pc.Name] = mPQ.MinSeconds()
		t.AddRow(pc.Name, FmtSeconds(mSeq.MinSeconds()), FmtSeconds(mPQ.MinSeconds()),
			fmt.Sprintf("%.2fx", mPQ.MinSeconds()/mSeq.MinSeconds()))
	}
	return t, baselines, nil
}

// Fig1 regenerates the paper's Figure 1: available parallelism per
// computation step for the 6-bit tree multiplier.
func Fig1(cfg Config) (*Table, []int, error) {
	c := circuit.TreeMultiplier(6)
	profile, err := core.ProfileCircuit(c, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Figure 1: available parallelism in DES (6-bit tree multiplier)",
		Headers: []string{"step", "parallelism"},
	}
	for i, p := range profile {
		t.AddRow(fmt.Sprint(i), fmt.Sprint(p))
	}
	return t, profile, nil
}

// FigSweep regenerates one of Figures 4-6: minimum execution time and
// speedup (relative to the Galois sequential implementation, as in the
// paper) as a function of worker count, for the HJ and Galois engines.
// figure selects the circuit: 4 = 12-bit multiplier, 5 = KS-64,
// 6 = KS-128.
func FigSweep(cfg Config, figure int) (*Table, error) {
	var pc PaperCircuit
	switch figure {
	case 4:
		pc = cfg.circuits()[0]
	case 5:
		pc = cfg.circuits()[1%len(cfg.circuits())]
	case 6:
		pc = cfg.circuits()[2%len(cfg.circuits())]
	default:
		return nil, fmt.Errorf("harness: FigSweep(%d): figure must be 4, 5 or 6", figure)
	}
	c := pc.Build()
	stim := cfg.stimulus(c, pc)

	base, err := Measure(Spec{Label: pc.Name + "/seq-pq", Circuit: c, Stim: stim, Factory: seqPQFactory, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
	if err != nil {
		return nil, err
	}
	baseline := base.MinSeconds()

	t := &Table{
		Title: fmt.Sprintf("Figure %d: %s — min time & speedup vs workers (baseline galois-seq %.4fs; scale=%.3g, repeats=%d)",
			figure, pc.Name, baseline, cfg.Scale, cfg.repeats()),
		Headers: []string{"workers", "hj_min_s", "hj_speedup", "galois_min_s", "galois_speedup", "hj_reduction_%"},
	}
	hjPts, err := Sweep(pc.Name+"/hj", c, stim, hjFactory, cfg.workerCounts(), cfg.repeats(), cfg.Timeout)
	if err != nil {
		return nil, err
	}
	gPts, err := Sweep(pc.Name+"/galois", c, stim, galoisFactory, cfg.workerCounts(), cfg.repeats(), cfg.Timeout)
	if err != nil {
		return nil, err
	}
	for i := range hjPts {
		h, g := hjPts[i].M, gPts[i].M
		t.AddRow(fmt.Sprint(hjPts[i].Workers),
			FmtSeconds(h.MinSeconds()), fmt.Sprintf("%.2f", stats.Speedup(baseline, h.MinSeconds())),
			FmtSeconds(g.MinSeconds()), fmt.Sprintf("%.2f", stats.Speedup(baseline, g.MinSeconds())),
			fmt.Sprintf("%.1f", stats.PercentReduction(g.MinSeconds(), h.MinSeconds())),
		)
	}
	return t, nil
}

// Fig7 regenerates the paper's Figure 7: average execution time with 95%
// confidence intervals at the maximum worker count, for both parallel
// versions on all three circuits.
func Fig7(cfg Config) (*Table, error) {
	workers := cfg.MaxWorkers
	if workers < 1 {
		workers = 1
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: average execution time ± 95%% CI at %d workers (scale=%.3g, repeats=%d)", workers, cfg.Scale, cfg.repeats()),
		Headers: []string{"circuit", "engine", "mean_s", "ci95_s", "min_s", "max_s"},
	}
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		for _, f := range []EngineFactory{hjFactory, galoisFactory} {
			m, err := Measure(Spec{Label: pc.Name, Circuit: c, Stim: stim, Factory: f, Workers: workers, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			t.AddRow(pc.Name, m.Engine, FmtSeconds(m.MeanSeconds()), FmtSeconds(m.CI95()),
				FmtSeconds(m.Times.Min()), FmtSeconds(m.Times.Max()))
		}
	}
	return t, nil
}

// Ablations measures the Section 4.5 design choices one at a time on the
// 12-bit multiplier: the fully optimized HJ engine against each
// single-optimization-removed variant, plus the coarse isolated fallback
// and the Galois baseline.
func Ablations(cfg Config) (*Table, error) {
	pc := cfg.circuits()[0]
	c := pc.Build()
	stim := cfg.stimulus(c, pc)
	workers := cfg.MaxWorkers
	if workers < 1 {
		workers = 1
	}
	variants := []struct {
		desc string
		f    EngineFactory
	}{
		{"hj fully optimized", hjFactory},
		{"no per-port deques (per-node PQ, 4.5.1)", factory("hj", core.Options{PerNodePQ: true})},
		{"no per-port locks (per-node locks, 4.5.1)", factory("hj", core.Options{PerNodeLocks: true})},
		{"no temp ready queue (4.5.1)", factory("hj", core.Options{NoTempQueue: true})},
		{"no async avoidance (4.5.3)", factory("hj", core.Options{NaiveRespawn: true})},
		{"global isolated instead of TryLock (3.2)", factory("hj", core.Options{GlobalIsolated: true})},
		{"mutex locks instead of AtomicBoolean (4.5.2)", factory("hj", core.Options{MutexLocks: true})},
		{"galois baseline", galoisFactory},
		{"galois with per-port conflict objects", factory("galois-fine", core.Options{})},
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablations: Section 4.5 optimizations on %s at %d workers (scale=%.3g, repeats=%d)", pc.Name, workers, cfg.Scale, cfg.repeats()),
		Headers: []string{"variant", "engine", "min_s", "vs_optimized"},
	}
	var best float64
	for i, v := range variants {
		m, err := Measure(Spec{Label: v.desc, Circuit: c, Stim: stim, Factory: v.f, Workers: workers, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			best = m.MinSeconds()
		}
		t.AddRow(v.desc, m.Engine, FmtSeconds(m.MinSeconds()), fmt.Sprintf("%.2fx", m.MinSeconds()/best))
	}
	return t, nil
}

// Profiles is the extension experiment generalizing Figure 1: available
// parallelism summaries for circuit families with very different
// topologies, quantifying the paper's observation that "different
// scalability results may be obtained for different circuits".
func Profiles(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Extension: available-parallelism profiles by circuit family (Figure 1 generalized)",
		Headers: []string{"circuit", "nodes", "depth", "steps", "peak", "mean", "profile"},
	}
	for _, c := range []*circuit.Circuit{
		circuit.TreeMultiplier(6),
		circuit.ArrayMultiplier(6),
		circuit.KoggeStone(32),
		circuit.BrentKung(32),
		circuit.Butterfly(5),
		circuit.ParityChain(32),
	} {
		profile, err := core.ProfileCircuit(c, cfg.Seed)
		if err != nil {
			return nil, err
		}
		spark := Sparkline(profile)
		if len([]rune(spark)) > 40 {
			spark = string([]rune(spark)[:40]) + "…"
		}
		t.AddRow(c.Name, fmt.Sprint(c.NumNodes()), fmt.Sprint(c.Depth()),
			fmt.Sprint(len(profile)), fmt.Sprint(core.MaxParallelism(profile)),
			fmt.Sprintf("%.1f", core.MeanParallelism(profile)), spark)
	}
	return t, nil
}

// TimeWarpExp is the extension experiment for the paper's Section 2.1
// related work: conservative (HJ) versus optimistic (Time Warp)
// execution of the same workloads. Rollback storms make Time Warp far
// slower on these reconvergent circuits, so its workload is scaled down
// by an extra factor of 10 relative to cfg.Scale.
func TimeWarpExp(cfg Config) (*Table, error) {
	workers := cfg.MaxWorkers
	if workers < 1 {
		workers = 1
	}
	twCfg := cfg
	twCfg.Scale = cfg.Scale / 10
	t := &Table{
		Title: fmt.Sprintf("Extension: conservative vs optimistic (Time Warp), %d workers (scale=%.3g, repeats=%d)",
			workers, twCfg.Scale, cfg.repeats()),
		Headers: []string{"circuit", "events", "hj_min_s", "tw_min_s", "tw/hj", "rollbacks", "undone", "antis"},
	}
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := twCfg.stimulus(c, pc)
		hjM, err := Measure(Spec{Label: pc.Name + "/hj", Circuit: c, Stim: stim, Factory: hjFactory, Workers: workers, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		// Measure Time Warp once by hand to capture its stats.
		tw := factory("timewarp", core.Options{})(workers)
		var best *core.Result
		for i := 0; i < cfg.repeats(); i++ {
			res, err := tw.Run(c, stim)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Elapsed < best.Elapsed {
				best = res
			}
		}
		t.AddRow(pc.Name, fmt.Sprint(best.TotalEvents),
			FmtSeconds(hjM.MinSeconds()), FmtSeconds(best.Elapsed.Seconds()),
			fmt.Sprintf("%.1fx", best.Elapsed.Seconds()/hjM.MinSeconds()),
			fmt.Sprint(best.TimeWarp.Rollbacks), fmt.Sprint(best.TimeWarp.Undone), fmt.Sprint(best.TimeWarp.Antis))
	}
	return t, nil
}

// OrderedExp is the extension experiment for the paper's reference [12]
// (Hassaan, Burtscher, Pingali: "Ordered vs. unordered"): the same DES
// expressed on the Galois unordered iterator with Chandy–Misra clocks
// (Algorithm 3) versus the ordered iterator with global timestamp order.
func OrderedExp(cfg Config) (*Table, error) {
	workers := cfg.MaxWorkers
	if workers < 1 {
		workers = 1
	}
	ordCfg := cfg
	ordCfg.Scale = cfg.Scale / 10 // priority-level barriers are slow
	t := &Table{
		Title: fmt.Sprintf("Extension: unordered vs ordered Galois iterator (ref [12]), %d workers (scale=%.3g, repeats=%d)",
			workers, ordCfg.Scale, cfg.repeats()),
		Headers: []string{"circuit", "events", "unordered_min_s", "ordered_min_s", "ordered/unordered"},
	}
	orderedFactory := factory("galois-ordered", core.Options{})
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := ordCfg.stimulus(c, pc)
		un, err := Measure(Spec{Label: pc.Name + "/unordered", Circuit: c, Stim: stim, Factory: galoisFactory, Workers: workers, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		or, err := Measure(Spec{Label: pc.Name + "/ordered", Circuit: c, Stim: stim, Factory: orderedFactory, Workers: workers, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		t.AddRow(pc.Name, fmt.Sprint(un.Events),
			FmtSeconds(un.MinSeconds()), FmtSeconds(or.MinSeconds()),
			fmt.Sprintf("%.2fx", or.MinSeconds()/un.MinSeconds()))
	}
	return t, nil
}

// LPExp is the extension experiment for the partitioned logical-process
// engine (the PARSIR-style architecture from PAPERS.md): each circuit is
// split into K node-disjoint partitions, one message-passing LP per
// partition, synchronized by Chandy–Misra–Bryant null messages. The
// partition count is swept over the worker counts, reporting the
// partition quality (edge-cut fraction, load imbalance) and the
// null-message ratio — the canonical CMB overhead metric — next to the
// runtime and the shared-memory HJ engine at the same parallelism. The
// lp-hj column is the fused engine (§15): the same partitions as LP
// tasks on the hj work-stealing runtime instead of goroutines.
func LPExp(cfg Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Extension: partitioned logical-process engine (CMB null messages; scale=%.3g, repeats=%d)",
			cfg.Scale, cfg.repeats()),
		Headers: []string{"circuit", "lps", "lp_min_s", "lphj_min_s", "hj_min_s", "lp/lphj", "lphj/hj",
			"edge_cut_%", "imbalance", "event_msgs", "null_msgs", "null_ratio"},
	}
	// Measure an lp-family engine by hand to capture its stats.
	bestOf := func(name string, k int, c *circuit.Circuit, stim *circuit.Stimulus) (*core.Result, error) {
		e := factory(name, core.Options{Partitions: k})(k)
		var best *core.Result
		for i := 0; i < cfg.repeats(); i++ {
			res, err := e.Run(c, stim)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Elapsed < best.Elapsed {
				best = res
			}
		}
		return best, nil
	}
	for _, pc := range cfg.circuits() {
		c := pc.Build()
		stim := cfg.stimulus(c, pc)
		for _, k := range cfg.workerCounts() {
			hjM, err := Measure(Spec{Label: pc.Name + "/hj", Circuit: c, Stim: stim, Factory: hjFactory, Workers: k, Repeats: cfg.repeats(), Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			best, err := bestOf("lp", k, c, stim)
			if err != nil {
				return nil, err
			}
			bestHJ, err := bestOf("lp-hj", k, c, stim)
			if err != nil {
				return nil, err
			}
			s := best.LP
			t.AddRow(pc.Name, fmt.Sprint(k),
				FmtSeconds(best.Elapsed.Seconds()), FmtSeconds(bestHJ.Elapsed.Seconds()),
				FmtSeconds(hjM.MinSeconds()),
				fmt.Sprintf("%.2fx", best.Elapsed.Seconds()/bestHJ.Elapsed.Seconds()),
				fmt.Sprintf("%.2fx", bestHJ.Elapsed.Seconds()/hjM.MinSeconds()),
				fmt.Sprintf("%.1f", 100*s.EdgeCut), fmt.Sprintf("%.2f", s.Imbalance),
				fmt.Sprint(s.EventMsgs), fmt.Sprint(s.NullMsgs),
				fmt.Sprintf("%.3f", s.NullRatio()))
		}
	}
	return t, nil
}

// NetDES is the extension experiment for the paper's future-work
// direction: the conservative packet-network simulator over growing mesh
// sizes, sequential vs. hj-parallel.
func NetDES(cfg Config) (*Table, error) {
	workers := cfg.MaxWorkers
	if workers < 2 {
		workers = 2
	}
	t := &Table{
		Title:   fmt.Sprintf("Extension: packet-network DES (paper future work), seq vs hj(%d workers), repeats=%d", workers, cfg.repeats()),
		Headers: []string{"network", "packets", "events", "supersteps", "seq_min_s", "hj_min_s", "avg_latency"},
	}
	for _, side := range []int{4, 8, 12} {
		nw := netdes.Grid(side, side, 1, 1)
		last := netdes.NodeID(nw.N - 1)
		tr := netdes.Traffic{
			{Src: 0, Dst: last, Start: 1, Interval: 1, Count: 400},
			{Src: last, Dst: 0, Start: 1, Interval: 1, Count: 400},
			{Src: netdes.NodeID(side - 1), Dst: netdes.NodeID(nw.N - side), Start: 2, Interval: 2, Count: 200},
		}
		measure := func(w int) (*netdes.Result, float64, error) {
			best := -1.0
			var res *netdes.Result
			for i := 0; i < cfg.repeats(); i++ {
				r, err := netdes.Simulate(nw, tr, netdes.Config{Workers: w})
				if err != nil {
					return nil, 0, err
				}
				if best < 0 || r.Elapsed.Seconds() < best {
					best = r.Elapsed.Seconds()
					res = r
				}
			}
			return res, best, nil
		}
		seqRes, seqMin, err := measure(1)
		if err != nil {
			return nil, err
		}
		_, hjMin, err := measure(workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(nw.Name,
			fmt.Sprint(seqRes.Injected), fmt.Sprint(seqRes.Events), fmt.Sprint(seqRes.Supersteps),
			FmtSeconds(seqMin), FmtSeconds(hjMin), fmt.Sprintf("%.1f", seqRes.AvgLatency()))
	}
	return t, nil
}

// All runs every experiment and writes the reports to w.
func All(cfg Config, w io.Writer) error {
	t1, err := Table1(cfg)
	if err != nil {
		return err
	}
	if err := t1.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	t2, _, err := Table2(cfg)
	if err != nil {
		return err
	}
	if err := t2.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	f1, profile, err := Fig1(cfg)
	if err != nil {
		return err
	}
	_ = f1 // full per-step table is long; report the sparkline + summary
	fmt.Fprintf(w, "== Figure 1: available parallelism (6-bit tree multiplier) ==\n")
	fmt.Fprintf(w, "steps=%d peak=%d mean=%.1f\n%s\n\n",
		len(profile), core.MaxParallelism(profile), core.MeanParallelism(profile), Sparkline(profile))

	for fig := 4; fig <= 6; fig++ {
		ft, err := FigSweep(cfg, fig)
		if err != nil {
			return err
		}
		if err := ft.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	f7, err := Fig7(cfg)
	if err != nil {
		return err
	}
	if err := f7.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	ab, err := Ablations(cfg)
	if err != nil {
		return err
	}
	if err := ab.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	pr, err := Profiles(cfg)
	if err != nil {
		return err
	}
	if err := pr.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	tw, err := TimeWarpExp(cfg)
	if err != nil {
		return err
	}
	if err := tw.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	oe, err := OrderedExp(cfg)
	if err != nil {
		return err
	}
	if err := oe.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	le, err := LPExp(cfg)
	if err != nil {
		return err
	}
	if err := le.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	nd, err := NetDES(cfg)
	if err != nil {
		return err
	}
	return nd.WriteText(w)
}

// Sparkline renders an integer series as a compact unicode graph.
func Sparkline(series []int) string {
	if len(series) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := core.MaxParallelism(series)
	if max == 0 {
		max = 1
	}
	out := make([]rune, len(series))
	for i, v := range series {
		idx := v * (len(blocks) - 1) / max
		out[i] = blocks[idx]
	}
	return string(out)
}
